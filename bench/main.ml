(* The benchmark harness regenerates every table and figure of the paper's
   evaluation (Section 4), and adds:

   - a concrete-engine validation: the same sweeps at reduced scale on real
     generated data through the actual executors (not the parametric model);
   - a signature-filtering ablation (future-work extension);
   - Bechamel microbenchmarks of the core operators.

   Usage: dune exec bench/main.exe [-- --quick | -- --samples N]
   The paper's setting is 500 parameter draws per point (the default).

   Every run also writes a machine-readable BENCH_<timestamp>.json
   (schema "msdq-bench/10", see Run_report) with the per-strategy
   simulated times on the demo workload, the bechamel wall-clock
   medians, the run's seed, a parallel section (jobs, measured speedup
   of a calibration sweep), a fault_sweep section (certain-set recall
   and response under injected site crashes), a recovery_sweep
   section (retry-only vs failover vs failover+hedging recall and
   demotion counts), a serve_sweep section (workload-engine
   throughput vs cache capacity and admission window), a latency
   section (per-strategy query-latency quantiles from a
   telemetry-enabled serve run), an overload_sweep section (goodput and
   tail latency vs offered load per shed policy) and an auto_sweep section (AUTO's
   adaptive selection vs every fixed strategy — the validator enforces
   the win condition), a gray_sweep section (gray-failure tolerance)
   and a microbench section (columnar-engine throughput: boxed vs
   columnar local evaluation and signature filtering, plus
   certification rows/sec); --out DIR picks the directory, --jobs N sizes
   the domain pool (default: all cores; 1 = sequential), --smoke runs
   a reduced version for CI, and --check FILE validates an existing
   result file against the schema (/1../10 all accepted). *)

open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload
open Msdq_exp
module Planner = Msdq_opt.Planner
module Param_sim = Msdq_opt.Param_sim

let section name = Format.printf "@.======== [%s] ========@.@." name

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2 *)

let tables () =
  section "table-1";
  Format.printf "System parameters (Table 1):@.%a@." Cost.pp Cost.default;
  section "table-2";
  Format.printf "Database and query parameters (Table 2):@.%a@." Params.pp_ranges
    Params.default

(* ------------------------------------------------------------------ *)
(* Figures 9-11 and the ablation (parametric simulation, paper method) *)

let figures ?pool ~samples ~seed () =
  List.iter
    (fun fig ->
      section fig.Figures.id;
      Format.printf "%a@.@." Report.pp_figure fig;
      Format.printf "shape checks against the paper's findings:@.%a@."
        Report.pp_checks (Shapes.check fig))
    (Figures.all ?pool ~samples ~seed ())

(* ------------------------------------------------------------------ *)
(* Parallel calibration: time one fixed sweep sequentially and on the
   pool, and assert the two outputs are byte-identical — the determinism
   contract, re-checked on every bench run, on real hardware. *)

let wall_time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let figure_bytes fig =
  Msdq_obs.Json.to_string (Run_report.figure_to_json fig)

let calibrate ?pool ~seed ~samples () =
  section "parallel";
  let grid fig =
    List.length fig.Figures.series * Array.length fig.Figures.xs
  in
  let seq_fig, seq_s = wall_time (fun () -> Figures.fig10 ~samples ~seed ()) in
  let p =
    match pool with
    | None ->
      {
        Run_report.jobs = 1;
        grid_points = grid seq_fig;
        seq_s;
        par_s = seq_s;
        speedup = 1.0;
      }
    | Some pool ->
      let par_fig, par_s =
        wall_time (fun () -> Figures.fig10 ~pool ~samples ~seed ())
      in
      if not (String.equal (figure_bytes seq_fig) (figure_bytes par_fig)) then begin
        Format.eprintf
          "parallel calibration diverged from the sequential sweep@.";
        exit 1
      end;
      {
        Run_report.jobs = Msdq_par.Pool.jobs pool;
        grid_points = grid seq_fig;
        seq_s;
        par_s;
        speedup = seq_s /. par_s;
      }
  in
  Format.printf
    "calibration sweep (fig10, %d samples/point, %d grid points):@." samples
    p.Run_report.grid_points;
  Format.printf "  jobs %d: sequential %.3fs, parallel %.3fs, speedup %.2fx@."
    p.Run_report.jobs p.Run_report.seq_s p.Run_report.par_s
    p.Run_report.speedup;
  Format.printf "  parallel output identical to sequential: true@.";
  p

(* ------------------------------------------------------------------ *)
(* Concrete-engine validation: the real executors on generated data.   *)

let concrete_validation () =
  section "concrete-validation";
  Format.printf
    "The actual CA/BL/PL executors on generated federations (3 databases,@.\
     3-class chain), sweeping the number of entities per class. Times come@.\
     from the same discrete-event engine, driven by real per-phase work.@.@.";
  let query =
    "select X.key from K0 X where X.p0 = 2 and X.next.p1 = 1 and X.next.next.p2 = 3"
  in
  Format.printf "query: %s@.@." query;
  Format.printf "%-9s %-6s %12s %12s %10s %8s@." "entities" "strat" "total"
    "response" "shipped" "checks";
  let ordering_ok = ref true in
  List.iter
    (fun n_entities ->
      let cfg =
        {
          Synth.default with
          Synth.seed = 31;
          n_entities;
          p_host = 1.0;
          p_attr_present = 0.75;
          p_null = 0.12;
          p_copy = 0.4;
        }
      in
      let fed = Synth.generate cfg in
      let results =
        List.filter_map
          (fun s ->
            match Strategy.run_query s fed query with
            | Ok (answer, m) -> Some (s, answer, m)
            | Error msg ->
              Format.printf "error: %s@." msg;
              None)
          [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]
      in
      List.iter
        (fun (s, _, m) ->
          Format.printf "%-9d %-6s %12s %12s %9dB %8d@." n_entities
            (Strategy.to_string s)
            (Format.asprintf "%a" Msdq_simkit.Time.pp m.Strategy.total)
            (Format.asprintf "%a" Msdq_simkit.Time.pp m.Strategy.response)
            m.Strategy.bytes_shipped m.Strategy.check_requests)
        results;
      (match results with
      | [ (_, ca_a, ca); (_, bl_a, bl); (_, pl_a, pl) ] ->
        let t m = Msdq_simkit.Time.to_us m.Strategy.total in
        let r m = Msdq_simkit.Time.to_us m.Strategy.response in
        if not (t bl < t ca && t bl <= t pl && r bl < r ca && r pl < r ca) then
          ordering_ok := false;
        if
          not
            (Answer.same_statuses bl_a pl_a && Answer.subsumes ~strong:ca_a ~weak:bl_a)
        then ordering_ok := false
      | _ -> ordering_ok := false);
      Format.printf "@.")
    [ 100; 200; 400; 800 ];
  Format.printf "paper ordering holds on concrete data (BL < PL on total,@.";
  Format.printf "both < CA; localized response < CA response): %b@." !ordering_ok

(* ------------------------------------------------------------------ *)
(* Planner accuracy: predicted vs measured strategy ordering.           *)

let planner_study () =
  section "planner";
  Format.printf "Cost-based strategy selection (extension): the planner@.";
  Format.printf "profiles the federation into Table-2 statistics and predicts@.";
  Format.printf "each strategy's cost; predicted vs measured per seed.@.@.";
  let query = "select X.key from K0 X where X.p0 = 2 and X.next.p1 = 1" in
  Format.printf "query: %s@.@." query;
  Format.printf "%-5s %-11s %-10s %12s %12s %8s@." "seed" "predicted" "measured"
    "pred total" "meas total" "regret";
  let hits = ref 0 and total = ref 0 in
  List.iter
    (fun seed ->
      let cfg =
        {
          Synth.default with
          Synth.seed;
          n_entities = 150;
          p_host = 1.0;
          p_attr_present = 0.75;
          p_null = 0.12;
        }
      in
      let fed = Synth.generate cfg in
      let analysis =
        Analysis.analyze (Global_schema.schema (Federation.global_schema fed))
          (Parser.parse query)
      in
      let chosen, predictions =
        Planner.choose ~objective:Planner.Total_time fed analysis
      in
      let measured =
        List.map
          (fun s ->
            let _, m = Strategy.run s fed analysis in
            (s, m.Strategy.total))
          [ Strategy.Ca; Strategy.Cf; Strategy.Bl; Strategy.Pl ]
      in
      let best =
        fst
          (List.fold_left
             (fun ((_, bt) as b) ((_, t) as c) ->
               if Msdq_simkit.Time.compare t bt < 0 then c else b)
             (List.hd measured) (List.tl measured))
      in
      incr total;
      if chosen = best then incr hits;
      let p = List.hd predictions in
      let t s = Msdq_simkit.Time.to_us (List.assoc s measured) in
      Format.printf "%-5d %-11s %-10s %12s %12s %7.2fx@." seed
        (Strategy.to_string chosen) (Strategy.to_string best)
        (Format.asprintf "%a" Msdq_simkit.Time.pp p.Planner.total)
        (Format.asprintf "%a" Msdq_simkit.Time.pp (List.assoc chosen measured))
        (t chosen /. t best))
    [ 1; 2; 3; 4; 5; 6 ];
  Format.printf
    "@.planner picked the measured-best strategy in %d/%d cases (regret = \
     chosen / best measured total)@."
    !hits !total

(* ------------------------------------------------------------------ *)
(* Heterogeneous hardware: a straggler site (extension).               *)

let straggler_study () =
  section "straggler";
  Format.printf "Heterogeneous hardware (extension): one component database@.";
  Format.printf "runs on a slow machine (factor 0.25). CA only scans and ships@.";
  Format.printf "there; the localized strategies also evaluate there, so the@.";
  Format.printf "straggler hurts their response time relatively more.@.@.";
  let cfg =
    {
      Synth.default with
      Synth.seed = 17;
      n_entities = 300;
      p_host = 1.0;
      p_attr_present = 0.75;
      p_null = 0.12;
    }
  in
  let fed = Synth.generate cfg in
  let analysis =
    Analysis.analyze (Global_schema.schema (Federation.global_schema fed))
      (Parser.parse "select X.key from K0 X where X.p0 = 2 and X.next.p1 = 1")
  in
  Format.printf "%-6s %14s %14s %9s@." "strat" "uniform resp" "straggler resp"
    "slowdown";
  List.iter
    (fun s ->
      let _, base = Strategy.run s fed analysis in
      let options =
        { Strategy.default_options with Strategy.site_speeds = [ (1, 0.25) ] }
      in
      let _, slow = Strategy.run ~options s fed analysis in
      let r m = Msdq_simkit.Time.to_us m.Strategy.response in
      Format.printf "%-6s %14s %14s %8.2fx@." (Strategy.to_string s)
        (Format.asprintf "%a" Msdq_simkit.Time.pp base.Strategy.response)
        (Format.asprintf "%a" Msdq_simkit.Time.pp slow.Strategy.response)
        (r slow /. r base))
    [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]

(* ------------------------------------------------------------------ *)
(* Multi-query throughput (extension): a stream of queries shares the     *)
(* simulated system; mean latency under load separates the strategies    *)
(* further than single-query response time does.                         *)

let throughput_study () =
  section "throughput";
  Format.printf "Multi-query workloads (extension): 8 queries arrive at a@.";
  Format.printf "fixed interval; all share the simulated sites, so they queue@.";
  Format.printf "on disks, CPUs and the global site's incoming link.@.@.";
  let cfg =
    {
      Synth.default with
      Synth.seed = 23;
      n_entities = 200;
      p_host = 1.0;
      p_attr_present = 0.75;
      p_null = 0.12;
    }
  in
  let fed = Synth.generate cfg in
  let queries =
    [
      "select X.key from K0 X where X.p0 = 2 and X.next.p1 = 1";
      "select X.key from K0 X where X.p1 = 3";
      "select X.key from K0 X where X.next.p0 = 0 and X.p2 = 1";
      "select X.key from K0 X where X.p0 = 1 or X.p1 = 2";
    ]
  in
  let analyses =
    List.map
      (fun q ->
        Analysis.analyze (Global_schema.schema (Federation.global_schema fed))
          (Parser.parse q))
      queries
  in
  Format.printf "%-6s %-14s %14s %14s %14s@." "strat" "interval" "mean latency"
    "max latency" "makespan";
  List.iter
    (fun strategy ->
      List.iter
        (fun interval_ms ->
          let jobs =
            List.init 8 (fun i ->
                ( strategy,
                  List.nth analyses (i mod List.length analyses),
                  Msdq_simkit.Time.ms (float_of_int i *. interval_ms) ))
          in
          let out = Strategy.run_concurrent fed jobs in
          let latencies =
            List.map
              (fun q ->
                Msdq_simkit.Time.to_ms
                  (Msdq_simkit.Time.sub q.Strategy.completed q.Strategy.started))
              out.Strategy.queries
          in
          let mean =
            List.fold_left ( +. ) 0.0 latencies /. float_of_int (List.length latencies)
          in
          let worst = List.fold_left Float.max 0.0 latencies in
          Format.printf "%-6s %12.0fms %12.1fms %12.1fms %12.1fms@."
            (Strategy.to_string strategy) interval_ms mean worst
            (Msdq_simkit.Time.to_ms out.Strategy.combined_makespan))
        [ 1000.0; 250.0; 50.0 ])
    [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]

(* ------------------------------------------------------------------ *)
(* Fault sweep (robustness extension): the concrete executors under site  *)
(* crashes and lossy links — response degradation and certain-set recall. *)

let fault_study ?pool ~seed ~samples () =
  section "fault-sweep";
  Format.printf
    "Fault injection (extension): random recoverable crash schedules and@.\
     5%% lossy links on the component sites. Recall = fraction of the@.\
     fault-free certain results the degraded run still certifies; the@.\
     fail-stop series is a client of the same faulty BL execution that@.\
     aborts on any loss instead of degrading.@.@.";
  let sweep = Fault_sweep.run ?pool ~seed ~samples () in
  Format.printf "%-10s" "series";
  Array.iter (fun a -> Format.printf " %8s" (Printf.sprintf "a=%.2f" a)) sweep.Fault_sweep.xs;
  Format.printf "@.";
  List.iter
    (fun (ser : Fault_sweep.series) ->
      Format.printf "%-10s" (ser.Fault_sweep.label ^ " rec");
      Array.iter (fun r -> Format.printf " %8.3f" r) ser.Fault_sweep.recalls;
      Format.printf "@.%-10s" (ser.Fault_sweep.label ^ " rsp");
      Array.iter (fun r -> Format.printf " %7.4fs" r) ser.Fault_sweep.responses;
      Format.printf "@.")
    sweep.Fault_sweep.series;
  sweep

(* ------------------------------------------------------------------ *)
(* Recovery sweep (failover extension): retry-only vs failover vs        *)
(* failover+hedging on the same faulty executions.                       *)

let recovery_study ?pool ~seed ~samples () =
  section "recovery-sweep";
  Format.printf
    "Failover recovery (extension): the same chaos grid, comparing the@.\
     recovery policies on each faulty execution. retry = per-link retries@.\
     only; failover adds replica re-routing behind per-link circuit@.\
     breakers; hedged also races a duplicate check to the second-best@.\
     replica. CA has no check round trips, so its triple is the flat@.\
     control. The a=1.00 column is lossy-link-only, not fault-free.@.@.";
  let sweep = Fault_sweep.run_recovery ?pool ~seed ~samples () in
  Format.printf "%-14s" "series";
  Array.iter
    (fun a -> Format.printf " %8s" (Printf.sprintf "a=%.2f" a))
    sweep.Fault_sweep.rxs;
  Format.printf "@.";
  List.iter
    (fun (ser : Fault_sweep.rseries) ->
      Format.printf "%-14s" (ser.Fault_sweep.r_label ^ " rec");
      Array.iter (fun r -> Format.printf " %8.3f" r) ser.Fault_sweep.r_recalls;
      Format.printf "@.%-14s" (ser.Fault_sweep.r_label ^ " dem");
      Array.iter (fun d -> Format.printf " %8.2f" d) ser.Fault_sweep.r_demoted;
      Format.printf "@.")
    sweep.Fault_sweep.rseries;
  sweep

let serve_study ?pool ~seed ~samples () =
  section "serve-sweep";
  Format.printf
    "Workload engine (extension): repeated-query streams through the@.\
     multi-query serve layer. Throughput = queries per simulated second;@.\
     speedup = warm-over-cold makespan ratio at each cache capacity@.\
     (capacity 0 is the cold anchor). Caching and batching never change@.\
     an answer — the cache-soundness property the test suite checks.@.@.";
  let sweep = Serve_sweep.run ?pool ~seed ~samples () in
  Format.printf "%-12s" "series";
  Array.iter
    (fun kib -> Format.printf " %10s" (Printf.sprintf "%gKiB" kib))
    sweep.Serve_sweep.xs;
  Format.printf "@.";
  List.iter
    (fun (ser : Serve_sweep.series) ->
      Format.printf "%-12s" (ser.Serve_sweep.label ^ " q/s");
      Array.iter (fun t -> Format.printf " %10.2f" t) ser.Serve_sweep.throughputs;
      Format.printf "@.%-12s" (ser.Serve_sweep.label ^ " spd");
      Array.iter (fun s -> Format.printf " %10.3f" s) ser.Serve_sweep.speedups;
      Format.printf "@.")
    sweep.Serve_sweep.series;
  sweep

(* ------------------------------------------------------------------ *)
(* Latency quantiles (telemetry extension): a telemetry-enabled serve run  *)
(* per strategy; the per-query latency summaries become the bench file's   *)
(* /6 "latency" section, so CI tracks tail latency across commits.         *)

let latency_study () =
  section "latency";
  Format.printf
    "Query-latency quantiles (telemetry): 8-query streams through the@.\
     workload engine with telemetry histograms enabled; per-strategy@.\
     p50/p90/p99/max of query latency (arrival to answer).@.@.";
  let module Serve = Msdq_serve.Serve in
  let cfg =
    {
      Synth.default with
      Synth.seed = 23;
      n_entities = 200;
      p_host = 1.0;
      p_attr_present = 0.75;
      p_null = 0.12;
    }
  in
  let fed = Synth.generate cfg in
  let queries =
    [
      "select X.key from K0 X where X.p0 = 2 and X.next.p1 = 1";
      "select X.key from K0 X where X.p1 = 3";
      "select X.key from K0 X where X.next.p0 = 0 and X.p2 = 1";
      "select X.key from K0 X where X.p0 = 1 or X.p1 = 2";
    ]
  in
  let analyses =
    List.map
      (fun q ->
        Analysis.analyze (Global_schema.schema (Federation.global_schema fed))
          (Parser.parse q))
      queries
  in
  let scfg =
    {
      Serve.default_config with
      Serve.options =
        { Strategy.default_options with Strategy.telemetry = true };
    }
  in
  Format.printf "%-6s %10s %10s %10s %10s@." "strat" "p50" "p90" "p99" "max";
  let summaries =
    List.map
      (fun strategy ->
        let jobs =
          List.init 8 (fun i ->
              {
                Serve.strategy;
                analysis = List.nth analyses (i mod List.length analyses);
                arrival = Msdq_simkit.Time.ms (float_of_int i *. 50.0);
                deadline = None;
              })
        in
        let out = Serve.run scfg fed jobs in
        let lats =
          List.map
            (fun (r : Serve.query_report) ->
              Msdq_simkit.Time.to_us r.Serve.latency)
            out.Serve.reports
        in
        let s = Msdq_simkit.Stats.summarize lats in
        Format.printf "%-6s %8.0fus %8.0fus %8.0fus %8.0fus@."
          (Strategy.to_string strategy) s.Msdq_simkit.Stats.p50_us
          s.Msdq_simkit.Stats.p90_us s.Msdq_simkit.Stats.p99_us
          s.Msdq_simkit.Stats.max_us;
        (Strategy.to_string strategy, s))
      [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]
  in
  summaries

(* ------------------------------------------------------------------ *)
(* AUTO vs fixed strategies: the optimizer's win condition, recorded in the
   JSON file's auto_sweep section. Smoke and full runs use identical
   parameters so the CI bench gate can compare results across runs. *)

let auto_study ~seed () =
  section "auto";
  Format.printf
    "Adaptive strategy selection (AUTO): one mixed workload served once@.\
     per fixed candidate strategy and once under the cost-based@.\
     optimizer. Win condition: AUTO makespan <= best fixed makespan.@.@.";
  let a = Auto_sweep.run ~seed () in
  Format.printf "%-8s %12s@." "strategy" "makespan";
  List.iter
    (fun f ->
      Format.printf "%-8s %10.2fms@."
        (Strategy.to_string f.Auto_sweep.f_strategy)
        (f.Auto_sweep.f_makespan_s *. 1e3))
    a.Auto_sweep.fixed;
  Format.printf "%-8s %10.2fms@." "AUTO" (a.Auto_sweep.auto_makespan_s *. 1e3);
  Format.printf "@.decisions:";
  List.iter
    (fun (s, n) -> Format.printf " %s=%d" s n)
    a.Auto_sweep.decisions;
  Format.printf "  switches=%d@." a.Auto_sweep.switches;
  Format.printf "estimator rank matches: %d/%d (%.0f%%)@."
    a.Auto_sweep.rank_matches a.Auto_sweep.distinct
    (a.Auto_sweep.rank_match_rate *. 100.0);
  a

(* ------------------------------------------------------------------ *)
(* Overload robustness: goodput and tail latency vs offered load per shed
   policy, recorded in the JSON file's overload_sweep section. Every cell
   is pure in (seed, policy, multiplier), so smoke and full runs produce
   identical sections the CI bench gate can compare across commits. *)

let overload_study ?pool ~seed () =
  section "overload";
  Format.printf
    "Overload robustness: one BL workload offered at 0.5x..3x capacity,@.\
     served naively (unbounded queue, no deadline) and under each shed@.\
     policy with a depth-bounded queue and a deadline budget. Win@.\
     condition: admitted p99 under rejecting policies stays within 2x@.\
     the at-capacity p99 while the naive tail grows without bound.@.@.";
  let o = Overload_sweep.run ?pool ~seed () in
  Format.printf
    "capacity (solo response) %.2fms, deadline %.2fms, queue depth %d@.@."
    o.Overload_sweep.solo_response_ms o.Overload_sweep.deadline_ms
    o.Overload_sweep.queue_limit;
  Format.printf "%-14s %5s %8s %5s %9s %5s %9s %9s@." "policy" "load"
    "admitted" "shed" "goodput" "hit" "p50" "p99";
  List.iter
    (fun (p : Overload_sweep.point) ->
      Format.printf "%-14s %4.1fx %5d/%-2d %5d %7.1f/s %5.2f %7.2fms %7.2fms@."
        p.Overload_sweep.pt_policy p.Overload_sweep.pt_multiplier
        p.Overload_sweep.pt_admitted p.Overload_sweep.pt_offered
        p.Overload_sweep.pt_shed p.Overload_sweep.pt_goodput
        p.Overload_sweep.pt_hit_rate p.Overload_sweep.pt_p50_ms
        p.Overload_sweep.pt_p99_ms)
    o.Overload_sweep.points;
  Format.printf "@.at-capacity p99 %.2fms, tail bound %.2fms@."
    o.Overload_sweep.cap_p99_ms
    (2.0 *. o.Overload_sweep.cap_p99_ms);
  o

(* ------------------------------------------------------------------ *)
(* Gray-failure tolerance: static vs adaptive retry timeouts across the
   gray fault kinds, recorded in the JSON file's gray_sweep section. Every
   cell is pure in (seed, policy, kind, severity), so smoke and full runs
   produce identical sections the CI bench gate can compare across
   commits. *)

let gray_study ?pool ~seed () =
  section "gray";
  Format.printf
    "Gray-failure tolerance: one BL workload served per (timeout policy,@.\
     fault kind, severity) cell over a lossy link. Win condition: the@.\
     adaptive arm demotes no more rows than the static arm on every cell@.\
     and cuts mean response on the slowdown cells by at least %.0f%%.@.@."
    (100.0 *. Gray_sweep.response_margin);
  let g = Gray_sweep.run ?pool ~seed () in
  Format.printf "static timeout %.2fms, baseline drop %.2f@.@."
    g.Gray_sweep.static_timeout_ms g.Gray_sweep.drop;
  Format.printf "%-9s %-9s %-7s %8s %6s %9s %9s@." "policy" "kind" "sev"
    "demoted" "aband" "mean" "p99";
  List.iter
    (fun (p : Gray_sweep.point) ->
      Format.printf "%-9s %-9s %-7s %8d %6d %7.2fms %7.2fms@."
        p.Gray_sweep.pt_policy p.Gray_sweep.pt_kind p.Gray_sweep.pt_severity
        p.Gray_sweep.pt_demoted_rows p.Gray_sweep.pt_abandoned_checks
        p.Gray_sweep.pt_mean_ms p.Gray_sweep.pt_p99_ms)
    g.Gray_sweep.points;
  g

(* ------------------------------------------------------------------ *)
(* Per-strategy simulated times on the demo workload, for the JSON file. *)

let strategy_times () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let analysis =
    Analysis.analyze
      (Global_schema.schema (Federation.global_schema fed))
      (Parser.parse Paper_example.q1)
  in
  List.map
    (fun s ->
      let _, m = Strategy.run s fed analysis in
      ( Strategy.to_string s,
        Msdq_simkit.Time.to_s m.Strategy.total,
        Msdq_simkit.Time.to_s m.Strategy.response ))
    Strategy.all

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks *)

let microbenches ~quota () =
  section "microbench";
  let open Bechamel in
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  let db1 = ex.Paper_example.db1 in
  let john = ex.Paper_example.s1 in
  let pred = List.hd (List.rev Paper_example.q1_predicates) in
  let small_fed =
    Synth.generate
      { Synth.default with Synth.seed = 3; n_entities = 60; p_host = 1.0 }
  in
  let small_query =
    "select X.key from K0 X where X.p0 = 1 and X.next.p1 = 2"
  in
  let table = Federation.goids fed in
  let john_loid = Msdq_odb.Dbobject.loid john in
  let tests =
    Test.make_grouped ~name:"msdq"
      [
        Test.make ~name:"parse-q1" (Staged.stage (fun () ->
            ignore (Parser.parse Paper_example.q1)));
        Test.make ~name:"analyze-q1" (Staged.stage (fun () ->
            ignore (Analysis.analyze schema (Parser.parse Paper_example.q1))));
        Test.make ~name:"predicate-eval" (Staged.stage (fun () ->
            ignore (Msdq_odb.Predicate.eval db1 john pred)));
        Test.make ~name:"goid-lookup" (Staged.stage (fun () ->
            ignore (Goid_table.goid_of_local table ~db:"DB1" john_loid)));
        Test.make ~name:"materialize-paper-fed" (Staged.stage (fun () ->
            ignore (Materialize.build fed)));
        Test.make ~name:"local-eval-db1" (Staged.stage (fun () ->
            ignore (Local_eval.run fed analysis ~db:"DB1")));
        Test.make ~name:"strategy-ca-paper" (Staged.stage (fun () ->
            ignore (Strategy.run Strategy.Ca fed analysis)));
        Test.make ~name:"strategy-bl-paper" (Staged.stage (fun () ->
            ignore (Strategy.run Strategy.Bl fed analysis)));
        Test.make ~name:"strategy-bl-synth-60" (Staged.stage (fun () ->
            ignore (Strategy.run_query Strategy.Bl small_fed small_query)));
        Test.make ~name:"param-sim-bl" (Staged.stage (fun () ->
            let rng = Rng.create ~seed:1 in
            let s = Params.sample rng Params.default in
            ignore (Param_sim.simulate ~cost:Cost.default Strategy.Bl s)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> Float.nan
      in
      let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square ols_result) in
      rows := (name, ns, r2) :: !rows)
    results;
  let rows = List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !rows in
  Format.printf "%-32s %16s %8s@." "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, ns, r2) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns < 1e3 then Printf.sprintf "%.0fns" ns
        else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
        else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
        else Printf.sprintf "%.2fs" (ns /. 1e9)
      in
      Format.printf "%-32s %16s %8.3f@." name human r2)
    rows;
  List.filter_map
    (fun (name, ns, _) -> if Float.is_nan ns then None else Some (name, ns))
    rows

(* ------------------------------------------------------------------ *)
(* Columnar microbench (the /10 section): objects/sec of local predicate
   evaluation and BLS/PLS signature filtering, measured in both the boxed
   (per-object) and columnar representations over the same extent, plus
   end-to-end certification rows/sec. Each boxed/columnar pair computes the
   same answer from the same data and is cross-checked before timing, so
   the speedup ratio is honest; being a same-process ratio it is also
   machine-independent enough for tools/bench_gate to enforce the >= 5x
   acceptance bar on fresh documents. *)

(* Repeats [f] until it has accumulated enough wall-clock to trust the
   rate; returns (repeats, elapsed_s). *)
let mb_time f =
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < 0.05 || !reps = 0 do
    ignore (f ());
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  (!reps, !elapsed)

let mb_rate ~per_pass (reps, elapsed) = float_of_int (reps * per_pass) /. elapsed

let microbench_study ~objects () =
  section "columnar microbench";
  let open Msdq_odb in
  let schema =
    Schema.create
      [
        {
          Schema.cname = "C";
          attrs =
            [
              { Schema.aname = "id"; atype = Schema.Prim Schema.P_int };
              { Schema.aname = "score"; atype = Schema.Prim Schema.P_float };
              { Schema.aname = "name"; atype = Schema.Prim Schema.P_string };
              { Schema.aname = "grade"; atype = Schema.Prim Schema.P_int };
            ];
        };
      ]
  in
  let db = Database.create ~name:"MB" ~schema in
  for i = 0 to objects - 1 do
    (* every 7th grade is null, so the null verdict path is exercised too *)
    let grade = if i mod 7 = 0 then Value.Null else Value.Int (i mod 50) in
    ignore
      (Database.add db ~cls:"C"
         [
           Value.Int i;
           Value.Float (float_of_int (i mod 1000) /. 8.0);
           Value.Str (Printf.sprintf "n%03d" (i mod 97));
           grade;
         ])
  done;
  let ext = Database.extent_handle db "C" in
  let operand = Value.Int 7 in
  let pred =
    Predicate.make ~path:[ "grade" ] ~op:Predicate.Eq ~operand
  in
  let boxed_pass () =
    let sat = ref 0 in
    Extent.iter
      (fun obj ->
        match Predicate.eval db obj pred with
        | Predicate.Sat -> incr sat
        | Predicate.Viol | Predicate.Blocked _ -> ())
      ext;
    !sat
  in
  let columnar_pass () =
    match Extent.eval_attr ext ~attr:"grade" ~op:Relop.Eq ~operand with
    | None -> assert false (* typed equality never falls back *)
    | Some codes ->
      let sat = ref 0 in
      for r = 0 to Extent.size ext - 1 do
        if Extent.verdict codes r = Extent.V_sat then incr sat
      done;
      !sat
  in
  (* the two arms must compute the same answer before either is timed *)
  if boxed_pass () <> columnar_pass () then begin
    Format.eprintf "microbench: boxed and columnar local-eval disagree@.";
    exit 1
  end;
  let boxed_eval = mb_rate ~per_pass:objects (mb_time boxed_pass) in
  let columnar_eval = mb_rate ~per_pass:objects (mb_time columnar_pass) in
  (* signature filtering: precomputed per-object signatures (the catalog
     form the boxed BLS/PLS path consulted) vs the extent's packed store *)
  let sigs = Extent.signatures ext in
  let boxed_sigs =
    Array.init (Extent.size ext) (fun r ->
        Signature.of_object (Extent.handle ext r))
  in
  let grade_index = 3 in
  let boxed_sig_pass () =
    let refuted = ref 0 in
    Array.iter
      (fun sg ->
        if not (Signature.may_satisfy sg ~index:grade_index ~op:Relop.Eq ~operand)
        then incr refuted)
      boxed_sigs;
    !refuted
  in
  let bitset_sig_pass () =
    Sigset.refuted_count sigs ~index:grade_index ~op:Relop.Eq ~operand
  in
  if boxed_sig_pass () <> bitset_sig_pass () then begin
    Format.eprintf "microbench: boxed and bitset signature filters disagree@.";
    exit 1
  end;
  let boxed_sig = mb_rate ~per_pass:objects (mb_time boxed_sig_pass) in
  let bitset_sig = mb_rate ~per_pass:objects (mb_time bitset_sig_pass) in
  (* certification throughput on a synthetic federation: local results are
     precomputed, the timed pass is the global merge + certification *)
  let fed =
    Synth.generate
      { Synth.default with Synth.seed = 11; n_entities = 300; p_host = 1.0 }
  in
  let analysis =
    Analysis.analyze
      (Global_schema.schema (Federation.global_schema fed))
      (Parser.parse "select X.key from K0 X where X.p0 = 1 and X.next.p1 = 2")
  in
  let results =
    List.map
      (fun (p : Localize.db_plan) ->
        Local_eval.run fed analysis ~db:p.Localize.db)
      (Localize.plan fed analysis)
  in
  let rows =
    List.fold_left
      (fun acc r -> acc + List.length r.Local_result.rows)
      0 results
  in
  let certify_pass () =
    Certify.run fed analysis ~results ~verdicts:[]
  in
  let certify_rate = mb_rate ~per_pass:rows (mb_time certify_pass) in
  let m =
    {
      Run_report.mb_objects = objects;
      mb_boxed_eval = boxed_eval;
      mb_columnar_eval = columnar_eval;
      mb_eval_speedup = columnar_eval /. boxed_eval;
      mb_boxed_sig = boxed_sig;
      mb_bitset_sig = bitset_sig;
      mb_sig_speedup = bitset_sig /. boxed_sig;
      mb_certify_rows = rows;
      mb_certify_rows_per_s = certify_rate;
    }
  in
  Format.printf "%-20s %14s %14s %9s@." "arm" "boxed/s" "columnar/s" "speedup";
  Format.printf "%-20s %14.0f %14.0f %8.1fx@." "local-eval" m.Run_report.mb_boxed_eval
    m.Run_report.mb_columnar_eval m.Run_report.mb_eval_speedup;
  Format.printf "%-20s %14.0f %14.0f %8.1fx@." "signature-filter"
    m.Run_report.mb_boxed_sig m.Run_report.mb_bitset_sig
    m.Run_report.mb_sig_speedup;
  Format.printf "%-20s %d rows at %.0f rows/s@." "certify"
    m.Run_report.mb_certify_rows m.Run_report.mb_certify_rows_per_s;
  m

(* ------------------------------------------------------------------ *)
(* Machine-readable result file *)

let timestamp () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let write_bench_json ~out ~seed ~parallel ~fault_sweep ~recovery_sweep
    ~serve_sweep ~latency ~auto_sweep ~overload_sweep ~gray_sweep ~microbench
    ~wall =
  let generated_at = timestamp () in
  let doc =
    Run_report.bench_to_json ~generated_at ~seed ~parallel ~fault_sweep
      ~recovery_sweep ~serve_sweep ~latency ~auto_sweep ~overload_sweep
      ~gray_sweep ~microbench ~strategies:(strategy_times ()) ~wall
  in
  (match Run_report.validate_bench doc with
  | Ok () -> ()
  | Error msg ->
    Format.eprintf "internal error: generated an invalid bench document: %s@." msg;
    exit 1);
  let file_stamp =
    String.map (function ':' -> '-' | c -> c) generated_at
  in
  let path = Filename.concat out (Printf.sprintf "BENCH_%s.json" file_stamp) in
  let oc = open_out path in
  output_string oc (Msdq_obs.Json.to_string ~indent:2 doc);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote %s@." path

let check_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  match Msdq_obs.Json.of_string contents with
  | Error msg ->
    Format.eprintf "%s: not valid JSON: %s@." path msg;
    exit 1
  | Ok doc -> (
    match Run_report.validate_bench doc with
    | Ok () ->
      let schema =
        match
          Option.(Msdq_obs.Json.member "schema" doc |> map Msdq_obs.Json.to_str |> join)
        with
        | Some s -> s
        | None -> Run_report.bench_schema
      in
      Format.printf "%s: valid %s document@." path schema
    | Error msg ->
      Format.eprintf "%s: %s@." path msg;
      exit 1)

(* ------------------------------------------------------------------ *)

let () =
  let samples = ref 500 in
  let seed = ref 1996 in
  let smoke = ref false in
  let out = ref "." in
  let check = ref None in
  let jobs = ref 0 in
  let spec =
    [
      ("--samples", Arg.Set_int samples, "N  parameter draws per point (default 500)");
      ("--quick", Arg.Unit (fun () -> samples := 120), " reduced draws for a fast run");
      ("--seed", Arg.Set_int seed, "N  random seed (default 1996)");
      ( "--jobs",
        Arg.Set_int jobs,
        "N  domain-pool size for the sweeps (default: all cores; 1 = sequential)" );
      ( "--smoke",
        Arg.Set smoke,
        " minimal run for CI: skip the sweeps, still write the JSON file" );
      ("--out", Arg.Set_string out, "DIR  directory for BENCH_<timestamp>.json (default .)");
      ( "--check",
        Arg.String (fun f -> check := Some f),
        "FILE  validate FILE against the bench schema (/1../10) and exit" );
    ]
  in
  Arg.parse spec
    (fun _ -> ())
    "bench/main.exe [--quick|--samples N|--jobs N|--smoke|--check FILE]";
  match !check with
  | Some path -> check_file path
  | None ->
    let jobs =
      if !jobs = 0 then Domain.recommended_domain_count ()
      else if !jobs >= 1 then !jobs
      else begin
        Format.eprintf "--jobs must be >= 1@.";
        exit 2
      end
    in
    let pool = if jobs > 1 then Some (Msdq_par.Pool.create ~jobs ()) else None in
    Fun.protect ~finally:(fun () -> Option.iter Msdq_par.Pool.shutdown pool)
    @@ fun () ->
    Format.printf
      "Reproduction harness: Koh & Chen, ICDCS 1996 — every table and figure.@.";
    Format.printf "seed: %d, jobs: %d@." !seed jobs;
    if !smoke then begin
      Format.printf
        "smoke mode: strategy times, parallel calibration + a minimal \
         microbench only.@.";
      tables ();
      let parallel = calibrate ?pool ~seed:!seed ~samples:40 () in
      let fault_sweep = fault_study ?pool ~seed:!seed ~samples:3 () in
      let recovery_sweep = recovery_study ?pool ~seed:!seed ~samples:2 () in
      let serve_sweep = serve_study ?pool ~seed:!seed ~samples:2 () in
      let latency = latency_study () in
      let auto_sweep = auto_study ~seed:!seed () in
      let overload_sweep = overload_study ?pool ~seed:!seed () in
      let gray_sweep = gray_study ?pool ~seed:!seed () in
      let microbench = microbench_study ~objects:20_000 () in
      let wall = microbenches ~quota:0.05 () in
      write_bench_json ~out:!out ~seed:!seed ~parallel ~fault_sweep
        ~recovery_sweep ~serve_sweep ~latency ~auto_sweep ~overload_sweep
        ~gray_sweep ~microbench ~wall
    end
    else begin
      Format.printf "parameter draws per point: %d@." !samples;
      tables ();
      figures ?pool ~samples:!samples ~seed:!seed ();
      concrete_validation ();
      planner_study ();
      straggler_study ();
      throughput_study ();
      let parallel = calibrate ?pool ~seed:!seed ~samples:!samples () in
      let fault_sweep = fault_study ?pool ~seed:!seed ~samples:12 () in
      let recovery_sweep = recovery_study ?pool ~seed:!seed ~samples:8 () in
      let serve_sweep = serve_study ?pool ~seed:!seed ~samples:6 () in
      let latency = latency_study () in
      let auto_sweep = auto_study ~seed:!seed () in
      let overload_sweep = overload_study ?pool ~seed:!seed () in
      let gray_sweep = gray_study ?pool ~seed:!seed () in
      let microbench = microbench_study ~objects:200_000 () in
      let wall = microbenches ~quota:0.4 () in
      write_bench_json ~out:!out ~seed:!seed ~parallel ~fault_sweep
        ~recovery_sweep ~serve_sweep ~latency ~auto_sweep ~overload_sweep
        ~gray_sweep ~microbench ~wall;
      Format.printf "@.done.@."
    end
