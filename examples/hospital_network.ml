(* A hospital network: patients treated at several hospitals, each hospital
   recording different attributes. Demonstrates

   - null values and missing attributes producing maybe results,
   - the disjunctive-predicate extension (OR in the where clause),
   - deep certification turning residual maybes into definite answers
     by chaining data across three databases.

   Run with: dune exec examples/hospital_network.exe *)

open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec

let prim_str name = { Schema.aname = name; atype = Schema.Prim Schema.P_string }
let prim_int name = { Schema.aname = name; atype = Schema.Prim Schema.P_int }
let complex name domain = { Schema.aname = name; atype = Schema.Complex domain }

let () =
  (* City General records insurers and treating doctors, but no blood type.
     Its Doctor class has no ward assignment. *)
  let general_schema =
    Schema.create
      [
        { Schema.cname = "Doctor"; attrs = [ prim_str "name" ] };
        {
          Schema.cname = "Patient";
          attrs =
            [
              prim_int "ssn";
              prim_str "name";
              prim_str "insurer";
              complex "doctor" "Doctor";
            ];
        };
      ]
  in
  (* St. Vincent records blood types and wards, but no insurer. *)
  let vincent_schema =
    Schema.create
      [
        {
          Schema.cname = "Ward";
          attrs = [ prim_str "name"; prim_int "floor" ];
        };
        {
          Schema.cname = "Doctor";
          attrs = [ prim_str "name"; complex "ward" "Ward" ];
        };
        {
          Schema.cname = "Patient";
          attrs =
            [
              prim_int "ssn";
              prim_str "name";
              prim_str "blood-type";
              complex "doctor" "Doctor";
            ];
        };
      ]
  in
  (* The research registry only knows doctors and wards. *)
  let registry_schema =
    Schema.create
      [
        { Schema.cname = "Ward"; attrs = [ prim_str "name"; prim_int "floor" ] };
        {
          Schema.cname = "Doctor";
          attrs = [ prim_str "name"; complex "ward" "Ward"; prim_str "speciality" ];
        };
      ]
  in

  let general = Database.create ~name:"general" ~schema:general_schema in
  let d_adler = Database.add general ~cls:"Doctor" [ Value.Str "Adler" ] in
  let d_brest = Database.add general ~cls:"Doctor" [ Value.Str "Brest" ] in
  let add_gp ssn name insurer doctor =
    ignore
      (Database.add general ~cls:"Patient"
         [ Value.Int ssn; Value.Str name; insurer; Value.Ref (Dbobject.loid doctor) ])
  in
  add_gp 100 "Omar" (Value.Str "AOK") d_adler;
  add_gp 101 "Nina" (Value.Str "TK") d_brest;
  add_gp 102 "Paula" Value.Null d_adler;

  let vincent = Database.create ~name:"vincent" ~schema:vincent_schema in
  let w_icu = Database.add vincent ~cls:"Ward" [ Value.Str "ICU"; Value.Int 3 ] in
  let _w_onc = Database.add vincent ~cls:"Ward" [ Value.Str "Oncology"; Value.Int 5 ] in
  let d_adler' =
    Database.add vincent ~cls:"Doctor" [ Value.Str "Adler"; Value.Ref (Dbobject.loid w_icu) ]
  in
  let d_chen =
    Database.add vincent ~cls:"Doctor" [ Value.Str "Chen"; Value.Null ]
  in
  let add_vp ssn name blood doctor =
    ignore
      (Database.add vincent ~cls:"Patient"
         [ Value.Int ssn; Value.Str name; blood; Value.Ref (Dbobject.loid doctor) ])
  in
  add_vp 100 "Omar" (Value.Str "A+") d_adler';
  add_vp 103 "Rosa" (Value.Str "0-") d_chen;
  add_vp 102 "Paula" Value.Null d_adler';

  let registry = Database.create ~name:"registry" ~schema:registry_schema in
  let w_icu'' = Database.add registry ~cls:"Ward" [ Value.Str "ICU"; Value.Int 3 ] in
  let _d_chen'' =
    Database.add registry ~cls:"Doctor"
      [ Value.Str "Chen"; Value.Ref (Dbobject.loid w_icu''); Value.Str "cardiology" ]
  in

  let fed =
    Federation.create
      ~databases:[ ("general", general); ("vincent", vincent); ("registry", registry) ]
      ~mapping:
        [
          ("Ward", [ ("vincent", "Ward"); ("registry", "Ward") ]);
          ( "Doctor",
            [ ("general", "Doctor"); ("vincent", "Doctor"); ("registry", "Doctor") ] );
          ("Patient", [ ("general", "Patient"); ("vincent", "Patient") ]);
        ]
      ~keys:[ ("Ward", "name"); ("Doctor", "name"); ("Patient", "ssn") ]
  in
  Format.printf "%a@.@." Federation.pp fed;

  (* A disjunctive query (the paper's announced future work, implemented as
     an extension): ICU patients, or those insured with AOK. *)
  let q =
    "select X.name from Patient X where X.doctor.ward.name = \"ICU\" or \
     X.insurer = \"AOK\""
  in
  Format.printf "query: %s@.@." q;

  let show title answer =
    Format.printf "--- %s ---@.%a@." title Answer.pp answer
  in
  (match Strategy.run_query Strategy.Bl fed q with
  | Ok (answer, _) -> show "BL (paper certification)" answer
  | Error msg -> Format.printf "error: %s@." msg);

  (* Rosa's doctor Chen has no ward at vincent; the registry knows Chen's
     ward, so the one-round check resolves her. Paula's blood type and
     insurer stay null federation-wide: a genuine maybe. Deep certification
     (extension) chains whatever a single round could not. *)
  let options = { Strategy.default_options with Strategy.deep_certify = true } in
  (match Strategy.run_query ~options Strategy.Bl fed q with
  | Ok (answer, _) -> show "BL + deep certification" answer
  | Error msg -> Format.printf "error: %s@." msg);

  (* CA agrees with the deep-certified localized answer. *)
  match Strategy.run_query Strategy.Ca fed q with
  | Ok (answer, _) -> show "CA (reference)" answer
  | Error msg -> Format.printf "error: %s@." msg
