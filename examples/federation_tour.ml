(* An end-to-end tour of the extensions on a federation loaded from the
   textual format:

   1. parse a federation file (three library branches with heterogeneous
      catalogs),
   2. let the cost-based planner pick an execution strategy,
   3. run it and grade the maybe results probabilistically,
   4. resolve the residual maybes with deep certification,
   5. draw the schedule as a Gantt chart.

   Run with: dune exec examples/federation_tour.exe *)

open Msdq_fed
open Msdq_query
open Msdq_exec
module Planner = Msdq_opt.Planner

let library_federation =
  {|# three library branches; only some track genres or conditions
database central
  class Author
    attr name string
    attr born int
  class Book
    attr isbn int
    attr title string
    attr author ref Author
    attr genre string
  object Author tolkien = "Tolkien", 1892
  object Author lem = "Lem", 1921
  object Book hobbit = 1001, "The Hobbit", @tolkien, "fantasy"
  object Book solaris = 1002, "Solaris", @lem, "sf"
  object Book fiasco = 1003, "Fiasco", @lem, null
database branch
  class Book
    attr isbn int
    attr title string
    attr condition string
  object Book b1 = 1001, "The Hobbit", "worn"
  object Book b2 = 1003, "Fiasco", "good"
  object Book b3 = 1004, "Roadside Picnic", "good"
database annex
  class Author
    attr name string
    attr born int
  class Book
    attr isbn int
    attr title string
    attr author ref Author
    attr genre string
  object Author strugatsky = "Strugatsky", 1925
  object Book a1 = 1004, "Roadside Picnic", @strugatsky, "sf"
global Author = central.Author, annex.Author key name
global Book = central.Book, branch.Book, annex.Book key isbn
|}

let () =
  (* 1. Load. *)
  let fed =
    match Loader.parse_result library_federation with
    | Ok fed -> fed
    | Error msg -> failwith msg
  in
  Format.printf "%a@.@." Federation.pp fed;

  (* "science-fiction books in good condition" — genre lives in central and
     annex, condition only in branch: every database is missing something. *)
  let q =
    "select X.title from Book X where X.genre = \"sf\" and X.condition = \"good\""
  in
  Format.printf "query: %s@.@." q;
  let analysis =
    Analysis.analyze (Global_schema.schema (Federation.global_schema fed))
      (Parser.parse q)
  in

  (* 2. Plan. *)
  let chosen, predictions = Planner.choose ~objective:Planner.Total_time fed analysis in
  List.iter (fun p -> Format.printf "  %a@." Planner.pp_prediction p) predictions;
  Format.printf "planner recommends %s@.@." (Strategy.to_string chosen);

  (* 3. Run it and grade the maybes. *)
  let options = Strategy.default_options in
  let answer, metrics = Strategy.run ~options chosen fed analysis in
  Format.printf "%a@." Answer.pp answer;
  let graded = Probabilistic.annotate fed analysis answer in
  Format.printf "@.probabilistic grading:@.%a@.@." Probabilistic.pp graded;

  (* 4. Deep certification resolves what one check round could not. *)
  let deep_options = { options with Strategy.deep_certify = true } in
  let deep_answer, _ = Strategy.run ~options:deep_options chosen fed analysis in
  Format.printf "after deep certification:@.%a@." Answer.pp deep_answer;

  (* 5. The schedule. *)
  Format.printf "@.schedule (%s):@.%a@.%a@."
    (Strategy.to_string chosen)
    (Msdq_simkit.Gantt.pp ~width:64)
    metrics.Strategy.trace Msdq_simkit.Gantt.pp_legend metrics.Strategy.trace
