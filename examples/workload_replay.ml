(* Workload replay: the same query stream served cold, warm, and under
   faults by the multi-query engine (lib/serve).

   A client replays the paper's Q1 eight times against the DB1/DB2/DB3
   federation. Run cold (cache disabled) every query pays the full
   localization + certification bill. Run warm, the first query fills the
   per-site extent caches and the global verdict cache, and the stream's
   tail is served largely from memory — same answers, a fraction of the
   simulated time. A third run injects a crash at the DB2/DB3 sites
   mid-stream: cache generations invalidate, demotions survive caching,
   and the answers still match what single-query execution would say.

   Run with: dune exec examples/workload_replay.exe *)

open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_serve
module Fault = Msdq_fault.Fault

let queries = 8
let spacing_ms = 25.0

let jobs analysis =
  List.init queries (fun i ->
      {
        Serve.strategy = Strategy.Bl;
        analysis;
        arrival = Time.ms (spacing_ms *. float_of_int i);
        deadline = None;
      })

let run_stream ~label ?fault ~cache_bytes ~window fed analysis =
  let options =
    match fault with
    | None -> Strategy.default_options
    | Some schedule -> { Strategy.default_options with Strategy.fault = schedule }
  in
  let cfg = { Serve.default_config with Serve.options; cache_bytes; window } in
  let out = Serve.run cfg fed (jobs analysis) in
  Format.printf "@.--- %s ---@." label;
  List.iter
    (fun (r : Serve.query_report) ->
      Format.printf
        "  q%-2d latency %a  extent-hits %d  verdict-hits %d  cached %d  \
         degraded %d@."
        r.Serve.index Time.pp r.Serve.latency r.Serve.extent_hits
        r.Serve.verdict_hits
        (Msdq_odb.Oid.Goid.Set.cardinal (Answer.cached r.Serve.answer))
        (Msdq_odb.Oid.Goid.Set.cardinal (Answer.degraded r.Serve.answer)))
    out.Serve.reports;
  Format.printf
    "  makespan %a, %.1f queries/simulated-second, %d messages, %d coalesced \
     checks@."
    Time.pp out.Serve.makespan out.Serve.throughput out.Serve.messages
    out.Serve.coalesced_checks;
  out

let () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  Format.printf "replaying %d x Q1 under BL, one query every %a@." queries
    Time.pp (Time.ms spacing_ms);

  let cold =
    run_stream ~label:"cold (cache disabled)" ~cache_bytes:0 ~window:Time.zero
      fed analysis
  in
  let warm =
    run_stream ~label:"warm (4 MiB caches, 500us batching window)"
      ~cache_bytes:(4 * 1024 * 1024) ~window:(Time.us 500.0) fed analysis
  in

  (* Both streams must answer identically — caching is about time only. *)
  let fp out =
    List.map
      (fun r -> Serve.answer_fingerprint r.Serve.answer)
      out.Serve.reports
  in
  assert (fp cold = fp warm);
  Format.printf "@.warm == cold on every answer; makespan %a -> %a@." Time.pp
    cold.Serve.makespan Time.pp warm.Serve.makespan;

  (* Crash every component site (sites 1..3; the global site is 0) for
     30ms mid-stream and make the global site's incoming link lossy.
     Demotions (lost check round trips) look the same warm and cold: a
     cached verdict never resurrects a row the fault model demoted. *)
  let outage = { Fault.down = Time.ms 60.0; up = Time.ms 90.0 } in
  let schedule =
    {
      Fault.seed = 7;
      slowdowns = [];
      partitions = [];
      sites =
        List.init 3 (fun i -> { Fault.site = i + 1; outages = [ outage ] });
      links = [ { Fault.dst = 0; drop = 0.25; inflate = 1.5; jitter = 0.0 } ];
    }
  in
  let faulty_cold =
    run_stream ~label:"faulty, cold" ~fault:schedule ~cache_bytes:0
      ~window:Time.zero fed analysis
  in
  let faulty_warm =
    run_stream ~label:"faulty, warm" ~fault:schedule
      ~cache_bytes:(4 * 1024 * 1024) ~window:(Time.us 500.0) fed analysis
  in
  assert (fp faulty_cold = fp faulty_warm);
  Format.printf
    "@.faulty warm == faulty cold on every answer: cache soundness holds \
     under the outage schedule@."
