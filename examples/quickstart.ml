(* Quickstart: build a two-database federation from scratch, integrate it,
   and run a global query whose predicates hit missing data.

   DB "hr" knows employees' salaries but not their cities; DB "crm" knows
   cities but not salaries; both know some of the same people. Querying
   "salary > 60000 and city = Berlin" produces certain results when the two
   sides jointly decide, and maybe results where data is missing
   federation-wide.

   Run with: dune exec examples/quickstart.exe *)

open Msdq_odb
open Msdq_fed
open Msdq_exec

let () =
  (* 1. Component schemas: same real-world class, different attributes. *)
  let hr_schema =
    Schema.create
      [
        {
          Schema.cname = "Employee";
          attrs =
            [
              { Schema.aname = "emp-no"; atype = Schema.Prim Schema.P_int };
              { Schema.aname = "name"; atype = Schema.Prim Schema.P_string };
              { Schema.aname = "salary"; atype = Schema.Prim Schema.P_int };
            ];
        };
      ]
  in
  let crm_schema =
    Schema.create
      [
        {
          Schema.cname = "Person";
          attrs =
            [
              { Schema.aname = "emp-no"; atype = Schema.Prim Schema.P_int };
              { Schema.aname = "name"; atype = Schema.Prim Schema.P_string };
              { Schema.aname = "city"; atype = Schema.Prim Schema.P_string };
            ];
        };
      ]
  in

  (* 2. Component databases with data; null values are ordinary. *)
  let hr = Database.create ~name:"hr" ~schema:hr_schema in
  let add_emp no name salary =
    ignore (Database.add hr ~cls:"Employee" [ Value.Int no; Value.Str name; salary ])
  in
  add_emp 1 "Ada" (Value.Int 90_000);
  add_emp 2 "Grace" (Value.Int 55_000);
  add_emp 3 "Edsger" Value.Null;
  add_emp 4 "Barbara" (Value.Int 72_000);

  let crm = Database.create ~name:"crm" ~schema:crm_schema in
  let add_person no name city =
    ignore (Database.add crm ~cls:"Person" [ Value.Int no; Value.Str name; city ])
  in
  add_person 1 "Ada" (Value.Str "Berlin");
  add_person 3 "Edsger" (Value.Str "Berlin");
  add_person 4 "Barbara" (Value.Str "Paris");
  add_person 5 "Alan" (Value.Str "Berlin");

  (* 3. Integrate: one global class; isomeric objects matched on emp-no. *)
  let fed =
    Federation.create
      ~databases:[ ("hr", hr); ("crm", crm) ]
      ~mapping:[ ("Employee", [ ("hr", "Employee"); ("crm", "Person") ]) ]
      ~keys:[ ("Employee", "emp-no") ]
  in
  Format.printf "%a@.@." Federation.pp fed;

  (* 4. A global query over the union schema. *)
  let q =
    "select X.name from Employee X where X.salary > 60000 and X.city = \"Berlin\""
  in
  Format.printf "query: %s@." q;

  (* 5. Run it under every strategy; all agree on the answer, and the
     metrics show how differently they get there. *)
  List.iter
    (fun strategy ->
      match Strategy.run_query strategy fed q with
      | Error msg -> Format.printf "error: %s@." msg
      | Ok (answer, metrics) ->
        Format.printf "@.--- %s ---@.%a%a@."
          (Strategy.to_string strategy)
          Msdq_query.Answer.pp answer Strategy.pp_metrics metrics)
    [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]

(* Expected:
   - Ada: salary 90000 (hr) and Berlin (crm) -> certain.
   - Edsger: salary null everywhere, Berlin -> maybe.
   - Grace: salary 55000 -> eliminated locally in hr.
   - Barbara: Paris -> eliminated; her hr maybe result is certified away by
     crm's local result being absent.
   - Alan: crm only, salary missing federation-wide, Berlin -> maybe. *)
