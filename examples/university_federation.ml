(* A multi-campus university federation at a more realistic scale.

   Three campus databases share students, supervisors and departments with
   heterogeneous schemas (each campus is missing some attributes) and plenty
   of isomeric objects. The example runs one nested query under all five
   strategies and compares their simulated execution metrics: the shapes the
   paper reports — localized beats centralized on total time, BL beats PL,
   response times far below CA's — show up on concrete data, not just in the
   parametric model.

   Run with: dune exec examples/university_federation.exe *)

open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload

let () =
  (* A 3-campus federation over a 3-level composition chain
     (student -> supervisor -> department in spirit: K0 -> K1 -> K2). *)
  let cfg =
    {
      Synth.seed = 2024;
      n_db = 3;
      n_classes = 3;
      n_entities = 400;
      n_pred_attrs = 3;
      domain = 5;
      p_copy = 0.35;
      p_host = 1.0;
      p_attr_present = 0.7;
      p_null = 0.1;
      p_divergent = 0.0;
    }
  in
  let fed = Synth.generate cfg in
  Format.printf "%a@.@." Federation.pp fed;

  (* "students whose record flag is 2, whose supervisor's p0 rating is 1 and
     whose department's p1 code is 3" — a nested conjunctive query. *)
  let q =
    "select X.key, X.p0 from K0 X where X.p1 = 2 and X.next.p0 = 1 and \
     X.next.next.p1 = 3"
  in
  Format.printf "query: %s@.@." q;

  let results =
    List.filter_map
      (fun strategy ->
        match Strategy.run_query strategy fed q with
        | Error msg ->
          Format.printf "%s: %s@." (Strategy.to_string strategy) msg;
          None
        | Ok (answer, metrics) -> Some (strategy, answer, metrics))
      Strategy.all
  in

  (* All strategies agree on the certain answers; deep certification would
     close the remaining maybe gap (see the hospital example). *)
  Format.printf "%-6s %10s %10s %12s %9s %8s %8s %8s@." "strat" "certain"
    "maybe" "total" "response" "shipped" "checks" "filtered";
  List.iter
    (fun (s, answer, m) ->
      Format.printf "%-6s %10d %10d %12s %9s %7dB %8d %8d@."
        (Strategy.to_string s)
        (List.length (Answer.certain answer))
        (List.length (Answer.maybe answer))
        (Format.asprintf "%a" Msdq_simkit.Time.pp m.Strategy.total)
        (Format.asprintf "%a" Msdq_simkit.Time.pp m.Strategy.response)
        m.Strategy.bytes_shipped m.Strategy.check_requests
        m.Strategy.checks_filtered)
    results;

  (* Where does each strategy spend its time? *)
  List.iter
    (fun (s, _, m) ->
      match s with
      | Strategy.Ca | Strategy.Bl | Strategy.Pl ->
        Format.printf "@.%s cost breakdown:@." (Strategy.to_string s);
        List.iter
          (fun (label, busy, count) ->
            Format.printf "  %-16s %10s  (%d tasks)@." label
              (Format.asprintf "%a" Msdq_simkit.Time.pp busy)
              count)
          m.Strategy.breakdown
      | Strategy.Bls | Strategy.Pls | Strategy.Lo | Strategy.Cf -> ())
    results;

  (* Sanity: the localized strategies agree pairwise and CA subsumes them. *)
  match results with
  | (_, ca, _) :: (_, bl, _) :: (_, pl, _) :: _ ->
    Format.printf "@.BL and PL agree: %b@." (Answer.same_statuses bl pl);
    Format.printf "CA subsumes BL:   %b@." (Answer.subsumes ~strong:ca ~weak:bl)
  | _ -> ()
