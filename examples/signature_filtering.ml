(* Ablation of the object-signature filter (the paper's future-work
   optimization, Section 5): replicated per-object signatures let a site
   refute single-attribute equality checks locally, skipping the round trip
   to the assistant's database.

   The example sweeps the null-value density of a synthetic federation — the
   denser the missing data, the more assistant checks exist to filter — and
   compares BL vs BLS and PL vs PLS on check traffic and simulated times.

   Run with: dune exec examples/signature_filtering.exe *)

open Msdq_exec
open Msdq_workload

let () =
  let query = "select X.key from K0 X where X.next.p0 = 2 and X.p1 = 1" in
  Format.printf "query: %s@.@." query;
  Format.printf "%-10s %-6s %8s %9s %9s %12s %10s@." "null rate" "strat"
    "checks" "filtered" "shipped" "total" "response";
  List.iter
    (fun p_null ->
      let cfg =
        {
          Synth.default with
          Synth.seed = 7;
          n_entities = 500;
          n_pred_attrs = 3;
          domain = 6;
          p_host = 1.0;
          p_attr_present = 0.85;
          p_copy = 0.5;
          p_null;
        }
      in
      let fed = Synth.generate cfg in
      List.iter
        (fun strategy ->
          match Strategy.run_query strategy fed query with
          | Error msg -> Format.printf "error: %s@." msg
          | Ok (_, m) ->
            Format.printf "%-10.2f %-6s %8d %9d %8dB %12s %10s@." p_null
              (Strategy.to_string strategy)
              m.Strategy.check_requests m.Strategy.checks_filtered
              m.Strategy.bytes_shipped
              (Format.asprintf "%a" Msdq_simkit.Time.pp m.Strategy.total)
              (Format.asprintf "%a" Msdq_simkit.Time.pp m.Strategy.response))
        [ Strategy.Bl; Strategy.Bls; Strategy.Pl; Strategy.Pls ];
      Format.printf "@.")
    [ 0.05; 0.15; 0.3 ];
  Format.printf
    "BLS/PLS answers are always identical to BL/PL — signatures have no@.\
     false negatives — but the filtered checks never cross the network.@."
