(* bench_gate — the CI bench-regression gate.

   Compares a freshly generated BENCH_*.json against the committed baseline
   in bench/results/ and fails (exit 1) on:

   - schema violations in either document (Run_report.validate_bench);
   - rank inversions in the fresh document's sweep sections: a recovery
     strategy's certain-set recall falling below the fail-stop baseline's,
     a serve-sweep speedup ending below its cold-cache starting point,
     AUTO's makespan exceeding the best fixed strategy's, an
     overload-sweep tail bound breaking (a rejecting shed policy's
     admitted p99 escaping twice the at-capacity p99, or the naive
     baseline's p99 failing to grow monotonically past it), or a
     gray-sweep win-condition break (the adaptive-timeout arm demoting
     more rows than the static arm on any cell, or failing to cut mean
     response on the slowdown cells by the pinned margin), or a
     microbench bar break (the columnar local-eval speedup falling under
     5x, or the bitset signature filter losing to the per-object one —
     both same-process ratios, so safe to gate cross-machine);
   - per-section simulated-time regressions beyond --tolerance (default
     0.2 = 20%) against the baseline.

   Simulated times are deterministic given a seed, so sweep sections are
   only compared when the two documents agree on seed and sample count
   (anything else is an apples-to-oranges diff and is skipped with a
   printed reason). The demo-workload strategies section and the latency
   quantiles use fixed internal seeds and are always compared. Bechamel
   wall-clock medians are machine-dependent and never gated.

   Usage: bench_gate --baseline FILE|DIR --fresh FILE [--tolerance F]
   A DIR baseline picks the lexicographically last BENCH_*.json in it
   (timestamps sort, so that is the newest). *)

module Json = Msdq_obs.Json
module Run_report = Msdq_exp.Run_report

let failed = ref false

let fail fmt =
  Format.kasprintf
    (fun s ->
      failed := true;
      Format.printf "FAIL %s@." s)
    fmt

let skip fmt = Format.kasprintf (fun s -> Format.printf "skip %s@." s) fmt
let pass fmt = Format.kasprintf (fun s -> Format.printf "ok   %s@." s) fmt

(* ---- JSON helpers ---- *)

let str k j = Option.bind (Json.member k j) Json.to_str
let int k j = Option.bind (Json.member k j) Json.to_int
let num k j = Option.bind (Json.member k j) Json.to_float
let arr k j = Option.bind (Json.member k j) Json.to_list

let floats k j =
  Option.map (List.filter_map Json.to_float) (arr k j)

(* Entries of an array section keyed by a name field. *)
let keyed ~key ~section j =
  match Option.bind (Json.member section j) Json.to_list with
  | None -> []
  | Some entries ->
    List.filter_map
      (fun e -> Option.map (fun name -> (name, e)) (str key e))
      entries

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* ---- document loading ---- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let load_doc ~role path =
  match Json.of_string (read_file path) with
  | Error msg ->
    fail "%s %s: not valid JSON: %s" role path msg;
    None
  | Ok doc -> (
    match Run_report.validate_bench doc with
    | Ok () ->
      pass "%s %s: valid %s document" role path
        (Option.value ~default:"(unversioned)" (str "schema" doc));
      Some doc
    | Error msg ->
      fail "%s %s: %s" role path msg;
      None)

let resolve_baseline path =
  if Sys.is_directory path then begin
    let entries =
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f ->
             String.length f > 6
             && String.sub f 0 6 = "BENCH_"
             && Filename.check_suffix f ".json")
      |> List.sort compare
    in
    match List.rev entries with
    | [] ->
      fail "baseline directory %s holds no BENCH_*.json" path;
      None
    | latest :: _ -> Some (Filename.concat path latest)
  end
  else Some path

(* ---- rank invariants on the fresh document ---- *)

(* Every recovery strategy must keep at least the fail-stop baseline's
   certain-set recall at every availability level — the point of the
   paper's degraded-answer semantics. *)
let check_fault_ranks fresh =
  match Json.member "fault_sweep" fresh with
  | None -> skip "fault ranks: fresh document has no fault_sweep section"
  | Some sweep -> (
    let series = keyed ~key:"label" ~section:"series" sweep in
    match List.assoc_opt "fail-stop" series with
    | None -> skip "fault ranks: no fail-stop series to rank against"
    | Some baseline ->
      let base_recalls =
        Option.value ~default:[] (floats "recalls" baseline)
      in
      List.iter
        (fun (label, ser) ->
          if label <> "fail-stop" then
            let recalls = Option.value ~default:[] (floats "recalls" ser) in
            List.iteri
              (fun i r ->
                match List.nth_opt base_recalls i with
                | Some b when r < b -. 1e-9 ->
                  fail
                    "fault ranks: %s recall %.3f below fail-stop %.3f at \
                     point %d"
                    label r b i
                | _ -> ())
              recalls)
        series;
      pass "fault ranks: every strategy dominates fail-stop recall")

(* Warm caches must not end slower than the cold-cache starting point. *)
let check_serve_ranks fresh =
  match Json.member "serve_sweep" fresh with
  | None -> skip "serve ranks: fresh document has no serve_sweep section"
  | Some sweep ->
    List.iter
      (fun (label, ser) ->
        match floats "speedups" ser with
        | Some (first :: _ as speedups) ->
          let last = List.nth speedups (List.length speedups - 1) in
          if last < first -. 1e-9 then
            fail "serve ranks: %s speedup fell from %.3f to %.3f across the \
                  cache sweep"
              label first last
        | _ -> ())
      (keyed ~key:"label" ~section:"series" sweep);
    pass "serve ranks: warm-cache speedups never end below cold start"

(* The optimizer's win condition, restated so a gate run over any pair of
   documents enforces it even if the validator's schema rank did not. *)
let check_auto_ranks fresh =
  match Json.member "auto_sweep" fresh with
  | None -> skip "auto ranks: fresh document has no auto_sweep section"
  | Some sweep -> (
    match (num "auto_makespan_s" sweep, arr "fixed" sweep) with
    | Some auto, Some fixed ->
      let best =
        List.fold_left
          (fun acc f ->
            match num "makespan_s" f with
            | Some m -> Float.min acc m
            | None -> acc)
          Float.infinity fixed
      in
      if auto > best *. (1.0 +. 1e-9) then
        fail "auto ranks: AUTO makespan %g s exceeds best fixed %g s" auto
          best
      else pass "auto ranks: AUTO makespan %g s <= best fixed %g s" auto best
    | _ -> skip "auto ranks: auto_sweep section incomplete")

(* The serving engine's robustness win condition, restated so a gate run
   over any pair of documents enforces it even if the validator's schema
   rank did not: the naive unbounded baseline's p99 grows monotonically
   with load and blows past twice the at-capacity p99, while rejecting
   shed policies keep admitted p99 within that bound at every overloaded
   point (degrade admits everything and is exempt). *)
let overload_points sweep =
  match arr "points" sweep with
  | None -> []
  | Some pts ->
    List.filter_map
      (fun p ->
        match (str "policy" p, num "multiplier" p, num "p99_ms" p) with
        | Some policy, Some m, Some p99 -> Some (policy, m, p99)
        | _ -> None)
      pts

let check_overload_ranks fresh =
  match Json.member "overload_sweep" fresh with
  | None -> skip "overload ranks: fresh document has no overload_sweep section"
  | Some sweep -> (
    match num "cap_p99_ms" sweep with
    | None -> skip "overload ranks: overload_sweep section incomplete"
    | Some cap ->
      let points = overload_points sweep in
      let row policy =
        List.sort
          (fun (_, a, _) (_, b, _) -> Float.compare a b)
          (List.filter (fun (p, _, _) -> String.equal p policy) points)
      in
      (match row "naive" with
      | [] -> skip "overload ranks: no naive baseline row to rank against"
      | naive ->
        ignore
          (List.fold_left
             (fun prev (_, m, p99) ->
               if p99 +. 1e-9 < prev then
                 fail "overload ranks: naive p99 %.2f ms drops at x%g" p99 m;
               p99)
             0.0 naive);
        let _, _, worst = List.nth naive (List.length naive - 1) in
        if worst <= 2.0 *. cap then
          fail
            "overload ranks: naive p99 %.2f ms never exceeds twice the \
             at-capacity p99 %.2f ms"
            worst cap);
      List.iter
        (fun policy ->
          List.iter
            (fun (_, m, p99) ->
              if m >= 2.0 && p99 > 2.0 *. cap *. (1.0 +. 1e-9) then
                fail
                  "overload ranks: %s p99 %.2f ms at x%g exceeds twice the \
                   at-capacity p99 %.2f ms"
                  policy p99 m cap)
            (row policy))
        [ "reject-newest"; "reject-oldest" ];
      pass
        "overload ranks: rejecting policies hold the 2x tail bound the \
         naive baseline breaks")

(* The gray-failure tolerance win condition, restated so a gate run over
   any pair of documents enforces it even if the validator's schema rank
   did not: on every (kind, severity) cell the adaptive-timeout arm
   demotes no more rows than the static arm, and on the slowdown cells it
   cuts mean response by at least the sweep's pinned margin. *)
let gray_points sweep =
  match arr "points" sweep with
  | None -> []
  | Some pts ->
    List.filter_map
      (fun p ->
        match
          ( str "policy" p,
            str "kind" p,
            str "severity" p,
            int "demoted_rows" p,
            num "mean_ms" p )
        with
        | Some policy, Some kind, Some sev, Some demoted, Some mean ->
          Some (policy, kind, sev, demoted, mean)
        | _ -> None)
      pts

let check_gray_ranks fresh =
  match Json.member "gray_sweep" fresh with
  | None -> skip "gray ranks: fresh document has no gray_sweep section"
  | Some sweep ->
    let points = gray_points sweep in
    let cell policy kind sev =
      List.find_opt
        (fun (p, k, s, _, _) ->
          String.equal p policy && String.equal k kind && String.equal s sev)
        points
    in
    let margin = Msdq_exp.Gray_sweep.response_margin in
    let cells =
      List.concat_map
        (fun k -> List.map (fun s -> (k, s)) [ "mild"; "severe" ])
        [ "slowdown"; "jitter"; "flap"; "oneway" ]
    in
    List.iter
      (fun (kind, sev) ->
        match (cell "static" kind sev, cell "adaptive" kind sev) with
        | Some (_, _, _, sd, sm), Some (_, _, _, ad, am) ->
          if ad > sd then
            fail
              "gray ranks: adaptive demotes %d rows on %s/%s, static only %d"
              ad kind sev sd;
          if
            String.equal kind "slowdown"
            && am > sm *. (1.0 -. margin) +. 1e-9
          then
            fail
              "gray ranks: adaptive mean %.2f ms on slowdown/%s is not \
               %.0f%% under the static %.2f ms"
              am sev (100.0 *. margin) sm
        | _ -> fail "gray ranks: %s/%s cell is missing an arm" kind sev)
      cells;
    pass
      "gray ranks: adaptive demotes no more than static everywhere and \
       wins the slowdown cells"

(* The columnar engine's acceptance bar (the /10 section): the same-process
   speedup of columnar over boxed local evaluation must hold >= 5x, and the
   bitset signature filter must not be slower than the per-object one.
   Raw objects/sec are machine-dependent and never compared across
   documents — only these within-document ratios are gated. *)
let check_microbench_ranks fresh =
  match Json.member "microbench" fresh with
  | None -> skip "microbench ranks: fresh document has no microbench section"
  | Some m ->
    let speedup section =
      Option.bind (Json.member section m) (num "speedup")
    in
    (match speedup "local_eval" with
    | None -> fail "microbench ranks: local_eval speedup missing"
    | Some s when s < 5.0 ->
      fail "microbench ranks: columnar local-eval speedup %.2fx below the \
            5x bar"
        s
    | Some s -> pass "microbench ranks: columnar local-eval speedup %.1fx" s);
    (match speedup "signature_filter" with
    | None -> fail "microbench ranks: signature_filter speedup missing"
    | Some s when s < 1.0 ->
      fail "microbench ranks: bitset signature filter %.2fx slower than the \
            per-object filter"
        s
    | Some s ->
      pass "microbench ranks: bitset signature-filter speedup %.1fx" s)

(* ---- regression comparisons against the baseline ---- *)

(* Lower-is-better metric: fresh must stay within (1 + tolerance) of the
   baseline. *)
let check_time ~tolerance ~what ~baseline ~fresh =
  if fresh > baseline *. (1.0 +. tolerance) +. 1e-12 then
    fail "%s: %g regressed beyond %g x (1 + %.2f)" what fresh baseline
      tolerance

(* Higher-is-better metric: fresh must stay above baseline / (1 + tol). *)
let check_rate ~tolerance ~what ~baseline ~fresh =
  if fresh < baseline /. (1.0 +. tolerance) -. 1e-12 then
    fail "%s: %g dropped beyond %g / (1 + %.2f)" what fresh baseline tolerance

let compare_strategies ~tolerance ~base ~fresh =
  let base_entries = keyed ~key:"name" ~section:"strategies" base in
  List.iter
    (fun (name, f) ->
      match List.assoc_opt name base_entries with
      | None -> skip "strategies %s: not in baseline" name
      | Some b ->
        List.iter
          (fun field ->
            match (num field b, num field f) with
            | Some baseline, Some fresh ->
              check_time ~tolerance
                ~what:(Printf.sprintf "strategies %s %s" name field)
                ~baseline ~fresh
            | _ -> ())
          [ "total_s"; "response_s" ])
    (keyed ~key:"name" ~section:"strategies" fresh);
  pass "strategies: per-strategy demo times within tolerance"

let compare_latency ~tolerance ~base ~fresh =
  match (Json.member "latency" base, Json.member "latency" fresh) with
  | Some _, Some _ ->
    let base_entries = keyed ~key:"name" ~section:"latency" base in
    List.iter
      (fun (name, f) ->
        match List.assoc_opt name base_entries with
        | None -> skip "latency %s: not in baseline" name
        | Some b ->
          List.iter
            (fun field ->
              match (num field b, num field f) with
              | Some baseline, Some fresh when baseline > 0.0 ->
                check_time ~tolerance
                  ~what:(Printf.sprintf "latency %s %s" name field)
                  ~baseline ~fresh
              | _ -> ())
            [ "p50_us"; "p99_us" ])
      (keyed ~key:"name" ~section:"latency" fresh);
    pass "latency: per-strategy quantiles within tolerance"
  | _ -> skip "latency: section missing from baseline or fresh document"

(* A sweep section is only comparable when both documents drew it from the
   same seed and sample count. *)
let comparable ~section ~fields ~base ~fresh =
  match (Json.member section base, Json.member section fresh) with
  | None, _ -> Error (section ^ ": baseline predates this section")
  | _, None -> Error (section ^ ": missing from the fresh document")
  | Some b, Some f ->
    let mismatches =
      List.filter_map
        (fun field ->
          match (int field b, int field f) with
          | Some x, Some y when x = y -> None
          | Some x, Some y ->
            Some (Printf.sprintf "%s %d vs %d" field x y)
          | _ -> Some (field ^ " missing"))
        fields
    in
    if mismatches = [] then Ok (b, f)
    else Error (section ^ ": " ^ String.concat ", " mismatches)

let compare_sweep_responses ~tolerance ~section ~base ~fresh =
  match comparable ~section ~fields:[ "seed"; "samples" ] ~base ~fresh with
  | Error reason -> skip "%s" reason
  | Ok (b, f) ->
    let base_series = keyed ~key:"label" ~section:"series" b in
    List.iter
      (fun (label, ser) ->
        match List.assoc_opt label base_series with
        | None -> skip "%s %s: not in baseline" section label
        | Some bser -> (
          match (floats "responses_s" bser, floats "responses_s" ser) with
          | Some bs, Some fs when bs <> [] ->
            check_time ~tolerance
              ~what:(Printf.sprintf "%s %s mean response" section label)
              ~baseline:(mean bs) ~fresh:(mean fs)
          | _ -> ()))
      (keyed ~key:"label" ~section:"series" f);
    pass "%s: mean responses within tolerance" section

let compare_serve_sweep ~tolerance ~base ~fresh =
  match
    comparable ~section:"serve_sweep"
      ~fields:[ "seed"; "samples"; "queries" ]
      ~base ~fresh
  with
  | Error reason -> skip "%s" reason
  | Ok (b, f) ->
    let base_series = keyed ~key:"label" ~section:"series" b in
    List.iter
      (fun (label, ser) ->
        match List.assoc_opt label base_series with
        | None -> skip "serve_sweep %s: not in baseline" label
        | Some bser -> (
          match (floats "throughputs" bser, floats "throughputs" ser) with
          | Some bs, Some fs when bs <> [] ->
            check_rate ~tolerance
              ~what:(Printf.sprintf "serve_sweep %s mean throughput" label)
              ~baseline:(mean bs) ~fresh:(mean fs)
          | _ -> ()))
      (keyed ~key:"label" ~section:"series" f);
    pass "serve_sweep: mean throughputs within tolerance"

let compare_auto_sweep ~tolerance ~base ~fresh =
  match
    comparable ~section:"auto_sweep"
      ~fields:[ "seed"; "queries"; "distinct" ]
      ~base ~fresh
  with
  | Error reason -> skip "%s" reason
  | Ok (b, f) ->
    (match (num "auto_makespan_s" b, num "auto_makespan_s" f) with
    | Some baseline, Some fresh ->
      check_time ~tolerance ~what:"auto_sweep AUTO makespan" ~baseline ~fresh
    | _ -> ());
    (match (num "rank_match_rate" b, num "rank_match_rate" f) with
    | Some baseline, Some fresh when fresh < baseline -. tolerance ->
      fail "auto_sweep: rank-match rate fell from %.2f to %.2f" baseline
        fresh
    | _ -> ());
    pass "auto_sweep: AUTO makespan and rank-match rate within tolerance"

let compare_overload_sweep ~tolerance ~base ~fresh =
  match
    comparable ~section:"overload_sweep"
      ~fields:[ "seed"; "queries"; "queue_limit" ]
      ~base ~fresh
  with
  | Error reason -> skip "%s" reason
  | Ok (b, f) ->
    (match (num "cap_p99_ms" b, num "cap_p99_ms" f) with
    | Some baseline, Some fresh when baseline > 0.0 ->
      check_time ~tolerance ~what:"overload_sweep at-capacity p99" ~baseline
        ~fresh
    | _ -> ());
    let controlled doc =
      match arr "points" doc with
      | None -> []
      | Some pts ->
        List.filter_map
          (fun p ->
            match (str "policy" p, num "goodput_qps" p) with
            | Some policy, Some g when policy <> "naive" -> Some g
            | _ -> None)
          pts
    in
    (match (controlled b, controlled f) with
    | (_ :: _ as bs), (_ :: _ as fs) ->
      check_rate ~tolerance ~what:"overload_sweep mean controlled goodput"
        ~baseline:(mean bs) ~fresh:(mean fs)
    | _ -> ());
    pass
      "overload_sweep: at-capacity p99 and controlled goodput within \
       tolerance"

let compare_gray_sweep ~tolerance ~base ~fresh =
  match
    comparable ~section:"gray_sweep" ~fields:[ "seed"; "queries" ] ~base
      ~fresh
  with
  | Error reason -> skip "%s" reason
  | Ok (b, f) ->
    let adaptive_means doc =
      List.filter_map
        (fun (policy, _, _, _, mean) ->
          if String.equal policy "adaptive" then Some mean else None)
        (gray_points doc)
    in
    (match (adaptive_means b, adaptive_means f) with
    | (_ :: _ as bs), (_ :: _ as fs) ->
      check_time ~tolerance ~what:"gray_sweep mean adaptive response"
        ~baseline:(mean bs) ~fresh:(mean fs)
    | _ -> ());
    pass "gray_sweep: adaptive response within tolerance"

(* ---- driver ---- *)

let () =
  let baseline = ref "" in
  let fresh = ref "" in
  let tolerance = ref 0.2 in
  let spec =
    [
      ( "--baseline",
        Arg.Set_string baseline,
        "PATH  baseline BENCH_*.json, or a directory (newest file wins)" );
      ("--fresh", Arg.Set_string fresh, "FILE  freshly generated BENCH_*.json");
      ( "--tolerance",
        Arg.Set_float tolerance,
        "F  allowed relative regression (default 0.2)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "bench_gate --baseline FILE|DIR --fresh FILE [--tolerance F]";
  if !baseline = "" || !fresh = "" then begin
    prerr_endline "bench_gate: --baseline and --fresh are required";
    exit 2
  end;
  if !tolerance < 0.0 || Float.is_nan !tolerance then begin
    prerr_endline "bench_gate: --tolerance must be >= 0";
    exit 2
  end;
  let tolerance = !tolerance in
  (match resolve_baseline !baseline with
  | None -> ()
  | Some base_path -> (
    let base = load_doc ~role:"baseline" base_path in
    let fresh = load_doc ~role:"fresh" !fresh in
    match (base, fresh) with
    | Some base, Some fresh ->
      check_fault_ranks fresh;
      check_serve_ranks fresh;
      check_auto_ranks fresh;
      check_overload_ranks fresh;
      check_gray_ranks fresh;
      check_microbench_ranks fresh;
      compare_strategies ~tolerance ~base ~fresh;
      compare_latency ~tolerance ~base ~fresh;
      compare_sweep_responses ~tolerance ~section:"fault_sweep" ~base ~fresh;
      compare_sweep_responses ~tolerance ~section:"recovery_sweep" ~base
        ~fresh;
      compare_serve_sweep ~tolerance ~base ~fresh;
      compare_auto_sweep ~tolerance ~base ~fresh;
      compare_overload_sweep ~tolerance ~base ~fresh;
      compare_gray_sweep ~tolerance ~base ~fresh
    | _ -> ()));
  if !failed then begin
    Format.printf "@.bench gate: FAILED@.";
    exit 1
  end
  else Format.printf "@.bench gate: passed@."
