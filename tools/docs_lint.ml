(* docs_lint: check that every relative markdown link in the repo
   resolves, and that no file under docs/ is orphaned.

   Walks the tree from the current directory (skipping _build, .git and
   node_modules), collects *.md files, extracts inline links and images
   ([text](target) / ![alt](target)), and verifies that each relative
   target exists on disk, resolved against the file's directory.
   External schemes (http:, https:, mailto:) and pure in-page anchors
   (#...) are ignored; a #fragment on a relative target is stripped
   before the existence check.

   A second pass walks the markdown link graph from README.md and
   reports any docs/*.md not reachable from it: a doc nobody links to
   from the index is invisible to readers and rots silently.

   Exit status 0 when every link resolves and docs/ has no orphans,
   1 otherwise (one line per problem). Run with:
   dune exec tools/docs_lint.exe *)

let skip_dirs = [ "_build"; ".git"; "node_modules" ]

let rec walk dir acc =
  Array.fold_left
    (fun acc entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then
        if List.mem entry skip_dirs then acc else walk path acc
      else if Filename.check_suffix entry ".md" then path :: acc
      else acc)
    acc (Sys.readdir dir)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let files = List.sort compare (walk "." []) in
  let problems = ref 0 in
  let links = ref [] in
  List.iter
    (fun file ->
      let dir = Filename.dirname file in
      let md_targets = ref [] in
      List.iter
        (fun target ->
          if not (Docs_lint_core.external_target target) then begin
            let rel = Docs_lint_core.strip_fragment target in
            let resolved =
              if Filename.is_relative rel then Filename.concat dir rel
              else Filename.concat "." rel
            in
            if rel <> "" then
              if not (Sys.file_exists resolved) then begin
                incr problems;
                Printf.printf "%s: broken link -> %s\n" file target
              end
              else if Filename.check_suffix rel ".md" then
                md_targets := resolved :: !md_targets
          end)
        (Docs_lint_core.targets_of
           (Docs_lint_core.strip_code (read_file file)));
      links := (file, List.rev !md_targets) :: !links)
    files;
  (* Orphan pass: every doc under docs/ must be reachable from the
     README's docs index by following markdown links. *)
  let candidates =
    List.filter (fun f -> String.length f > 7 && String.sub f 0 7 = "./docs/")
      files
  in
  List.iter
    (fun orphan ->
      incr problems;
      Printf.printf "%s: orphan — not reachable from README.md\n" orphan)
    (Docs_lint_core.orphans ~roots:[ "./README.md" ] ~links:!links ~candidates);
  if !problems > 0 then begin
    Printf.printf "%d problem(s) across %d markdown file(s)\n" !problems
      (List.length files);
    exit 1
  end
  else
    Printf.printf
      "docs-lint: %d markdown file(s), all links resolve, no orphans in docs/\n"
      (List.length files)
