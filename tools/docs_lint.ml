(* docs_lint: check that every relative markdown link in the repo resolves.

   Walks the tree from the current directory (skipping _build, .git and
   node_modules), collects *.md files, extracts inline links and images
   ([text](target) / ![alt](target)), and verifies that each relative
   target exists on disk, resolved against the file's directory. External
   schemes (http:, https:, mailto:) and pure in-page anchors (#...) are
   ignored; a #fragment on a relative target is stripped before the
   existence check.

   Exit status 0 when every link resolves, 1 otherwise (one line per
   broken link). Run with: dune exec tools/docs_lint.exe *)

let skip_dirs = [ "_build"; ".git"; "node_modules" ]

let rec walk dir acc =
  Array.fold_left
    (fun acc entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then
        if List.mem entry skip_dirs then acc else walk path acc
      else if Filename.check_suffix entry ".md" then path :: acc
      else acc)
    acc (Sys.readdir dir)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Matches [text](target) and ![alt](target); target is everything up to
   the first ')' or whitespace, which covers the links our docs write
   (no nested parens, optional "title" rejected as broken — we don't use
   them). *)
let link_re = Str.regexp "!?\\[[^]]*\\](\\([^) \t\n]+\\))"

(* Code is not prose: a literal [text](path) shown inside a fenced block
   or an inline `code span` is an example, not a link to resolve. Blank
   out fenced blocks line by line, then inline spans, before matching. *)
let fence_re = Str.regexp "^[ \t]*```"
let span_re = Str.regexp "`[^`\n]*`"

let strip_code text =
  let lines = String.split_on_char '\n' text in
  let _, stripped =
    List.fold_left
      (fun (in_fence, acc) line ->
        if Str.string_match fence_re line 0 then (not in_fence, "" :: acc)
        else if in_fence then (in_fence, "" :: acc)
        else (in_fence, Str.global_replace span_re "" line :: acc))
      (false, []) lines
  in
  String.concat "\n" (List.rev stripped)

let targets_of text =
  let rec collect pos acc =
    match Str.search_forward link_re text pos with
    | exception Not_found -> List.rev acc
    | _ ->
      let target = Str.matched_group 1 text in
      collect (Str.match_end ()) (target :: acc)
  in
  collect 0 []

let external_target t =
  String.length t = 0
  || t.[0] = '#'
  || List.exists
       (fun p -> String.length t >= String.length p
                 && String.sub t 0 (String.length p) = p)
       [ "http://"; "https://"; "mailto:" ]

let strip_fragment t =
  match String.index_opt t '#' with
  | None -> t
  | Some i -> String.sub t 0 i

let () =
  let files = List.sort compare (walk "." []) in
  let broken = ref 0 in
  List.iter
    (fun file ->
      let dir = Filename.dirname file in
      List.iter
        (fun target ->
          if not (external_target target) then begin
            let rel = strip_fragment target in
            let resolved =
              if Filename.is_relative rel then Filename.concat dir rel
              else Filename.concat "." rel
            in
            if rel <> "" && not (Sys.file_exists resolved) then begin
              incr broken;
              Printf.printf "%s: broken link -> %s\n" file target
            end
          end)
        (targets_of (strip_code (read_file file))))
    files;
  if !broken > 0 then begin
    Printf.printf "%d broken link(s) across %d markdown file(s)\n" !broken
      (List.length files);
    exit 1
  end
  else
    Printf.printf "docs-lint: %d markdown file(s), all relative links resolve\n"
      (List.length files)
