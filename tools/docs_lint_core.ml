(* Pure core of the docs linter: markdown link extraction, path
   normalization, and reachability over an in-memory link graph. The
   docs_lint executable wires this to the filesystem; factoring the
   logic here keeps the orphan detection unit-testable without touching
   disk. *)

(* Matches [text](target) and ![alt](target); target is everything up to
   the first ')' or whitespace, which covers the links our docs write
   (no nested parens, optional "title" rejected as broken — we don't use
   them). *)
let link_re = Str.regexp "!?\\[[^]]*\\](\\([^) \t\n]+\\))"

(* Code is not prose: a literal [text](path) shown inside a fenced block
   or an inline `code span` is an example, not a link to resolve. Blank
   out fenced blocks line by line, then inline spans, before matching. *)
let fence_re = Str.regexp "^[ \t]*```"
let span_re = Str.regexp "`[^`\n]*`"

let strip_code text =
  let lines = String.split_on_char '\n' text in
  let _, stripped =
    List.fold_left
      (fun (in_fence, acc) line ->
        if Str.string_match fence_re line 0 then (not in_fence, "" :: acc)
        else if in_fence then (in_fence, "" :: acc)
        else (in_fence, Str.global_replace span_re "" line :: acc))
      (false, []) lines
  in
  String.concat "\n" (List.rev stripped)

let targets_of text =
  let rec collect pos acc =
    match Str.search_forward link_re text pos with
    | exception Not_found -> List.rev acc
    | _ ->
      let target = Str.matched_group 1 text in
      collect (Str.match_end ()) (target :: acc)
  in
  collect 0 []

let external_target t =
  String.length t = 0
  || t.[0] = '#'
  || List.exists
       (fun p ->
         String.length t >= String.length p && String.sub t 0 (String.length p) = p)
       [ "http://"; "https://"; "mailto:" ]

let strip_fragment t =
  match String.index_opt t '#' with
  | None -> t
  | Some i -> String.sub t 0 i

(* Collapse "." and ".." segments so "./docs/X.md" and
   "docs/../docs/X.md" compare equal as graph nodes. *)
let normalize path =
  let segs = String.split_on_char '/' path in
  let stack =
    List.fold_left
      (fun stack seg ->
        match (seg, stack) with
        | ("" | "."), _ -> stack
        | "..", top :: rest when top <> ".." -> rest
        | s, _ -> s :: stack)
      [] segs
  in
  String.concat "/" (List.rev stack)

let reachable ~roots ~links =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (file, targets) ->
      Hashtbl.replace adj (normalize file) (List.map normalize targets))
    links;
  let seen = Hashtbl.create 16 in
  let rec visit node =
    let node = normalize node in
    if not (Hashtbl.mem seen node) then begin
      Hashtbl.add seen node ();
      List.iter visit (Option.value ~default:[] (Hashtbl.find_opt adj node))
    end
  in
  List.iter visit roots;
  seen

let orphans ~roots ~links ~candidates =
  let seen = reachable ~roots ~links in
  List.filter (fun c -> not (Hashtbl.mem seen (normalize c))) candidates
