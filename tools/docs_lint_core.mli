(** Pure core of the docs linter.

    Markdown link extraction, path normalization, and reachability over
    an in-memory link graph. The [docs_lint] executable wires this to
    the filesystem; keeping the logic here makes the orphan detection
    unit-testable without touching disk. *)

val strip_code : string -> string
(** Blank out fenced code blocks and inline code spans so literal
    [[text](path)] examples inside them are not treated as links. *)

val targets_of : string -> string list
(** All inline link and image targets in a markdown text, in order.
    Apply {!strip_code} first to skip examples inside code. *)

val external_target : string -> bool
(** True for targets the linter ignores: empty strings, pure in-page
    anchors ([#...]), and [http://], [https://] or [mailto:] URLs. *)

val strip_fragment : string -> string
(** Drop a trailing [#fragment] from a relative target, keeping the
    file path that must exist on disk. *)

val normalize : string -> string
(** Collapse ["."] and [".."] path segments so equivalent spellings of
    the same file (e.g. ["./docs/X.md"] and ["docs/../docs/X.md"])
    compare equal as graph nodes. *)

val reachable :
  roots:string list ->
  links:(string * string list) list ->
  (string, unit) Hashtbl.t
(** Breadth of the link graph: the set of nodes reachable from [roots]
    over [links], an adjacency list of (file, link targets) pairs. All
    paths are {!normalize}d before comparison. *)

val orphans :
  roots:string list ->
  links:(string * string list) list ->
  candidates:string list ->
  string list
(** The subset of [candidates] not {!reachable} from [roots] — files
    that exist but that no indexed page links to. *)
