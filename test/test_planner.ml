open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload
module Planner = Msdq_opt.Planner

let analyze fed src =
  Analysis.analyze (Global_schema.schema (Federation.global_schema fed)) (Parser.parse src)

let paper_case () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  (fed, analyze fed Paper_example.q1)

(* The profile expresses the real federation in Table 2 vocabulary. *)
let test_profile_paper () =
  let fed, analysis = paper_case () in
  let s = Planner.profile fed analysis in
  Alcotest.(check int) "three databases" 3 s.Params.n_db;
  Alcotest.(check int) "four involved classes" 4 (Array.length s.Params.classes);
  (* Class 0 is the range class Student: extents 3 (DB1), 3 (DB2), 0 (DB3). *)
  let student = s.Params.classes.(0) in
  Alcotest.(check (list int)) "student extents" [ 3; 3; 0 ]
    (Array.to_list (Array.map (fun cd -> cd.Params.n_o) student.Params.per_db));
  (* John is the only student entity with copies in both databases. *)
  Alcotest.(check (float 1e-9)) "student isomerism" 0.2 student.Params.r_iso;
  (* No predicate lands on Student itself. *)
  Alcotest.(check int) "student predicates" 0 student.Params.n_p;
  (* The Teacher class carries the speciality predicate: missing in DB1 and
     DB3, local in DB2. *)
  let teacher = s.Params.classes.(1) in
  Alcotest.(check int) "teacher predicates" 1 teacher.Params.n_p;
  Alcotest.(check (list int)) "teacher n_pa per db" [ 0; 1; 0 ]
    (Array.to_list (Array.map (fun cd -> cd.Params.n_pa) teacher.Params.per_db));
  (* Missing predicate attributes force r_m = 1 (paper's formula). *)
  Alcotest.(check (float 1e-9)) "teacher r_m in DB1" 1.0
    teacher.Params.per_db.(0).Params.r_m;
  (* Observed speciality selectivity: 1 of 2 non-null values is database. *)
  Alcotest.(check (float 1e-9)) "teacher r_pps in DB2" 0.5
    teacher.Params.per_db.(1).Params.r_pps

let test_profile_bounds () =
  (* Structural invariants on generated federations. *)
  for seed = 0 to 9 do
    let cfg = { Synth.default with Synth.seed } in
    let fed = Synth.generate cfg in
    let rng = Rng.create ~seed in
    match analyze fed (Ast.to_string (Synth.random_query rng cfg ~disjunctive:false)) with
    | exception Analysis.Error _ -> ()
    | analysis ->
      let s = Planner.profile fed analysis in
      Array.iter
        (fun gc ->
          if gc.Params.r_iso < 0.0 || gc.Params.r_iso > 1.0 then
            Alcotest.fail "r_iso out of [0,1]";
          if gc.Params.r_r < 0.0 || gc.Params.r_r > 1.0 then
            Alcotest.fail "r_r out of [0,1]";
          Array.iter
            (fun cd ->
              if cd.Params.n_pa > gc.Params.n_p then Alcotest.fail "n_pa > n_p";
              if cd.Params.r_pps < 0.0 || cd.Params.r_pps > 1.0 then
                Alcotest.fail "r_pps out of [0,1]";
              if cd.Params.r_m < 0.0 || cd.Params.r_m > 1.0 then
                Alcotest.fail "r_m out of [0,1]")
            gc.Params.per_db)
        s.Params.classes
  done

let test_predict_and_choose () =
  let fed, analysis = paper_case () in
  let predictions = Planner.predict fed analysis in
  Alcotest.(check int) "four predictions" 4 (List.length predictions);
  List.iter
    (fun p ->
      Alcotest.(check bool) "positive and ordered" true
        (Time.to_us p.Planner.total > 0.0
        && Time.compare p.Planner.response p.Planner.total <= 0))
    predictions;
  let chosen, sorted = Planner.choose ~objective:Planner.Total_time fed analysis in
  (match sorted with
  | best :: rest ->
    Alcotest.(check bool) "chosen is the cheapest" true
      (best.Planner.strategy = chosen);
    List.iter
      (fun p ->
        Alcotest.(check bool) "sorted ascending" true
          (Time.compare best.Planner.total p.Planner.total <= 0))
      rest
  | [] -> Alcotest.fail "no predictions");
  Alcotest.(check bool) "renders" true
    (String.length (Format.asprintf "%a" Planner.pp_prediction (List.hd sorted)) > 0)

(* The planner's recommendation is near-optimal when checked against the
   measured times of the concrete executors. *)
let test_choice_quality () =
  let cases =
    List.map
      (fun seed ->
        let cfg =
          {
            Synth.default with
            Synth.seed;
            n_entities = 150;
            p_host = 1.0;
            p_attr_present = 0.75;
            p_null = 0.12;
          }
        in
        (Synth.generate cfg, seed))
      [ 1; 2; 3; 4 ]
  in
  let query = "select X.key from K0 X where X.p0 = 2 and X.next.p1 = 1" in
  List.iter
    (fun (fed, seed) ->
      let analysis = analyze fed query in
      let chosen, _ = Planner.choose ~objective:Planner.Total_time fed analysis in
      let measured =
        List.map
          (fun s ->
            let _, m = Strategy.run s fed analysis in
            (s, Time.to_us m.Strategy.total))
          [ Strategy.Ca; Strategy.Cf; Strategy.Bl; Strategy.Pl ]
      in
      let best_time =
        List.fold_left (fun acc (_, t) -> Float.min acc t) Float.infinity measured
      in
      let chosen_time = List.assoc chosen measured in
      if chosen_time > best_time *. 1.35 then
        Alcotest.fail
          (Printf.sprintf
             "seed %d: planner chose %s (%.0fus) but the best costs %.0fus" seed
             (Strategy.to_string chosen) chosen_time best_time))
    cases

let suite =
  [
    Alcotest.test_case "profile on the paper example" `Quick test_profile_paper;
    Alcotest.test_case "profile bounds (10 seeds)" `Quick test_profile_bounds;
    Alcotest.test_case "predict and choose" `Quick test_predict_and_choose;
    Alcotest.test_case "choice quality vs measured" `Quick test_choice_quality;
  ]
