(* The parallel determinism contract, property-style: for random sweep
   grids, --jobs 1 and --jobs N produce identical figure tables, identical
   merged metrics snapshots and identical Run_report JSON — byte for byte,
   because every downstream export is a pure function of the figure data. *)

open Msdq_exp
module Json = Msdq_obs.Json
module Param_sim = Msdq_opt.Param_sim
module Metrics = Msdq_obs.Metrics
module Pool = Msdq_par.Pool

let figure_builders =
  [|
    ("fig9", Figures.fig9);
    ("fig10", Figures.fig10);
    ("fig11", Figures.fig11);
    ("ablation-signatures", Figures.ablation_signatures);
    ("ablation-checks", Figures.ablation_checks);
    ("ablation-semijoin", Figures.ablation_semijoin);
  |]

(* One random grid: which figure, how many draws per point, which seed. *)
let grid_arb =
  QCheck.(
    triple (int_bound (Array.length figure_builders - 1)) (1 -- 8) (0 -- 1000))

let build ?pool (which, samples, seed) =
  let registry = Metrics.create () in
  let _, builder = figure_builders.(which) in
  let fig = builder ?pool ~registry ~samples ~seed () in
  (fig, registry)

let prop_jobs_invariant =
  QCheck.Test.make ~name:"jobs=1 and jobs=4 emit identical bytes" ~count:12
    grid_arb (fun grid ->
      let seq_fig, seq_reg = build grid in
      let par_fig, par_reg =
        Pool.with_pool ~jobs:4 (fun pool -> build ~pool grid)
      in
      let fig_bytes f = Json.to_string ~indent:2 (Run_report.figure_to_json f) in
      let report_bytes f =
        Json.to_string ~indent:2 (Run_report.figures_to_json [ f ])
      in
      let reg_bytes r = Json.to_string ~indent:2 (Metrics.to_json r) in
      String.equal (fig_bytes seq_fig) (fig_bytes par_fig)
      && String.equal (report_bytes seq_fig) (report_bytes par_fig)
      && String.equal (reg_bytes seq_reg) (reg_bytes par_reg))

let prop_average_pool_invariant =
  QCheck.Test.make ~name:"Param_sim.average with and without a pool" ~count:20
    QCheck.(pair (1 -- 40) (0 -- 1000))
    (fun (samples, seed) ->
      let run ?pool () =
        Param_sim.average ?pool ~cost:Msdq_exec.Cost.default ~samples ~seed
          ~ranges:Msdq_workload.Params.default Msdq_exec.Strategy.Bl
      in
      let seq = run () in
      let par = Pool.with_pool ~jobs:3 (fun pool -> run ~pool ()) in
      Msdq_simkit.Time.compare seq.Param_sim.total par.Param_sim.total = 0
      && Msdq_simkit.Time.compare seq.Param_sim.response par.Param_sim.response
         = 0)

(* The same figure computed twice on one shared pool: no state bleeds from
   batch to batch. *)
let test_repeated_batches_stable () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let one () =
        let fig, _ = build ~pool (1, 4, 42) in
        Json.to_string (Run_report.figure_to_json fig)
      in
      let first = one () in
      for _ = 1 to 3 do
        Alcotest.(check string) "stable across batches" first (one ())
      done)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_jobs_invariant;
    QCheck_alcotest.to_alcotest prop_average_pool_invariant;
    Alcotest.test_case "repeated batches on one pool" `Quick
      test_repeated_batches_stable;
  ]
