open Msdq_odb

let test_create_ok () =
  let s = Fixtures.school_schema () in
  Alcotest.(check (list string)) "classes in order"
    [ "Department"; "Teacher"; "Student" ] (Schema.class_names s);
  Alcotest.(check bool) "mem" true (Schema.mem_class s "Teacher");
  Alcotest.(check bool) "not mem" false (Schema.mem_class s "Course");
  Alcotest.(check int) "arity" 3 (Schema.arity s "Student")

let test_attr_lookup () =
  let s = Fixtures.school_schema () in
  (match Schema.attr s ~cls:"Teacher" ~attr:"speciality" with
  | Some a ->
    Alcotest.(check bool) "primitive" true
      (Schema.equal_attr_type a.Schema.atype (Schema.Prim Schema.P_string))
  | None -> Alcotest.fail "speciality should exist");
  Alcotest.(check bool) "missing attribute" true
    (Schema.attr s ~cls:"Department" ~attr:"speciality" = None);
  Alcotest.(check (option int)) "index" (Some 1)
    (Schema.attr_index s ~cls:"Teacher" ~attr:"department");
  Alcotest.(check bool) "unknown class raises" true
    (try
       ignore (Schema.attr s ~cls:"Nope" ~attr:"x");
       false
     with Schema.Invalid _ -> true)

let expect_invalid name defs =
  Alcotest.(check bool) name true
    (try
       ignore (Schema.create defs);
       false
     with Schema.Invalid _ -> true)

let test_validation () =
  expect_invalid "duplicate class" [ Fixtures.dept; Fixtures.dept ];
  expect_invalid "dangling domain"
    [
      Schema.
        {
          cname = "A";
          attrs = [ { aname = "b"; atype = Complex "Missing" } ];
        };
    ];
  expect_invalid "duplicate attribute"
    [
      Schema.
        {
          cname = "A";
          attrs =
            [
              { aname = "x"; atype = Prim P_int };
              { aname = "x"; atype = Prim P_string };
            ];
        };
    ]

let test_cycles_allowed () =
  (* Composition cycles are legal: Person -> Person (spouse). *)
  let s =
    Schema.create
      [
        Schema.
          {
            cname = "Person";
            attrs = [ { aname = "spouse"; atype = Complex "Person" } ];
          };
      ]
  in
  Alcotest.(check int) "arity" 1 (Schema.arity s "Person")

let test_value_matches () =
  let s = Fixtures.school_schema () in
  let m = Schema.value_matches s in
  Alcotest.(check bool) "int ok" true (m (Schema.Prim Schema.P_int) (Value.Int 1));
  Alcotest.(check bool) "str vs int" false
    (m (Schema.Prim Schema.P_int) (Value.Str "x"));
  Alcotest.(check bool) "null matches everything" true
    (m (Schema.Prim Schema.P_bool) Value.Null);
  Alcotest.(check bool) "ref matches complex" true
    (m (Schema.Complex "Teacher") (Value.Ref (Oid.Loid.of_int 0)));
  Alcotest.(check bool) "int vs complex" false
    (m (Schema.Complex "Teacher") (Value.Int 3))

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  nl = 0 || at 0

let test_pp () =
  let s = Fixtures.school_schema () in
  let text = Format.asprintf "%a" Schema.pp s in
  List.iter
    (fun c ->
      Alcotest.(check bool) ("mentions " ^ c) true (contains ~needle:c text))
    [ "Student"; "Teacher"; "Department"; "speciality" ]

let suite =
  [
    Alcotest.test_case "create and introspect" `Quick test_create_ok;
    Alcotest.test_case "attribute lookup" `Quick test_attr_lookup;
    Alcotest.test_case "validation failures" `Quick test_validation;
    Alcotest.test_case "composition cycles allowed" `Quick test_cycles_allowed;
    Alcotest.test_case "value typing" `Quick test_value_matches;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
