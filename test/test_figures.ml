open Msdq_exec
open Msdq_exp

(* Reduced sample counts keep the suite fast; the bench harness runs the
   full 500-sample version. *)
let samples = 120
let seed = 7

let fig9 = lazy (Figures.fig9 ~samples ~seed ())
let fig10 = lazy (Figures.fig10 ~samples ~seed ())
let fig11 = lazy (Figures.fig11 ~samples ~seed ())
let ablation = lazy (Figures.ablation_signatures ~samples ~seed ())
let ablation_checks = lazy (Figures.ablation_checks ~samples ~seed ())

let assert_shapes fig =
  let checks = Shapes.check fig in
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) name true ok)
    checks

let test_fig9 () = assert_shapes (Lazy.force fig9)
let test_fig10 () = assert_shapes (Lazy.force fig10)
let test_fig11 () = assert_shapes (Lazy.force fig11)
let test_ablation () = assert_shapes (Lazy.force ablation)
let test_ablation_checks () = assert_shapes (Lazy.force ablation_checks)

let test_structure () =
  let fig = Lazy.force fig9 in
  Alcotest.(check int) "three series" 3 (List.length fig.Figures.series);
  List.iter
    (fun s ->
      Alcotest.(check int) "totals per point" (Array.length fig.Figures.xs)
        (Array.length s.Figures.totals);
      Alcotest.(check int) "responses per point" (Array.length fig.Figures.xs)
        (Array.length s.Figures.responses))
    fig.Figures.series;
  Alcotest.(check bool) "series_of finds CA" true
    (try
       ignore (Figures.series_of fig Strategy.Ca);
       true
     with Not_found -> false);
  Alcotest.(check bool) "series_of rejects BLS" true
    (try
       ignore (Figures.series_of fig Strategy.Bls);
       false
     with Not_found -> true)

let test_report_rendering () =
  let fig = Lazy.force fig11 in
  let text = Format.asprintf "%a" Report.pp_figure fig in
  Alcotest.(check bool) "mentions figure id" true
    (Testutil.contains ~needle:"fig11" text);
  Alcotest.(check bool) "mentions CA" true (Testutil.contains ~needle:"CA" text);
  let checks_text = Format.asprintf "%a" Report.pp_checks (Shapes.check fig) in
  Alcotest.(check bool) "checks render" true
    (Testutil.contains ~needle:"[ok]" checks_text);
  let chart =
    Format.asprintf "%a"
      (fun ppf fig -> Report.pp_ascii_chart ppf fig ~metric:`Total)
      fig
  in
  Alcotest.(check bool) "chart renders" true (Testutil.contains ~needle:"#" chart)

let test_csv () =
  let fig = Lazy.force fig10 in
  let csv = Report.to_csv fig in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row per x"
    (Array.length fig.Figures.xs + 1)
    (List.length lines);
  match lines with
  | header :: _ ->
    Alcotest.(check bool) "header names strategies" true
      (Testutil.contains ~needle:"CA total s" header
      && Testutil.contains ~needle:"PL response s" header)
  | [] -> Alcotest.fail "empty csv"

let suite =
  [
    Alcotest.test_case "fig9 shapes" `Slow test_fig9;
    Alcotest.test_case "fig10 shapes" `Slow test_fig10;
    Alcotest.test_case "fig11 shapes" `Slow test_fig11;
    Alcotest.test_case "ablation shapes" `Slow test_ablation;
    Alcotest.test_case "ablation-checks shapes" `Slow test_ablation_checks;
    Alcotest.test_case "figure structure" `Quick test_structure;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
    Alcotest.test_case "csv rendering" `Quick test_csv;
  ]
