open Msdq_fed
open Msdq_query

let ex = lazy (Paper_example.build ())

let plans () =
  let fed = (Lazy.force ex).Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  Localize.plan fed analysis

(* Figure 3(b): Q1 decomposes into Q1' on DB1 (keeps only the department
   predicate) and Q1'' on DB2 (keeps city and speciality). DB3 has no
   Student constituent, so no local query. *)
let test_q1_decomposition () =
  let plans = plans () in
  Alcotest.(check (list string)) "root-hosting databases" [ "DB1"; "DB2" ]
    (List.map (fun p -> p.Localize.db) plans);
  match plans with
  | [ db1; db2 ] ->
    Alcotest.(check (list string)) "Q1' keeps department predicate"
      [ "advisor.department.name = \"CS\"" ]
      (List.map Msdq_odb.Predicate.to_string db1.Localize.local_preds);
    Alcotest.(check (list string)) "Q1' unsolved"
      [ "address.city = \"Taipei\""; "advisor.speciality = \"database\"" ]
      (List.map Msdq_odb.Predicate.to_string db1.Localize.unsolved_preds);
    Alcotest.(check (list string)) "Q1'' keeps city and speciality"
      [ "address.city = \"Taipei\""; "advisor.speciality = \"database\"" ]
      (List.map Msdq_odb.Predicate.to_string db2.Localize.local_preds);
    Alcotest.(check (list string)) "Q1'' unsolved"
      [ "advisor.department.name = \"CS\"" ]
      (List.map Msdq_odb.Predicate.to_string db2.Localize.unsolved_preds)
  | _ -> Alcotest.fail "expected two plans"

let test_cut_details () =
  match plans () with
  | [ db1; db2 ] ->
    (* DB1: address missing at the local root class Student. *)
    (match (List.nth db1.Localize.atoms 0).Localize.locality with
    | Localize.Cut_at { at_class; rest } ->
      Alcotest.(check string) "cut at Student" "Student" at_class;
      Alcotest.(check (list string)) "rest" [ "address"; "city" ] rest
    | Localize.Local -> Alcotest.fail "address should be unsolved in DB1");
    (* DB1: speciality missing at the local branch class Teacher. *)
    (match (List.nth db1.Localize.atoms 1).Localize.locality with
    | Localize.Cut_at { at_class; rest } ->
      Alcotest.(check string) "cut at Teacher" "Teacher" at_class;
      Alcotest.(check (list string)) "rest" [ "speciality" ] rest
    | Localize.Local -> Alcotest.fail "speciality should be unsolved in DB1");
    (* DB2: department missing at its Teacher. *)
    (match (List.nth db2.Localize.atoms 2).Localize.locality with
    | Localize.Cut_at { at_class; rest } ->
      Alcotest.(check string) "cut at Teacher" "Teacher" at_class;
      Alcotest.(check (list string)) "rest" [ "department"; "name" ] rest
    | Localize.Local -> Alcotest.fail "department should be unsolved in DB2")
  | _ -> Alcotest.fail "expected two plans"

let test_local_query_rendering () =
  match plans () with
  | [ db1; _ ] ->
    let rendered = Ast.to_string db1.Localize.local_query in
    Alcotest.(check bool) "targets preserved" true
      (Testutil.contains ~needle:"X.name" rendered);
    Alcotest.(check bool) "annotated with db" true
      (Testutil.contains ~needle:"Student@DB1" rendered);
    Alcotest.(check bool) "keeps only local predicate" true
      (Testutil.contains ~needle:"department.name" rendered
      && not (Testutil.contains ~needle:"speciality" rendered))
  | _ -> Alcotest.fail "expected two plans"

(* A query whose predicates are all local everywhere decomposes into local
   queries with no unsolved predicates. *)
let test_fully_local () =
  let fed = (Lazy.force ex).Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis =
    Analysis.analyze schema
      (Parser.parse "select X.name from Student X where X.name = \"John\"")
  in
  let plans = Localize.plan fed analysis in
  List.iter
    (fun p ->
      Alcotest.(check int)
        (p.Localize.db ^ " has no unsolved predicates")
        0
        (List.length p.Localize.unsolved_preds))
    plans

let suite =
  [
    Alcotest.test_case "Q1 decomposition (fig 3b)" `Quick test_q1_decomposition;
    Alcotest.test_case "cut details" `Quick test_cut_details;
    Alcotest.test_case "local query rendering" `Quick test_local_query_rendering;
    Alcotest.test_case "fully local query" `Quick test_fully_local;
  ]
