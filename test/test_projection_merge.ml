(* Target projections merge across databases: a surviving entity's row fills
   each target from the first database that can derive it locally, so the
   user sees hr's salary and crm's city in one row. *)

open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec

let fed () =
  match Loader.parse_result Loader.example with
  | Ok fed -> fed
  | Error msg -> Alcotest.fail msg

let analyze fed src =
  Analysis.analyze (Global_schema.schema (Federation.global_schema fed)) (Parser.parse src)

let row_values answer goid_name =
  match
    List.find_opt
      (fun (r : Answer.row) ->
        match r.Answer.values with
        | Value.Str n :: _ -> String.equal n goid_name
        | _ -> false)
      (Answer.rows answer)
  with
  | Some r -> List.map Value.to_string r.Answer.values
  | None -> Alcotest.fail (goid_name ^ " not in answer")

let test_merged_projections () =
  let fed = fed () in
  let analysis =
    analyze fed "select X.name, X.salary, X.city from Employee X where X.emp-no >= 1"
  in
  List.iter
    (fun s ->
      let answer, _ = Strategy.run s fed analysis in
      (* Ada: salary from hr, city from crm, in one row. *)
      Alcotest.(check (list string))
        (Strategy.to_string s ^ ": ada's row merged")
        [ "Ada"; "90000"; "Berlin" ]
        (row_values answer "Ada");
      (* Zoe exists only in crm: salary missing -> null in the row. *)
      Alcotest.(check (list string))
        (Strategy.to_string s ^ ": zoe's missing salary")
        [ "Zoe"; "-"; "Berlin" ]
        (row_values answer "Zoe");
      (* Eve: null salary in hr, city from crm. *)
      Alcotest.(check (list string))
        (Strategy.to_string s ^ ": eve's row")
        [ "Eve"; "-"; "Paris" ]
        (row_values answer "Eve"))
    [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]

(* When only one database hosts the range class, the localized strategies
   degenerate gracefully: one local query, checks into the other databases
   still work. *)
let single_host_fed () =
  let prim_int name = { Schema.aname = name; atype = Schema.Prim Schema.P_int } in
  let prim_str name = { Schema.aname = name; atype = Schema.Prim Schema.P_string } in
  let s1 =
    Schema.create
      [
        { Schema.cname = "T"; attrs = [ prim_int "tid" ] };
        {
          Schema.cname = "S";
          attrs =
            [ prim_int "sid"; { Schema.aname = "adv"; atype = Schema.Complex "T" } ];
        };
      ]
  in
  let s2 =
    Schema.create
      [ { Schema.cname = "T"; attrs = [ prim_int "tid"; prim_str "field" ] } ]
  in
  let db1 = Database.create ~name:"db1" ~schema:s1 in
  let db2 = Database.create ~name:"db2" ~schema:s2 in
  let t = Database.add db1 ~cls:"T" [ Value.Int 7 ] in
  ignore (Database.add db1 ~cls:"S" [ Value.Int 1; Value.Ref (Dbobject.loid t) ]);
  ignore (Database.add db1 ~cls:"S" [ Value.Int 2; Value.Null ]);
  ignore (Database.add db2 ~cls:"T" [ Value.Int 7; Value.Str "db" ]);
  Federation.create
    ~databases:[ ("db1", db1); ("db2", db2) ]
    ~mapping:[ ("T", [ ("db1", "T"); ("db2", "T") ]); ("S", [ ("db1", "S") ]) ]
    ~keys:[ ("T", "tid"); ("S", "sid") ]

let test_single_host_root () =
  let fed = single_host_fed () in
  let analysis = analyze fed "select X.sid from S X where X.adv.field = \"db\"" in
  let run s = fst (Strategy.run s fed analysis) in
  let ca = run Strategy.Ca in
  (* sid 1: advisor's field resolved through db2's isomer -> certain.
     sid 2: null advisor, nothing to check -> maybe. *)
  Alcotest.(check int) "one certain" 1 (List.length (Answer.certain ca));
  Alcotest.(check int) "one maybe" 1 (List.length (Answer.maybe ca));
  List.iter
    (fun s ->
      match s with
      | Strategy.Lo ->
        (* LO cannot check, so sid 1 stays maybe. *)
        let a = run s in
        Alcotest.(check int) "LO: no certain" 0 (List.length (Answer.certain a));
        Alcotest.(check int) "LO: both maybe" 2 (List.length (Answer.maybe a))
      | Strategy.Cf ->
        (* CF answers like CA but certifies nothing via checks: its answer
           is computed over the integrated view. *)
        Alcotest.(check bool) "CF agrees with CA" true
          (Answer.same_statuses ca (run s))
      | Strategy.Ca | Strategy.Bl | Strategy.Pl | Strategy.Bls | Strategy.Pls ->
        Alcotest.(check bool)
          (Strategy.to_string s ^ " agrees with CA")
          true
          (Answer.same_statuses ca (run s)))
    Strategy.all

let suite =
  [
    Alcotest.test_case "projections merge across databases" `Quick
      test_merged_projections;
    Alcotest.test_case "single-host range class" `Quick test_single_host_root;
  ]
