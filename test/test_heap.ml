open Msdq_simkit

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.size h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek_priority h = None)

let test_ordering () =
  let h = Heap.create () in
  List.iter
    (fun (p, v) -> Heap.push h ~priority:p v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (0.5, "z") ];
  let drained = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
      drained := v :: !drained;
      drain ()
  in
  drain ();
  Alcotest.(check (list string)) "sorted" [ "z"; "a"; "b"; "c" ] (List.rev !drained)

let test_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~priority:1.0 v) [ 1; 2; 3; 4; 5 ];
  Heap.push h ~priority:0.0 0;
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
      order := v :: !order;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo among equal priorities" [ 0; 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_clear () =
  let h = Heap.create () in
  Heap.push h ~priority:1.0 "x";
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let prop_heapsort =
  QCheck.Test.make ~name:"heap pops in nondecreasing priority order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun priorities ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~priority:p p) priorities;
      let rec drain last acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (p, v) ->
          if p < last then QCheck.Test.fail_report "out of order";
          drain p (v :: acc)
      in
      let popped = drain neg_infinity [] in
      List.sort Float.compare priorities = List.sort Float.compare popped
      && List.length popped = List.length priorities)

let prop_interleaved =
  QCheck.Test.make ~name:"interleaved push/pop preserves contents" ~count:200
    QCheck.(list (pair (float_bound_inclusive 100.0) bool))
    (fun ops ->
      let h = Heap.create () in
      let pushed = ref 0 and popped = ref 0 in
      List.iter
        (fun (p, do_pop) ->
          if do_pop then (
            match Heap.pop h with None -> () | Some _ -> incr popped)
          else begin
            Heap.push h ~priority:p p;
            incr pushed
          end)
        ops;
      Heap.size h = !pushed - !popped)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "fifo tie-break" `Quick test_fifo_ties;
    Alcotest.test_case "clear" `Quick test_clear;
    QCheck_alcotest.to_alcotest prop_heapsort;
    QCheck_alcotest.to_alcotest prop_interleaved;
  ]
