open Msdq_odb
open Msdq_query

let g = Oid.Goid.of_int

let row goid status values =
  { Answer.goid = g goid; values; status }

let targets = [ [ "name" ] ]

let test_basic () =
  let a =
    Answer.make ~targets
      [
        row 2 Answer.Maybe [ Value.Str "Tony" ];
        row 1 Answer.Certain [ Value.Str "Hedy" ];
      ]
  in
  Alcotest.(check int) "size" 2 (Answer.size a);
  Alcotest.(check int) "certain" 1 (List.length (Answer.certain a));
  Alcotest.(check int) "maybe" 1 (List.length (Answer.maybe a));
  (match Answer.rows a with
  | [ r1; r2 ] ->
    Alcotest.(check bool) "sorted by goid" true
      (Oid.Goid.compare r1.Answer.goid r2.Answer.goid < 0)
  | _ -> Alcotest.fail "two rows");
  Alcotest.(check bool) "status lookup" true
    (Answer.status_of a (g 1) = Some Answer.Certain);
  Alcotest.(check bool) "missing lookup" true (Answer.status_of a (g 9) = None);
  (match Answer.find a (g 2) with
  | Some r -> Alcotest.(check bool) "find" true (r.Answer.status = Answer.Maybe)
  | None -> Alcotest.fail "find failed")

let test_duplicate_rejected () =
  Alcotest.(check bool) "duplicate goid" true
    (try
       ignore
         (Answer.make ~targets [ row 1 Answer.Certain []; row 1 Answer.Maybe [] ]);
       false
     with Invalid_argument _ -> true)

let test_same_statuses () =
  let a = Answer.make ~targets [ row 1 Answer.Certain []; row 2 Answer.Maybe [] ] in
  let b = Answer.make ~targets [ row 2 Answer.Maybe [ Value.Int 1 ]; row 1 Answer.Certain [] ] in
  let c = Answer.make ~targets [ row 1 Answer.Maybe []; row 2 Answer.Maybe [] ] in
  Alcotest.(check bool) "values ignored" true (Answer.same_statuses a b);
  Alcotest.(check bool) "status difference detected" false (Answer.same_statuses a c)

let test_subsumes () =
  (* strong decides what weak left maybe *)
  let weak = Answer.make ~targets [ row 1 Answer.Maybe []; row 2 Answer.Certain [] ] in
  let strong_promotes =
    Answer.make ~targets [ row 1 Answer.Certain []; row 2 Answer.Certain [] ]
  in
  let strong_eliminates = Answer.make ~targets [ row 2 Answer.Certain [] ] in
  let strong_bad_resurrects =
    Answer.make ~targets
      [ row 1 Answer.Maybe []; row 2 Answer.Certain []; row 3 Answer.Certain [] ]
  in
  let strong_bad_demotes = Answer.make ~targets [ row 1 Answer.Maybe []; row 2 Answer.Maybe [] ] in
  Alcotest.(check bool) "promotion ok" true
    (Answer.subsumes ~strong:strong_promotes ~weak);
  Alcotest.(check bool) "elimination ok" true
    (Answer.subsumes ~strong:strong_eliminates ~weak);
  Alcotest.(check bool) "identity ok" true (Answer.subsumes ~strong:weak ~weak);
  Alcotest.(check bool) "resurrection rejected" false
    (Answer.subsumes ~strong:strong_bad_resurrects ~weak);
  Alcotest.(check bool) "demotion rejected" false
    (Answer.subsumes ~strong:strong_bad_demotes ~weak)

let test_pp () =
  let a =
    Answer.make ~targets
      [ row 1 Answer.Certain [ Value.Str "Hedy" ]; row 2 Answer.Maybe [ Value.Null ] ]
  in
  let text = Format.asprintf "%a" Answer.pp a in
  Alcotest.(check bool) "mentions certain" true
    (Testutil.contains ~needle:"certain results (1)" text);
  Alcotest.(check bool) "mentions maybe" true
    (Testutil.contains ~needle:"maybe results (1)" text);
  Alcotest.(check bool) "mentions value" true (Testutil.contains ~needle:"Hedy" text)

let suite =
  [
    Alcotest.test_case "basic accessors" `Quick test_basic;
    Alcotest.test_case "duplicate goids rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "status comparison" `Quick test_same_statuses;
    Alcotest.test_case "subsumption" `Quick test_subsumes;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
