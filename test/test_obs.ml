(* The observability layer: JSON tree, metrics registry, span tracer. *)

module Json = Msdq_obs.Json
module Metrics = Msdq_obs.Metrics
module Tracer = Msdq_obs.Tracer

(* ---- Json ---- *)

let test_json_emit () =
  let j =
    Json.Obj
      [
        ("s", Json.Str "a\"b\nc");
        ("i", Json.Int (-3));
        ("f", Json.Float 2.5);
        ("whole", Json.Float 4.0);
        ("nan", Json.Float Float.nan);
        ("arr", Json.Arr [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("empty", Json.Obj []);
      ]
  in
  Alcotest.(check string) "compact"
    "{\"s\":\"a\\\"b\\nc\",\"i\":-3,\"f\":2.5,\"whole\":4.0,\"nan\":null,\"arr\":[null,true,false],\"empty\":{}}"
    (Json.to_string j)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("a", Json.Arr [ Json.Int 1; Json.Float 1.5; Json.Str "x" ]);
        ("b", Json.Obj [ ("nested", Json.Bool false) ]);
      ]
  in
  (match Json.of_string (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "tree equal" true (j = j')
  | Error msg -> Alcotest.fail msg);
  (match Json.of_string (Json.to_string ~indent:2 j) with
  | Ok j' -> Alcotest.(check bool) "pretty parses back" true (j = j')
  | Error msg -> Alcotest.fail msg);
  match Json.of_string "{\"k\": 1} garbage" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ()

let test_json_accessors () =
  match Json.of_string "{\"n\": 3, \"xs\": [1.5], \"s\": \"hi\"}" with
  | Error msg -> Alcotest.fail msg
  | Ok j ->
    Alcotest.(check (option int)) "int" (Some 3)
      Option.(Json.member "n" j |> map Json.to_int |> join);
    Alcotest.(check (option string)) "str" (Some "hi")
      Option.(Json.member "s" j |> map Json.to_str |> join);
    Alcotest.(check bool) "float accepts int" true
      (Option.(Json.member "n" j |> map Json.to_float |> join) = Some 3.0);
    Alcotest.(check bool) "missing member" true (Json.member "zzz" j = None)

(* ---- Metrics ---- *)

let test_counters () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~labels:[ ("phase", "O") ] "msdq_x_total" in
  Metrics.inc c 3;
  Metrics.inc c 4;
  Alcotest.(check int) "value" 7 (Metrics.value c);
  (* label order does not create a second series *)
  let c' =
    Metrics.counter reg
      ~labels:[ ("phase", "O") ]
      "msdq_x_total"
  in
  Metrics.inc c' 1;
  Alcotest.(check int) "same series" 8 (Metrics.value c);
  let d = Metrics.counter reg ~labels:[ ("phase", "P") ] "msdq_x_total" in
  Metrics.inc d 10;
  Alcotest.(check int) "total across labels" 18 (Metrics.total reg "msdq_x_total");
  Alcotest.(check (option int)) "find one series" (Some 10)
    (Metrics.find_counter reg ~labels:[ ("phase", "P") ] "msdq_x_total");
  Alcotest.(check int) "cardinality" 2 (Metrics.series_count reg)

let test_label_normalization () =
  let reg = Metrics.create () in
  let a =
    Metrics.counter reg ~labels:[ ("b", "2"); ("a", "1") ] "msdq_y_total"
  in
  let b =
    Metrics.counter reg ~labels:[ ("a", "1"); ("b", "2") ] "msdq_y_total"
  in
  Metrics.inc a 1;
  Metrics.inc b 1;
  Alcotest.(check int) "one series either order" 2 (Metrics.value a);
  Alcotest.(check int) "cardinality 1" 1 (Metrics.series_count reg)

let test_type_conflict () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "msdq_z");
  Alcotest.check_raises "counter vs gauge"
    (Invalid_argument "Metrics: msdq_z is a counter, requested as gauge")
    (fun () -> ignore (Metrics.gauge reg "msdq_z"))

let test_histogram_bucketing () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 1.0; 10.0; 100.0 |] "msdq_h" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 5.0; 99.0; 1000.0 ];
  Alcotest.(check int) "count" 5 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 1105.5 (Metrics.histogram_sum h);
  (match Metrics.cumulative_buckets h with
  | [ (le1, c1); (le10, c2); (le100, c3); (inf, c4) ] ->
    Alcotest.(check (float 0.)) "bound 1" 1.0 le1;
    (* 0.5 and 1.0 fall in the first bucket: bounds are inclusive *)
    Alcotest.(check int) "le 1" 2 c1;
    Alcotest.(check (float 0.)) "bound 10" 10.0 le10;
    Alcotest.(check int) "le 10" 3 c2;
    Alcotest.(check (float 0.)) "bound 100" 100.0 le100;
    Alcotest.(check int) "le 100" 4 c3;
    Alcotest.(check bool) "last bound is +inf" true (inf = infinity);
    Alcotest.(check int) "le inf = count" 5 c4
  | other ->
    Alcotest.failf "expected 4 cumulative buckets, got %d" (List.length other));
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Metrics: msdq_h2 bucket bounds must be increasing")
    (fun () -> ignore (Metrics.histogram reg ~buckets:[| 2.0; 1.0 |] "msdq_h2"))

let test_registry_json () =
  let reg = Metrics.create () in
  Metrics.inc (Metrics.counter reg ~labels:[ ("k", "v") ] "msdq_c_total") 5;
  Metrics.set (Metrics.gauge reg "msdq_g") 1.5;
  Metrics.observe (Metrics.histogram reg ~buckets:[| 1.0 |] "msdq_h") 3.0;
  let j = Metrics.to_json reg in
  (* must serialize (the +Inf histogram bound must not emit a bare token) *)
  let s = Json.to_string j in
  match Json.of_string s with
  | Error msg -> Alcotest.failf "registry json does not parse back: %s" msg
  | Ok j' ->
    Alcotest.(check bool) "roundtrip" true (j = j');
    let contains ~needle hay =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "+Inf encoded as a string" true
      (contains ~needle:"\"+Inf\"" s)

(* ---- Tracer ---- *)

(* A deterministic fake clock: advances 10us per read. *)
let fake_clock () =
  let t = ref 0.0 in
  fun () ->
    let v = !t in
    t := v +. 10.0;
    v

let test_with_span () =
  let tr = Tracer.create ~clock:(fake_clock ()) () in
  let result =
    Tracer.with_span tr ~cat:"outer" "a" (fun () ->
        Tracer.with_span tr "b" (fun () -> 42))
  in
  Alcotest.(check int) "thunk result" 42 result;
  match Tracer.spans tr with
  | [ inner; outer ] ->
    (* inner closes first; spans are recorded at close in oldest-first order *)
    Alcotest.(check string) "inner name" "b" inner.Tracer.name;
    Alcotest.(check string) "outer name" "a" outer.Tracer.name;
    Alcotest.(check string) "inner depth" "1"
      (List.assoc "depth" inner.Tracer.args);
    Alcotest.(check string) "outer depth" "0"
      (List.assoc "depth" outer.Tracer.args);
    Alcotest.(check int) "host pid" Tracer.host_pid outer.Tracer.pid;
    Alcotest.(check bool) "outer encloses inner" true
      (outer.Tracer.ts_us <= inner.Tracer.ts_us
      && outer.Tracer.ts_us +. outer.Tracer.dur_us
         >= inner.Tracer.ts_us +. inner.Tracer.dur_us)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_with_span_exception_safe () =
  let tr = Tracer.create ~clock:(fake_clock ()) () in
  (try Tracer.with_span tr "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1 (Tracer.count tr);
  (* depth restored: a subsequent span is back at depth 0 *)
  Tracer.with_span tr "after" (fun () -> ());
  match List.rev (Tracer.spans tr) with
  | after :: _ ->
    Alcotest.(check string) "depth restored" "0"
      (List.assoc "depth" after.Tracer.args)
  | [] -> Alcotest.fail "no spans"

let test_disabled_tracer_lazy () =
  let calls = ref 0 in
  Tracer.addf Tracer.disabled (fun () ->
      incr calls;
      {
        Tracer.name = "x";
        cat = "c";
        pid = 0;
        tid = 0;
        ts_us = 0.0;
        dur_us = 1.0;
        args = [];
      });
  Alcotest.(check int) "thunk not invoked when disabled" 0 !calls;
  Alcotest.(check int) "nothing recorded" 0 (Tracer.count Tracer.disabled);
  let tr = Tracer.create ~clock:(fake_clock ()) () in
  Tracer.addf tr (fun () ->
      incr calls;
      {
        Tracer.name = "x";
        cat = "c";
        pid = 0;
        tid = 0;
        ts_us = 0.0;
        dur_us = 1.0;
        args = [];
      });
  Alcotest.(check int) "thunk invoked when enabled" 1 !calls;
  Alcotest.(check int) "recorded" 1 (Tracer.count tr)

let test_chrome_export () =
  let spans =
    [
      {
        Tracer.name = "work";
        cat = "cpu";
        pid = 1;
        tid = 0;
        ts_us = 5.0;
        dur_us = 20.0;
        args = [ ("strategy", "BL") ];
      };
    ]
  in
  let j = Tracer.chrome ~process_names:[ (1, "site 1") ] spans in
  let events =
    Option.(Json.member "traceEvents" j |> map Json.to_list |> join)
  in
  match events with
  | None -> Alcotest.fail "no traceEvents"
  | Some evs ->
    Alcotest.(check int) "metadata + span" 2 (List.length evs);
    let xs =
      List.filter
        (fun e -> Option.(Json.member "ph" e |> map Json.to_str |> join) = Some "X")
        evs
    in
    (match xs with
    | [ x ] ->
      Alcotest.(check (option string)) "name" (Some "work")
        Option.(Json.member "name" x |> map Json.to_str |> join);
      Alcotest.(check bool) "args carried" true
        (Option.(
           Json.member "args" x
           |> map (Json.member "strategy")
           |> join |> map Json.to_str |> join)
        = Some "BL")
    | _ -> Alcotest.fail "expected exactly one complete event");
    Alcotest.(check (option string)) "time unit" (Some "ms")
      Option.(Json.member "displayTimeUnit" j |> map Json.to_str |> join)

let test_chrome_empty () =
  (* an empty span tree still yields a well-formed document *)
  let j = Tracer.chrome [] in
  (match Option.(Json.member "traceEvents" j |> map Json.to_list |> join) with
  | Some [] -> ()
  | Some evs -> Alcotest.failf "expected no events, got %d" (List.length evs)
  | None -> Alcotest.fail "no traceEvents member");
  match Json.of_string (Json.to_string j) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "empty trace does not parse back: %s" msg

let test_chrome_label_escaping () =
  let span name args =
    { Tracer.name; cat = "c"; pid = 1; tid = 0; ts_us = 0.0; dur_us = 1.0; args }
  in
  let j =
    Tracer.chrome
      ~process_names:[ (1, "site \"one\"\n") ]
      [ span "a\"b\\c\nd" [ ("k", "v\"w\n") ] ]
  in
  (* hostile names must survive serialize -> parse unchanged *)
  match Json.of_string (Json.to_string j) with
  | Error msg -> Alcotest.failf "escaped trace does not parse back: %s" msg
  | Ok j' ->
    let names =
      Option.(Json.member "traceEvents" j' |> map Json.to_list |> join)
      |> Option.value ~default:[]
      |> List.filter_map (fun e ->
             Option.(Json.member "name" e |> map Json.to_str |> join))
    in
    Alcotest.(check bool) "span name round-trips" true
      (List.mem "a\"b\\c\nd" names)

let test_chrome_flow_pairing () =
  let evs =
    Tracer.flow_pair ~id:7 ~src:(1, 0, 10.0) ~dst:(2, 1, 25.0) ()
  in
  let str m e = Option.(Json.member m e |> map Json.to_str |> join) in
  let int m e = Option.(Json.member m e |> map Json.to_int |> join) in
  match evs with
  | [ s; f ] ->
    Alcotest.(check (option string)) "start phase" (Some "s") (str "ph" s);
    Alcotest.(check (option string)) "finish phase" (Some "f") (str "ph" f);
    Alcotest.(check (option int)) "shared id (start)" (Some 7) (int "id" s);
    Alcotest.(check (option int)) "shared id (finish)" (Some 7) (int "id" f);
    Alcotest.(check (option int)) "source pid" (Some 1) (int "pid" s);
    Alcotest.(check (option int)) "destination pid" (Some 2) (int "pid" f);
    Alcotest.(check (option int)) "destination tid" (Some 1) (int "tid" f);
    (* the finish event binds to the enclosing slice so viewers draw the
       arrow into the destination span, not to its start point *)
    Alcotest.(check (option string)) "binding point" (Some "e") (str "bp" f)
  | evs -> Alcotest.failf "expected an s/f pair, got %d events" (List.length evs)

let test_chrome_duplicate_names_across_sites () =
  (* the same label on two sites must stay two distinct events in their own
     pid lanes — chrome export must not key anything by name *)
  let span pid =
    {
      Tracer.name = "read extent";
      cat = "disk";
      pid;
      tid = 0;
      ts_us = 0.0;
      dur_us = 5.0;
      args = [];
    }
  in
  let j = Tracer.chrome [ span 1; span 2 ] in
  let evs =
    Option.(Json.member "traceEvents" j |> map Json.to_list |> join)
    |> Option.value ~default:[]
  in
  let xs =
    List.filter
      (fun e -> Option.(Json.member "ph" e |> map Json.to_str |> join) = Some "X")
      evs
  in
  Alcotest.(check int) "both events survive" 2 (List.length xs);
  let pids =
    List.sort compare
      (List.filter_map
         (fun e -> Option.(Json.member "pid" e |> map Json.to_int |> join))
         xs)
  in
  Alcotest.(check (list int)) "each keeps its site lane" [ 1; 2 ] pids

let suite =
  [
    Alcotest.test_case "json emission" `Quick test_json_emit;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "counters and totals" `Quick test_counters;
    Alcotest.test_case "label normalization" `Quick test_label_normalization;
    Alcotest.test_case "type conflicts rejected" `Quick test_type_conflict;
    Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
    Alcotest.test_case "registry json" `Quick test_registry_json;
    Alcotest.test_case "nested spans" `Quick test_with_span;
    Alcotest.test_case "span exception safety" `Quick test_with_span_exception_safe;
    Alcotest.test_case "disabled tracer is lazy" `Quick test_disabled_tracer_lazy;
    Alcotest.test_case "chrome export" `Quick test_chrome_export;
    Alcotest.test_case "chrome export: empty span tree" `Quick test_chrome_empty;
    Alcotest.test_case "chrome export: label escaping" `Quick
      test_chrome_label_escaping;
    Alcotest.test_case "chrome export: flow-event pairing" `Quick
      test_chrome_flow_pairing;
    Alcotest.test_case "chrome export: duplicate names across sites" `Quick
      test_chrome_duplicate_names_across_sites;
  ]
