open Msdq_simkit
open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec

let setup () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  (ex, fed, analysis)

let check_q1_answer name answer =
  (match Answer.certain answer with
  | [ row ] ->
    Alcotest.(check (list string)) (name ^ ": certain row") [ "Hedy"; "Kelly" ]
      (List.map Value.to_string row.Answer.values)
  | rows ->
    Alcotest.fail (Printf.sprintf "%s: %d certain rows" name (List.length rows)));
  match Answer.maybe answer with
  | [ row ] ->
    Alcotest.(check (list string)) (name ^ ": maybe row") [ "Tony"; "Haley" ]
      (List.map Value.to_string row.Answer.values)
  | rows -> Alcotest.fail (Printf.sprintf "%s: %d maybe rows" name (List.length rows))

(* The strategies that perform assistant checking (or full integration). *)
let checking_strategies =
  [ Strategy.Ca; Strategy.Bl; Strategy.Pl; Strategy.Bls; Strategy.Pls ]

(* Every checking strategy produces the paper's Q1 answer. *)
let test_all_strategies_q1 () =
  let _, fed, analysis = setup () in
  List.iter
    (fun s ->
      let answer, metrics = Strategy.run s fed analysis in
      check_q1_answer (Strategy.to_string s) answer;
      Alcotest.(check int)
        (Strategy.to_string s ^ ": no conflicts")
        0 metrics.Strategy.conflicts)
    checking_strategies

(* LO skips phase O entirely: Hedy's department check never runs, so she
   stays maybe; Mary's violated department check never eliminates her. Only
   cross-database row merging still works (John's absent isomer). *)
let test_lo_q1 () =
  let _, fed, analysis = setup () in
  let answer, metrics = Strategy.run Strategy.Lo fed analysis in
  Alcotest.(check int) "no certain rows" 0 (List.length (Answer.certain answer));
  Alcotest.(check int) "Tony, Mary and Hedy stay maybe" 3
    (List.length (Answer.maybe answer));
  Alcotest.(check int) "no checks issued" 0 metrics.Strategy.check_requests;
  Alcotest.(check int) "John still eliminated" 1 metrics.Strategy.eliminated_at_global;
  (* BL subsumes LO: checking only refines. *)
  let bl, _ = Strategy.run Strategy.Bl fed analysis in
  Alcotest.(check bool) "BL subsumes LO" true (Answer.subsumes ~strong:bl ~weak:answer)

let test_statuses_agree () =
  let _, fed, analysis = setup () in
  let answers =
    List.map (fun s -> fst (Strategy.run s fed analysis)) checking_strategies
  in
  match answers with
  | ca :: rest ->
    List.iter
      (fun a -> Alcotest.(check bool) "same statuses" true (Answer.same_statuses ca a))
      rest
  | [] -> Alcotest.fail "no answers"

(* Metrics sanity: response <= total; localized strategies ship less than
   CA on this data; PL issues at least as many checks as BL. *)
let test_metric_relations () =
  let _, fed, analysis = setup () in
  let run s = snd (Strategy.run s fed analysis) in
  let ca = run Strategy.Ca
  and bl = run Strategy.Bl
  and pl = run Strategy.Pl
  and bls = run Strategy.Bls in
  List.iter
    (fun (m : Strategy.metrics) ->
      Alcotest.(check bool)
        (Strategy.to_string m.Strategy.strategy ^ ": response <= total")
        true
        (Time.compare m.Strategy.response m.Strategy.total <= 0))
    [ ca; bl; pl; bls ];
  Alcotest.(check bool) "BL ships fewer bytes than CA" true
    (bl.Strategy.bytes_shipped < ca.Strategy.bytes_shipped);
  Alcotest.(check bool) "PL checks >= BL checks" true
    (pl.Strategy.check_requests >= bl.Strategy.check_requests);
  Alcotest.(check bool) "CA issues no checks" true (ca.Strategy.check_requests = 0);
  Alcotest.(check bool) "signatures filter something here" true
    (bls.Strategy.check_requests < bl.Strategy.check_requests);
  Alcotest.(check bool) "BLS still finds the answer" true
    (bls.Strategy.checks_filtered > 0)

(* Deep certification on the paper example changes nothing (no residual
   chains), but must preserve the answer. *)
let test_deep_certify () =
  let _, fed, analysis = setup () in
  let options = { Strategy.default_options with Strategy.deep_certify = true } in
  let answer, _ = Strategy.run ~options Strategy.Bl fed analysis in
  check_q1_answer "BL+deep" answer

(* CA subsumes the localized answers in general; on the paper example they
   coincide. *)
let test_subsumption () =
  let _, fed, analysis = setup () in
  let ca, _ = Strategy.run Strategy.Ca fed analysis in
  let bl, _ = Strategy.run Strategy.Bl fed analysis in
  Alcotest.(check bool) "CA subsumes BL" true (Answer.subsumes ~strong:ca ~weak:bl)

(* Determinism: running twice yields identical metrics. *)
let test_deterministic () =
  let _, fed, analysis = setup () in
  List.iter
    (fun s ->
      let _, m1 = Strategy.run s fed analysis in
      let _, m2 = Strategy.run s fed analysis in
      Alcotest.(check bool)
        (Strategy.to_string s ^ " deterministic")
        true
        (Time.compare m1.Strategy.total m2.Strategy.total = 0
        && Time.compare m1.Strategy.response m2.Strategy.response = 0
        && m1.Strategy.bytes_shipped = m2.Strategy.bytes_shipped))
    Strategy.all

(* A query with no missing data anywhere: all strategies return identical
   certain-only answers and no check traffic. *)
let test_no_missing_data () =
  let _, fed, _ = setup () in
  let run s =
    match Strategy.run_query s fed "select X.name from Student X where X.name = \"John\"" with
    | Ok (answer, metrics) -> (answer, metrics)
    | Error msg -> Alcotest.fail msg
  in
  List.iter
    (fun s ->
      let answer, metrics = run s in
      Alcotest.(check int)
        (Strategy.to_string s ^ ": one certain John")
        1
        (List.length (Answer.certain answer));
      Alcotest.(check int)
        (Strategy.to_string s ^ ": no maybe")
        0
        (List.length (Answer.maybe answer));
      Alcotest.(check int)
        (Strategy.to_string s ^ ": no checks")
        0 metrics.Strategy.check_requests)
    Strategy.all

(* An empty where clause returns every student entity as certain. *)
let test_no_predicates () =
  let _, fed, _ = setup () in
  List.iter
    (fun s ->
      match Strategy.run_query s fed "select X.name from Student X" with
      | Ok (answer, _) ->
        Alcotest.(check int)
          (Strategy.to_string s ^ ": all five students")
          5
          (List.length (Answer.certain answer))
      | Error msg -> Alcotest.fail msg)
    Strategy.all

(* Disjunctive extension: "city = Taipei or age > 30". CA and the localized
   strategies agree on the paper data. *)
let test_disjunctive () =
  let _, fed, _ = setup () in
  let q =
    "select X.name from Student X where X.address.city = \"Taipei\" or X.age > 30"
  in
  let answers =
    List.map
      (fun s ->
        match Strategy.run_query s fed q with
        | Ok (answer, _) -> answer
        | Error msg -> Alcotest.fail msg)
      [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]
  in
  match answers with
  | ca :: rest ->
    (* John: age 31 -> certain regardless of city. Hedy/Fanny: Taipei ->
       certain. Tony: age 28, city unknown -> maybe. Mary: age 24, city
       unknown -> maybe. *)
    Alcotest.(check int) "three certain" 3 (List.length (Answer.certain ca));
    Alcotest.(check int) "two maybe" 2 (List.length (Answer.maybe ca));
    List.iter
      (fun a ->
        Alcotest.(check bool) "localized agrees with CA" true
          (Answer.same_statuses ca a))
      rest
  | [] -> Alcotest.fail "no answers"

(* Strategy string round trip. *)
let test_names () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "round trip" true
        (Strategy.of_string (Strategy.to_string s) = Some s))
    Strategy.all;
  Alcotest.(check bool) "unknown" true (Strategy.of_string "ZZ" = None);
  Alcotest.(check bool) "case-insensitive" true
    (Strategy.of_string "bl" = Some Strategy.Bl)

(* Malformed options fail eagerly — a readable Invalid_argument before any
   simulated work, not a crash (or silent nonsense) mid-run. *)
let test_options_validation () =
  let _, fed, analysis = setup () in
  let run_with options () =
    ignore (Strategy.run ~options Strategy.Bl fed analysis)
  in
  let speeds site_speeds =
    { Strategy.default_options with Strategy.site_speeds }
  in
  let rejected name ~mentions options =
    match run_with options () with
    | () -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: message %S mentions %S" name msg mentions)
        true
        (Testutil.contains ~needle:mentions msg)
  in
  rejected "duplicate site id" ~mentions:"duplicate site id 1"
    (speeds [ (1, 0.5); (2, 1.0); (1, 2.0) ]);
  rejected "negative site id" ~mentions:"negative site id" (speeds [ (-3, 1.0) ]);
  rejected "zero factor" ~mentions:"must be positive" (speeds [ (1, 0.0) ]);
  rejected "negative factor" ~mentions:"must be positive" (speeds [ (1, -2.0) ]);
  rejected "nan factor" ~mentions:"must be positive" (speeds [ (1, Float.nan) ]);
  rejected "infinite factor" ~mentions:"must be positive"
    (speeds [ (1, Float.infinity) ]);
  rejected "zero retry attempts" ~mentions:"max_attempts"
    {
      Strategy.default_options with
      Strategy.retry = { Strategy.default_retry with Strategy.max_attempts = 0 };
    };
  rejected "backoff below 1" ~mentions:"backoff"
    {
      Strategy.default_options with
      Strategy.retry = { Strategy.default_retry with Strategy.backoff = 0.5 };
    };
  (* valid settings still run *)
  run_with (speeds [ (0, 2.0); (1, 0.25) ]) ()

let test_metrics_render () =
  let _, fed, analysis = setup () in
  let _, m = Strategy.run Strategy.Bl fed analysis in
  let text = Format.asprintf "%a" Strategy.pp_metrics m in
  Alcotest.(check bool) "mentions BL" true (Testutil.contains ~needle:"BL" text);
  Alcotest.(check bool) "has breakdown entries" true
    (List.length m.Strategy.breakdown > 0)

let suite =
  [
    Alcotest.test_case "all strategies answer Q1" `Quick test_all_strategies_q1;
    Alcotest.test_case "LO ablation on Q1" `Quick test_lo_q1;
    Alcotest.test_case "statuses agree on paper data" `Quick test_statuses_agree;
    Alcotest.test_case "metric relations" `Quick test_metric_relations;
    Alcotest.test_case "deep certification" `Quick test_deep_certify;
    Alcotest.test_case "CA subsumes BL" `Quick test_subsumption;
    Alcotest.test_case "deterministic runs" `Quick test_deterministic;
    Alcotest.test_case "no missing data" `Quick test_no_missing_data;
    Alcotest.test_case "no predicates" `Quick test_no_predicates;
    Alcotest.test_case "disjunctive extension" `Quick test_disjunctive;
    Alcotest.test_case "strategy names" `Quick test_names;
    Alcotest.test_case "eager options validation" `Quick test_options_validation;
    Alcotest.test_case "metrics rendering" `Quick test_metrics_render;
  ]
