(* Heterogeneous site speeds (extension): the engine scales task durations
   by per-resource speed factors, and the strategies expose them through
   [options.site_speeds]. *)

open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec

let check_time = Alcotest.(check (float 1e-6))

let test_engine_scaling () =
  let e = Engine.create () in
  Engine.set_speed e ~site:0 ~kind:Resource.Cpu ~factor:2.0;
  Engine.set_speed e ~site:1 ~kind:Resource.Cpu ~factor:0.5;
  let fast = Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"fast" ~duration:(Time.us 10.0) () in
  let slow = Engine.task e ~site:1 ~kind:Resource.Cpu ~label:"slow" ~duration:(Time.us 10.0) () in
  let plain = Engine.task e ~site:2 ~kind:Resource.Cpu ~label:"plain" ~duration:(Time.us 10.0) () in
  Engine.run e;
  check_time "2x faster" 5.0 (Time.to_us (Engine.finish_time e fast));
  check_time "2x slower" 20.0 (Time.to_us (Engine.finish_time e slow));
  check_time "unaffected" 10.0 (Time.to_us (Engine.finish_time e plain));
  (* Stats account the scaled (actual) busy time. *)
  check_time "total is scaled work" 35.0 (Time.to_us (Stats.total_busy (Engine.stats e)))

let test_engine_scaling_per_kind () =
  let e = Engine.create () in
  Engine.set_speed e ~site:0 ~kind:Resource.Disk ~factor:4.0;
  let disk = Engine.task e ~site:0 ~kind:Resource.Disk ~label:"d" ~duration:(Time.us 8.0) () in
  let cpu = Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"c" ~duration:(Time.us 8.0) () in
  Engine.run e;
  check_time "disk scaled" 2.0 (Time.to_us (Engine.finish_time e disk));
  check_time "cpu untouched" 8.0 (Time.to_us (Engine.finish_time e cpu))

let test_invalid_factor () =
  let e = Engine.create () in
  List.iter
    (fun factor ->
      Alcotest.(check bool) "rejected" true
        (try
           Engine.set_speed e ~site:0 ~kind:Resource.Cpu ~factor;
           false
         with Invalid_argument _ -> true))
    [ 0.0; -1.0; Float.nan; Float.infinity ]

(* A straggler site slows every strategy's response; the effect is bounded
   (factor 1 with no speed changes reproduces the baseline exactly). *)
let test_straggler_strategy () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  let run speeds s =
    let options = { Strategy.default_options with Strategy.site_speeds = speeds } in
    snd (Strategy.run ~options s fed analysis)
  in
  List.iter
    (fun s ->
      let base = run [] s in
      let neutral = run [ (1, 1.0) ] s in
      Alcotest.(check bool)
        (Strategy.to_string s ^ ": neutral factor is identity")
        true
        (Time.compare base.Strategy.response neutral.Strategy.response = 0
        && Time.compare base.Strategy.total neutral.Strategy.total = 0);
      (* Slow DB1 (site 1) by 4x. *)
      let straggler = run [ (1, 0.25) ] s in
      Alcotest.(check bool)
        (Strategy.to_string s ^ ": straggler slows the query")
        true
        (Time.compare base.Strategy.response straggler.Strategy.response < 0
        && Time.compare base.Strategy.total straggler.Strategy.total < 0);
      (* Speeding every site up 2x at least halves nothing less... the
         network is unscaled, so response shrinks but not below the wire
         time. *)
      let fast = run [ (0, 2.0); (1, 2.0); (2, 2.0); (3, 2.0) ] s in
      Alcotest.(check bool)
        (Strategy.to_string s ^ ": faster machines, faster answer")
        true
        (Time.compare fast.Strategy.response base.Strategy.response < 0))
    [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]

(* The answers are hardware-independent. *)
let test_answers_unaffected () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  let options =
    { Strategy.default_options with Strategy.site_speeds = [ (1, 0.1); (2, 3.0) ] }
  in
  let base, _ = Strategy.run Strategy.Bl fed analysis in
  let skewed, _ = Strategy.run ~options Strategy.Bl fed analysis in
  Alcotest.(check bool) "same answer" true (Answer.same_statuses base skewed)

let suite =
  [
    Alcotest.test_case "engine scaling" `Quick test_engine_scaling;
    Alcotest.test_case "per-kind scaling" `Quick test_engine_scaling_per_kind;
    Alcotest.test_case "invalid factors" `Quick test_invalid_factor;
    Alcotest.test_case "straggler strategies" `Quick test_straggler_strategy;
    Alcotest.test_case "answers unaffected" `Quick test_answers_unaffected;
  ]
