open Msdq_odb
open Msdq_fed
open Msdq_query

let ex = lazy (Paper_example.build ())

let gschema () =
  Global_schema.schema (Federation.global_schema (Lazy.force ex).Paper_example.federation)

let analyze src = Analysis.analyze (gschema ()) (Parser.parse src)

let test_q1 () =
  let a = analyze Paper_example.q1 in
  Alcotest.(check string) "range" "Student" a.Analysis.range_class;
  (* Teacher precedes Address: the advisor.name target is analyzed before
     the where clause. *)
  Alcotest.(check (list string)) "involved classes"
    [ "Student"; "Teacher"; "Address"; "Department" ]
    a.Analysis.classes_involved;
  Alcotest.(check (list string)) "branch classes"
    [ "Teacher"; "Address"; "Department" ]
    (Analysis.branch_classes a);
  Alcotest.(check int) "three atoms" 3 (List.length a.Analysis.atoms);
  Alcotest.(check int) "two targets" 2 (List.length a.Analysis.targets)

let test_predicates_on_class () =
  let a = analyze Paper_example.q1 in
  Alcotest.(check int) "one predicate lands on Address" 1
    (List.length (Analysis.predicates_on_class a "Address"));
  Alcotest.(check int) "one on Teacher (speciality)" 1
    (List.length (Analysis.predicates_on_class a "Teacher"));
  Alcotest.(check int) "one on Department" 1
    (List.length (Analysis.predicates_on_class a "Department"));
  Alcotest.(check int) "none directly on Student" 0
    (List.length (Analysis.predicates_on_class a "Student"))

let expect_error src fragment =
  match analyze src with
  | exception Analysis.Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "mentions %S in %S" fragment msg)
      true
      (Testutil.contains ~needle:fragment msg)
  | _ -> Alcotest.fail ("should not analyze: " ^ src)

let test_validation_errors () =
  expect_error "select X.name from Course X" "unknown range class";
  expect_error "select X.nickname from Student X" "no attribute";
  expect_error "select X.advisor from Student X" "complex";
  expect_error "select X.name from Student X where X.advisor = 1" "complex";
  expect_error "select X.name from Student X where X.age = \"old\"" "inhabit";
  expect_error "select X.name from Student X where X.name.length = 1" "primitive";
  expect_error "select X.name from Student X where X.advisor.missing = 1" "no attribute"

(* Analysis accepts queries whose attributes exist globally even when some
   constituent misses them: global validity is about the union schema. *)
let test_union_visibility () =
  let a =
    analyze "select X.name from Student X where X.age > 30 and X.address.city = \"Taipei\""
  in
  Alcotest.(check int) "two atoms" 2 (List.length a.Analysis.atoms)

let test_disjunctive_analysis () =
  let a =
    analyze
      "select X.name from Student X where X.age > 30 or not X.sex = \"male\""
  in
  Alcotest.(check int) "atoms under or/not" 2 (List.length a.Analysis.atoms);
  Alcotest.(check bool) "not conjunctive" false
    (Cond.is_conjunctive a.Analysis.query.Ast.where)

let test_bool_ordering_rejected () =
  let schema =
    Schema.create
      [
        Schema.
          {
            cname = "C";
            attrs = [ { aname = "flag"; atype = Prim P_bool } ];
          };
      ]
  in
  match
    Analysis.analyze schema (Parser.parse "select X.flag from C X where X.flag < true")
  with
  | exception Analysis.Error _ -> ()
  | _ -> Alcotest.fail "ordered comparison on bool should be rejected"

let suite =
  [
    Alcotest.test_case "analyze Q1" `Quick test_q1;
    Alcotest.test_case "predicates per class" `Quick test_predicates_on_class;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
    Alcotest.test_case "union visibility" `Quick test_union_visibility;
    Alcotest.test_case "disjunctive queries analyzable" `Quick test_disjunctive_analysis;
    Alcotest.test_case "bool ordering rejected" `Quick test_bool_ordering_rejected;
  ]
