open Msdq_odb

let test_is_null () =
  Alcotest.(check bool) "null" true (Value.is_null Value.Null);
  Alcotest.(check bool) "int" false (Value.is_null (Value.Int 0));
  Alcotest.(check bool) "str" false (Value.is_null (Value.Str ""))

let test_equal () =
  Alcotest.(check bool) "int eq" true (Value.equal (Value.Int 3) (Value.Int 3));
  Alcotest.(check bool) "int ne" false (Value.equal (Value.Int 3) (Value.Int 4));
  Alcotest.(check bool) "str eq" true (Value.equal (Value.Str "a") (Value.Str "a"));
  Alcotest.(check bool) "cross type" false (Value.equal (Value.Int 1) (Value.Str "1"));
  Alcotest.(check bool) "null eq null" true (Value.equal Value.Null Value.Null);
  Alcotest.(check bool) "null ne int" false (Value.equal Value.Null (Value.Int 0));
  let r1 = Value.Ref (Oid.Loid.of_int 7) and r2 = Value.Ref (Oid.Loid.of_int 7) in
  Alcotest.(check bool) "ref eq" true (Value.equal r1 r2)

let test_compare () =
  Alcotest.(check bool) "int lt" true (Value.compare_values (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "str gt" true
    (Value.compare_values (Value.Str "b") (Value.Str "a") > 0);
  Alcotest.(check bool) "float eq" true
    (Value.compare_values (Value.Float 1.5) (Value.Float 1.5) = 0);
  Alcotest.(check bool) "bool" true
    (Value.compare_values (Value.Bool false) (Value.Bool true) < 0)

let test_compare_type_errors () =
  let raises v w =
    try
      ignore (Value.compare_values v w);
      false
    with Value.Type_error _ -> true
  in
  Alcotest.(check bool) "int vs str" true (raises (Value.Int 1) (Value.Str "x"));
  Alcotest.(check bool) "null" true (raises Value.Null (Value.Int 1));
  Alcotest.(check bool) "refs unordered" true
    (raises (Value.Ref (Oid.Loid.of_int 0)) (Value.Ref (Oid.Loid.of_int 1)))

let test_printing () =
  Alcotest.(check string) "null" "-" (Value.to_string Value.Null);
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42));
  Alcotest.(check string) "str" "Taipei" (Value.to_string (Value.Str "Taipei"));
  Alcotest.(check string) "float" "2.5" (Value.to_string (Value.Float 2.5));
  Alcotest.(check string) "type name" "ref"
    (Value.type_name (Value.Ref (Oid.Loid.of_int 0)))

let test_oids () =
  let l = Oid.Loid.of_int 5 in
  Alcotest.(check int) "loid round trip" 5 (Oid.Loid.to_int l);
  Alcotest.(check string) "loid print" "l5" (Oid.Loid.to_string l);
  Alcotest.(check bool) "loid equal" true (Oid.Loid.equal l (Oid.Loid.of_int 5));
  let g = Oid.Goid.of_int 9 in
  Alcotest.(check string) "goid print" "g9" (Oid.Goid.to_string g);
  Alcotest.(check bool) "goid compare" true
    (Oid.Goid.compare g (Oid.Goid.of_int 10) < 0);
  let s = Oid.Goid.Set.of_list [ g; Oid.Goid.of_int 9; Oid.Goid.of_int 1 ] in
  Alcotest.(check int) "goid set dedups" 2 (Oid.Goid.Set.cardinal s)

let prop_compare_total_order =
  QCheck.Test.make ~name:"int value comparison is a total order" ~count:200
    QCheck.(triple small_int small_int small_int)
    (fun (a, b, c) ->
      let va = Value.Int a and vb = Value.Int b and vc = Value.Int c in
      let sgn x = Stdlib.compare x 0 in
      (* antisymmetry and transitivity on a sample *)
      sgn (Value.compare_values va vb) = -sgn (Value.compare_values vb va)
      && (not (Value.compare_values va vb <= 0 && Value.compare_values vb vc <= 0)
         || Value.compare_values va vc <= 0))

let suite =
  [
    Alcotest.test_case "is_null" `Quick test_is_null;
    Alcotest.test_case "equality" `Quick test_equal;
    Alcotest.test_case "comparison" `Quick test_compare;
    Alcotest.test_case "comparison type errors" `Quick test_compare_type_errors;
    Alcotest.test_case "printing" `Quick test_printing;
    Alcotest.test_case "oids" `Quick test_oids;
    QCheck_alcotest.to_alcotest prop_compare_total_order;
  ]
