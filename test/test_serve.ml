(* Workload engine (lib/serve): LRU mechanics, serve-vs-Strategy answer
   equivalence, warm-vs-cold speedup, cross-query check batching, fault
   composition, and the cache-soundness property — for any workload and any
   seeded fault schedule, a warm run's per-query answers are byte-identical
   (Serve.answer_fingerprint) to the same workload run cold. *)

open Msdq_simkit
open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_serve
open Msdq_workload
module Fault = Msdq_fault.Fault

let ms = Time.ms
let us = Time.us

(* ---- setup helpers ---- *)

let setup () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analyze src = Analysis.analyze schema (Parser.parse src) in
  (fed, analyze)

let job ?(arrival = Time.zero) ?deadline s analysis =
  { Serve.strategy = s; analysis; arrival; deadline }

let config ?(options = Strategy.default_options) ?(cache_bytes = 0)
    ?(window = Time.zero) () =
  { Serve.default_config with Serve.options; cache_bytes; window }

let fingerprints out =
  List.map (fun r -> Serve.answer_fingerprint r.Serve.answer) out.Serve.reports

let big_cache = 8 * 1024 * 1024

(* Arrivals spaced wide enough that identical queries do not contend; the
   cache effects stand out as pure makespan savings. *)
let spaced n s analysis =
  List.init n (fun i -> job ~arrival:(us (float_of_int i *. 50_000.0)) s analysis)

(* ---- Lru unit tests ---- *)

let test_lru_eviction_order () =
  let l = Lru.create ~capacity_bytes:100 in
  Lru.add l ~gen:0 ~key:"a" ~bytes:40 1;
  Lru.add l ~gen:0 ~key:"b" ~bytes:40 2;
  (* touch a: b becomes the LRU entry *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Lru.find l ~gen:0 "a");
  Lru.add l ~gen:0 ~key:"c" ~bytes:40 3;
  Alcotest.(check bool) "b evicted" false (Lru.mem l ~gen:0 "b");
  Alcotest.(check bool) "a survives (was promoted)" true (Lru.mem l ~gen:0 "a");
  Alcotest.(check bool) "c present" true (Lru.mem l ~gen:0 "c");
  let s = Lru.stats l in
  Alcotest.(check int) "one eviction" 1 s.Lru.evictions;
  Alcotest.(check int) "one hit" 1 s.Lru.hits;
  Alcotest.(check int) "two entries" 2 s.Lru.entries;
  Alcotest.(check int) "80 bytes" 80 s.Lru.bytes

let test_lru_generation () =
  let l = Lru.create ~capacity_bytes:100 in
  Lru.add l ~gen:0 ~key:"x" ~bytes:10 1;
  Alcotest.(check (option int)) "same gen hits" (Some 1) (Lru.find l ~gen:0 "x");
  Alcotest.(check (option int)) "newer gen invalidates" None (Lru.find l ~gen:1 "x");
  Alcotest.(check bool) "entry dropped" false (Lru.mem l ~gen:1 "x");
  let s = Lru.stats l in
  Alcotest.(check int) "invalidation counted" 1 s.Lru.invalidations;
  Alcotest.(check int) "invalidation is also a miss" 1 s.Lru.misses;
  (* re-inserting at the new generation works *)
  Lru.add l ~gen:1 ~key:"x" ~bytes:10 2;
  Alcotest.(check (option int)) "fresh entry" (Some 2) (Lru.find l ~gen:1 "x")

let test_lru_oversized_and_disabled () =
  let l = Lru.create ~capacity_bytes:100 in
  Lru.add l ~gen:0 ~key:"huge" ~bytes:200 1;
  Alcotest.(check bool) "oversized not stored" false (Lru.mem l ~gen:0 "huge");
  Alcotest.(check int) "cache intact" 0 (Lru.stats l).Lru.entries;
  let off = Lru.create ~capacity_bytes:0 in
  Lru.add off ~gen:0 ~key:"k" ~bytes:1 1;
  Alcotest.(check (option int)) "disabled cache never stores" None
    (Lru.find off ~gen:0 "k");
  (match Lru.add l ~gen:0 ~key:"neg" ~bytes:(-1) 1 with
  | () -> Alcotest.fail "negative bytes accepted"
  | exception Invalid_argument _ -> ())

(* ---- exec-layer hooks ---- *)

let items_of fed analysis db =
  let r = Local_eval.run fed analysis ~db in
  List.concat_map
    (fun (row : Local_result.row) -> row.Local_result.unsolved)
    r.Local_result.rows

let q1_requests fed analysis =
  let built =
    Checks.build fed analysis ~db:"DB1" ~root_class:"Student"
      ~items:(items_of fed analysis "DB1")
  in
  built.Checks.requests

let test_request_signature () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  let requests = q1_requests fed analysis in
  Alcotest.(check bool) "q1 produces check requests" true (requests <> []);
  List.iter
    (fun (r : Checks.request) ->
      let s = Checks.request_signature r in
      Alcotest.(check bool) "signature names the target db" true
        (String.length s > String.length r.Checks.target_db
        && String.sub s 0 (String.length r.Checks.target_db) = r.Checks.target_db);
      Alcotest.(check bool) "signature separates loid and predicate" true
        (String.contains s '#' && String.contains s '?'))
    requests;
  (* the signature is a pure function of the request *)
  let r0 = List.hd requests in
  Alcotest.(check string) "deterministic"
    (Checks.request_signature r0)
    (Checks.request_signature r0)

let test_coalesced_requests_bytes () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  let reqs = q1_requests fed analysis in
  let c = Cost.default in
  let solo = Wire.requests_bytes c reqs in
  Alcotest.(check int) "one group = payload + one header"
    (solo + 64)
    (Wire.coalesced_requests_bytes c ~header_bytes:64 [ reqs ]);
  Alcotest.(check int) "two groups share one header"
    ((2 * solo) + 64)
    (Wire.coalesced_requests_bytes c ~header_bytes:64 [ reqs; reqs ]);
  Alcotest.(check int) "empty batch is just framing" 64
    (Wire.coalesced_requests_bytes c ~header_bytes:64 []);
  (match Wire.coalesced_requests_bytes c ~header_bytes:(-1) [] with
  | _ -> Alcotest.fail "negative header accepted"
  | exception Invalid_argument _ -> ())

(* ---- cold serve equals the single-query strategies ---- *)

let serve_strategies =
  [ Strategy.Ca; Strategy.Bl; Strategy.Pl; Strategy.Bls; Strategy.Pls; Strategy.Lo ]

let test_cold_equals_strategy () =
  let fed, analyze = setup () in
  List.iter
    (fun q ->
      let analysis = analyze q in
      List.iter
        (fun s ->
          let solo_answer, _ = Strategy.run s fed analysis in
          let out = Serve.run (config ()) fed [ job s analysis ] in
          match out.Serve.reports with
          | [ r ] ->
            Alcotest.(check string)
              (Strategy.to_string s ^ ": cold serve answers like Strategy.run")
              (Serve.answer_fingerprint solo_answer)
              (Serve.answer_fingerprint r.Serve.answer);
            Alcotest.(check bool) "no cache activity when disabled" true
              (r.Serve.extent_hits = 0 && r.Serve.verdict_hits = 0);
            Alcotest.(check bool) "no cached provenance" true
              (Oid.Goid.Set.is_empty (Answer.cached r.Serve.answer))
          | _ -> Alcotest.fail "one report expected")
        serve_strategies)
    [ Paper_example.q1; "select X.name from Student X where X.age > 25" ]

(* ---- validation ---- *)

let test_validation () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  let rejects name f =
    match f () with
    | (_ : Serve.outcome) -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  rejects "Cf job" (fun () -> Serve.run (config ()) fed [ job Strategy.Cf analysis ]);
  rejects "deep_certify" (fun () ->
      let options =
        { Strategy.default_options with Strategy.deep_certify = true }
      in
      Serve.run (config ~options ()) fed [ job Strategy.Bl analysis ]);
  rejects "negative cache" (fun () ->
      Serve.run (config ~cache_bytes:(-1) ()) fed [ job Strategy.Bl analysis ]);
  rejects "negative window" (fun () ->
      Serve.run (config ~window:(us (-1.0)) ()) fed [ job Strategy.Bl analysis ]);
  rejects "non-finite window" (fun () ->
      Serve.run (config ~window:(us Float.infinity) ()) fed [ job Strategy.Bl analysis ]);
  rejects "unsorted arrivals" (fun () ->
      Serve.run (config ()) fed
        [ job ~arrival:(us 10.0) Strategy.Bl analysis; job Strategy.Bl analysis ]);
  rejects "negative arrival" (fun () ->
      Serve.run (config ()) fed [ job ~arrival:(us (-5.0)) Strategy.Bl analysis ]);
  rejects "negative header" (fun () ->
      let cfg = { (config ()) with Serve.msg_header_bytes = -1 } in
      Serve.run cfg fed [ job Strategy.Bl analysis ]);
  rejects "zero deadline" (fun () ->
      let cfg = { (config ()) with Serve.deadline = Some Time.zero } in
      Serve.run cfg fed [ job Strategy.Bl analysis ]);
  rejects "negative deadline" (fun () ->
      let cfg = { (config ()) with Serve.deadline = Some (us (-3.0)) } in
      Serve.run cfg fed [ job Strategy.Bl analysis ]);
  rejects "non-finite deadline" (fun () ->
      let cfg = { (config ()) with Serve.deadline = Some (us Float.nan) } in
      Serve.run cfg fed [ job Strategy.Bl analysis ]);
  rejects "per-job zero deadline" (fun () ->
      Serve.run (config ()) fed
        [ job ~deadline:Time.zero Strategy.Bl analysis ]);
  rejects "zero queue limit" (fun () ->
      let cfg = { (config ()) with Serve.queue_limit = Some 0 } in
      Serve.run cfg fed [ job Strategy.Bl analysis ]);
  rejects "negative queue limit" (fun () ->
      let cfg = { (config ()) with Serve.queue_limit = Some (-2) } in
      Serve.run cfg fed [ job Strategy.Bl analysis ])

let test_shed_policy_parse () =
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun p ->
      match Serve.shed_policy_of_string (Serve.shed_policy_to_string p) with
      | Ok p' ->
        Alcotest.(check bool) "round trip" true (p = p')
      | Error e -> Alcotest.failf "round trip failed: %s" e)
    Serve.shed_policies;
  match Serve.shed_policy_of_string "drop-table" with
  | Ok _ -> Alcotest.fail "bogus policy accepted"
  | Error msg ->
    List.iter
      (fun p ->
        Alcotest.(check bool) "error lists accepted policies" true
          (contains ~needle:(Serve.shed_policy_to_string p) msg))
      Serve.shed_policies

(* ---- warm vs cold: same answers, strictly less simulated time ---- *)

let test_warm_beats_cold () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  let jobs = spaced 6 Strategy.Bl analysis in
  let cold = Serve.run (config ()) fed jobs in
  let warm = Serve.run (config ~cache_bytes:big_cache ()) fed jobs in
  Alcotest.(check (list string)) "identical per-query answers"
    (fingerprints cold) (fingerprints warm);
  Alcotest.(check bool) "warm makespan strictly below cold" true
    (Time.to_us warm.Serve.makespan < Time.to_us cold.Serve.makespan);
  Alcotest.(check bool) "warm throughput strictly above cold" true
    (warm.Serve.throughput > cold.Serve.throughput);
  Alcotest.(check bool) "extent cache hit" true (warm.Serve.extent_cache.Lru.hits > 0);
  Alcotest.(check bool) "verdict cache hit" true (warm.Serve.verdict_cache.Lru.hits > 0);
  Alcotest.(check int) "cold run never hits" 0
    (cold.Serve.extent_cache.Lru.hits + cold.Serve.verdict_cache.Lru.hits);
  (* counters mirror the aggregated stats *)
  let reg = warm.Serve.registry in
  Alcotest.(check int) "extent hits exported"
    warm.Serve.extent_cache.Lru.hits
    (Option.value ~default:0
       (Msdq_obs.Metrics.find_counter reg
          ~labels:[ ("cache", "extent") ]
          "msdq_cache_hits_total"));
  Alcotest.(check int) "verdict hits exported"
    warm.Serve.verdict_cache.Lru.hits
    (Option.value ~default:0
       (Msdq_obs.Metrics.find_counter reg
          ~labels:[ ("cache", "verdict") ]
          "msdq_cache_hits_total"));
  (* later queries carry cached provenance; the first cannot *)
  (match warm.Serve.reports with
  | first :: rest ->
    Alcotest.(check bool) "first query served nothing from cache" true
      (Oid.Goid.Set.is_empty (Answer.cached first.Serve.answer));
    Alcotest.(check bool) "a later query was certified from cache" true
      (List.exists
         (fun r -> not (Oid.Goid.Set.is_empty (Answer.cached r.Serve.answer)))
         rest)
  | [] -> Alcotest.fail "reports expected");
  (* provenance is metadata only: statuses agree with the cold run *)
  List.iter2
    (fun (c : Serve.query_report) (w : Serve.query_report) ->
      Alcotest.(check bool) "same statuses" true
        (Answer.same_statuses c.Serve.answer w.Serve.answer))
    cold.Serve.reports warm.Serve.reports

(* A tiny cache (one byte) cannot hold anything: behaves exactly cold. *)
let test_tiny_cache_is_cold () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  let jobs = spaced 3 Strategy.Bl analysis in
  let cold = Serve.run (config ()) fed jobs in
  let tiny = Serve.run (config ~cache_bytes:1 ()) fed jobs in
  Alcotest.(check (list string)) "answers identical"
    (fingerprints cold) (fingerprints tiny);
  Alcotest.(check int) "no hits" 0
    (tiny.Serve.extent_cache.Lru.hits + tiny.Serve.verdict_cache.Lru.hits);
  Alcotest.(check (float 1e-6)) "same makespan"
    (Time.to_us cold.Serve.makespan)
    (Time.to_us tiny.Serve.makespan)

(* ---- cross-query check batching ---- *)

let test_batching_coalesces () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  (* two queries close together; caching off so both actually go to the
     wire *)
  let jobs =
    [ job Strategy.Bl analysis; job ~arrival:(us 10.0) Strategy.Bl analysis ]
  in
  let solo = Serve.run (config ()) fed jobs in
  let batched = Serve.run (config ~window:(ms 50.0) ()) fed jobs in
  Alcotest.(check (list string)) "batching never changes answers"
    (fingerprints solo) (fingerprints batched);
  Alcotest.(check int) "no coalescing without a window" 0 solo.Serve.coalesced_checks;
  Alcotest.(check bool) "checks coalesced" true (batched.Serve.coalesced_checks > 0);
  Alcotest.(check bool) "strictly fewer messages" true
    (batched.Serve.messages < solo.Serve.messages);
  Alcotest.(check bool) "coalescing exported" true
    (Msdq_obs.Metrics.total batched.Serve.registry "msdq_coalesced_checks_total" > 0)

(* ---- generation-based invalidation ---- *)

let test_crash_invalidates_cache () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  (* every database site crashes between the two arrivals: whatever query 1
     cached is gone when query 2 arrives *)
  let n_db = List.length (Federation.databases fed) in
  let fault =
    {
      Fault.none with
      Fault.sites =
        List.init n_db (fun i ->
            {
              Fault.site = i + 1;
              outages = [ { Fault.down = ms 30.0; up = ms 40.0 } ];
            });
    }
  in
  let options = { Strategy.default_options with Strategy.fault } in
  let jobs =
    [ job Strategy.Bl analysis; job ~arrival:(ms 50.0) Strategy.Bl analysis ]
  in
  let cold = Serve.run (config ~options ()) fed jobs in
  let warm = Serve.run (config ~options ~cache_bytes:big_cache ()) fed jobs in
  Alcotest.(check (list string)) "answers unaffected"
    (fingerprints cold) (fingerprints warm);
  Alcotest.(check bool) "crash invalidated extent entries" true
    (warm.Serve.extent_cache.Lru.invalidations > 0);
  Alcotest.(check int) "no stale extent hits" 0 warm.Serve.extent_cache.Lru.hits

(* ---- fault composition: cached verdicts never resurrect demoted rows ---- *)

let test_lost_verdicts_demote_warm_and_cold () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  (* every verdict return to the global site is lost: all check round trips
     fail, so check-certified rows demote — with or without a cache *)
  let fault =
    { Fault.none with Fault.links = [ { Fault.dst = 0; drop = 1.0; inflate = 1.0; jitter = 0.0 } ] }
  in
  let options = { Strategy.default_options with Strategy.fault } in
  let jobs = spaced 3 Strategy.Bl analysis in
  let cold = Serve.run (config ~options ()) fed jobs in
  let warm = Serve.run (config ~options ~cache_bytes:big_cache ()) fed jobs in
  Alcotest.(check (list string)) "degraded answers byte-identical"
    (fingerprints cold) (fingerprints warm);
  List.iter2
    (fun (c : Serve.query_report) (w : Serve.query_report) ->
      let cd = Answer.degraded c.Serve.answer
      and wd = Answer.degraded w.Serve.answer in
      Alcotest.(check bool) "rows demoted" true (not (Oid.Goid.Set.is_empty cd));
      Alcotest.(check bool) "same demotions" true (Oid.Goid.Set.equal cd wd);
      Alcotest.(check int) "doomed round trips suppress verdict hits" 0
        w.Serve.verdict_hits;
      (* demotion provenance names the lost batch *)
      let g = Oid.Goid.Set.min_elt wd in
      (match Answer.degraded_reason w.Serve.answer g with
      | Some (Answer.Fault why) ->
        Alcotest.(check bool) "reason mentions the lost batch" true
          (String.length why > 0)
      | Some (Answer.Deadline _) ->
        Alcotest.fail "fault demotion carries a deadline reason"
      | None -> Alcotest.fail "degraded row without provenance"))
    cold.Serve.reports warm.Serve.reports;
  Alcotest.(check bool) "drops surfaced in the workload registry" true
    (Msdq_obs.Metrics.total warm.Serve.registry "msdq_fault_drops_total" > 0)

(* ---- mixed-strategy stream sanity ---- *)

let test_mixed_stream () =
  let fed, analyze = setup () in
  let a1 = analyze Paper_example.q1 in
  let a2 = analyze "select X.name from Student X where X.age > 25" in
  let jobs =
    [
      job Strategy.Ca a1;
      job ~arrival:(us 50_000.0) Strategy.Bl a2;
      job ~arrival:(us 100_000.0) Strategy.Pl a1;
      job ~arrival:(us 150_000.0) Strategy.Lo a2;
    ]
  in
  let out = Serve.run (config ~cache_bytes:big_cache ~window:(ms 1.0) ()) fed jobs in
  Alcotest.(check int) "all queries answered" 4 (List.length out.Serve.reports);
  Alcotest.(check bool) "throughput positive" true (out.Serve.throughput > 0.0);
  Alcotest.(check bool) "messages flowed" true (out.Serve.messages > 0);
  List.iteri
    (fun i (r : Serve.query_report) ->
      Alcotest.(check int) "report order" i r.Serve.index;
      Alcotest.(check bool) "completion after arrival" true
        (Time.to_us r.Serve.completed >= Time.to_us r.Serve.arrival);
      Alcotest.(check (float 1e-9)) "latency consistent"
        (Time.to_us r.Serve.completed -. Time.to_us r.Serve.arrival)
        (Time.to_us r.Serve.latency))
    out.Serve.reports;
  (* per-strategy answers still match the single-query engines *)
  List.iter2
    (fun (s, a) (r : Serve.query_report) ->
      let solo_answer, _ = Strategy.run s fed a in
      Alcotest.(check bool)
        (Strategy.to_string s ^ " statuses match solo run")
        true
        (Answer.same_statuses solo_answer r.Serve.answer))
    [ (Strategy.Ca, a1); (Strategy.Bl, a2); (Strategy.Pl, a1); (Strategy.Lo, a2) ]
    out.Serve.reports

(* Determinism: the exact same workload reproduces byte-identically. *)
let test_deterministic () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  let run () =
    let out =
      Serve.run (config ~cache_bytes:big_cache ~window:(ms 1.0) ()) fed
        (spaced 4 Strategy.Pl analysis)
    in
    ( fingerprints out,
      Time.to_us out.Serve.makespan,
      out.Serve.messages,
      out.Serve.coalesced_checks )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "reproducible" true (a = b)

(* ---- overload control: deadline budgets ---- *)

(* A one-microsecond budget dooms every check round trip: all
   check-certified rows demote with Deadline provenance, everything
   locally certain survives (the anytime floor), and the truncated run is
   never slower than the unbounded one. *)
let test_tight_deadline_demotes () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  let jobs = spaced 3 Strategy.Bl analysis in
  let unbounded = Serve.run (config ()) fed jobs in
  let budget = us 1.0 in
  let bounded =
    Serve.run { (config ()) with Serve.deadline = Some budget } fed jobs
  in
  List.iter2
    (fun (u : Serve.query_report) (b : Serve.query_report) ->
      Alcotest.(check bool) "rows demoted at the deadline" true
        (b.Serve.deadline_demoted > 0);
      let du = Answer.degraded u.Serve.answer
      and db = Answer.degraded b.Serve.answer in
      Alcotest.(check bool) "unbounded demotions are a subset" true
        (Oid.Goid.Set.subset du db);
      let extra = Oid.Goid.Set.diff db du in
      Alcotest.(check int) "every extra demotion is deadline-attributed"
        b.Serve.deadline_demoted
        (Oid.Goid.Set.cardinal extra);
      Oid.Goid.Set.iter
        (fun g ->
          match Answer.degraded_reason b.Serve.answer g with
          | Some (Answer.Deadline { elapsed_us; budget_us }) ->
            Alcotest.(check (float 1e-9)) "budget recorded" 1.0 budget_us;
            Alcotest.(check bool) "elapsed exceeds budget" true
              (elapsed_us > budget_us)
          | Some (Answer.Fault _) ->
            Alcotest.fail "deadline demotion carries a fault reason"
          | None -> Alcotest.fail "deadline demotion without provenance")
        extra;
      Alcotest.(check bool) "anytime answer is never slower" true
        (Time.to_us b.Serve.latency <= Time.to_us u.Serve.latency))
    unbounded.Serve.reports bounded.Serve.reports;
  Alcotest.(check bool) "demotions surfaced in the workload registry" true
    (Msdq_obs.Metrics.total bounded.Serve.registry
       "msdq_deadline_demotions_total"
    > 0)

(* A generous budget changes nothing: byte-identical answers, zero
   demotions. *)
let test_generous_deadline_noop () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  let jobs = spaced 3 Strategy.Bl analysis in
  let unbounded = Serve.run (config ()) fed jobs in
  let bounded =
    Serve.run
      { (config ()) with Serve.deadline = Some (ms 3_600_000.0) }
      fed jobs
  in
  Alcotest.(check (list string)) "identical answers"
    (fingerprints unbounded) (fingerprints bounded);
  List.iter
    (fun (r : Serve.query_report) ->
      Alcotest.(check int) "no demotions" 0 r.Serve.deadline_demoted)
    bounded.Serve.reports

(* Per-job deadlines override the config; jobs without one inherit it. *)
let test_per_job_deadline_override () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  let mk d = [ job ?deadline:d Strategy.Bl analysis ] in
  let tight = Serve.run (config ()) fed (mk (Some (us 1.0))) in
  let loose =
    Serve.run
      { (config ()) with Serve.deadline = Some (us 1.0) }
      fed
      (mk (Some (ms 3_600_000.0)))
  in
  (match tight.Serve.reports with
  | [ r ] ->
    Alcotest.(check bool) "job deadline demotes without a config one" true
      (r.Serve.deadline_demoted > 0)
  | _ -> Alcotest.fail "one report expected");
  match loose.Serve.reports with
  | [ r ] ->
    Alcotest.(check int) "job override beats the tight config deadline" 0
      r.Serve.deadline_demoted
  | _ -> Alcotest.fail "one report expected"

(* ---- overload control: bounded-queue admission ---- *)

(* Arrivals 1 us apart against multi-ms service times overflow a depth-1
   queue immediately. *)
let overload_jobs fed_analyze n s =
  let _, analyze = fed_analyze in
  let analysis = analyze Paper_example.q1 in
  List.init n (fun i -> job ~arrival:(us (float_of_int i)) s analysis)

let test_shed_reject_newest () =
  let fed, analyze = setup () in
  let jobs = overload_jobs (fed, analyze) 3 Strategy.Bl in
  let cfg =
    {
      (config ()) with
      Serve.queue_limit = Some 1;
      shed_policy = Serve.Reject_newest;
    }
  in
  let out = Serve.run cfg fed jobs in
  Alcotest.(check int) "one admitted" 1 (List.length out.Serve.reports);
  Alcotest.(check (list int)) "later arrivals shed" [ 1; 2 ]
    (List.map (fun s -> s.Serve.s_index) out.Serve.shed);
  List.iter
    (fun s ->
      Alcotest.(check bool) "policy recorded" true
        (s.Serve.s_policy = Serve.Reject_newest))
    out.Serve.shed;
  Alcotest.(check (option int)) "sheds counted by policy" (Some 2)
    (Msdq_obs.Metrics.find_counter out.Serve.registry
       ~labels:[ ("policy", "reject-newest") ]
       "msdq_shed_total");
  Alcotest.(check bool) "queue depth gauge exported" true
    (Msdq_obs.Metrics.gauge_value
       (Msdq_obs.Metrics.gauge out.Serve.registry "msdq_queue_depth")
    >= 1.0);
  Alcotest.(check bool) "max depth observed" true
    (out.Serve.max_queue_depth >= 1);
  (* the admitted query answers exactly like a solo run *)
  let solo = Serve.run (config ()) fed [ List.hd jobs ] in
  Alcotest.(check (list string)) "admitted answer untouched by shedding"
    (fingerprints solo) (fingerprints out)

let test_shed_reject_oldest_evicts () =
  let fed, analyze = setup () in
  let jobs = overload_jobs (fed, analyze) 3 Strategy.Bl in
  let cfg =
    {
      (config ()) with
      Serve.queue_limit = Some 2;
      shed_policy = Serve.Reject_oldest;
    }
  in
  let out = Serve.run cfg fed jobs in
  (* q0 is in service when q2 arrives; q1 is the oldest still queued and
     gets evicted to admit q2 *)
  Alcotest.(check (list int)) "q0 and q2 served" [ 0; 2 ]
    (List.map (fun (r : Serve.query_report) -> r.Serve.index) out.Serve.reports);
  Alcotest.(check (list int)) "the queued q1 was evicted" [ 1 ]
    (List.map (fun s -> s.Serve.s_index) out.Serve.shed);
  List.iter
    (fun s ->
      Alcotest.(check bool) "policy recorded" true
        (s.Serve.s_policy = Serve.Reject_oldest))
    out.Serve.shed

let test_shed_degrade_admits_all () =
  let fed, analyze = setup () in
  let jobs = overload_jobs (fed, analyze) 3 Strategy.Lo in
  let cfg =
    {
      (config ()) with
      Serve.queue_limit = Some 1;
      shed_policy = Serve.Degrade;
    }
  in
  let out = Serve.run cfg fed jobs in
  Alcotest.(check int) "everything admitted" 3 (List.length out.Serve.reports);
  Alcotest.(check int) "nothing shed" 0 (List.length out.Serve.shed);
  (match out.Serve.reports with
  | first :: rest ->
    Alcotest.(check bool) "under-capacity query keeps its strategy" true
      (first.Serve.strategy = Strategy.Lo);
    List.iter
      (fun (r : Serve.query_report) ->
        Alcotest.(check bool)
          "over-capacity queries degraded to a cheapest predicted candidate"
          true
          (List.mem r.Serve.strategy Msdq_opt.Optimizer.candidates))
      rest
  | [] -> Alcotest.fail "reports expected")

(* Without overload knobs the queue never sheds — the engine is exactly
   the pre-overload engine. *)
let test_unbounded_never_sheds () =
  let fed, analyze = setup () in
  let jobs = overload_jobs (fed, analyze) 4 Strategy.Bl in
  let out = Serve.run (config ()) fed jobs in
  Alcotest.(check int) "nothing shed" 0 (List.length out.Serve.shed);
  Alcotest.(check int) "no queue tracked" 0 out.Serve.max_queue_depth

(* ---- the cache-soundness property ----

   For any synthesized federation/query, any strategy, any admission window
   and any seeded fault schedule: a warm run's per-query answers are
   byte-identical to the cold run's. Fault-free cases additionally match
   Strategy.run. 200+ cases as the acceptance criterion demands. *)

let rec make_case seed attempt =
  if attempt > 20 then None
  else
    let cfg =
      {
        Synth.default with
        Synth.seed = (seed * 37) + attempt;
        p_host = 1.0;
        p_attr_present = 0.7;
        p_null = 0.15;
        p_copy = 0.4;
      }
    in
    let fed = Synth.generate cfg in
    let rng = Rng.create ~seed:(seed + (attempt * 1013)) in
    let query = Synth.random_query rng cfg ~disjunctive:false in
    let schema = Global_schema.schema (Federation.global_schema fed) in
    match Analysis.analyze schema query with
    | analysis -> Some (fed, analysis)
    | exception Analysis.Error _ -> make_case seed (attempt + 1)

let random_schedule ~seed ~n_db ~horizon =
  let rng = Rng.create ~seed in
  let availability = 0.5 +. (0.5 *. Rng.float rng) in
  let availability = if availability >= 0.999 then 1.0 else availability in
  let sched =
    Fault.random ~rng
      ~sites:(List.init n_db (fun i -> i + 1))
      ~availability ~horizon ~drop:(0.3 *. Rng.float rng) ()
  in
  {
    sched with
    Fault.links = { Fault.dst = 0; drop = 0.1; inflate = 1.0; jitter = 0.0 } :: sched.Fault.links;
  }

let prop_cache_soundness =
  QCheck.Test.make
    ~name:"serve: warm answers byte-identical to cold, incl. faulty schedules"
    ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      match make_case seed 0 with
      | None -> true
      | Some (fed, analysis) ->
        let strategies = Array.of_list serve_strategies in
        let s = strategies.(seed mod Array.length strategies) in
        let ff_answer, ff = Strategy.run s fed analysis in
        let horizon =
          Time.us (2.0 *. Time.to_us (Time.max ff.Strategy.response (ms 1.0)))
        in
        let fault =
          if seed mod 3 = 0 then Fault.none
          else
            random_schedule ~seed:(seed + 11)
              ~n_db:(List.length (Federation.databases fed))
              ~horizon
        in
        let options = { Strategy.default_options with Strategy.fault } in
        let window = if seed mod 2 = 0 then Time.zero else us 500.0 in
        let jobs =
          List.init 3 (fun i ->
              job ~arrival:(us (float_of_int i *. 300.0)) s analysis)
        in
        let cold = Serve.run (config ~options ~window ()) fed jobs in
        let warm =
          Serve.run (config ~options ~window ~cache_bytes:(1 lsl 20) ()) fed jobs
        in
        let cold_fp = fingerprints cold and warm_fp = fingerprints warm in
        cold_fp = warm_fp
        && (not (Fault.is_none fault)
           || List.for_all
                (fun fp -> fp = Serve.answer_fingerprint ff_answer)
                cold_fp))

(* ---- the gray-soundness property ----

   Gray faults — slowdown windows, link jitter, flap trains, one-way
   partitions — and the adaptive timeout policy must never reach answer
   bytes: for any random gray schedule, under either timeout policy, a
   warm run's per-query answers stay byte-identical to the cold run's.
   200+ schedules per the acceptance criterion. *)

let random_gray_schedule ~seed ~n_db ~horizon =
  let rng = Rng.create ~seed in
  let availability = 0.6 +. (0.4 *. Rng.float rng) in
  let availability = if availability >= 0.999 then 1.0 else availability in
  let flap =
    if availability < 1.0 && Rng.float rng < 0.5 then
      Some (Time.us (Time.to_us horizon /. 8.0))
    else None
  in
  Fault.random ~rng
    ~sites:(List.init n_db (fun i -> i + 1))
    ~availability ~horizon
    ~drop:(0.2 *. Rng.float rng)
    ~inflate:(1.0 +. Rng.float rng)
    ~jitter:(2.0 *. Rng.float rng)
    ~slow:(1.0 +. (3.0 *. Rng.float rng))
    ?flap
    ~oneway:(0.6 *. Rng.float rng) ()

let prop_gray_cache_soundness =
  QCheck.Test.make
    ~name:"serve: warm = cold under gray schedules and adaptive timeouts"
    ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      match make_case seed 0 with
      | None -> true
      | Some (fed, analysis) ->
        let strategies = Array.of_list serve_strategies in
        let s = strategies.(seed mod Array.length strategies) in
        let _, ff = Strategy.run s fed analysis in
        let horizon =
          Time.us (2.0 *. Time.to_us (Time.max ff.Strategy.response (ms 1.0)))
        in
        let fault =
          random_gray_schedule ~seed:(seed + 53)
            ~n_db:(List.length (Federation.databases fed))
            ~horizon
        in
        let retry =
          if seed mod 2 = 0 then Strategy.default_retry
          else
            {
              Strategy.default_retry with
              Strategy.adaptive = Some Strategy.default_adaptive;
            }
        in
        let options = { Strategy.default_options with Strategy.fault; retry } in
        let jobs =
          List.init 3 (fun i ->
              job ~arrival:(us (float_of_int i *. 300.0)) s analysis)
        in
        let cold = Serve.run (config ~options ()) fed jobs in
        let warm =
          Serve.run (config ~options ~cache_bytes:(1 lsl 20) ()) fed jobs
        in
        fingerprints cold = fingerprints warm)

(* ---- the deadline-soundness property ----

   For any synthesized case, any strategy, any seeded fault schedule and
   any budget: the deadline run's demotions are a superset of the
   unbounded run's (a deadline never resurrects certainty), every extra
   demotion is deadline-attributed and counted, and warm answers stay
   byte-identical to cold under deadlines. *)

let prop_deadline_soundness =
  QCheck.Test.make
    ~name:
      "serve: deadline demotions reconcile with the unbounded run; warm = \
       cold under deadlines"
    ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      match make_case seed 0 with
      | None -> true
      | Some (fed, analysis) ->
        let strategies = Array.of_list serve_strategies in
        let s = strategies.(seed mod Array.length strategies) in
        let _, ff = Strategy.run s fed analysis in
        let horizon =
          Time.us (2.0 *. Time.to_us (Time.max ff.Strategy.response (ms 1.0)))
        in
        let fault =
          if seed mod 3 = 0 then Fault.none
          else
            random_schedule ~seed:(seed + 29)
              ~n_db:(List.length (Federation.databases fed))
              ~horizon
        in
        let options = { Strategy.default_options with Strategy.fault } in
        (* budgets from well under the predicted response to well past it *)
        let frac = float_of_int (1 + (seed mod 8)) /. 4.0 in
        let budget =
          Time.us (Float.max 1.0 (frac *. Time.to_us ff.Strategy.response))
        in
        let jobs =
          List.init 3 (fun i ->
              job ~arrival:(us (float_of_int i *. 300.0)) s analysis)
        in
        let base = Serve.run (config ~options ()) fed jobs in
        let cfg_d =
          { (config ~options ()) with Serve.deadline = Some budget }
        in
        let cold = Serve.run cfg_d fed jobs in
        let warm =
          Serve.run { cfg_d with Serve.cache_bytes = 1 lsl 20 } fed jobs
        in
        fingerprints cold = fingerprints warm
        && List.for_all2
             (fun (u : Serve.query_report) (b : Serve.query_report) ->
               let du = Answer.degraded u.Serve.answer
               and db = Answer.degraded b.Serve.answer in
               let extra = Oid.Goid.Set.diff db du in
               Oid.Goid.Set.subset du db
               && Oid.Goid.Set.cardinal extra = b.Serve.deadline_demoted
               && Oid.Goid.Set.for_all
                    (fun g ->
                      match Answer.degraded_reason b.Serve.answer g with
                      | Some (Answer.Deadline _) -> true
                      | _ -> false)
                    extra)
             base.Serve.reports cold.Serve.reports)

(* ---- the overload experiment: win condition and jobs invariance ---- *)

let test_overload_sweep_win_condition () =
  let module O = Msdq_exp.Overload_sweep in
  let registry = Msdq_obs.Metrics.create () in
  let o = O.run ~registry () in
  Alcotest.(check bool) "positive at-capacity p99" true (o.O.cap_p99_ms > 0.0);
  let bound = 2.0 *. o.O.cap_p99_ms in
  (* The naive unbounded baseline's tail grows monotonically with load
     and escapes the bound... *)
  let naive = List.map (fun p -> p.O.pt_p99_ms) (O.points_of o O.naive_policy) in
  ignore
    (List.fold_left
       (fun prev p99 ->
         Alcotest.(check bool) "naive p99 nondecreasing" true
           (p99 +. 1e-9 >= prev);
         p99)
       0.0 naive);
  Alcotest.(check bool) "naive tail escapes twice the at-capacity p99" true
    (List.nth naive (List.length naive - 1) > bound);
  (* ...while rejecting policies hold it at every overloaded point. *)
  List.iter
    (fun policy ->
      List.iter
        (fun (p : O.point) ->
          if p.O.pt_multiplier >= 2.0 then
            Alcotest.(check bool)
              (Printf.sprintf "%s p99 bounded at x%g" policy p.O.pt_multiplier)
              true
              (p.O.pt_p99_ms <= bound *. (1.0 +. 1e-9)))
        (O.points_of o policy))
    [ "reject-newest"; "reject-oldest" ];
  List.iter
    (fun (p : O.point) ->
      Alcotest.(check int) "admitted + shed = offered" p.O.pt_offered
        (p.O.pt_admitted + p.O.pt_shed))
    o.O.points;
  Alcotest.(check bool) "reject-newest sheds under overload" true
    (List.exists
       (fun (p : O.point) -> p.O.pt_multiplier >= 2.0 && p.O.pt_shed > 0)
       (O.points_of o "reject-newest"));
  List.iter
    (fun (p : O.point) ->
      Alcotest.(check int)
        (Printf.sprintf "degrade sheds nothing at x%g" p.O.pt_multiplier)
        0 p.O.pt_shed)
    (O.points_of o "degrade");
  Alcotest.(check int) "one grid point per (policy, multiplier)"
    (List.length o.O.policies * Array.length o.O.multipliers)
    (Msdq_obs.Metrics.total registry "msdq_overload_points_total")

let test_overload_sweep_jobs_invariant () =
  let module O = Msdq_exp.Overload_sweep in
  let sequential = O.run ~queries:8 () in
  let pool = Msdq_par.Pool.create ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Msdq_par.Pool.shutdown pool) @@ fun () ->
  let pooled = O.run ~pool ~queries:8 () in
  Alcotest.(check bool) "pool run bit-identical to the sequential run" true
    (sequential = pooled)

let suite =
  [
    Alcotest.test_case "lru: eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru: generation invalidation" `Quick test_lru_generation;
    Alcotest.test_case "lru: oversized and disabled" `Quick
      test_lru_oversized_and_disabled;
    Alcotest.test_case "checks: request signature" `Quick test_request_signature;
    Alcotest.test_case "wire: coalesced request bytes" `Quick
      test_coalesced_requests_bytes;
    Alcotest.test_case "cold serve equals Strategy.run" `Quick
      test_cold_equals_strategy;
    Alcotest.test_case "configuration validation" `Quick test_validation;
    Alcotest.test_case "warm beats cold" `Quick test_warm_beats_cold;
    Alcotest.test_case "tiny cache behaves cold" `Quick test_tiny_cache_is_cold;
    Alcotest.test_case "check batching coalesces" `Quick test_batching_coalesces;
    Alcotest.test_case "crash invalidates cache" `Quick test_crash_invalidates_cache;
    Alcotest.test_case "lost verdicts demote warm and cold" `Quick
      test_lost_verdicts_demote_warm_and_cold;
    Alcotest.test_case "mixed-strategy stream" `Quick test_mixed_stream;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "shed policy parsing" `Quick test_shed_policy_parse;
    Alcotest.test_case "tight deadline demotes with provenance" `Quick
      test_tight_deadline_demotes;
    Alcotest.test_case "generous deadline is a no-op" `Quick
      test_generous_deadline_noop;
    Alcotest.test_case "per-job deadline override" `Quick
      test_per_job_deadline_override;
    Alcotest.test_case "shed: reject-newest" `Quick test_shed_reject_newest;
    Alcotest.test_case "shed: reject-oldest evicts the queued" `Quick
      test_shed_reject_oldest_evicts;
    Alcotest.test_case "shed: degrade admits everything" `Quick
      test_shed_degrade_admits_all;
    Alcotest.test_case "unbounded queue never sheds" `Quick
      test_unbounded_never_sheds;
    Alcotest.test_case "overload sweep win condition" `Quick
      test_overload_sweep_win_condition;
    Alcotest.test_case "overload sweep jobs-invariant" `Quick
      test_overload_sweep_jobs_invariant;
    QCheck_alcotest.to_alcotest prop_cache_soundness;
    QCheck_alcotest.to_alcotest prop_gray_cache_soundness;
    QCheck_alcotest.to_alcotest prop_deadline_soundness;
  ]
