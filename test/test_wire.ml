open Msdq_fed
open Msdq_query
open Msdq_exec

let setup () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let gs = Federation.global_schema fed in
  let schema = Global_schema.schema gs in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  let involved = Involved.compute schema analysis in
  (ex, fed, gs, analysis, involved)

let c = Cost.default

(* Q1 involves: Student (name, advisor, address), Teacher (name, speciality,
   department), Department (name), Address (city). *)
let test_involved () =
  let _, _, _, _, involved = setup () in
  Alcotest.(check (list string)) "student attrs"
    [ "address"; "advisor"; "name" ]
    (Involved.attrs_of_class involved "Student");
  Alcotest.(check (list string)) "teacher attrs"
    [ "department"; "name"; "speciality" ]
    (Involved.attrs_of_class involved "Teacher");
  Alcotest.(check (list string)) "department attrs" [ "name" ]
    (Involved.attrs_of_class involved "Department");
  Alcotest.(check (list string)) "address attrs" [ "city" ]
    (Involved.attrs_of_class involved "Address");
  Alcotest.(check (list string)) "uninvolved class empty" []
    (Involved.attrs_of_class involved "Course")

let test_projection_widths () =
  let _, _, gs, _, involved = setup () in
  (* DB1's Student defines name and advisor but not address: width 2. *)
  Alcotest.(check int) "DB1 student width" 2
    (Involved.local_projection_width involved gs ~db:"DB1" ~gcls:"Student");
  (* DB2's Student defines all three involved attributes. *)
  Alcotest.(check int) "DB2 student width" 3
    (Involved.local_projection_width involved gs ~db:"DB2" ~gcls:"Student");
  (* DB3 hosts no Student. *)
  Alcotest.(check int) "DB3 student width" 0
    (Involved.local_projection_width involved gs ~db:"DB3" ~gcls:"Student");
  (* DB1's Teacher: name + department (no speciality). *)
  Alcotest.(check int) "DB1 teacher width" 2
    (Involved.local_projection_width involved gs ~db:"DB1" ~gcls:"Teacher")

(* CA's shipped projection of DB1: 3 students x (16 + 2x32) + 3 teachers x
   (16 + 2x32) + 2 departments x (16 + 1x32). *)
let test_extent_bytes () =
  let _, fed, gs, _, involved = setup () in
  let db1 = Federation.db fed "DB1" in
  let bytes = Wire.projected_extent_bytes c involved gs ~db_name:"DB1" ~db:db1 in
  Alcotest.(check int) "DB1 bytes" ((3 * 80) + (3 * 80) + (2 * 48)) bytes

(* Localized read of DB1: the full Student extent plus only the touched
   branch objects. All three teachers are referenced as advisors; both
   advisors' departments are CS -> only one department touched. *)
let test_touch_and_localized_bytes () =
  let _, fed, gs, analysis, involved = setup () in
  let touched = Touch.count fed analysis ~db:"DB1" in
  (* DB1 has no Address constituent, so Address does not appear. *)
  Alcotest.(check (list (pair string int))) "touched counts"
    [ ("Student", 3); ("Teacher", 3); ("Department", 1) ]
    touched;
  let bytes = Wire.localized_read_bytes c involved gs ~db_name:"DB1" ~touched in
  Alcotest.(check int) "localized bytes" ((3 * 80) + (3 * 80) + 48) bytes;
  Alcotest.(check bool) "localized <= full extents" true
    (bytes
    <= Wire.projected_extent_bytes c involved gs ~db_name:"DB1"
         ~db:(Federation.db fed "DB1"))

let test_row_bytes () =
  let _, fed, _, analysis, _ = setup () in
  let r = Local_eval.run fed analysis ~db:"DB1" in
  match r.Local_result.rows with
  | john :: _ ->
    (* goid + loid + 2 targets + 2 unsolved annotations *)
    let expect = 16 + 16 + (2 * 32) + (2 * (16 + 32)) in
    Alcotest.(check int) "john's row bytes" expect
      (Wire.local_row_bytes c ~n_targets:2 john);
    Alcotest.(check bool) "results bytes sum rows" true
      (Wire.results_bytes c ~n_targets:2 r
      = List.fold_left
          (fun acc row -> acc + Wire.local_row_bytes c ~n_targets:2 row)
          0 r.Local_result.rows)
  | [] -> Alcotest.fail "no rows"

let test_request_bytes () =
  let _, fed, _, analysis, _ = setup () in
  let items =
    List.concat_map
      (fun (row : Local_result.row) -> row.Local_result.unsolved)
      (Local_eval.run fed analysis ~db:"DB1").Local_result.rows
  in
  let built = Checks.build fed analysis ~db:"DB1" ~root_class:"Student" ~items in
  match built.Checks.requests with
  | speciality_req :: department_req :: _ ->
    (* one-step suffix: 2 loids + (1 path cell + operand) *)
    Alcotest.(check int) "speciality request" (32 + 32 + 32)
      (Wire.request_bytes c speciality_req);
    (* two-step suffix *)
    Alcotest.(check int) "department request" (32 + 64 + 32)
      (Wire.request_bytes c department_req);
    (* check reads are page-quantized random accesses *)
    Alcotest.(check int) "check read is one page per request"
      (2 * c.Cost.s_page)
      (Wire.check_read_bytes c [ speciality_req; department_req ]);
    Alcotest.(check int) "verdict bytes" 18 (Wire.verdict_bytes c)
  | _ -> Alcotest.fail "expected two requests"

(* Edge cases: empty batches ship nothing and read nothing; a query with no
   targets still pays for identification and unsolved annotations. *)
let test_empty_batches () =
  Alcotest.(check int) "empty request batch ships nothing" 0
    (Wire.requests_bytes c []);
  Alcotest.(check int) "empty request batch reads nothing" 0
    (Wire.check_read_bytes c []);
  let _, fed, _, analysis, _ = setup () in
  let r = Local_eval.run fed analysis ~db:"DB1" in
  let empty = { r with Local_result.rows = [] } in
  Alcotest.(check int) "no rows, no bytes" 0
    (Wire.results_bytes c ~n_targets:2 empty)

let test_zero_target_rows () =
  let _, fed, _, analysis, _ = setup () in
  let r = Local_eval.run fed analysis ~db:"DB1" in
  match r.Local_result.rows with
  | row :: _ ->
    let zero = Wire.local_row_bytes c ~n_targets:0 row in
    (* identification (goid + loid) plus the unsolved annotations remain *)
    let expect = 16 + 16 + (List.length row.Local_result.unsolved * (16 + 32)) in
    Alcotest.(check int) "zero-target row bytes" expect zero;
    Alcotest.(check bool) "targets only add bytes" true
      (zero <= Wire.local_row_bytes c ~n_targets:2 row)
  | [] -> Alcotest.fail "no rows"

(* Batch of requests drawn (with repetition) from the paper example's check
   phase: every byte size is non-negative, and adding a request to a batch
   never shrinks it. *)
let request_pool () =
  let _, fed, _, analysis, _ = setup () in
  let items =
    List.concat_map
      (fun (row : Local_result.row) -> row.Local_result.unsolved)
      (Local_eval.run fed analysis ~db:"DB1").Local_result.rows
  in
  (Checks.build fed analysis ~db:"DB1" ~root_class:"Student" ~items).Checks.requests

let prop_bytes_nonneg_monotone =
  let pool = lazy (Array.of_list (request_pool ())) in
  QCheck.Test.make
    ~name:"wire bytes are non-negative and monotone in batch length" ~count:100
    QCheck.(list_of_size Gen.(0 -- 30) (int_bound 1000))
    (fun picks ->
      let pool = Lazy.force pool in
      let batch =
        List.map (fun i -> pool.(i mod Array.length pool)) picks
      in
      let bytes = Wire.requests_bytes c batch in
      let read = Wire.check_read_bytes c batch in
      bytes >= 0 && read >= 0
      && List.for_all (fun r -> Wire.request_bytes c r >= 0) batch
      &&
      (* dropping the last request never increases either size *)
      match List.rev batch with
      | [] -> bytes = 0 && read = 0
      | _ :: shorter_rev ->
        let shorter = List.rev shorter_rev in
        Wire.requests_bytes c shorter <= bytes
        && Wire.check_read_bytes c shorter <= read)

let suite =
  [
    Alcotest.test_case "involved attributes" `Quick test_involved;
    Alcotest.test_case "projection widths" `Quick test_projection_widths;
    Alcotest.test_case "extent bytes" `Quick test_extent_bytes;
    Alcotest.test_case "touch and localized bytes" `Quick test_touch_and_localized_bytes;
    Alcotest.test_case "row bytes" `Quick test_row_bytes;
    Alcotest.test_case "request bytes" `Quick test_request_bytes;
    Alcotest.test_case "empty batches" `Quick test_empty_batches;
    Alcotest.test_case "zero-target rows" `Quick test_zero_target_rows;
    QCheck_alcotest.to_alcotest prop_bytes_nonneg_monotone;
  ]
