open Msdq_odb
open Msdq_query

let parse s =
  match Parser.parse_result s with
  | Ok ast -> ast
  | Error msg -> Alcotest.fail msg

let test_q1 () =
  let ast = parse Msdq_fed.Paper_example.q1 in
  Alcotest.(check string) "range class" "Student" ast.Ast.range_class;
  Alcotest.(check string) "binding" "X" ast.Ast.binding;
  Alcotest.(check bool) "global query" true (ast.Ast.range_db = None);
  Alcotest.(check (list string)) "targets" [ "name"; "advisor.name" ]
    (List.map Path.to_string ast.Ast.targets);
  match Ast.conjunctive_where ast with
  | Some [ p1; p2; p3 ] ->
    Alcotest.(check string) "p1" "address.city = \"Taipei\"" (Predicate.to_string p1);
    Alcotest.(check string) "p2" "advisor.speciality = \"database\""
      (Predicate.to_string p2);
    Alcotest.(check string) "p3" "advisor.department.name = \"CS\""
      (Predicate.to_string p3)
  | _ -> Alcotest.fail "Q1 should have three conjuncts"

let test_local_query_syntax () =
  (* The paper's derived local query Q1' targets Student@DB1. *)
  let ast =
    parse
      "select X.name from Student@DB1 X where X.advisor.department.name = \"CS\""
  in
  Alcotest.(check (option string)) "range db" (Some "DB1") ast.Ast.range_db;
  Alcotest.(check string) "range class" "Student" ast.Ast.range_class

let test_literals_and_ops () =
  let ast =
    parse
      "select X.name from C X where X.a = 3 and X.b != 2.5 and X.c < -7 and \
       X.d >= 10 and X.e = true and X.f <> \"x\" and X.g <= 1 and X.h > 0"
  in
  match Ast.conjunctive_where ast with
  | Some preds ->
    let ops = List.map (fun (p : Predicate.t) -> p.Predicate.op) preds in
    Alcotest.(check int) "eight predicates" 8 (List.length preds);
    Alcotest.(check bool) "ops parsed" true
      (ops
      = [
          Predicate.Eq;
          Predicate.Ne;
          Predicate.Lt;
          Predicate.Ge;
          Predicate.Eq;
          Predicate.Ne;
          Predicate.Le;
          Predicate.Gt;
        ]);
    (match (List.nth preds 2).Predicate.operand with
    | Value.Int -7 -> ()
    | v -> Alcotest.fail ("negative literal: " ^ Value.to_string v));
    (match (List.nth preds 1).Predicate.operand with
    | Value.Float f -> Alcotest.(check (float 1e-9)) "float" 2.5 f
    | _ -> Alcotest.fail "float literal");
    (match (List.nth preds 4).Predicate.operand with
    | Value.Bool true -> ()
    | _ -> Alcotest.fail "bool literal")
  | None -> Alcotest.fail "conjunctive"

let test_hyphenated_identifier () =
  let ast = parse "select X.s-no from Student X where X.s-no = 804301" in
  Alcotest.(check (list string)) "target" [ "s-no" ]
    (List.map Path.to_string ast.Ast.targets)

let test_disjunction_precedence () =
  (* a or b and c parses as a or (b and c) *)
  let ast =
    parse "select X.t from C X where X.a = 1 or X.b = 2 and X.c = 3"
  in
  (match ast.Ast.where with
  | Cond.Or [ Cond.Atom _; Cond.And [ Cond.Atom _; Cond.Atom _ ] ] -> ()
  | _ -> Alcotest.fail "precedence: and binds tighter than or");
  (* parentheses override *)
  let ast2 =
    parse "select X.t from C X where (X.a = 1 or X.b = 2) and X.c = 3"
  in
  match ast2.Ast.where with
  | Cond.And [ Cond.Or [ _; _ ]; Cond.Atom _ ] -> ()
  | _ -> Alcotest.fail "parentheses grouping"

let test_not () =
  let ast = parse "select X.t from C X where not X.a = 1" in
  match ast.Ast.where with
  | Cond.Not (Cond.Atom _) -> ()
  | _ -> Alcotest.fail "not parsed"

let test_no_where () =
  let ast = parse "select X.t from C X" in
  Alcotest.(check bool) "empty where" true (ast.Ast.where = Cond.tt)

let test_keywords_case_insensitive () =
  let ast = parse "SELECT X.t FROM C X WHERE X.a = 1 AND X.b = 2" in
  Alcotest.(check bool) "two conjuncts" true
    (match Ast.conjunctive_where ast with Some [ _; _ ] -> true | _ -> false)

let test_string_escapes () =
  let ast = parse {|select X.t from C X where X.a = "he said \"hi\" \\ bye"|} in
  match Cond.atoms ast.Ast.where with
  | [ p ] -> (
    match p.Predicate.operand with
    | Value.Str s -> Alcotest.(check string) "unescaped" {|he said "hi" \ bye|} s
    | _ -> Alcotest.fail "string operand")
  | _ -> Alcotest.fail "one atom"

let expect_error s fragment =
  match Parser.parse_result s with
  | Ok _ -> Alcotest.fail ("should not parse: " ^ s)
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error mentions %S (got %S)" fragment msg)
      true
      (Testutil.contains ~needle:fragment msg)

let test_errors () =
  expect_error "select" "expected";
  expect_error "select X.a from" "expected";
  expect_error "select X.a from C X where X.a" "comparison";
  expect_error "select X.a from C X where X.a = " "literal";
  expect_error "select Y.a from C X" "binding variable";
  expect_error "select X from C X" "no attribute";
  expect_error "select X.a from C X where X.a = 1 garbage" "unexpected";
  expect_error "select X.a from C X where X.a = \"unterminated" "unterminated";
  expect_error "select X.a from C X where X.a = 1 and" "expected";
  expect_error "select X.a from C X where (X.a = 1" "')'";
  expect_error "select X.a from C X where X.a # 1" "illegal character"

let test_positions () =
  match Parser.parse_result "select X.a\nfrom C X where X.a ! 1" with
  | Ok _ -> Alcotest.fail "should fail"
  | Error msg -> Alcotest.(check bool) "line 2 reported" true
      (Testutil.contains ~needle:"line 2" msg)

(* Round trip: printing a parsed query and re-parsing it preserves the
   structure. *)
let test_round_trip () =
  let sources =
    [
      Msdq_fed.Paper_example.q1;
      "select X.name from Student@DB1 X where X.advisor.department.name = \"CS\"";
      "select X.a, X.b.c from K X where not (X.a = 1 or X.b.c < 2.5)";
      "select X.a from K X";
    ]
  in
  List.iter
    (fun src ->
      let ast = parse src in
      let printed = Ast.to_string ast in
      let ast2 = parse printed in
      Alcotest.(check string) ("round trip: " ^ src) (Ast.to_string ast)
        (Ast.to_string ast2);
      Alcotest.(check bool) ("cond equal: " ^ src) true
        (Cond.equal ast.Ast.where ast2.Ast.where))
    sources

let suite =
  [
    Alcotest.test_case "parse Q1" `Quick test_q1;
    Alcotest.test_case "local query syntax" `Quick test_local_query_syntax;
    Alcotest.test_case "literals and operators" `Quick test_literals_and_ops;
    Alcotest.test_case "hyphenated identifiers" `Quick test_hyphenated_identifier;
    Alcotest.test_case "boolean precedence" `Quick test_disjunction_precedence;
    Alcotest.test_case "negation" `Quick test_not;
    Alcotest.test_case "missing where" `Quick test_no_where;
    Alcotest.test_case "case-insensitive keywords" `Quick test_keywords_case_insensitive;
    Alcotest.test_case "string escapes" `Quick test_string_escapes;
    Alcotest.test_case "error reporting" `Quick test_errors;
    Alcotest.test_case "error positions" `Quick test_positions;
    Alcotest.test_case "print/parse round trip" `Quick test_round_trip;
  ]
