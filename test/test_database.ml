open Msdq_odb

let test_add_and_get () =
  let db, _, `Teachers (kelly, _), `Students (john, _, _) = Fixtures.school_db () in
  Alcotest.(check int) "cardinality" 7 (Database.cardinality db);
  Alcotest.(check int) "students" 3 (Database.extent_size db "Student");
  (match Database.get db (Dbobject.loid john) with
  | Some o -> Alcotest.(check string) "class" "Student" (Dbobject.cls o)
  | None -> Alcotest.fail "john should exist");
  (match Database.field_by_name db john "name" with
  | Some (Value.Str n) -> Alcotest.(check string) "name" "John" n
  | _ -> Alcotest.fail "name should be a string");
  Alcotest.(check bool) "missing attribute lookup" true
    (Database.field_by_name db kelly "salary" = None)

let test_extent_order () =
  let db, _, _, `Students (john, tony, mary) = Fixtures.school_db () in
  let names =
    List.map
      (fun o ->
        match Database.field_by_name db o "name" with
        | Some (Value.Str s) -> s
        | _ -> "?")
      (Database.extent db "Student")
  in
  Alcotest.(check (list string)) "insertion order" [ "John"; "Tony"; "Mary" ] names;
  Alcotest.(check bool) "loids distinct" true
    (not (Oid.Loid.equal (Dbobject.loid john) (Dbobject.loid tony))
    && not (Oid.Loid.equal (Dbobject.loid tony) (Dbobject.loid mary)))

let test_deref () =
  let db, _, `Teachers (kelly, _), `Students (john, _, _) = Fixtures.school_db () in
  (match Database.field_by_name db john "advisor" with
  | Some (Value.Ref _ as r) -> (
    match Database.deref db r with
    | Some t ->
      Alcotest.(check bool) "advisor is kelly" true
        (Oid.Loid.equal (Dbobject.loid t) (Dbobject.loid kelly))
    | None -> Alcotest.fail "deref failed")
  | _ -> Alcotest.fail "advisor should be a ref");
  Alcotest.(check bool) "deref of primitive" true
    (Database.deref db (Value.Int 3) = None);
  Alcotest.(check bool) "deref of null" true (Database.deref db Value.Null = None)

let expect_integrity name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Database.Integrity_error _ -> true)

let test_integrity () =
  let db, _, _, _ = Fixtures.school_db () in
  expect_integrity "unknown class" (fun () ->
      Database.add db ~cls:"Course" [ Value.Str "x" ]);
  expect_integrity "arity mismatch" (fun () ->
      Database.add db ~cls:"Department" [ Value.Str "x"; Value.Int 1 ]);
  expect_integrity "type mismatch" (fun () ->
      Database.add db ~cls:"Department" [ Value.Int 3 ]);
  expect_integrity "dangling reference" (fun () ->
      Database.add db ~cls:"Student"
        [ Value.Str "Z"; Value.Int 1; Value.Ref (Oid.Loid.of_int 999) ]);
  expect_integrity "wrong domain class" (fun () ->
      let dept = List.hd (Database.extent db "Department") in
      Database.add db ~cls:"Student"
        [ Value.Str "Z"; Value.Int 1; Value.Ref (Dbobject.loid dept) ]);
  expect_integrity "get_exn missing" (fun () ->
      Database.get_exn db (Oid.Loid.of_int 999));
  expect_integrity "unknown extent" (fun () -> Database.extent db "Course")

let test_nulls_allowed () =
  let db, _, _, `Students (_, _, mary) = Fixtures.school_db () in
  (match Database.field_by_name db mary "age" with
  | Some Value.Null -> ()
  | _ -> Alcotest.fail "mary's age should be null");
  Alcotest.(check bool) "has_null" true (Dbobject.has_null mary)

let test_pp () =
  let db, _, _, _ = Fixtures.school_db () in
  let text = Format.asprintf "%a" Database.pp db in
  Alcotest.(check bool) "pp non-empty" true (String.length text > 10)

let suite =
  [
    Alcotest.test_case "add and get" `Quick test_add_and_get;
    Alcotest.test_case "extent order" `Quick test_extent_order;
    Alcotest.test_case "dereference" `Quick test_deref;
    Alcotest.test_case "integrity checks" `Quick test_integrity;
    Alcotest.test_case "nulls allowed" `Quick test_nulls_allowed;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
