(* The pure core of tools/docs_lint: link extraction and the orphan
   (reachability) pass that keeps every docs/*.md linked from the
   README's docs index. *)

let targets text =
  Docs_lint_core.targets_of (Docs_lint_core.strip_code text)

let test_targets () =
  Alcotest.(check (list string))
    "links and images" [ "docs/A.md"; "img/x.png" ]
    (targets "see [A](docs/A.md) and ![shot](img/x.png)");
  Alcotest.(check (list string))
    "code span skipped" [ "real.md" ]
    (targets "use `[not](a-link.md)` but [yes](real.md)");
  Alcotest.(check (list string))
    "fenced block skipped" []
    (targets "```\n[hidden](in-code.md)\n```\n")

let test_external () =
  List.iter
    (fun t ->
      Alcotest.(check bool) (t ^ " external") true
        (Docs_lint_core.external_target t))
    [ ""; "#anchor"; "http://x"; "https://x/y"; "mailto:a@b" ];
  Alcotest.(check bool) "relative not external" false
    (Docs_lint_core.external_target "docs/A.md");
  Alcotest.(check string) "fragment stripped" "docs/A.md"
    (Docs_lint_core.strip_fragment "docs/A.md#section")

let test_normalize () =
  List.iter
    (fun (raw, want) ->
      Alcotest.(check string) raw want (Docs_lint_core.normalize raw))
    [
      ("./docs/X.md", "docs/X.md");
      ("docs/../docs/X.md", "docs/X.md");
      ("a/b/../../c.md", "c.md");
      ("docs//X.md", "docs/X.md");
    ]

let test_orphans () =
  (* README -> A -> B; C exists but nothing links to it. Spellings are
     deliberately mixed to exercise normalization. *)
  let links =
    [
      ("./README.md", [ "./docs/A.md" ]);
      ("docs/A.md", [ "docs/../docs/B.md" ]);
      ("./docs/C.md", [ "docs/A.md" ]);
    ]
  in
  let candidates = [ "./docs/A.md"; "./docs/B.md"; "./docs/C.md" ] in
  Alcotest.(check (list string))
    "only the unlinked doc is an orphan" [ "./docs/C.md" ]
    (Docs_lint_core.orphans ~roots:[ "./README.md" ] ~links ~candidates);
  (* Linking from an orphan does not rescue it: reachability starts at
     the roots, not at every file. *)
  Alcotest.(check (list string))
    "no roots, everything orphaned" candidates
    (Docs_lint_core.orphans ~roots:[] ~links ~candidates)

let suite =
  [
    Alcotest.test_case "link extraction" `Quick test_targets;
    Alcotest.test_case "external targets" `Quick test_external;
    Alcotest.test_case "path normalization" `Quick test_normalize;
    Alcotest.test_case "orphan detection" `Quick test_orphans;
  ]
