open Msdq_odb
open Msdq_fed

let l = Oid.Loid.of_int

let test_register_and_lookup () =
  let t = Goid_table.create () in
  let g1 = Goid_table.register t ~gcls:"Student" [ ("DB1", l 0); ("DB2", l 5) ] in
  let g2 = Goid_table.register t ~gcls:"Student" [ ("DB1", l 1) ] in
  Alcotest.(check bool) "distinct goids" false (Oid.Goid.equal g1 g2);
  Alcotest.(check int) "entities" 2 (Goid_table.entity_count t);
  (match Goid_table.goid_of_local t ~db:"DB1" (l 0) with
  | Some g -> Alcotest.(check bool) "lookup g1" true (Oid.Goid.equal g g1)
  | None -> Alcotest.fail "lookup failed");
  (match Goid_table.goid_of_local t ~db:"DB2" (l 5) with
  | Some g -> Alcotest.(check bool) "isomer shares goid" true (Oid.Goid.equal g g1)
  | None -> Alcotest.fail "lookup failed");
  Alcotest.(check bool) "unknown object" true
    (Goid_table.goid_of_local t ~db:"DB9" (l 0) = None);
  Alcotest.(check (option string)) "gcls" (Some "Student") (Goid_table.gcls_of t g1)

let test_isomers () =
  let t = Goid_table.create () in
  let _ =
    Goid_table.register t ~gcls:"T" [ ("A", l 0); ("B", l 1); ("C", l 2) ]
  in
  let isomers = Goid_table.isomers_of t ~db:"A" (l 0) in
  Alcotest.(check int) "two isomers" 2 (List.length isomers);
  Alcotest.(check bool) "self excluded" true
    (not (List.exists (fun (db, lo) -> db = "A" && Oid.Loid.equal lo (l 0)) isomers));
  Alcotest.(check (list string)) "isomer dbs" [ "B"; "C" ] (List.map fst isomers);
  Alcotest.(check int) "singleton has none" 0
    (List.length (Goid_table.isomers_of t ~db:"Z" (l 9)))

let test_duplicates () =
  let t = Goid_table.create () in
  let _ = Goid_table.register t ~gcls:"T" [ ("A", l 0) ] in
  Alcotest.(check bool) "re-register rejected" true
    (try
       ignore (Goid_table.register t ~gcls:"T" [ ("A", l 0) ]);
       false
     with Goid_table.Duplicate _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Goid_table.register t ~gcls:"T" []);
       false
     with Goid_table.Duplicate _ -> true)

let test_class_index () =
  let t = Goid_table.create () in
  let g1 = Goid_table.register t ~gcls:"T" [ ("A", l 0) ] in
  let _g2 = Goid_table.register t ~gcls:"U" [ ("A", l 1) ] in
  let g3 = Goid_table.register t ~gcls:"T" [ ("A", l 2) ] in
  let ts = Goid_table.goids_of_class t ~gcls:"T" in
  Alcotest.(check int) "two T entities" 2 (List.length ts);
  Alcotest.(check bool) "registration order" true
    (match ts with
    | [ a; b ] -> Oid.Goid.equal a g1 && Oid.Goid.equal b g3
    | _ -> false);
  Alcotest.(check int) "unknown class empty" 0
    (List.length (Goid_table.goids_of_class t ~gcls:"Z"))

let test_lookup_counter () =
  let t = Goid_table.create () in
  let g = Goid_table.register t ~gcls:"T" [ ("A", l 0) ] in
  let meter = Meter.create () in
  ignore (Goid_table.goid_of_local t ~meter ~db:"A" (l 0));
  ignore (Goid_table.locals_of t ~meter g);
  ignore (Goid_table.isomers_of t ~meter ~db:"A" (l 0));
  Alcotest.(check int) "three lookups" 3 (Meter.read meter).Meter.goid_lookups;
  (* lookups without a meter are not charged anywhere *)
  ignore (Goid_table.goid_of_local t ~db:"A" (l 0));
  Alcotest.(check int) "unmetered lookup uncharged" 3
    (Meter.read meter).Meter.goid_lookups

(* Figure 5 of the paper, reconstructed by isomerism identification. *)
let test_paper_figure5 () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let table = Federation.goids fed in
  (* 5 students, 4 teachers, 3 departments, 2 addresses = 14 entities *)
  Alcotest.(check int) "entity count" 14 (Goid_table.entity_count table);
  Alcotest.(check int) "5 student entities" 5
    (List.length (Goid_table.goids_of_class table ~gcls:"Student"));
  Alcotest.(check int) "4 teacher entities" 4
    (List.length (Goid_table.goids_of_class table ~gcls:"Teacher"));
  Alcotest.(check int) "3 department entities" 3
    (List.length (Goid_table.goids_of_class table ~gcls:"Department"));
  Alcotest.(check int) "2 address entities" 2
    (List.length (Goid_table.goids_of_class table ~gcls:"Address"));
  (* John exists in DB1 (s1) and DB2 (s2'): same goid. *)
  let g_s1 = Goid_table.goid_of_local table ~db:"DB1" (Dbobject.loid ex.Paper_example.s1) in
  let g_s2' = Goid_table.goid_of_local table ~db:"DB2" (Dbobject.loid ex.Paper_example.s2') in
  (match (g_s1, g_s2') with
  | Some a, Some b -> Alcotest.(check bool) "John isomeric" true (Oid.Goid.equal a b)
  | _ -> Alcotest.fail "John unregistered");
  (* Jeffery: t1@DB1 and t2'@DB2. *)
  let g_t1 = Goid_table.goid_of_local table ~db:"DB1" (Dbobject.loid ex.Paper_example.t1) in
  let g_t2' = Goid_table.goid_of_local table ~db:"DB2" (Dbobject.loid ex.Paper_example.t2') in
  (match (g_t1, g_t2') with
  | Some a, Some b -> Alcotest.(check bool) "Jeffery isomeric" true (Oid.Goid.equal a b)
  | _ -> Alcotest.fail "Jeffery unregistered");
  (* Haley (t3@DB1) is a singleton: no assistants anywhere. *)
  Alcotest.(check int) "Haley singleton" 0
    (List.length
       (Goid_table.isomers_of table ~db:"DB1" (Dbobject.loid ex.Paper_example.t3)));
  (* Kelly: t1'@DB2 and t2''@DB3. *)
  let isomers_kelly =
    Goid_table.isomers_of table ~db:"DB2" (Dbobject.loid ex.Paper_example.t1')
  in
  Alcotest.(check (list string)) "Kelly's assistant lives in DB3" [ "DB3" ]
    (List.map fst isomers_kelly)

let suite =
  [
    Alcotest.test_case "register and lookup" `Quick test_register_and_lookup;
    Alcotest.test_case "isomers" `Quick test_isomers;
    Alcotest.test_case "duplicate registration" `Quick test_duplicates;
    Alcotest.test_case "class index" `Quick test_class_index;
    Alcotest.test_case "lookup counter" `Quick test_lookup_counter;
    Alcotest.test_case "paper figure 5" `Quick test_paper_figure5;
  ]
