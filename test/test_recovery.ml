(* Failover recovery: the per-link circuit breaker's state machine at exact
   window boundaries, certification's insensitivity to duplicate verdicts
   (what makes hedged dispatch safe), and the chaos-tested recovery
   dominance invariants:

     certain(recovery) ⊆ certain(fault-free)        (soundness, still)
     demoted(recovery) ≤ demoted(retry-only)        (failover only helps)

   on every random schedule, for all localized strategies, with and without
   hedging. *)

open Msdq_simkit
open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload
module Fault = Msdq_fault.Fault
module Breaker = Recovery.Breaker

let ms = Time.ms

let run_opts fault recovery s fed analysis =
  let options =
    { Strategy.default_options with Strategy.fault; Strategy.recovery }
  in
  Strategy.run ~options s fed analysis

(* ---- policy validation ---- *)

let test_policy_validate () =
  Recovery.validate Recovery.disabled;
  Recovery.validate Recovery.default;
  Recovery.validate (Recovery.hedged (ms 0.5));
  (match Recovery.validate { Recovery.default with Recovery.breaker_threshold = 0 } with
  | () -> Alcotest.fail "threshold 0 accepted"
  | exception Invalid_argument _ -> ());
  match
    Recovery.validate
      { Recovery.default with Recovery.hedge_after = Some (Time.us (-1.0)) }
  with
  | () -> Alcotest.fail "negative hedge_after accepted"
  | exception Invalid_argument _ -> ()

(* ---- breaker state machine at exact window boundaries ---- *)

let window_sched =
  {
    Fault.seed = 0;
    slowdowns = [];
    partitions = [];
    sites =
      [ { Fault.site = 2; outages = [ { Fault.down = ms 1.0; up = ms 2.0 } ] } ];
    links = [];
  }

let test_breaker_boundaries () =
  let b = Breaker.create ~threshold:2 ~sched:window_sched () in
  Alcotest.(check bool) "starts closed" true (Breaker.state b ~site:2 = Breaker.Closed);
  Alcotest.(check bool) "closed is live" true (Breaker.live b ~site:2 ~at:(ms 1.0));
  (* first drop at the crash instant itself: under threshold, still closed *)
  Breaker.failure b ~site:2 ~at:(ms 1.0);
  Alcotest.(check bool) "below threshold stays closed" true
    (Breaker.state b ~site:2 = Breaker.Closed);
  (* second consecutive drop opens; the probe instant is the schedule's
     next-up for the covering window *)
  Breaker.failure b ~site:2 ~at:(ms 1.2);
  Alcotest.(check bool) "opens at threshold" true
    (Breaker.state b ~site:2 = Breaker.Open);
  Alcotest.(check int) "opened counted" 1 (Breaker.opened_total b);
  Alcotest.(check bool) "open rejects before up" false
    (Breaker.live b ~site:2 ~at:(ms 1.5));
  (* up - epsilon: still rejected *)
  Alcotest.(check bool) "open rejects at up - eps" false
    (Breaker.allow b ~site:2 ~at:(Time.us 1999.999));
  Alcotest.(check bool) "still open after denied allow" true
    (Breaker.state b ~site:2 = Breaker.Open);
  (* exactly at up (recovery instant, exclusive end of the window): the
     half-open probe is granted — once *)
  Alcotest.(check bool) "live at up" true (Breaker.live b ~site:2 ~at:(ms 2.0));
  Alcotest.(check bool) "probe granted at up" true
    (Breaker.allow b ~site:2 ~at:(ms 2.0));
  Alcotest.(check bool) "half-open" true
    (Breaker.state b ~site:2 = Breaker.Half_open);
  Alcotest.(check int) "probe counted" 1 (Breaker.probes_total b);
  Alcotest.(check bool) "second concurrent probe denied" false
    (Breaker.allow b ~site:2 ~at:(ms 2.0));
  (* successful probe closes and resets the consecutive count *)
  Breaker.success b ~site:2;
  Alcotest.(check bool) "probe success closes" true
    (Breaker.state b ~site:2 = Breaker.Closed);
  Breaker.failure b ~site:2 ~at:(ms 2.5);
  Alcotest.(check bool) "consecutive count was reset" true
    (Breaker.state b ~site:2 = Breaker.Closed);
  (* reopen while the site is up: drops can come from the lossy link alone,
     so the probe is due immediately *)
  Breaker.failure b ~site:2 ~at:(ms 2.6);
  Alcotest.(check bool) "reopens" true (Breaker.state b ~site:2 = Breaker.Open);
  Alcotest.(check int) "reopen counted" 2 (Breaker.opened_total b);
  Alcotest.(check bool) "site up: probe due immediately" true
    (Breaker.allow b ~site:2 ~at:(ms 2.6));
  (* a failed probe reopens *)
  Breaker.failure b ~site:2 ~at:(ms 2.7);
  Alcotest.(check bool) "failed probe reopens" true
    (Breaker.state b ~site:2 = Breaker.Open);
  Alcotest.(check int) "failed probe counts as opening" 3 (Breaker.opened_total b);
  (* other sites are independent *)
  Alcotest.(check bool) "other site unaffected" true (Breaker.live b ~site:1 ~at:(ms 2.7))

let test_breaker_permanent () =
  let sched =
    {
      Fault.seed = 0;
      slowdowns = [];
      partitions = [];
      sites =
        [
          {
            Fault.site = 3;
            outages = [ { Fault.down = ms 1.0; up = Time.us Float.infinity } ];
          };
        ];
      links = [];
    }
  in
  let events = ref [] in
  let b =
    Breaker.create ~on_event:(fun ev -> events := ev :: !events) ~threshold:1
      ~sched ()
  in
  Breaker.failure b ~site:3 ~at:(ms 1.5);
  Alcotest.(check bool) "opens on first drop at threshold 1" true
    (Breaker.state b ~site:3 = Breaker.Open);
  Alcotest.(check bool) "never live again" false
    (Breaker.live b ~site:3 ~at:(ms 100.0));
  Alcotest.(check bool) "no probe ever" false (Breaker.allow b ~site:3 ~at:(ms 100.0));
  Alcotest.(check int) "no probes granted" 0 (Breaker.probes_total b);
  match !events with
  | [ Breaker.Opened { site = 3; probe_at = None; _ } ] -> ()
  | _ -> Alcotest.fail "expected one Opened event with probe_at = None"

(* ---- certification is insensitive to duplicate verdicts ---- *)

(* The full localized pipeline on the paper example, yielding real local
   results and the complete verdict set (same shape as test_certify.ml). *)
let paper_pipeline () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  let results =
    List.map (fun db -> Local_eval.run fed analysis ~db) [ "DB1"; "DB2" ]
  in
  let built =
    List.map2
      (fun db (r : Local_result.t) ->
        Checks.build fed analysis ~db ~root_class:"Student"
          ~items:
            (List.concat_map
               (fun (row : Local_result.row) -> row.Local_result.unsolved)
               r.Local_result.rows))
      [ "DB1"; "DB2" ] results
  in
  let requests = List.concat_map (fun b -> b.Checks.requests) built in
  let verdicts =
    List.concat_map
      (fun db ->
        (Checks.serve fed ~db
           (List.filter
              (fun (r : Checks.request) -> r.Checks.target_db = db)
              requests))
          .Checks.verdicts)
      [ "DB1"; "DB2"; "DB3" ]
  in
  (fed, analysis, results, verdicts)

let prop_duplicate_verdicts =
  QCheck.Test.make
    ~name:"recovery: certification insensitive to duplicate verdicts" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let fed, analysis, results, verdicts = paper_pipeline () in
      let baseline = (Certify.run fed analysis ~results ~verdicts).Certify.answer in
      (* duplicate a random sub-multiset (a hedged batch re-delivering what a
         racer already delivered) and shuffle the surplus in *)
      let rng = Rng.create ~seed in
      let dups = List.filter (fun _ -> Rng.float rng < 0.5) verdicts in
      let interleaved =
        List.sort
          (fun a b -> compare (Checks.verdict_key a) (Checks.verdict_key b))
          (verdicts @ dups)
      in
      let doubled =
        (Certify.run fed analysis ~results ~verdicts:(verdicts @ dups))
          .Certify.answer
      in
      let sorted =
        (Certify.run fed analysis ~results ~verdicts:interleaved).Certify.answer
      in
      Answer.same_statuses baseline doubled && Answer.same_statuses baseline sorted)

(* ---- failover end to end on a synthetic federation ---- *)

let make_case seed attempt_limit =
  let rec go attempt =
    if attempt > attempt_limit then None
    else
      let cfg =
        {
          Synth.default with
          Synth.seed = (seed * 37) + attempt;
          p_host = 1.0;
          p_attr_present = 0.7;
          p_null = 0.15;
          p_copy = 0.5;
        }
      in
      let fed = Synth.generate cfg in
      let rng = Rng.create ~seed:(seed + (attempt * 1013)) in
      let query = Synth.random_query rng cfg ~disjunctive:false in
      let schema = Global_schema.schema (Federation.global_schema fed) in
      match Analysis.analyze schema query with
      | analysis -> Some (fed, analysis)
      | exception Analysis.Error _ -> go (attempt + 1)
  in
  go 0

(* A component site that never comes back: retry-only demotes every row an
   abandoned batch touched; under the recovery policy only keys no live
   replica answered demote. The seed is pinned to a case where isomeric
   replicas cover the dead site's checks, so the improvement is strict. *)
let test_failover_recovers () =
  match make_case 28 20 with
  | None -> Alcotest.fail "no analyzable case"
  | Some (fed, analysis) ->
    let ff_answer, _ = Strategy.run Strategy.Bl fed analysis in
    let dead = 2 in
    let fault =
      {
        Fault.seed = 11;
        slowdowns = [];
        partitions = [];
        sites =
          [
            {
              Fault.site = dead;
              outages = [ { Fault.down = Time.zero; up = Time.us Float.infinity } ];
            };
          ];
        links = [];
      }
    in
    let _, m_retry = run_opts fault Recovery.disabled Strategy.Bl fed analysis in
    let a_fo, m_fo = run_opts fault Recovery.default Strategy.Bl fed analysis in
    let ar = m_retry.Strategy.availability in
    let af = m_fo.Strategy.availability in
    let ffc = Answer.goids ff_answer Answer.Certain in
    let foc = Answer.goids a_fo Answer.Certain in
    Alcotest.(check bool) "retry-only demotes something" true (ar.Strategy.demoted > 0);
    Alcotest.(check bool) "failover sound" true (Oid.Goid.Set.subset foc ffc);
    Alcotest.(check bool) "failover dominates retry-only" true
      (af.Strategy.demoted <= ar.Strategy.demoted);
    Alcotest.(check bool) "strict improvement" true
      (af.Strategy.demoted < ar.Strategy.demoted);
    Alcotest.(check bool) "recovered rows reported" true (af.Strategy.recovered > 0);
    Alcotest.(check bool) "recovered counter matches" true
      (Msdq_obs.Metrics.total m_fo.Strategy.registry "msdq_recovery_recovered_total"
       = af.Strategy.recovered);
    (* reconciliation still holds with recovery on *)
    Alcotest.(check int) "reconciliation"
      (Oid.Goid.Set.cardinal ffc)
      (Oid.Goid.Set.cardinal foc + af.Strategy.demoted);
    (* rows that still demoted carry the failover chain as provenance *)
    Oid.Goid.Set.iter
      (fun g ->
        match Answer.degraded_reason a_fo g with
        | Some _ -> ()
        | None -> ())
      (Answer.degraded a_fo)

(* Lossy links with no crash at all: breakers open after consecutive drops,
   abandoned batches fail over (here often to the very same target, with
   fresh draws), and the counters surface in the registry. *)
let test_breaker_counters_surface () =
  match make_case 9 20 with
  | None -> Alcotest.fail "no analyzable case"
  | Some (fed, analysis) ->
    let n_db = List.length (Federation.databases fed) in
    let fault =
      {
        Fault.seed = 23;
        slowdowns = [];
        partitions = [];
        sites = [];
        links =
          List.init n_db (fun i -> { Fault.dst = i + 1; drop = 0.85; inflate = 1.0; jitter = 0.0 });
      }
    in
    let recovery = { Recovery.default with Recovery.breaker_threshold = 2 } in
    let _, m = run_opts fault recovery Strategy.Bl fed analysis in
    let total name = Msdq_obs.Metrics.total m.Strategy.registry name in
    Alcotest.(check bool) "breakers opened under heavy loss" true
      (total "msdq_breaker_opened_total" > 0);
    Alcotest.(check bool) "half-open probes granted" true
      (total "msdq_breaker_probes_total" > 0);
    Alcotest.(check bool) "failovers dispatched" true
      (total "msdq_recovery_failovers_total" > 0);
    let span_names =
      List.filter
        (fun (s : Msdq_obs.Tracer.span) -> String.equal s.Msdq_obs.Tracer.cat "breaker")
        m.Strategy.host_spans
    in
    Alcotest.(check bool) "breaker span events recorded" true (span_names <> [])

(* ---- chaos: recovery dominance over random schedules ---- *)

let random_schedule ~seed ~n_db ~horizon =
  let rng = Rng.create ~seed in
  let availability = 0.5 +. (0.5 *. Rng.float rng) in
  let drop = 0.3 *. Rng.float rng in
  let sched =
    Fault.random ~rng
      ~sites:(List.init n_db (fun i -> i + 1))
      ~availability:(Float.min availability 1.0)
      ~horizon ~drop ()
  in
  { sched with
    Fault.links = { Fault.dst = 0; drop = 0.1; inflate = 1.0; jitter = 0.0 } :: sched.Fault.links }

let localized = [ Strategy.Bl; Strategy.Pl; Strategy.Bls; Strategy.Pls ]

let prop_recovery_dominates =
  QCheck.Test.make
    ~name:"chaos: recovery is sound and dominates retry-only demotion"
    ~count:200
    QCheck.(int_bound 100_000)
    (fun seed ->
      match make_case seed 8 with
      | None -> true
      | Some (fed, analysis) ->
        let recovery =
          (* alternate plain failover and failover+hedging across schedules *)
          if seed mod 2 = 0 then Recovery.default
          else Recovery.hedged (Time.ms 0.5)
        in
        List.for_all
          (fun s ->
            let ff_answer, ff = Strategy.run s fed analysis in
            let horizon =
              Time.us (2.0 *. Time.to_us (Time.max ff.Strategy.response (ms 1.0)))
            in
            let fault =
              random_schedule ~seed:(seed + 31)
                ~n_db:(List.length (Federation.databases fed))
                ~horizon
            in
            let _, m_retry = run_opts fault Recovery.disabled s fed analysis in
            let answer, m_fo = run_opts fault recovery s fed analysis in
            let a = m_fo.Strategy.availability in
            let ffc = Answer.goids ff_answer Answer.Certain in
            let fc = Answer.goids answer Answer.Certain in
            let fm = Answer.goids answer Answer.Maybe in
            (* soundness and completeness still hold with recovery on *)
            Oid.Goid.Set.subset fc ffc
            && Oid.Goid.Set.subset ffc (Oid.Goid.Set.union fc fm)
            (* reconciliation *)
            && Oid.Goid.Set.cardinal fc + a.Strategy.demoted
               = Oid.Goid.Set.cardinal ffc
            (* dominance: failover never demotes more than retry-only *)
            && a.Strategy.demoted
               <= m_retry.Strategy.availability.Strategy.demoted)
          localized)

let prop_recovery_deterministic =
  QCheck.Test.make ~name:"chaos: recovery runs are reproducible" ~count:10
    QCheck.(int_bound 100_000)
    (fun seed ->
      match make_case seed 8 with
      | None -> true
      | Some (fed, analysis) ->
        let _, ff = Strategy.run Strategy.Bl fed analysis in
        let horizon =
          Time.us (2.0 *. Time.to_us (Time.max ff.Strategy.response (ms 1.0)))
        in
        let fault =
          random_schedule ~seed:(seed + 7)
            ~n_db:(List.length (Federation.databases fed))
            ~horizon
        in
        let bytes () =
          let a, m =
            run_opts fault (Recovery.hedged (Time.ms 0.5)) Strategy.Bl fed analysis
          in
          Msdq_obs.Json.to_string (Msdq_exp.Run_report.run_to_json a m)
        in
        String.equal (bytes ()) (bytes ()))

let suite =
  [
    Alcotest.test_case "policy validation" `Quick test_policy_validate;
    Alcotest.test_case "breaker window boundaries" `Quick test_breaker_boundaries;
    Alcotest.test_case "breaker permanent outage" `Quick test_breaker_permanent;
    Alcotest.test_case "failover recovers demotions" `Quick test_failover_recovers;
    Alcotest.test_case "breaker counters and spans" `Quick test_breaker_counters_surface;
    QCheck_alcotest.to_alcotest prop_duplicate_verdicts;
    QCheck_alcotest.to_alcotest prop_recovery_dominates;
    QCheck_alcotest.to_alcotest prop_recovery_deterministic;
  ]
