open Msdq_workload

let test_determinism () =
  let draw seed =
    let r = Rng.create ~seed in
    List.init 20 (fun _ -> Rng.int r ~bound:1000)
  in
  Alcotest.(check (list int)) "same seed same stream" (draw 7) (draw 7);
  Alcotest.(check bool) "different seeds differ" true (draw 7 <> draw 8)

let test_split_independence () =
  let r = Rng.create ~seed:1 in
  let a = Rng.split r in
  let b = Rng.split r in
  let sa = List.init 10 (fun _ -> Rng.int a ~bound:1000) in
  let sb = List.init 10 (fun _ -> Rng.int b ~bound:1000) in
  Alcotest.(check bool) "split streams differ" true (sa <> sb)

let test_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int r ~bound:10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of bounds";
    let w = Rng.range r ~lo:5 ~hi:7 in
    if w < 5 || w > 7 then Alcotest.fail "range out of bounds";
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of bounds";
    let g = Rng.frange r ~lo:2.0 ~hi:3.0 in
    if g < 2.0 || g > 3.0 then Alcotest.fail "frange out of bounds"
  done

let test_uniformity_rough () =
  let r = Rng.create ~seed:11 in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    let v = Rng.int r ~bound:4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d roughly uniform (%d)" i c)
        true
        (c > 800 && c < 1200))
    counts

let test_bool_probability () =
  let r = Rng.create ~seed:13 in
  let hits = ref 0 in
  for _ = 1 to 2000 do
    if Rng.bool r ~p:0.25 then incr hits
  done;
  Alcotest.(check bool) "about a quarter" true (!hits > 380 && !hits < 620)

let test_pick () =
  let r = Rng.create ~seed:17 in
  let l = [ "a"; "b"; "c" ] in
  for _ = 1 to 50 do
    let v = Rng.pick r l in
    if not (List.mem v l) then Alcotest.fail "pick outside list"
  done;
  Alcotest.(check bool) "empty pick rejected" true
    (try
       ignore (Rng.pick r []);
       false
     with Invalid_argument _ -> true)

let test_errors () =
  let r = Rng.create ~seed:19 in
  Alcotest.(check bool) "non-positive bound" true
    (try
       ignore (Rng.int r ~bound:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "inverted range" true
    (try
       ignore (Rng.range r ~lo:3 ~hi:2);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "rough uniformity" `Quick test_uniformity_rough;
    Alcotest.test_case "bool probability" `Quick test_bool_probability;
    Alcotest.test_case "pick" `Quick test_pick;
    Alcotest.test_case "errors" `Quick test_errors;
  ]
