(* Fault injection: schedule validation, the deterministic drop draw, the
   engine-level failure semantics, and the chaos properties — for any seeded
   fault schedule the degraded answer is sound:

     certain(faulty) ⊆ certain(fault-free)
     certain(faulty) ∪ maybe(faulty) ⊇ certain(fault-free)

   and the availability section reconciles exactly with the fault-free run:
   |certain(faulty)| + demoted = |certain(fault-free)|.

   The chaos suite honours QCHECK_SEED (qcheck-alcotest), which CI rotates
   and prints per job for reproduction. *)

open Msdq_simkit
open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload
module Fault = Msdq_fault.Fault

let ms = Time.ms

let paper_case () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let analysis =
    Analysis.analyze
      (Global_schema.schema (Federation.global_schema fed))
      (Parser.parse Paper_example.q1)
  in
  (fed, analysis)

let run_with fault s fed analysis =
  let options = { Strategy.default_options with Strategy.fault } in
  Strategy.run ~options s fed analysis

(* ---- validation ---- *)

let rejects name schedule =
  match Fault.validate schedule with
  | () -> Alcotest.failf "%s accepted" name
  | exception Invalid_argument _ -> ()

let test_validate () =
  Fault.validate Fault.none;
  Fault.validate
    {
      Fault.seed = 1;
      slowdowns = [];
      partitions = [];
      sites = [ { Fault.site = 2; outages = [ { Fault.down = ms 1.0; up = ms 2.0 } ] } ];
      links = [ { Fault.dst = 0; drop = 0.5; inflate = 2.0; jitter = 0.0 } ];
    };
  rejects "negative site"
    { Fault.none with Fault.sites = [ { Fault.site = -1; outages = [] } ] };
  rejects "up <= down"
    {
      Fault.none with
      Fault.sites =
        [ { Fault.site = 1; outages = [ { Fault.down = ms 2.0; up = ms 2.0 } ] } ];
    };
  rejects "overlapping windows"
    {
      Fault.none with
      Fault.sites =
        [
          {
            Fault.site = 1;
            outages =
              [
                { Fault.down = ms 1.0; up = ms 3.0 };
                { Fault.down = ms 2.0; up = ms 4.0 };
              ];
          };
        ];
    };
  rejects "drop > 1"
    { Fault.none with Fault.links = [ { Fault.dst = 0; drop = 1.5; inflate = 1.0; jitter = 0.0 } ] };
  rejects "inflate < 1"
    { Fault.none with Fault.links = [ { Fault.dst = 0; drop = 0.0; inflate = 0.5; jitter = 0.0 } ] }

(* The validator's diagnostics are part of the operator surface — bench
   configs and CI logs quote them verbatim — so pin the exact text of one
   representative message per rejection rule. *)
let test_validate_messages () =
  let msg_of thunk =
    match thunk () with
    | () -> None
    | exception Invalid_argument m -> Some m
  in
  let win down up = { Fault.down; up } in
  let link dst = { Fault.dst; drop = 0.0; inflate = 1.0; jitter = 0.0 } in
  let v sched () = Fault.validate sched in
  let cases =
    [
      ( "negative site id",
        v { Fault.none with Fault.sites = [ { Fault.site = -1; outages = [] } ] },
        "Fault.validate: negative site id -1" );
      ( "outage window before zero",
        v
          {
            Fault.none with
            Fault.sites =
              [ { Fault.site = 1; outages = [ win (Time.us (-1.0)) (ms 1.0) ] } ];
          },
        "Fault.validate: site 1: window starts before time zero" );
      ( "outage window never recovers",
        v
          {
            Fault.none with
            Fault.sites =
              [ { Fault.site = 1; outages = [ win (ms 2.0) (ms 2.0) ] } ];
          },
        "Fault.validate: site 1: window recovers at 2000, not after crash at \
         2000" );
      ( "outage windows overlap",
        v
          {
            Fault.none with
            Fault.sites =
              [
                {
                  Fault.site = 1;
                  outages = [ win (ms 1.0) (ms 3.0); win (ms 2.0) (ms 4.0) ];
                };
              ];
          },
        "Fault.validate: site 1: windows overlap or are unordered" );
      ( "negative link site id",
        v { Fault.none with Fault.links = [ link (-2) ] },
        "Fault.validate: negative link site id -2" );
      ( "drop probability outside [0,1]",
        v { Fault.none with Fault.links = [ { (link 0) with Fault.drop = 1.5 } ] },
        "Fault.validate: link to 0: drop probability 1.5 outside [0,1]" );
      ( "inflation below 1",
        v
          {
            Fault.none with
            Fault.links = [ { (link 3) with Fault.inflate = 0.5 } ];
          },
        "Fault.validate: link to 3: inflation 0.5 below 1" );
      ( "negative jitter",
        v
          {
            Fault.none with
            Fault.links = [ { (link 4) with Fault.jitter = -0.25 } ];
          },
        "Fault.validate: link to 4: jitter -0.25 negative or not finite" );
      ( "negative slowdown site id",
        v
          {
            Fault.none with
            Fault.slowdowns =
              [ { Fault.slow_site = -3; factor = 2.0; busy = [] } ];
          },
        "Fault.validate: negative slowdown site id -3" );
      ( "slowdown factor below 1",
        v
          {
            Fault.none with
            Fault.slowdowns =
              [ { Fault.slow_site = 2; factor = 0.9; busy = [] } ];
          },
        "Fault.validate: slowdown at site 2: factor 0.9 below 1" );
      ( "slowdown windows overlap",
        v
          {
            Fault.none with
            Fault.slowdowns =
              [
                {
                  Fault.slow_site = 2;
                  factor = 2.0;
                  busy = [ win (ms 1.0) (ms 3.0); win (ms 2.0) (ms 4.0) ];
                };
              ];
          },
        "Fault.validate: slowdown at site 2: windows overlap or are unordered"
      );
      ( "negative partition site id",
        v
          {
            Fault.none with
            Fault.partitions =
              [ { Fault.part_site = -4; direction = Fault.Inbound; cut = [] } ];
          },
        "Fault.validate: negative partition site id -4" );
      ( "partition window before zero",
        v
          {
            Fault.none with
            Fault.partitions =
              [
                {
                  Fault.part_site = 3;
                  direction = Fault.Outbound;
                  cut = [ win (Time.us (-1.0)) (ms 1.0) ];
                };
              ];
          },
        "Fault.validate: partition at site 3: window starts before time zero"
      );
      ( "flap_train period not positive",
        (fun () ->
          ignore
            (Fault.flap_train ~from:Time.zero ~until:(ms 1.0)
               ~period:Time.zero ~duty:0.5)),
        "Fault.flap_train: period must be positive and finite" );
      ( "flap_train duty outside (0,1)",
        (fun () ->
          ignore
            (Fault.flap_train ~from:Time.zero ~until:(ms 1.0)
               ~period:(ms 0.1) ~duty:1.0)),
        "Fault.flap_train: duty must be in (0, 1)" );
      ( "flap_train negative from",
        (fun () ->
          ignore
            (Fault.flap_train ~from:(Time.us (-1.0)) ~until:(ms 1.0)
               ~period:(ms 0.1) ~duty:0.5)),
        "Fault.flap_train: from must be >= 0" );
      ( "flap_train until before from",
        (fun () ->
          ignore
            (Fault.flap_train ~from:(ms 1.0) ~until:(ms 1.0) ~period:(ms 0.1)
               ~duty:0.5)),
        "Fault.flap_train: until must be after from" );
      ( "random availability outside (0,1]",
        (fun () ->
          ignore
            (Fault.random
               ~rng:(Rng.create ~seed:1)
               ~sites:[ 1 ] ~availability:0.0 ~horizon:(ms 1.0) ())),
        "Fault.random: availability must be in (0, 1]" );
      ( "random horizon not positive",
        (fun () ->
          ignore
            (Fault.random
               ~rng:(Rng.create ~seed:1)
               ~sites:[ 1 ] ~availability:0.9 ~horizon:Time.zero ())),
        "Fault.random: horizon must be positive and finite" );
      ( "random negative jitter",
        (fun () ->
          ignore
            (Fault.random
               ~rng:(Rng.create ~seed:1)
               ~sites:[ 1 ] ~availability:0.9 ~horizon:(ms 1.0) ~jitter:(-1.0)
               ())),
        "Fault.random: jitter must be >= 0" );
      ( "random slow below 1",
        (fun () ->
          ignore
            (Fault.random
               ~rng:(Rng.create ~seed:1)
               ~sites:[ 1 ] ~availability:0.9 ~horizon:(ms 1.0) ~slow:0.5 ())),
        "Fault.random: slow must be >= 1" );
      ( "random oneway outside [0,1]",
        (fun () ->
          ignore
            (Fault.random
               ~rng:(Rng.create ~seed:1)
               ~sites:[ 1 ] ~availability:0.9 ~horizon:(ms 1.0) ~oneway:1.5 ())),
        "Fault.random: oneway must be in [0, 1]" );
    ]
  in
  List.iter
    (fun (name, thunk, expected) ->
      Alcotest.(check (option string)) name (Some expected) (msg_of thunk))
    cases

let test_windows () =
  let sched =
    {
      Fault.seed = 0;
      slowdowns = [];
      partitions = [];
      sites =
        [
          {
            Fault.site = 2;
            outages =
              [
                { Fault.down = ms 1.0; up = ms 2.0 };
                { Fault.down = ms 5.0; up = Time.us Float.infinity };
              ];
          };
        ];
      links = [];
    }
  in
  Fault.validate sched;
  Alcotest.(check bool) "up before first window" false
    (Fault.site_down sched ~site:2 ~at:(ms 0.5));
  Alcotest.(check bool) "down inside window" true
    (Fault.site_down sched ~site:2 ~at:(ms 1.5));
  Alcotest.(check bool) "recovery instant is up" false
    (Fault.site_down sched ~site:2 ~at:(ms 2.0));
  Alcotest.(check bool) "other sites unaffected" false
    (Fault.site_down sched ~site:1 ~at:(ms 1.5));
  (match Fault.next_up sched ~site:2 ~at:(ms 1.5) with
  | Some t -> Alcotest.(check (float 1e-9)) "next_up inside window" 2000.0 (Time.to_us t)
  | None -> Alcotest.fail "expected recovery");
  Alcotest.(check bool) "permanent outage never recovers" true
    (Fault.next_up sched ~site:2 ~at:(ms 6.0) = None);
  Alcotest.(check bool) "permanently down" true
    (Fault.permanently_down sched ~site:2 ~at:(ms 6.0));
  Alcotest.(check (list int)) "failed sites" [ 2 ] (Fault.failed_sites sched)

(* ---- the deterministic drop draw ---- *)

let test_drop_draw () =
  let sched = { Fault.none with Fault.seed = 1234 } in
  let draw i p =
    Fault.drop_draw sched ~dst:0
      ~label:(Printf.sprintf "transfer-%d" i)
      ~start:(Time.us (float_of_int (i * 17)))
      ~p
  in
  for i = 0 to 99 do
    Alcotest.(check bool) "p=0 never drops" false (draw i 0.0);
    Alcotest.(check bool) "p=1 always drops" true (draw i 1.0);
    Alcotest.(check bool) "deterministic" (draw i 0.3) (draw i 0.3)
  done;
  let n = 2000 in
  let hits = ref 0 in
  for i = 0 to n - 1 do
    if draw i 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "drop frequency %.3f near 0.3" freq)
    true
    (freq > 0.25 && freq < 0.35)

(* The draw is a pure hash of (seed, dst, label, start): the order in which
   the schedule happens to list its sites and links is immaterial. *)
let prop_drop_draw_permutation =
  QCheck.Test.make
    ~name:"drop draw is stable under sites/links permutation" ~count:100
    QCheck.(pair (int_bound 100_000) (int_bound 1_000))
    (fun (seed, salt) ->
      let sites =
        List.init 4 (fun i ->
            {
              Fault.site = i + 1;
              outages = [ { Fault.down = ms (float_of_int (i + 1)); up = ms 9.0 } ];
            })
      in
      let links =
        List.init 5 (fun i ->
            { Fault.dst = i; drop = 0.1 *. float_of_int (i + 1); inflate = 1.0; jitter = 0.0 })
      in
      let shuffle l =
        let rng = Rng.create ~seed:salt in
        List.map snd
          (List.sort compare
             (List.map (fun x -> (Rng.int rng ~bound:1_000_000, x)) l))
      in
      let a = { Fault.seed; sites; links; slowdowns = []; partitions = [] } in
      let b = { Fault.seed; sites = shuffle sites; links = shuffle links; slowdowns = []; partitions = [] } in
      List.for_all
        (fun i ->
          let draw s =
            Fault.drop_draw s ~dst:(i mod 6)
              ~label:(Printf.sprintf "leg-%d" i)
              ~start:(Time.us (float_of_int (salt + (i * 13))))
              ~p:0.4
          in
          draw a = draw b)
        (List.init 50 Fun.id))

(* Availability 1.0 with a non-zero drop: a lossy-link-only schedule — no
   outage windows, every listed site's incoming link lossy. *)
let test_drop_only_schedule () =
  let rng = Rng.create ~seed:42 in
  let sched =
    Fault.random ~rng ~sites:[ 1; 2; 3 ] ~availability:1.0 ~horizon:(ms 10.0)
      ~drop:0.4 ()
  in
  Fault.validate sched;
  Alcotest.(check bool) "no outage windows" true (sched.Fault.sites = []);
  Alcotest.(check int) "one lossy link per site" 3 (List.length sched.Fault.links);
  Alcotest.(check (list int)) "no failed sites" [] (Fault.failed_sites sched);
  let fed, analysis = paper_case () in
  let ff_answer, _ = Strategy.run Strategy.Bl fed analysis in
  let answer, m = run_with sched Strategy.Bl fed analysis in
  let a = m.Strategy.availability in
  Alcotest.(check bool) "faults active" true a.Strategy.faults_active;
  Alcotest.(check bool) "messages were lost" true (a.Strategy.drops > 0);
  Alcotest.(check bool) "sound" true
    (Oid.Goid.Set.subset
       (Answer.goids answer Answer.Certain)
       (Answer.goids ff_answer Answer.Certain))

(* ---- engine-level semantics on the paper example ---- *)

let test_link_loss_ca () =
  let fed, analysis = paper_case () in
  let ff_answer, ff = Strategy.run Strategy.Ca fed analysis in
  let fault =
    {
      Fault.seed = 5;
      slowdowns = [];
      partitions = [];
      sites = [];
      links = [ { Fault.dst = 0; drop = 0.9; inflate = 1.0; jitter = 0.0 } ];
    }
  in
  let answer, m = run_with fault Strategy.Ca fed analysis in
  let a = m.Strategy.availability in
  Alcotest.(check bool) "faults active" true a.Strategy.faults_active;
  Alcotest.(check bool) "transfers were lost" true (a.Strategy.drops > 0);
  Alcotest.(check bool) "retries happened" true (a.Strategy.retries > 0);
  (* critical transfers retry until delivered: the answer survives intact *)
  Alcotest.(check bool) "answer statuses preserved" true
    (Answer.same_statuses ff_answer answer);
  Alcotest.(check int) "nothing demoted" 0 a.Strategy.demoted;
  Alcotest.(check bool) "losses cost simulated time" true
    (Time.compare m.Strategy.response ff.Strategy.response > 0)

let test_latency_inflation () =
  let fed, analysis = paper_case () in
  let _, ff = Strategy.run Strategy.Ca fed analysis in
  let fault =
    {
      Fault.seed = 1;
      slowdowns = [];
      partitions = [];
      sites = [];
      links = [ { Fault.dst = 0; drop = 0.0; inflate = 3.0; jitter = 0.0 } ];
    }
  in
  let answer, m = run_with fault Strategy.Ca fed analysis in
  Alcotest.(check bool) "no drops from pure inflation" true
    (m.Strategy.availability.Strategy.drops = 0);
  Alcotest.(check bool) "inflation slows the response" true
    (Time.compare m.Strategy.response ff.Strategy.response > 0);
  Alcotest.(check bool) "answer intact" true
    (Answer.same_statuses answer (fst (Strategy.run Strategy.Ca fed analysis)))

(* A component site that stays down forever: every check round trip into it
   is abandoned, and the affected entities are demoted — never silently
   promoted. *)
let test_crash_demotes () =
  let fed, analysis = paper_case () in
  let ff_answer, _ = Strategy.run Strategy.Bl fed analysis in
  let fault =
    {
      Fault.seed = 2;
      slowdowns = [];
      partitions = [];
      sites =
        [
          {
            Fault.site = 2;
            outages = [ { Fault.down = Time.zero; up = Time.us Float.infinity } ];
          };
        ];
      links = [];
    }
  in
  let answer, m = run_with fault Strategy.Bl fed analysis in
  let a = m.Strategy.availability in
  Alcotest.(check (list int)) "failed site reported" [ 2 ] a.Strategy.failed_sites;
  Alcotest.(check bool) "checks were abandoned" true (a.Strategy.checks_abandoned > 0);
  let ffc = Answer.goids ff_answer Answer.Certain in
  let fc = Answer.goids answer Answer.Certain in
  Alcotest.(check bool) "certain(faulty) subset of certain(fault-free)" true
    (Oid.Goid.Set.subset fc ffc);
  Alcotest.(check int) "reconciliation: certain + demoted = fault-free certain"
    (Oid.Goid.Set.cardinal ffc)
    (Oid.Goid.Set.cardinal fc + a.Strategy.demoted);
  Alcotest.(check int) "demotions carry provenance" a.Strategy.demoted
    (Oid.Goid.Set.cardinal
       (Oid.Goid.Set.filter (fun g -> Oid.Goid.Set.mem g ffc)
          (Answer.degraded answer)))

(* ---- fault-free byte identity ---- *)

let test_none_is_identity () =
  let fed, analysis = paper_case () in
  List.iter
    (fun s ->
      let default_answer, default_m = Strategy.run s fed analysis in
      let explicit_answer, explicit_m = run_with Fault.none s fed analysis in
      let bytes (a, m) =
        Msdq_obs.Json.to_string (Msdq_exp.Run_report.run_to_json a m)
      in
      Alcotest.(check string)
        (Strategy.to_string s ^ ": Fault.none report is byte-identical")
        (bytes (default_answer, default_m))
        (bytes (explicit_answer, explicit_m));
      Alcotest.(check bool) "availability silent" false
        explicit_m.Strategy.availability.Strategy.faults_active)
    Strategy.all

(* ---- chaos properties ---- *)

(* A federation and query that analyze; denser than Synth.default so checks
   and shipping actually happen (same shape as the equivalence suite). *)
let rec make_case seed attempt =
  if attempt > 20 then None
  else
    let cfg =
      {
        Synth.default with
        Synth.seed = (seed * 37) + attempt;
        p_host = 1.0;
        p_attr_present = 0.7;
        p_null = 0.15;
        p_copy = 0.4;
      }
    in
    let fed = Synth.generate cfg in
    let rng = Rng.create ~seed:(seed + (attempt * 1013)) in
    let query = Synth.random_query rng cfg ~disjunctive:false in
    let schema = Global_schema.schema (Federation.global_schema fed) in
    match Analysis.analyze schema query with
    | analysis -> Some (fed, analysis)
    | exception Analysis.Error _ -> make_case seed (attempt + 1)

let random_schedule ~seed ~n_db ~horizon =
  let rng = Rng.create ~seed in
  let availability = 0.5 +. (0.5 *. Rng.float rng) in
  (* near-perfect availability degenerates to the lossy-link-only chaos
     point: no crash windows, drops still flowing *)
  let availability = if availability >= 0.999 then 1.0 else availability in
  let sched =
    Fault.random ~rng
      ~sites:(List.init n_db (fun i -> i + 1))
      ~availability ~horizon ~drop:(0.3 *. Rng.float rng) ()
  in
  { sched with Fault.links = { Fault.dst = 0; drop = 0.1; inflate = 1.0; jitter = 0.0 } :: sched.Fault.links }

let chaos_strategies =
  [ Strategy.Ca; Strategy.Bl; Strategy.Pl; Strategy.Bls; Strategy.Pls; Strategy.Cf ]

let prop_chaos_soundness =
  QCheck.Test.make ~name:"chaos: degraded answers are sound" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      match make_case seed 0 with
      | None -> true
      | Some (fed, analysis) ->
        List.for_all
          (fun s ->
            let ff_answer, ff = Strategy.run s fed analysis in
            let horizon =
              Time.us (2.0 *. Time.to_us (Time.max ff.Strategy.response (ms 1.0)))
            in
            let fault =
              random_schedule ~seed:(seed + 31)
                ~n_db:(List.length (Federation.databases fed))
                ~horizon
            in
            let answer, m = run_with fault s fed analysis in
            let a = m.Strategy.availability in
            let ffc = Answer.goids ff_answer Answer.Certain in
            let fc = Answer.goids answer Answer.Certain in
            let fm = Answer.goids answer Answer.Maybe in
            (* soundness: nothing falsely certified *)
            Oid.Goid.Set.subset fc ffc
            (* completeness: nothing certain vanished entirely *)
            && Oid.Goid.Set.subset ffc (Oid.Goid.Set.union fc fm)
            (* reconciliation *)
            && Oid.Goid.Set.cardinal fc + a.Strategy.demoted
               = Oid.Goid.Set.cardinal ffc
            && a.Strategy.certain_fault_free = Oid.Goid.Set.cardinal ffc
            && (Fault.is_none fault || a.Strategy.faults_active)
            && a.Strategy.degradation_ratio >= 0.0
            && a.Strategy.degradation_ratio <= 1.0)
          chaos_strategies)

(* ---- gray chaos ----

   Random schedules over the gray knobs — slowdown windows, link jitter,
   flap trains, one-way partitions — on top of a lossy baseline. Gray
   faults degrade latency, never correctness. *)

let random_gray_schedule ~seed ~n_db ~horizon =
  let rng = Rng.create ~seed in
  let availability = 0.6 +. (0.4 *. Rng.float rng) in
  let availability = if availability >= 0.999 then 1.0 else availability in
  let flap =
    if availability < 1.0 && Rng.float rng < 0.5 then
      Some (Time.us (Time.to_us horizon /. 8.0))
    else None
  in
  Fault.random ~rng
    ~sites:(List.init n_db (fun i -> i + 1))
    ~availability ~horizon
    ~drop:(0.2 *. Rng.float rng)
    ~inflate:(1.0 +. Rng.float rng)
    ~jitter:(2.0 *. Rng.float rng)
    ~slow:(1.0 +. (3.0 *. Rng.float rng))
    ?flap
    ~oneway:(0.6 *. Rng.float rng) ()

(* Replayable chaos failures: a failing draw prints everything needed to
   replay it by hand — the qcheck seed CI rotates and exports, the exact
   schedule rendered by [Fault.pp], and the repro command — before the
   property reports false (or re-raises). *)
let report_failure ~case_seed fault =
  let qcheck_seed =
    match Sys.getenv_opt "QCHECK_SEED" with Some s -> s | None -> "<random>"
  in
  Format.eprintf
    "@[<v>gray chaos failure: case seed %d, QCHECK_SEED=%s@,%a@,replay: \
     QCHECK_SEED=%s dune exec test/main.exe -- test fault@]@."
    case_seed qcheck_seed Fault.pp fault qcheck_seed

let replayable ~case_seed fault body =
  match body () with
  | true -> true
  | false ->
    report_failure ~case_seed fault;
    false
  | exception e ->
    report_failure ~case_seed fault;
    raise e

let run_gray fault ~adaptive s fed analysis =
  let retry =
    if adaptive then
      {
        Strategy.default_retry with
        Strategy.adaptive = Some Strategy.default_adaptive;
      }
    else Strategy.default_retry
  in
  let options = { Strategy.default_options with Strategy.fault; retry } in
  Strategy.run ~options s fed analysis

(* For any random gray schedule, under either timeout policy, the BL
   answer stays sound against the fault-free run and reconciles exactly.
   200+ schedules per the acceptance criterion. *)
let prop_gray_soundness =
  QCheck.Test.make
    ~name:"gray chaos: slow/jitter/flap/one-way answers are sound" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      match make_case seed 0 with
      | None -> true
      | Some (fed, analysis) ->
        let ff_answer, ff = Strategy.run Strategy.Bl fed analysis in
        let horizon =
          Time.us (2.0 *. Time.to_us (Time.max ff.Strategy.response (ms 1.0)))
        in
        let fault =
          random_gray_schedule ~seed:(seed + 47)
            ~n_db:(List.length (Federation.databases fed))
            ~horizon
        in
        replayable ~case_seed:seed fault (fun () ->
            let answer, m =
              run_gray fault ~adaptive:(seed mod 2 = 1) Strategy.Bl fed
                analysis
            in
            let a = m.Strategy.availability in
            let ffc = Answer.goids ff_answer Answer.Certain in
            let fc = Answer.goids answer Answer.Certain in
            let fm = Answer.goids answer Answer.Maybe in
            Oid.Goid.Set.subset fc ffc
            && Oid.Goid.Set.subset ffc (Oid.Goid.Set.union fc fm)
            && Oid.Goid.Set.cardinal fc + a.Strategy.demoted
               = Oid.Goid.Set.cardinal ffc))

let prop_chaos_deterministic =
  QCheck.Test.make ~name:"chaos: faulty runs are reproducible" ~count:10
    QCheck.(int_bound 100_000)
    (fun seed ->
      match make_case seed 0 with
      | None -> true
      | Some (fed, analysis) ->
        let _, ff = Strategy.run Strategy.Bl fed analysis in
        let horizon =
          Time.us (2.0 *. Time.to_us (Time.max ff.Strategy.response (ms 1.0)))
        in
        let fault =
          random_schedule ~seed:(seed + 7)
            ~n_db:(List.length (Federation.databases fed))
            ~horizon
        in
        let bytes () =
          let a, m = run_with fault Strategy.Bl fed analysis in
          Msdq_obs.Json.to_string (Msdq_exp.Run_report.run_to_json a m)
        in
        String.equal (bytes ()) (bytes ()))

let suite =
  [
    Alcotest.test_case "schedule validation" `Quick test_validate;
    Alcotest.test_case "validation diagnostics" `Quick test_validate_messages;
    Alcotest.test_case "crash windows" `Quick test_windows;
    Alcotest.test_case "drop draw" `Quick test_drop_draw;
    Alcotest.test_case "drop-only schedule" `Quick test_drop_only_schedule;
    QCheck_alcotest.to_alcotest prop_drop_draw_permutation;
    Alcotest.test_case "link loss: CA retries" `Quick test_link_loss_ca;
    Alcotest.test_case "latency inflation" `Quick test_latency_inflation;
    Alcotest.test_case "crash demotes checks" `Quick test_crash_demotes;
    Alcotest.test_case "empty schedule is identity" `Quick test_none_is_identity;
    QCheck_alcotest.to_alcotest prop_chaos_soundness;
    QCheck_alcotest.to_alcotest prop_gray_soundness;
    QCheck_alcotest.to_alcotest prop_chaos_deterministic;
  ]
