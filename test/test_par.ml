(* The domain pool: placement, chunk stealing, exception propagation and
   shutdown semantics. Everything runs at several worker counts — on any
   host, a pool larger than the core count is legal and just timeshares. *)

open Msdq_workload
module Pool = Msdq_par.Pool
module Par = Msdq_par.Par

let with_pool = Pool.with_pool

let test_map_matches_sequential () =
  let arr = Array.init 103 (fun i -> i) in
  let f i x = (i * 31) + x in
  let want = Array.mapi f arr in
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun pool ->
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d" jobs)
            want
            (Pool.map_array pool ~f arr)))
    [ 1; 2; 3; 8 ]

let test_empty_input () =
  with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||]
        (Pool.map_array pool ~f:(fun _ x -> x) [||]))

let test_more_tasks_than_workers () =
  (* 1000 tasks on 2 workers: every chunk must be claimed exactly once. *)
  with_pool ~jobs:2 (fun pool ->
      let hits = Array.make 1000 0 in
      let out =
        Pool.map_array pool
          ~f:(fun i () ->
            hits.(i) <- hits.(i) + 1;
            i)
          (Array.make 1000 ())
      in
      Alcotest.(check (array int)) "identity" (Array.init 1000 Fun.id) out;
      Alcotest.(check bool) "each index computed exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

let test_more_workers_than_tasks () =
  with_pool ~jobs:8 (fun pool ->
      Alcotest.(check (array int)) "two tasks" [| 0; 10 |]
        (Pool.map_array pool ~f:(fun i x -> i * x) [| 7; 10 |]))

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun pool ->
          (match
             Pool.map_array pool
               ~f:(fun i x -> if i = 37 then raise (Boom i) else x)
               (Array.init 100 Fun.id)
           with
          | _ -> Alcotest.failf "jobs=%d: exception swallowed" jobs
          | exception Boom 37 -> ());
          (* the pool survives a failed batch *)
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d usable after failure" jobs)
            [| 0; 2; 4 |]
            (Pool.map_array pool ~f:(fun _ x -> 2 * x) [| 0; 1; 2 |])))
    [ 1; 4 ]

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 () in
  ignore (Pool.map_array pool ~f:(fun _ x -> x + 1) (Array.make 10 0));
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* and a shut pool refuses new batches instead of hanging *)
  match Pool.map_array pool ~f:(fun _ x -> x) [| 1 |] with
  | _ -> Alcotest.fail "map_array on a shut pool succeeded"
  | exception Invalid_argument _ -> ()

let test_create_rejects_bad_jobs () =
  match Pool.create ~jobs:0 () with
  | _ -> Alcotest.fail "jobs=0 accepted"
  | exception Invalid_argument _ -> ()

let test_with_pool_cleans_up_on_raise () =
  match with_pool ~jobs:2 (fun _ -> raise (Boom 1)) with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Boom 1 -> ()

let test_nested_map () =
  (* A task that maps on the same pool must not deadlock: the inner batch's
     caller always participates in its own chunks. *)
  with_pool ~jobs:2 (fun pool ->
      let out =
        Pool.map_array pool
          ~f:(fun _ x ->
            Array.fold_left ( + ) 0
              (Pool.map_array pool ~f:(fun _ y -> y * x) [| 1; 2; 3 |]))
          [| 1; 10 |]
      in
      Alcotest.(check (array int)) "nested" [| 6; 60 |] out)

let test_split_ix_matches_split () =
  let a = Rng.create ~seed:99 in
  let children = List.init 5 (fun i -> Rng.split_ix a ~i) in
  let b = Rng.create ~seed:99 in
  List.iteri
    (fun i child ->
      let via_split = Rng.split b in
      Alcotest.(check int)
        (Printf.sprintf "child %d first draw" i)
        (Rng.int via_split ~bound:1000000)
        (Rng.int child ~bound:1000000))
    children;
  (* split_ix does not advance the parent *)
  let c = Rng.create ~seed:99 and d = Rng.create ~seed:99 in
  ignore (Rng.split_ix c ~i:3);
  Alcotest.(check int) "parent unadvanced" (Rng.int d ~bound:1000)
    (Rng.int c ~bound:1000);
  match Rng.split_ix a ~i:(-1) with
  | _ -> Alcotest.fail "negative index accepted"
  | exception Invalid_argument _ -> ()

let test_map_seeded_jobs_invariant () =
  let draw rng _i () = Rng.int rng ~bound:1_000_000 in
  let run jobs =
    with_pool ~jobs (fun pool ->
        Par.map_seeded pool ~rng:(Rng.create ~seed:5) ~f:draw (Array.make 64 ()))
  in
  let seq = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d identical" jobs)
        seq (run jobs))
    [ 2; 4; 7 ];
  with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (array int)) "tabulate agrees" seq
        (Par.tabulate_seeded pool ~rng:(Rng.create ~seed:5) ~n:64
           ~f:(fun rng i -> draw rng i ())))

let suite =
  [
    Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
    Alcotest.test_case "empty input" `Quick test_empty_input;
    Alcotest.test_case "more tasks than workers" `Quick test_more_tasks_than_workers;
    Alcotest.test_case "more workers than tasks" `Quick test_more_workers_than_tasks;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "create rejects jobs < 1" `Quick test_create_rejects_bad_jobs;
    Alcotest.test_case "with_pool cleans up on raise" `Quick
      test_with_pool_cleans_up_on_raise;
    Alcotest.test_case "nested map does not deadlock" `Quick test_nested_map;
    Alcotest.test_case "split_ix matches split" `Quick test_split_ix_matches_split;
    Alcotest.test_case "map_seeded jobs-invariant" `Quick
      test_map_seeded_jobs_invariant;
  ]
