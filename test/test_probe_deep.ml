open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec

let setup () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  (ex, fed, analysis)

(* PL's probe inspects all root objects without comparisons: on DB1 it finds
   the same blocking points local evaluation finds, for every student. *)
let test_probe_finds_blocks () =
  let _, fed, analysis = setup () in
  let p = Probe.run fed analysis ~db:"DB1" in
  Alcotest.(check int) "examined all students" 3 p.Probe.examined;
  (* address (x3 students), speciality (x3 advisors), department (null at
     t2 for Mary) = 7 blocking points *)
  Alcotest.(check int) "seven blocking points" 7 (List.length p.Probe.items);
  Alcotest.(check int) "no comparisons during probe" 0
    p.Probe.work.Meter.comparisons;
  Alcotest.(check bool) "accesses were counted" true
    (p.Probe.work.Meter.accesses > 0)

(* Probe's items are a superset (as item-atom pairs) of the unsolved entries
   of the local rows: every verdict BL needs exists under PL too. *)
let test_probe_superset_of_eval () =
  let _, fed, analysis = setup () in
  let key (u : Local_result.unsolved) =
    (Oid.Loid.to_int (Dbobject.loid u.Local_result.item), u.Local_result.atom)
  in
  List.iter
    (fun db ->
      let probe_keys = List.map key (Probe.run fed analysis ~db).Probe.items in
      let eval_keys =
        List.concat_map
          (fun (row : Local_result.row) ->
            List.map key row.Local_result.unsolved)
          (Local_eval.run fed analysis ~db).Local_result.rows
      in
      List.iter
        (fun k ->
          if not (List.mem k probe_keys) then
            Alcotest.fail
              (Printf.sprintf "%s: eval found a block the probe missed" db))
        eval_keys)
    [ "DB1"; "DB2" ]

(* Deep certification resolves a chain no single check round can: DB1 knows
   the student, DB2 knows the advisor reference, DB3 knows the department
   name — checking DB2's teacher from DB1 hits another missing datum. *)
let chain_fed () =
  let prim_int name = { Schema.aname = name; atype = Schema.Prim Schema.P_int } in
  let prim_str name = { Schema.aname = name; atype = Schema.Prim Schema.P_string } in
  let s1 =
    Schema.create
      [
        { Schema.cname = "T"; attrs = [ prim_int "tid" ] };
        {
          Schema.cname = "S";
          attrs =
            [
              prim_int "sid";
              { Schema.aname = "adv"; atype = Schema.Complex "T" };
            ];
        };
      ]
  in
  let s2 =
    Schema.create
      [
        { Schema.cname = "D"; attrs = [ prim_int "did" ] };
        {
          Schema.cname = "T";
          attrs =
            [
              prim_int "tid";
              { Schema.aname = "dept"; atype = Schema.Complex "D" };
            ];
        };
      ]
  in
  let s3 =
    Schema.create
      [ { Schema.cname = "D"; attrs = [ prim_int "did"; prim_str "name" ] } ]
  in
  let db1 = Database.create ~name:"db1" ~schema:s1 in
  let db2 = Database.create ~name:"db2" ~schema:s2 in
  let db3 = Database.create ~name:"db3" ~schema:s3 in
  let t1 = Database.add db1 ~cls:"T" [ Value.Int 7 ] in
  ignore (Database.add db1 ~cls:"S" [ Value.Int 1; Value.Ref (Dbobject.loid t1) ]);
  let d2 = Database.add db2 ~cls:"D" [ Value.Int 9 ] in
  ignore (Database.add db2 ~cls:"T" [ Value.Int 7; Value.Ref (Dbobject.loid d2) ]);
  ignore (Database.add db3 ~cls:"D" [ Value.Int 9; Value.Str "CS" ]);
  Federation.create
    ~databases:[ ("db1", db1); ("db2", db2); ("db3", db3) ]
    ~mapping:
      [
        ("D", [ ("db2", "D"); ("db3", "D") ]);
        ("T", [ ("db1", "T"); ("db2", "T") ]);
        ("S", [ ("db1", "S") ]);
      ]
    ~keys:[ ("D", "did"); ("T", "tid"); ("S", "sid") ]

let test_deep_resolves_chain () =
  let fed = chain_fed () in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis =
    Analysis.analyze schema
      (Parser.parse "select X.sid from S X where X.adv.dept.name = \"CS\"")
  in
  (* One round: DB1's check on db2's teacher walks dept -> D(9) whose name
     is missing in db2 -> Unknown -> maybe. *)
  let bl, _ = Strategy.run Strategy.Bl fed analysis in
  Alcotest.(check int) "BL leaves a maybe" 1 (List.length (Answer.maybe bl));
  (* CA chains db1 -> db2 -> db3 and decides. *)
  let ca, _ = Strategy.run Strategy.Ca fed analysis in
  Alcotest.(check int) "CA certain" 1 (List.length (Answer.certain ca));
  (* Deep certification closes the gap. *)
  let options = { Strategy.default_options with Strategy.deep_certify = true } in
  let deep, metrics = Strategy.run ~options Strategy.Bl fed analysis in
  Alcotest.(check int) "deep BL certain" 1 (List.length (Answer.certain deep));
  Alcotest.(check bool) "deep matches CA" true (Answer.same_statuses ca deep);
  (* The deep pass shows up in the cost breakdown. *)
  Alcotest.(check bool) "deep task charged" true
    (List.exists
       (fun (label, _, _) -> label = "deep-certify")
       metrics.Strategy.breakdown)

(* Deep.resolve directly: refreshes projections and reports counters. *)
let test_deep_counters () =
  let fed = chain_fed () in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis =
    Analysis.analyze schema
      (Parser.parse "select X.sid from S X where X.adv.dept.name = \"EE\"")
  in
  let bl, _ = Strategy.run Strategy.Bl fed analysis in
  let out = Deep.resolve fed analysis bl in
  Alcotest.(check int) "one residual" 1 out.Deep.residual;
  Alcotest.(check int) "resolved" 1 out.Deep.resolved;
  Alcotest.(check int) "eliminated (name is CS, not EE)" 1 out.Deep.eliminated;
  Alcotest.(check int) "empty answer" 0 (Answer.size out.Deep.answer)

(* Deep on an answer without maybes is a no-op. *)
let test_deep_noop () =
  let _, fed, _ = setup () in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis =
    Analysis.analyze schema
      (Parser.parse "select X.name from Student X where X.name = \"John\"")
  in
  let bl, _ = Strategy.run Strategy.Bl fed analysis in
  let out = Deep.resolve fed analysis bl in
  Alcotest.(check int) "no residual" 0 out.Deep.residual;
  Alcotest.(check bool) "answer unchanged" true
    (Answer.same_statuses bl out.Deep.answer)

(* The signature catalog covers every object of every database. *)
let test_sig_catalog () =
  let ex, fed, _ = setup () in
  let catalog = Sig_catalog.build fed in
  Alcotest.(check int) "covers all 20 objects" 20 (Sig_catalog.object_count catalog);
  Alcotest.(check int) "replica bytes" (20 * 32)
    (Sig_catalog.storage_bytes catalog ~s_sig:32);
  (match Sig_catalog.find catalog ~db:"DB1" (Dbobject.loid ex.Paper_example.t1) with
  | Some _ -> ()
  | None -> Alcotest.fail "t1's signature missing");
  Alcotest.(check bool) "unknown object" true
    (Sig_catalog.find catalog ~db:"DB1" (Oid.Loid.of_int 999) = None)

let suite =
  [
    Alcotest.test_case "probe finds blocks" `Quick test_probe_finds_blocks;
    Alcotest.test_case "probe superset of eval" `Quick test_probe_superset_of_eval;
    Alcotest.test_case "deep resolves 3-db chain" `Quick test_deep_resolves_chain;
    Alcotest.test_case "deep counters" `Quick test_deep_counters;
    Alcotest.test_case "deep no-op" `Quick test_deep_noop;
    Alcotest.test_case "signature catalog" `Quick test_sig_catalog;
  ]
