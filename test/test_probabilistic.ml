open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec

let setup () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  (fed, analysis)

let test_attribute_selectivity () =
  let fed, _ = setup () in
  (* Cities: Taipei, HsinChu -> half satisfy "= Taipei". *)
  Alcotest.(check (float 1e-9)) "city selectivity" 0.5
    (Probabilistic.attribute_selectivity fed ~gcls:"Address" ~attr:"city"
       ~op:Predicate.Eq ~operand:(Value.Str "Taipei"));
  (* Specialities: database (Kelly), network (Jeffery): null and missing
     values don't count. *)
  Alcotest.(check (float 1e-9)) "speciality selectivity" 0.5
    (Probabilistic.attribute_selectivity fed ~gcls:"Teacher" ~attr:"speciality"
       ~op:Predicate.Eq ~operand:(Value.Str "database"));
  (* Department names across DB1 (CS, EE) and DB3 (EE, CS, PH): 2/5 are CS. *)
  Alcotest.(check (float 1e-9)) "department selectivity" 0.4
    (Probabilistic.attribute_selectivity fed ~gcls:"Department" ~attr:"name"
       ~op:Predicate.Eq ~operand:(Value.Str "CS"));
  (* No observed value at all: uninformative prior. *)
  let empty_schema =
    Schema.create
      [
        {
          Schema.cname = "C";
          attrs =
            [
              { Schema.aname = "key"; atype = Schema.Prim Schema.P_int };
              { Schema.aname = "x"; atype = Schema.Prim Schema.P_int };
            ];
        };
      ]
  in
  let db = Database.create ~name:"a" ~schema:empty_schema in
  ignore (Database.add db ~cls:"C" [ Value.Int 0; Value.Null ]);
  let fed2 =
    Federation.create ~databases:[ ("a", db) ]
      ~mapping:[ ("C", [ ("a", "C") ]) ]
      ~keys:[ ("C", "key") ]
  in
  Alcotest.(check (float 1e-9)) "prior" 0.5
    (Probabilistic.attribute_selectivity fed2 ~gcls:"C" ~attr:"x"
       ~op:Predicate.Eq ~operand:(Value.Int 3))

(* Tony on Q1: city unknown (p 1/2), speciality unknown (p 1/2), department
   definitely CS (p 1) -> 0.25. *)
let test_q1_grading () =
  let fed, analysis = setup () in
  let answer, _ = Strategy.run Strategy.Bl fed analysis in
  let graded = Probabilistic.annotate fed analysis answer in
  Alcotest.(check int) "one certain" 1 (List.length graded.Probabilistic.certain);
  (match graded.Probabilistic.maybe with
  | [ g ] ->
    Alcotest.(check (float 1e-9)) "Tony's probability" 0.25
      g.Probabilistic.probability
  | l -> Alcotest.fail (Printf.sprintf "%d graded maybes" (List.length l)));
  Alcotest.(check (float 1e-9)) "expected size" 1.25
    (Probabilistic.expected_size graded)

(* Certain atoms contribute exactly 1; a certain row stays out of the
   grading. *)
let test_certain_untouched () =
  let fed, _ = setup () in
  let analysis =
    let schema = Global_schema.schema (Federation.global_schema fed) in
    Analysis.analyze schema
      (Parser.parse "select X.name from Student X where X.name = \"John\"")
  in
  let answer, _ = Strategy.run Strategy.Bl fed analysis in
  let graded = Probabilistic.annotate fed analysis answer in
  Alcotest.(check int) "john certain" 1 (List.length graded.Probabilistic.certain);
  Alcotest.(check int) "no maybes" 0 (List.length graded.Probabilistic.maybe)

(* Disjunction combines as 1 - prod(1 - p). *)
let test_disjunctive_probability () =
  let fed, _ = setup () in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis =
    Analysis.analyze schema
      (Parser.parse
         "select X.name from Student X where X.address.city = \"Taipei\" or \
          X.advisor.speciality = \"database\"")
  in
  let answer, _ = Strategy.run Strategy.Bl fed analysis in
  let graded = Probabilistic.annotate fed analysis answer in
  (* Tony: city unknown (1/2), speciality unknown (1/2): 1 - 1/4 = 0.75.
     Mary: city unknown (1/2), speciality of Abel unknown (1/2): 0.75. *)
  List.iter
    (fun g ->
      Alcotest.(check (float 1e-9)) "or-probability" 0.75
        g.Probabilistic.probability)
    graded.Probabilistic.maybe;
  Alcotest.(check bool) "has graded maybes" true
    (graded.Probabilistic.maybe <> [])

(* Grading sorts by decreasing probability. *)
let test_sorting_and_pp () =
  let fed, analysis = setup () in
  let answer, _ = Strategy.run Strategy.Lo fed analysis in
  let graded = Probabilistic.annotate fed analysis answer in
  let probs = List.map (fun g -> g.Probabilistic.probability) graded.Probabilistic.maybe in
  Alcotest.(check bool) "sorted descending" true
    (probs = List.sort (fun a b -> Float.compare b a) probs);
  let text = Format.asprintf "%a" Probabilistic.pp graded in
  Alcotest.(check bool) "renders" true
    (Testutil.contains ~needle:"expected result size" text)

let suite =
  [
    Alcotest.test_case "attribute selectivity" `Quick test_attribute_selectivity;
    Alcotest.test_case "Q1 grading (Tony = 0.25)" `Quick test_q1_grading;
    Alcotest.test_case "certain rows untouched" `Quick test_certain_untouched;
    Alcotest.test_case "disjunctive probability" `Quick test_disjunctive_probability;
    Alcotest.test_case "sorting and rendering" `Quick test_sorting_and_pp;
  ]
