open Msdq_odb

let test_of_string () =
  Alcotest.(check (list string)) "split" [ "advisor"; "department"; "name" ]
    (Path.of_string "advisor.department.name");
  Alcotest.(check (list string)) "single" [ "name" ] (Path.of_string "name");
  Alcotest.(check string) "round trip" "a.b.c"
    (Path.to_string (Path.of_string "a.b.c"));
  Alcotest.(check bool) "equal" true
    (Path.equal (Path.of_string "a.b") [ "a"; "b" ]);
  Alcotest.(check bool) "compare" true (Path.compare [ "a" ] [ "b" ] < 0)

let test_resolve_full () =
  let s = Fixtures.school_schema () in
  match Path.resolve s ~root:"Student" (Path.of_string "advisor.department.name") with
  | Path.Full (steps, ty) ->
    Alcotest.(check int) "three steps" 3 (List.length steps);
    Alcotest.(check (list string)) "classes along path"
      [ "Student"; "Teacher"; "Department" ]
      (List.map (fun st -> st.Path.on_class) steps);
    Alcotest.(check bool) "final type string" true
      (Schema.equal_attr_type ty (Schema.Prim Schema.P_string))
  | Path.Cut _ -> Alcotest.fail "unexpected cut"
  | Path.Invalid m -> Alcotest.fail m

let test_resolve_cut_at_root () =
  let s = Fixtures.school_schema () in
  match Path.resolve s ~root:"Student" (Path.of_string "address.city") with
  | Path.Cut { prefix; at_class; rest } ->
    Alcotest.(check int) "no prefix" 0 (List.length prefix);
    Alcotest.(check string) "cut at root class" "Student" at_class;
    Alcotest.(check (list string)) "rest keeps missing attr" [ "address"; "city" ] rest
  | Path.Full _ | Path.Invalid _ -> Alcotest.fail "expected cut"

let test_resolve_cut_at_branch () =
  let s = Fixtures.poor_schema () in
  (* poor Teacher has no department *)
  match Path.resolve s ~root:"Student" (Path.of_string "advisor.department.name") with
  | Path.Cut { prefix; at_class; rest } ->
    Alcotest.(check int) "prefix has advisor step" 1 (List.length prefix);
    Alcotest.(check string) "cut at Teacher" "Teacher" at_class;
    Alcotest.(check (list string)) "rest" [ "department"; "name" ] rest
  | Path.Full _ | Path.Invalid _ -> Alcotest.fail "expected cut"

let test_resolve_invalid () =
  let s = Fixtures.school_schema () in
  let invalid p root =
    match Path.resolve s ~root p with
    | Path.Invalid _ -> true
    | Path.Full _ | Path.Cut _ -> false
  in
  Alcotest.(check bool) "empty path" true (invalid [] "Student");
  Alcotest.(check bool) "unknown root" true (invalid [ "x" ] "Course");
  Alcotest.(check bool) "primitive mid-path" true
    (invalid (Path.of_string "name.length") "Student")

let suite =
  [
    Alcotest.test_case "string conversion" `Quick test_of_string;
    Alcotest.test_case "resolve full" `Quick test_resolve_full;
    Alcotest.test_case "resolve cut at root" `Quick test_resolve_cut_at_root;
    Alcotest.test_case "resolve cut at branch" `Quick test_resolve_cut_at_branch;
    Alcotest.test_case "resolve invalid" `Quick test_resolve_invalid;
  ]
