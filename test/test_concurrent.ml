(* Multi-query workloads sharing one simulated system (extension). *)

open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec

let setup () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analyze src = Analysis.analyze schema (Parser.parse src) in
  (fed, analyze)

let q1 = Paper_example.q1
let q2 = "select X.name from Student X where X.age > 25"

(* One query alone behaves exactly like Strategy.run. *)
let test_single_job_equals_run () =
  let fed, analyze = setup () in
  let analysis = analyze q1 in
  let solo_answer, solo = Strategy.run Strategy.Bl fed analysis in
  let out = Strategy.run_concurrent fed [ (Strategy.Bl, analysis, Time.zero) ] in
  match out.Strategy.queries with
  | [ q ] ->
    Alcotest.(check bool) "same answer" true
      (Answer.same_statuses solo_answer q.Strategy.q_answer);
    Alcotest.(check (float 1e-6)) "same latency"
      (Time.to_us solo.Strategy.response)
      (Time.to_us q.Strategy.completed);
    Alcotest.(check (float 1e-6)) "same total"
      (Time.to_us solo.Strategy.total)
      (Time.to_us out.Strategy.combined_total)
  | _ -> Alcotest.fail "one query expected"

(* Two simultaneous queries interfere: each one's latency is at least its
   solo latency, and combined work is the sum of solo works. *)
let test_interference () =
  let fed, analyze = setup () in
  let a1 = analyze q1 and a2 = analyze q2 in
  let _, solo1 = Strategy.run Strategy.Bl fed a1 in
  let _, solo2 = Strategy.run Strategy.Bl fed a2 in
  let out =
    Strategy.run_concurrent fed
      [ (Strategy.Bl, a1, Time.zero); (Strategy.Bl, a2, Time.zero) ]
  in
  (match out.Strategy.queries with
  | [ x1; x2 ] ->
    Alcotest.(check bool) "q1 at least solo latency" true
      (Time.to_us x1.Strategy.completed +. 1e-9 >= Time.to_us solo1.Strategy.response);
    Alcotest.(check bool) "q2 at least solo latency" true
      (Time.to_us x2.Strategy.completed +. 1e-9 >= Time.to_us solo2.Strategy.response);
    Alcotest.(check bool) "someone actually waited" true
      (Time.to_us x1.Strategy.completed > Time.to_us solo1.Strategy.response
      || Time.to_us x2.Strategy.completed > Time.to_us solo2.Strategy.response)
  | _ -> Alcotest.fail "two queries expected");
  Alcotest.(check (float 1e-6)) "work adds up"
    (Time.to_us solo1.Strategy.total +. Time.to_us solo2.Strategy.total)
    (Time.to_us out.Strategy.combined_total);
  Alcotest.(check bool) "makespan below serial execution" true
    (Time.to_us out.Strategy.combined_makespan
    <= Time.to_us solo1.Strategy.response +. Time.to_us solo2.Strategy.response +. 1e-6)

(* Arrival staggering: a query arriving after the first one finished sees no
   interference at all. *)
let test_staggered_arrivals () =
  let fed, analyze = setup () in
  let a1 = analyze q1 and a2 = analyze q2 in
  let _, solo1 = Strategy.run Strategy.Bl fed a1 in
  let _, solo2 = Strategy.run Strategy.Bl fed a2 in
  let late = Time.add solo1.Strategy.response (Time.us 10.0) in
  let out =
    Strategy.run_concurrent fed
      [ (Strategy.Bl, a1, Time.zero); (Strategy.Bl, a2, late) ]
  in
  match out.Strategy.queries with
  | [ x1; x2 ] ->
    Alcotest.(check (float 1e-6)) "first query undisturbed"
      (Time.to_us solo1.Strategy.response)
      (Time.to_us x1.Strategy.completed);
    Alcotest.(check (float 1e-6)) "second query undisturbed after its arrival"
      (Time.to_us solo2.Strategy.response)
      (Time.to_us x2.Strategy.completed -. Time.to_us x2.Strategy.started)
  | _ -> Alcotest.fail "two queries expected"

(* Mixed strategies in one system work and keep their answers. *)
let test_mixed_strategies () =
  let fed, analyze = setup () in
  let a1 = analyze q1 in
  let out =
    Strategy.run_concurrent fed
      [
        (Strategy.Ca, a1, Time.zero);
        (Strategy.Bl, a1, Time.zero);
        (Strategy.Pl, a1, Time.zero);
      ]
  in
  match out.Strategy.queries with
  | [ ca; bl; pl ] ->
    Alcotest.(check bool) "all agree on Q1" true
      (Answer.same_statuses ca.Strategy.q_answer bl.Strategy.q_answer
      && Answer.same_statuses bl.Strategy.q_answer pl.Strategy.q_answer)
  | _ -> Alcotest.fail "three queries expected"

(* Regression: counter isolation. Before the per-run metrics registry the
   counters lived in process-global refs, so two queries sharing the engine
   bled bytes/work/lookups into each other's reports. Each concurrent
   query's counts must now equal its solo run's counts exactly, however the
   engine interleaves the two. *)
let test_counter_independence () =
  let fed, analyze = setup () in
  let a1 = analyze q1 and a2 = analyze q2 in
  let _, solo1 = Strategy.run Strategy.Bl fed a1 in
  let _, solo2 = Strategy.run Strategy.Ca fed a2 in
  let out =
    Strategy.run_concurrent fed
      [ (Strategy.Bl, a1, Time.zero); (Strategy.Ca, a2, Time.zero) ]
  in
  match out.Strategy.queries with
  | [ x1; x2 ] ->
    Alcotest.(check int) "q1 work units" solo1.Strategy.work_units
      x1.Strategy.q_work_units;
    Alcotest.(check int) "q1 bytes shipped" solo1.Strategy.bytes_shipped
      x1.Strategy.q_bytes_shipped;
    Alcotest.(check int) "q1 goid lookups" solo1.Strategy.goid_lookups
      x1.Strategy.q_goid_lookups;
    Alcotest.(check int) "q2 work units" solo2.Strategy.work_units
      x2.Strategy.q_work_units;
    Alcotest.(check int) "q2 bytes shipped" solo2.Strategy.bytes_shipped
      x2.Strategy.q_bytes_shipped;
    Alcotest.(check int) "q2 goid lookups" solo2.Strategy.goid_lookups
      x2.Strategy.q_goid_lookups;
    (* and the registries really are distinct objects with distinct labels *)
    Alcotest.(check (option int)) "q1 registry is BL-labelled"
      (Some solo1.Strategy.bytes_shipped)
      (Some
         (List.fold_left
            (fun acc (name, labels, v) ->
              if
                name = "msdq_bytes_shipped_total"
                && List.assoc_opt "strategy" labels = Some "BL"
              then acc + v
              else acc)
            0
            (Msdq_obs.Metrics.counters x1.Strategy.q_registry)));
    Alcotest.(check int) "q2 registry has no BL series" 0
      (List.length
         (List.filter
            (fun (_, labels, _) ->
              List.assoc_opt "strategy" labels = Some "BL")
            (Msdq_obs.Metrics.counters x2.Strategy.q_registry)))
  | _ -> Alcotest.fail "two queries expected"

let suite =
  [
    Alcotest.test_case "single job equals run" `Quick test_single_job_equals_run;
    Alcotest.test_case "interference" `Quick test_interference;
    Alcotest.test_case "staggered arrivals" `Quick test_staggered_arrivals;
    Alcotest.test_case "mixed strategies" `Quick test_mixed_strategies;
    Alcotest.test_case "counter independence" `Quick test_counter_independence;
  ]
