open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec

let setup () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  (ex, fed, analysis)

let row_name (row : Local_result.row) =
  match row.Local_result.values.(0) with
  | Some (Value.Str s) -> s
  | _ -> "?"

(* R1 (Figure 7a): DB1 returns John, Tony, Mary as maybe results. *)
let test_db1_rows () =
  let _, fed, analysis = setup () in
  let r = Local_eval.run fed analysis ~db:"DB1" in
  Alcotest.(check int) "examined all students" 3 r.Local_result.examined;
  Alcotest.(check int) "none eliminated locally" 0 r.Local_result.eliminated;
  Alcotest.(check (list string)) "rows" [ "John"; "Tony"; "Mary" ]
    (List.map row_name r.Local_result.rows);
  Alcotest.(check bool) "all maybe" true
    (List.for_all
       (fun row -> not (Local_result.is_solved row))
       r.Local_result.rows)

(* John@DB1: unsolved on address (root level) and speciality (item t1);
   department predicate locally true. *)
let test_john_unsolved_detail () =
  let ex, fed, analysis = setup () in
  let r = Local_eval.run fed analysis ~db:"DB1" in
  match r.Local_result.rows with
  | john :: _ ->
    Alcotest.(check int) "two unsolved" 2 (List.length john.Local_result.unsolved);
    (match john.Local_result.unsolved with
    | [ u_addr; u_spec ] ->
      (* address: blocked at the root object itself *)
      Alcotest.(check bool) "address blocks at root" true
        (Oid.Loid.equal
           (Dbobject.loid u_addr.Local_result.item)
           (Dbobject.loid ex.Paper_example.s1));
      Alcotest.(check bool) "missing attribute" true
        (u_addr.Local_result.cause = Predicate.Missing_attribute);
      (* speciality: blocked at branch item t1 (Jeffery) *)
      Alcotest.(check bool) "speciality blocks at t1" true
        (Oid.Loid.equal
           (Dbobject.loid u_spec.Local_result.item)
           (Dbobject.loid ex.Paper_example.t1));
      Alcotest.(check (list string)) "suffix" [ "speciality" ]
        u_spec.Local_result.rest
    | _ -> Alcotest.fail "expected address and speciality blocks");
    (* department atom (index 2) locally true for John *)
    Alcotest.(check bool) "department true" true
      (Truth.equal john.Local_result.truths.(2) Truth.True)
  | [] -> Alcotest.fail "no rows"

(* Mary@DB1 additionally has the department predicate unsolved through the
   null department of t2 (paper: "an unsolved predicate on
   advisor.department for s3"). *)
let test_mary_department_null () =
  let ex, fed, analysis = setup () in
  let r = Local_eval.run fed analysis ~db:"DB1" in
  match List.rev r.Local_result.rows with
  | mary :: _ ->
    Alcotest.(check int) "three unsolved" 3 (List.length mary.Local_result.unsolved);
    let dept =
      List.find_opt
        (fun u -> u.Local_result.atom = 2)
        mary.Local_result.unsolved
    in
    (match dept with
    | Some u ->
      Alcotest.(check bool) "blocked at t2" true
        (Oid.Loid.equal
           (Dbobject.loid u.Local_result.item)
           (Dbobject.loid ex.Paper_example.t2));
      Alcotest.(check bool) "null cause" true
        (u.Local_result.cause = Predicate.Null_value);
      Alcotest.(check (list string)) "rest keeps department" [ "department"; "name" ]
        u.Local_result.rest
    | None -> Alcotest.fail "department should be unsolved for Mary")
  | [] -> Alcotest.fail "no rows"

(* R2 (Figure 7b): DB2 returns only Hedy; John and Fanny fail local
   predicates definitively. *)
let test_db2_rows () =
  let ex, fed, analysis = setup () in
  let r = Local_eval.run fed analysis ~db:"DB2" in
  Alcotest.(check int) "examined" 3 r.Local_result.examined;
  Alcotest.(check int) "two eliminated" 2 r.Local_result.eliminated;
  match r.Local_result.rows with
  | [ hedy ] ->
    Alcotest.(check string) "hedy" "Hedy" (row_name hedy);
    Alcotest.(check int) "one unsolved (department)" 1
      (List.length hedy.Local_result.unsolved);
    (match hedy.Local_result.unsolved with
    | [ u ] ->
      Alcotest.(check int) "department atom" 2 u.Local_result.atom;
      Alcotest.(check bool) "item is t1' (Kelly)" true
        (Oid.Loid.equal
           (Dbobject.loid u.Local_result.item)
           (Dbobject.loid ex.Paper_example.t1'))
    | _ -> Alcotest.fail "one unsolved expected");
    (* city and speciality atoms definitively true *)
    Alcotest.(check bool) "city true" true
      (Truth.equal hedy.Local_result.truths.(0) Truth.True);
    Alcotest.(check bool) "speciality true" true
      (Truth.equal hedy.Local_result.truths.(1) Truth.True)
  | rows ->
    Alcotest.fail (Printf.sprintf "expected exactly Hedy, got %d rows" (List.length rows))

let test_counters () =
  let _, fed, analysis = setup () in
  let r = Local_eval.run fed analysis ~db:"DB2" in
  Alcotest.(check bool) "comparisons counted" true
    (r.Local_result.work.Meter.comparisons > 0);
  Alcotest.(check bool) "accesses counted" true
    (r.Local_result.work.Meter.accesses > 0)

let test_unknown_db_rejected () =
  let _, fed, analysis = setup () in
  Alcotest.(check bool) "DB3 hosts no students" true
    (try
       ignore (Local_eval.run fed analysis ~db:"DB3");
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "R1 rows (fig 7a)" `Quick test_db1_rows;
    Alcotest.test_case "John's unsolved detail" `Quick test_john_unsolved_detail;
    Alcotest.test_case "Mary's null department" `Quick test_mary_department_null;
    Alcotest.test_case "R2 rows (fig 7b)" `Quick test_db2_rows;
    Alcotest.test_case "work counters" `Quick test_counters;
    Alcotest.test_case "non-hosting db rejected" `Quick test_unknown_db_rejected;
  ]
