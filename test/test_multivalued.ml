(* Multi-valued attribute integration (extension; the paper's Section 5
   names it as open work): when isomeric objects carry different values for
   the same attribute, integration yields a value set with existential
   predicate semantics. CA over the multi-valued view is the reference;
   localized strategies under the mode are certain-sound (their certain
   results are certain under CA — existential truth is monotone in adding
   values) but local filtering may eliminate entities whose satisfaction
   needs cross-copy value combinations. *)

open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload

(* Two hospitals disagree on a patient's recorded blood type. *)
let divergent_fed () =
  let schema name =
    ignore name;
    Schema.create
      [
        {
          Schema.cname = "Patient";
          attrs =
            [
              { Schema.aname = "ssn"; atype = Schema.Prim Schema.P_int };
              { Schema.aname = "blood"; atype = Schema.Prim Schema.P_string };
            ];
        };
      ]
  in
  let a = Database.create ~name:"a" ~schema:(schema "a") in
  let b = Database.create ~name:"b" ~schema:(schema "b") in
  ignore (Database.add a ~cls:"Patient" [ Value.Int 1; Value.Str "A+" ]);
  ignore (Database.add b ~cls:"Patient" [ Value.Int 1; Value.Str "0-" ]);
  ignore (Database.add a ~cls:"Patient" [ Value.Int 2; Value.Str "B+" ]);
  Federation.create
    ~databases:[ ("a", a); ("b", b) ]
    ~mapping:[ ("Patient", [ ("a", "Patient"); ("b", "Patient") ]) ]
    ~keys:[ ("Patient", "ssn") ]

let analyze fed src =
  Analysis.analyze (Global_schema.schema (Federation.global_schema fed)) (Parser.parse src)

let test_materialize_set () =
  let fed = divergent_fed () in
  (* Default mode: a conflict, first value wins. *)
  let plain = Materialize.build fed in
  Alcotest.(check int) "conflict counted" 1 (Materialize.stats plain).Materialize.conflicts;
  (* Multi-valued mode: a set. *)
  let mv = Materialize.build ~multi_valued:true fed in
  Alcotest.(check int) "no conflicts" 0 (Materialize.stats mv).Materialize.conflicts;
  match Materialize.extent mv "Patient" with
  | p1 :: _ -> (
    match Materialize.field mv p1 "blood" with
    | Some (Materialize.Gset [ Value.Str "A+"; Value.Str "0-" ]) -> ()
    | Some gv ->
      Alcotest.fail
        (Format.asprintf "expected a set, got %a" Materialize.pp_gvalue gv)
    | None -> Alcotest.fail "no blood field")
  | [] -> Alcotest.fail "no patients"

(* Existential semantics: the entity matches both of its recorded values. *)
let test_exists_semantics () =
  let fed = divergent_fed () in
  let options = { Strategy.default_options with Strategy.multi_valued = true } in
  let run src =
    let answer, _ = Strategy.run ~options Strategy.Ca fed (analyze fed src) in
    answer
  in
  let a_plus = run "select X.ssn from Patient X where X.blood = \"A+\"" in
  Alcotest.(check int) "A+ matches patient 1" 1 (List.length (Answer.certain a_plus));
  let zero_minus = run "select X.ssn from Patient X where X.blood = \"0-\"" in
  Alcotest.(check int) "0- also matches patient 1" 1
    (List.length (Answer.certain zero_minus));
  let b_plus = run "select X.ssn from Patient X where X.blood = \"B+\"" in
  Alcotest.(check int) "B+ matches only patient 2" 1
    (List.length (Answer.certain b_plus));
  (* Without the mode, the first value (A+) wins and 0- matches nothing. *)
  let plain, _ =
    Strategy.run Strategy.Ca fed
      (analyze fed "select X.ssn from Patient X where X.blood = \"0-\"")
  in
  Alcotest.(check int) "single-valued: 0- matches nothing" 0
    (List.length (Answer.certain plain))

(* The localized certifier under the mode: a True from any database beats a
   False from another. *)
let test_localized_any_of () =
  let fed = divergent_fed () in
  let analysis = analyze fed "select X.ssn from Patient X where X.blood = \"0-\"" in
  let options = { Strategy.default_options with Strategy.multi_valued = true } in
  let ca, m_ca = Strategy.run ~options Strategy.Ca fed analysis in
  let bl, m_bl = Strategy.run ~options Strategy.Bl fed analysis in
  Alcotest.(check int) "no conflicts under the mode" 0
    (m_ca.Strategy.conflicts + m_bl.Strategy.conflicts);
  (* Certain-soundness: BL's certain results are certain under CA. *)
  Alcotest.(check bool) "certain(BL) within certain(CA)" true
    (Oid.Goid.Set.subset (Answer.goids bl Answer.Certain) (Answer.goids ca Answer.Certain))

(* Property: on federations with divergent copies, multi-valued CA counts no
   conflicts, BL/PL agree, and certain(BL) is within certain(CA). *)
let prop_divergent =
  QCheck.Test.make ~name:"multi-valued mode on divergent federations" ~count:30
    QCheck.(int_bound 5_000)
    (fun seed ->
      let cfg =
        { Synth.default with Synth.seed; p_divergent = 0.3; p_copy = 0.6 }
      in
      let fed = Synth.generate cfg in
      let rng = Rng.create ~seed in
      let query = Synth.random_query rng cfg ~disjunctive:false in
      let schema = Global_schema.schema (Federation.global_schema fed) in
      match Analysis.analyze schema query with
      | exception Analysis.Error _ -> true
      | analysis ->
        let options =
          { Strategy.default_options with Strategy.multi_valued = true }
        in
        let ca, m_ca = Strategy.run ~options Strategy.Ca fed analysis in
        let bl, _ = Strategy.run ~options Strategy.Bl fed analysis in
        let pl, _ = Strategy.run ~options Strategy.Pl fed analysis in
        m_ca.Strategy.conflicts = 0
        && Answer.same_statuses bl pl
        && Oid.Goid.Set.subset
             (Answer.goids bl Answer.Certain)
             (Answer.goids ca Answer.Certain))

(* Sanity: with p_divergent = 0 the mode changes nothing. *)
let prop_consistent_unchanged =
  QCheck.Test.make ~name:"multi-valued mode is identity on consistent data"
    ~count:20
    QCheck.(int_bound 5_000)
    (fun seed ->
      let cfg = { Synth.default with Synth.seed } in
      let fed = Synth.generate cfg in
      let rng = Rng.create ~seed in
      let query = Synth.random_query rng cfg ~disjunctive:false in
      let schema = Global_schema.schema (Federation.global_schema fed) in
      match Analysis.analyze schema query with
      | exception Analysis.Error _ -> true
      | analysis ->
        let options =
          { Strategy.default_options with Strategy.multi_valued = true }
        in
        List.for_all
          (fun s ->
            let plain, _ = Strategy.run s fed analysis in
            let mv, _ = Strategy.run ~options s fed analysis in
            Answer.same_statuses plain mv)
          [ Strategy.Ca; Strategy.Bl ])

let suite =
  [
    Alcotest.test_case "materialization builds sets" `Quick test_materialize_set;
    Alcotest.test_case "existential semantics" `Quick test_exists_semantics;
    Alcotest.test_case "localized any-of certification" `Quick test_localized_any_of;
    QCheck_alcotest.to_alcotest prop_divergent;
    QCheck_alcotest.to_alcotest prop_consistent_unchanged;
  ]
