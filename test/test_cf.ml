(* CF — semijoin-filtered centralized (extension): CA's answers with
   localized pre-filtering of what gets shipped. *)

open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload

let paper_case () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  (fed, Analysis.analyze schema (Parser.parse Paper_example.q1))

let test_q1 () =
  let fed, analysis = paper_case () in
  let ca, m_ca = Strategy.run Strategy.Ca fed analysis in
  let cf, m_cf = Strategy.run Strategy.Cf fed analysis in
  Alcotest.(check bool) "same answer as CA" true (Answer.same_statuses ca cf);
  Alcotest.(check bool) "ships fewer bytes than CA" true
    (m_cf.Strategy.bytes_shipped < m_ca.Strategy.bytes_shipped);
  Alcotest.(check bool) "more messages (extra round trips)" true
    (m_cf.Strategy.messages > m_ca.Strategy.messages);
  Alcotest.(check int) "no checks" 0 m_cf.Strategy.check_requests;
  Alcotest.(check bool) "response <= total" true
    (Time.compare m_cf.Strategy.response m_cf.Strategy.total <= 0)

(* CF's round-1 goid exchange shows in the breakdown. *)
let test_breakdown () =
  let fed, analysis = paper_case () in
  let _, m = Strategy.run Strategy.Cf fed analysis in
  List.iter
    (fun label ->
      Alcotest.(check bool) ("has " ^ label) true
        (List.exists (fun (l, _, _) -> String.equal l label) m.Strategy.breakdown))
    [ "local-filter"; "ship-goids"; "intersect"; "ship-candidates";
      "read-candidates"; "integrate"; "global-eval" ]

(* Property: CF always equals CA on consistent federations. *)
let prop_cf_equals_ca =
  QCheck.Test.make ~name:"CF equals CA on random federations" ~count:30
    QCheck.(int_bound 5_000)
    (fun seed ->
      let cfg = { Synth.default with Synth.seed } in
      let fed = Synth.generate cfg in
      let rng = Rng.create ~seed in
      let query = Synth.random_query rng cfg ~disjunctive:(seed mod 2 = 0) in
      let schema = Global_schema.schema (Federation.global_schema fed) in
      match Analysis.analyze schema query with
      | exception Analysis.Error _ -> true
      | analysis ->
        let ca, _ = Strategy.run Strategy.Ca fed analysis in
        let cf, _ = Strategy.run Strategy.Cf fed analysis in
        Answer.same_statuses ca cf)

(* The trade-off: at low selectivity CF ships much less than CA; the
   parametric model shows the same. *)
let test_selectivity_tradeoff () =
  let cost = Cost.default in
  let ranges = { Params.default with Params.n_o = (1000, 2000) } in
  let run strategy sel =
    Msdq_opt.Param_sim.average
      ~overrides:{ Msdq_opt.Param_sim.root_local_selectivity = Some sel }
      ~cost ~samples:60 ~seed:9 ~ranges strategy
  in
  let ca_low = run Strategy.Ca 0.1 and cf_low = run Strategy.Cf 0.1 in
  Alcotest.(check bool) "CF beats CA at low selectivity" true
    (Time.compare cf_low.Msdq_opt.Param_sim.total ca_low.Msdq_opt.Param_sim.total < 0);
  let cf_high = run Strategy.Cf 0.9 in
  Alcotest.(check bool) "CF grows with selectivity" true
    (Time.compare cf_low.Msdq_opt.Param_sim.total cf_high.Msdq_opt.Param_sim.total < 0)

let suite =
  [
    Alcotest.test_case "Q1 answers and metrics" `Quick test_q1;
    Alcotest.test_case "cost breakdown" `Quick test_breakdown;
    QCheck_alcotest.to_alcotest prop_cf_equals_ca;
    Alcotest.test_case "selectivity trade-off" `Quick test_selectivity_tradeoff;
  ]
