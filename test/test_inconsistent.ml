(* Behavior on *inconsistent* federations — isomeric objects disagreeing on
   a single-valued attribute. The paper assumes consistency; the system
   detects the situation (conflict counters) and resolves conservatively:
   a definite False wins, so inconsistency can only eliminate, never
   fabricate a certain result. *)

open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec

let fed_with_conflict () =
  let schema () =
    Schema.create
      [
        {
          Schema.cname = "P";
          attrs =
            [
              { Schema.aname = "k"; atype = Schema.Prim Schema.P_int };
              { Schema.aname = "city"; atype = Schema.Prim Schema.P_string };
            ];
        };
      ]
  in
  let a = Database.create ~name:"a" ~schema:(schema ()) in
  let b = Database.create ~name:"b" ~schema:(schema ()) in
  ignore (Database.add a ~cls:"P" [ Value.Int 1; Value.Str "Berlin" ]);
  ignore (Database.add b ~cls:"P" [ Value.Int 1; Value.Str "Paris" ]);
  Federation.create
    ~databases:[ ("a", a); ("b", b) ]
    ~mapping:[ ("P", [ ("a", "P"); ("b", "P") ]) ]
    ~keys:[ ("P", "k") ]

let analyze fed src =
  Analysis.analyze (Global_schema.schema (Federation.global_schema fed)) (Parser.parse src)

let test_detected_by_checker () =
  let fed = fed_with_conflict () in
  let conflicts =
    Isomerism.check_consistency (Federation.global_schema fed)
      ~databases:(Federation.databases fed) (Federation.goids fed)
  in
  Alcotest.(check int) "one conflict reported" 1 (List.length conflicts)

(* A conjunctive query never lets contradicting truths meet: the violating
   copy is eliminated locally, and its absence eliminates the entity. *)
let test_conjunctive_eliminates_via_absence () =
  let fed = fed_with_conflict () in
  let analysis = analyze fed "select X.k from P X where X.city = \"Berlin\"" in
  let answer, metrics = Strategy.run Strategy.Bl fed analysis in
  Alcotest.(check int) "no conflict met" 0 metrics.Strategy.conflicts;
  Alcotest.(check int) "entity eliminated" 0 (Answer.size answer)

(* Under a disjunction both copies survive their local filters, so the
   certifier sees True (from a) and False (from b) for the city atom:
   counted as a conflict and resolved to False — conservative, the entity
   is still certain through the other disjunct. *)
let test_certifier_conflict () =
  let fed = fed_with_conflict () in
  let analysis =
    analyze fed "select X.k from P X where X.city = \"Berlin\" or X.k >= 1"
  in
  let answer, metrics = Strategy.run Strategy.Bl fed analysis in
  Alcotest.(check int) "conflict counted" 1 metrics.Strategy.conflicts;
  Alcotest.(check int) "certain through the other disjunct" 1
    (List.length (Answer.certain answer))

(* CA's materialization counts the merge conflict; first value wins there,
   which is a different (but also conservative-by-documentation) resolution
   — the conflict counter is the signal that the data needs cleaning. *)
let test_materialize_conflict_counter () =
  let fed = fed_with_conflict () in
  let view = Materialize.build fed in
  Alcotest.(check int) "merge conflict counted" 1
    (Materialize.stats view).Materialize.conflicts

(* Under the multi-valued extension the same data is legal: the entity
   carries both cities and matches either. *)
let test_multivalued_resolves () =
  let fed = fed_with_conflict () in
  let options = { Strategy.default_options with Strategy.multi_valued = true } in
  List.iter
    (fun city ->
      let analysis =
        analyze fed (Printf.sprintf "select X.k from P X where X.city = %S" city)
      in
      let answer, metrics = Strategy.run ~options Strategy.Ca fed analysis in
      Alcotest.(check int) (city ^ " matches") 1 (List.length (Answer.certain answer));
      Alcotest.(check int) "no conflicts under multi-valued" 0
        metrics.Strategy.conflicts)
    [ "Berlin"; "Paris" ]

let suite =
  [
    Alcotest.test_case "consistency checker detects" `Quick test_detected_by_checker;
    Alcotest.test_case "conjunctive eliminates via absence" `Quick
      test_conjunctive_eliminates_via_absence;
    Alcotest.test_case "certifier counts conflicts" `Quick test_certifier_conflict;
    Alcotest.test_case "materializer counts" `Quick test_materialize_conflict_counter;
    Alcotest.test_case "multi-valued mode legalizes" `Quick test_multivalued_resolves;
  ]
