(* Test runner: every test_*.ml module exposes a [suite]. *)

let () =
  Alcotest.run "msdq"
    [
      ("simkit.time", Test_time.suite);
      ("simkit.heap", Test_heap.suite);
      ("simkit.engine", Test_engine.suite);
      ("simkit.gantt", Test_gantt.suite);
      ("simkit.engine_props", Test_engine_props.suite);
      ("exec.heterogeneous", Test_heterogeneous.suite);
      ("odb.truth", Test_truth.suite);
      ("odb.value", Test_value.suite);
      ("odb.schema", Test_schema.suite);
      ("odb.database", Test_database.suite);
      ("odb.path", Test_path.suite);
      ("odb.predicate", Test_predicate.suite);
      ("odb.signature", Test_signature.suite);
      ("fed.global_schema", Test_global_schema.suite);
      ("fed.goid_table", Test_goid_table.suite);
      ("fed.materialize", Test_materialize.suite);
      ("fed.global_eval", Test_global_eval.suite);
      ("fed.loader", Test_loader.suite);
      ("query.cond", Test_cond.suite);
      ("query.parser", Test_parser.suite);
      ("query.parser_fuzz", Test_parser_fuzz.suite);
      ("query.analysis", Test_analysis.suite);
      ("query.localize", Test_localize.suite);
      ("query.answer", Test_answer.suite);
      ("exec.local_eval", Test_local_eval.suite);
      ("exec.checks", Test_checks.suite);
      ("exec.certify", Test_certify.suite);
      ("exec.strategies", Test_strategies.suite);
      ("exec.probabilistic", Test_probabilistic.suite);
      ("exec.multivalued", Test_multivalued.suite);
      ("exec.inconsistent", Test_inconsistent.suite);
      ("exec.projection_merge", Test_projection_merge.suite);
      ("exec.concurrent", Test_concurrent.suite);
      ("serve", Test_serve.suite);
      ("exec.phase_order", Test_phase_order.suite);
      ("exec.cf", Test_cf.suite);
      ("exec.wire", Test_wire.suite);
      ("exec.probe_deep", Test_probe_deep.suite);
      ("workload.rng", Test_rng.suite);
      ("par.pool", Test_par.suite);
      ("par.determinism", Test_par_determinism.suite);
      ("workload.params", Test_params.suite);
      ("workload.synth", Test_synth.suite);
      ("exec.equivalence", Test_equivalence.suite);
      ("fault", Test_fault.suite);
      ("recovery", Test_recovery.suite);
      ("exp.param_sim", Test_param_sim.suite);
      ("exp.figures", Test_figures.suite);
      ("exp.planner", Test_planner.suite);
      ("obs", Test_obs.suite);
      ("telemetry", Test_telemetry.suite);
      ("exp.run_report", Test_run_report.suite);
    ]
