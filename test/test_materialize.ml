open Msdq_odb
open Msdq_fed

let ex = lazy (Paper_example.build ())

let view () = Materialize.build (Lazy.force ex).Paper_example.federation

let gstr view gobj attr =
  match Materialize.field view gobj attr with
  | Some (Materialize.Gprim (Value.Str s)) -> Some s
  | _ -> None

let find_by_name view gcls name =
  List.find_opt (fun o -> gstr view o "name" = Some name) (Materialize.extent view gcls)

(* Figure 6: the materialized Student extent. *)
let test_students () =
  let v = view () in
  let students = Materialize.extent v "Student" in
  Alcotest.(check int) "five integrated students" 5 (List.length students);
  (* John: age 31 from DB1, sex male from DB2, address from DB2. *)
  (match find_by_name v "Student" "John" with
  | Some john ->
    (match Materialize.field v john "age" with
    | Some (Materialize.Gprim (Value.Int 31)) -> ()
    | _ -> Alcotest.fail "John's age should merge from DB1");
    (match Materialize.field v john "sex" with
    | Some (Materialize.Gprim (Value.Str "male")) -> ()
    | _ -> Alcotest.fail "John's sex should merge from DB2 (null in DB1)");
    (match Materialize.field v john "address" with
    | Some (Materialize.Gref _) -> ()
    | _ -> Alcotest.fail "John's address should be a global reference")
  | None -> Alcotest.fail "John missing");
  (* Tony exists only in DB1: address is missing federation-wide. *)
  (match find_by_name v "Student" "Tony" with
  | Some tony -> (
    match Materialize.field v tony "address" with
    | Some Materialize.Gnull -> ()
    | _ -> Alcotest.fail "Tony's address should be Gnull")
  | None -> Alcotest.fail "Tony missing");
  (* Hedy exists only in DB2: age missing. *)
  match find_by_name v "Student" "Hedy" with
  | Some hedy -> (
    match Materialize.field v hedy "age" with
    | Some Materialize.Gnull -> ()
    | _ -> Alcotest.fail "Hedy's age should be Gnull")
  | None -> Alcotest.fail "Hedy missing"

(* Figure 6: the Teacher extent merges department and speciality. *)
let test_teachers () =
  let v = view () in
  (* Jeffery: department CS from DB1, speciality network from DB2. *)
  (match find_by_name v "Teacher" "Jeffery" with
  | Some j -> (
    Alcotest.(check (option string)) "speciality merged" (Some "network")
      (match Materialize.field v j "speciality" with
      | Some (Materialize.Gprim (Value.Str s)) -> Some s
      | _ -> None);
    match Materialize.field v j "department" with
    | Some (Materialize.Gref g) -> (
      match Materialize.find v g with
      | Some dept ->
        Alcotest.(check (option string)) "Jeffery in CS" (Some "CS")
          (gstr v dept "name")
      | None -> Alcotest.fail "department entity missing")
    | _ -> Alcotest.fail "department should be a reference")
  | None -> Alcotest.fail "Jeffery missing");
  (* Abel: department null in DB1 but EE via DB3's isomer. *)
  (match find_by_name v "Teacher" "Abel" with
  | Some abel -> (
    match Materialize.field v abel "department" with
    | Some (Materialize.Gref g) -> (
      match Materialize.find v g with
      | Some dept ->
        Alcotest.(check (option string)) "Abel in EE via DB3" (Some "EE")
          (gstr v dept "name")
      | None -> Alcotest.fail "department entity missing")
    | _ -> Alcotest.fail "Abel's department should come from DB3")
  | None -> Alcotest.fail "Abel missing");
  (* Haley: speciality missing federation-wide (singleton with null-free
     DB1 lacking the attribute). *)
  match find_by_name v "Teacher" "Haley" with
  | Some haley -> (
    match Materialize.field v haley "speciality" with
    | Some Materialize.Gnull -> ()
    | _ -> Alcotest.fail "Haley's speciality should be Gnull")
  | None -> Alcotest.fail "Haley missing"

(* Departments merge name + location across DB1/DB3. *)
let test_departments () =
  let v = view () in
  match find_by_name v "Department" "CS" with
  | Some cs ->
    Alcotest.(check (option string)) "CS location from DB3" (Some "building A")
      (gstr v cs "location")
  | None -> Alcotest.fail "CS missing"

let test_stats () =
  let v = view () in
  let s = Materialize.stats v in
  Alcotest.(check int) "entities" 14 s.Materialize.entities;
  (* 20 constituent objects feed the outerjoin: 8 in DB1 (2 departments, 3
     teachers, 3 students), 7 in DB2 (2 addresses, 2 teachers, 3 students),
     5 in DB3 (3 departments, 2 teachers). *)
  Alcotest.(check int) "source objects" 20 s.Materialize.source_objects;
  Alcotest.(check bool) "no conflicts in the paper example" true
    (s.Materialize.conflicts = 0);
  Alcotest.(check bool) "refs translated" true (s.Materialize.ref_translations > 0)

let test_partial_materialization () =
  let fed = (Lazy.force ex).Paper_example.federation in
  let v = Materialize.build ~classes:[ "Department" ] fed in
  Alcotest.(check int) "only departments" 3
    (List.length (Materialize.extent v "Department"));
  Alcotest.(check int) "students not materialized" 0
    (List.length (Materialize.extent v "Student"))

let test_consistency_check () =
  let fed = (Lazy.force ex).Paper_example.federation in
  let conflicts =
    Isomerism.check_consistency (Federation.global_schema fed)
      ~databases:(Federation.databases fed) (Federation.goids fed)
  in
  Alcotest.(check int) "paper example is consistent" 0 (List.length conflicts)

let test_inconsistent_detected () =
  (* Two databases disagreeing on a shared attribute value. *)
  let schema () =
    Schema.create
      [
        Schema.
          {
            cname = "P";
            attrs =
              [
                { aname = "key"; atype = Prim P_int };
                { aname = "city"; atype = Prim P_string };
              ];
          };
      ]
  in
  let a = Database.create ~name:"A" ~schema:(schema ()) in
  let b = Database.create ~name:"B" ~schema:(schema ()) in
  ignore (Database.add a ~cls:"P" [ Value.Int 1; Value.Str "Taipei" ]);
  ignore (Database.add b ~cls:"P" [ Value.Int 1; Value.Str "HsinChu" ]);
  let fed =
    Federation.create
      ~databases:[ ("A", a); ("B", b) ]
      ~mapping:[ ("P", [ ("A", "P"); ("B", "P") ]) ]
      ~keys:[ ("P", "key") ]
  in
  let conflicts =
    Isomerism.check_consistency (Federation.global_schema fed)
      ~databases:(Federation.databases fed) (Federation.goids fed)
  in
  Alcotest.(check int) "one conflict" 1 (List.length conflicts);
  match conflicts with
  | [ c ] ->
    Alcotest.(check string) "conflicting attr" "city" c.Isomerism.attr;
    Alcotest.(check bool) "renders" true
      (String.length (Format.asprintf "%a" Isomerism.pp_conflict c) > 0)
  | _ -> Alcotest.fail "expected exactly one conflict"

let suite =
  [
    Alcotest.test_case "students (fig 6)" `Quick test_students;
    Alcotest.test_case "teachers (fig 6)" `Quick test_teachers;
    Alcotest.test_case "departments (fig 6)" `Quick test_departments;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "partial materialization" `Quick test_partial_materialization;
    Alcotest.test_case "consistency check" `Quick test_consistency_check;
    Alcotest.test_case "inconsistency detected" `Quick test_inconsistent_detected;
  ]
