(* Cost-based strategy selection (lib/opt): hand-computed Table 1 pins for
   CA/BL/PL on tiny catalogs, selection parsing, the optimizer's argmin and
   store blending, breaker-forced degradation to CA, the qcheck property
   that AUTO's answers are byte-identical to the chosen fixed strategies,
   and the auto-sweep win condition the /7 bench schema enforces. *)

open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_serve
open Msdq_workload
module Optimizer = Msdq_opt.Optimizer
module Param_sim = Msdq_opt.Param_sim
module Store = Msdq_telemetry.Store
module Fault = Msdq_fault.Fault
module Auto_sweep = Msdq_exp.Auto_sweep

let us = Time.us
let ms = Time.ms

let strategy =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Strategy.to_string s))
    ( = )

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let setup () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analyze src = Analysis.analyze schema (Parser.parse src) in
  (fed, analyze)

(* A store whose observed latencies make [fast] the obvious winner: huge
   observation weight, so the blending beta ~ 1 and the evidence dominates
   whatever the model predicts. *)
let store_preferring fast =
  let st = Store.create () in
  List.iter
    (fun s ->
      let lat = if s = fast then 10.0 else 1_000_000.0 in
      Store.observe st
        { Store.db = "obs"; site = 0; link = 0; strategy = Strategy.to_string s }
        {
          Store.weight = 1000.0;
          check_latency_us = lat;
          drop_rate = 0.0;
          cache_hit_rate = 0.0;
          demotions = 0.0;
        })
    Optimizer.candidates;
  st

(* ---- hand-computed Table 1 pins ----

   One database, one class, ten objects, N_qa = N_pa = N_ta = 1,
   R_pps = 0.5, no missing data. Every phase is a chain, so response =
   total and both follow from Table 1 by hand (t_d = 15, t_net = 8,
   t_c = 0.5, S_LOid = 16, S_a = 32, S_GOid = 16):

   - extent projection: 10 * (16 + 1*32) = 480 bytes
     read 15*480 = 7200 us, CA's ship 8*480 = 3840 us
   - CA: integrate 0.5*(2*10 + 10*1) = 15 us,
         eval 0.5*(10*1*2) = 10 us                      -> 11065 us
   - BL: eval 0.5*(5 + 10*1*2) = 12.5 us, dispatch 0,
         ship-results 8 * 5*(16+16+32) = 2560 us,
         certify 0.5*(5*(1+1)) = 5 us                   -> 9777.5 us
   - PL: BL plus probe 0.5*(10*1*1) = 5 us              -> 9782.5 us *)

let one_db_sample : Params.sample =
  let at : Params.class_at_db =
    {
      n_o = 10;
      n_qa = 1;
      n_pa = 1;
      n_ta = 1;
      r_pps = 0.5;
      r_m = 0.0;
      r_as = 1.0;
      r_ss = 1.0;
    }
  in
  let root : Params.gclass =
    { n_p = 1; r_ps = 0.45; r_r = 1.0; r_iso = 0.0; per_db = [| at |] }
  in
  { n_db = 1; classes = [| root |] }

let test_table1_pins_one_db () =
  let run s = Param_sim.simulate ~cost:Cost.default s one_db_sample in
  let check_pin name s expected =
    let t = run s in
    Alcotest.(check (float 1e-6))
      (name ^ " response") expected
      (Time.to_us t.Param_sim.response);
    Alcotest.(check (float 1e-6))
      (name ^ " total (chain: total = response)")
      expected
      (Time.to_us t.Param_sim.total)
  in
  check_pin "CA" Strategy.Ca 11_065.0;
  check_pin "BL" Strategy.Bl 9_777.5;
  check_pin "PL" Strategy.Pl 9_782.5

(* Two databases, a root and a branch class; db 0's branch constituent
   misses its predicate attribute (R_m = 0.5), db 1 holds it. Responses
   depend on link-FIFO interleaving, but total busy time is the plain sum
   of all task durations, so it pins exactly:

   - per-db localized read: 480 + 4*0.5*(16+32) = 576 bytes -> 8640 us
   - db0 (BL): survivors 5, maybe 2.5; unsolved items
     min(2.5*0.5, 4*0.5*0.5) * 1 = 1; eval 0.5*(5+20+20) = 22.5 us,
     dispatch 0.5 us, ship-results 8*(5*64 + 2.5*0.5*48) = 3040 us
   - db1 (BL): nothing unsolved; eval 0.5*(5+20+30) = 27.5 us,
     ship-results 8*5*64 = 2560 us
   - one check round trip, n = 1 * q * 1 with q = 1-0.9 ~ 0.1 assistants:
     requests 8*n*96 = 76.8 us, check-read 15*n*256 = 384 us,
     check-eval 0.5*2n = 0.1 us, verdicts 8*n*18 = 14.4 us
   - certify 0.5*(n + 5*3 + 5*3) = 15.05 us
   BL total = 2*8640 + 22.5 + 0.5 + 3040 + 27.5 + 2560 + 475.3 + 15.05
            = 23420.85 us; PL adds two probes 0.5*(10+20) = 30 us;
   CA reads/ships full extents (672 bytes per db), integrates
   0.5*(60 + 24) = 42 us and evaluates 0.5 * 20/1.1 * (2+3) us. *)

let two_db_sample : Params.sample =
  let root_at : Params.class_at_db =
    {
      n_o = 10;
      n_qa = 1;
      n_pa = 1;
      n_ta = 1;
      r_pps = 0.5;
      r_m = 0.0;
      r_as = 1.0;
      r_ss = 1.0;
    }
  in
  let branch_missing : Params.class_at_db =
    {
      n_o = 4;
      n_qa = 1;
      n_pa = 0;
      n_ta = 0;
      r_pps = 1.0;
      r_m = 0.5;
      r_as = 1.0;
      r_ss = 1.0;
    }
  in
  let branch_full : Params.class_at_db =
    { branch_missing with n_pa = 1; r_m = 0.0 }
  in
  let root : Params.gclass =
    {
      n_p = 1;
      r_ps = 0.45;
      r_r = 1.0;
      r_iso = 0.1;
      per_db = [| root_at; root_at |];
    }
  in
  let branch : Params.gclass =
    {
      n_p = 1;
      r_ps = 0.45;
      r_r = 0.5;
      r_iso = 0.1;
      per_db = [| branch_missing; branch_full |];
    }
  in
  { n_db = 2; classes = [| root; branch |] }

let test_table1_pins_two_db () =
  let q = 1.0 -. (0.9 ** 1.0) in
  let check_total name s expected =
    let t = Param_sim.simulate ~cost:Cost.default s two_db_sample in
    Alcotest.(check (float 1e-3))
      (name ^ " total") expected
      (Time.to_us t.Param_sim.total);
    Alcotest.(check bool)
      (name ^ " response <= total")
      true
      (Time.to_us t.Param_sim.response <= Time.to_us t.Param_sim.total)
  in
  let check_legs = (q *. 96.0 *. 8.0) +. (q *. 256.0 *. 15.0) +. q +. (q *. 18.0 *. 8.0) in
  let certify = 0.5 *. (q +. 30.0) in
  let bl =
    (2.0 *. 8640.0) +. 22.5 +. 0.5 +. 3040.0 +. 27.5 +. 2560.0 +. check_legs
    +. certify
  in
  check_total "BL" Strategy.Bl bl;
  check_total "PL" Strategy.Pl (bl +. 30.0);
  let entities = 20.0 /. (1.0 +. q) in
  check_total "CA" Strategy.Ca
    ((2.0 *. 10_080.0) +. (2.0 *. 5_376.0) +. 42.0
    +. (0.5 *. entities *. 5.0))

(* ---- selection parsing (the CLI's --strategy surface) ---- *)

let test_selection_parse () =
  let ok s = Strategy.selection_of_string s in
  (match ok "auto" with
  | Ok Strategy.Auto -> ()
  | _ -> Alcotest.fail "auto should parse to Auto");
  (match ok "AUTO" with
  | Ok Strategy.Auto -> ()
  | _ -> Alcotest.fail "AUTO should parse case-insensitively");
  (match ok "bl" with
  | Ok (Strategy.Fixed Strategy.Bl) -> ()
  | _ -> Alcotest.fail "bl should parse to Fixed Bl");
  Alcotest.(check string)
    "AUTO round-trips" "AUTO"
    (Strategy.selection_to_string Strategy.Auto);
  match ok "bogus" with
  | Ok _ -> Alcotest.fail "bogus should be rejected"
  | Error msg ->
    Alcotest.(check bool)
      "error names the rejected input" true (contains msg "bogus");
    Alcotest.(check bool)
      "error lists the accepted set" true
      (contains msg "accepted" && contains msg "AUTO" && contains msg "CA")

(* ---- the optimizer ---- *)

let test_decide_argmin () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  let d = Optimizer.decide fed analysis in
  Alcotest.(check (list strategy))
    "scores in candidate order" Optimizer.candidates
    (List.map (fun s -> s.Optimizer.strategy) d.Optimizer.scores);
  Alcotest.(check bool)
    "no store: score is the prediction ratio" true
    (List.for_all
       (fun s ->
         s.Optimizer.observed = None
         && s.Optimizer.blended = s.Optimizer.pred_ratio)
       d.Optimizer.scores);
  let best =
    List.fold_left
      (fun acc s -> Float.min acc s.Optimizer.blended)
      infinity d.Optimizer.scores
  in
  let first_min =
    List.find (fun s -> s.Optimizer.blended = best) d.Optimizer.scores
  in
  Alcotest.check strategy "preferred is the first argmin"
    first_min.Optimizer.strategy d.Optimizer.preferred;
  Alcotest.(check bool)
    "no degraded sites: chosen = preferred, no switch" true
    (d.Optimizer.chosen = d.Optimizer.preferred
    && (not d.Optimizer.switched)
    && d.Optimizer.reason = None);
  Alcotest.(check bool)
    "deterministic" true
    (Optimizer.decide fed analysis = d)

let test_store_blending_flips () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  List.iter
    (fun fast ->
      let d = Optimizer.decide ~store:(store_preferring fast) fed analysis in
      Alcotest.check strategy
        ("heavy evidence flips the pick to " ^ Strategy.to_string fast)
        fast d.Optimizer.preferred;
      Alcotest.(check bool)
        "every candidate carries its observation" true
        (List.for_all
           (fun s -> s.Optimizer.observed <> None)
           d.Optimizer.scores))
    Optimizer.candidates

let test_degraded_falls_back_to_ca () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  let sites = Optimizer.check_sites fed analysis in
  Alcotest.(check bool) "q1 involves check sites" true (sites <> []);
  Alcotest.(check bool)
    "check sites are component sites" true
    (List.for_all (fun s -> s > 0) sites);
  let store = store_preferring Strategy.Pl in
  let d = Optimizer.decide ~store ~degraded:sites fed analysis in
  Alcotest.check strategy "still prefers PL" Strategy.Pl d.Optimizer.preferred;
  Alcotest.check strategy "but runs CA" Strategy.Ca d.Optimizer.chosen;
  Alcotest.(check bool) "switch recorded" true d.Optimizer.switched;
  (match d.Optimizer.reason with
  | Some r ->
    Alcotest.(check bool)
      "reason explains the fallback" true (contains r "falling back to CA")
  | None -> Alcotest.fail "switched decision must carry a reason");
  (* CA is never re-planned: it has no check legs to lose. *)
  let d2 =
    Optimizer.decide ~store:(store_preferring Strategy.Ca) ~degraded:sites fed
      analysis
  in
  Alcotest.(check bool)
    "a CA preference never switches" true
    (d2.Optimizer.chosen = Strategy.Ca && not d2.Optimizer.switched)

let serve_config ?(options = Strategy.default_options) () =
  {
    Serve.default_config with
    Serve.options;
    cache_bytes = 0;
    window = Time.zero;
  }

(* ---- overload backpressure ---- *)

let test_overload_shifts_decide () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  let store = store_preferring Strategy.Pl in
  let base = Optimizer.decide ~store fed analysis in
  Alcotest.check strategy "store evidence prefers PL" Strategy.Pl
    base.Optimizer.preferred;
  Alcotest.(check bool)
    "zero overload changes nothing" true
    (Optimizer.decide ~store ~overload:0.0 fed analysis = base);
  (* overwhelming backpressure: the model's cheapest candidate wins no
     matter what the store observed *)
  let cheapest =
    (List.fold_left
       (fun best s ->
         if s.Optimizer.pred_ratio < best.Optimizer.pred_ratio then s
         else best)
       (List.hd base.Optimizer.scores)
       base.Optimizer.scores)
      .Optimizer.strategy
  in
  let loaded = Optimizer.decide ~store ~overload:1000.0 fed analysis in
  Alcotest.check strategy "heavy overload picks the cheapest plan" cheapest
    loaded.Optimizer.preferred;
  (* monotone: the penalty grows with the prediction ratio *)
  List.iter2
    (fun (b : Optimizer.score) (l : Optimizer.score) ->
      Alcotest.(check bool) "score penalized in proportion to cost" true
        (l.Optimizer.blended >= b.Optimizer.blended))
    base.Optimizer.scores loaded.Optimizer.scores;
  let rejects o =
    match Optimizer.decide ~overload:o fed analysis with
    | (_ : Optimizer.decision) -> Alcotest.failf "overload %f accepted" o
    | exception Invalid_argument _ -> ()
  in
  rejects (-1.0);
  rejects Float.nan;
  rejects Float.infinity

let test_auto_overload_control () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  (* arrivals 1 us apart vs multi-ms service: a depth-1 queue saturates *)
  let jobs = List.init 5 (fun i -> (analysis, us (float_of_int i))) in
  let store = store_preferring Strategy.Pl in
  (* Degrade: everything admitted; over-capacity queries forced to the
     model's cheapest candidate *)
  let cfg =
    {
      (serve_config ()) with
      Serve.queue_limit = Some 1;
      shed_policy = Serve.Degrade;
    }
  in
  let a = Serve.run_auto ~store cfg fed jobs in
  Alcotest.(check int) "every query decided" 5 (List.length a.Serve.decisions);
  Alcotest.(check int) "nothing shed" 0 (List.length a.Serve.auto.Serve.shed);
  let cheapest =
    let preds =
      Msdq_opt.Planner.predict ~strategies:Optimizer.candidates fed analysis
    in
    (List.fold_left
       (fun best p ->
         if
           Time.to_us p.Msdq_opt.Planner.response
           < Time.to_us best.Msdq_opt.Planner.response
         then p
         else best)
       (List.hd preds) preds)
      .Msdq_opt.Planner.strategy
  in
  List.iteri
    (fun i d ->
      if i > 0 then
        Alcotest.check strategy "over capacity runs the cheapest plan"
          cheapest d.Serve.d_chosen)
    a.Serve.decisions;
  (* Reject_newest: over-capacity arrivals shed, producing no decision *)
  let rj =
    Serve.run_auto ~store
      {
        (serve_config ()) with
        Serve.queue_limit = Some 1;
        shed_policy = Serve.Reject_newest;
      }
      fed jobs
  in
  Alcotest.(check int) "one admitted decision" 1
    (List.length rj.Serve.decisions);
  Alcotest.(check int) "the rest shed" 4
    (List.length rj.Serve.auto.Serve.shed);
  Alcotest.(check int) "one report" 1
    (List.length rj.Serve.auto.Serve.reports)

(* ---- breaker-driven re-planning through the serve path ---- *)

let test_breaker_forces_ca () =
  let fed, analyze = setup () in
  let analysis = analyze Paper_example.q1 in
  let sites = Optimizer.check_sites fed analysis in
  (* Crash every check-target site for the whole workload: the first PL
     query's check legs all fail, the breakers open, and every query
     admitted before the recovery instant re-plans onto CA. *)
  let fault =
    {
      Fault.none with
      Fault.sites =
        List.map
          (fun site ->
            { Fault.site; outages = [ { Fault.down = Time.zero; up = ms 50.0 } ] })
          sites;
    }
  in
  let options = { Strategy.default_options with Strategy.fault } in
  let jobs = List.init 8 (fun i -> (analysis, us (float_of_int i *. 300.0))) in
  let store = store_preferring Strategy.Pl in
  let a = Serve.run_auto ~store (serve_config ~options ()) fed jobs in
  Alcotest.(check int) "one decision per query" 8 (List.length a.Serve.decisions);
  Alcotest.check strategy "first pick is the store's favourite" Strategy.Pl
    (List.hd a.Serve.decisions).Serve.d_chosen;
  Alcotest.(check bool) "breaker re-planned later queries" true (a.Serve.switches > 0);
  Alcotest.(check bool)
    "switched queries run CA with a reason" true
    (List.exists
       (fun d ->
         d.Serve.d_switched
         && d.Serve.d_chosen = Strategy.Ca
         && d.Serve.d_reason <> None)
       a.Serve.decisions);
  Alcotest.(check int)
    "switch counter matches the decisions"
    (List.length (List.filter (fun d -> d.Serve.d_switched) a.Serve.decisions))
    a.Serve.switches

(* ---- AUTO never changes an answer (qcheck) ----

   For any synthesized federation/query, any seeded fault schedule and any
   store contents: running the workload under AUTO yields answers
   byte-identical to running the same jobs with the strategies AUTO chose,
   fixed. Selection only decides which plan executes. *)

let rec make_case seed attempt =
  if attempt > 20 then None
  else
    let cfg =
      {
        Synth.default with
        Synth.seed = (seed * 37) + attempt;
        p_host = 1.0;
        p_attr_present = 0.7;
        p_null = 0.15;
        p_copy = 0.4;
      }
    in
    let fed = Synth.generate cfg in
    let rng = Rng.create ~seed:(seed + (attempt * 1013)) in
    let query = Synth.random_query rng cfg ~disjunctive:false in
    let schema = Global_schema.schema (Federation.global_schema fed) in
    match Analysis.analyze schema query with
    | analysis -> Some (fed, analysis)
    | exception Analysis.Error _ -> make_case seed (attempt + 1)

let random_schedule ~seed ~n_db ~horizon =
  let rng = Rng.create ~seed in
  let availability = 0.5 +. (0.5 *. Rng.float rng) in
  let availability = if availability >= 0.999 then 1.0 else availability in
  let sched =
    Fault.random ~rng
      ~sites:(List.init n_db (fun i -> i + 1))
      ~availability ~horizon ~drop:(0.3 *. Rng.float rng) ()
  in
  {
    sched with
    Fault.links =
      { Fault.dst = 0; drop = 0.1; inflate = 1.0; jitter = 0.0 } :: sched.Fault.links;
  }

let fingerprints out =
  List.map (fun r -> Serve.answer_fingerprint r.Serve.answer) out.Serve.reports

let prop_auto_equals_fixed =
  QCheck.Test.make
    ~name:"auto: answers byte-identical to the chosen fixed strategies"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      match make_case seed 0 with
      | None -> true
      | Some (fed, analysis) ->
        let _, ff = Strategy.run Strategy.Bl fed analysis in
        let horizon =
          us (2.0 *. Time.to_us (Time.max ff.Strategy.response (ms 1.0)))
        in
        let fault =
          if seed mod 3 = 0 then Fault.none
          else
            random_schedule ~seed:(seed + 11)
              ~n_db:(List.length (Federation.databases fed))
              ~horizon
        in
        let options = { Strategy.default_options with Strategy.fault } in
        let cfg = serve_config ~options () in
        let store =
          if seed mod 2 = 0 then None
          else
            Some
              (store_preferring
                 (List.nth Optimizer.candidates (seed mod 3)))
        in
        let jobs =
          List.init 4 (fun i -> (analysis, us (float_of_int i *. 400.0)))
        in
        let a = Serve.run_auto ?store cfg fed jobs in
        let fixed_jobs =
          List.map2
            (fun (analysis, arrival) d ->
              { Serve.strategy = d.Serve.d_chosen; analysis; arrival; deadline = None })
            jobs a.Serve.decisions
        in
        let fixed = Serve.run cfg fed fixed_jobs in
        fingerprints a.Serve.auto = fingerprints fixed)

(* ---- the auto-sweep win condition (ROADMAP item 2) ---- *)

let test_auto_sweep_win_condition () =
  let o = Auto_sweep.run ~seed:1996 () in
  Alcotest.(check (list strategy))
    "one fixed run per candidate" Optimizer.candidates
    (List.map (fun f -> f.Auto_sweep.f_strategy) o.Auto_sweep.fixed);
  Alcotest.(check bool)
    "AUTO makespan no worse than the best fixed strategy" true
    (o.Auto_sweep.auto_makespan_s
    <= Auto_sweep.min_fixed_makespan o *. (1.0 +. 1e-9));
  Alcotest.(check bool)
    "estimator ranking matches observed on >= 80% of queries" true
    (o.Auto_sweep.rank_match_rate >= 0.8);
  Alcotest.(check (float 1e-9))
    "rate is matches / distinct"
    (float_of_int o.Auto_sweep.rank_matches /. float_of_int o.Auto_sweep.distinct)
    o.Auto_sweep.rank_match_rate;
  Alcotest.(check int)
    "every query decided" o.Auto_sweep.queries
    (List.fold_left (fun acc (_, n) -> acc + n) 0 o.Auto_sweep.decisions);
  Alcotest.(check int) "fault-free mix never switches" 0 o.Auto_sweep.switches

let suite =
  [
    Alcotest.test_case "param_sim: Table 1 pins (one database)" `Quick
      test_table1_pins_one_db;
    Alcotest.test_case "param_sim: Table 1 pins (two databases, checks)" `Quick
      test_table1_pins_two_db;
    Alcotest.test_case "strategy selection parsing" `Quick test_selection_parse;
    Alcotest.test_case "decide: argmin over blended scores" `Quick
      test_decide_argmin;
    Alcotest.test_case "decide: store evidence flips the pick" `Quick
      test_store_blending_flips;
    Alcotest.test_case "decide: overload shifts toward cheap plans" `Quick
      test_overload_shifts_decide;
    Alcotest.test_case "auto: overload control composes" `Quick
      test_auto_overload_control;
    Alcotest.test_case "decide: degraded sites fall back to CA" `Quick
      test_degraded_falls_back_to_ca;
    Alcotest.test_case "serve: breaker re-plans onto CA" `Quick
      test_breaker_forces_ca;
    QCheck_alcotest.to_alcotest prop_auto_equals_fixed;
    Alcotest.test_case "auto-sweep win condition" `Quick
      test_auto_sweep_win_condition;
  ]
