open Msdq_odb

let test_no_false_negative_eq () =
  let db, _, `Teachers (kelly, _), _ = Fixtures.school_db () in
  ignore db;
  let s = Signature.of_object kelly in
  (* kelly = ("Kelly", ref, "database"); slot 0 is the name. *)
  Alcotest.(check bool) "matching value passes" true
    (Signature.may_satisfy s ~index:0 ~op:Predicate.Eq ~operand:(Value.Str "Kelly"));
  Alcotest.(check bool) "speciality slot passes" true
    (Signature.may_satisfy s ~index:2 ~op:Predicate.Eq
       ~operand:(Value.Str "database"))

let test_filters_mismatches () =
  let db, _, `Teachers (kelly, _), _ = Fixtures.school_db () in
  ignore db;
  let s = Signature.of_object kelly in
  (* Hash collisions are possible in principle; these literals do not
     collide with "Kelly"/"database" under the current digest. *)
  Alcotest.(check bool) "mismatching name filtered" false
    (Signature.may_satisfy s ~index:0 ~op:Predicate.Eq ~operand:(Value.Str "Abel"));
  Alcotest.(check bool) "mismatching speciality filtered" false
    (Signature.may_satisfy s ~index:2 ~op:Predicate.Eq
       ~operand:(Value.Str "network"))

let test_conservative_cases () =
  let db, _, `Teachers (_, haley), _ = Fixtures.school_db () in
  ignore db;
  let s = Signature.of_object haley in
  (* haley's speciality is null: no digest slot, never filtered. *)
  Alcotest.(check bool) "null slot conservative" true
    (Signature.may_satisfy s ~index:2 ~op:Predicate.Eq ~operand:(Value.Str "x"));
  (* complex attribute (department ref): conservative *)
  Alcotest.(check bool) "ref slot conservative" true
    (Signature.may_satisfy s ~index:1 ~op:Predicate.Eq ~operand:(Value.Str "x"));
  (* non-equality operators: conservative *)
  Alcotest.(check bool) "range op conservative" true
    (Signature.may_satisfy s ~index:0 ~op:Predicate.Lt ~operand:(Value.Str "zzz"));
  (* out of range index: conservative *)
  Alcotest.(check bool) "out of range conservative" true
    (Signature.may_satisfy s ~index:99 ~op:Predicate.Eq ~operand:(Value.Str "x"))

let test_digest () =
  Alcotest.(check bool) "null has no digest" true
    (Signature.digest_value Value.Null = None);
  Alcotest.(check bool) "ref has no digest" true
    (Signature.digest_value (Value.Ref (Oid.Loid.of_int 1)) = None);
  Alcotest.(check bool) "int digested" true
    (Signature.digest_value (Value.Int 42) <> None);
  Alcotest.(check bool) "digest deterministic" true
    (Signature.digest_value (Value.Str "a") = Signature.digest_value (Value.Str "a"))

(* The defining property: if the stored value equals the operand, the
   signature must never filter the object out. *)
let prop_no_false_negatives =
  QCheck.Test.make ~name:"signatures have no false negatives" ~count:300
    QCheck.(pair small_int (string_gen_of_size (Gen.int_range 0 8) Gen.printable))
    (fun (i, s) ->
      let schema =
        Schema.create
          [
            Schema.
              {
                cname = "T";
                attrs =
                  [
                    { aname = "a"; atype = Prim P_int };
                    { aname = "b"; atype = Prim P_string };
                  ];
              };
          ]
      in
      let db = Database.create ~name:"t" ~schema in
      let o = Database.add db ~cls:"T" [ Value.Int i; Value.Str s ] in
      let sg = Signature.of_object o in
      Signature.may_satisfy sg ~index:0 ~op:Predicate.Eq ~operand:(Value.Int i)
      && Signature.may_satisfy sg ~index:1 ~op:Predicate.Eq ~operand:(Value.Str s))

let suite =
  [
    Alcotest.test_case "no false negative on equal values" `Quick test_no_false_negative_eq;
    Alcotest.test_case "filters mismatches" `Quick test_filters_mismatches;
    Alcotest.test_case "conservative cases" `Quick test_conservative_cases;
    Alcotest.test_case "digests" `Quick test_digest;
    QCheck_alcotest.to_alcotest prop_no_false_negatives;
  ]
