open Msdq_simkit

let check_float = Alcotest.(check (float 1e-9))

let test_units () =
  check_float "us" 1.0 (Time.to_us (Time.us 1.0));
  check_float "ms" 1_000.0 (Time.to_us (Time.ms 1.0));
  check_float "s" 1_000_000.0 (Time.to_us (Time.s 1.0));
  check_float "to_ms" 2.5 (Time.to_ms (Time.us 2_500.0));
  check_float "to_s" 0.5 (Time.to_s (Time.ms 500.0))

let test_arithmetic () =
  check_float "add" 3.0 (Time.add (Time.us 1.0) (Time.us 2.0));
  check_float "sub" 1.0 (Time.sub (Time.us 3.0) (Time.us 2.0));
  check_float "max" 3.0 (Time.max (Time.us 3.0) (Time.us 2.0));
  Alcotest.check_raises "sub negative"
    (Invalid_argument "Time.sub: negative duration") (fun () ->
      ignore (Time.sub (Time.us 1.0) (Time.us 2.0)))

let test_compare () =
  Alcotest.(check bool) "lt" true (Time.compare (Time.us 1.0) (Time.us 2.0) < 0);
  Alcotest.(check bool) "eq" true (Time.compare (Time.us 2.0) (Time.us 2.0) = 0);
  Alcotest.(check bool) "finite" true (Time.is_finite (Time.us 1.0));
  Alcotest.(check bool) "nan not finite" false (Time.is_finite Float.nan);
  Alcotest.(check bool) "inf not finite" false (Time.is_finite Float.infinity)

let test_pp () =
  let show t = Format.asprintf "%a" Time.pp t in
  Alcotest.(check string) "us range" "500.0us" (show (Time.us 500.0));
  Alcotest.(check string) "ms range" "2.50ms" (show (Time.us 2_500.0));
  Alcotest.(check string) "s range" "1.500s" (show (Time.s 1.5))

let suite =
  [
    Alcotest.test_case "units" `Quick test_units;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "pretty-printing" `Quick test_pp;
  ]
