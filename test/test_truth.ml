open Msdq_odb

let tt = Alcotest.testable Truth.pp Truth.equal

let all = [ Truth.True; Truth.False; Truth.Unknown ]

let test_conj_table () =
  let check a b expect =
    Alcotest.check tt
      (Printf.sprintf "%s /\\ %s" (Truth.to_string a) (Truth.to_string b))
      expect (Truth.conj a b)
  in
  check Truth.True Truth.True Truth.True;
  check Truth.True Truth.False Truth.False;
  check Truth.True Truth.Unknown Truth.Unknown;
  check Truth.False Truth.Unknown Truth.False;
  check Truth.Unknown Truth.Unknown Truth.Unknown

let test_disj_table () =
  let check a b expect =
    Alcotest.check tt
      (Printf.sprintf "%s \\/ %s" (Truth.to_string a) (Truth.to_string b))
      expect (Truth.disj a b)
  in
  check Truth.False Truth.False Truth.False;
  check Truth.True Truth.False Truth.True;
  check Truth.True Truth.Unknown Truth.True;
  check Truth.False Truth.Unknown Truth.Unknown;
  check Truth.Unknown Truth.Unknown Truth.Unknown

let test_neg () =
  Alcotest.check tt "neg true" Truth.False (Truth.neg Truth.True);
  Alcotest.check tt "neg false" Truth.True (Truth.neg Truth.False);
  Alcotest.check tt "neg unknown" Truth.Unknown (Truth.neg Truth.Unknown)

let test_folds () =
  Alcotest.check tt "empty conj" Truth.True (Truth.conj_all []);
  Alcotest.check tt "empty disj" Truth.False (Truth.disj_all []);
  Alcotest.check tt "conj with false" Truth.False
    (Truth.conj_all [ Truth.True; Truth.Unknown; Truth.False ]);
  Alcotest.check tt "conj unknown" Truth.Unknown
    (Truth.conj_all [ Truth.True; Truth.Unknown ]);
  Alcotest.check tt "disj with true" Truth.True
    (Truth.disj_all [ Truth.Unknown; Truth.True ]);
  Alcotest.check tt "of_bool" Truth.True (Truth.of_bool true)

(* Kleene laws checked exhaustively over the 3-element domain. *)
let test_kleene_laws () =
  let assoc op =
    List.for_all
      (fun a ->
        List.for_all
          (fun b ->
            List.for_all (fun c -> Truth.equal (op (op a b) c) (op a (op b c))) all)
          all)
      all
  in
  let commut op =
    List.for_all
      (fun a -> List.for_all (fun b -> Truth.equal (op a b) (op b a)) all)
      all
  in
  let de_morgan =
    List.for_all
      (fun a ->
        List.for_all
          (fun b ->
            Truth.equal
              (Truth.neg (Truth.conj a b))
              (Truth.disj (Truth.neg a) (Truth.neg b)))
          all)
      all
  in
  let double_neg =
    List.for_all (fun a -> Truth.equal (Truth.neg (Truth.neg a)) a) all
  in
  Alcotest.(check bool) "conj associative" true (assoc Truth.conj);
  Alcotest.(check bool) "disj associative" true (assoc Truth.disj);
  Alcotest.(check bool) "conj commutative" true (commut Truth.conj);
  Alcotest.(check bool) "disj commutative" true (commut Truth.disj);
  Alcotest.(check bool) "de morgan" true de_morgan;
  Alcotest.(check bool) "double negation" true double_neg

let suite =
  [
    Alcotest.test_case "conjunction table" `Quick test_conj_table;
    Alcotest.test_case "disjunction table" `Quick test_disj_table;
    Alcotest.test_case "negation" `Quick test_neg;
    Alcotest.test_case "folds" `Quick test_folds;
    Alcotest.test_case "kleene laws (exhaustive)" `Quick test_kleene_laws;
  ]
