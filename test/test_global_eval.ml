open Msdq_odb
open Msdq_fed

let ex = lazy (Paper_example.build ())

let setup () =
  let fed = (Lazy.force ex).Paper_example.federation in
  Materialize.build fed

let find_student v name =
  List.find_opt
    (fun o ->
      match Materialize.field v o "name" with
      | Some (Materialize.Gprim (Value.Str s)) -> s = name
      | _ -> false)
    (Materialize.extent v "Student")

let q1_truth v student =
  Global_eval.eval_conjunction v student Paper_example.q1_predicates

(* Q1 over the integrated view (the CA answer, Section 2.2): certain
   (Hedy, Kelly); maybe (Tony, Haley); John, Mary, Fanny eliminated. *)
let test_q1_semantics () =
  let v = setup () in
  let check name expect =
    match find_student v name with
    | Some s -> Alcotest.check (Alcotest.testable Truth.pp Truth.equal) name expect (q1_truth v s)
    | None -> Alcotest.fail (name ^ " missing")
  in
  check "Hedy" Truth.True;
  check "Tony" Truth.Unknown;
  check "John" Truth.False;
  check "Mary" Truth.False;
  check "Fanny" Truth.False

let test_projection () =
  let v = setup () in
  match find_student v "Hedy" with
  | Some hedy ->
    Alcotest.(check string) "own name" "Hedy"
      (Value.to_string (Global_eval.project v hedy (Path.of_string "name")));
    Alcotest.(check string) "advisor name" "Kelly"
      (Value.to_string (Global_eval.project v hedy (Path.of_string "advisor.name")));
    (* Hedy's age is missing federation-wide: projects as null. *)
    Alcotest.(check bool) "missing projects null" true
      (Value.is_null (Global_eval.project v hedy (Path.of_string "age")))
  | None -> Alcotest.fail "Hedy missing"

let test_blocked_detail () =
  let v = setup () in
  match find_student v "Tony" with
  | Some tony -> (
    let p =
      Predicate.make ~path:(Path.of_string "address.city") ~op:Predicate.Eq
        ~operand:(Value.Str "Taipei")
    in
    match Global_eval.eval v tony p with
    | Global_eval.Blocked b ->
      Alcotest.(check bool) "blocked at tony" true
        (Oid.Goid.equal b.Global_eval.at.Materialize.goid tony.Materialize.goid);
      Alcotest.(check (list string)) "rest" [ "address"; "city" ] b.Global_eval.rest
    | Global_eval.Sat | Global_eval.Viol -> Alcotest.fail "expected blocked")
  | None -> Alcotest.fail "Tony missing"

(* The maybe semantics is monotone: filling in a missing value can turn
   Unknown into True or False but never flips True<->False. We check the
   core case through Abel, whose department arrives from DB3's isomer. *)
let test_isomer_fills_value () =
  let v = setup () in
  let abel =
    List.find_opt
      (fun o ->
        match Materialize.field v o "name" with
        | Some (Materialize.Gprim (Value.Str "Abel")) -> true
        | _ -> false)
      (Materialize.extent v "Teacher")
  in
  match abel with
  | Some abel -> (
    let p =
      Predicate.make ~path:(Path.of_string "department.name") ~op:Predicate.Eq
        ~operand:(Value.Str "CS")
    in
    (* DB1 alone could not evaluate this (null department); the integrated
       view can, and the answer is definite. *)
    match Global_eval.eval v abel p with
    | Global_eval.Viol -> ()
    | Global_eval.Sat -> Alcotest.fail "Abel is in EE, not CS"
    | Global_eval.Blocked _ -> Alcotest.fail "isomer data should decide this")
  | None -> Alcotest.fail "Abel missing"

let test_empty_conjunction () =
  let v = setup () in
  match find_student v "John" with
  | Some john ->
    Alcotest.check (Alcotest.testable Truth.pp Truth.equal) "empty conj true"
      Truth.True (Global_eval.eval_conjunction v john [])
  | None -> Alcotest.fail "John missing"

let suite =
  [
    Alcotest.test_case "q1 semantics over integrated view" `Quick test_q1_semantics;
    Alcotest.test_case "projection" `Quick test_projection;
    Alcotest.test_case "blocked detail" `Quick test_blocked_detail;
    Alcotest.test_case "isomer fills value" `Quick test_isomer_fills_value;
    Alcotest.test_case "empty conjunction" `Quick test_empty_conjunction;
  ]
