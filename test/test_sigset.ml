open Msdq_odb

(* The columnar signature store (Sigset) must answer exactly as the
   per-object Signature it replaces on the BLS/PLS hot path: same
   digests, same conservative cases, same spill behavior past one mask
   word. *)

let mk_schema attrs = Schema.create [ Schema.{ cname = "T"; attrs } ]

let int_str_schema =
  mk_schema
    Schema.
      [
        { aname = "a"; atype = Prim P_int }; { aname = "b"; atype = Prim P_string };
      ]

(* Boundary: an empty extent has an empty store and nothing to refute. *)
let test_empty_extent () =
  let db = Database.create ~name:"t" ~schema:int_str_schema in
  let ext = Database.extent_handle db "T" in
  let sigs = Extent.signatures ext in
  Alcotest.(check int) "no rows" 0 (Sigset.size sigs);
  Alcotest.(check int) "nothing refuted" 0
    (Sigset.refuted_count sigs ~index:0 ~op:Relop.Eq ~operand:(Value.Int 1))

(* Boundary: all-null fields leave every slot maskless, so the filter
   never refutes anything — conservative, never wrong. *)
let test_all_missing () =
  let db = Database.create ~name:"t" ~schema:int_str_schema in
  for _ = 1 to 5 do
    ignore (Database.add db ~cls:"T" [ Value.Null; Value.Null ])
  done;
  let sigs = Extent.signatures (Database.extent_handle db "T") in
  Alcotest.(check int) "five rows" 5 (Sigset.size sigs);
  for index = 0 to 1 do
    Alcotest.(check int) "all conservative" 0
      (Sigset.refuted_count sigs ~index ~op:Relop.Eq ~operand:(Value.Int 7));
    Alcotest.(check bool) "row passes" true
      (Sigset.may_satisfy sigs ~row:0 ~index ~op:Relop.Eq
         ~operand:(Value.Str "x"))
  done

(* Boundary: a width past Bitset.bits_per_word (63) spills the slot mask
   into a second word per object; slots on both sides of the boundary
   must digest and filter. *)
let test_second_word_spill () =
  let width = Bitset.bits_per_word + 17 in
  let sigs = Sigset.create ~width ~arity:width () in
  let fields = Array.init width (fun i -> Value.Int i) in
  let row = Sigset.append sigs fields in
  Alcotest.(check int) "two mask words" 2 (Sigset.words_per_obj sigs);
  List.iter
    (fun index ->
      Alcotest.(check bool)
        (Printf.sprintf "slot %d matches its own value" index)
        true
        (Sigset.may_satisfy sigs ~row ~index ~op:Relop.Eq
           ~operand:(Value.Int index));
      Alcotest.(check bool)
        (Printf.sprintf "slot %d filters a mismatch" index)
        false
        (Sigset.may_satisfy sigs ~row ~index ~op:Relop.Eq
           ~operand:(Value.Int (index + 1000))))
    [ 0; Bitset.bits_per_word - 1; Bitset.bits_per_word; width - 1 ];
  (* Past the width: conservative, exactly like Signature. *)
  Alcotest.(check bool) "out of range conservative" true
    (Sigset.may_satisfy sigs ~row ~index:width ~op:Relop.Eq
       ~operand:(Value.Int 0))

let test_bitset_spill () =
  let b = Bitset.create 4 in
  Bitset.set b (Bitset.bits_per_word + 7);
  Alcotest.(check bool) "spilled bit set" true
    (Bitset.mem b (Bitset.bits_per_word + 7));
  Alcotest.(check bool) "word-boundary bit clear" false
    (Bitset.mem b (Bitset.bits_per_word - 1));
  Alcotest.(check int) "one bit" 1 (Bitset.cardinal b);
  Alcotest.(check bool) "capacity spans two words" true
    (Bitset.capacity b >= 2 * Bitset.bits_per_word)

(* The equivalence that justifies the columnar rewrite: on every row of
   an extent, Sigset answers exactly as Signature.of_object on the boxed
   handle — across value kinds, null slots, every operator, and indices
   beyond the digest width. *)
let value_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> Value.Int i) small_int);
        (2, map (fun f -> Value.Float (float_of_int f /. 4.0)) small_int);
        (3, map (fun s -> Value.Str s) (string_size (int_range 0 6)));
        (1, map (fun b -> Value.Bool b) bool);
        (1, return Value.Null);
      ])

let op_gen =
  QCheck.Gen.oneofl Relop.[ Eq; Ne; Lt; Le; Gt; Ge ]

let prop_matches_per_object_signatures =
  QCheck.Test.make ~name:"sigset answers = per-object signatures" ~count:200
    QCheck.(
      make
        Gen.(
          quad
            (list_size (int_range 0 8) (array_size (return 3) value_gen))
            (int_range 0 4) op_gen value_gen))
    (fun (rows, index, op, operand) ->
      let schema =
        mk_schema
          Schema.
            [
              { aname = "a"; atype = Prim P_int };
              { aname = "b"; atype = Prim P_string };
              { aname = "c"; atype = Prim P_float };
            ]
      in
      let db = Database.create ~name:"t" ~schema in
      (* Coerce the generated values to the declared column types where
         the schema would reject them; nulls stay null. *)
      let coerce col v =
        match (col, v) with
        | _, Value.Null -> Value.Null
        | 0, v -> Value.Int (Hashtbl.hash v land 0xff)
        | 1, Value.Str s -> Value.Str s
        | 1, v -> Value.Str (string_of_int (Hashtbl.hash v land 0xff))
        | _, Value.Float f -> Value.Float f
        | _, v -> Value.Float (float_of_int (Hashtbl.hash v land 0xff))
      in
      let handles =
        List.map
          (fun fields ->
            Database.add db ~cls:"T" (List.mapi coerce (Array.to_list fields)))
          rows
      in
      let sigs = Extent.signatures (Database.extent_handle db "T") in
      List.for_all2
        (fun row obj ->
          let expect =
            Signature.may_satisfy (Signature.of_object obj) ~index ~op ~operand
          in
          Sigset.may_satisfy sigs ~row ~index ~op ~operand = expect)
        (List.init (List.length handles) Fun.id)
        handles)

(* refuted_count is just may_satisfy summed over the extent. *)
let prop_refuted_count_consistent =
  QCheck.Test.make ~name:"refuted_count = rows failing may_satisfy" ~count:200
    QCheck.(pair (small_list small_int) small_int)
    (fun (ints, probe) ->
      let db = Database.create ~name:"t" ~schema:int_str_schema in
      List.iter
        (fun i ->
          ignore (Database.add db ~cls:"T" [ Value.Int i; Value.Null ]))
        ints;
      let sigs = Extent.signatures (Database.extent_handle db "T") in
      let operand = Value.Int probe in
      let by_rows = ref 0 in
      for row = 0 to Sigset.size sigs - 1 do
        if not (Sigset.may_satisfy sigs ~row ~index:0 ~op:Relop.Eq ~operand)
        then incr by_rows
      done;
      Sigset.refuted_count sigs ~index:0 ~op:Relop.Eq ~operand = !by_rows)

let suite =
  [
    Alcotest.test_case "empty extent" `Quick test_empty_extent;
    Alcotest.test_case "all-missing attributes" `Quick test_all_missing;
    Alcotest.test_case "second-word spill" `Quick test_second_word_spill;
    Alcotest.test_case "bitset spill" `Quick test_bitset_spill;
    QCheck_alcotest.to_alcotest prop_matches_per_object_signatures;
    QCheck_alcotest.to_alcotest prop_refuted_count_consistent;
  ]
