(* Small helpers shared across test suites. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  nl = 0 || at 0

let string_of_values vs = String.concat "," (List.map Msdq_odb.Value.to_string vs)

(* Name of an object per its "name" attribute, for readable assertions. *)
let name_of db obj =
  match Msdq_odb.Database.field_by_name db obj "name" with
  | Some (Msdq_odb.Value.Str s) -> s
  | Some v -> Msdq_odb.Value.to_string v
  | None -> "?"
