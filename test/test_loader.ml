open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload

let parse_ok text =
  match Loader.parse_result text with
  | Ok fed -> fed
  | Error msg -> Alcotest.fail msg

let test_example_parses () =
  let fed = parse_ok Loader.example in
  Alcotest.(check (list string)) "databases" [ "hr"; "crm" ] (Federation.db_names fed);
  Alcotest.(check int) "objects" 6 (Federation.total_objects fed);
  (* Ada and Eve exist in both databases; Bob and Zoe are singletons. *)
  Alcotest.(check int) "entities" 4 (Goid_table.entity_count (Federation.goids fed));
  Alcotest.(check string) "key recorded" "emp-no" (Federation.key_of fed "Employee")

let test_parsed_data () =
  let fed = parse_ok Loader.example in
  let hr = Federation.db fed "hr" in
  match Database.extent hr "Employee" with
  | [ ada; bob; eve ] ->
    (match Database.field_by_name hr ada "salary" with
    | Some (Value.Int 90000) -> ()
    | _ -> Alcotest.fail "ada's salary");
    (match Database.field_by_name hr bob "boss" with
    | Some (Value.Ref l) ->
      Alcotest.(check bool) "bob's boss is ada" true
        (Oid.Loid.equal l (Dbobject.loid ada))
    | _ -> Alcotest.fail "bob's boss should reference ada");
    (match Database.field_by_name hr eve "salary" with
    | Some Value.Null -> ()
    | _ -> Alcotest.fail "eve's salary should be null")
  | _ -> Alcotest.fail "three employees expected"

(* A loaded federation runs queries like any other. *)
let test_query_loaded () =
  let fed = parse_ok Loader.example in
  let q = "select X.name from Employee X where X.salary > 60000 and X.city = \"Berlin\"" in
  match Strategy.run_query Strategy.Bl fed q with
  | Error msg -> Alcotest.fail msg
  | Ok (answer, _) ->
    (* Ada: salary 90000 + Berlin -> certain. Zoe: crm only, salary unknown,
       Berlin -> maybe. Eve: null salary, Paris -> eliminated. Bob: 55000 ->
       eliminated. *)
    Alcotest.(check int) "one certain" 1 (List.length (Answer.certain answer));
    Alcotest.(check int) "one maybe" 1 (List.length (Answer.maybe answer))

let test_round_trip_example () =
  let fed = parse_ok Loader.example in
  let fed2 = parse_ok (Loader.dump fed) in
  Alcotest.(check (list string)) "same databases" (Federation.db_names fed)
    (Federation.db_names fed2);
  Alcotest.(check int) "same objects" (Federation.total_objects fed)
    (Federation.total_objects fed2);
  Alcotest.(check int) "same entities"
    (Goid_table.entity_count (Federation.goids fed))
    (Goid_table.entity_count (Federation.goids fed2));
  (* Same query, same answer. *)
  let q = "select X.name from Employee X where X.city = \"Berlin\"" in
  match (Strategy.run_query Strategy.Ca fed q, Strategy.run_query Strategy.Ca fed2 q) with
  | Ok (a1, _), Ok (a2, _) ->
    Alcotest.(check bool) "same statuses" true (Answer.same_statuses a1 a2)
  | _ -> Alcotest.fail "query failed"

(* Round trip through dump on generated federations: queries agree. *)
let prop_round_trip =
  QCheck.Test.make ~name:"dump/parse round trip preserves answers" ~count:15
    QCheck.(int_bound 1_000)
    (fun seed ->
      let cfg = { Synth.default with Synth.seed; n_entities = 12 } in
      let fed = Synth.generate cfg in
      match Loader.parse_result (Loader.dump fed) with
      | Error _ -> false
      | Ok fed2 -> (
        let rng = Rng.create ~seed in
        let query = Synth.random_query rng cfg ~disjunctive:false in
        let schema = Global_schema.schema (Federation.global_schema fed) in
        match Analysis.analyze schema query with
        | exception Analysis.Error _ -> true
        | analysis -> (
          let schema2 = Global_schema.schema (Federation.global_schema fed2) in
          match Analysis.analyze schema2 query with
          | exception Analysis.Error _ -> false
          | analysis2 ->
            let a1, _ = Strategy.run Strategy.Bl fed analysis in
            let a2, _ = Strategy.run Strategy.Bl fed2 analysis2 in
            Answer.same_statuses a1 a2)))

let expect_error text fragment =
  match Loader.parse_result text with
  | Ok _ -> Alcotest.fail ("should not parse: " ^ fragment)
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "mentions %S in %S" fragment msg)
      true
      (Testutil.contains ~needle:fragment msg)

let test_errors () =
  expect_error "class C\n" "outside a database";
  expect_error "database a\nattr x int\n" "outside a class";
  expect_error "database a\nclass C\nattr x blob\n" "expected a type";
  expect_error "database a\nclass C\nattr x int\nobject C o = @nope\nglobal C = a.C key x\n"
    "not defined earlier";
  expect_error "database a\nclass C\nattr x int\nobject C o = 1\nobject C o = 2\nglobal C = a.C key x\n"
    "duplicate label";
  expect_error "database a\nclass C\nattr x int\nobject C o = \"unterminated\n"
    "unterminated";
  expect_error "database a\nclass C\nattr x int\nobject C o = zzz\nglobal C = a.C key x\n"
    "cannot parse value";
  expect_error "database a\nclass C\nattr x int\n" "no global classes";
  expect_error "global C = a.C key x\n" "no databases";
  expect_error "database a\nclass C\nattr x int\nglobal C = a.C\n" "key";
  expect_error "database a\nclass C\nattr x int\nglobal C = aC key x\n" "DB.CLASS";
  expect_error "database a\nclass C\nattr x int\nobject C o = 1, 2\nglobal C = a.C key x\n"
    "expects 1 fields";
  expect_error "frobnicate\n" "unknown directive";
  (* line numbers are reported *)
  expect_error "database a\nclass C\nattr x blob\n" "line 3"

let test_comments_and_spacing () =
  let fed =
    parse_ok
      "# header\n\ndatabase a   # trailing comment\n  class C\n    attr x \
       int\n    attr note string\n  object C o = 7, \"has # inside\"\n\nglobal \
       C = a.C key x\n"
  in
  let db = Federation.db fed "a" in
  match Database.extent db "C" with
  | [ o ] -> (
    match Database.field_by_name db o "note" with
    | Some (Value.Str s) -> Alcotest.(check string) "hash in string kept" "has # inside" s
    | _ -> Alcotest.fail "note missing")
  | _ -> Alcotest.fail "one object expected"

let test_load_file () =
  let path = Filename.temp_file "msdq" ".fed" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc Loader.example);
  (match Loader.load_file path with
  | Ok fed -> Alcotest.(check int) "objects" 6 (Federation.total_objects fed)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path;
  match Loader.load_file "/nonexistent/msdq.fed" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file should fail"

let suite =
  [
    Alcotest.test_case "example parses" `Quick test_example_parses;
    Alcotest.test_case "parsed data" `Quick test_parsed_data;
    Alcotest.test_case "query on loaded federation" `Quick test_query_loaded;
    Alcotest.test_case "round trip (example)" `Quick test_round_trip_example;
    QCheck_alcotest.to_alcotest prop_round_trip;
    Alcotest.test_case "error reporting" `Quick test_errors;
    Alcotest.test_case "comments and strings" `Quick test_comments_and_spacing;
    Alcotest.test_case "file loading" `Quick test_load_file;
  ]
