(* The telemetry layer: critical-path analysis, the persistent statistics
   store (EWMA merge, versioned JSON), the OpenMetrics exporter and the
   serve dashboard — plus the Stats/Metrics empty-sample guards they lean
   on. *)

module Time = Msdq_simkit.Time
module Trace = Msdq_simkit.Trace
module Stats = Msdq_simkit.Stats
module Resource = Msdq_simkit.Resource
module Metrics = Msdq_obs.Metrics
module Cp = Msdq_telemetry.Critical_path
module Store = Msdq_telemetry.Store
module Openmetrics = Msdq_telemetry.Openmetrics
module Dashboard = Msdq_telemetry.Dashboard
open Msdq_fed
open Msdq_query
open Msdq_exec

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ---- Stats and Metrics guards ---- *)

let test_stats_empty_guards () =
  let s = Stats.summarize [] in
  Alcotest.(check bool) "empty summary" true (s = Stats.empty_summary);
  List.iter
    (fun v ->
      Alcotest.(check bool) "no NaN on empty samples" false (Float.is_nan v))
    [ s.Stats.mean_us; s.Stats.p50_us; s.Stats.p90_us; s.Stats.p99_us; s.Stats.max_us ];
  Alcotest.(check (float 0.)) "mean of []" 0.0 (Stats.mean []);
  Alcotest.(check (float 0.)) "percentile of []" 0.0 (Stats.percentile [] 0.5);
  let s = Stats.summarize [ 5.0; 1.0; 3.0 ] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.mean_us;
  Alcotest.(check (float 0.)) "p50" 3.0 s.Stats.p50_us;
  Alcotest.(check (float 0.)) "max" 5.0 s.Stats.max_us

let test_metrics_quantile_guards () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 1.0; 10.0 |] "msdq_t" in
  Alcotest.(check (float 0.)) "empty quantile" 0.0 (Metrics.quantile h 0.5);
  Alcotest.(check (float 0.)) "empty max" 0.0 (Metrics.histogram_max h);
  List.iter (Metrics.observe h) [ 2.0; 4.0; 50.0 ];
  Alcotest.(check (float 0.)) "max tracks observations" 50.0
    (Metrics.histogram_max h);
  let q99 = Metrics.quantile h 0.99 in
  Alcotest.(check bool) "q99 bounded by max" true (q99 <= 50.0 +. 1e-9);
  Alcotest.(check bool) "q99 above lower buckets" true (q99 > 10.0)

(* ---- Critical path ---- *)

let entry ?(attrs = []) ?(deps = []) tid label site kind start finish =
  {
    Trace.tid;
    label;
    site;
    kind;
    start = Time.us start;
    finish = Time.us finish;
    deps;
    attrs;
  }

(* A hand-built four-hop chain with one off-path decoy branch:

     t1 read  (site 0, disk, O)   0 .. 10
     t2 eval  (site 0, cpu,  O)  10 .. 14   deps [1]
     t3 ship  (site 1, link, P)  20 .. 50   deps [2]   (6 us wait)
     t5 decoy (site 2, disk)      0 ..  5
     t4 integ (site 1, cpu,  I)  50 .. 60   deps [3; 5]

   The gating predecessor of t4 is t3 (latest finish among its deps), so
   the path is t1-t2-t3-t4; the sums below are computed by hand. *)
let test_critical_path_hand () =
  let entries =
    [
      entry 1 "read" (Some 0) (Some Resource.Disk) 0.0 10.0
        ~attrs:[ ("phase", "O") ];
      entry 2 "eval" (Some 0) (Some Resource.Cpu) 10.0 14.0 ~deps:[ 1 ]
        ~attrs:[ ("phase", "O") ];
      entry 5 "decoy" (Some 2) (Some Resource.Disk) 0.0 5.0;
      entry 3 "ship" (Some 1) (Some Resource.Link) 20.0 50.0 ~deps:[ 2 ]
        ~attrs:[ ("phase", "P") ];
      entry 4 "integrate" (Some 1) (Some Resource.Cpu) 50.0 60.0
        ~deps:[ 3; 5 ] ~attrs:[ ("phase", "I") ];
    ]
  in
  let r = Cp.analyze entries in
  Alcotest.(check (float 1e-9)) "response" 60.0 r.Cp.response_us;
  Alcotest.(check (list int)) "path tids" [ 1; 2; 3; 4 ]
    (List.map (fun h -> h.Cp.tid) r.Cp.path);
  Alcotest.(check (float 1e-9)) "path sums to response" r.Cp.response_us
    (Cp.total_us r);
  let waits = List.map (fun h -> h.Cp.wait_us) r.Cp.path in
  Alcotest.(check (list (float 1e-9))) "per-hop waits" [ 0.0; 0.0; 6.0; 0.0 ]
    waits;
  (* on-path busy time: site 1 carries 40 of the 54 us, the link 30 *)
  Alcotest.(check (option int)) "dominant site" (Some 1) r.Cp.dominant_site;
  Alcotest.(check bool) "dominant kind is the link" true
    (r.Cp.dominant_kind = Some Resource.Link);
  Alcotest.(check (option string)) "dominant phase" (Some "P")
    r.Cp.dominant_phase;
  Alcotest.(check bool) "empty trace" true (Cp.analyze [] = Cp.empty);
  (* the rendering and JSON export stay total *)
  let s = Format.asprintf "%a" Cp.pp r in
  Alcotest.(check bool) "pp names the dominant site" true
    (contains ~needle:"dominant site: 1" s);
  match Cp.to_json r with
  | Msdq_obs.Json.Obj _ -> ()
  | _ -> Alcotest.fail "to_json should be an object"

let demo_run () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let ast =
    match Parser.parse_result Paper_example.q1 with
    | Ok ast -> ast
    | Error msg -> Alcotest.failf "demo query does not parse: %s" msg
  in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  (fed, Analysis.analyze schema ast)

let test_critical_path_demo () =
  let fed, analysis = demo_run () in
  let _, metrics = Strategy.run Strategy.Bl fed analysis in
  let entries = Trace.entries metrics.Strategy.trace in
  Alcotest.(check bool) "trace recorded" true (entries <> []);
  let r = Cp.analyze entries in
  let response =
    List.fold_left
      (fun acc (e : Trace.entry) -> Float.max acc (Time.to_us e.Trace.finish))
      0.0 entries
  in
  Alcotest.(check (float 1e-6)) "response is the last finish" response
    r.Cp.response_us;
  Alcotest.(check (float 1e-6)) "path sums to response" r.Cp.response_us
    (Cp.total_us r);
  Alcotest.(check bool) "path non-empty" true (r.Cp.path <> []);
  Alcotest.(check bool) "a dominant site is named" true
    (r.Cp.dominant_site <> None);
  Alcotest.(check bool) "a dominant resource is named" true
    (r.Cp.dominant_kind <> None)

(* ---- Store ---- *)

let k ?(db = "*") ?(site = 0) ?(link = 0) strategy =
  { Store.db; site; link; strategy }

let sample w lat drop hit dem =
  {
    Store.weight = w;
    check_latency_us = lat;
    drop_rate = drop;
    cache_hit_rate = hit;
    demotions = dem;
  }

let test_store_observe_and_roundtrip () =
  let s = Store.create () in
  Store.observe s (k "BL") (sample 1.0 100.0 0.0 0.5 1.0);
  Store.observe s (k "BL") (sample 3.0 200.0 0.1 0.5 0.0);
  Store.record_run s;
  (match Store.find s (k "BL") with
  | None -> Alcotest.fail "observed key missing"
  | Some v ->
    Alcotest.(check (float 1e-9)) "weights add" 4.0 v.Store.weight;
    Alcotest.(check (float 1e-9)) "weighted mean latency" 175.0
      v.Store.check_latency_us;
    Alcotest.(check (float 1e-9)) "weighted mean drop" 0.075 v.Store.drop_rate);
  let txt = Store.to_string s in
  Alcotest.(check bool) "schema stamped" true
    (contains ~needle:Store.schema txt);
  (match Store.of_string txt with
  | Error msg -> Alcotest.failf "roundtrip parse: %s" msg
  | Ok s' ->
    Alcotest.(check string) "byte-stable roundtrip" txt (Store.to_string s');
    Alcotest.(check int) "runs survive" 1 (Store.runs s'));
  (match Store.load "/nonexistent/msdq-store.json" with
  | Ok _ -> Alcotest.fail "loading a missing file should fail"
  | Error _ -> ());
  match Store.of_string "{\"schema\": \"msdq-telemetry/999\"}" with
  | Ok _ -> Alcotest.fail "unknown schema accepted"
  | Error _ -> ()

let test_store_ewma_decay () =
  (* alpha = 0.5: the past keeps half its weight at every merge, so fresh
     data dominates an equally-weighted past. *)
  let old_ = Store.create ~alpha:0.5 () in
  Store.observe old_ (k "BL") (sample 2.0 100.0 0.0 0.0 0.0);
  Store.record_run old_;
  let fresh = Store.create ~alpha:0.5 () in
  Store.observe fresh (k "BL") (sample 2.0 400.0 0.0 0.0 0.0);
  Store.record_run fresh;
  let merged = Store.merge old_ fresh in
  Alcotest.(check int) "runs add" 2 (Store.runs merged);
  (match Store.find merged (k "BL") with
  | None -> Alcotest.fail "merged key missing"
  | Some v ->
    (* (0.5*2*100 + 2*400) / (0.5*2 + 2) = 900 / 3 *)
    Alcotest.(check (float 1e-9)) "decayed mean" 300.0 v.Store.check_latency_us;
    Alcotest.(check (float 1e-9)) "decayed weight" 3.0 v.Store.weight);
  (* entries present on one side only are kept verbatim *)
  let one_sided = Store.create ~alpha:0.5 () in
  Store.observe one_sided (k "PL") (sample 1.0 50.0 0.0 0.0 0.0);
  let merged = Store.merge merged one_sided in
  match Store.find merged (k "PL") with
  | Some v ->
    Alcotest.(check (float 1e-9)) "one-sided kept verbatim" 50.0
      v.Store.check_latency_us
  | None -> Alcotest.fail "one-sided entry lost"

(* Generator for qcheck properties: stores built from a short list of
   well-behaved entries (dyadic floats, so equality is exact). *)
let arb_store ~alpha =
  let open QCheck in
  let entry =
    quad
      (oneofl [ "*"; "school"; "dbx" ])
      (pair small_nat (int_bound 3))
      (oneofl [ "CA"; "BL"; "PL" ])
      (quad (int_range 1 8) small_nat (int_bound 4) (int_bound 4))
  in
  let build entries =
    let s = Store.create ~alpha () in
    List.iter
      (fun (db, (site, link), strategy, (w, lat, drop4, hit4)) ->
        Store.observe s
          { Store.db; site; link; strategy }
          (sample (float_of_int w)
             (float_of_int lat)
             (float_of_int drop4 /. 4.0)
             (float_of_int hit4 /. 4.0)
             (float_of_int (w mod 3))))
      entries;
    Store.record_run s;
    s
  in
  map build (list_of_size Gen.(1 -- 6) entry)

let prop_store_save_load_merge_identity =
  QCheck.Test.make ~count:60 ~name:"store save -> load -> merge id is byte-stable"
    (arb_store ~alpha:0.7) (fun s ->
      let txt = Store.to_string s in
      let path = Filename.temp_file "msdq_store" ".json" in
      Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
      Store.save s path;
      match Store.load path with
      | Error msg -> QCheck.Test.fail_reportf "load failed: %s" msg
      | Ok loaded ->
        String.equal txt (Store.to_string loaded)
        && String.equal txt
             (Store.to_string (Store.merge loaded (Store.create ~alpha:0.7 ()))))

let prop_store_merge_order_insensitive =
  QCheck.Test.make ~count:60
    ~name:"alpha=1 merge is order-insensitive"
    QCheck.(pair (arb_store ~alpha:1.0) (arb_store ~alpha:1.0))
    (fun (a, b) ->
      String.equal
        (Store.to_string (Store.merge ~alpha:1.0 a b))
        (Store.to_string (Store.merge ~alpha:1.0 b a)))

(* ---- OpenMetrics ---- *)

let test_openmetrics_escape () =
  Alcotest.(check string) "backslash, quote, newline" "a\\\"b\\\\c\\nd"
    (Openmetrics.escape "a\"b\\c\nd");
  Alcotest.(check string) "clean strings untouched" "plain"
    (Openmetrics.escape "plain")

let test_openmetrics_render () =
  let reg = Metrics.create () in
  Metrics.inc
    (Metrics.counter reg ~labels:[ ("q", "say \"hi\"\n") ] "msdq_x_total")
    3;
  Metrics.set (Metrics.gauge reg "msdq_g") 1.5;
  let h =
    Metrics.histogram reg
      ~labels:[ ("strategy", "BL") ]
      ~buckets:[| 1.0; 10.0 |] "msdq_lat_us"
  in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0 ];
  let store = Store.create () in
  Store.observe store (k "BL") (sample 2.0 120.0 0.05 0.75 0.5);
  Store.record_run store;
  let txt = Openmetrics.render ~store reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains ~needle txt))
    [
      "# TYPE msdq_x_total counter";
      "msdq_x_total{q=\"say \\\"hi\\\"\\n\"} 3";
      "# TYPE msdq_g gauge";
      "# TYPE msdq_lat_us histogram";
      "msdq_lat_us_bucket{strategy=\"BL\",le=\"1\"} 1";
      "msdq_lat_us_bucket{strategy=\"BL\",le=\"+Inf\"} 3";
      "msdq_lat_us_count{strategy=\"BL\"} 3";
      "msdq_store_runs 1";
      "msdq_store_check_latency_us";
      "strategy=\"BL\"";
    ];
  Alcotest.(check bool) "terminated by EOF" true
    (let tail = "# EOF\n" in
     String.length txt >= String.length tail
     && String.sub txt (String.length txt - String.length tail) (String.length tail)
        = tail);
  (* rendering an empty registry is still a well-formed exposition *)
  let empty = Openmetrics.render (Metrics.create ()) in
  Alcotest.(check bool) "empty registry renders EOF" true
    (contains ~needle:"# EOF" empty)

(* ---- Dashboard ---- *)

let test_dashboard_render () =
  let frame =
    {
      Dashboard.now_us = 120000.0;
      admitted = 8;
      completed = 5;
      total = 8;
      extent_hits = 6;
      extent_lookups = 8;
      verdict_hits = 9;
      verdict_lookups = 12;
      breakers_open = 0;
      messages = 14;
      shed = 2;
      deadline_demotions = 3;
      gray_slow_legs = 4;
      gray_fallbacks = 1;
      latency = Stats.summarize [ 9000.0; 11000.0; 8000.0; 9500.0; 10000.0 ];
      per_strategy = [ ("BL", 8, 5) ];
    }
  in
  let s = Dashboard.render frame in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains ~needle s))
    [
      "8 admitted"; "5/8 completed"; "75%"; "(6/8)"; "14 messages";
      "2 shed"; "3 deadline demotions"; "4 slow legs"; "1 CA fallbacks"; "BL";
    ];
  (* every line of the box pads to the same display width *)
  let display_width line =
    (* count UTF-8 code points, not bytes: the rules are drawn with
       multi-byte box characters *)
    let n = ref 0 in
    String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) line;
    !n
  in
  let widths =
    List.filter_map
      (fun line -> if line = "" then None else Some (display_width line))
      (String.split_on_char '\n' s)
  in
  (match widths with
  | [] -> Alcotest.fail "no lines"
  | w :: rest ->
    List.iter (fun w' -> Alcotest.(check int) "aligned box" w w') rest);
  (* an all-zero frame must render without division blowups *)
  let zero =
    {
      Dashboard.now_us = 0.0;
      admitted = 0;
      completed = 0;
      total = 0;
      extent_hits = 0;
      extent_lookups = 0;
      verdict_hits = 0;
      verdict_lookups = 0;
      breakers_open = 0;
      messages = 0;
      shed = 0;
      deadline_demotions = 0;
      gray_slow_legs = 0;
      gray_fallbacks = 0;
      latency = Stats.empty_summary;
      per_strategy = [];
    }
  in
  Alcotest.(check bool) "zero frame renders" true
    (String.length (Dashboard.render zero) > 0);
  Alcotest.(check bool) "clear is an ANSI sequence" true
    (String.length Dashboard.clear > 0 && Dashboard.clear.[0] = '\027')

(* ---- Serve integration: persistence across runs ---- *)

let serve_outcome () =
  let module Serve = Msdq_serve.Serve in
  let fed, analysis = demo_run () in
  let jobs =
    List.init 4 (fun i ->
        {
          Serve.strategy = Strategy.Bl;
          analysis;
          arrival = Time.us (float_of_int i *. 20000.0);
          deadline = None;
        })
  in
  Serve.run Serve.default_config fed jobs

let test_store_persists_across_serve_runs () =
  let module Exp = Msdq_exp.Run_report in
  let path = Filename.temp_file "msdq_store_runs" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (* first msdq serve --store run: fresh store, saved *)
  let first = Store.create ~alpha:1.0 () in
  Exp.record_serve_stats ~store:first (serve_outcome ());
  Store.save first path;
  (* second run: load, merge the fresh statistics, save again *)
  let fresh = Store.create ~alpha:1.0 () in
  Exp.record_serve_stats ~store:fresh (serve_outcome ());
  let merged =
    match Store.load path with
    | Ok old_ -> Store.merge ~alpha:1.0 old_ fresh
    | Error msg -> Alcotest.failf "reload failed: %s" msg
  in
  Store.save merged path;
  Alcotest.(check int) "two runs aggregated" 2 (Store.runs merged);
  let key = k "BL" in
  match (Store.find first key, Store.find merged key) with
  | Some a, Some b ->
    (* the workload is deterministic, so at alpha=1 the merged weight is
       exactly doubled and the means are unchanged *)
    Alcotest.(check (float 1e-9)) "weight doubles" (2.0 *. a.Store.weight)
      b.Store.weight;
    Alcotest.(check (float 1e-6)) "mean latency unchanged"
      a.Store.check_latency_us b.Store.check_latency_us;
    Alcotest.(check (float 1e-9)) "hit rate unchanged" a.Store.cache_hit_rate
      b.Store.cache_hit_rate
  | _ -> Alcotest.fail "BL entry missing from the store"

let suite =
  [
    Alcotest.test_case "stats empty-sample guards" `Quick test_stats_empty_guards;
    Alcotest.test_case "metrics quantile guards" `Quick
      test_metrics_quantile_guards;
    Alcotest.test_case "critical path (hand-computed)" `Quick
      test_critical_path_hand;
    Alcotest.test_case "critical path (demo query)" `Quick
      test_critical_path_demo;
    Alcotest.test_case "store observe + roundtrip" `Quick
      test_store_observe_and_roundtrip;
    Alcotest.test_case "store EWMA decay" `Quick test_store_ewma_decay;
    QCheck_alcotest.to_alcotest prop_store_save_load_merge_identity;
    QCheck_alcotest.to_alcotest prop_store_merge_order_insensitive;
    Alcotest.test_case "openmetrics escaping" `Quick test_openmetrics_escape;
    Alcotest.test_case "openmetrics exposition" `Quick test_openmetrics_render;
    Alcotest.test_case "dashboard rendering" `Quick test_dashboard_render;
    Alcotest.test_case "store persists across serve runs" `Quick
      test_store_persists_across_serve_runs;
  ]
