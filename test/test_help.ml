(* Table-driven pin of bin/msdq's --help output: every subcommand's
   documented flag set must match this table exactly, so adding or
   removing a flag without updating its help (or this table) fails the
   suite. The binary is a declared test dependency; each case runs
   [msdq <sub> --help=plain] and parses the option-definition lines. *)

let msdq_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/msdq.exe"

(* Option-definition lines in cmdliner's plain output are indented
   exactly seven spaces ("       --flag" or "       -j N, --jobs=N");
   description lines are indented deeper and section headers not at
   all. Collect every --long-flag token on definition lines. *)
let long_flags_in line =
  let n = String.length line in
  let is_flag_char = function 'a' .. 'z' | '0' .. '9' | '-' -> true | _ -> false in
  let out = ref [] in
  let i = ref 0 in
  while !i < n - 2 do
    if
      line.[!i] = '-'
      && line.[!i + 1] = '-'
      && (match line.[!i + 2] with 'a' .. 'z' -> true | _ -> false)
    then begin
      let j = ref (!i + 2) in
      while !j < n && is_flag_char line.[!j] do
        incr j
      done;
      out := String.sub line !i (!j - !i) :: !out;
      i := !j
    end
    else incr i
  done;
  List.rev !out

let definition_line line =
  String.length line > 8
  && String.sub line 0 7 = "       "
  && line.[7] = '-'

let help_output args =
  let tmp = Filename.temp_file "msdq_help" ".txt" in
  let cmd = Filename.quote_command msdq_exe ~stdout:tmp args in
  let rc = Sys.command cmd in
  let ic = open_in_bin tmp in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  if rc <> 0 then
    Alcotest.failf "%s exited %d" (String.concat " " (msdq_exe :: args)) rc;
  text

let flags_of_help text =
  String.split_on_char '\n' text
  |> List.concat_map (fun line ->
         if definition_line line then long_flags_in line else [])
  |> List.sort_uniq compare

let common = [ "--help"; "--quiet"; "--verbose"; "--verbosity"; "--version" ]

(* One row per subcommand: the complete documented flag set (beyond the
   cmdliner common options above). *)
let table =
  [
    ( "demo",
      [
        "--critical-path"; "--deep"; "--explain"; "--gantt"; "--json";
        "--multi-valued"; "--strategy"; "--telemetry"; "--trace-out";
      ] );
    ( "query",
      [
        "--critical-path"; "--data"; "--deep"; "--explain"; "--gantt";
        "--json"; "--multi-valued"; "--seed"; "--strategy"; "--synthetic";
        "--telemetry"; "--trace-out";
      ] );
    ( "experiment",
      [
        "--auto-sweep"; "--chart"; "--csv"; "--drop"; "--fault-sweep";
        "--gray-sweep"; "--inflate"; "--jobs"; "--json"; "--overload-sweep";
        "--progress"; "--recovery-sweep"; "--samples"; "--seed";
      ] );
    ( "serve",
      [
        "--adaptive"; "--arrival"; "--cache-mb"; "--dashboard"; "--data";
        "--deadline"; "--drop"; "--flap-ms"; "--inflate"; "--jobs"; "--json";
        "--queries"; "--queue-limit"; "--samples"; "--seed"; "--shed-policy";
        "--store"; "--strategy"; "--sweep"; "--synthetic"; "--trace-out";
        "--window";
      ] );
    ( "metrics",
      [
        "--arrival"; "--data"; "--queries"; "--seed"; "--store"; "--strategy";
        "--synthetic";
      ] );
    ("params", []);
    ("generate", [ "--classes"; "--databases"; "--entities"; "--seed" ]);
    ("plan", [ "--data"; "--objective"; "--seed"; "--synthetic" ]);
    ("validate", [ "--progress"; "--seeds" ]);
  ]

let test_subcommand_flags (sub, expected) () =
  let got = flags_of_help (help_output [ sub; "--help=plain" ]) in
  let want = List.sort_uniq compare (common @ expected) in
  Alcotest.(check (list string)) (sub ^ " flags") want got

(* The top-level help must list every subcommand — the drift this pins
   is a command missing from the group page. *)
let test_group_lists_all () =
  let text = help_output [ "--help=plain" ] in
  List.iter
    (fun (sub, _) ->
      let needle = "\n       " ^ sub in
      let found =
        let n = String.length text and m = String.length needle in
        let rec scan i =
          i + m <= n && (String.sub text i m = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) (sub ^ " listed in group help") true found)
    table

(* The experiment positional's doc must name every accepted spelling the
   dispatch recognizes — the drift the issue called out. *)
let test_experiment_doc_names_all () =
  let text = help_output [ "experiment"; "--help=plain" ] in
  let contains needle =
    let n = String.length text and m = String.length needle in
    let rec scan i = i + m <= n && (String.sub text i m = needle || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " documented") true (contains name))
    [
      "fig9"; "fig10"; "fig11"; "ablation-signatures"; "ablation-checks";
      "ablation-semijoin"; "fault-sweep"; "recovery-sweep"; "auto-sweep";
      "overload-sweep"; "gray-sweep";
    ]

let suite =
  List.map
    (fun ((sub, _) as row) ->
      Alcotest.test_case (sub ^ " --help") `Quick (test_subcommand_flags row))
    table
  @ [
      Alcotest.test_case "group lists all subcommands" `Quick
        test_group_lists_all;
      Alcotest.test_case "experiment doc names all experiments" `Quick
        test_experiment_doc_names_all;
    ]
