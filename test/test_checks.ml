open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec

let setup () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  (ex, fed, analysis)

let items_of fed analysis db =
  let r = Local_eval.run fed analysis ~db in
  List.concat_map
    (fun (row : Local_result.row) -> row.Local_result.unsolved)
    r.Local_result.rows

(* The paper's walk: from DB1, assistant t2' (Jeffery@DB2) is checked for
   speciality, and t1'' (Abel@DB3) for the department of t2. Haley (t3) has
   no assistants. Root-level address blocks produce no requests. *)
let test_db1_requests () =
  let ex, fed, analysis = setup () in
  let built =
    Checks.build fed analysis ~db:"DB1" ~root_class:"Student"
      ~items:(items_of fed analysis "DB1")
  in
  Alcotest.(check int) "root-level blocks (addresses of John/Tony/Mary)" 3
    built.Checks.root_level;
  Alcotest.(check int) "two requests" 2 (List.length built.Checks.requests);
  (* LOids are database-local, so requests are identified by (target db,
     LOid). *)
  let find_req target assistant =
    List.find_opt
      (fun (r : Checks.request) ->
        String.equal r.Checks.target_db target
        && Oid.Loid.equal r.Checks.assistant (Dbobject.loid assistant))
      built.Checks.requests
  in
  (match find_req "DB2" ex.Paper_example.t2' with
  | Some r ->
    Alcotest.(check string) "t2' checked in DB2" "DB2" r.Checks.target_db;
    Alcotest.(check string) "speciality predicate"
      "speciality = \"database\""
      (Predicate.to_string r.Checks.pred);
    Alcotest.(check bool) "origin item is t1" true
      (Oid.Loid.equal r.Checks.item (Dbobject.loid ex.Paper_example.t1))
  | None -> Alcotest.fail "expected a check on t2'@DB2");
  (match find_req "DB3" ex.Paper_example.t1'' with
  | Some r ->
    Alcotest.(check string) "t1'' checked in DB3" "DB3" r.Checks.target_db;
    Alcotest.(check string) "department predicate"
      "department.name = \"CS\""
      (Predicate.to_string r.Checks.pred)
  | None -> Alcotest.fail "expected a check on t1''@DB3");
  Alcotest.(check bool) "goid lookups counted" true (built.Checks.goid_lookups > 0)

(* Shared unsolved items are checked once: both John and Tony block on
   speciality, but through different teachers; Mary and John share no item.
   Two students with the same advisor produce one request. *)
let test_dedup () =
  let _, fed, analysis = setup () in
  let items = items_of fed analysis "DB1" in
  (* duplicate the item list: requests must not double *)
  let built =
    Checks.build fed analysis ~db:"DB1" ~root_class:"Student"
      ~items:(items @ items)
  in
  Alcotest.(check int) "still two requests" 2 (List.length built.Checks.requests)

(* Serving the paper's checks: t2' (Jeffery, network) violates speciality =
   database; t1'' (Abel, EE) violates department.name = CS. *)
let test_serve () =
  let ex, fed, analysis = setup () in
  let built =
    Checks.build fed analysis ~db:"DB1" ~root_class:"Student"
      ~items:(items_of fed analysis "DB1")
  in
  let db2_reqs =
    List.filter (fun (r : Checks.request) -> r.Checks.target_db = "DB2")
      built.Checks.requests
  in
  let served = Checks.serve fed ~db:"DB2" db2_reqs in
  (match served.Checks.verdicts with
  | [ v ] ->
    Alcotest.(check bool) "t2' violates" true (Truth.equal v.Checks.truth Truth.False);
    Alcotest.(check bool) "tagged with origin item t1" true
      (Oid.Loid.equal v.Checks.item (Dbobject.loid ex.Paper_example.t1))
  | _ -> Alcotest.fail "one verdict expected");
  let db3_reqs =
    List.filter (fun (r : Checks.request) -> r.Checks.target_db = "DB3")
      built.Checks.requests
  in
  let served3 = Checks.serve fed ~db:"DB3" db3_reqs in
  (match served3.Checks.verdicts with
  | [ v ] ->
    Alcotest.(check bool) "t1'' violates (EE, not CS)" true
      (Truth.equal v.Checks.truth Truth.False)
  | _ -> Alcotest.fail "one verdict expected");
  Alcotest.(check int) "objects read" 1 served3.Checks.objects_read

(* From DB2, Kelly's department is checked through t2''@DB3, which satisfies
   (CS). *)
let test_db2_satisfying_check () =
  let ex, fed, analysis = setup () in
  let built =
    Checks.build fed analysis ~db:"DB2" ~root_class:"Student"
      ~items:(items_of fed analysis "DB2")
  in
  Alcotest.(check int) "one request" 1 (List.length built.Checks.requests);
  let served = Checks.serve fed ~db:"DB3" built.Checks.requests in
  match served.Checks.verdicts with
  | [ v ] ->
    Alcotest.(check bool) "t2'' satisfies CS" true
      (Truth.equal v.Checks.truth Truth.True);
    Alcotest.(check bool) "origin is t1' (Kelly@DB2)" true
      (Oid.Loid.equal v.Checks.item (Dbobject.loid ex.Paper_example.t1'))
  | _ -> Alcotest.fail "one verdict expected"

(* Signature filtering: the speciality check on t2' (Jeffery, network) is a
   one-step equality and the signature refutes it locally. The department
   check is a two-step path and cannot be filtered. *)
let test_signature_filtering () =
  let _, fed, analysis = setup () in
  let signatures = Sig_catalog.build fed in
  let built =
    Checks.build ~signatures fed analysis ~db:"DB1" ~root_class:"Student"
      ~items:(items_of fed analysis "DB1")
  in
  Alcotest.(check int) "one filtered" 1 built.Checks.filtered;
  Alcotest.(check int) "one request left" 1 (List.length built.Checks.requests);
  match built.Checks.local_verdicts with
  | [ v ] ->
    Alcotest.(check bool) "local verdict is false" true
      (Truth.equal v.Checks.truth Truth.False)
  | _ -> Alcotest.fail "one local verdict expected"

let test_serve_wrong_db_rejected () =
  let _, fed, analysis = setup () in
  let built =
    Checks.build fed analysis ~db:"DB1" ~root_class:"Student"
      ~items:(items_of fed analysis "DB1")
  in
  Alcotest.(check bool) "serving at wrong site rejected" true
    (try
       ignore (Checks.serve fed ~db:"DB1" built.Checks.requests);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "DB1 requests (paper walk)" `Quick test_db1_requests;
    Alcotest.test_case "request deduplication" `Quick test_dedup;
    Alcotest.test_case "serving checks" `Quick test_serve;
    Alcotest.test_case "satisfying check from DB2" `Quick test_db2_satisfying_check;
    Alcotest.test_case "signature filtering" `Quick test_signature_filtering;
    Alcotest.test_case "wrong-site serve rejected" `Quick test_serve_wrong_db_rejected;
  ]
