(* Printing any well-formed AST and re-parsing it reproduces the AST. *)

open Msdq_odb
open Msdq_query

let keywords = [ "select"; "from"; "where"; "and"; "or"; "not"; "true"; "false" ]

let gen_ident =
  QCheck.Gen.(
    let* len = 1 -- 8 in
    let* chars = list_size (return len) (char_range 'a' 'z') in
    let s = String.init len (List.nth chars) in
    if List.mem s keywords then return (s ^ "x") else return s)

let gen_path = QCheck.Gen.(list_size (1 -- 3) gen_ident)

let gen_value =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) (int_range (-1000) 1000);
        map (fun f -> Value.Float (Float.of_int f /. 8.0)) (int_range (-500) 500);
        map
          (fun chars -> Value.Str (String.concat "" (List.map (String.make 1) chars)))
          (list_size (0 -- 6)
             (oneof [ char_range 'a' 'z'; return '"'; return '\\'; return ' ' ]));
        map (fun b -> Value.Bool b) bool;
      ])

let gen_op =
  QCheck.Gen.oneofl
    Predicate.[ Eq; Ne; Lt; Le; Gt; Ge ]

let gen_atom =
  QCheck.Gen.(
    let* path = gen_path in
    let* op = gen_op in
    let* operand = gen_value in
    return (Cond.Atom (Predicate.make ~path ~op ~operand)))

let gen_cond =
  QCheck.Gen.(
    sized_size (0 -- 3) (fix (fun self n ->
        if n = 0 then gen_atom
        else
          frequency
            [
              (3, gen_atom);
              (* single-child and/or would print as bare parentheses and
                 reparse without the wrapper; real parsers never produce
                 them either *)
              (2, map (fun l -> Cond.And l) (list_size (2 -- 3) (self (n - 1))));
              (2, map (fun l -> Cond.Or l) (list_size (2 -- 3) (self (n - 1))));
              (1, map (fun c -> Cond.Not c) (self (n - 1)));
            ])))

let gen_ast =
  QCheck.Gen.(
    let* range_class = gen_ident in
    let* targets = list_size (1 -- 3) gen_path in
    let* with_where = bool in
    let* where = if with_where then gen_cond else return Cond.tt in
    return (Ast.make ~range_class ~targets ~where ()))

let arbitrary_ast = QCheck.make ~print:Ast.to_string gen_ast

let prop_round_trip =
  QCheck.Test.make ~name:"print/parse round trip on random ASTs" ~count:300
    arbitrary_ast
    (fun ast ->
      match Parser.parse_result (Ast.to_string ast) with
      | Error msg -> QCheck.Test.fail_report msg
      | Ok ast2 ->
        String.equal ast.Ast.range_class ast2.Ast.range_class
        && List.equal Path.equal ast.Ast.targets ast2.Ast.targets
        && Cond.equal ast.Ast.where ast2.Ast.where)

(* Parsing arbitrary junk never raises anything but Parser.Error. *)
let prop_no_crash =
  QCheck.Test.make ~name:"parser never crashes on junk" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 60) Gen.printable)
    (fun junk ->
      match Parser.parse_result junk with Ok _ | Error _ -> true)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_round_trip;
    QCheck_alcotest.to_alcotest prop_no_crash;
  ]
