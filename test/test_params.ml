open Msdq_workload

let test_defaults_match_table2 () =
  let r = Params.default in
  Alcotest.(check int) "N_db" 3 r.Params.n_db;
  Alcotest.(check bool) "N_c 1..4" true (r.Params.n_c = (1, 4));
  Alcotest.(check bool) "N_p 0..3" true (r.Params.n_p = (0, 3));
  Alcotest.(check bool) "N_o 5000..6000" true (r.Params.n_o = (5000, 6000));
  Alcotest.(check bool) "N_ta 0..2" true (r.Params.n_ta = (0, 2));
  Alcotest.(check (float 1e-9)) "ps base" 0.45 r.Params.ps_base;
  Alcotest.(check (float 1e-9)) "as base" 0.55 r.Params.as_base;
  Alcotest.(check (float 1e-9)) "ss base" 0.6 r.Params.ss_base

let check_invariants (s : Params.sample) (ranges : Params.ranges) =
  let lo_c, hi_c = ranges.Params.n_c in
  let n_c = Array.length s.Params.classes in
  if n_c < lo_c || n_c > hi_c then Alcotest.fail "n_c out of range";
  Array.iteri
    (fun k (gc : Params.gclass) ->
      let lo_p, hi_p = ranges.Params.n_p in
      if gc.Params.n_p < lo_p || gc.Params.n_p > hi_p then
        Alcotest.fail "n_p out of range";
      if k = 0 && gc.Params.n_p < 1 then Alcotest.fail "root class has no predicate";
      let expected_iso = 1.0 -. (0.9 ** float_of_int (s.Params.n_db - 1)) in
      if abs_float (gc.Params.r_iso -. expected_iso) > 1e-9 then
        Alcotest.fail "r_iso formula";
      Array.iter
        (fun (cd : Params.class_at_db) ->
          let lo_o, hi_o = ranges.Params.n_o in
          if cd.Params.n_o < lo_o || cd.Params.n_o > hi_o then
            Alcotest.fail "n_o out of range";
          if cd.Params.n_pa < 0 || cd.Params.n_pa > gc.Params.n_p then
            Alcotest.fail "n_pa out of range";
          if
            cd.Params.n_qa < max cd.Params.n_pa cd.Params.n_ta
            || cd.Params.n_qa > cd.Params.n_pa + cd.Params.n_ta
          then Alcotest.fail "n_qa out of range";
          let missing = gc.Params.n_p - cd.Params.n_pa in
          if missing > 0 && cd.Params.r_m <> 1.0 then
            Alcotest.fail "r_m must be 1 with missing predicate attributes";
          if missing = 0 && cd.Params.r_m > 0.2 then Alcotest.fail "r_m base range";
          let expect_pps =
            if cd.Params.n_pa = 0 then 1.0
            else ranges.Params.ps_base ** sqrt (float_of_int cd.Params.n_pa)
          in
          if abs_float (cd.Params.r_pps -. expect_pps) > 1e-9 then
            Alcotest.fail "r_pps formula";
          let expect_as =
            if missing = 0 then 1.0
            else ranges.Params.as_base ** sqrt (float_of_int missing)
          in
          if abs_float (cd.Params.r_as -. expect_as) > 1e-9 then
            Alcotest.fail "r_as formula")
        gc.Params.per_db)
    s.Params.classes

let test_sample_invariants () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 200 do
    check_invariants (Params.sample rng Params.default) Params.default
  done

let test_sample_deterministic () =
  let draw () =
    let rng = Rng.create ~seed:99 in
    Params.sample rng Params.default
  in
  Alcotest.(check bool) "deterministic" true (draw () = draw ())

let test_custom_ranges () =
  let ranges = { Params.default with Params.n_db = 6; n_c = (2, 2) } in
  let rng = Rng.create ~seed:1 in
  let s = Params.sample rng ranges in
  Alcotest.(check int) "six dbs" 6 s.Params.n_db;
  Alcotest.(check int) "two classes" 2 (Array.length s.Params.classes);
  Alcotest.(check int) "per-db arrays sized" 6
    (Array.length s.Params.classes.(0).Params.per_db);
  check_invariants s ranges

let test_total_predicates () =
  let rng = Rng.create ~seed:2 in
  let s = Params.sample rng Params.default in
  let manual =
    Array.fold_left (fun acc gc -> acc + gc.Params.n_p) 0 s.Params.classes
  in
  Alcotest.(check int) "total" manual (Params.total_predicates s)

let test_pp () =
  let text = Format.asprintf "%a" Params.pp_ranges Params.default in
  Alcotest.(check bool) "mentions N_db" true (Testutil.contains ~needle:"N_db" text);
  Alcotest.(check bool) "mentions formulas" true
    (Testutil.contains ~needle:"0.45" text)

let suite =
  [
    Alcotest.test_case "defaults match table 2" `Quick test_defaults_match_table2;
    Alcotest.test_case "sample invariants (200 draws)" `Quick test_sample_invariants;
    Alcotest.test_case "deterministic" `Quick test_sample_deterministic;
    Alcotest.test_case "custom ranges" `Quick test_custom_ranges;
    Alcotest.test_case "total predicates" `Quick test_total_predicates;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
