open Msdq_odb
open Msdq_query

let p name v =
  Predicate.make ~path:[ name ] ~op:Predicate.Eq ~operand:(Value.Str v)

let a = p "a" "1"
let b = p "b" "2"
let c = p "c" "3"

let test_conj_flattening () =
  let t = Cond.conj [ Cond.Atom a; Cond.And [ Cond.Atom b; Cond.Atom c ] ] in
  (match t with
  | Cond.And [ Cond.Atom _; Cond.Atom _; Cond.Atom _ ] -> ()
  | _ -> Alcotest.fail "nested conjunction should flatten");
  (match Cond.conj [ Cond.Atom a ] with
  | Cond.Atom _ -> ()
  | _ -> Alcotest.fail "singleton conjunction unwraps");
  match Cond.tt with
  | Cond.And [] -> ()
  | _ -> Alcotest.fail "tt is the empty conjunction"

let test_atoms () =
  let t = Cond.Or [ Cond.Atom a; Cond.Not (Cond.And [ Cond.Atom b; Cond.Atom c ]) ] in
  Alcotest.(check int) "three atoms" 3 (List.length (Cond.atoms t));
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ]
    (List.map (fun (p : Predicate.t) -> Path.to_string p.Predicate.path) (Cond.atoms t))

let test_conjuncts () =
  let conj = Cond.And [ Cond.Atom a; Cond.Atom b ] in
  (match Cond.conjuncts conj with
  | Some [ _; _ ] -> ()
  | _ -> Alcotest.fail "conjunctive query should expose conjuncts");
  Alcotest.(check bool) "or is not conjunctive" true
    (Cond.conjuncts (Cond.Or [ Cond.Atom a ]) = None);
  Alcotest.(check bool) "not is not conjunctive" true
    (Cond.conjuncts (Cond.Not (Cond.Atom a)) = None);
  Alcotest.(check bool) "nested and ok" true
    (match Cond.conjuncts (Cond.And [ Cond.And [ Cond.Atom a ]; Cond.Atom b ]) with
    | Some [ _; _ ] -> true
    | _ -> false);
  Alcotest.(check bool) "is_conjunctive" true (Cond.is_conjunctive conj)

let test_eval () =
  let oracle (pr : Predicate.t) =
    match Path.to_string pr.Predicate.path with
    | "a" -> Truth.True
    | "b" -> Truth.False
    | _ -> Truth.Unknown
  in
  let tt = Alcotest.testable Truth.pp Truth.equal in
  Alcotest.check tt "and" Truth.False
    (Cond.eval oracle (Cond.And [ Cond.Atom a; Cond.Atom b ]));
  Alcotest.check tt "or" Truth.True
    (Cond.eval oracle (Cond.Or [ Cond.Atom a; Cond.Atom c ]));
  Alcotest.check tt "unknown propagates" Truth.Unknown
    (Cond.eval oracle (Cond.And [ Cond.Atom a; Cond.Atom c ]));
  Alcotest.check tt "not unknown" Truth.Unknown
    (Cond.eval oracle (Cond.Not (Cond.Atom c)));
  Alcotest.check tt "empty and" Truth.True (Cond.eval oracle Cond.tt)

let test_map_atoms () =
  let t = Cond.And [ Cond.Atom a; Cond.Or [ Cond.Atom b ] ] in
  let t' =
    Cond.map_atoms
      (fun p -> Predicate.make ~path:("x" :: p.Predicate.path) ~op:p.Predicate.op ~operand:p.Predicate.operand)
      t
  in
  Alcotest.(check (list string)) "prefixed" [ "x.a"; "x.b" ]
    (List.map (fun (p : Predicate.t) -> Path.to_string p.Predicate.path) (Cond.atoms t'))

let test_pp_equal () =
  let t = Cond.And [ Cond.Atom a; Cond.Not (Cond.Atom b) ] in
  Alcotest.(check bool) "renders" true (String.length (Cond.to_string t) > 0);
  Alcotest.(check bool) "equal" true (Cond.equal t t);
  Alcotest.(check bool) "not equal" false (Cond.equal t (Cond.Atom a))

let suite =
  [
    Alcotest.test_case "conjunction flattening" `Quick test_conj_flattening;
    Alcotest.test_case "atoms" `Quick test_atoms;
    Alcotest.test_case "conjuncts" `Quick test_conjuncts;
    Alcotest.test_case "three-valued eval" `Quick test_eval;
    Alcotest.test_case "map_atoms" `Quick test_map_atoms;
    Alcotest.test_case "pp and equality" `Quick test_pp_equal;
  ]
