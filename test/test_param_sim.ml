open Msdq_simkit
open Msdq_workload
open Msdq_exec
module Param_sim = Msdq_opt.Param_sim

let sample_of seed =
  let rng = Rng.create ~seed in
  Params.sample rng Params.default

let test_deterministic () =
  let t1 = Param_sim.simulate ~cost:Cost.default Strategy.Bl (sample_of 4) in
  let t2 = Param_sim.simulate ~cost:Cost.default Strategy.Bl (sample_of 4) in
  Alcotest.(check bool) "same sample same times" true
    (Time.compare t1.Param_sim.total t2.Param_sim.total = 0
    && Time.compare t1.Param_sim.response t2.Param_sim.response = 0)

let test_response_le_total () =
  for seed = 0 to 30 do
    let s = sample_of seed in
    List.iter
      (fun strategy ->
        let t = Param_sim.simulate ~cost:Cost.default strategy s in
        if Time.compare t.Param_sim.response t.Param_sim.total > 0 then
          Alcotest.fail
            (Printf.sprintf "seed %d %s: response > total" seed
               (Strategy.to_string strategy)))
      Strategy.all
  done

let test_positive_times () =
  let s = sample_of 7 in
  List.iter
    (fun strategy ->
      let t = Param_sim.simulate ~cost:Cost.default strategy s in
      Alcotest.(check bool)
        (Strategy.to_string strategy ^ " positive")
        true
        (Time.to_us t.Param_sim.total > 0.0))
    Strategy.all

(* More objects means more time, for every strategy. *)
let test_monotone_in_objects () =
  let small = { Params.default with Params.n_o = (1000, 1100) } in
  let big = { Params.default with Params.n_o = (9000, 9100) } in
  List.iter
    (fun strategy ->
      let t_small =
        Param_sim.average ~cost:Cost.default ~samples:40 ~seed:5 ~ranges:small
          strategy
      in
      let t_big =
        Param_sim.average ~cost:Cost.default ~samples:40 ~seed:5 ~ranges:big
          strategy
      in
      Alcotest.(check bool)
        (Strategy.to_string strategy ^ " grows with objects")
        true
        (Time.compare t_small.Param_sim.total t_big.Param_sim.total < 0))
    [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]

(* The Figure 11 knob: a higher forced local selectivity keeps more
   survivors, so BL does more work; CA is untouched. *)
let test_selectivity_override () =
  let ranges = { Params.default with Params.n_o = (1000, 2000) } in
  let run strategy sel =
    Param_sim.average
      ~overrides:{ Param_sim.root_local_selectivity = Some sel }
      ~cost:Cost.default ~samples:60 ~seed:11 ~ranges strategy
  in
  let bl_low = run Strategy.Bl 0.1 and bl_high = run Strategy.Bl 0.9 in
  Alcotest.(check bool) "BL total grows with selectivity" true
    (Time.compare bl_low.Param_sim.total bl_high.Param_sim.total < 0);
  let ca_low = run Strategy.Ca 0.1 and ca_high = run Strategy.Ca 0.9 in
  Alcotest.(check (float 1e-6)) "CA unaffected"
    (Time.to_us ca_low.Param_sim.total)
    (Time.to_us ca_high.Param_sim.total)

(* Averaging is deterministic in the seed and uses the same draws for every
   strategy (paired comparison). *)
let test_average_deterministic () =
  let t1 =
    Param_sim.average ~cost:Cost.default ~samples:30 ~seed:3
      ~ranges:Params.default Strategy.Pl
  in
  let t2 =
    Param_sim.average ~cost:Cost.default ~samples:30 ~seed:3
      ~ranges:Params.default Strategy.Pl
  in
  Alcotest.(check (float 1e-9)) "deterministic average"
    (Time.to_us t1.Param_sim.total) (Time.to_us t2.Param_sim.total)

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "response <= total (31 seeds x 5 strategies)" `Quick
      test_response_le_total;
    Alcotest.test_case "positive times" `Quick test_positive_times;
    Alcotest.test_case "monotone in objects" `Quick test_monotone_in_objects;
    Alcotest.test_case "selectivity override" `Quick test_selectivity_override;
    Alcotest.test_case "average deterministic" `Quick test_average_deterministic;
  ]
