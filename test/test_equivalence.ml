(* Cross-strategy semantic properties on random federations and queries.

   These are the correctness claims of the paper, checked by construction:

   - BL and PL differ only in phase order, so their answers coincide.
   - Signature filtering never changes an answer (no false negatives).
   - CA evaluates over fully integrated data, so it subsumes the localized
     answers: every certain result of BL is certain under CA, and CA never
     keeps an object BL eliminated.
   - With deep certification the localized strategies coincide with CA on
     consistent federations. *)

open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload

type case = {
  seed : int;
  fed : Federation.t;
  analysis : Analysis.t;
}

(* Generates a federation and a query that analyzes successfully against its
   global schema (a random path may name an attribute that no constituent
   kept, in which case we retry with more predicates-friendly draws). *)
let rec make_case ?(disjunctive = false) seed attempt =
  if attempt > 20 then None
  else
    let cfg = { Synth.default with Synth.seed = (seed * 37) + attempt } in
    let fed = Synth.generate cfg in
    let rng = Rng.create ~seed:(seed + (attempt * 1013)) in
    let query = Synth.random_query rng cfg ~disjunctive in
    let schema = Global_schema.schema (Federation.global_schema fed) in
    match Analysis.analyze schema query with
    | analysis -> Some { seed; fed; analysis }
    | exception Analysis.Error _ -> make_case ~disjunctive seed (attempt + 1)

let run case s ?(deep = false) () =
  let options = { Strategy.default_options with Strategy.deep_certify = deep } in
  Strategy.run ~options s case.fed case.analysis

let forall_cases ?(disjunctive = false) ~count name prop =
  QCheck.Test.make ~name ~count
    QCheck.(int_bound 10_000)
    (fun seed ->
      match make_case ~disjunctive seed 0 with
      | None -> true (* no analyzable query for this seed: vacuous *)
      | Some case -> prop case)

let prop_bl_equals_pl =
  forall_cases ~count:40 "BL and PL return the same answer" (fun case ->
      let bl, _ = run case Strategy.Bl () in
      let pl, _ = run case Strategy.Pl () in
      Answer.same_statuses bl pl)

let prop_signatures_preserve_answers =
  forall_cases ~count:40 "signature filtering preserves answers" (fun case ->
      let bl, _ = run case Strategy.Bl () in
      let bls, mbls = run case Strategy.Bls () in
      let pl, _ = run case Strategy.Pl () in
      let pls, _ = run case Strategy.Pls () in
      Answer.same_statuses bl bls && Answer.same_statuses pl pls
      && mbls.Strategy.conflicts = 0)

let prop_subsumption_chain =
  forall_cases ~count:30 "subsumption chain CA >= BL >= LO" (fun case ->
      let ca, _ = run case Strategy.Ca () in
      let bl, _ = run case Strategy.Bl () in
      let lo, _ = run case Strategy.Lo () in
      Answer.subsumes ~strong:ca ~weak:bl
      && Answer.subsumes ~strong:bl ~weak:lo
      && Answer.subsumes ~strong:ca ~weak:lo)

let prop_ca_subsumes_localized =
  forall_cases ~count:40 "CA subsumes BL" (fun case ->
      let ca, _ = run case Strategy.Ca () in
      let bl, _ = run case Strategy.Bl () in
      Answer.subsumes ~strong:ca ~weak:bl)

let prop_deep_matches_ca =
  forall_cases ~count:40 "deep-certified BL coincides with CA" (fun case ->
      let ca, _ = run case Strategy.Ca () in
      let bl, _ = run case Strategy.Bl ~deep:true () in
      Answer.same_statuses ca bl)

let prop_deep_pl_matches_ca =
  forall_cases ~count:25 "deep-certified PL coincides with CA" (fun case ->
      let ca, _ = run case Strategy.Ca () in
      let pl, _ = run case Strategy.Pl ~deep:true () in
      Answer.same_statuses ca pl)

let prop_metrics_sane =
  forall_cases ~count:30 "metrics sanity on random cases" (fun case ->
      List.for_all
        (fun s ->
          let _, m = run case s () in
          Time.compare m.Strategy.response m.Strategy.total <= 0
          && m.Strategy.bytes_shipped >= 0
          && m.Strategy.conflicts = 0)
        Strategy.all)

(* The disjunctive extension: same properties under random and/or/not
   trees. *)
let prop_disjunctive_bl_pl =
  forall_cases ~disjunctive:true ~count:30
    "disjunctive: BL and PL agree" (fun case ->
      let bl, _ = run case Strategy.Bl () in
      let pl, _ = run case Strategy.Pl () in
      Answer.same_statuses bl pl)

let prop_disjunctive_subsumption =
  forall_cases ~disjunctive:true ~count:30
    "disjunctive: certain(BL) within certain(CA)" (fun case ->
      let ca, _ = run case Strategy.Ca () in
      let bl, _ = run case Strategy.Bl () in
      Msdq_odb.Oid.Goid.Set.subset
        (Answer.goids bl Answer.Certain)
        (Answer.goids ca Answer.Certain))

let prop_disjunctive_deep =
  forall_cases ~disjunctive:true ~count:30
    "disjunctive: deep BL coincides with CA" (fun case ->
      let ca, _ = run case Strategy.Ca () in
      let bl, _ = run case Strategy.Bl ~deep:true () in
      Answer.same_statuses ca bl)

(* Larger federations exercise the same invariants at a different scale. *)
let prop_larger_federations =
  QCheck.Test.make ~name:"5-database federations preserve the invariants"
    ~count:10
    QCheck.(int_bound 1_000)
    (fun seed ->
      let cfg =
        {
          Synth.default with
          Synth.seed = seed;
          n_db = 5;
          n_entities = 40;
          p_copy = 0.5;
        }
      in
      let fed = Synth.generate cfg in
      let rng = Rng.create ~seed in
      let query = Synth.random_query rng cfg ~disjunctive:false in
      let schema = Global_schema.schema (Federation.global_schema fed) in
      match Analysis.analyze schema query with
      | exception Analysis.Error _ -> true
      | analysis ->
        let ca, _ = Strategy.run Strategy.Ca fed analysis in
        let bl, _ = Strategy.run Strategy.Bl fed analysis in
        let pl, _ = Strategy.run Strategy.Pl fed analysis in
        let options =
          { Strategy.default_options with Strategy.deep_certify = true }
        in
        let deep, _ = Strategy.run ~options Strategy.Bl fed analysis in
        Answer.same_statuses bl pl
        && Answer.subsumes ~strong:ca ~weak:bl
        && Answer.same_statuses ca deep)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bl_equals_pl;
      prop_signatures_preserve_answers;
      prop_ca_subsumes_localized;
      prop_subsumption_chain;
      prop_deep_matches_ca;
      prop_deep_pl_matches_ca;
      prop_metrics_sane;
      prop_disjunctive_bl_pl;
      prop_disjunctive_subsumption;
      prop_disjunctive_deep;
      prop_larger_federations;
    ]
