open Msdq_simkit

let traced () =
  let e = Engine.create ~trace:true () in
  let a = Engine.task e ~site:0 ~kind:Resource.Disk ~label:"read" ~duration:(Time.us 10.0) () in
  let b = Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"eval" ~duration:(Time.us 5.0) ~deps:[ a ] () in
  let _ = Engine.transfer e ~src:0 ~dst:1 ~label:"ship" ~duration:(Time.us 8.0) ~deps:[ b ] () in
  let _ = Engine.fence e ~label:"answer" () in
  Engine.run e;
  Engine.trace e

let test_render () =
  let trace = traced () in
  let text = Format.asprintf "%a" (Gantt.pp ~width:40) trace in
  Alcotest.(check bool) "has site0 disk lane" true
    (Testutil.contains ~needle:"site0 disk" text);
  Alcotest.(check bool) "has site1 link lane" true
    (Testutil.contains ~needle:"site1 link" text);
  Alcotest.(check bool) "ends with makespan" true
    (Testutil.contains ~needle:"23.0us" text);
  (* fences never get a lane *)
  Alcotest.(check bool) "fence omitted" false
    (Testutil.contains ~needle:"answer" text)

let test_legend () =
  let trace = traced () in
  let legend = Format.asprintf "%a" Gantt.pp_legend trace in
  List.iter
    (fun label ->
      Alcotest.(check bool) ("legend has " ^ label) true
        (Testutil.contains ~needle:label legend))
    [ "read"; "eval"; "ship" ]

let test_lane_occupancy () =
  let trace = traced () in
  let text = Format.asprintf "%a" (Gantt.pp ~width:46) trace in
  (* The disk lane is busy for the first ~10/23 of the width, idle after. *)
  let disk_line =
    List.find
      (fun l -> Testutil.contains ~needle:"site0 disk" l)
      (String.split_on_char '\n' text)
  in
  let busy = ref 0 in
  String.iter (fun c -> if c = 'a' then incr busy) disk_line;
  Alcotest.(check bool)
    (Printf.sprintf "disk busy cells ~ 20 (got %d)" !busy)
    true
    (!busy >= 18 && !busy <= 22)

let test_empty_trace () =
  let e = Engine.create ~trace:true () in
  Engine.run e;
  let text = Format.asprintf "%a" (Gantt.pp ~width:20) (Engine.trace e) in
  Alcotest.(check bool) "empty message" true
    (Testutil.contains ~needle:"empty trace" text)

let suite =
  [
    Alcotest.test_case "render lanes" `Quick test_render;
    Alcotest.test_case "legend" `Quick test_legend;
    Alcotest.test_case "lane occupancy" `Quick test_lane_occupancy;
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
  ]
