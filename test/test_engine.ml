open Msdq_simkit

let check_time = Alcotest.(check (float 1e-6))

(* A single task occupies its resource for its duration. *)
let test_single_task () =
  let e = Engine.create () in
  let t = Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"work" ~duration:(Time.us 10.0) () in
  Engine.run e;
  Alcotest.(check bool) "finished" true (Engine.finished e t);
  check_time "finish time" 10.0 (Time.to_us (Engine.finish_time e t));
  check_time "total" 10.0 (Time.to_us (Stats.total_busy (Engine.stats e)));
  check_time "makespan" 10.0 (Time.to_us (Stats.makespan (Engine.stats e)))

(* Tasks on the same resource serialize; on different resources they overlap. *)
let test_serialization () =
  let e = Engine.create () in
  let _ = Engine.task e ~site:0 ~kind:Resource.Disk ~label:"a" ~duration:(Time.us 5.0) () in
  let b = Engine.task e ~site:0 ~kind:Resource.Disk ~label:"b" ~duration:(Time.us 5.0) () in
  let c = Engine.task e ~site:1 ~kind:Resource.Disk ~label:"c" ~duration:(Time.us 5.0) () in
  Engine.run e;
  check_time "same disk serializes" 10.0 (Time.to_us (Engine.finish_time e b));
  check_time "other site overlaps" 5.0 (Time.to_us (Engine.finish_time e c));
  check_time "total sums all work" 15.0 (Time.to_us (Stats.total_busy (Engine.stats e)));
  check_time "makespan is critical path" 10.0 (Time.to_us (Stats.makespan (Engine.stats e)))

(* Dependencies delay eligibility. *)
let test_dependencies () =
  let e = Engine.create () in
  let a = Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"a" ~duration:(Time.us 4.0) () in
  let b = Engine.task e ~site:1 ~kind:Resource.Cpu ~label:"b" ~duration:(Time.us 6.0) () in
  let c =
    Engine.task e ~deps:[ a; b ] ~site:2 ~kind:Resource.Cpu ~label:"c"
      ~duration:(Time.us 1.0) ()
  in
  Engine.run e;
  check_time "starts after slowest dep" 7.0 (Time.to_us (Engine.finish_time e c))

(* Completion callbacks run at completion time and may submit more tasks. *)
let test_dynamic_submission () =
  let e = Engine.create () in
  let second_finish = ref Time.zero in
  let _ =
    Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"first" ~duration:(Time.us 3.0)
      ~on_complete:(fun () ->
        let _ =
          Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"second"
            ~duration:(Time.us 2.0)
            ~on_complete:(fun () -> second_finish := Engine.now e)
            ()
        in
        ())
      ()
  in
  Engine.run e;
  check_time "chained task time" 5.0 (Time.to_us !second_finish)

(* Transfers into the same site serialize on the incoming link: the paper's
   contention effect at the global processing site. *)
let test_link_contention () =
  let e = Engine.create () in
  let t1 = Engine.transfer e ~src:1 ~dst:0 ~label:"t1" ~duration:(Time.us 8.0) () in
  let t2 = Engine.transfer e ~src:2 ~dst:0 ~label:"t2" ~duration:(Time.us 8.0) () in
  let t3 = Engine.transfer e ~src:3 ~dst:9 ~label:"t3" ~duration:(Time.us 8.0) () in
  Engine.run e;
  check_time "first transfer" 8.0 (Time.to_us (Engine.finish_time e t1));
  check_time "second queues behind first" 16.0 (Time.to_us (Engine.finish_time e t2));
  check_time "other destination unaffected" 8.0 (Time.to_us (Engine.finish_time e t3))

(* A local transfer (src = dst) is free: local data never crosses the wire. *)
let test_local_transfer_free () =
  let e = Engine.create () in
  let t = Engine.transfer e ~src:0 ~dst:0 ~label:"local" ~duration:(Time.us 100.0) () in
  Engine.run e;
  check_time "free" 0.0 (Time.to_us (Engine.finish_time e t));
  check_time "no busy time" 0.0 (Time.to_us (Stats.total_busy (Engine.stats e)))

(* Fences synchronize without consuming resources; delays add pure latency. *)
let test_fence_and_delay () =
  let e = Engine.create () in
  let a = Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"a" ~duration:(Time.us 2.0) () in
  let f = Engine.fence e ~deps:[ a ] ~label:"sync" () in
  let d = Engine.delay e ~deps:[ f ] ~label:"wait" ~duration:(Time.us 7.0) () in
  Engine.run e;
  check_time "fence at dep" 2.0 (Time.to_us (Engine.finish_time e f));
  check_time "delay adds latency" 9.0 (Time.to_us (Engine.finish_time e d));
  check_time "no resource time charged" 2.0 (Time.to_us (Stats.total_busy (Engine.stats e)))

(* Submitting after run keeps the clock monotone. *)
let test_rerun () =
  let e = Engine.create () in
  let _ = Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"a" ~duration:(Time.us 5.0) () in
  Engine.run e;
  let b = Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"b" ~duration:(Time.us 5.0) () in
  Engine.run e;
  check_time "second run continues clock" 10.0 (Time.to_us (Engine.finish_time e b))

let test_invalid_duration () =
  let e = Engine.create () in
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"bad" ~duration:(-1.0) ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "nan rejected" true
    (try
       ignore (Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"bad" ~duration:Float.nan ());
       false
     with Invalid_argument _ -> true)

let test_stats_breakdown () =
  let e = Engine.create () in
  let _ = Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"eval" ~duration:(Time.us 4.0) () in
  let _ = Engine.task e ~site:0 ~kind:Resource.Disk ~label:"read" ~duration:(Time.us 6.0) () in
  let _ = Engine.task e ~site:1 ~kind:Resource.Cpu ~label:"eval" ~duration:(Time.us 2.0) () in
  Engine.run e;
  let st = Engine.stats e in
  check_time "site 0 busy" 10.0 (Time.to_us (Stats.busy_of_site st 0));
  check_time "cpu busy" 6.0 (Time.to_us (Stats.busy_of_kind st Resource.Cpu));
  check_time "cell" 4.0 (Time.to_us (Stats.busy_of st ~site:0 ~kind:Resource.Cpu));
  (match Stats.by_label st with
  | (top_label, top_busy, _) :: _ ->
    Alcotest.(check string) "largest label" "eval" top_label;
    check_time "label busy" 6.0 (Time.to_us top_busy)
  | [] -> Alcotest.fail "no labels");
  Alcotest.(check int) "task count" 3 (Stats.task_count st)

let test_trace () =
  let e = Engine.create ~trace:true () in
  let _ = Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"a" ~duration:(Time.us 1.0) () in
  let _ = Engine.fence e ~label:"f" () in
  Engine.run e;
  let entries = Trace.entries (Engine.trace e) in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  Alcotest.(check bool) "renders" true
    (String.length (Format.asprintf "%a" Trace.pp (Engine.trace e)) > 0)

(* A drained queue with unfinished tasks raises Stuck, and each entry names
   the stuck task, its site and the unmet dependencies (or the unresolved
   promise) it is awaiting — the culprit, not just the victim. *)
let test_stuck_diagnostics () =
  let e = Engine.create () in
  let p = Engine.promise e ~label:"never" in
  let _ =
    Engine.task e ~deps:[ p ] ~site:1 ~kind:Resource.Cpu ~label:"work"
      ~duration:(Time.us 5.0) ()
  in
  match Engine.run e with
  | () -> Alcotest.fail "expected Stuck"
  | exception Engine.Stuck entries ->
    Alcotest.(check (list string))
      "each stuck task names its site and unmet dependencies"
      [
        "never (fence): promise never resolved";
        "work (site 1 cpu): awaiting never (fence)";
      ]
      entries

let test_stuck_names_failed_chain () =
  let e = Engine.create () in
  let a =
    Engine.task e ~site:2 ~kind:Resource.Disk ~label:"read" ~duration:(Time.us 1.0) ()
  in
  let p = Engine.promise e ~label:"settled" in
  let _ = Engine.fence e ~deps:[ a; p ] ~label:"collect" () in
  match Engine.run e with
  | () -> Alcotest.fail "expected Stuck"
  | exception Engine.Stuck entries ->
    Alcotest.(check (list string))
      "finished dependencies are not listed as unmet"
      [
        "settled (fence): promise never resolved";
        "collect (fence): awaiting settled (fence)";
      ]
      entries

(* The failable-task API: a judged transfer completes Dropped at its
   would-be finish time; untouched transfers complete Delivered. *)
let test_judge_outcomes () =
  let e = Engine.create () in
  Engine.set_judge e (fun ~site:_ ~kind:_ ~src:_ ~label ~start:_ ~duration ->
      if String.equal label "doomed" then
        Some { Engine.fault_duration = duration; fault_drop = Some "lossy" }
      else None);
  let doomed_outcome = ref None and ok_outcome = ref None in
  let d =
    Engine.transfer e ~src:1 ~dst:0 ~label:"doomed" ~duration:(Time.us 8.0)
      ~on_outcome:(fun o -> doomed_outcome := Some o)
      ()
  in
  let ok =
    Engine.transfer e ~src:2 ~dst:3 ~label:"fine" ~duration:(Time.us 4.0)
      ~on_outcome:(fun o -> ok_outcome := Some o)
      ()
  in
  Engine.run e;
  Alcotest.(check bool) "dropped outcome" true
    (!doomed_outcome = Some (Engine.Dropped "lossy"));
  Alcotest.(check bool) "delivered outcome" true (!ok_outcome = Some Engine.Delivered);
  check_time "doomed still occupies the link until its finish" 8.0
    (Time.to_us (Engine.finish_time e d));
  check_time "unjudged transfer unaffected" 4.0 (Time.to_us (Engine.finish_time e ok))

let test_judge_inflation () =
  let e = Engine.create () in
  Engine.set_judge e (fun ~site:_ ~kind ~src:_ ~label:_ ~start:_ ~duration ->
      if kind = Resource.Link then
        Some { Engine.fault_duration = Time.us (2.5 *. Time.to_us duration); fault_drop = None }
      else None);
  let t = Engine.transfer e ~src:1 ~dst:0 ~label:"t" ~duration:(Time.us 10.0) () in
  let c = Engine.task e ~site:0 ~kind:Resource.Cpu ~label:"c" ~duration:(Time.us 10.0) () in
  Engine.run e;
  check_time "link stretched" 25.0 (Time.to_us (Engine.finish_time e t));
  check_time "cpu untouched" 10.0 (Time.to_us (Engine.finish_time e c));
  Alcotest.(check bool) "stretched transfer still delivers" true
    (Engine.outcome_of e t = Engine.Delivered)

(* Response time never exceeds total execution time (with >= 1 task). *)
let prop_response_le_total =
  QCheck.Test.make ~name:"makespan <= total busy time" ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_bound 3) (float_bound_inclusive 50.0)))
    (fun specs ->
      let e = Engine.create () in
      List.iter
        (fun (site, d) ->
          ignore (Engine.task e ~site ~kind:Resource.Cpu ~label:"w" ~duration:d ()))
        specs;
      Engine.run e;
      let st = Engine.stats e in
      Time.compare (Stats.makespan st) (Stats.total_busy st) <= 0)

(* Determinism: same submissions yield identical stats. *)
let prop_deterministic =
  QCheck.Test.make ~name:"identical runs are identical" ~count:50
    QCheck.(list_of_size Gen.(1 -- 15) (pair (int_bound 2) (float_bound_inclusive 20.0)))
    (fun specs ->
      let run_once () =
        let e = Engine.create () in
        List.iter
          (fun (site, d) ->
            ignore
              (Engine.task e ~site ~kind:Resource.Disk ~label:"w" ~duration:d ()))
          specs;
        Engine.run e;
        let st = Engine.stats e in
        (Stats.total_busy st, Stats.makespan st)
      in
      run_once () = run_once ())

(* A disabled trace must never even build its entries: the recording path
   goes through Trace.addf, whose thunk only runs when tracing is on. *)
let test_trace_addf_lazy () =
  let entry () =
    {
      Trace.tid = 0;
      label = "x";
      site = None;
      kind = None;
      start = Time.zero;
      finish = Time.zero;
      deps = [];
      attrs = [];
    }
  in
  let calls = ref 0 in
  let off = Trace.create ~enabled:false in
  Trace.addf off (fun () ->
      incr calls;
      entry ());
  Alcotest.(check int) "thunk skipped when disabled" 0 !calls;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.entries off));
  let on = Trace.create ~enabled:true in
  Trace.addf on (fun () ->
      incr calls;
      entry ());
  Alcotest.(check int) "thunk ran when enabled" 1 !calls;
  Alcotest.(check int) "recorded" 1 (List.length (Trace.entries on))

(* Task attrs flow into the trace entries; an untraced engine records none. *)
let test_task_attrs () =
  let e = Engine.create ~trace:true () in
  ignore
    (Engine.task e ~site:1 ~kind:Resource.Cpu ~label:"work"
       ~attrs:[ ("strategy", "BL"); ("phase", "P") ]
       ~duration:(Time.us 5.0) ());
  Engine.run e;
  (match Trace.entries (Engine.trace e) with
  | [ entry ] ->
    Alcotest.(check (option string)) "strategy attr" (Some "BL")
      (List.assoc_opt "strategy" entry.Trace.attrs);
    Alcotest.(check (option string)) "phase attr" (Some "P")
      (List.assoc_opt "phase" entry.Trace.attrs)
  | entries -> Alcotest.failf "expected 1 entry, got %d" (List.length entries));
  let off = Engine.create () in
  ignore
    (Engine.task off ~site:1 ~kind:Resource.Cpu ~label:"work"
       ~attrs:[ ("strategy", "BL") ]
       ~duration:(Time.us 5.0) ());
  Engine.run off;
  Alcotest.(check int) "untraced engine records nothing" 0
    (List.length (Trace.entries (Engine.trace off)))

let suite =
  [
    Alcotest.test_case "single task" `Quick test_single_task;
    Alcotest.test_case "trace addf is lazy" `Quick test_trace_addf_lazy;
    Alcotest.test_case "task attrs in trace" `Quick test_task_attrs;
    Alcotest.test_case "resource serialization" `Quick test_serialization;
    Alcotest.test_case "dependencies" `Quick test_dependencies;
    Alcotest.test_case "dynamic submission" `Quick test_dynamic_submission;
    Alcotest.test_case "link contention" `Quick test_link_contention;
    Alcotest.test_case "local transfer is free" `Quick test_local_transfer_free;
    Alcotest.test_case "fence and delay" `Quick test_fence_and_delay;
    Alcotest.test_case "re-run continues clock" `Quick test_rerun;
    Alcotest.test_case "invalid durations rejected" `Quick test_invalid_duration;
    Alcotest.test_case "stats breakdown" `Quick test_stats_breakdown;
    Alcotest.test_case "trace" `Quick test_trace;
    Alcotest.test_case "stuck diagnostics" `Quick test_stuck_diagnostics;
    Alcotest.test_case "stuck skips finished deps" `Quick test_stuck_names_failed_chain;
    Alcotest.test_case "judge outcomes" `Quick test_judge_outcomes;
    Alcotest.test_case "judge inflation" `Quick test_judge_inflation;
    QCheck_alcotest.to_alcotest prop_response_le_total;
    QCheck_alcotest.to_alcotest prop_deterministic;
  ]
