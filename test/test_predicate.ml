open Msdq_odb

let sat = function Predicate.Sat -> true | Predicate.Viol | Predicate.Blocked _ -> false
let viol = function Predicate.Viol -> true | Predicate.Sat | Predicate.Blocked _ -> false

let test_make_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty path" true
    (bad (fun () -> Predicate.make ~path:[] ~op:Predicate.Eq ~operand:(Value.Int 1)));
  Alcotest.(check bool) "null operand" true
    (bad (fun () -> Predicate.make ~path:[ "a" ] ~op:Predicate.Eq ~operand:Value.Null));
  Alcotest.(check bool) "ref operand" true
    (bad (fun () ->
         Predicate.make ~path:[ "a" ] ~op:Predicate.Eq
           ~operand:(Value.Ref (Oid.Loid.of_int 0))))

let test_simple_eval () =
  let db, _, _, `Students (john, tony, _) = Fixtures.school_db () in
  let p = Fixtures.pred "age" Predicate.Gt (Value.Int 30) in
  Alcotest.(check bool) "john age > 30" true (sat (Predicate.eval db john p));
  Alcotest.(check bool) "tony age not > 30" true (viol (Predicate.eval db tony p));
  let q = Fixtures.pred "name" Predicate.Eq (Value.Str "John") in
  Alcotest.(check bool) "name eq" true (sat (Predicate.eval db john q));
  let r = Fixtures.pred "name" Predicate.Ne (Value.Str "John") in
  Alcotest.(check bool) "name ne" true (viol (Predicate.eval db john r))

let test_nested_eval () =
  let db, _, _, `Students (john, tony, _) = Fixtures.school_db () in
  let p = Fixtures.pred "advisor.department.name" Predicate.Eq (Value.Str "CS") in
  Alcotest.(check bool) "john's advisor in CS" true (sat (Predicate.eval db john p));
  Alcotest.(check bool) "tony's advisor in EE" true (viol (Predicate.eval db tony p));
  let q = Fixtures.pred "advisor.speciality" Predicate.Eq (Value.Str "database") in
  Alcotest.(check bool) "john's advisor speciality" true (sat (Predicate.eval db john q))

(* A null value along the path blocks evaluation at the null-holding object,
   with the suffix starting at the null attribute. *)
let test_null_blocks () =
  let db, _, `Teachers (_, haley), `Students (_, tony, mary) = Fixtures.school_db () in
  let p = Fixtures.pred "advisor.speciality" Predicate.Eq (Value.Str "database") in
  (match Predicate.eval db tony p with
  | Predicate.Blocked b ->
    Alcotest.(check bool) "blocked at haley" true
      (Oid.Loid.equal (Dbobject.loid b.Predicate.obj) (Dbobject.loid haley));
    Alcotest.(check (list string)) "suffix" [ "speciality" ] b.Predicate.rest;
    Alcotest.(check bool) "cause is null" true (b.Predicate.cause = Predicate.Null_value)
  | Predicate.Sat | Predicate.Viol -> Alcotest.fail "expected blocked");
  let q = Fixtures.pred "age" Predicate.Lt (Value.Int 30) in
  match Predicate.eval db mary q with
  | Predicate.Blocked b ->
    Alcotest.(check bool) "blocked at mary herself" true
      (Oid.Loid.equal (Dbobject.loid b.Predicate.obj) (Dbobject.loid mary));
    Alcotest.(check (list string)) "suffix is whole path" [ "age" ] b.Predicate.rest
  | Predicate.Sat | Predicate.Viol -> Alcotest.fail "expected blocked"

(* A schema-level missing attribute blocks with cause Missing_attribute. *)
let test_missing_attribute_blocks () =
  let schema = Fixtures.poor_schema () in
  let db = Database.create ~name:"poor" ~schema in
  let t = Database.add db ~cls:"Teacher" [ Value.Str "Abel" ] in
  let s =
    Database.add db ~cls:"Student"
      [ Value.Str "Amy"; Value.Int 20; Value.Ref (Dbobject.loid t) ]
  in
  let p = Fixtures.pred "advisor.department.name" Predicate.Eq (Value.Str "CS") in
  match Predicate.eval db s p with
  | Predicate.Blocked b ->
    Alcotest.(check bool) "blocked at teacher" true
      (Oid.Loid.equal (Dbobject.loid b.Predicate.obj) (Dbobject.loid t));
    Alcotest.(check (list string)) "suffix" [ "department"; "name" ] b.Predicate.rest;
    Alcotest.(check bool) "cause missing attr" true
      (b.Predicate.cause = Predicate.Missing_attribute)
  | Predicate.Sat | Predicate.Viol -> Alcotest.fail "expected blocked"

(* Blocked evaluation happens even when the comparison could short-circuit:
   missing data always yields Unknown, never a guess. *)
let test_truth_mapping () =
  Alcotest.(check bool) "sat -> true" true
    (Predicate.truth_of_outcome Predicate.Sat = Truth.True);
  Alcotest.(check bool) "viol -> false" true
    (Predicate.truth_of_outcome Predicate.Viol = Truth.False)

let test_ordering_ops () =
  let db, _, _, `Students (john, _, _) = Fixtures.school_db () in
  let check op v expect =
    let p = Fixtures.pred "age" op (Value.Int v) in
    Alcotest.(check bool)
      (Printf.sprintf "age %s %d" (Predicate.op_to_string op) v)
      expect
      (sat (Predicate.eval db john p))
  in
  (* john is 31 *)
  check Predicate.Lt 32 true;
  check Predicate.Le 31 true;
  check Predicate.Gt 31 false;
  check Predicate.Ge 31 true;
  check Predicate.Ne 31 false;
  check Predicate.Eq 31 true

let test_comparison_counter () =
  let db, _, _, `Students (john, _, _) = Fixtures.school_db () in
  let meter = Meter.create () in
  let p = Fixtures.pred "age" Predicate.Eq (Value.Int 31) in
  ignore (Predicate.eval ~meter db john p);
  ignore (Predicate.eval ~meter db john p);
  Alcotest.(check int) "two comparisons" 2 (Meter.read meter).Meter.comparisons;
  (* a second meter starts from zero: no process-global state *)
  let fresh = Meter.create () in
  ignore (Predicate.eval ~meter:fresh db john p);
  Alcotest.(check int) "fresh meter" 1 (Meter.read fresh).Meter.comparisons;
  Alcotest.(check int) "first meter unchanged" 2
    (Meter.read meter).Meter.comparisons

let test_pp () =
  let p = Fixtures.pred "advisor.name" Predicate.Eq (Value.Str "Kelly") in
  Alcotest.(check string) "render" "advisor.name = \"Kelly\"" (Predicate.to_string p);
  let q = Fixtures.pred "age" Predicate.Ge (Value.Int 30) in
  Alcotest.(check string) "render int" "age >= 30" (Predicate.to_string q);
  Alcotest.(check bool) "equal" true (Predicate.equal p p);
  Alcotest.(check bool) "not equal" false (Predicate.equal p q)

let suite =
  [
    Alcotest.test_case "constructor validation" `Quick test_make_validation;
    Alcotest.test_case "simple evaluation" `Quick test_simple_eval;
    Alcotest.test_case "nested evaluation" `Quick test_nested_eval;
    Alcotest.test_case "null blocks evaluation" `Quick test_null_blocks;
    Alcotest.test_case "missing attribute blocks" `Quick test_missing_attribute_blocks;
    Alcotest.test_case "truth mapping" `Quick test_truth_mapping;
    Alcotest.test_case "ordering operators" `Quick test_ordering_ops;
    Alcotest.test_case "comparison counter" `Quick test_comparison_counter;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
