open Msdq_odb
open Msdq_fed

let ex = lazy (Paper_example.build ())

let gs () = Federation.global_schema (Lazy.force ex).Paper_example.federation

let test_global_classes () =
  let gs = gs () in
  let names = List.map (fun gc -> gc.Global_schema.gname) (Global_schema.classes gs) in
  Alcotest.(check (list string)) "classes"
    [ "Address"; "Department"; "Teacher"; "Student" ] names

(* The global schema of Figure 2: attribute unions. *)
let test_attribute_union () =
  let gs = gs () in
  let attrs gcls =
    match Global_schema.find gs gcls with
    | Some gc -> List.map (fun a -> a.Schema.aname) gc.Global_schema.attrs
    | None -> []
  in
  Alcotest.(check (list string)) "Student union"
    [ "s-no"; "name"; "age"; "advisor"; "sex"; "address" ]
    (attrs "Student");
  Alcotest.(check (list string)) "Teacher union"
    [ "name"; "department"; "speciality" ] (attrs "Teacher");
  Alcotest.(check (list string)) "Department union" [ "name"; "location" ]
    (attrs "Department")

(* Complex attributes integrate to global domain classes. *)
let test_complex_domains () =
  let gs = gs () in
  let schema = Global_schema.schema gs in
  (match Schema.attr schema ~cls:"Student" ~attr:"advisor" with
  | Some a ->
    Alcotest.(check bool) "advisor domain" true
      (Schema.equal_attr_type a.Schema.atype (Schema.Complex "Teacher"))
  | None -> Alcotest.fail "advisor missing");
  match Schema.attr schema ~cls:"Student" ~attr:"address" with
  | Some a ->
    Alcotest.(check bool) "address domain" true
      (Schema.equal_attr_type a.Schema.atype (Schema.Complex "Address"))
  | None -> Alcotest.fail "address missing"

(* Missing attributes per constituent (paper, Section 2.1): DB1's Student
   misses address; DB1's Teacher misses speciality; DB2's Teacher misses
   department. *)
let test_missing_attrs () =
  let gs = gs () in
  Alcotest.(check (list string)) "DB1 Student misses address" [ "address" ]
    (Global_schema.missing_attrs gs ~gcls:"Student" ~db:"DB1");
  Alcotest.(check (list string)) "DB2 Student misses age" [ "age" ]
    (Global_schema.missing_attrs gs ~gcls:"Student" ~db:"DB2");
  Alcotest.(check (list string)) "DB1 Teacher misses speciality" [ "speciality" ]
    (Global_schema.missing_attrs gs ~gcls:"Teacher" ~db:"DB1");
  Alcotest.(check (list string)) "DB2 Teacher misses department" [ "department" ]
    (Global_schema.missing_attrs gs ~gcls:"Teacher" ~db:"DB2");
  Alcotest.(check (list string)) "DB3 Teacher misses speciality" [ "speciality" ]
    (Global_schema.missing_attrs gs ~gcls:"Teacher" ~db:"DB3");
  Alcotest.(check (list string)) "DB1 Department misses location" [ "location" ]
    (Global_schema.missing_attrs gs ~gcls:"Department" ~db:"DB1");
  (* DB3 has no Student constituent: every attribute is missing. *)
  Alcotest.(check int) "DB3 Student misses all" 6
    (List.length (Global_schema.missing_attrs gs ~gcls:"Student" ~db:"DB3"))

let test_constituent_lookup () =
  let gs = gs () in
  Alcotest.(check (option string)) "Student in DB1" (Some "Student")
    (Global_schema.constituent_of gs ~gcls:"Student" ~db:"DB1");
  Alcotest.(check (option string)) "Student not in DB3" None
    (Global_schema.constituent_of gs ~gcls:"Student" ~db:"DB3");
  Alcotest.(check (option string)) "reverse lookup" (Some "Teacher")
    (Global_schema.global_of_local gs ~db:"DB2" ~cls:"Teacher")

let expect_conflict name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Global_schema.Conflict _ -> true)

let test_conflicts () =
  let mk_db name classes =
    (name, Database.create ~name ~schema:(Schema.create classes))
  in
  let a_int =
    Schema.{ cname = "C"; attrs = [ { aname = "x"; atype = Prim P_int } ] }
  in
  let a_str =
    Schema.{ cname = "C"; attrs = [ { aname = "x"; atype = Prim P_string } ] }
  in
  expect_conflict "type clash" (fun () ->
      Global_schema.integrate
        ~databases:[ mk_db "A" [ a_int ]; mk_db "B" [ a_str ] ]
        ~mapping:[ ("C", [ ("A", "C"); ("B", "C") ]) ]);
  expect_conflict "unknown constituent class" (fun () ->
      Global_schema.integrate
        ~databases:[ mk_db "A" [ a_int ] ]
        ~mapping:[ ("C", [ ("A", "Nope") ]) ]);
  expect_conflict "unknown database" (fun () ->
      Global_schema.integrate
        ~databases:[ mk_db "A" [ a_int ] ]
        ~mapping:[ ("C", [ ("Z", "C") ]) ]);
  expect_conflict "empty constituents" (fun () ->
      Global_schema.integrate ~databases:[ mk_db "A" [ a_int ] ]
        ~mapping:[ ("C", []) ]);
  expect_conflict "unintegrated domain class" (fun () ->
      let refclass =
        Schema.
          {
            cname = "D";
            attrs = [ { aname = "c"; atype = Complex "C" } ];
          }
      in
      Global_schema.integrate
        ~databases:[ mk_db "A" [ a_int; refclass ] ]
        ~mapping:[ ("D", [ ("A", "D") ]) ])

let test_pp () =
  let text = Format.asprintf "%a" Global_schema.pp (gs ()) in
  Alcotest.(check bool) "pp mentions Student" true
    (String.length text > 0 && Testutil.contains ~needle:"Student" text)

let suite =
  [
    Alcotest.test_case "global classes" `Quick test_global_classes;
    Alcotest.test_case "attribute union (fig 2)" `Quick test_attribute_union;
    Alcotest.test_case "complex domains" `Quick test_complex_domains;
    Alcotest.test_case "missing attributes" `Quick test_missing_attrs;
    Alcotest.test_case "constituent lookup" `Quick test_constituent_lookup;
    Alcotest.test_case "conflict detection" `Quick test_conflicts;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
