(* Small schemas and databases shared by the odb-level test suites. The
   full paper example (DB1/DB2/DB3) lives in Msdq_fed.Paper_example. *)

open Msdq_odb

let dept = Schema.{ cname = "Department"; attrs = [ { aname = "name"; atype = Prim P_string } ] }

let teacher =
  Schema.
    {
      cname = "Teacher";
      attrs =
        [
          { aname = "name"; atype = Prim P_string };
          { aname = "department"; atype = Complex "Department" };
          { aname = "speciality"; atype = Prim P_string };
        ];
    }

let student =
  Schema.
    {
      cname = "Student";
      attrs =
        [
          { aname = "name"; atype = Prim P_string };
          { aname = "age"; atype = Prim P_int };
          { aname = "advisor"; atype = Complex "Teacher" };
        ];
    }

let school_schema () = Schema.create [ dept; teacher; student ]

(* A teacher class with no [speciality] and no [department]: simulates a
   component database holding those as missing attributes. *)
let poor_teacher =
  Schema.{ cname = "Teacher"; attrs = [ { aname = "name"; atype = Prim P_string } ] }

let poor_schema () = Schema.create [ dept; poor_teacher; student ]

(* Builds a small school database:
     Department: CS, EE
     Teacher:    Kelly(CS, database), Haley(EE, null speciality)
     Teacher(for poor schema): only names
     Student:    John(31, Kelly), Tony(28, Haley), Mary(null age, Kelly) *)
let school_db () =
  let db = Database.create ~name:"school" ~schema:(school_schema ()) in
  let cs = Database.add db ~cls:"Department" [ Value.Str "CS" ] in
  let ee = Database.add db ~cls:"Department" [ Value.Str "EE" ] in
  let kelly =
    Database.add db ~cls:"Teacher"
      [ Value.Str "Kelly"; Value.Ref (Dbobject.loid cs); Value.Str "database" ]
  in
  let haley =
    Database.add db ~cls:"Teacher"
      [ Value.Str "Haley"; Value.Ref (Dbobject.loid ee); Value.Null ]
  in
  let john =
    Database.add db ~cls:"Student"
      [ Value.Str "John"; Value.Int 31; Value.Ref (Dbobject.loid kelly) ]
  in
  let tony =
    Database.add db ~cls:"Student"
      [ Value.Str "Tony"; Value.Int 28; Value.Ref (Dbobject.loid haley) ]
  in
  let mary =
    Database.add db ~cls:"Student"
      [ Value.Str "Mary"; Value.Null; Value.Ref (Dbobject.loid kelly) ]
  in
  (db, `Depts (cs, ee), `Teachers (kelly, haley), `Students (john, tony, mary))

let pred path op operand =
  Predicate.make ~path:(Path.of_string path) ~op ~operand
