(* The defining difference between BL and PL (paper, Figure 8): BL evaluates
   local predicates before dispatching assistant checks; PL dispatches first
   so remote checking overlaps local evaluation. Verified on the engine
   traces of real runs. *)

open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec

let traced strategy =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  let _, metrics = Strategy.run strategy fed analysis in
  Trace.entries metrics.Strategy.trace

let find_all label entries =
  List.filter (fun e -> String.equal e.Trace.label label) entries

let first_start label entries =
  match find_all label entries with
  | [] -> Alcotest.fail ("no task labelled " ^ label)
  | l ->
    List.fold_left (fun acc e -> Float.min acc (Time.to_us e.Trace.start)) Float.infinity l

let last_finish label entries =
  match find_all label entries with
  | [] -> Alcotest.fail ("no task labelled " ^ label)
  | l -> List.fold_left (fun acc e -> Float.max acc (Time.to_us e.Trace.finish)) 0.0 l

(* BL: every request leaves only after its origin's local evaluation
   finished (P before O). *)
let test_bl_order () =
  let entries = traced Strategy.Bl in
  let eval_done =
    List.fold_left
      (fun acc e ->
        if String.equal e.Trace.label "local-eval" then
          Float.min acc (Time.to_us e.Trace.finish)
        else acc)
      Float.infinity entries
  in
  List.iter
    (fun req ->
      Alcotest.(check bool) "request after some local evaluation" true
        (Time.to_us req.Trace.start +. 1e-9 >= eval_done))
    (find_all "ship-requests" entries);
  (* strictly: each origin's own eval precedes its requests; the paper
     example has per-site eval before dispatch, so the earliest request
     cannot precede the earliest eval completion *)
  Alcotest.(check bool) "requests exist" true (find_all "ship-requests" entries <> [])

(* PL: requests are dispatched before local evaluation completes — remote
   checks overlap phase P. *)
let test_pl_overlap () =
  let entries = traced Strategy.Pl in
  let first_req = first_start "ship-requests" entries in
  let eval_finish = last_finish "local-eval" entries in
  Alcotest.(check bool)
    (Printf.sprintf "requests (%.1fus) leave before evaluation ends (%.1fus)"
       first_req eval_finish)
    true (first_req < eval_finish);
  (* And the probe precedes everything CPU-wise. *)
  let first_probe = first_start "probe" entries in
  let first_eval = first_start "local-eval" entries in
  Alcotest.(check bool) "probe before eval" true (first_probe <= first_eval)

(* In both, certification is last: it never starts before the final verdict
   or result transfer finishes. *)
let test_certify_last () =
  List.iter
    (fun strategy ->
      let entries = traced strategy in
      let certify_start = first_start "certify" entries in
      List.iter
        (fun label ->
          List.iter
            (fun e ->
              Alcotest.(check bool)
                (Strategy.to_string strategy ^ ": certify after " ^ label)
                true
                (certify_start +. 1e-9 >= Time.to_us e.Trace.finish))
            (find_all label entries))
        [ "ship-results"; "ship-verdicts" ])
    [ Strategy.Bl; Strategy.Pl ]

(* CA's pipeline: every extent ship precedes integration, which precedes
   evaluation. *)
let test_ca_pipeline () =
  let entries = traced Strategy.Ca in
  let integrate_start = first_start "integrate" entries in
  List.iter
    (fun e ->
      Alcotest.(check bool) "integrate after all ships" true
        (integrate_start +. 1e-9 >= Time.to_us e.Trace.finish))
    (find_all "ship-objects" entries);
  let eval_start = first_start "global-eval" entries in
  Alcotest.(check bool) "eval after integrate" true
    (eval_start +. 1e-9 >= last_finish "integrate" entries)

let suite =
  [
    Alcotest.test_case "BL: P before O" `Quick test_bl_order;
    Alcotest.test_case "PL: O overlaps P" `Quick test_pl_overlap;
    Alcotest.test_case "certification is last" `Quick test_certify_last;
    Alcotest.test_case "CA pipeline" `Quick test_ca_pipeline;
  ]
