(* Exportable run reports: golden files for the JSON metrics document and
   the Chrome trace, plus the bench schema validator.

   The golden tests pin the exact bytes of the exports. Everything fed into
   them is deterministic: simulated times, counter values, stable JSON field
   order. Host spans carry wall-clock timestamps, so the trace golden runs
   with host spans stripped. To regenerate after an intentional format
   change: dune exec test/gen_golden.exe. *)

open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_exp
module Json = Msdq_obs.Json

let bl_run () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let analysis =
    Analysis.analyze
      (Global_schema.schema (Federation.global_schema fed))
      (Parser.parse Paper_example.q1)
  in
  Strategy.run Strategy.Bl fed analysis

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_metrics_golden () =
  let answer, m = bl_run () in
  let got = Json.to_string ~indent:2 (Run_report.run_to_json answer m) ^ "\n" in
  let want = read_file "golden/bl_q1_report.json" in
  Alcotest.(check string) "report bytes" want got

let test_trace_golden () =
  let _, m = bl_run () in
  let sim_only = { m with Strategy.host_spans = [] } in
  let got =
    Json.to_string ~indent:2 (Run_report.chrome_trace [ sim_only ]) ^ "\n"
  in
  let want = read_file "golden/bl_q1_trace.json" in
  Alcotest.(check string) "trace bytes" want got

(* Acceptance shape: one complete event per engine task, attributed to
   strategy, site (pid) and phase. *)
let test_trace_attribution () =
  let _, m = bl_run () in
  let doc = Run_report.chrome_trace [ m ] in
  let events =
    match Option.(Json.member "traceEvents" doc |> map Json.to_list |> join) with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents"
  in
  let completes =
    List.filter
      (fun e -> Option.(Json.member "ph" e |> map Json.to_str |> join) = Some "X")
      events
  in
  let n_tasks =
    List.length (Msdq_simkit.Trace.entries m.Strategy.trace)
    + List.length m.Strategy.host_spans
  in
  Alcotest.(check int) "one complete event per task and host span" n_tasks
    (List.length completes);
  let sim_events =
    List.filter
      (fun e ->
        Option.(Json.member "pid" e |> map Json.to_int |> join)
        <> Some Msdq_obs.Tracer.host_pid)
      completes
  in
  Alcotest.(check bool) "simulated events exist" true (sim_events <> []);
  List.iter
    (fun e ->
      let arg k =
        Option.(
          Json.member "args" e |> map (Json.member k) |> join |> map Json.to_str
          |> join)
      in
      Alcotest.(check (option string)) "strategy attributed" (Some "BL")
        (arg "strategy");
      match Option.(Json.member "name" e |> map Json.to_str |> join) with
      | Some "answer" -> () (* the fence carries no phase *)
      | _ ->
        Alcotest.(check bool) "phase is O, P or I" true
          (match arg "phase" with
          | Some ("O" | "P" | "I") -> true
          | _ -> false))
    sim_events

let test_utilization_renders () =
  let _, m = bl_run () in
  let s = Format.asprintf "%a" Run_report.pp_utilization m in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions the global site" true (contains "global" s);
  Alcotest.(check bool) "has the phase columns" true
    (contains "O" s && contains "P" s && contains "I" s)

let test_figure_json () =
  let fig = Figures.fig10 ~samples:2 ~seed:7 () in
  let j = Run_report.figure_to_json fig in
  Alcotest.(check (option string)) "id" (Some "fig10")
    Option.(Json.member "id" j |> map Json.to_str |> join);
  let series =
    match Option.(Json.member "series" j |> map Json.to_list |> join) with
    | Some s -> s
    | None -> Alcotest.fail "no series"
  in
  Alcotest.(check int) "CA, BL, PL" 3 (List.length series);
  match Json.of_string (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "roundtrips" true (j = j')
  | Error msg -> Alcotest.fail msg

let parallel_section =
  {
    Run_report.jobs = 4;
    grid_points = 21;
    seq_s = 1.2;
    par_s = 0.4;
    speedup = 3.0;
  }

let fault_sweep_section =
  {
    Fault_sweep.id = "fault-sweep";
    title = "robustness";
    xlabel = "site availability";
    xs = [| 0.8; 1.0 |];
    samples = 2;
    seed = 1;
    series =
      [
        {
          Fault_sweep.label = "BL";
          responses = [| 0.2; 0.1 |];
          recalls = [| 0.9; 1.0 |];
        };
        {
          Fault_sweep.label = "fail-stop";
          responses = [| 0.2; 0.1 |];
          recalls = [| 0.0; 1.0 |];
        };
      ];
  }

let recovery_sweep_section =
  {
    Fault_sweep.rid = "recovery-sweep";
    rtitle = "recovery";
    rxlabel = "site availability";
    rxs = [| 0.8; 1.0 |];
    rsamples = 2;
    rseed = 1;
    rseries =
      [
        {
          Fault_sweep.r_label = "BL+retry";
          r_responses = [| 0.2; 0.1 |];
          r_recalls = [| 0.8; 0.9 |];
          r_demoted = [| 1.5; 0.5 |];
        };
        {
          Fault_sweep.r_label = "BL+failover";
          r_responses = [| 0.2; 0.1 |];
          r_recalls = [| 0.95; 1.0 |];
          r_demoted = [| 0.5; 0.0 |];
        };
      ];
  }

let serve_sweep_section =
  {
    Serve_sweep.id = "serve-sweep";
    title = "serve";
    xlabel = "cache capacity (KiB)";
    xs = [| 0.0; 16.0 |];
    windows_us = [| 0.0; 500.0 |];
    queries = 6;
    samples = 2;
    seed = 1;
    series =
      [
        {
          Serve_sweep.label = "BL w=0us";
          strategy = "BL";
          window_us = 0.0;
          throughputs = [| 120.0; 150.0 |];
          speedups = [| 1.0; 1.25 |];
          hits = [| 0.0; 2.5 |];
        };
      ];
  }

let parallel_json =
  Json.Obj
    [
      ("jobs", Json.Int 4);
      ("grid_points", Json.Int 21);
      ("seq_s", Json.Float 1.2);
      ("par_s", Json.Float 0.4);
      ("speedup", Json.Float 3.0);
    ]

let latency_section =
  [
    ( "BL",
      {
        Msdq_simkit.Stats.n = 8;
        mean_us = 5000.0;
        p50_us = 4000.0;
        p90_us = 9000.0;
        p99_us = 9500.0;
        max_us = 9800.0;
      } );
  ]

let auto_sweep_section =
  {
    Auto_sweep.id = "auto-sweep";
    title = "AUTO vs fixed strategies";
    queries = 8;
    distinct = 4;
    seed = 1;
    spacing_us = 20_000.0;
    fixed =
      [
        { Auto_sweep.f_strategy = Strategy.Ca; f_makespan_s = 0.30 };
        { Auto_sweep.f_strategy = Strategy.Bl; f_makespan_s = 0.25 };
        { Auto_sweep.f_strategy = Strategy.Pl; f_makespan_s = 0.28 };
      ];
    auto_makespan_s = 0.24;
    decisions = [ ("CA", 2); ("BL", 4); ("PL", 2) ];
    switches = 0;
    rank_matches = 4;
    rank_match_rate = 1.0;
  }

let overload_sweep_section =
  let point policy multiplier p99 =
    {
      Overload_sweep.pt_policy = policy;
      pt_multiplier = multiplier;
      pt_offered = 8;
      pt_admitted = 6;
      pt_shed = 2;
      pt_goodput = 5.0;
      pt_deadline_hits = 6;
      pt_hit_rate = 1.0;
      pt_p50_ms = p99 /. 2.0;
      pt_p99_ms = p99;
      pt_demoted_rows = 0;
      pt_abandoned_checks = 0;
    }
  in
  let row policy p99s =
    List.map2 (fun m p -> point policy m p) [ 0.5; 1.0; 2.0; 3.0 ] p99s
  in
  {
    Overload_sweep.id = "overload-sweep";
    title = "Goodput and tail latency vs offered load and shed policy";
    seed = 1;
    queries = 8;
    queue_limit = 2;
    solo_response_ms = 10.0;
    deadline_ms = 18.0;
    multipliers = [| 0.5; 1.0; 2.0; 3.0 |];
    policies = [ "naive"; "reject-newest"; "reject-oldest"; "degrade" ];
    points =
      row "naive" [ 10.0; 10.0; 15.0; 30.0 ]
      @ row "reject-newest" [ 10.0; 10.0; 18.0; 19.0 ]
      @ row "reject-oldest" [ 10.0; 10.0; 12.0; 10.0 ]
      @ row "degrade" [ 10.0; 12.0; 40.0; 50.0 ];
    cap_p99_ms = 10.0;
  }

let gray_sweep_section =
  let point policy kind severity ~demoted ~mean =
    {
      Gray_sweep.pt_policy = policy;
      pt_kind = kind;
      pt_severity = severity;
      pt_queries = 8;
      pt_demoted_rows = demoted;
      pt_abandoned_checks = demoted;
      pt_mean_ms = mean;
      pt_p99_ms = mean *. 2.0;
      pt_gray_sites = 3;
    }
  in
  let cells policy ~demoted ~mean =
    List.concat_map
      (fun kind ->
        List.map
          (fun sev -> point policy kind sev ~demoted ~mean)
          Gray_sweep.severities)
      Gray_sweep.kinds
  in
  {
    Gray_sweep.id = "gray-sweep";
    title = "Static vs adaptive retry timeouts across gray-failure kinds";
    seed = 1;
    queries = 8;
    drop = 0.15;
    static_timeout_ms = 4.0;
    kinds = Gray_sweep.kinds;
    severities = Gray_sweep.severities;
    policies = Gray_sweep.policies;
    points =
      cells Gray_sweep.static_policy ~demoted:4 ~mean:20.0
      @ cells Gray_sweep.adaptive_policy ~demoted:4 ~mean:15.0;
  }

let microbench_section =
  {
    Run_report.mb_objects = 20_000;
    mb_boxed_eval = 1.0e6;
    mb_columnar_eval = 1.2e7;
    mb_eval_speedup = 12.0;
    mb_boxed_sig = 2.0e7;
    mb_bitset_sig = 6.0e7;
    mb_sig_speedup = 3.0;
    mb_certify_rows = 500;
    mb_certify_rows_per_s = 4.0e5;
  }

let test_bench_validation () =
  let good =
    Run_report.bench_to_json ~generated_at:"2026-01-01T00:00:00Z" ~seed:1996
      ~parallel:parallel_section ~fault_sweep:fault_sweep_section
      ~recovery_sweep:recovery_sweep_section ~serve_sweep:serve_sweep_section
      ~latency:latency_section ~auto_sweep:auto_sweep_section
      ~overload_sweep:overload_sweep_section ~gray_sweep:gray_sweep_section
      ~microbench:microbench_section
      ~strategies:[ ("BL", 0.1, 0.05) ]
      ~wall:[ ("msdq/parse-q1", 2500.0) ]
  in
  (match Run_report.validate_bench good with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid document rejected: %s" msg);
  (* A /1 document (no seed, no parallel section) must stay valid: CI's
     accumulated perf trajectory spans the schema bump. *)
  let v1 =
    Json.Obj
      [
        ("schema", Json.Str Run_report.bench_schema_v1);
        ("generated_at", Json.Str "2026-01-01T00:00:00Z");
        ( "strategies",
          Json.Arr
            [
              Json.Obj
                [
                  ("name", Json.Str "BL");
                  ("total_s", Json.Float 0.1);
                  ("response_s", Json.Float 0.05);
                ];
            ] );
        ("wall", Json.Arr []);
      ]
  in
  (match Run_report.validate_bench v1 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid /1 document rejected: %s" msg);
  (* Likewise a /2 document (no fault_sweep section). *)
  let strategies_json =
    Json.Arr
      [
        Json.Obj
          [
            ("name", Json.Str "BL");
            ("total_s", Json.Float 0.1);
            ("response_s", Json.Float 0.05);
          ];
      ]
  in
  let v2 =
    Json.Obj
      [
        ("schema", Json.Str Run_report.bench_schema_v2);
        ("generated_at", Json.Str "2026-01-01T00:00:00Z");
        ("seed", Json.Int 1996);
        ("parallel", parallel_json);
        ("strategies", strategies_json);
        ("wall", Json.Arr []);
      ]
  in
  (match Run_report.validate_bench v2 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid /2 document rejected: %s" msg);
  let reject name j =
    match Run_report.validate_bench j with
    | Ok () -> Alcotest.failf "%s accepted" name
    | Error _ -> ()
  in
  reject "empty object" (Json.Obj []);
  reject "wrong schema"
    (Json.Obj
       [
         ("schema", Json.Str "msdq-bench/999");
         ("generated_at", Json.Str "t");
         ("strategies", Json.Arr [ Json.Obj [] ]);
         ("wall", Json.Arr []);
       ]);
  reject "empty strategies"
    (Json.Obj
       [
         ("schema", Json.Str Run_report.bench_schema);
         ("generated_at", Json.Str "t");
         ("strategies", Json.Arr []);
         ("wall", Json.Arr []);
       ]);
  reject "negative time"
    (Run_report.bench_to_json ~generated_at:"t" ~seed:1996
       ~parallel:parallel_section ~fault_sweep:fault_sweep_section
       ~recovery_sweep:recovery_sweep_section ~serve_sweep:serve_sweep_section
       ~latency:latency_section ~auto_sweep:auto_sweep_section
       ~overload_sweep:overload_sweep_section ~gray_sweep:gray_sweep_section
      ~microbench:microbench_section
       ~strategies:[ ("BL", -1.0, 0.05) ]
       ~wall:[]);
  (* Newer schemas declared without their sections: the validator must
     demand them. *)
  reject "/2 without parallel"
    (Json.Obj
       [
         ("schema", Json.Str Run_report.bench_schema_v2);
         ("generated_at", Json.Str "t");
         ("seed", Json.Int 1);
         ("strategies", strategies_json);
         ("wall", Json.Arr []);
       ]);
  reject "/3 without fault_sweep"
    (Json.Obj
       [
         ("schema", Json.Str Run_report.bench_schema_v3);
         ("generated_at", Json.Str "t");
         ("seed", Json.Int 1);
         ("parallel", parallel_json);
         ("strategies", strategies_json);
         ("wall", Json.Arr []);
       ]);
  reject "/4 without recovery_sweep"
    (Json.Obj
       [
         ("schema", Json.Str Run_report.bench_schema_v4);
         ("generated_at", Json.Str "t");
         ("seed", Json.Int 1);
         ("parallel", parallel_json);
         ("fault_sweep", Run_report.fault_sweep_to_json fault_sweep_section);
         ("strategies", strategies_json);
         ("wall", Json.Arr []);
       ]);
  reject "/5 without serve_sweep"
    (Json.Obj
       [
         ("schema", Json.Str Run_report.bench_schema_v5);
         ("generated_at", Json.Str "t");
         ("seed", Json.Int 1);
         ("parallel", parallel_json);
         ("fault_sweep", Run_report.fault_sweep_to_json fault_sweep_section);
         ( "recovery_sweep",
           Run_report.recovery_sweep_to_json recovery_sweep_section );
         ("strategies", strategies_json);
         ("wall", Json.Arr []);
       ]);
  reject "/6 without latency"
    (Json.Obj
       [
         ("schema", Json.Str Run_report.bench_schema_v6);
         ("generated_at", Json.Str "t");
         ("seed", Json.Int 1);
         ("parallel", parallel_json);
         ("fault_sweep", Run_report.fault_sweep_to_json fault_sweep_section);
         ( "recovery_sweep",
           Run_report.recovery_sweep_to_json recovery_sweep_section );
         ("serve_sweep", Run_report.serve_sweep_to_json serve_sweep_section);
         ("strategies", strategies_json);
         ("wall", Json.Arr []);
       ]);
  (* A /5 document without the latency section stays valid. *)
  (match
     Run_report.validate_bench
       (Json.Obj
          [
            ("schema", Json.Str Run_report.bench_schema_v5);
            ("generated_at", Json.Str "t");
            ("seed", Json.Int 1);
            ("parallel", parallel_json);
            ("fault_sweep", Run_report.fault_sweep_to_json fault_sweep_section);
            ( "recovery_sweep",
              Run_report.recovery_sweep_to_json recovery_sweep_section );
            ("serve_sweep", Run_report.serve_sweep_to_json serve_sweep_section);
            ("strategies", strategies_json);
            ("wall", Json.Arr []);
          ])
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid /5 document rejected: %s" msg);
  (* The /7 section: a /7 document must carry it, a /6 one need not. *)
  let obj_map f = function Json.Obj l -> Json.Obj (f l) | j -> j in
  let without key = obj_map (List.filter (fun (k, _) -> k <> key)) in
  let with_schema s =
    obj_map
      (List.map (fun (k, v) ->
           if String.equal k "schema" then (k, Json.Str s) else (k, v)))
  in
  reject "/7 without auto_sweep" (without "auto_sweep" good);
  (* The /10 section: a /10 document must carry a well-formed microbench,
     a /9 one need not. *)
  reject "/10 without microbench" (without "microbench" good);
  (match
     Run_report.validate_bench
       (with_schema Run_report.bench_schema_v9 (without "microbench" good))
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid /9 document rejected: %s" msg);
  let with_microbench m =
    Run_report.bench_to_json ~generated_at:"t" ~seed:1
      ~parallel:parallel_section ~fault_sweep:fault_sweep_section
      ~recovery_sweep:recovery_sweep_section ~serve_sweep:serve_sweep_section
      ~latency:latency_section ~auto_sweep:auto_sweep_section
      ~overload_sweep:overload_sweep_section ~gray_sweep:gray_sweep_section
      ~microbench:m
      ~strategies:[ ("BL", 0.1, 0.05) ]
      ~wall:[]
  in
  reject "non-positive microbench speedup"
    (with_microbench
       { microbench_section with Run_report.mb_eval_speedup = 0.0 });
  reject "microbench without objects"
    (with_microbench { microbench_section with Run_report.mb_objects = 0 });
  (match
     Run_report.validate_bench
       (with_schema Run_report.bench_schema_v6 (without "auto_sweep" good))
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid /6 document rejected: %s" msg);
  let with_parallel fields =
    Run_report.bench_to_json ~generated_at:"t" ~seed:1 ~parallel:fields
      ~fault_sweep:fault_sweep_section ~recovery_sweep:recovery_sweep_section
      ~serve_sweep:serve_sweep_section ~latency:latency_section
      ~auto_sweep:auto_sweep_section
      ~overload_sweep:overload_sweep_section ~gray_sweep:gray_sweep_section
      ~microbench:microbench_section
      ~strategies:[ ("BL", 0.1, 0.05) ]
      ~wall:[]
  in
  reject "parallel jobs < 1"
    (with_parallel { parallel_section with Run_report.jobs = 0 });
  reject "negative speedup"
    (with_parallel { parallel_section with Run_report.speedup = -2.0 });
  let with_sweep series =
    Run_report.bench_to_json ~generated_at:"t" ~seed:1
      ~parallel:parallel_section
      ~fault_sweep:{ fault_sweep_section with Fault_sweep.series }
      ~recovery_sweep:recovery_sweep_section ~serve_sweep:serve_sweep_section
      ~latency:latency_section ~auto_sweep:auto_sweep_section
      ~overload_sweep:overload_sweep_section ~gray_sweep:gray_sweep_section
      ~microbench:microbench_section
      ~strategies:[ ("BL", 0.1, 0.05) ]
      ~wall:[]
  in
  reject "empty fault_sweep series" (with_sweep []);
  reject "recall above 1"
    (with_sweep
       [ { Fault_sweep.label = "BL"; responses = [| 0.1; 0.1 |]; recalls = [| 1.5; 1.0 |] } ]);
  reject "series length mismatch"
    (with_sweep
       [ { Fault_sweep.label = "BL"; responses = [| 0.1 |]; recalls = [| 1.0 |] } ]);
  let with_rsweep rseries =
    Run_report.bench_to_json ~generated_at:"t" ~seed:1
      ~parallel:parallel_section ~fault_sweep:fault_sweep_section
      ~recovery_sweep:{ recovery_sweep_section with Fault_sweep.rseries }
      ~serve_sweep:serve_sweep_section ~latency:latency_section
      ~auto_sweep:auto_sweep_section
      ~overload_sweep:overload_sweep_section ~gray_sweep:gray_sweep_section
      ~microbench:microbench_section
      ~strategies:[ ("BL", 0.1, 0.05) ]
      ~wall:[]
  in
  reject "empty recovery_sweep series" (with_rsweep []);
  reject "recovery recall above 1"
    (with_rsweep
       [
         {
           Fault_sweep.r_label = "BL+failover";
           r_responses = [| 0.1; 0.1 |];
           r_recalls = [| 1.5; 1.0 |];
           r_demoted = [| 0.0; 0.0 |];
         };
       ]);
  reject "negative demoted mean"
    (with_rsweep
       [
         {
           Fault_sweep.r_label = "BL+failover";
           r_responses = [| 0.1; 0.1 |];
           r_recalls = [| 1.0; 1.0 |];
           r_demoted = [| -1.0; 0.0 |];
         };
       ]);
  reject "recovery series length mismatch"
    (with_rsweep
       [
         {
           Fault_sweep.r_label = "BL+failover";
           r_responses = [| 0.1 |];
           r_recalls = [| 1.0 |];
           r_demoted = [| 0.0 |];
         };
       ]);
  let with_ssweep series =
    Run_report.bench_to_json ~generated_at:"t" ~seed:1
      ~parallel:parallel_section ~fault_sweep:fault_sweep_section
      ~recovery_sweep:recovery_sweep_section
      ~serve_sweep:{ serve_sweep_section with Serve_sweep.series }
      ~latency:latency_section ~auto_sweep:auto_sweep_section
      ~overload_sweep:overload_sweep_section ~gray_sweep:gray_sweep_section
      ~microbench:microbench_section
      ~strategies:[ ("BL", 0.1, 0.05) ]
      ~wall:[]
  in
  reject "empty serve_sweep series" (with_ssweep []);
  let sserie throughputs speedups hits =
    {
      Serve_sweep.label = "BL w=0us";
      strategy = "BL";
      window_us = 0.0;
      throughputs;
      speedups;
      hits;
    }
  in
  reject "negative throughput"
    (with_ssweep [ sserie [| -1.0; 1.0 |] [| 1.0; 1.0 |] [| 0.0; 0.0 |] ]);
  reject "negative speedup mean"
    (with_ssweep [ sserie [| 1.0; 1.0 |] [| 1.0; -0.5 |] [| 0.0; 0.0 |] ]);
  reject "serve series length mismatch"
    (with_ssweep [ sserie [| 1.0 |] [| 1.0 |] [| 0.0 |] ]);
  let with_latency latency =
    Run_report.bench_to_json ~generated_at:"t" ~seed:1
      ~parallel:parallel_section ~fault_sweep:fault_sweep_section
      ~recovery_sweep:recovery_sweep_section ~serve_sweep:serve_sweep_section
      ~latency ~auto_sweep:auto_sweep_section
      ~overload_sweep:overload_sweep_section ~gray_sweep:gray_sweep_section
      ~microbench:microbench_section
      ~strategies:[ ("BL", 0.1, 0.05) ]
      ~wall:[]
  in
  let summary n p50 p90 p99 =
    {
      Msdq_simkit.Stats.n;
      mean_us = p50;
      p50_us = p50;
      p90_us = p90;
      p99_us = p99;
      max_us = p99;
    }
  in
  reject "empty latency section" (with_latency []);
  reject "negative latency quantile"
    (with_latency [ ("BL", summary 4 (-1.0) 2.0 3.0) ]);
  reject "non-monotone latency quantiles"
    (with_latency [ ("BL", summary 4 5.0 2.0 3.0) ]);
  (* An all-zero summary from an empty sample is fine. *)
  (match
     Run_report.validate_bench (with_latency [ ("BL", summary 0 0.0 0.0 0.0) ])
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "empty-sample latency summary rejected: %s" msg);
  let with_auto auto =
    Run_report.bench_to_json ~generated_at:"t" ~seed:1
      ~parallel:parallel_section ~fault_sweep:fault_sweep_section
      ~recovery_sweep:recovery_sweep_section ~serve_sweep:serve_sweep_section
      ~latency:latency_section ~auto_sweep:auto
      ~overload_sweep:overload_sweep_section ~gray_sweep:gray_sweep_section
      ~microbench:microbench_section
      ~strategies:[ ("BL", 0.1, 0.05) ]
      ~wall:[]
  in
  (* The win condition is enforced: AUTO slower than the best fixed
     strategy fails validation. *)
  reject "auto_sweep regression"
    (with_auto { auto_sweep_section with Auto_sweep.auto_makespan_s = 0.26 });
  reject "auto_sweep empty fixed"
    (with_auto { auto_sweep_section with Auto_sweep.fixed = [] });
  reject "auto_sweep rank rate above 1"
    (with_auto { auto_sweep_section with Auto_sweep.rank_match_rate = 1.5 });
  reject "auto_sweep negative switches"
    (with_auto { auto_sweep_section with Auto_sweep.switches = -1 });
  (* AUTO exactly matching the best fixed strategy passes (the tolerance
     admits ties). *)
  (match
     Run_report.validate_bench
       (with_auto { auto_sweep_section with Auto_sweep.auto_makespan_s = 0.25 })
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "AUTO tie with best fixed rejected: %s" msg);
  (* The /8 section: required at /8, not at /7; its robustness win
     condition is enforced on the document, not just printed. *)
  reject "/8 without overload_sweep" (without "overload_sweep" good);
  (match
     Run_report.validate_bench
       (with_schema Run_report.bench_schema_v7 (without "overload_sweep" good))
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid /7 document rejected: %s" msg);
  let with_overload o =
    Run_report.bench_to_json ~generated_at:"t" ~seed:1
      ~parallel:parallel_section ~fault_sweep:fault_sweep_section
      ~recovery_sweep:recovery_sweep_section ~serve_sweep:serve_sweep_section
      ~latency:latency_section ~auto_sweep:auto_sweep_section ~overload_sweep:o
      ~gray_sweep:gray_sweep_section
      ~microbench:microbench_section
      ~strategies:[ ("BL", 0.1, 0.05) ]
      ~wall:[]
  in
  let set_p99 policy multiplier p99 o =
    {
      o with
      Overload_sweep.points =
        List.map
          (fun (p : Overload_sweep.point) ->
            if
              String.equal p.Overload_sweep.pt_policy policy
              && p.Overload_sweep.pt_multiplier = multiplier
            then { p with Overload_sweep.pt_p99_ms = p99 }
            else p)
          o.Overload_sweep.points;
    }
  in
  (* A rejecting policy's p99 escaping twice the at-capacity p99 at an
     overloaded point is the regression the section exists to catch. *)
  reject "overload tail-bound regression"
    (with_overload (set_p99 "reject-newest" 3.0 25.0 overload_sweep_section));
  reject "overload naive p99 drops under load"
    (with_overload (set_p99 "naive" 2.0 5.0 overload_sweep_section));
  reject "overload sweep never overloaded"
    (with_overload (set_p99 "naive" 3.0 15.0 overload_sweep_section));
  reject "overload nonpositive cap_p99"
    (with_overload
       { overload_sweep_section with Overload_sweep.cap_p99_ms = 0.0 });
  (* degrade admits everything and is reported but exempt from the tail
     bound. *)
  match
    Run_report.validate_bench
      (with_overload (set_p99 "degrade" 3.0 500.0 overload_sweep_section))
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "degrade row wrongly held to the bound: %s" msg

let suite =
  [
    Alcotest.test_case "metrics golden" `Quick test_metrics_golden;
    Alcotest.test_case "trace golden" `Quick test_trace_golden;
    Alcotest.test_case "trace attribution" `Quick test_trace_attribution;
    Alcotest.test_case "utilization table" `Quick test_utilization_renders;
    Alcotest.test_case "figure json" `Quick test_figure_json;
    Alcotest.test_case "bench validation" `Quick test_bench_validation;
  ]
