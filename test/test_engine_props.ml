(* Property tests of the discrete-event engine over random task DAGs.

   The submission API only allows dependencies on already-created tasks, so
   every graph is a DAG by construction and [run] always terminates. *)

open Msdq_simkit

(* A random DAG spec: per task, a site, a duration, and dependency edges to
   strictly earlier tasks. *)
let gen_dag =
  QCheck.Gen.(
    let* n = 1 -- 25 in
    let* specs =
      flatten_l
        (List.init n (fun i ->
             let* site = 0 -- 3 in
             let* kind = oneofl Resource.[ Cpu; Disk ] in
             let* duration = float_bound_inclusive 20.0 in
             let* deps =
               if i = 0 then return []
               else
                 let* k = 0 -- min 3 i in
                 list_repeat k (0 -- (i - 1))
             in
             return (site, kind, duration, deps)))
    in
    return specs)

let build specs =
  let e = Engine.create () in
  let handles = Array.make (List.length specs) None in
  List.iteri
    (fun i (site, kind, duration, deps) ->
      let deps =
        List.filter_map (fun j -> handles.(j)) (List.sort_uniq compare deps)
      in
      let h =
        Engine.task e ~deps ~site ~kind ~label:(Printf.sprintf "t%d" i)
          ~duration ()
      in
      handles.(i) <- Some h)
    specs;
  Engine.run e;
  (e, handles)

let arbitrary_dag = QCheck.make gen_dag

(* Critical path through the dependency edges alone is a lower bound on the
   makespan (resource contention can only add). *)
let prop_critical_path =
  QCheck.Test.make ~name:"makespan >= dependency critical path" ~count:200
    arbitrary_dag
    (fun specs ->
      let e, _ = build specs in
      let n = List.length specs in
      let cp = Array.make n 0.0 in
      List.iteri
        (fun i (_, _, duration, deps) ->
          let start =
            List.fold_left (fun acc j -> Float.max acc cp.(j)) 0.0 deps
          in
          cp.(i) <- start +. duration)
        specs;
      let bound = Array.fold_left Float.max 0.0 cp in
      Time.to_us (Stats.makespan (Engine.stats e)) +. 1e-6 >= bound)

(* Work conservation: total busy time equals the sum of durations. *)
let prop_work_conservation =
  QCheck.Test.make ~name:"total busy time = sum of durations" ~count:200
    arbitrary_dag
    (fun specs ->
      let e, _ = build specs in
      let expect = List.fold_left (fun acc (_, _, d, _) -> acc +. d) 0.0 specs in
      Float.abs (Time.to_us (Stats.total_busy (Engine.stats e)) -. expect) < 1e-6)

(* Tasks never start before their dependencies finish, and never overlap on
   the same resource: finish - duration >= every dep's finish. *)
let prop_dependencies_respected =
  QCheck.Test.make ~name:"tasks start after their dependencies" ~count:200
    arbitrary_dag
    (fun specs ->
      let e, handles = build specs in
      List.for_all
        (fun i ->
          let _, _, duration, deps = List.nth specs i in
          match handles.(i) with
          | None -> false
          | Some h ->
            let start = Time.to_us (Engine.finish_time e h) -. duration in
            List.for_all
              (fun j ->
                match handles.(j) with
                | None -> false
                | Some d -> start +. 1e-6 >= Time.to_us (Engine.finish_time e d))
              deps)
        (List.init (List.length specs) (fun i -> i)))

(* Makespan is bounded above by the total work (everything serialized). *)
let prop_makespan_bounds =
  QCheck.Test.make ~name:"max duration <= makespan <= total work" ~count:200
    arbitrary_dag
    (fun specs ->
      let e, _ = build specs in
      let m = Time.to_us (Stats.makespan (Engine.stats e)) in
      let total = List.fold_left (fun acc (_, _, d, _) -> acc +. d) 0.0 specs in
      let longest = List.fold_left (fun acc (_, _, d, _) -> Float.max acc d) 0.0 specs in
      m +. 1e-6 >= longest && m <= total +. 1e-6)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_critical_path;
      prop_work_conservation;
      prop_dependencies_respected;
      prop_makespan_bounds;
    ]
