open Msdq_odb
open Msdq_fed
open Msdq_workload

let test_generation_basics () =
  let fed = Synth.generate Synth.default in
  Alcotest.(check int) "three databases" 3 (List.length (Federation.databases fed));
  Alcotest.(check bool) "objects exist" true (Federation.total_objects fed > 0);
  Alcotest.(check bool) "entities registered" true
    (Goid_table.entity_count (Federation.goids fed) > 0)

let test_deterministic () =
  let summary cfg =
    let fed = Synth.generate cfg in
    ( Federation.total_objects fed,
      Goid_table.entity_count (Federation.goids fed),
      List.map
        (fun (n, db) -> (n, Database.cardinality db))
        (Federation.databases fed) )
  in
  Alcotest.(check bool) "same seed same federation" true
    (summary Synth.default = summary Synth.default);
  Alcotest.(check bool) "different seed differs" true
    (summary Synth.default <> summary { Synth.default with Synth.seed = 43 })

(* Isomeric copies must be consistent — the property the whole equivalence
   story rests on. *)
let test_consistency () =
  for seed = 0 to 19 do
    let fed = Synth.generate { Synth.default with Synth.seed } in
    let conflicts =
      Isomerism.check_consistency (Federation.global_schema fed)
        ~databases:(Federation.databases fed) (Federation.goids fed)
    in
    if conflicts <> [] then
      Alcotest.fail
        (Format.asprintf "seed %d: %d conflicts, e.g. %a" seed
           (List.length conflicts) Isomerism.pp_conflict (List.hd conflicts))
  done

(* Missing attributes actually occur across the generated constituents. *)
let test_heterogeneity_present () =
  let fed = Synth.generate Synth.default in
  let gs = Federation.global_schema fed in
  let some_missing =
    List.exists
      (fun gc ->
        List.exists
          (fun (db, _) ->
            Global_schema.missing_attrs gs ~gcls:gc.Global_schema.gname ~db <> [])
          (Federation.databases fed))
      (Global_schema.classes gs)
  in
  Alcotest.(check bool) "some constituent misses attributes" true some_missing

(* Null values occur. *)
let test_nulls_present () =
  let fed = Synth.generate Synth.default in
  let has_null =
    List.exists
      (fun (_, db) ->
        List.exists
          (fun cd ->
            List.exists Dbobject.has_null (Database.extent db cd.Schema.cname))
          (Schema.classes (Database.schema db)))
      (Federation.databases fed)
  in
  Alcotest.(check bool) "nulls generated" true has_null

(* Isomerism occurs: some entity has more than one copy. *)
let test_isomers_present () =
  let fed = Synth.generate Synth.default in
  let table = Federation.goids fed in
  let multi =
    List.exists
      (fun gc ->
        List.exists
          (fun g -> List.length (Goid_table.locals_of table g) > 1)
          (Goid_table.goids_of_class table ~gcls:gc.Global_schema.gname))
      (Global_schema.classes (Federation.global_schema fed))
  in
  Alcotest.(check bool) "isomeric entities exist" true multi

let test_single_class_chain () =
  let cfg = { Synth.default with Synth.n_classes = 1; seed = 5 } in
  let fed = Synth.generate cfg in
  Alcotest.(check bool) "generates" true (Federation.total_objects fed > 0)

let test_query_generation () =
  let cfg = Synth.default in
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 50 do
    let q = Synth.random_query rng cfg ~disjunctive:false in
    Alcotest.(check string) "root" "K0" q.Msdq_query.Ast.range_class;
    Alcotest.(check bool) "conjunctive" true
      (Msdq_query.Cond.is_conjunctive q.Msdq_query.Ast.where);
    let qd = Synth.random_query rng cfg ~disjunctive:true in
    Alcotest.(check bool) "has atoms" true
      (List.length (Msdq_query.Cond.atoms qd.Msdq_query.Ast.where) >= 1)
  done

let suite =
  [
    Alcotest.test_case "generation basics" `Quick test_generation_basics;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "isomeric consistency (20 seeds)" `Quick test_consistency;
    Alcotest.test_case "heterogeneity present" `Quick test_heterogeneity_present;
    Alcotest.test_case "nulls present" `Quick test_nulls_present;
    Alcotest.test_case "isomers present" `Quick test_isomers_present;
    Alcotest.test_case "single-class chain" `Quick test_single_class_chain;
    Alcotest.test_case "query generation" `Quick test_query_generation;
  ]
