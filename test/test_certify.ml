open Msdq_fed
open Msdq_query
open Msdq_exec

let setup () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let analysis = Analysis.analyze schema (Parser.parse Paper_example.q1) in
  (ex, fed, analysis)

let full_localized fed analysis =
  let results =
    List.map (fun db -> Local_eval.run fed analysis ~db) [ "DB1"; "DB2" ]
  in
  let built =
    List.map2
      (fun db (r : Local_result.t) ->
        Checks.build fed analysis ~db ~root_class:"Student"
          ~items:
            (List.concat_map
               (fun (row : Local_result.row) -> row.Local_result.unsolved)
               r.Local_result.rows))
      [ "DB1"; "DB2" ] results
  in
  let requests = List.concat_map (fun b -> b.Checks.requests) built in
  let by_target db =
    List.filter (fun (r : Checks.request) -> r.Checks.target_db = db) requests
  in
  let verdicts =
    List.concat_map
      (fun db -> (Checks.serve fed ~db (by_target db)).Checks.verdicts)
      [ "DB1"; "DB2"; "DB3" ]
  in
  Certify.run fed analysis ~results ~verdicts

(* The end of the paper's Section 2.3 walk: certain (Hedy, Kelly), maybe
   (Tony, Haley); John eliminated through his absent isomer, Mary through
   the violated department check. *)
let test_paper_outcome () =
  let _, fed, analysis = setup () in
  let out = full_localized fed analysis in
  let answer = out.Certify.answer in
  (match Answer.certain answer with
  | [ row ] ->
    Alcotest.(check (list string)) "certain (Hedy, Kelly)" [ "Hedy"; "Kelly" ]
      (List.map Msdq_odb.Value.to_string row.Answer.values)
  | rows -> Alcotest.fail (Printf.sprintf "%d certain rows" (List.length rows)));
  (match Answer.maybe answer with
  | [ row ] ->
    Alcotest.(check (list string)) "maybe (Tony, Haley)" [ "Tony"; "Haley" ]
      (List.map Msdq_odb.Value.to_string row.Answer.values)
  | rows -> Alcotest.fail (Printf.sprintf "%d maybe rows" (List.length rows)));
  Alcotest.(check int) "John and Mary eliminated at the global site" 2
    out.Certify.eliminated;
  Alcotest.(check int) "Hedy promoted to certain" 1 out.Certify.promoted;
  Alcotest.(check int) "no conflicts" 0 out.Certify.conflicts

(* Without any verdicts, Hedy stays maybe (her department check is pending)
   and Mary survives as maybe; John is still eliminated by his missing
   isomer in R2. *)
let test_without_verdicts () =
  let _, fed, analysis = setup () in
  let results =
    List.map (fun db -> Local_eval.run fed analysis ~db) [ "DB1"; "DB2" ]
  in
  let out = Certify.run fed analysis ~results ~verdicts:[] in
  let answer = out.Certify.answer in
  Alcotest.(check int) "no certain rows" 0 (List.length (Answer.certain answer));
  Alcotest.(check int) "three maybes (Tony, Mary, Hedy)" 3
    (List.length (Answer.maybe answer));
  Alcotest.(check int) "only John eliminated" 1 out.Certify.eliminated

(* Certification with a single database's results: cross-db elimination
   cannot happen, so John survives as maybe. *)
let test_single_db () =
  let _, fed, analysis = setup () in
  let results = [ Local_eval.run fed analysis ~db:"DB1" ] in
  let out = Certify.run fed analysis ~results ~verdicts:[] in
  Alcotest.(check int) "all three maybes" 3 (List.length (Answer.rows out.Certify.answer));
  Alcotest.(check int) "nothing eliminated" 0 out.Certify.eliminated

let test_work_counted () =
  let _, fed, analysis = setup () in
  let out = full_localized fed analysis in
  Alcotest.(check bool) "accesses counted" true
    (out.Certify.work.Msdq_odb.Meter.accesses > 0)

let suite =
  [
    Alcotest.test_case "paper outcome (fig 7c/7d)" `Quick test_paper_outcome;
    Alcotest.test_case "without verdicts" `Quick test_without_verdicts;
    Alcotest.test_case "single database" `Quick test_single_db;
    Alcotest.test_case "work counted" `Quick test_work_counted;
  ]
