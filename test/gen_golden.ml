(* Regenerates the golden files under test/golden/ from the current export
   code. Run from the repository root after an intentional format change:

     dune exec test/gen_golden.exe

   and review the diff before committing. *)

open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_exp
module Json = Msdq_obs.Json

let write path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  let analysis =
    Analysis.analyze
      (Global_schema.schema (Federation.global_schema fed))
      (Parser.parse Paper_example.q1)
  in
  let answer, m = Strategy.run Strategy.Bl fed analysis in
  write "test/golden/bl_q1_report.json"
    (Json.to_string ~indent:2 (Run_report.run_to_json answer m) ^ "\n");
  let sim_only = { m with Strategy.host_spans = [] } in
  write "test/golden/bl_q1_trace.json"
    (Json.to_string ~indent:2 (Run_report.chrome_trace [ sim_only ]) ^ "\n")
