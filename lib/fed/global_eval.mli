(** Predicate evaluation over the materialized global view.

    This is phase P of the centralized approach: predicates run against
    integrated objects, so a value contributed by {e any} isomeric object
    can decide them. [Gnull] fields — positions where no constituent had a
    value — yield [Blocked], producing maybe results. *)

open Msdq_odb

type block = { at : Materialize.gobject; rest : Path.t }
(** Evaluation stopped at [at], whose merged value for [List.hd rest] is
    missing federation-wide. *)

type outcome = Sat | Viol | Blocked of block

type fetched =
  | Found of Value.t
  | Found_set of Value.t list
      (** a multi-valued attribute (see [Materialize.Gset]); predicates use
          existential semantics over the set *)
  | Missing of block

val fetch :
  ?meter:Meter.t -> Materialize.t -> Materialize.gobject -> Path.t -> fetched
(** Walks a path over global objects, following [Gref]s, charging one access
    per step to [meter]. Raises [Invalid_argument] if a referenced class was
    not materialized, and [Value.Type_error] if the path traverses a
    primitive attribute. *)

val eval :
  ?meter:Meter.t -> Materialize.t -> Materialize.gobject -> Predicate.t -> outcome
(** Uses {!Predicate.compare_op}, so comparisons are charged to the same
    per-run meter as the path accesses. *)

val eval_conjunction :
  ?meter:Meter.t -> Materialize.t -> Materialize.gobject -> Predicate.t list -> Truth.t
(** Kleene conjunction of the predicate outcomes. *)

val project :
  ?meter:Meter.t -> Materialize.t -> Materialize.gobject -> Path.t -> Value.t
(** Target projection: the fetched value, or [Value.Null] when blocked; a
    multi-valued attribute projects its first value. *)

val truth_of_outcome : outcome -> Truth.t
