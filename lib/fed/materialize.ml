open Msdq_odb

type gvalue =
  | Gnull
  | Gprim of Value.t
  | Gref of Oid.Goid.t
  | Gset of Value.t list
type gobject = { goid : Oid.Goid.t; gcls : string; fields : gvalue array }

type stats = {
  entities : int;
  source_objects : int;
  fields_merged : int;
  ref_translations : int;
  conflicts : int;
}

type t = {
  by_goid : gobject Oid.Goid.Table.t;
  extents : (string, gobject list) Hashtbl.t;
  attr_index : (string * string, int) Hashtbl.t;  (* (gcls, attr) -> slot *)
  stats : stats;
}

let gvalue_equal a b =
  match (a, b) with
  | Gnull, Gnull -> true
  | Gprim x, Gprim y -> Value.equal x y
  | Gref x, Gref y -> Oid.Goid.equal x y
  | Gset xs, Gset ys -> List.equal Value.equal xs ys
  | (Gnull | Gprim _ | Gref _ | Gset _), _ -> false

let build ?classes ?(multi_valued = false) ?meter fed =
  let gs = Federation.global_schema fed in
  let table = Federation.goids fed in
  let wanted =
    match classes with
    | Some cs -> cs
    | None -> List.map (fun gc -> gc.Global_schema.gname) (Global_schema.classes gs)
  in
  let by_goid = Oid.Goid.Table.create 1024 in
  let extents = Hashtbl.create 16 in
  let attr_index = Hashtbl.create 64 in
  let entities = ref 0
  and source_objects = ref 0
  and fields_merged = ref 0
  and ref_translations = ref 0
  and conflicts = ref 0 in
  let materialize_class gcls =
    let gc =
      match Global_schema.find gs gcls with
      | Some gc -> gc
      | None -> raise (Global_schema.Conflict (Printf.sprintf "unknown global class %s" gcls))
    in
    List.iteri
      (fun i a -> Hashtbl.replace attr_index (gcls, a.Schema.aname) i)
      gc.Global_schema.attrs;
    let arity = List.length gc.Global_schema.attrs in
    let build_entity goid =
      let fields = Array.make arity Gnull in
      let locals = Goid_table.locals_of table ?meter goid in
      List.iter
        (fun (db_name, loid) ->
          incr source_objects;
          let db = Federation.db fed db_name in
          match Database.get db loid with
          | None -> ()
          | Some obj ->
            List.iteri
              (fun i a ->
                match Database.field_by_name db obj a.Schema.aname with
                | None | Some Value.Null -> ()
                | Some v ->
                  incr fields_merged;
                  let gv =
                    match v with
                    | Value.Ref l -> (
                      incr ref_translations;
                      match Goid_table.goid_of_local table ?meter ~db:db_name l with
                      | Some g -> Gref g
                      | None -> Gnull (* unregistered target: treat as missing *))
                    | Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _ ->
                      Gprim v
                    | Value.Null -> assert false
                  in
                  (match (fields.(i), gv) with
                  | Gnull, _ -> fields.(i) <- gv
                  | existing, _ when gvalue_equal existing gv -> ()
                  (* Disagreeing primitive values: under multi-valued
                     integration the global attribute collects them all;
                     otherwise it is a conflict and the first value wins. *)
                  | Gprim x, Gprim y when multi_valued ->
                    fields.(i) <- Gset [ x; y ]
                  | Gset xs, Gprim y when multi_valued ->
                    if not (List.exists (Value.equal y) xs) then
                      fields.(i) <- Gset (xs @ [ y ])
                  | _, _ -> incr conflicts))
              gc.Global_schema.attrs)
        locals;
      incr entities;
      let gobj = { goid; gcls; fields } in
      Oid.Goid.Table.replace by_goid goid gobj;
      gobj
    in
    let objs = List.map build_entity (Goid_table.goids_of_class table ~gcls) in
    Hashtbl.replace extents gcls objs
  in
  List.iter materialize_class wanted;
  {
    by_goid;
    extents;
    attr_index;
    stats =
      {
        entities = !entities;
        source_objects = !source_objects;
        fields_merged = !fields_merged;
        ref_translations = !ref_translations;
        conflicts = !conflicts;
      };
  }

let find t goid = Oid.Goid.Table.find_opt t.by_goid goid

let extent t gcls =
  match Hashtbl.find_opt t.extents gcls with Some l -> l | None -> []

let field t gobj attr =
  match Hashtbl.find_opt t.attr_index (gobj.gcls, attr) with
  | Some i -> Some gobj.fields.(i)
  | None -> None

let stats t = t.stats

let pp_gvalue ppf = function
  | Gnull -> Format.pp_print_string ppf "-"
  | Gprim v -> Value.pp ppf v
  | Gref g -> Oid.Goid.pp ppf g
  | Gset vs ->
    Format.fprintf ppf "{%s}" (String.concat "|" (List.map Value.to_string vs))

let pp_gobject ppf o =
  Format.fprintf ppf "@[<h>%s(%a: %a)@]" o.gcls Oid.Goid.pp o.goid
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_gvalue)
    (Array.to_list o.fields)
