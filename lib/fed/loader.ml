open Msdq_odb

exception Syntax of int * string

let syntax line fmt = Printf.ksprintf (fun s -> raise (Syntax (line, s))) fmt

(* ---------- lexical helpers ---------- *)

let strip_comment line =
  (* '#' starts a comment unless inside a quoted string *)
  let buf = Buffer.create (String.length line) in
  let in_string = ref false in
  (try
     String.iteri
       (fun i c ->
         match c with
         | '"' ->
           (* a backslash escape inside strings *)
           if not (!in_string && i > 0 && line.[i - 1] = '\\') then
             in_string := not !in_string;
           Buffer.add_char buf c
         | '#' when not !in_string -> raise Exit
         | c -> Buffer.add_char buf c)
       line
   with Exit -> ());
  String.trim (Buffer.contents buf)

let split_words s =
  List.filter (fun w -> w <> "") (String.split_on_char ' ' s)

(* Splits "a, "x, y", @b" on top-level commas. *)
let split_values ~line s =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let in_string = ref false in
  String.iteri
    (fun i c ->
      match c with
      | '"' ->
        if not (!in_string && i > 0 && s.[i - 1] = '\\') then
          in_string := not !in_string;
        Buffer.add_char buf c
      | ',' when not !in_string ->
        parts := String.trim (Buffer.contents buf) :: !parts;
        Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  if !in_string then syntax line "unterminated string";
  parts := String.trim (Buffer.contents buf) :: !parts;
  List.rev !parts

let parse_string_literal ~line raw =
  (* raw includes the quotes *)
  let n = String.length raw in
  if n < 2 || raw.[0] <> '"' || raw.[n - 1] <> '"' then
    syntax line "malformed string literal %s" raw;
  let buf = Buffer.create n in
  let i = ref 1 in
  while !i < n - 1 do
    (match raw.[!i] with
    | '\\' when !i + 1 < n - 1 && (raw.[!i + 1] = '"' || raw.[!i + 1] = '\\') ->
      Buffer.add_char buf raw.[!i + 1];
      incr i
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

(* ---------- parsing state ---------- *)

type pending_db = {
  db_name : string;
  mutable classes : Schema.class_def list;  (* reversed *)
  mutable objects : (int * string * string * string list) list;
      (* line, class, label, raw values; reversed *)
}

let attr_type_of ~line words =
  match words with
  | [ "int" ] -> Schema.Prim Schema.P_int
  | [ "float" ] -> Schema.Prim Schema.P_float
  | [ "string" ] -> Schema.Prim Schema.P_string
  | [ "bool" ] -> Schema.Prim Schema.P_bool
  | [ "ref"; cls ] -> Schema.Complex cls
  | _ -> syntax line "expected a type (int|float|string|bool|ref CLASS)"

let parse text =
  let lines = String.split_on_char '\n' text in
  let dbs : pending_db list ref = ref [] in
  let globals = ref [] (* (gcls, constituents, key); reversed *) in
  let current = ref None in
  let current_class = ref None in
  let finish_db () =
    match !current with
    | None -> ()
    | Some db ->
      dbs := db :: !dbs;
      current := None;
      current_class := None
  in
  List.iteri
    (fun idx raw_line ->
      let line = idx + 1 in
      let text = strip_comment raw_line in
      if text <> "" then
        match split_words text with
        | "database" :: rest -> (
          match rest with
          | [ name ] ->
            finish_db ();
            current := Some { db_name = name; classes = []; objects = [] }
          | _ -> syntax line "usage: database NAME")
        | "class" :: rest -> (
          match (rest, !current) with
          | [ name ], Some db ->
            db.classes <- { Schema.cname = name; attrs = [] } :: db.classes;
            current_class := Some name
          | [ _ ], None -> syntax line "class outside a database"
          | _ -> syntax line "usage: class NAME")
        | "attr" :: rest -> (
          match (rest, !current, !current_class) with
          | name :: ty_words, Some db, Some cls -> (
            let atype = attr_type_of ~line ty_words in
            match db.classes with
            | cd :: others when String.equal cd.Schema.cname cls ->
              db.classes <-
                { cd with Schema.attrs = cd.Schema.attrs @ [ { Schema.aname = name; atype } ] }
                :: others
            | _ -> syntax line "attr outside a class")
          | _, None, _ -> syntax line "attr outside a database"
          | _, _, None -> syntax line "attr outside a class"
          | _ -> syntax line "usage: attr NAME TYPE")
        | "object" :: rest -> (
          match (rest, !current) with
          | cls :: label :: "=" :: _, Some db ->
            (* raw values: everything after the '=' of the original text *)
            let eq =
              match String.index_opt text '=' with
              | Some i -> i
              | None -> syntax line "missing '='"
            in
            let raw = String.sub text (eq + 1) (String.length text - eq - 1) in
            db.objects <-
              (line, cls, label, split_values ~line raw) :: db.objects
          | _ :: _ :: _ :: _, None -> syntax line "object outside a database"
          | _ -> syntax line "usage: object CLASS LABEL = v1, v2, ...")
        | "global" :: rest -> (
          (* global G = db.C, db2.C2 key ATTR *)
          match rest with
          | gcls :: "=" :: tail -> (
            let rec split_key acc = function
              | [ "key"; attr ] -> (List.rev acc, attr)
              | x :: rest -> split_key (x :: acc) rest
              | [] -> syntax line "missing 'key ATTR'"
            in
            let constituent_words, key = split_key [] tail in
            let constituents =
              List.map
                (fun w ->
                  let w =
                    if String.length w > 0 && w.[String.length w - 1] = ',' then
                      String.sub w 0 (String.length w - 1)
                    else w
                  in
                  match String.split_on_char '.' w with
                  | [ db; cls ] -> (db, cls)
                  | _ -> syntax line "constituent must be DB.CLASS, got %s" w)
                constituent_words
            in
            match constituents with
            | [] -> syntax line "global class %s has no constituents" gcls
            | _ -> globals := (gcls, constituents, key) :: !globals)
          | _ -> syntax line "usage: global NAME = db.Class, ... key ATTR")
        | word :: _ -> syntax line "unknown directive %s" word
        | [] -> ())
    lines;
  finish_db ();
  if !dbs = [] then syntax 0 "no databases defined";
  if !globals = [] then syntax 0 "no global classes defined";
  (* Build the databases; resolve @labels within each database. *)
  let databases =
    List.rev_map
      (fun pdb ->
        let schema = Schema.create (List.rev pdb.classes) in
        let db = Database.create ~name:pdb.db_name ~schema in
        let labels = Hashtbl.create 64 in
        List.iter
          (fun (line, cls, label, raw_values) ->
            if Hashtbl.mem labels label then
              syntax line "duplicate label %s in database %s" label pdb.db_name;
            let parse_value raw =
              if raw = "" then syntax line "empty value"
              else if raw = "null" then Value.Null
              else if raw = "true" then Value.Bool true
              else if raw = "false" then Value.Bool false
              else if raw.[0] = '"' then Value.Str (parse_string_literal ~line raw)
              else if raw.[0] = '@' then begin
                let target = String.sub raw 1 (String.length raw - 1) in
                match Hashtbl.find_opt labels target with
                | Some loid -> Value.Ref loid
                | None ->
                  syntax line
                    "reference @%s is not defined earlier in database %s"
                    target pdb.db_name
              end
              else
                match int_of_string_opt raw with
                | Some n -> Value.Int n
                | None -> (
                  match float_of_string_opt raw with
                  | Some f -> Value.Float f
                  | None -> syntax line "cannot parse value %s" raw)
            in
            let values = List.map parse_value raw_values in
            let obj =
              try Database.add db ~cls values
              with Database.Integrity_error msg -> syntax line "%s" msg
            in
            Hashtbl.add labels label (Dbobject.loid obj))
          (List.rev pdb.objects);
        (pdb.db_name, db))
      !dbs
  in
  let globals = List.rev !globals in
  let mapping = List.map (fun (g, cs, _) -> (g, cs)) globals in
  let keys = List.map (fun (g, _, k) -> (g, k)) globals in
  Federation.create ~databases ~mapping ~keys

let parse_result text =
  match parse text with
  | fed -> Ok fed
  | exception Syntax (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | exception Schema.Invalid msg -> Error ("schema: " ^ msg)
  | exception Database.Integrity_error msg -> Error ("data: " ^ msg)
  | exception Global_schema.Conflict msg -> Error ("integration: " ^ msg)
  | exception Goid_table.Duplicate msg -> Error ("isomerism: " ^ msg)

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_result text
  | exception Sys_error msg -> Error msg

(* ---------- dumping ---------- *)

let dump_value ~label_of v =
  match v with
  | Value.Null -> "null"
  | Value.Int n -> string_of_int n
  | Value.Float f -> Printf.sprintf "%h" f
  | Value.Bool b -> string_of_bool b
  | Value.Str s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then Buffer.add_char buf '\\';
        Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  | Value.Ref l -> "@" ^ label_of l

let dump fed =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (db_name, db) ->
      add "database %s\n" db_name;
      let schema = Database.schema db in
      List.iter
        (fun (cd : Schema.class_def) ->
          add "  class %s\n" cd.Schema.cname;
          List.iter
            (fun (a : Schema.attr) ->
              match a.Schema.atype with
              | Schema.Prim p ->
                add "    attr %s %s\n" a.Schema.aname
                  (match p with
                  | Schema.P_int -> "int"
                  | Schema.P_float -> "float"
                  | Schema.P_string -> "string"
                  | Schema.P_bool -> "bool")
              | Schema.Complex c -> add "    attr %s ref %s\n" a.Schema.aname c)
            cd.Schema.attrs)
        (Schema.classes schema);
      (* Objects in LOid order = insertion order, so references always point
         backwards and reload cleanly. *)
      let label_of l = Printf.sprintf "o%d" (Oid.Loid.to_int l) in
      let objects =
        List.concat_map
          (fun (cd : Schema.class_def) ->
            List.map (fun o -> o) (Database.extent db cd.Schema.cname))
          (Schema.classes schema)
        |> List.sort (fun a b ->
               Oid.Loid.compare (Dbobject.loid a) (Dbobject.loid b))
      in
      List.iter
        (fun obj ->
          add "  object %s %s = %s\n" (Dbobject.cls obj)
            (label_of (Dbobject.loid obj))
            (String.concat ", "
               (List.map (dump_value ~label_of) (Dbobject.fields obj))))
        objects)
    (Federation.databases fed);
  let gs = Federation.global_schema fed in
  List.iter
    (fun (gc : Global_schema.global_class) ->
      let constituents =
        String.concat ", "
          (List.map
             (fun (c : Global_schema.constituent) ->
               Printf.sprintf "%s.%s" c.Global_schema.db c.Global_schema.cls)
             gc.Global_schema.constituents)
      in
      (* The key attribute is not stored on the federation; re-derive it is
         impossible, so dump uses the convention that every global class
         keeps its identification key in [Federation.keys]. *)
      add "global %s = %s key %s\n" gc.Global_schema.gname constituents
        (Federation.key_of fed gc.Global_schema.gname))
    (Global_schema.classes gs);
  Buffer.contents buf

let example =
  {|# a two-database employee federation
database hr
  class Employee
    attr emp-no int
    attr name string
    attr salary int
    attr boss ref Employee
  object Employee ada = 1, "Ada", 90000, null
  object Employee bob = 2, "Bob", 55000, @ada
  object Employee eve = 3, "Eve", null, @ada
database crm
  class Person
    attr emp-no int
    attr name string
    attr city string
  object Person p1 = 1, "Ada", "Berlin"
  object Person p2 = 3, "Eve", "Paris"
  object Person p3 = 4, "Zoe", "Berlin"
global Employee = hr.Employee, crm.Person key emp-no
|}
