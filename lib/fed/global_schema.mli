(** Schema integration.

    A {e global class} integrates one constituent class from each
    participating component database (not every database need participate).
    Its attribute set is the union of the constituent attribute sets (paper,
    Section 1); an attribute of the global class that a constituent class
    does not define is a {e missing attribute} of that constituent.

    Complex attributes integrate at the level of global classes: if
    [Student.advisor] has domain [Teacher] in DB1 and domain [Teacher'] in
    DB2, both domain classes must map to the same global class, which
    becomes the domain of the global attribute. *)

open Msdq_odb

type constituent = { db : string; cls : string }

type global_class = {
  gname : string;
  attrs : Schema.attr list;  (** union, in first-seen order; complex domains
                                 are global class names *)
  constituents : constituent list;
}

exception Conflict of string
(** Raised when integration is impossible: same-named attributes with
    incompatible primitive types, complex vs primitive clashes, domain
    classes mapping to different global classes, a named local class missing
    from its database's schema, or a local class claimed by two global
    classes. The paper assumes such conflicts were resolved during schema
    integration; we detect them instead of silently mis-integrating. *)

type t

val integrate :
  databases:(string * Database.t) list ->
  mapping:(string * (string * string) list) list ->
  t
(** [integrate ~databases ~mapping] builds the global schema. [mapping]
    lists, for each global class name, the [(database name, local class
    name)] pairs of its constituents. *)

val schema : t -> Schema.t
(** The global schema as an ordinary schema (complex domains are global
    class names), so path resolution and query analysis reuse the odb
    machinery. *)

val classes : t -> global_class list

val find : t -> string -> global_class option

val constituent_of : t -> gcls:string -> db:string -> string option
(** The local class integrating into [gcls] in database [db], if any. *)

val global_of_local : t -> db:string -> cls:string -> string option

val missing_attrs : t -> gcls:string -> db:string -> string list
(** Attributes of the global class that [db]'s constituent class does not
    define — [db]'s schema-level missing attributes for that class. A
    database without a constituent for [gcls] misses all attributes. *)

val local_attr_path : t -> db:string -> gcls:string -> Path.t -> Path.t option
(** Attribute names are shared between global and local schemas in this
    model, so a global path is locally meaningful as-is; returns [None] when
    [db] has no constituent for [gcls]. *)

val pp : Format.formatter -> t -> unit
