(** Materialization of global classes (paper, Figure 6).

    The centralized approach integrates the objects of the constituent
    classes with an outerjoin over GOids: each entity becomes one global
    object whose fields merge the non-null values of its isomeric objects,
    with references translated from LOids to GOids. This module builds that
    integrated view; {!Global_eval} evaluates predicates over it.

    Merging takes the first non-null value in database (registration) order.
    On consistent federations (see {!Isomerism.check_consistency}) the order
    is irrelevant; [stats.conflicts] counts the positions where isomeric
    objects disagreed. *)

open Msdq_odb

type gvalue =
  | Gnull
  | Gprim of Value.t  (** never [Null], never [Ref] *)
  | Gref of Oid.Goid.t
  | Gset of Value.t list
      (** multi-valued integration result: two or more distinct primitive
          values contributed by isomeric objects (only under
          [~multi_valued:true]; ordered by database, duplicates removed) *)

type gobject = { goid : Oid.Goid.t; gcls : string; fields : gvalue array }
(** Fields aligned with the attribute order of the global class. *)

type stats = {
  entities : int;  (** global objects materialized *)
  source_objects : int;  (** constituent objects consumed by the outerjoin *)
  fields_merged : int;  (** non-null field values inspected *)
  ref_translations : int;  (** LOid-to-GOid translations performed *)
  conflicts : int;  (** fields where isomeric objects disagreed *)
}

type t

val build :
  ?classes:string list -> ?multi_valued:bool -> ?meter:Meter.t -> Federation.t -> t
(** Materializes the given global classes (default: all). Only the listed
    classes are available to lookups afterwards. GOid-table probes performed
    by the outerjoin are charged to [meter].

    With [~multi_valued:true] (extension; the paper's Section 5 names
    multi-valued attributes whose values come from different component
    databases as open work), disagreeing primitive values of isomeric
    objects integrate into a {!Gset} instead of counting as conflicts.
    Reference disagreements still count as conflicts. *)

val find : t -> Oid.Goid.t -> gobject option

val extent : t -> string -> gobject list
(** Global objects of a class, in GOid order. Empty for unknown or
    unmaterialized classes. *)

val field : t -> gobject -> string -> gvalue option
(** [None] when the global class does not define the attribute. *)

val stats : t -> stats

val pp_gvalue : Format.formatter -> gvalue -> unit

val pp_gobject : Format.formatter -> gobject -> unit
