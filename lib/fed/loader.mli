(** A textual federation format, so real data can be loaded without writing
    OCaml. Line-oriented, human-writable:

    {v
    # comments and blank lines are ignored
    database hr
      class Employee
        attr emp-no int
        attr name string
        attr boss ref Employee      # complex attribute
      object Employee ada = 1, "Ada", null
      object Employee bob = 2, "Bob", @ada   # @label references
    database crm
      class Person
        attr emp-no int
        attr name string
      object Person a = 1, "Ada"
    global Employee = hr.Employee, crm.Person key emp-no
    v}

    Rules:
    {ul
    {- [attr NAME TYPE] with TYPE one of [int], [float], [string], [bool],
       or [ref CLASS].}
    {- Object values, comma-separated in attribute order: integers, floats,
       quoted strings, [true]/[false], [null], or [@label] references to an
       object defined {e earlier} in the same database.}
    {- One [global] line per global class: its constituents as [db.class]
       pairs and the key attribute used for isomerism identification.}}

    {!dump} writes a federation back in this format; [parse (dump fed)]
    reconstructs it exactly (same schemas, extents, GOid tables). *)

exception Syntax of int * string
(** Line number (1-based) and message. *)

val parse : string -> Federation.t
(** Raises {!Syntax} on malformed input, and lets
    [Msdq_odb.Schema.Invalid] / [Msdq_odb.Database.Integrity_error] /
    {!Global_schema.Conflict} propagate for semantic errors. *)

val parse_result : string -> (Federation.t, string) result
(** Like {!parse} with every error rendered as a message. *)

val load_file : string -> (Federation.t, string) result

val dump : Federation.t -> string

val example : string
(** The two-database employee federation from the documentation above;
    parses successfully (used by tests and the CLI). *)
