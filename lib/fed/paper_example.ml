open Msdq_odb

type t = {
  federation : Federation.t;
  db1 : Database.t;
  db2 : Database.t;
  db3 : Database.t;
  s1 : Dbobject.t;
  s2 : Dbobject.t;
  s3 : Dbobject.t;
  t1 : Dbobject.t;
  t2 : Dbobject.t;
  t3 : Dbobject.t;
  s1' : Dbobject.t;
  s2' : Dbobject.t;
  s3' : Dbobject.t;
  t1' : Dbobject.t;
  t2' : Dbobject.t;
  t1'' : Dbobject.t;
  t2'' : Dbobject.t;
}

let prim_str name = Schema.{ aname = name; atype = Prim P_string }
let prim_int name = Schema.{ aname = name; atype = Prim P_int }
let complex name domain = Schema.{ aname = name; atype = Complex domain }

(* Figure 1: the component schemas. *)

let db1_schema () =
  Schema.create
    [
      { Schema.cname = "Department"; attrs = [ prim_str "name" ] };
      {
        Schema.cname = "Teacher";
        attrs = [ prim_str "name"; complex "department" "Department" ];
      };
      {
        Schema.cname = "Student";
        attrs =
          [
            prim_int "s-no";
            prim_str "name";
            prim_int "age";
            complex "advisor" "Teacher";
            prim_str "sex";
          ];
      };
    ]

let db2_schema () =
  Schema.create
    [
      {
        Schema.cname = "Address";
        attrs = [ prim_str "city"; prim_str "street"; prim_int "zipcode" ];
      };
      { Schema.cname = "Teacher"; attrs = [ prim_str "name"; prim_str "speciality" ] };
      {
        Schema.cname = "Student";
        attrs =
          [
            prim_int "s-no";
            prim_str "name";
            prim_str "sex";
            complex "address" "Address";
            complex "advisor" "Teacher";
          ];
      };
    ]

let db3_schema () =
  Schema.create
    [
      { Schema.cname = "Department"; attrs = [ prim_str "name"; prim_str "location" ] };
      {
        Schema.cname = "Teacher";
        attrs = [ prim_str "name"; complex "department" "Department" ];
      };
    ]

let str s = Value.Str s
let int i = Value.Int i
let rref o = Value.Ref (Dbobject.loid o)

(* Figure 4: the object instances. *)

let build () =
  let db1 = Database.create ~name:"DB1" ~schema:(db1_schema ()) in
  let d1 = Database.add db1 ~cls:"Department" [ str "CS" ] in
  let _d2 = Database.add db1 ~cls:"Department" [ str "EE" ] in
  let t1 = Database.add db1 ~cls:"Teacher" [ str "Jeffery"; rref d1 ] in
  let t2 = Database.add db1 ~cls:"Teacher" [ str "Abel"; Value.Null ] in
  let t3 = Database.add db1 ~cls:"Teacher" [ str "Haley"; rref d1 ] in
  let s1 =
    Database.add db1 ~cls:"Student"
      [ int 804301; str "John"; int 31; rref t1; Value.Null ]
  in
  let s2 =
    Database.add db1 ~cls:"Student"
      [ int 798302; str "Tony"; int 28; rref t3; str "male" ]
  in
  let s3 =
    Database.add db1 ~cls:"Student"
      [ int 808301; str "Mary"; int 24; rref t2; str "female" ]
  in

  let db2 = Database.create ~name:"DB2" ~schema:(db2_schema ()) in
  let a1' = Database.add db2 ~cls:"Address" [ str "Taipei"; str "Park"; int 100 ] in
  let a2' = Database.add db2 ~cls:"Address" [ str "HsinChu"; str "Horber"; int 800 ] in
  let t1' = Database.add db2 ~cls:"Teacher" [ str "Kelly"; str "database" ] in
  let t2' = Database.add db2 ~cls:"Teacher" [ str "Jeffery"; str "network" ] in
  let s1' =
    Database.add db2 ~cls:"Student"
      [ int 762315; str "Hedy"; str "female"; rref a1'; rref t1' ]
  in
  let s2' =
    Database.add db2 ~cls:"Student"
      [ int 804301; str "John"; str "male"; rref a2'; rref t2' ]
  in
  let s3' =
    Database.add db2 ~cls:"Student"
      [ int 828307; str "Fanny"; str "female"; rref a1'; rref t2' ]
  in

  let db3 = Database.create ~name:"DB3" ~schema:(db3_schema ()) in
  let d1'' = Database.add db3 ~cls:"Department" [ str "EE"; str "building E" ] in
  let d2'' = Database.add db3 ~cls:"Department" [ str "CS"; str "building A" ] in
  let _d3'' = Database.add db3 ~cls:"Department" [ str "PH"; str "building D" ] in
  let t1'' = Database.add db3 ~cls:"Teacher" [ str "Abel"; rref d1'' ] in
  let t2'' = Database.add db3 ~cls:"Teacher" [ str "Kelly"; rref d2'' ] in

  (* Figure 2: the global schema, via schema integration. *)
  let databases = [ ("DB1", db1); ("DB2", db2); ("DB3", db3) ] in
  let mapping =
    [
      ("Address", [ ("DB2", "Address") ]);
      ("Department", [ ("DB1", "Department"); ("DB3", "Department") ]);
      ("Teacher", [ ("DB1", "Teacher"); ("DB2", "Teacher"); ("DB3", "Teacher") ]);
      ("Student", [ ("DB1", "Student"); ("DB2", "Student") ]);
    ]
  in
  (* Figure 5: isomerism by student number / teacher name / department name. *)
  let keys = [ ("Student", "s-no"); ("Teacher", "name"); ("Department", "name") ] in
  let federation = Federation.create ~databases ~mapping ~keys in
  {
    federation;
    db1;
    db2;
    db3;
    s1;
    s2;
    s3;
    t1;
    t2;
    t3;
    s1';
    s2';
    s3';
    t1';
    t2';
    t1'';
    t2'';
  }

let q1 =
  "select X.name, X.advisor.name from Student X where X.address.city = \
   \"Taipei\" and X.advisor.speciality = \"database\" and \
   X.advisor.department.name = \"CS\""

let q1_predicates =
  [
    Predicate.make ~path:(Path.of_string "address.city") ~op:Predicate.Eq
      ~operand:(Value.Str "Taipei");
    Predicate.make
      ~path:(Path.of_string "advisor.speciality")
      ~op:Predicate.Eq ~operand:(Value.Str "database");
    Predicate.make
      ~path:(Path.of_string "advisor.department.name")
      ~op:Predicate.Eq ~operand:(Value.Str "CS");
  ]

let q1_targets = [ Path.of_string "name"; Path.of_string "advisor.name" ]
