open Msdq_odb

type block = { at : Materialize.gobject; rest : Path.t }
type outcome = Sat | Viol | Blocked of block
type fetched = Found of Value.t | Found_set of Value.t list | Missing of block

let rec fetch ?meter view gobj path =
  match path with
  | [] -> invalid_arg "Global_eval.fetch: empty path"
  | name :: rest -> (
    (match meter with Some m -> Meter.add_accesses m 1 | None -> ());
    match Materialize.field view gobj name with
    | None ->
      (* The global class defines the union of constituent attributes, so a
         validated query never reaches an undefined attribute; a merged
         object simply holds Gnull there. Reaching this means the query was
         not validated against the global schema. *)
      invalid_arg
        (Printf.sprintf "Global_eval.fetch: %s has no attribute %s"
           gobj.Materialize.gcls name)
    | Some Materialize.Gnull -> Missing { at = gobj; rest = path }
    | Some (Materialize.Gprim v) -> (
      match rest with
      | [] -> Found v
      | _ :: _ ->
        raise
          (Value.Type_error
             (Printf.sprintf "path traverses primitive attribute %s of %s" name
                gobj.Materialize.gcls)))
    | Some (Materialize.Gset vs) -> (
      match rest with
      | [] -> Found_set vs
      | _ :: _ ->
        raise
          (Value.Type_error
             (Printf.sprintf "path traverses primitive attribute %s of %s" name
                gobj.Materialize.gcls)))
    | Some (Materialize.Gref g) -> (
      match rest with
      | [] ->
        (* A complex attribute as the final step: its value is the object
           identity. Comparisons on identities are not expressible in
           queries, so surface it as a missing primitive. *)
        Missing { at = gobj; rest = path }
      | _ :: _ -> (
        match Materialize.find view g with
        | Some next -> fetch ?meter view next rest
        | None ->
          invalid_arg
            (Printf.sprintf
               "Global_eval.fetch: referenced entity %s was not materialized"
               (Oid.Goid.to_string g)))))

let eval ?meter view gobj (p : Predicate.t) =
  match fetch ?meter view gobj p.Predicate.path with
  | Missing b -> Blocked b
  | Found v ->
    if Predicate.compare_op ?meter p.Predicate.op v p.Predicate.operand then
      Sat
    else Viol
  | Found_set vs ->
    (* Multi-valued attribute: existential semantics — the entity carries
       all these values. *)
    if
      List.exists
        (fun v -> Predicate.compare_op ?meter p.Predicate.op v p.Predicate.operand)
        vs
    then Sat
    else Viol

let truth_of_outcome = function
  | Sat -> Truth.True
  | Viol -> Truth.False
  | Blocked _ -> Truth.Unknown

let eval_conjunction ?meter view gobj preds =
  (* Short-circuit on False but keep evaluating through Unknown, mirroring
     what an engine evaluating conjuncts in sequence would do. *)
  let rec go acc = function
    | [] -> acc
    | p :: rest -> (
      match Truth.conj acc (truth_of_outcome (eval ?meter view gobj p)) with
      | Truth.False -> Truth.False
      | (Truth.True | Truth.Unknown) as t -> go t rest)
  in
  go Truth.True preds

let project ?meter view gobj path =
  match fetch ?meter view gobj path with
  | Found v -> v
  | Found_set (v :: _) -> v
  | Found_set [] | Missing _ -> Value.Null
