(** The paper's running example: component databases DB1/DB2/DB3 (Figures 1
    and 4), their integration into the global schema of Figure 2, and the
    GOid mapping tables of Figure 5 (reconstructed by key-based isomerism
    identification).

    Query Q1 over this federation — students living in Taipei whose advisors
    are CS teachers specializing in database — has the certain answer
    (Hedy, Kelly) and the maybe answer (Tony, Haley). *)

open Msdq_odb

type t = {
  federation : Federation.t;
  db1 : Database.t;
  db2 : Database.t;
  db3 : Database.t;
  (* Named objects of Figure 4, for tests that follow the paper's walk. *)
  s1 : Dbobject.t;  (** John @ DB1 *)
  s2 : Dbobject.t;  (** Tony @ DB1 *)
  s3 : Dbobject.t;  (** Mary @ DB1 *)
  t1 : Dbobject.t;  (** Jeffery @ DB1 *)
  t2 : Dbobject.t;  (** Abel @ DB1 *)
  t3 : Dbobject.t;  (** Haley @ DB1 *)
  s1' : Dbobject.t;  (** Hedy @ DB2 *)
  s2' : Dbobject.t;  (** John @ DB2 *)
  s3' : Dbobject.t;  (** Fanny @ DB2 *)
  t1' : Dbobject.t;  (** Kelly @ DB2 *)
  t2' : Dbobject.t;  (** Jeffery @ DB2 *)
  t1'' : Dbobject.t;  (** Abel @ DB3 *)
  t2'' : Dbobject.t;  (** Kelly @ DB3 *)
}

val build : unit -> t

val q1 : string
(** Query Q1 in the SQL/X subset accepted by [Msdq_query.Parser]. *)

val q1_predicates : Predicate.t list
(** The three conjuncts of Q1, built programmatically. *)

val q1_targets : Path.t list
(** [X.name] and [X.advisor.name]. *)
