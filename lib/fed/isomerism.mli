(** Identification of isomeric objects.

    The paper assumes isomeric objects — objects in different component
    databases representing the same real-world entity — have already been
    determined (by the strategy of its reference [5]). This module provides
    that determination step with the standard key-attribute technique: two
    constituent objects of the same global class are isomeric when they
    agree on a designated primitive key attribute. Objects whose constituent
    class lacks the key, or whose key is null, become singleton entities. *)

open Msdq_odb

val identify :
  Global_schema.t ->
  databases:(string * Database.t) list ->
  keys:(string * string) list ->
  Goid_table.t
(** [identify gs ~databases ~keys] builds the GOid mapping tables. [keys]
    maps each global class name to its key attribute; a global class without
    an entry gets singleton entities for all its constituent objects.
    Databases are scanned in list order and extents in insertion order, so
    GOid assignment is deterministic. *)

type conflict = {
  goid : Oid.Goid.t;
  gcls : string;
  attr : string;
  values : (string * Value.t) list;  (** per-database conflicting values *)
}

val check_consistency :
  Global_schema.t ->
  databases:(string * Database.t) list ->
  Goid_table.t ->
  conflict list
(** Reports entities whose isomeric objects carry different non-null values
    for the same primitive attribute. Integration (and hence CA/BL
    equivalence) is only well-defined for consistent federations; the
    workload generator always produces consistent data, and this check
    guards hand-built ones. *)

val pp_conflict : Format.formatter -> conflict -> unit
