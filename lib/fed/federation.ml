open Msdq_odb

type t = {
  databases : (string * Database.t) list;
  sites : (string * int) list;
  gs : Global_schema.t;
  goid_table : Goid_table.t;
  keys : (string * string) list;
}

let create ~databases ~mapping ~keys =
  let gs = Global_schema.integrate ~databases ~mapping in
  let goid_table = Isomerism.identify gs ~databases ~keys in
  let sites = List.mapi (fun i (name, _) -> (name, i + 1)) databases in
  { databases; sites; gs; goid_table; keys }

let databases t = t.databases

let db t name =
  match List.assoc_opt name t.databases with
  | Some db -> db
  | None -> raise Not_found

let db_names t = List.map fst t.databases

let site_of t name =
  match List.assoc_opt name t.sites with
  | Some s -> s
  | None -> raise Not_found

let db_at t site =
  List.find_map (fun (name, s) -> if s = site then Some name else None) t.sites

let global_site _t = 0

let key_of t gcls =
  match List.assoc_opt gcls t.keys with
  | Some k -> k
  | None -> raise Not_found
let global_schema t = t.gs
let goids t = t.goid_table

let total_objects t =
  List.fold_left (fun acc (_, db) -> acc + Database.cardinality db) 0 t.databases

let pp ppf t =
  Format.fprintf ppf "@[<v>federation of %d databases, %d objects, %d entities@,"
    (List.length t.databases) (total_objects t)
    (Goid_table.entity_count t.goid_table);
  List.iter
    (fun (name, db) ->
      Format.fprintf ppf "  %s @@ site %d: %d objects@," name (site_of t name)
        (Database.cardinality db))
    t.databases;
  Format.fprintf ppf "@]"
