(** The federation catalog: component databases pinned to simulated sites,
    the integrated global schema, and the (replicated) GOid mapping tables.

    Site 0 is the {e global processing site}; database [i] (in list order)
    lives at site [i+1]. *)

open Msdq_odb

type t

val create :
  databases:(string * Database.t) list ->
  mapping:(string * (string * string) list) list ->
  keys:(string * string) list ->
  t
(** Integrates the schemas ({!Global_schema.integrate}) and identifies
    isomeric objects ({!Isomerism.identify}). [keys] designates the key
    attribute of each global class used for isomerism matching. *)

val databases : t -> (string * Database.t) list

val db : t -> string -> Database.t
(** Raises [Not_found] for an unknown database name. *)

val db_names : t -> string list

val site_of : t -> string -> int

val db_at : t -> int -> string option
(** Inverse of {!site_of}. *)

val global_site : t -> int

val global_schema : t -> Global_schema.t

val key_of : t -> string -> string
(** The isomerism key attribute of a global class, as given at creation.
    Raises [Not_found] for classes without one. *)

val goids : t -> Goid_table.t

val total_objects : t -> int

val pp : Format.formatter -> t -> unit
