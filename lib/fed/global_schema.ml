open Msdq_odb

type constituent = { db : string; cls : string }

type global_class = {
  gname : string;
  attrs : Schema.attr list;
  constituents : constituent list;
}

exception Conflict of string

let conflict fmt = Printf.ksprintf (fun s -> raise (Conflict s)) fmt

type t = {
  classes : global_class list;
  schema : Schema.t;
  (* (db, local class) -> global class name *)
  local_to_global : (string * string, string) Hashtbl.t;
  (* (global class, db) -> local class name *)
  global_to_local : (string * string, string) Hashtbl.t;
  (* (global class, db, attribute) present in that db's constituent *)
  present_attrs : (string * string * string, unit) Hashtbl.t;
  by_name : (string, global_class) Hashtbl.t;
}

(* Integrating an attribute type: primitive types must agree; complex
   domains are translated to global class names and must agree. *)
let integrate_attr_type ~local_to_global ~db ~gname ~aname local_ty =
  match local_ty with
  | Schema.Prim p -> Schema.Prim p
  | Schema.Complex local_domain -> (
    match Hashtbl.find_opt local_to_global (db, local_domain) with
    | Some gdomain -> Schema.Complex gdomain
    | None ->
      conflict
        "attribute %s.%s: domain class %s of database %s is not integrated \
         into any global class"
        gname aname local_domain db)

let integrate ~databases ~mapping =
  let db_of_name name =
    match List.assoc_opt name databases with
    | Some db -> db
    | None -> conflict "unknown database %s in mapping" name
  in
  (* First pass: record which local class belongs to which global class, so
     complex domains can be translated. *)
  let local_to_global = Hashtbl.create 32 in
  let global_to_local = Hashtbl.create 32 in
  List.iter
    (fun (gname, constituents) ->
      if constituents = [] then conflict "global class %s has no constituents" gname;
      List.iter
        (fun (db_name, cls) ->
          let db = db_of_name db_name in
          if not (Schema.mem_class (Database.schema db) cls) then
            conflict "database %s has no class %s (constituent of %s)" db_name
              cls gname;
          if Hashtbl.mem local_to_global (db_name, cls) then
            conflict "class %s of database %s is a constituent of two global classes"
              cls db_name;
          if Hashtbl.mem global_to_local (gname, db_name) then
            conflict "global class %s has two constituents in database %s" gname
              db_name;
          Hashtbl.add local_to_global (db_name, cls) gname;
          Hashtbl.add global_to_local (gname, db_name) cls)
        constituents)
    mapping;
  (* Second pass: union the attributes. *)
  let present_attrs = Hashtbl.create 64 in
  let build_class (gname, constituents) =
    let attrs = ref [] (* reversed *) in
    let types = Hashtbl.create 8 in
    let add_attr db_name (a : Schema.attr) =
      let ty =
        integrate_attr_type ~local_to_global ~db:db_name ~gname
          ~aname:a.Schema.aname a.Schema.atype
      in
      match Hashtbl.find_opt types a.Schema.aname with
      | None ->
        Hashtbl.add types a.Schema.aname ty;
        attrs := { Schema.aname = a.Schema.aname; atype = ty } :: !attrs
      | Some ty' ->
        if not (Schema.equal_attr_type ty ty') then
          conflict "attribute %s.%s integrates with conflicting types %s and %s"
            gname a.Schema.aname
            (Schema.attr_type_to_string ty')
            (Schema.attr_type_to_string ty)
    in
    List.iter
      (fun (db_name, cls) ->
        let db = db_of_name db_name in
        match Schema.find_class (Database.schema db) cls with
        | Some cd ->
          List.iter
            (fun a ->
              add_attr db_name a;
              Hashtbl.replace present_attrs (gname, db_name, a.Schema.aname) ())
            cd.Schema.attrs
        | None -> assert false (* checked in first pass *))
      constituents;
    {
      gname;
      attrs = List.rev !attrs;
      constituents = List.map (fun (db, cls) -> { db; cls }) constituents;
    }
  in
  let classes = List.map build_class mapping in
  let schema =
    Schema.create
      (List.map (fun gc -> { Schema.cname = gc.gname; attrs = gc.attrs }) classes)
  in
  let by_name = Hashtbl.create 16 in
  List.iter (fun gc -> Hashtbl.add by_name gc.gname gc) classes;
  { classes; schema; local_to_global; global_to_local; present_attrs; by_name }

let schema t = t.schema
let classes t = t.classes
let find t name = Hashtbl.find_opt t.by_name name
let constituent_of t ~gcls ~db = Hashtbl.find_opt t.global_to_local (gcls, db)
let global_of_local t ~db ~cls = Hashtbl.find_opt t.local_to_global (db, cls)

let missing_attrs t ~gcls ~db =
  match Hashtbl.find_opt t.by_name gcls with
  | None -> raise (Conflict (Printf.sprintf "unknown global class %s" gcls))
  | Some gc ->
    List.filter_map
      (fun a ->
        let aname = a.Schema.aname in
        if Hashtbl.mem t.present_attrs (gcls, db, aname) then None
        else Some aname)
      gc.attrs

let local_attr_path t ~db ~gcls path =
  match constituent_of t ~gcls ~db with None -> None | Some _ -> Some path

let pp ppf t =
  let pp_class ppf gc =
    Format.fprintf ppf "@[<v 2>global class %s@,attrs: %s@,constituents: %s@]"
      gc.gname
      (String.concat ", " (List.map (fun a -> a.Schema.aname) gc.attrs))
      (String.concat ", " (List.map (fun c -> c.db ^ "." ^ c.cls) gc.constituents))
  in
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_class ppf t.classes
