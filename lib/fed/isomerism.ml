open Msdq_odb

(* Key values are primitive, so they can serve as hash-table keys after
   conversion to a comparable representation. *)
let key_repr = function
  | Value.Int i -> Some ("i" ^ string_of_int i)
  | Value.Float f -> Some ("f" ^ string_of_float f)
  | Value.Str s -> Some ("s" ^ s)
  | Value.Bool b -> Some ("b" ^ string_of_bool b)
  | Value.Null | Value.Ref _ -> None

let identify gs ~databases ~keys =
  let table = Goid_table.create () in
  let register_class gc =
    let gcls = gc.Global_schema.gname in
    let key_attr = List.assoc_opt gcls keys in
    (* Group constituent objects by key value, preserving first-seen order
       of groups so GOids are deterministic. *)
    let groups : (string, (string * Oid.Loid.t) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let order = ref [] in
    let singletons = ref [] in
    List.iter
      (fun (c : Global_schema.constituent) ->
        match List.assoc_opt c.Global_schema.db databases with
        | None -> ()
        | Some db ->
          List.iter
            (fun obj ->
              let entry = (c.Global_schema.db, Dbobject.loid obj) in
              let key =
                match key_attr with
                | None -> None
                | Some attr -> (
                  match Database.field_by_name db obj attr with
                  | Some v -> key_repr v
                  | None -> None)
              in
              match key with
              | None -> singletons := entry :: !singletons
              | Some k -> (
                match Hashtbl.find_opt groups k with
                | Some r -> r := entry :: !r
                | None ->
                  let r = ref [ entry ] in
                  Hashtbl.add groups k r;
                  order := k :: !order))
            (Database.extent db c.Global_schema.cls))
      gc.Global_schema.constituents;
    List.iter
      (fun k ->
        match Hashtbl.find_opt groups k with
        | Some r -> ignore (Goid_table.register table ~gcls (List.rev !r))
        | None -> assert false)
      (List.rev !order);
    List.iter
      (fun entry -> ignore (Goid_table.register table ~gcls [ entry ]))
      (List.rev !singletons)
  in
  List.iter register_class (Global_schema.classes gs);
  table

type conflict = {
  goid : Oid.Goid.t;
  gcls : string;
  attr : string;
  values : (string * Value.t) list;
}

let check_consistency gs ~databases table =
  let conflicts = ref [] in
  let check_entity gcls goid =
    match Global_schema.find gs gcls with
    | None -> ()
    | Some gc ->
      let locals = Goid_table.locals_of table goid in
      let check_attr (a : Schema.attr) =
        match a.Schema.atype with
        | Schema.Complex _ -> ()  (* reference identity is checked via GOids elsewhere *)
        | Schema.Prim _ ->
          let values =
            List.filter_map
              (fun (db_name, loid) ->
                match List.assoc_opt db_name databases with
                | None -> None
                | Some db -> (
                  match Database.get db loid with
                  | None -> None
                  | Some obj -> (
                    match Database.field_by_name db obj a.Schema.aname with
                    | Some v when not (Value.is_null v) -> Some (db_name, v)
                    | Some _ | None -> None)))
              locals
          in
          (match values with
          | [] | [ _ ] -> ()
          | (_, first) :: rest ->
            if List.exists (fun (_, v) -> not (Value.equal v first)) rest then
              conflicts :=
                { goid; gcls; attr = a.Schema.aname; values } :: !conflicts)
      in
      List.iter check_attr gc.Global_schema.attrs
  in
  List.iter
    (fun gc ->
      let gcls = gc.Global_schema.gname in
      List.iter (check_entity gcls) (Goid_table.goids_of_class table ~gcls))
    (Global_schema.classes gs);
  List.rev !conflicts

let pp_conflict ppf c =
  Format.fprintf ppf "%a (%s).%s: %s" Oid.Goid.pp c.goid c.gcls c.attr
    (String.concat " vs "
       (List.map (fun (db, v) -> Printf.sprintf "%s@%s" (Value.to_string v) db) c.values))
