(** GOid mapping tables (paper, Figure 5).

    One logical table per global class maps each GOid to the LOids of its
    isomeric objects in the component databases. The paper replicates the
    tables at every site, so a lookup is local CPU work; lookups are charged
    to the caller-supplied {!Meter.t} so each run's cost accounting stays
    independent of every other run's. *)

open Msdq_odb

type t

val create : unit -> t

exception Duplicate of string

val register : t -> gcls:string -> (string * Oid.Loid.t) list -> Oid.Goid.t
(** [register t ~gcls locals] allocates a fresh GOid for a real-world entity
    of global class [gcls] whose isomeric objects are [locals] (database
    name, LOid). Raises {!Duplicate} if any of the local objects is already
    registered, or if [locals] is empty. GOids are allocated sequentially,
    so registration order is reproducible. *)

val goid_of_local : t -> ?meter:Meter.t -> db:string -> Oid.Loid.t -> Oid.Goid.t option
(** Charged as one table lookup to [meter]. *)

val locals_of : t -> ?meter:Meter.t -> Oid.Goid.t -> (string * Oid.Loid.t) list
(** All isomeric objects of an entity, in registration order. Charged as
    one table lookup to [meter]. *)

val isomers_of : t -> ?meter:Meter.t -> db:string -> Oid.Loid.t -> (string * Oid.Loid.t) list
(** The object's isomeric objects in {e other} databases — its potential
    assistant objects. Empty when the object is unregistered or a singleton.
    Charged as one table lookup to [meter]. *)

val gcls_of : t -> Oid.Goid.t -> string option

val goids_of_class : t -> gcls:string -> Oid.Goid.t list
(** In registration order. *)

val entity_count : t -> int

val pp : Format.formatter -> t -> unit
