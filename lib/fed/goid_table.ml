open Msdq_odb

type entity = { gcls : string; locals : (string * Oid.Loid.t) list }

type t = {
  entities : entity Oid.Goid.Table.t;
  by_local : (string * int, Oid.Goid.t) Hashtbl.t;  (* (db, loid) -> goid *)
  by_class : (string, Oid.Goid.t list ref) Hashtbl.t;  (* reversed *)
  mutable next_goid : int;
}

exception Duplicate of string

let create () =
  {
    entities = Oid.Goid.Table.create 256;
    by_local = Hashtbl.create 256;
    by_class = Hashtbl.create 16;
    next_goid = 0;
  }

let register t ~gcls locals =
  if locals = [] then raise (Duplicate "cannot register an entity with no local objects");
  List.iter
    (fun (db, loid) ->
      if Hashtbl.mem t.by_local (db, Oid.Loid.to_int loid) then
        raise
          (Duplicate
             (Printf.sprintf "object %s of database %s already registered"
                (Oid.Loid.to_string loid) db)))
    locals;
  let goid = Oid.Goid.of_int t.next_goid in
  t.next_goid <- t.next_goid + 1;
  Oid.Goid.Table.add t.entities goid { gcls; locals };
  List.iter
    (fun (db, loid) -> Hashtbl.add t.by_local (db, Oid.Loid.to_int loid) goid)
    locals;
  let r =
    match Hashtbl.find_opt t.by_class gcls with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add t.by_class gcls r;
      r
  in
  r := goid :: !r;
  goid

let tick meter =
  match meter with Some m -> Meter.add_goid_lookups m 1 | None -> ()

let goid_of_local t ?meter ~db loid =
  tick meter;
  Hashtbl.find_opt t.by_local (db, Oid.Loid.to_int loid)

let locals_of t ?meter goid =
  tick meter;
  match Oid.Goid.Table.find_opt t.entities goid with
  | Some e -> e.locals
  | None -> []

let isomers_of t ?meter ~db loid =
  tick meter;
  match Hashtbl.find_opt t.by_local (db, Oid.Loid.to_int loid) with
  | None -> []
  | Some goid -> (
    match Oid.Goid.Table.find_opt t.entities goid with
    | None -> []
    | Some e ->
      List.filter
        (fun (db', loid') ->
          not (String.equal db db' && Oid.Loid.equal loid loid'))
        e.locals)

let gcls_of t goid =
  Option.map (fun e -> e.gcls) (Oid.Goid.Table.find_opt t.entities goid)

let goids_of_class t ~gcls =
  match Hashtbl.find_opt t.by_class gcls with
  | Some r -> List.rev !r
  | None -> []

let entity_count t = Oid.Goid.Table.length t.entities

let pp ppf t =
  let pp_entity goid e =
    Format.fprintf ppf "%a (%s): %s@," Oid.Goid.pp goid e.gcls
      (String.concat ", "
         (List.map (fun (db, l) -> Printf.sprintf "%s@%s" (Oid.Loid.to_string l) db) e.locals))
  in
  Format.fprintf ppf "@[<v>";
  let sorted =
    Oid.Goid.Table.fold (fun g e acc -> (g, e) :: acc) t.entities []
    |> List.sort (fun (a, _) (b, _) -> Oid.Goid.compare a b)
  in
  List.iter (fun (g, e) -> pp_entity g e) sorted;
  Format.fprintf ppf "@]"
