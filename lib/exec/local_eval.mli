(** Local predicate evaluation — phase P inside one component database
    (steps BL_C1 / PL_C2).

    Every atom of the (global) query is evaluated against each object of the
    local root class with {!Msdq_odb.Predicate.eval}: predicates whose whole
    chain is defined locally get definite verdicts (or block on nulls);
    predicates hitting a schema-level missing attribute block exactly at the
    cut, which simultaneously performs the paper's "project the nested
    complex attributes holding missing attributes" — the blocking object
    {e is} the unsolved item.

    Objects whose condition is definitely false are eliminated; the rest
    become local rows (solved or maybe). *)

open Msdq_fed
open Msdq_query

val run :
  ?tracer:Msdq_obs.Tracer.t -> Federation.t -> Analysis.t -> db:string ->
  Local_result.t
(** Raises [Invalid_argument] when [db] has no constituent of the range
    class (callers iterate over [Localize.plan]). Work counters in the
    result cover exactly this call. *)
