open Msdq_odb
open Msdq_fed
open Msdq_query

let count fed (analysis : Analysis.t) ~db:db_name =
  let gs = Federation.global_schema fed in
  let db = Federation.db fed db_name in
  let root_gcls = analysis.Analysis.range_class in
  let root_cls =
    match Global_schema.constituent_of gs ~gcls:root_gcls ~db:db_name with
    | Some cls -> cls
    | None ->
      invalid_arg
        (Printf.sprintf "Touch.count: %s has no constituent of %s" db_name
           root_gcls)
  in
  (* Distinct touched objects per local class. *)
  let touched : (string, unit Oid.Loid.Table.t) Hashtbl.t = Hashtbl.create 8 in
  let note obj =
    let cls = Dbobject.cls obj in
    let set =
      match Hashtbl.find_opt touched cls with
      | Some s -> s
      | None ->
        let s = Oid.Loid.Table.create 64 in
        Hashtbl.add touched cls s;
        s
    in
    Oid.Loid.Table.replace set (Dbobject.loid obj) ()
  in
  let rec walk obj path =
    match path with
    | [] -> ()
    | name :: rest -> (
      match Database.field_by_name db obj name with
      | Some (Value.Ref _ as v) -> (
        match Database.deref db v with
        | Some next ->
          note next;
          walk next rest
        | None -> ())
      | Some _ | None -> ())
  in
  let paths =
    List.map fst analysis.Analysis.targets
    @ List.map (fun info -> info.Analysis.pred.Predicate.path) analysis.Analysis.atoms
  in
  List.iter
    (fun obj -> List.iter (walk obj) paths)
    (Database.extent db root_cls);
  (* Report per global class: the root's full extent, branch classes by
     their touched counts. *)
  List.filter_map
    (fun gcls ->
      if String.equal gcls root_gcls then
        Some (gcls, Database.extent_size db root_cls)
      else
        match Global_schema.constituent_of gs ~gcls ~db:db_name with
        | None -> None
        | Some local_cls ->
          let n =
            match Hashtbl.find_opt touched local_cls with
            | Some s -> Oid.Loid.Table.length s
            | None -> 0
          in
          Some (gcls, n))
    analysis.Analysis.classes_involved
