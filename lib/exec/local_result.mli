(** Local results of a component database (the paper's R1/R2 of Figure 7).

    A row is a root object that survived the local predicates: its per-atom
    truth values, the target values it could project locally, and its
    {e unsolved} entries — atoms blocked by missing data, each pinpointing
    the {e unsolved item} (the blocking object: the root itself or a nested
    object) and the path suffix an assistant object would have to satisfy. *)

open Msdq_odb

type unsolved = {
  atom : int;  (** index into [Analysis.atoms] *)
  item : Dbobject.t;  (** the blocking object in this database *)
  rest : Path.t;  (** suffix to evaluate on assistants, head = missing attr *)
  cause : Predicate.cause;
}

type row = {
  db : string;
  obj : Dbobject.t;  (** the local root object *)
  goid : Oid.Goid.t;
  truths : Truth.t array;  (** per atom, locally determined *)
  unsolved : unsolved list;  (** exactly the atoms whose truth is Unknown *)
  values : Value.t option array;  (** per target; [None] = not locally derivable *)
}

type t = {
  db : string;
  rows : row list;
  examined : int;  (** root objects evaluated *)
  eliminated : int;  (** root objects whose local condition was False *)
  work : Meter.snapshot;  (** comparisons/accesses spent producing the rows *)
}

val is_solved : row -> bool
(** No unsolved atoms: a locally certain result (pending global merge). *)

val row_is_root_only : row -> bool
(** All unsolved items are the root object itself (paper: "only the local
    root class holds the missing attributes"). *)

val pp_row : Format.formatter -> row -> unit

val pp : Format.formatter -> t -> unit
