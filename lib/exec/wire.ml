open Msdq_odb
open Msdq_fed

let projected_extent_bytes (c : Cost.t) involved gs ~db_name ~db =
  List.fold_left
    (fun acc gcls ->
      match Global_schema.constituent_of gs ~gcls ~db:db_name with
      | None -> acc
      | Some local_cls ->
        let width = Involved.local_projection_width involved gs ~db:db_name ~gcls in
        let n = Database.extent_size db local_cls in
        acc + (n * (c.Cost.s_loid + (width * c.Cost.s_a))))
    0 (Involved.classes involved)

let localized_read_bytes (c : Cost.t) involved gs ~db_name ~touched =
  List.fold_left
    (fun acc (gcls, n) ->
      let width = Involved.local_projection_width involved gs ~db:db_name ~gcls in
      acc + (n * (c.Cost.s_loid + (width * c.Cost.s_a))))
    0 touched

let pred_bytes (c : Cost.t) (pred : Predicate.t) =
  (List.length pred.Predicate.path * c.Cost.s_a) + c.Cost.s_a

let local_row_bytes (c : Cost.t) ~n_targets (row : Local_result.row) =
  c.Cost.s_goid + c.Cost.s_loid
  + (n_targets * c.Cost.s_a)
  + List.length row.Local_result.unsolved * (c.Cost.s_loid + c.Cost.s_a)

let results_bytes c ~n_targets (res : Local_result.t) =
  List.fold_left
    (fun acc row -> acc + local_row_bytes c ~n_targets row)
    0 res.Local_result.rows

let request_bytes (c : Cost.t) (r : Checks.request) =
  (2 * c.Cost.s_loid) + pred_bytes c r.Checks.pred

let requests_bytes c reqs =
  List.fold_left (fun acc r -> acc + request_bytes c r) 0 reqs

let verdict_bytes (c : Cost.t) = c.Cost.s_loid + 2

let check_read_bytes (c : Cost.t) reqs =
  (* Each assistant is fetched by LOid: a random access reading at least one
     page per object on the suffix path. *)
  List.fold_left
    (fun acc (r : Checks.request) ->
      acc
      + max c.Cost.s_page
          (c.Cost.s_loid + (List.length r.Checks.pred.Predicate.path * c.Cost.s_a)))
    0 reqs

let coalesced_requests_bytes (c : Cost.t) ~header_bytes groups =
  if header_bytes < 0 then invalid_arg "Wire: negative message header size";
  List.fold_left (fun acc reqs -> acc + requests_bytes c reqs) header_bytes
    groups
