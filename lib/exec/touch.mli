(** How much of each branch extent a localized evaluation actually touches.

    A component database evaluates nested predicates by traversing
    references from the root extent, so it only reads the branch objects
    that are actually referenced (Table 2's [R_r]); composition-clustered
    storage (as in ORION, the paper's reference [10]) makes these traversals
    sequential-ish. The centralized approach, by contrast, must ship whole
    extents — it cannot know which branch objects matter without evaluating.

    This module counts, per involved global class, the distinct local
    objects reachable from the root extent through the query's paths. The
    walk is bookkeeping, not simulated work: callers must not charge its
    meter activity to any task. *)

open Msdq_fed
open Msdq_query

val count : Federation.t -> Analysis.t -> db:string -> (string * int) list
(** [(global class, distinct local objects touched)] for the range class
    (its full extent) and every involved branch class with a constituent in
    [db]. *)
