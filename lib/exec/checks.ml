open Msdq_odb
open Msdq_fed
open Msdq_query
module Tracer = Msdq_obs.Tracer

type request = {
  origin_db : string;
  target_db : string;
  assistant : Oid.Loid.t;
  item : Oid.Loid.t;
  atom : int;
  pred : Predicate.t;
}

type verdict = {
  origin_db : string;
  item : Oid.Loid.t;
  atom : int;
  truth : Truth.t;
}

type built = {
  requests : request list;
  local_verdicts : verdict list;
  filtered : int;
  incapable : int;
  root_level : int;
  goid_lookups : int;
  work : Meter.snapshot;
}

(* A signature can only pre-decide a one-step equality suffix. *)
let signature_refutes ~meter signatures fed ~target_db ~assistant
    (pred : Predicate.t) =
  match signatures with
  | None -> false
  | Some catalog -> (
    match (pred.Predicate.path, pred.Predicate.op) with
    | [ attr ], Predicate.Eq -> (
      match Sig_catalog.find catalog ~db:target_db assistant with
      | None -> false
      | Some entry -> (
        let db = Federation.db fed target_db in
        match Database.get db assistant with
        | None -> false
        | Some obj -> (
          match
            Schema.attr_index (Database.schema db) ~cls:(Dbobject.cls obj) ~attr
          with
          | None -> false
          | Some index ->
            Meter.add_comparison meter;
            not
              (Sig_catalog.may_satisfy entry ~index ~op:Predicate.Eq
                 ~operand:pred.Predicate.operand))))
    | _ -> false)

(* The paper finds assistants "by checking the GOid mapping tables and the
   other component schemas": an assistant whose class cannot resolve the
   suffix even at schema level provides no data, so no request is sent. *)
let assistant_capable fed gs ~origin_db ~target_db ~item_cls rest =
  match Global_schema.global_of_local gs ~db:origin_db ~cls:item_cls with
  | None -> false
  | Some gcls -> (
    match Global_schema.constituent_of gs ~gcls ~db:target_db with
    | None -> false
    | Some target_cls -> (
      let schema = Database.schema (Federation.db fed target_db) in
      match Path.resolve schema ~root:target_cls rest with
      | Path.Full _ -> true
      | Path.Cut _ | Path.Invalid _ -> false))

let build ?signatures ?(tracer = Tracer.disabled) fed (analysis : Analysis.t)
    ~db:db_name ~root_class ~items =
  Tracer.with_span tracer ~cat:"dispatch" ~args:[ ("db", db_name) ]
    "checks.build"
  @@ fun () ->
  let gs = Federation.global_schema fed in
  let table = Federation.goids fed in
  let atoms = Array.of_list analysis.Analysis.atoms in
  let meter = Meter.create () in
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let requests = ref [] in
  let local_verdicts = ref [] in
  let filtered = ref 0 in
  let incapable = ref 0 in
  let root_level = ref 0 in
  let consider (u : Local_result.unsolved) =
    if String.equal (Dbobject.cls u.Local_result.item) root_class then
      incr root_level
    else
      let item_loid = Dbobject.loid u.Local_result.item in
      let key = (Oid.Loid.to_int item_loid, u.Local_result.atom) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        let original = atoms.(u.Local_result.atom).Analysis.pred in
        let pred =
          Predicate.make ~path:u.Local_result.rest ~op:original.Predicate.op
            ~operand:original.Predicate.operand
        in
        let isomers = Goid_table.isomers_of table ~meter ~db:db_name item_loid in
        List.iter
          (fun (target_db, assistant) ->
            if
              not
                (assistant_capable fed gs ~origin_db:db_name ~target_db
                   ~item_cls:(Dbobject.cls u.Local_result.item)
                   u.Local_result.rest)
            then incr incapable
            else if
              signature_refutes ~meter signatures fed ~target_db ~assistant
                pred
            then begin
              incr filtered;
              local_verdicts :=
                {
                  origin_db = db_name;
                  item = item_loid;
                  atom = u.Local_result.atom;
                  truth = Truth.False;
                }
                :: !local_verdicts
            end
            else
              requests :=
                {
                  origin_db = db_name;
                  target_db;
                  assistant;
                  item = item_loid;
                  atom = u.Local_result.atom;
                  pred;
                }
                :: !requests)
          isomers
      end
  in
  List.iter consider items;
  {
    requests = List.rev !requests;
    local_verdicts = List.rev !local_verdicts;
    filtered = !filtered;
    incapable = !incapable;
    root_level = !root_level;
    goid_lookups = (Meter.read meter).Meter.goid_lookups;
    work = Meter.read meter;
  }

type served = {
  verdicts : verdict list;
  objects_read : int;
  work : Meter.snapshot;
}

let serve ?(tracer = Tracer.disabled) fed ~db:db_name requests =
  Tracer.with_span tracer ~cat:"serve"
    ~args:
      [ ("db", db_name); ("requests", string_of_int (List.length requests)) ]
    "checks.serve"
  @@ fun () ->
  let db = Federation.db fed db_name in
  let meter = Meter.create () in
  let verdicts =
    List.map
      (fun r ->
        if not (String.equal r.target_db db_name) then
          invalid_arg
            (Printf.sprintf "Checks.serve: request targets %s, served at %s"
               r.target_db db_name);
        let truth =
          match Database.get db r.assistant with
          | None -> Truth.Unknown (* assistant vanished: no information *)
          | Some obj ->
            Predicate.truth_of_outcome (Predicate.eval ~meter db obj r.pred)
        in
        { origin_db = r.origin_db; item = r.item; atom = r.atom; truth })
      requests
  in
  { verdicts; objects_read = List.length requests; work = Meter.read meter }

let verdict_key v = (v.origin_db, Oid.Loid.to_int v.item, v.atom)

(* The verdict-cache key of the workload engine (lib/serve). A verdict is a
   pure function of the assistant object and the relative predicate, so the
   key must name exactly those two plus the site holding the assistant —
   never the querying context (origin item, atom index), which is what makes
   one query's verdict reusable by another query. *)
let request_signature (r : request) =
  Printf.sprintf "%s#%s?%s" r.target_db
    (Oid.Loid.to_string r.assistant)
    (Predicate.to_string r.pred)
