open Msdq_odb
open Msdq_fed
open Msdq_query
module Tracer = Msdq_obs.Tracer

type outcome = {
  answer : Answer.t;
  resolved : int;
  eliminated : int;
  residual : int;
  work : Meter.snapshot;
}

let resolve ?(multi_valued = false) ?(tracer = Tracer.disabled) fed
    (analysis : Analysis.t) answer =
  let maybes = Answer.maybe answer in
  if maybes = [] then
    { answer; resolved = 0; eliminated = 0; residual = 0; work = Meter.zero }
  else begin
    Tracer.with_span tracer ~cat:"integrate"
      ~args:[ ("maybes", string_of_int (List.length maybes)) ]
      "deep.resolve"
    @@ fun () ->
    let meter = Meter.create () in
    let view =
      Materialize.build ~classes:analysis.Analysis.classes_involved
        ~multi_valued ~meter fed
    in
    let atoms = Array.of_list analysis.Analysis.atoms in
    let n_atoms = Array.length atoms in
    let targets = Array.of_list (List.map fst analysis.Analysis.targets) in
    let resolved = ref 0 and eliminated = ref 0 in
    let resolve_row (row : Answer.row) =
      match Materialize.find view row.Answer.goid with
      | None -> Some row (* cannot happen on a coherent federation *)
      | Some gobj -> (
        let truths = Array.make n_atoms Truth.Unknown in
        Array.iteri
          (fun i info ->
            truths.(i) <-
              Global_eval.truth_of_outcome
                (Global_eval.eval ~meter view gobj info.Analysis.pred))
          atoms;
        let truth =
          Cond.eval
            (fun pred ->
              let rec find i =
                if i >= n_atoms then Truth.Unknown
                else if Predicate.equal atoms.(i).Analysis.pred pred then
                  truths.(i)
                else find (i + 1)
              in
              find 0)
            analysis.Analysis.query.Ast.where
        in
        match truth with
        | Truth.False ->
          incr resolved;
          incr eliminated;
          None
        | Truth.True ->
          incr resolved;
          let values =
            Array.to_list
              (Array.map
                 (fun path -> Global_eval.project ~meter view gobj path)
                 targets)
          in
          Some { row with Answer.status = Answer.Certain; values }
        | Truth.Unknown ->
          (* Still unknown federation-wide: a genuine maybe result, but
             refresh the projections from the integrated view. *)
          let values =
            Array.to_list
              (Array.map
                 (fun path -> Global_eval.project ~meter view gobj path)
                 targets)
          in
          Some { row with Answer.values })
    in
    let rows =
      List.filter_map
        (fun row ->
          match row.Answer.status with
          | Answer.Certain -> Some row
          | Answer.Maybe -> resolve_row row)
        (Answer.rows answer)
    in
    {
      answer = Answer.make ~targets:(Answer.targets answer) rows;
      resolved = !resolved;
      eliminated = !eliminated;
      residual = List.length maybes;
      work = Meter.read meter;
    }
  end
