open Msdq_simkit

type t = {
  s_a : int;
  s_goid : int;
  s_loid : int;
  s_sig : int;
  t_d : float;
  t_net : float;
  t_c : float;
  n_iso : int;
  s_page : int;
}

let default =
  {
    s_a = 32;
    s_goid = 16;
    s_loid = 16;
    s_sig = 32;
    t_d = 15.0;
    t_net = 8.0;
    t_c = 0.5;
    n_iso = 2;
    s_page = 256;
  }

let disk t ~bytes = Time.us (t.t_d *. float_of_int bytes)
let net t ~bytes = Time.us (t.t_net *. float_of_int bytes)
let cpu t ~units = Time.us (t.t_c *. float_of_int units)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>S_a    = %d bytes@,S_GOid = %d bytes@,S_LOid = %d bytes@,S_s    = %d \
     bytes@,T_d    = %g us/byte@,T_net  = %g us/byte@,T_c    = %g \
     us/comparison@,N_iso  = %d@,S_page = %d bytes (random-access unit)@]"
    t.s_a t.s_goid t.s_loid t.s_sig t.t_d t.t_net t.t_c t.n_iso t.s_page
