open Msdq_odb
open Msdq_fed
open Msdq_query
module Tracer = Msdq_obs.Tracer

let log_src = Logs.Src.create "msdq.local" ~doc:"local predicate evaluation"

module Log = (val Logs.src_log log_src : Logs.LOG)

let run ?(tracer = Tracer.disabled) fed (analysis : Analysis.t) ~db:db_name =
  Tracer.with_span tracer ~cat:"eval" ~args:[ ("db", db_name) ]
    "local_eval.run"
  @@ fun () ->
  let gs = Federation.global_schema fed in
  let db = Federation.db fed db_name in
  let table = Federation.goids fed in
  let local_class =
    match
      Global_schema.constituent_of gs ~gcls:analysis.Analysis.range_class ~db:db_name
    with
    | Some cls -> cls
    | None ->
      invalid_arg
        (Printf.sprintf "Local_eval.run: %s has no constituent of %s" db_name
           analysis.Analysis.range_class)
  in
  let atoms = Array.of_list analysis.Analysis.atoms in
  let targets = Array.of_list analysis.Analysis.targets in
  let meter = Meter.create () in
  let ext = Database.extent_handle db local_class in
  (* Columnar fast path: a single-step atom evaluates over the whole extent
     in one typed loop ([Extent.eval_attr]), leaving only per-row verdict
     decoding in the object loop below. [None] — a nested path, or an
     ordering comparison the column cannot answer exactly — falls back to
     the per-object walk; answers and meter totals are identical either
     way. *)
  let fast =
    Array.map
      (fun info ->
        let pred = info.Analysis.pred in
        match pred.Predicate.path with
        | [ attr ] ->
          Extent.eval_attr ~meter ext ~attr ~op:pred.Predicate.op
            ~operand:pred.Predicate.operand
        | _ -> None)
      atoms
  in
  let examined = ref 0 and eliminated = ref 0 in
  let rows = ref [] in
  let eval_object r obj =
    incr examined;
    let truths = Array.make (Array.length atoms) Truth.Unknown in
    let unsolved = ref [] in
    Array.iteri
      (fun i info ->
        let pred = info.Analysis.pred in
        let block cause =
          truths.(i) <- Truth.Unknown;
          unsolved :=
            {
              Local_result.atom = i;
              item = obj;
              rest = pred.Predicate.path;
              cause;
            }
            :: !unsolved
        in
        match fast.(i) with
        | Some codes -> (
          match Extent.verdict codes r with
          | Extent.V_sat -> truths.(i) <- Truth.True
          | Extent.V_viol -> truths.(i) <- Truth.False
          | Extent.V_null -> block Predicate.Null_value
          | Extent.V_missing -> block Predicate.Missing_attribute)
        | None -> (
          match Predicate.eval ~meter db obj pred with
          | Predicate.Sat -> truths.(i) <- Truth.True
          | Predicate.Viol -> truths.(i) <- Truth.False
          | Predicate.Blocked b ->
            truths.(i) <- Truth.Unknown;
            unsolved :=
              {
                Local_result.atom = i;
                item = b.Predicate.obj;
                rest = b.Predicate.rest;
                cause = b.Predicate.cause;
              }
              :: !unsolved))
      atoms;
    let local_truth =
      Cond.eval
        (fun pred ->
          (* Atoms are evaluated positionally; identical predicates share a
             verdict, which is sound (same object, same predicate). *)
          let rec find i =
            if i >= Array.length atoms then Truth.Unknown
            else if Predicate.equal atoms.(i).Analysis.pred pred then truths.(i)
            else find (i + 1)
          in
          find 0)
        analysis.Analysis.query.Ast.where
    in
    match local_truth with
    | Truth.False -> incr eliminated
    | Truth.True | Truth.Unknown ->
      let goid =
        match
          Goid_table.goid_of_local table ~meter ~db:db_name (Dbobject.loid obj)
        with
        | Some g -> g
        | None ->
          invalid_arg
            (Printf.sprintf "Local_eval.run: object %s@%s is not registered"
               (Oid.Loid.to_string (Dbobject.loid obj))
               db_name)
      in
      let values =
        Array.map
          (fun (path, _) ->
            match Predicate.fetch ~meter db obj path with
            | Predicate.Found v -> Some v
            | Predicate.Missing _ -> None)
          targets
      in
      rows :=
        {
          Local_result.db = db_name;
          obj;
          goid;
          truths;
          unsolved = List.rev !unsolved;
          values;
        }
        :: !rows
  in
  for r = 0 to Extent.size ext - 1 do
    eval_object r (Extent.handle ext r)
  done;
  Log.debug (fun m ->
      m "%s: %d examined, %d eliminated, %d rows" db_name !examined !eliminated
        (List.length !rows));
  {
    Local_result.db = db_name;
    rows = List.rev !rows;
    examined = !examined;
    eliminated = !eliminated;
    work = Meter.read meter;
  }
