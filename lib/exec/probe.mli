(** Missing-data probing — phase O's discovery part in PL (step PL_C1).

    Walks every atom's path on {e every} object of the local root class,
    recording where evaluation would block, {e without} evaluating any
    comparison: the parallel localized approach looks up assistant objects
    before the local predicates run, so it probes all objects — not just the
    survivors — which is exactly its extra overhead over BL. *)

open Msdq_odb
open Msdq_fed
open Msdq_query

type t = {
  db : string;
  items : Local_result.unsolved list;
      (** one entry per (object, blocked atom), in extent order; includes
          root-level blocks (which produce no check requests) *)
  examined : int;
  work : Meter.snapshot;
}

val run :
  ?tracer:Msdq_obs.Tracer.t -> Federation.t -> Analysis.t -> db:string -> t
