open Msdq_odb
open Msdq_fed
open Msdq_query

type t = { by_class : (string, string list) Hashtbl.t; classes : string list }

let compute schema (analysis : Analysis.t) =
  let sets : (string, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let note cls attr =
    let set =
      match Hashtbl.find_opt sets cls with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 8 in
        Hashtbl.add sets cls s;
        s
    in
    Hashtbl.replace set attr ()
  in
  let note_path path =
    match Path.resolve schema ~root:analysis.Analysis.range_class path with
    | Path.Full (steps, _) ->
      List.iter (fun st -> note st.Path.on_class st.Path.attr.Schema.aname) steps
    | Path.Cut _ | Path.Invalid _ ->
      (* analysis already validated all paths against the global schema *)
      assert false
  in
  List.iter (fun (path, _) -> note_path path) analysis.Analysis.targets;
  List.iter (fun info -> note_path info.Analysis.pred.Predicate.path) analysis.Analysis.atoms;
  let by_class = Hashtbl.create 8 in
  List.iter
    (fun cls ->
      let attrs =
        match Hashtbl.find_opt sets cls with
        | Some s -> List.sort String.compare (Hashtbl.fold (fun a () acc -> a :: acc) s [])
        | None -> []
      in
      Hashtbl.replace by_class cls attrs)
    analysis.Analysis.classes_involved;
  { by_class; classes = analysis.Analysis.classes_involved }

let attrs_of_class t cls =
  match Hashtbl.find_opt t.by_class cls with Some l -> l | None -> []

let classes t = t.classes

let local_projection_width t gs ~db ~gcls =
  match Global_schema.constituent_of gs ~gcls ~db with
  | None -> 0
  | Some _ ->
    let missing = Global_schema.missing_attrs gs ~gcls ~db in
    List.length
      (List.filter (fun a -> not (List.mem a missing)) (attrs_of_class t gcls))
