(** Probabilistic grading of maybe results (extension).

    The paper presents maybe results unranked. Its own lineage suggests
    better: DeMichiel's partial values (reference [8]) and Tseng, Chen and
    Yang's probabilistic partial values (reference [18]) treat a missing
    value as a distribution over candidate values. This module grades each
    maybe result with the probability that it actually satisfies the query:
    an Unknown atom's probability is estimated as the fraction of non-null
    values of its final attribute — observed federation-wide across the
    attribute's class extents — that satisfy the comparison, and the
    predicate tree is combined under independence (certain atoms contribute
    1 or 0).

    On the paper's Q1, Tony scores 1/2 x 1/2 = 0.25: one of the two known
    cities is Taipei, one of the two known specialities is database, and his
    advisor's department is definitely CS. *)

open Msdq_query

type graded = { row : Answer.row; probability : float }

type t = {
  certain : Answer.row list;
  maybe : graded list;  (** sorted by decreasing probability *)
}

val annotate : Msdq_fed.Federation.t -> Analysis.t -> Answer.t -> t
(** Grades every maybe row of an answer. The answer must come from a
    strategy run over the same federation and analysis. *)

val expected_size : t -> float
(** Expected number of query results: |certain| + sum of probabilities. *)

val attribute_selectivity :
  Msdq_fed.Federation.t -> gcls:string -> attr:string ->
  op:Msdq_odb.Predicate.op -> operand:Msdq_odb.Value.t -> float
(** The candidate-distribution estimate itself: the fraction of non-null
    values of [gcls.attr] across all constituent extents satisfying
    [op operand]; 0.5 when no values are observed (uninformative prior).
    Exposed for testing and for cost-model calibration. *)

val pp : Format.formatter -> t -> unit
