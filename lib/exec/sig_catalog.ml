open Msdq_odb
open Msdq_fed

type t = { sigs : (string * int, Signature.t) Hashtbl.t; mutable count : int }

let build fed =
  let t = { sigs = Hashtbl.create 1024; count = 0 } in
  List.iter
    (fun (db_name, db) ->
      List.iter
        (fun cd ->
          List.iter
            (fun obj ->
              Hashtbl.replace t.sigs
                (db_name, Oid.Loid.to_int (Dbobject.loid obj))
                (Signature.of_object obj);
              t.count <- t.count + 1)
            (Database.extent db cd.Schema.cname))
        (Schema.classes (Database.schema db)))
    (Federation.databases fed);
  t

let find t ~db loid = Hashtbl.find_opt t.sigs (db, Oid.Loid.to_int loid)
let object_count t = t.count
let storage_bytes t ~s_sig = t.count * s_sig
