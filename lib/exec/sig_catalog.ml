open Msdq_odb
open Msdq_fed

type entry = { e_sigs : Sigset.t; e_row : int }

type t = { sigs : (string * int, entry) Hashtbl.t; mutable count : int }

let build fed =
  let t = { sigs = Hashtbl.create 1024; count = 0 } in
  List.iter
    (fun (db_name, db) ->
      List.iter
        (fun cd ->
          let ext = Database.extent_handle db cd.Schema.cname in
          let sigs = Extent.signatures ext in
          for row = 0 to Extent.size ext - 1 do
            let obj = Extent.handle ext row in
            Hashtbl.replace t.sigs
              (db_name, Oid.Loid.to_int (Dbobject.loid obj))
              { e_sigs = sigs; e_row = row };
            t.count <- t.count + 1
          done)
        (Schema.classes (Database.schema db)))
    (Federation.databases fed);
  t

let find t ~db loid = Hashtbl.find_opt t.sigs (db, Oid.Loid.to_int loid)

let may_satisfy e ~index ~op ~operand =
  Sigset.may_satisfy e.e_sigs ~row:e.e_row ~index ~op ~operand

let object_count t = t.count
let storage_bytes t ~s_sig = t.count * s_sig
