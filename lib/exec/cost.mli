(** The system cost parameters of Table 1. *)

open Msdq_simkit

type t = {
  s_a : int;  (** average size of an attribute value, bytes (32) *)
  s_goid : int;  (** size of a GOid, bytes (16) *)
  s_loid : int;  (** size of a LOid, bytes (16) *)
  s_sig : int;  (** size of an object signature, bytes (32) *)
  t_d : float;  (** average disk access time, us/byte (15) *)
  t_net : float;  (** average network transfer time, us/byte (8) *)
  t_c : float;  (** average CPU processing time, us/comparison (0.5) *)
  n_iso : int;  (** average isomeric objects per real-world entity (2) *)
  s_page : int;
      (** disk page size, bytes (256): random accesses — fetching individual
          assistant objects for checks — read whole pages, while extent
          scans read packed projections sequentially (modelling addition;
          see DESIGN.md) *)
}

val default : t
(** Exactly Table 1. *)

val disk : t -> bytes:int -> Time.t

val net : t -> bytes:int -> Time.t

val cpu : t -> units:int -> Time.t
(** [units] counts comparisons plus attribute accesses (see
    [Msdq_odb.Meter]). *)

val pp : Format.formatter -> t -> unit
