(** The paper's query execution strategies, run end to end.

    Each strategy computes the {e real} answer over the federation's data
    and replays its work onto the discrete-event simulator as a task graph
    with the paper's cost constants, yielding the two metrics of the
    evaluation: {e total execution time} (all resource work in the system)
    and {e response time} (makespan).

    {ul
    {- [Ca] — centralized, phase order O -> I -> P: ship projected extents,
       outerjoin on GOids at the global site, evaluate there.}
    {- [Bl] — basic localized, P -> O -> I: local predicates first, assistant
       checks only for the surviving maybe results, certification at the
       global site.}
    {- [Pl] — parallel localized, O -> P -> I: assistant lookup/dispatch for
       all root objects before local evaluation, so checking at remote sites
       overlaps local evaluation.}
    {- [Bls]/[Pls] — signature-filtered variants (future-work extension):
       single-attribute equality checks are pre-filtered against replicated
       object signatures, skipping provably futile round trips.}
    {- [Lo] — ablation: the localized approach with phase O removed. Local
       results are still merged per entity at the global site (so cross-
       database elimination and value merging still happen) but no assistant
       checks are issued; unsolved items stay unsolved. Comparing LO with BL
       isolates what assistant checking costs and buys.}
    {- [Cf] — semijoin-filtered centralized (extension, after the paper's
       reference [20]): databases first exchange surviving-GOid lists so
       that only candidate root objects are shipped for integration. Same
       answers as CA on consistent federations; cheaper shipping at low
       selectivity, one extra round trip always.}}

    Every run owns a private {!Msdq_obs.Metrics.t} registry and
    {!Msdq_obs.Tracer.t}: simulated-task counters carry
    [strategy]/[phase] labels, host-side execution records hierarchical
    spans, and nothing is stored in process globals, so concurrent runs
    can never bleed counts into each other. *)

open Msdq_simkit
open Msdq_fed
open Msdq_query

module Fault = Msdq_fault.Fault
(** Re-exported so callers can write [Strategy.Fault.none] without a second
    open. *)

module Recovery = Recovery
(** Failover recovery policy + per-link circuit breakers (see
    {!Recovery.policy}); selected through [options.recovery]. *)

type t = Ca | Bl | Pl | Bls | Pls | Lo | Cf

val all : t list

val to_string : t -> string

val of_string : string -> t option

type selection = Fixed of t | Auto
(** What a caller asks for: one fixed strategy, or adaptive cost-based
    selection per query ([Auto], implemented by [Msdq_opt.Optimizer] and
    the workload engine's [Msdq_serve.Serve.run_auto]). The enum lives
    here so command-line front ends can parse it without depending on the
    optimizer library. *)

val selection_to_string : selection -> string

val selection_of_string : string -> (selection, string) result
(** Case-insensitive. The error message lists the accepted set
    ([CA, BL, PL, BLS, PLS, LO, CF, AUTO]). *)

type adaptive = {
  k : float;  (** multiplier over the observed latency, > 0 *)
  lo : Time.t;  (** timeout floor, >= 0 *)
  hi : Time.t;  (** timeout ceiling, >= [lo]; also the no-observation default *)
}
(** Telemetry-driven per-destination retry timeouts:
    [clamp(lo, k x ewma(dst), hi)] over the destination's observed check
    round-trip latency (supplied through [options.latency_of], typically the
    telemetry store's per-link EWMA). A destination with no observation uses
    the generous [hi] so it is never spuriously demoted by an aggressive
    guess. *)

type retry = {
  timeout : Time.t;
      (** how long the sender waits after a lost transfer before
          retransmitting (the first attempt's wait; later waits grow by
          [backoff]); ignored when [adaptive] is set *)
  max_attempts : int;  (** attempts per check round-trip leg, >= 1 *)
  backoff : float;  (** multiplicative wait growth per attempt, >= 1 *)
  adaptive : adaptive option;
      (** [None] (the default): the static [timeout] for every destination —
          the historical behaviour. [Some _]: per-destination adaptive
          timeouts; also arms latency-aware breaker tripping
          ({!Recovery.Breaker.slow}) and telemetry-driven hedge delays. *)
}

val default_retry : retry
(** 1 ms static timeout, 3 attempts, doubling backoff, no adaptivity. *)

val default_adaptive : adaptive
(** [k = 2], floor 200 us, ceiling 4 ms. *)

val effective_timeout : ?latency_of:(int -> float option) -> retry -> dst:int -> Time.t
(** The resolved first-attempt timeout for [dst]: the static [timeout] when
    [adaptive] is [None], otherwise [clamp(lo, k x latency_of dst, hi)]
    ([hi] when [latency_of] is absent or has no observation for [dst]).
    Exposed so the serve layer and experiments resolve exactly the timeout
    the executors use. *)

type options = {
  cost : Cost.t;
  deep_certify : bool;
      (** run {!Deep} after certification (localized strategies only) *)
  multi_valued : bool;
      (** multi-valued integration (extension): disagreeing isomeric values
          form value sets with existential predicate semantics instead of
          being treated as conflicts *)
  site_speeds : (int * float) list;
      (** heterogeneous hardware: [(site, factor)] scales the site's CPU and
          disk speed (factor 0.5 = half speed; site 0 is the global
          processing site, database i lives at site i+1). Validated eagerly:
          duplicate site ids and non-positive or non-finite factors raise
          [Invalid_argument] before any simulated work happens. *)
  fault : Fault.schedule;
      (** fault injection (see {!Msdq_fault.Fault}): with {!Fault.none} (the
          default) the execution is exactly the fault-free one *)
  retry : retry;
      (** retransmission policy for check round trips under faults; result
          and extent shipments are critical and additionally wait out
          destination outages *)
  recovery : Recovery.policy;
      (** failover recovery for the localized strategies' checks (see
          {!Recovery}): with [failover] set, a check whose round trip was
          abandoned is re-issued to the next live site holding an isomeric
          replica (per-link circuit breakers gate the routing; optional
          hedged duplicates race the failover batch), and only keys no live
          replica could answer demote their rows. {!Recovery.disabled} (the
          default) reproduces the retry-only behaviour exactly. *)
  telemetry : bool;
      (** record latency histograms into the run's registry:
          [msdq_task_duration_us{strategy, site, resource, phase}]
          (log-bucketed, from the engine trace) and
          [msdq_query_latency_us{strategy}]. Off by default so existing
          registry dumps and [--json] reports stay byte-identical
          (golden-pinned). *)
  latency_of : (int -> float option) option;
      (** observed mean check round-trip latency (microseconds) per
          destination site, consulted by adaptive timeouts — typically a
          closure over the telemetry store's per-link statistics. [None]
          (the default) means no observations: adaptive timeouts fall back
          to their ceiling. *)
}

val default_options : options
(** Table 1 costs, no deep certification, no faults, {!default_retry},
    {!Recovery.disabled}, no latency observations. *)

val validate_options : options -> unit
(** Eager configuration validation: raises [Invalid_argument] with a
    readable message on duplicate or non-positive [site_speeds] entries, a
    malformed fault schedule, a retry policy with [max_attempts < 1],
    negative timeout or [backoff < 1], or an invalid recovery policy.
    {!run} calls this itself; it is exposed so other executors sharing
    [options] — the workload engine [Msdq_serve] — can fail just as early
    with the same diagnostics. *)

type availability = {
  faults_active : bool;  (** a non-empty fault schedule was installed *)
  failed_sites : int list;  (** sites with at least one outage window *)
  drops : int;  (** transfers lost (including lost retransmissions) *)
  retries : int;  (** retransmission attempts *)
  checks_abandoned : int;
      (** check requests whose round trip was given up after
          [retry.max_attempts] *)
  certain_fault_free : int;
      (** certain results the fault-free execution produces *)
  demoted : int;
      (** fault-free certain results reported as uncertified maybe results;
          reconciliation: certain(faulty) + demoted = certain(fault-free) *)
  recovered : int;
      (** rows touched by an abandoned check batch that failover re-routing
          nevertheless answered — what a retry-only run would have demoted;
          0 unless [options.recovery.failover] is set *)
  resurrected : int;
      (** entities the fault-free execution eliminates but that stay visible
          as maybe results because an eliminating verdict was lost *)
  partial : bool;
      (** a critical transfer was abandoned (a site never recovered): every
          row is reported as an uncertified maybe result *)
  degradation_ratio : float;  (** [demoted / certain_fault_free] *)
}
(** The availability section of a run: what the faults did and what the
    degraded answer admits to. Demoted and resurrected entities carry
    per-item provenance in {!Answer.degraded}. *)

val pp_availability : Format.formatter -> availability -> unit
(** Prints nothing when [faults_active] is false. For faulty runs, ends with
    the reconciliation line [certain(faulty) + demoted = certain(fault-free)]
    with the actual numbers, so degraded runs are auditable from the CLI
    without [--json]. *)

type metrics = {
  strategy : t;
  total : Time.t;  (** total execution time *)
  response : Time.t;  (** response time *)
  bytes_shipped : int;
  disk_bytes : int;
  messages : int;  (** network transfers performed *)
  check_requests : int;
  checks_filtered : int;  (** avoided by signatures *)
  work_units : int;  (** comparisons + accesses, all sites *)
  goid_lookups : int;
  promoted : int;  (** local maybe results certified into certain results *)
  eliminated_at_global : int;
  conflicts : int;  (** contradictory definite verdicts (inconsistent data) *)
  breakdown : (string * Time.t * int) list;  (** busy time per task label *)
  trace : Trace.t;
      (** simulated task trace; every entry carries [strategy]/[phase] (and
          [db] where applicable) attributes *)
  registry : Msdq_obs.Metrics.t;
      (** the run's private metrics registry; counters are labelled by
          [strategy] and paper phase ([O]/[P]/[I]) *)
  host_spans : Msdq_obs.Tracer.span list;
      (** host-side spans recorded while building/executing the run
          (materialization, local evaluation, check serving, certification) *)
  availability : availability;
      (** the run's fault/degradation report; [faults_active = false] and
          all-zero for fault-free runs *)
}

val run : ?options:options -> t -> Federation.t -> Analysis.t -> Answer.t * metrics

val phase_breakdown : metrics -> (string * Time.t * int) list
(** Busy time and task count per paper phase, computed from the task trace's
    [phase] attributes. Always three entries, in order [O]; [P]; [I]. *)

type concurrent_query = {
  started : Time.t;  (** arrival time of the query *)
  completed : Time.t;  (** when its answer was assembled *)
  q_strategy : t;
  q_answer : Answer.t;
  q_registry : Msdq_obs.Metrics.t;
      (** this query's own registry — isolated from its co-runners *)
  q_work_units : int;
  q_bytes_shipped : int;
  q_goid_lookups : int;
}

type concurrent_outcome = {
  queries : concurrent_query list;  (** in submission order *)
  combined_total : Time.t;
  combined_makespan : Time.t;
}

val run_concurrent :
  ?options:options -> Federation.t -> (t * Analysis.t * Time.t) list ->
  concurrent_outcome
(** Multi-query workloads (extension): several queries share one simulated
    system — same sites, same FIFO resources — so they interfere exactly
    where real executions would. Each job is (strategy, analyzed query,
    arrival time); a query's tasks become eligible at its arrival.
    Per-query latency is [completed - started]. Each job owns a private
    metrics registry, so per-query counts stay independent however the
    engine interleaves their tasks. *)

val run_query :
  ?options:options -> t -> Federation.t -> string -> (Answer.t * metrics, string) result
(** Parse, analyze against the federation's global schema, and {!run}.
    Returns [Error] with a readable message on parse/analysis failures. *)

val pp_metrics : Format.formatter -> metrics -> unit
