(** Failover recovery for assistant checks.

    PR 3's fault layer is passive: a check batch that exhausts its retries is
    abandoned and every item it carried demotes to uncertified maybe. This
    module supplies the active half — the policy knobs and the per-link
    circuit breaker — used by {!Strategy} to upgrade the localized strategies
    (BL/PL/BLS/PLS) from fail-demote to fail-over:

    - {b Replica-aware re-routing.} Isomeric objects sharing a GOid are
      natural replicas: the per-target check requests built by {!Checks.build}
      double as a routing table, and when the last in-flight batch for a
      [(origin, item, atom)] key fails unanswered, the dispatcher re-issues
      the check to the next live candidate site, charging the simulated clock
      for the extra round trip. Only when no live replica can answer does the
      item demote (with the failover chain recorded in the answer's degraded
      provenance).
    - {b Per-link circuit breakers} ({!Breaker}): after [breaker_threshold]
      consecutive drops on a destination's incoming link the breaker opens
      and routing skips that destination until a half-open probe succeeds at
      the schedule's next-up instant — replacing blind retransmission storms.
      Openings and probes surface as [msdq_breaker_{opened,probes}_total]
      counters and ["breaker"] span events.
    - {b Hedged dispatch}: with [hedge_after = Some d], a failover batch
      still unanswered [d] after dispatch races a duplicate batch to the next
      live candidate; the first answer wins and the loser's verdict is
      discarded idempotently (certification is insensitive to duplicate
      identical verdicts — qcheck-pinned).

    Everything here is plain deterministic data + state machines; all
    simulated-time behaviour lives in {!Strategy}. *)

open Msdq_simkit
module Fault = Msdq_fault.Fault

type policy = {
  failover : bool;
      (** master switch: re-route abandoned checks to isomeric replicas *)
  breaker_threshold : int;
      (** consecutive drops on a link before its breaker opens; >= 1 *)
  hedge_after : Time.t option;
      (** race a duplicate failover batch to the next candidate after this
          long without an answer; [None] disables hedging *)
}

val disabled : policy
(** Recovery off — byte-identical to the PR 3 retry-only behaviour. *)

val default : policy
(** Failover on, breaker threshold 3, no hedging. *)

val hedged : Time.t -> policy
(** {!default} plus hedged dispatch after the given delay. *)

val validate : policy -> unit
(** Raises [Invalid_argument] on [breaker_threshold < 1] or a negative /
    non-finite [hedge_after]. *)

(** Per-destination-link circuit breaker.

    One state machine per destination site, fed only by {e check request}
    legs (verdict return legs terminate at the global site, which has no
    alternative route — gating them could only lose answers):

    {v
              k consecutive drops
      Closed ----------------------> Open
        ^  ^                          |  allow? at >= probe_at
        |  |                          v  (probe_at = Fault.next_up)
        |  '--------- success ---- Half_open
        |                             |
        '------- (reopen) <--- failure'
    v}

    While [Open], [live] and [allow] reject the destination until the
    schedule's next-up instant; the first [allow] at or after it grants a
    single half-open probe. A successful probe closes the breaker; a failed
    one reopens it. A link whose site never recovers ([next_up = None]) stays
    open forever. *)
module Breaker : sig
  type state = Closed | Open | Half_open

  type event =
    | Opened of { site : int; at : Time.t; probe_at : Time.t option }
        (** the breaker for [site] opened (or reopened after a failed
            probe); [probe_at] is the earliest half-open probe instant,
            [None] if the site never recovers *)
    | Probing of { site : int; at : Time.t }
        (** a half-open probe was granted *)

  type t

  val create :
    ?on_event:(event -> unit) -> threshold:int -> sched:Fault.schedule ->
    unit -> t
  (** All links start [Closed]. [on_event] fires synchronously on every
      opening and probe grant (used for span events). *)

  val state : t -> site:int -> state

  val live : t -> site:int -> at:Time.t -> bool
  (** Non-mutating routing check: would a dispatch to [site] at [at] be
      allowed? [Closed] yes; [Half_open] no (a probe is in flight); [Open]
      only once [at] reaches the probe instant. *)

  val allow : t -> site:int -> at:Time.t -> bool
  (** Dispatch gate. Like {!live}, but an [Open] breaker whose probe instant
      has arrived transitions to [Half_open] and grants exactly one probe
      (counted, evented) — concurrent dispatchers racing [allow] serialize. *)

  val success : t -> site:int -> unit
  (** A transfer to [site] was delivered: close the breaker, reset the
      consecutive-failure count. *)

  val failure : t -> site:int -> at:Time.t -> unit
  (** A transfer to [site] was dropped at [at]: count it; open at
      [threshold] consecutive failures, reopen on a failed probe. *)

  val slow : t -> site:int -> at:Time.t -> unit
  (** Latency-aware tripping: a round trip to [site] {e completed} at [at]
      but exceeded the adaptive latency threshold. Counts toward opening
      exactly like {!failure} (and is additionally tallied in
      {!slow_total}), so a gray destination — up, answering, but far slower
      than its observed baseline — is routed around just like a dead one.
      Callers that consider a delivered round trip fast enough call
      {!success} instead; the two are mutually exclusive per round trip. *)

  val opened_total : t -> int
  (** Openings, including reopenings after failed probes. *)

  val probes_total : t -> int
  (** Half-open probes granted. *)

  val slow_total : t -> int
  (** Slow round trips counted toward tripping via {!slow}. *)
end
