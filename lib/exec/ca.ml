open Msdq_odb
open Msdq_fed
open Msdq_query
module Tracer = Msdq_obs.Tracer

type outcome = {
  answer : Answer.t;
  integration_units : int;
  eval_work : Meter.snapshot;
  goid_lookups : int;
  materialize_stats : Materialize.stats;
}

let run ?(multi_valued = false) ?(tracer = Tracer.disabled) fed
    (analysis : Analysis.t) =
  Tracer.with_span tracer ~cat:"integrate" "ca.run" @@ fun () ->
  let meter = Meter.create () in
  let view =
    Tracer.with_span tracer ~cat:"integrate" "ca.materialize" (fun () ->
        Materialize.build ~classes:analysis.Analysis.classes_involved
          ~multi_valued ~meter fed)
  in
  let mstats = Materialize.stats view in
  let integration_units =
    mstats.Materialize.source_objects + mstats.Materialize.fields_merged
    + mstats.Materialize.ref_translations
  in
  let eval_meter = Meter.create () in
  let targets = Array.of_list (List.map fst analysis.Analysis.targets) in
  let atoms = Array.of_list analysis.Analysis.atoms in
  let n_atoms = Array.length atoms in
  let rows = ref [] in
  let eval_entity gobj =
    let truths = Array.make n_atoms Truth.Unknown in
    Array.iteri
      (fun i info ->
        truths.(i) <-
          Global_eval.truth_of_outcome
            (Global_eval.eval ~meter:eval_meter view gobj info.Analysis.pred))
      atoms;
    let truth =
      Cond.eval
        (fun pred ->
          let rec find i =
            if i >= n_atoms then Truth.Unknown
            else if Predicate.equal atoms.(i).Analysis.pred pred then truths.(i)
            else find (i + 1)
          in
          find 0)
        analysis.Analysis.query.Ast.where
    in
    match truth with
    | Truth.False -> ()
    | (Truth.True | Truth.Unknown) as t ->
      let values =
        Array.to_list
          (Array.map
             (fun path -> Global_eval.project ~meter:eval_meter view gobj path)
             targets)
      in
      let status =
        match t with
        | Truth.True -> Answer.Certain
        | Truth.Unknown -> Answer.Maybe
        | Truth.False -> assert false
      in
      rows := { Answer.goid = gobj.Materialize.goid; values; status } :: !rows
  in
  Tracer.with_span tracer ~cat:"eval" "ca.global-eval" (fun () ->
      List.iter eval_entity
        (Materialize.extent view analysis.Analysis.range_class));
  let answer =
    Answer.make ~targets:(List.map fst analysis.Analysis.targets) (List.rev !rows)
  in
  {
    answer;
    integration_units;
    eval_work = Meter.read eval_meter;
    goid_lookups =
      (Meter.read meter).Meter.goid_lookups
      + (Meter.read eval_meter).Meter.goid_lookups;
    materialize_stats = mstats;
  }
