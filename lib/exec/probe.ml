open Msdq_odb
open Msdq_fed
open Msdq_query

type t = {
  db : string;
  items : Local_result.unsolved list;
  examined : int;
  work : Meter.snapshot;
}

let run fed (analysis : Analysis.t) ~db:db_name =
  let gs = Federation.global_schema fed in
  let db = Federation.db fed db_name in
  let local_class =
    match
      Global_schema.constituent_of gs ~gcls:analysis.Analysis.range_class ~db:db_name
    with
    | Some cls -> cls
    | None ->
      invalid_arg
        (Printf.sprintf "Probe.run: %s has no constituent of %s" db_name
           analysis.Analysis.range_class)
  in
  let atoms = Array.of_list analysis.Analysis.atoms in
  let before = Meter.read () in
  let examined = ref 0 in
  let items = ref [] in
  let probe_object obj =
    incr examined;
    Array.iteri
      (fun i info ->
        match Predicate.fetch db obj info.Analysis.pred.Predicate.path with
        | Predicate.Found _ -> ()
        | Predicate.Missing b ->
          items :=
            {
              Local_result.atom = i;
              item = b.Predicate.obj;
              rest = b.Predicate.rest;
              cause = b.Predicate.cause;
            }
            :: !items)
      atoms
  in
  List.iter probe_object (Database.extent db local_class);
  { db = db_name; items = List.rev !items; examined = !examined; work = Meter.delta before }
