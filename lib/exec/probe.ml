open Msdq_odb
open Msdq_fed
open Msdq_query
module Tracer = Msdq_obs.Tracer

type t = {
  db : string;
  items : Local_result.unsolved list;
  examined : int;
  work : Meter.snapshot;
}

let run ?(tracer = Tracer.disabled) fed (analysis : Analysis.t) ~db:db_name =
  Tracer.with_span tracer ~cat:"eval" ~args:[ ("db", db_name) ] "probe.run"
  @@ fun () ->
  let gs = Federation.global_schema fed in
  let db = Federation.db fed db_name in
  let local_class =
    match
      Global_schema.constituent_of gs ~gcls:analysis.Analysis.range_class ~db:db_name
    with
    | Some cls -> cls
    | None ->
      invalid_arg
        (Printf.sprintf "Probe.run: %s has no constituent of %s" db_name
           analysis.Analysis.range_class)
  in
  let atoms = Array.of_list analysis.Analysis.atoms in
  let meter = Meter.create () in
  let examined = ref 0 in
  let items = ref [] in
  let probe_object obj =
    incr examined;
    Array.iteri
      (fun i info ->
        match Predicate.fetch ~meter db obj info.Analysis.pred.Predicate.path with
        | Predicate.Found _ -> ()
        | Predicate.Missing b ->
          items :=
            {
              Local_result.atom = i;
              item = b.Predicate.obj;
              rest = b.Predicate.rest;
              cause = b.Predicate.cause;
            }
            :: !items)
      atoms
  in
  List.iter probe_object (Database.extent db local_class);
  {
    db = db_name;
    items = List.rev !items;
    examined = !examined;
    work = Meter.read meter;
  }
