(** The centralized approach's computation (steps CA_G2/CA_G3): outerjoin
    integration of the shipped constituent extents, then predicate
    evaluation over the integrated objects.

    The data work is performed by [Msdq_fed.Materialize] and
    [Msdq_fed.Global_eval]; this module drives them for one analyzed query
    and assembles the answer with work counters for the cost model. *)

open Msdq_odb
open Msdq_query

type outcome = {
  answer : Answer.t;
  integration_units : int;
      (** outerjoin work: hash probes per source object, field merges, and
          LOid-to-GOid translations *)
  eval_work : Meter.snapshot;  (** phase P work *)
  goid_lookups : int;
  materialize_stats : Msdq_fed.Materialize.stats;
}

val run :
  ?multi_valued:bool -> ?tracer:Msdq_obs.Tracer.t -> Msdq_fed.Federation.t ->
  Analysis.t -> outcome
(** With [~multi_valued:true], disagreeing isomeric values integrate into
    value sets evaluated existentially (extension). *)
