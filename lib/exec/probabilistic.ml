open Msdq_odb
open Msdq_fed
open Msdq_query

type graded = { row : Answer.row; probability : float }

type t = { certain : Answer.row list; maybe : graded list }

let attribute_selectivity fed ~gcls ~attr ~op ~operand =
  let gs = Federation.global_schema fed in
  let total = ref 0 and sat = ref 0 in
  List.iter
    (fun (db_name, db) ->
      match Global_schema.constituent_of gs ~gcls ~db:db_name with
      | None -> ()
      | Some local_cls ->
        List.iter
          (fun obj ->
            match Database.field_by_name db obj attr with
            | None | Some Value.Null | Some (Value.Ref _) -> ()
            | Some v ->
              incr total;
              if Predicate.compare_op op v operand then incr sat)
          (Database.extent db local_cls))
    (Federation.databases fed);
  if !total = 0 then 0.5 else float_of_int !sat /. float_of_int !total

(* The global class holding an atom's final attribute, from its resolved
   steps against the global schema. *)
let final_class (info : Analysis.atom_info) =
  match List.rev info.Analysis.steps with
  | last :: _ -> last.Path.on_class
  | [] -> assert false (* paths are non-empty *)

let annotate fed (analysis : Analysis.t) answer =
  let view =
    Materialize.build ~classes:analysis.Analysis.classes_involved fed
  in
  let atoms = Array.of_list analysis.Analysis.atoms in
  let n_atoms = Array.length atoms in
  (* Per-atom candidate-distribution estimate, memoized. *)
  let estimates = Array.make n_atoms Float.nan in
  let estimate i =
    if Float.is_nan estimates.(i) then begin
      let info = atoms.(i) in
      let pred = info.Analysis.pred in
      let attr =
        match List.rev pred.Predicate.path with
        | a :: _ -> a
        | [] -> assert false
      in
      estimates.(i) <-
        attribute_selectivity fed ~gcls:(final_class info) ~attr
          ~op:pred.Predicate.op ~operand:pred.Predicate.operand
    end;
    estimates.(i)
  in
  (* Probability of a condition tree under independence, given per-atom
     probabilities. *)
  let atom_probs = Array.make n_atoms 0.5 in
  let rec prob_of = function
    | Cond.Atom pred ->
      let rec find i =
        if i >= n_atoms then 0.5
        else if Predicate.equal atoms.(i).Analysis.pred pred then atom_probs.(i)
        else find (i + 1)
      in
      find 0
    | Cond.And ts -> List.fold_left (fun acc t -> acc *. prob_of t) 1.0 ts
    | Cond.Or ts ->
      1.0 -. List.fold_left (fun acc t -> acc *. (1.0 -. prob_of t)) 1.0 ts
    | Cond.Not t -> 1.0 -. prob_of t
  in
  let grade (row : Answer.row) =
    match Materialize.find view row.Answer.goid with
    | None -> { row; probability = 0.5 }
    | Some gobj ->
      Array.iteri
        (fun i info ->
          atom_probs.(i) <-
            (match Global_eval.eval view gobj info.Analysis.pred with
            | Global_eval.Sat -> 1.0
            | Global_eval.Viol -> 0.0
            | Global_eval.Blocked _ -> estimate i))
        atoms;
      { row; probability = prob_of analysis.Analysis.query.Ast.where }
  in
  let graded =
    List.map grade (Answer.maybe answer)
    |> List.sort (fun a b -> Float.compare b.probability a.probability)
  in
  { certain = Answer.certain answer; maybe = graded }

let expected_size t =
  float_of_int (List.length t.certain)
  +. List.fold_left (fun acc g -> acc +. g.probability) 0.0 t.maybe

let pp ppf t =
  Format.fprintf ppf "@[<v>certain (%d):@," (List.length t.certain);
  List.iter
    (fun (r : Answer.row) ->
      Format.fprintf ppf "  %a: %s@," Oid.Goid.pp r.Answer.goid
        (String.concat ", " (List.map Value.to_string r.Answer.values)))
    t.certain;
  Format.fprintf ppf "maybe, graded (%d):@," (List.length t.maybe);
  List.iter
    (fun g ->
      Format.fprintf ppf "  %a: %s  (p = %.3f)@," Oid.Goid.pp
        g.row.Answer.goid
        (String.concat ", " (List.map Value.to_string g.row.Answer.values))
        g.probability)
    t.maybe;
  Format.fprintf ppf "expected result size: %.2f@]" (expected_size t)
