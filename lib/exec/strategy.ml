open Msdq_odb
open Msdq_simkit
open Msdq_fed
open Msdq_query
module Metrics = Msdq_obs.Metrics
module Tracer = Msdq_obs.Tracer
module Fault = Msdq_fault.Fault

let log_src = Logs.Src.create "msdq.exec" ~doc:"query execution strategies"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = Ca | Bl | Pl | Bls | Pls | Lo | Cf

let all = [ Ca; Bl; Pl; Bls; Pls; Lo; Cf ]

let to_string = function
  | Ca -> "CA"
  | Bl -> "BL"
  | Pl -> "PL"
  | Bls -> "BLS"
  | Pls -> "PLS"
  | Lo -> "LO"
  | Cf -> "CF"

let of_string s =
  match String.uppercase_ascii s with
  | "CA" -> Some Ca
  | "BL" -> Some Bl
  | "PL" -> Some Pl
  | "BLS" -> Some Bls
  | "PLS" -> Some Pls
  | "LO" -> Some Lo
  | "CF" -> Some Cf
  | _ -> None

type selection = Fixed of t | Auto

let selection_to_string = function Auto -> "AUTO" | Fixed s -> to_string s

let selection_of_string s =
  match String.uppercase_ascii s with
  | "AUTO" -> Ok Auto
  | other -> (
    match of_string other with
    | Some st -> Ok (Fixed st)
    | None ->
      Error
        (Printf.sprintf
           "unknown strategy %S (accepted: %s, AUTO)" s
           (String.concat ", " (List.map to_string all))))

module Recovery = Recovery

type adaptive = { k : float; lo : Time.t; hi : Time.t }

type retry = {
  timeout : Time.t;
  max_attempts : int;
  backoff : float;
  adaptive : adaptive option;
}

let default_retry =
  { timeout = Time.ms 1.0; max_attempts = 3; backoff = 2.0; adaptive = None }

let default_adaptive = { k = 2.0; lo = Time.us 200.0; hi = Time.ms 4.0 }

type options = {
  cost : Cost.t;
  deep_certify : bool;
  multi_valued : bool;
  site_speeds : (int * float) list;
  fault : Fault.schedule;
  retry : retry;
  recovery : Recovery.policy;
  telemetry : bool;
  latency_of : (int -> float option) option;
}

let default_options =
  {
    cost = Cost.default;
    deep_certify = false;
    multi_valued = false;
    site_speeds = [];
    fault = Fault.none;
    retry = default_retry;
    recovery = Recovery.disabled;
    telemetry = false;
    latency_of = None;
  }

(* The telemetry-driven per-destination retry timeout: clamp(lo, k x ewma,
   hi) over the destination's observed check round-trip latency, falling
   back to the generous [hi] when no observation exists (a new site should
   not be spuriously demoted by an aggressive guess). With [adaptive =
   None] this is the static [retry.timeout] — the historical behaviour. *)
let effective_timeout ?latency_of (r : retry) ~dst =
  match r.adaptive with
  | None -> r.timeout
  | Some a -> (
    match (match latency_of with Some f -> f dst | None -> None) with
    | Some obs_us when Float.is_finite obs_us && obs_us > 0.0 ->
      Time.us
        (Float.max (Time.to_us a.lo)
           (Float.min (Time.to_us a.hi) (a.k *. obs_us)))
    | _ -> a.hi)

(* Eager, readable configuration validation: a bad [site_speeds] entry or a
   malformed fault schedule is reported before any simulated work starts,
   naming the offending site, instead of surfacing later as an engine error
   mid-run. *)
let validate_options options =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (site, factor) ->
      if site < 0 then
        invalid_arg
          (Printf.sprintf "Strategy: site_speeds: negative site id %d" site);
      if Hashtbl.mem seen site then
        invalid_arg
          (Printf.sprintf "Strategy: site_speeds: duplicate site id %d" site);
      Hashtbl.add seen site ();
      if not (Float.is_finite factor) || factor <= 0.0 then
        invalid_arg
          (Printf.sprintf
             "Strategy: site_speeds: site %d has factor %g, must be positive \
              and finite"
             site factor))
    options.site_speeds;
  Fault.validate options.fault;
  if options.retry.max_attempts < 1 then
    invalid_arg "Strategy: retry.max_attempts must be >= 1";
  if not (Time.is_finite options.retry.timeout)
     || Time.compare options.retry.timeout Time.zero < 0
  then invalid_arg "Strategy: retry.timeout must be non-negative and finite";
  if Float.is_nan options.retry.backoff || options.retry.backoff < 1.0 then
    invalid_arg "Strategy: retry.backoff must be >= 1";
  (match options.retry.adaptive with
  | None -> ()
  | Some a ->
    if not (Float.is_finite a.k) || a.k <= 0.0 then
      invalid_arg "Strategy: retry.adaptive.k must be positive and finite";
    if not (Time.is_finite a.lo) || Time.compare a.lo Time.zero < 0 then
      invalid_arg "Strategy: retry.adaptive.lo must be non-negative and finite";
    if not (Time.is_finite a.hi) || Time.compare a.hi a.lo < 0 then
      invalid_arg "Strategy: retry.adaptive.hi must be >= lo and finite");
  Recovery.validate options.recovery

type availability = {
  faults_active : bool;
  failed_sites : int list;
  drops : int;
  retries : int;
  checks_abandoned : int;
  certain_fault_free : int;
  demoted : int;
  recovered : int;
  resurrected : int;
  partial : bool;
  degradation_ratio : float;
}

let no_faults_availability =
  {
    faults_active = false;
    failed_sites = [];
    drops = 0;
    retries = 0;
    checks_abandoned = 0;
    certain_fault_free = 0;
    demoted = 0;
    recovered = 0;
    resurrected = 0;
    partial = false;
    degradation_ratio = 0.0;
  }

type metrics = {
  strategy : t;
  total : Time.t;
  response : Time.t;
  bytes_shipped : int;
  disk_bytes : int;
  messages : int;
  check_requests : int;
  checks_filtered : int;
  work_units : int;
  goid_lookups : int;
  promoted : int;
  eliminated_at_global : int;
  conflicts : int;
  breakdown : (string * Time.t * int) list;
  trace : Trace.t;
  registry : Metrics.t;
  host_spans : Tracer.span list;
  availability : availability;
}

(* Accumulator threaded through graph construction: a per-run metrics
   registry plus the strategy label every series and task carries, and the
   query's span context — the trace id every engine task is tagged with, so
   the causal tree of one query stays separable even when several queries
   share an engine (the parent edges themselves are the dependency tids the
   engine records in each trace entry). *)
type acc = { reg : Metrics.t; sname : string; qid : string }

let new_acc ?(trace_id = "q0") reg strategy =
  { reg; sname = to_string strategy; qid = trace_id }

let ctr acc ~phase name =
  Metrics.counter acc.reg
    ~labels:[ ("phase", phase); ("strategy", acc.sname) ]
    name

let task_attrs acc ~phase ?db () =
  let base = [ ("strategy", acc.sname); ("phase", phase); ("trace", acc.qid) ] in
  match db with Some d -> ("db", d) :: base | None -> base

(* Attrs of fences and other phase-less tasks: still strategy-tagged and
   still inside the query's causal tree. *)
let fence_attrs acc = [ ("strategy", acc.sname); ("trace", acc.qid) ]

let disk_task e acc c ~site ~phase ?db ~label ~bytes ?deps () =
  Metrics.inc (ctr acc ~phase "msdq_disk_bytes_total") bytes;
  Engine.task e ?deps ~site ~kind:Resource.Disk ~label
    ~attrs:(task_attrs acc ~phase ?db ())
    ~duration:(Cost.disk c ~bytes) ()

let cpu_task e acc c ~site ~phase ?db ~label ~units ?deps () =
  Metrics.inc (ctr acc ~phase "msdq_work_units_total") units;
  Engine.task e ?deps ~site ~kind:Resource.Cpu ~label
    ~attrs:(task_attrs acc ~phase ?db ())
    ~duration:(Cost.cpu c ~units) ()

let transfer e acc c ?on_outcome ~src ~dst ~phase ?db ~label ~bytes ?deps () =
  if src <> dst && bytes > 0 then begin
    Metrics.inc (ctr acc ~phase "msdq_bytes_shipped_total") bytes;
    Metrics.inc (ctr acc ~phase "msdq_messages_total") 1
  end;
  Engine.transfer e ?deps ?on_outcome ~src ~dst ~label
    ~attrs:(task_attrs acc ~phase ?db ())
    ~duration:(Cost.net c ~bytes) ()

let bump_goid acc ~phase n =
  Metrics.inc (ctr acc ~phase "msdq_goid_lookups_total") n

let units_of_work w = Meter.units w

(* Heterogeneous hardware: scale a site's CPU and disk (its machine speed);
   the incoming link stays at network speed. *)
let apply_site_speeds e speeds =
  List.iter
    (fun (site, factor) ->
      Engine.set_speed e ~site ~kind:Resource.Cpu ~factor;
      Engine.set_speed e ~site ~kind:Resource.Disk ~factor)
    speeds

(* The outcome of a query once its simulated run has finished. Fault-free
   builders know it at build time; fault-aware builders only learn which
   transfers were delivered while the engine runs, so the record is produced
   by a closure evaluated after [Engine.run]. *)
type finished = {
  f_answer : Answer.t;
  f_check_requests : int;
  f_checks_filtered : int;
  f_promoted : int;
  f_eliminated : int;
  f_conflicts : int;
  f_availability : availability;
}

(* A query's graph built into a (possibly shared) engine. *)
type built_query = {
  acc : acc;
  fence : Engine.handle;  (* completes when the answer is assembled *)
  finish : unit -> finished;  (* call only after the engine has run *)
}

(* ------------------------------------------------------------------ *)
(* CA — phase order O (ship everything) -> I (integrate) -> P (evaluate). *)

let build_ca e ?after ~acc ~tracer opts fed analysis =
  let c = opts.cost in
  let start_deps = match after with None -> [] | Some h -> [ h ] in
  let gs = Federation.global_schema fed in
  let involved = Involved.compute (Global_schema.schema gs) analysis in
  let outcome = Ca.run ~multi_valued:opts.multi_valued ~tracer fed analysis in
  let gsite = Federation.global_site fed in
  let xfers =
    List.map
      (fun (db_name, db) ->
        let bytes = Wire.projected_extent_bytes c involved gs ~db_name ~db in
        let site = Federation.site_of fed db_name in
        let read =
          disk_task e acc c ~site ~phase:"O" ~db:db_name ~label:"read-extents"
            ~bytes ~deps:start_deps ()
        in
        transfer e acc c ~src:site ~dst:gsite ~phase:"O" ~db:db_name
          ~label:"ship-objects" ~bytes ~deps:[ read ] ())
      (Federation.databases fed)
  in
  let m = outcome.Ca.materialize_stats in
  let integrate_units =
    m.Materialize.source_objects + m.Materialize.fields_merged
    + outcome.Ca.goid_lookups
  in
  bump_goid acc ~phase:"I" outcome.Ca.goid_lookups;
  let integrate =
    cpu_task e acc c ~site:gsite ~phase:"I" ~label:"integrate"
      ~units:integrate_units ~deps:xfers ()
  in
  let eval =
    cpu_task e acc c ~site:gsite ~phase:"P" ~label:"global-eval"
      ~units:(units_of_work outcome.Ca.eval_work)
      ~deps:[ integrate ] ()
  in
  let fence =
    Engine.fence e ~deps:[ eval ]
      ~attrs:(fence_attrs acc)
      ~label:"answer" ()
  in
  {
    acc;
    fence;
    finish =
      (fun () ->
        {
          f_answer = outcome.Ca.answer;
          f_check_requests = 0;
          f_checks_filtered = 0;
          f_promoted = 0;
          f_eliminated = 0;
          f_conflicts = 0;
          f_availability = no_faults_availability;
        });
  }

(* ------------------------------------------------------------------ *)
(* CF — semijoin-filtered centralized (extension, in the tradition of the
   paper's reference [20]): round 1, every root-hosting database evaluates
   its local predicates and ships only the surviving GOids; the global site
   intersects the lists (an entity absent from a database that holds one of
   its isomers was eliminated there) and broadcasts the candidate set; round
   2, the databases ship the candidates' root projections plus the branch
   extents, and the global site integrates and evaluates as CA does. The
   answer equals CA's on consistent federations: local elimination only
   drops definitely-false entities.

   Phase attribution: the round-1 local filter is predicate evaluation
   (phase P); everything that acquires or ships objects — GOid exchange,
   candidate broadcast, round-2 reads and ships — is phase O; integration
   is phase I; the final global evaluation is phase P again. *)

let build_cf e ?after ~acc ~tracer opts fed analysis =
  let c = opts.cost in
  let start_deps = match after with None -> [] | Some h -> [ h ] in
  let gs = Federation.global_schema fed in
  let schema = Global_schema.schema gs in
  let involved = Involved.compute schema analysis in
  let gsite = Federation.global_site fed in
  let root = analysis.Analysis.range_class in
  (* Round-1 computation: local filters (the LO machinery) determine the
     candidate set. *)
  let plans = Localize.plan fed analysis in
  let results =
    List.map
      (fun (p : Localize.db_plan) ->
        Local_eval.run ~tracer fed analysis ~db:p.Localize.db)
      plans
  in
  let lo =
    Certify.run ~multi_valued:opts.multi_valued ~tracer fed analysis ~results
      ~verdicts:[]
  in
  let candidates = Answer.goids lo.Certify.answer Answer.Certain in
  let candidates =
    Oid.Goid.Set.union candidates (Answer.goids lo.Certify.answer Answer.Maybe)
  in
  let n_candidates = Oid.Goid.Set.cardinal candidates in
  (* The final answer is CA's, computed over the integrated view. *)
  let outcome = Ca.run ~multi_valued:opts.multi_valued ~tracer fed analysis in
  (* ---- Round 1 tasks. ---- *)
  let width_root db_name =
    Involved.local_projection_width involved gs ~db:db_name ~gcls:root
  in
  let round1 =
    List.map2
      (fun (p : Localize.db_plan) (r : Local_result.t) ->
        let db_name = p.Localize.db in
        let site = Federation.site_of fed db_name in
        let touched = Touch.count fed analysis ~db:db_name in
        let read_bytes = Wire.localized_read_bytes c involved gs ~db_name ~touched in
        let read =
          disk_task e acc c ~site ~phase:"P" ~db:db_name ~label:"read-extents"
            ~bytes:read_bytes ~deps:start_deps ()
        in
        let eval =
          cpu_task e acc c ~site ~phase:"P" ~db:db_name ~label:"local-filter"
            ~units:(units_of_work r.Local_result.work + List.length r.Local_result.rows)
            ~deps:[ read ] ()
        in
        let ship =
          transfer e acc c ~src:site ~dst:gsite ~phase:"O" ~db:db_name
            ~label:"ship-goids"
            ~bytes:(List.length r.Local_result.rows * c.Cost.s_goid)
            ~deps:[ eval ] ()
        in
        (db_name, r, ship))
      plans results
  in
  bump_goid acc ~phase:"O" lo.Certify.goid_lookups;
  let intersect =
    cpu_task e acc c ~site:gsite ~phase:"O" ~label:"intersect"
      ~units:(units_of_work lo.Certify.work + lo.Certify.goid_lookups)
      ~deps:(List.map (fun (_, _, ship) -> ship) round1) ()
  in
  (* ---- Round 2: broadcast candidates, ship their data + branch extents. ---- *)
  let xfers =
    List.map
      (fun (db_name, db) ->
        let site = Federation.site_of fed db_name in
        let bcast =
          transfer e acc c ~src:gsite ~dst:site ~phase:"O" ~db:db_name
            ~label:"ship-candidates" ~bytes:(n_candidates * c.Cost.s_goid)
            ~deps:[ intersect ] ()
        in
        (* candidate root objects this database holds *)
        let mine =
          match List.find_opt (fun (n, _, _) -> String.equal n db_name) round1 with
          | Some (_, r, _) ->
            List.length
              (List.filter
                 (fun (row : Local_result.row) ->
                   Oid.Goid.Set.mem row.Local_result.goid candidates)
                 r.Local_result.rows)
          | None -> 0
        in
        let root_bytes = mine * (c.Cost.s_loid + (width_root db_name * c.Cost.s_a)) in
        (* Branch objects are also filtered: a database only ships the
           branch objects its candidate roots reach (each candidate follows
           at most one reference per chain class, so the touched count
           capped by the candidate count bounds it). Databases without a
           root constituent ship their touched branch objects in full. *)
        let touched =
          match Global_schema.constituent_of gs ~gcls:root ~db:db_name with
          | Some _ -> Touch.count fed analysis ~db:db_name
          | None -> []
        in
        let branch_bytes =
          List.fold_left
            (fun bytes gcls ->
              if String.equal gcls root then bytes
              else
                match Global_schema.constituent_of gs ~gcls ~db:db_name with
                | None -> bytes
                | Some cls ->
                  let width =
                    Involved.local_projection_width involved gs ~db:db_name ~gcls
                  in
                  let count =
                    match List.assoc_opt gcls touched with
                    | Some t -> min t (max mine 1)
                    | None -> Database.extent_size db cls
                  in
                  bytes + (count * (c.Cost.s_loid + (width * c.Cost.s_a))))
            0 (Involved.classes involved)
        in
        let bytes = root_bytes + branch_bytes in
        let read =
          disk_task e acc c ~site ~phase:"O" ~db:db_name
            ~label:"read-candidates" ~bytes ~deps:[ bcast ] ()
        in
        transfer e acc c ~src:site ~dst:gsite ~phase:"O" ~db:db_name
          ~label:"ship-objects" ~bytes ~deps:[ read ] ())
      (Federation.databases fed)
  in
  (* Integration over branch extents plus only the candidate roots; global
     evaluation over the candidates (CA's eval work scaled accordingly). *)
  let m = outcome.Ca.materialize_stats in
  let root_entities =
    max 1
      (List.length (Goid_table.goids_of_class (Federation.goids fed) ~gcls:root))
  in
  let scale n = n * n_candidates / root_entities in
  let integrate_units =
    m.Materialize.source_objects + m.Materialize.fields_merged
    + outcome.Ca.goid_lookups
  in
  bump_goid acc ~phase:"I" outcome.Ca.goid_lookups;
  let integrate =
    cpu_task e acc c ~site:gsite ~phase:"I" ~label:"integrate"
      ~units:integrate_units ~deps:xfers ()
  in
  let eval =
    cpu_task e acc c ~site:gsite ~phase:"P" ~label:"global-eval"
      ~units:(scale (units_of_work outcome.Ca.eval_work))
      ~deps:[ integrate ] ()
  in
  let fence =
    Engine.fence e ~deps:[ eval ]
      ~attrs:(fence_attrs acc)
      ~label:"answer" ()
  in
  {
    acc;
    fence;
    finish =
      (fun () ->
        {
          f_answer = outcome.Ca.answer;
          f_check_requests = 0;
          f_checks_filtered = 0;
          f_promoted = 0;
          f_eliminated = lo.Certify.eliminated;
          f_conflicts = lo.Certify.conflicts;
          f_availability = no_faults_availability;
        });
  }

(* ------------------------------------------------------------------ *)
(* Localized strategies *)

type local_phase = {
  plan : Localize.db_plan;
  result : Local_result.t;
  built : Checks.built;
  probe_work : Meter.snapshot option;  (* PL only *)
}

let no_checks =
  {
    Checks.requests = [];
    local_verdicts = [];
    filtered = 0;
    incapable = 0;
    root_level = 0;
    goid_lookups = 0;
    work = Meter.zero;
  }

let compute_local_phases ~parallel ~checks ~signatures ~tracer fed analysis
    plans =
  List.map
    (fun (plan : Localize.db_plan) ->
      let db = plan.Localize.db in
      if parallel then begin
        (* PL: probe all objects first (phase O), then evaluate (phase P). *)
        let probe = Probe.run ~tracer fed analysis ~db in
        let built =
          Checks.build ?signatures ~tracer fed analysis ~db
            ~root_class:plan.Localize.local_class ~items:probe.Probe.items
        in
        let result = Local_eval.run ~tracer fed analysis ~db in
        { plan; result; built; probe_work = Some probe.Probe.work }
      end
      else if not checks then
        (* LO: evaluation only; phases O and I degenerate to the per-entity
           merge of local results at the global site. *)
        let result = Local_eval.run ~tracer fed analysis ~db in
        { plan; result; built = no_checks; probe_work = None }
      else begin
        (* BL: evaluate first, then look up assistants for the maybe rows. *)
        let result = Local_eval.run ~tracer fed analysis ~db in
        let items =
          List.concat_map
            (fun (row : Local_result.row) -> row.Local_result.unsolved)
            result.Local_result.rows
        in
        let built =
          Checks.build ?signatures ~tracer fed analysis ~db
            ~root_class:plan.Localize.local_class ~items
        in
        { plan; result; built; probe_work = None }
      end)
    plans

(* Localized phase attribution (paper, Figure 8): local evaluation is phase
   P; probing, dispatching, shipping and serving assistant checks are phase
   O; shipping local results and certifying at the global site are phase I. *)
let build_localized e ?after ~acc ~tracer opts ~parallel ?(checks = true)
    ~signatures fed analysis =
  let c = opts.cost in
  let start_deps = match after with None -> [] | Some h -> [ h ] in
  let gs = Federation.global_schema fed in
  let involved = Involved.compute (Global_schema.schema gs) analysis in
  let plans = Localize.plan fed analysis in
  let signatures =
    if signatures then Some (Sig_catalog.build fed) else None
  in
  let phases =
    compute_local_phases ~parallel ~checks ~signatures ~tracer fed analysis
      plans
  in
  (* Serve the check requests, batched per (origin, target). *)
  let batches : (string * string, Checks.request list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let batch_order = ref [] in
  List.iter
    (fun ph ->
      List.iter
        (fun (r : Checks.request) ->
          let key = (r.Checks.origin_db, r.Checks.target_db) in
          match Hashtbl.find_opt batches key with
          | Some l -> l := r :: !l
          | None ->
            Hashtbl.add batches key (ref [ r ]);
            batch_order := key :: !batch_order)
        ph.built.Checks.requests)
    phases;
  let batch_order = List.rev !batch_order in
  let served =
    List.map
      (fun ((_, target) as key) ->
        let reqs = List.rev !(Hashtbl.find batches key) in
        (key, reqs, Checks.serve ~tracer fed ~db:target reqs))
      batch_order
  in
  let verdicts =
    List.concat_map (fun ph -> ph.built.Checks.local_verdicts) phases
    @ List.concat_map (fun (_, _, s) -> s.Checks.verdicts) served
  in
  let results = List.map (fun ph -> ph.result) phases in
  let certified =
    Certify.run ~multi_valued:opts.multi_valued ~tracer fed analysis ~results
      ~verdicts
  in
  let deep_outcome =
    if opts.deep_certify then
      Some
        (Deep.resolve ~multi_valued:opts.multi_valued ~tracer fed analysis
           certified.Certify.answer)
    else None
  in
  (* ---- Replay onto the simulator. ---- *)
  let gsite = Federation.global_site fed in
  let n_targets = List.length analysis.Analysis.targets in
  let dispatch_tasks : (string, Engine.handle) Hashtbl.t = Hashtbl.create 8 in
  let global_deps = ref [] in
  List.iter
    (fun ph ->
      let db_name = ph.plan.Localize.db in
      let site = Federation.site_of fed db_name in
      let touched = Touch.count fed analysis ~db:db_name in
      let read_bytes = Wire.localized_read_bytes c involved gs ~db_name ~touched in
      let read =
        disk_task e acc c ~site ~phase:"P" ~db:db_name ~label:"read-extents"
          ~bytes:read_bytes ~deps:start_deps ()
      in
      bump_goid acc ~phase:"O" ph.built.Checks.goid_lookups;
      (* Local goid lookups for row tagging happen during evaluation. *)
      let eval_units =
        units_of_work ph.result.Local_result.work
        + List.length ph.result.Local_result.rows
      in
      let dispatch_units =
        ph.built.Checks.goid_lookups + units_of_work ph.built.Checks.work
      in
      let dispatch =
        if parallel then begin
          (* PL: probe + dispatch before evaluation. *)
          let probe_units =
            match ph.probe_work with Some w -> units_of_work w | None -> 0
          in
          let probe =
            cpu_task e acc c ~site ~phase:"O" ~db:db_name ~label:"probe"
              ~units:probe_units ~deps:[ read ] ()
          in
          let dispatch =
            cpu_task e acc c ~site ~phase:"O" ~db:db_name
              ~label:"dispatch-checks" ~units:dispatch_units ~deps:[ probe ] ()
          in
          let eval =
            cpu_task e acc c ~site ~phase:"P" ~db:db_name ~label:"local-eval"
              ~units:eval_units ~deps:[ dispatch ] ()
          in
          Hashtbl.replace dispatch_tasks db_name dispatch;
          eval
        end
        else begin
          (* BL: evaluate, then dispatch. *)
          let eval =
            cpu_task e acc c ~site ~phase:"P" ~db:db_name ~label:"local-eval"
              ~units:eval_units ~deps:[ read ] ()
          in
          let dispatch =
            cpu_task e acc c ~site ~phase:"O" ~db:db_name
              ~label:"dispatch-checks" ~units:dispatch_units ~deps:[ eval ] ()
          in
          Hashtbl.replace dispatch_tasks db_name dispatch;
          dispatch
        end
      in
      let results_bytes =
        Wire.results_bytes c ~n_targets ph.result
        + List.length ph.built.Checks.local_verdicts * Wire.verdict_bytes c
      in
      let ship =
        transfer e acc c ~src:site ~dst:gsite ~phase:"I" ~db:db_name
          ~label:"ship-results" ~bytes:results_bytes ~deps:[ dispatch ] ()
      in
      global_deps := ship :: !global_deps)
    phases;
  List.iter
    (fun ((origin, target), reqs, (s : Checks.served)) ->
      let osite = Federation.site_of fed origin in
      let tsite = Federation.site_of fed target in
      let dispatch = Hashtbl.find dispatch_tasks origin in
      let req_xfer =
        transfer e acc c ~src:osite ~dst:tsite ~phase:"O" ~db:target
          ~label:"ship-requests" ~bytes:(Wire.requests_bytes c reqs)
          ~deps:[ dispatch ] ()
      in
      let read =
        disk_task e acc c ~site:tsite ~phase:"O" ~db:target ~label:"check-read"
          ~bytes:(Wire.check_read_bytes c reqs) ~deps:[ req_xfer ] ()
      in
      let eval =
        cpu_task e acc c ~site:tsite ~phase:"O" ~db:target ~label:"check-eval"
          ~units:(units_of_work s.Checks.work) ~deps:[ read ] ()
      in
      let verdict_xfer =
        transfer e acc c ~src:tsite ~dst:gsite ~phase:"O" ~db:target
          ~label:"ship-verdicts"
          ~bytes:(List.length s.Checks.verdicts * Wire.verdict_bytes c)
          ~deps:[ eval ] ()
      in
      global_deps := verdict_xfer :: !global_deps)
    served;
  bump_goid acc ~phase:"I" certified.Certify.goid_lookups;
  let certify_task =
    cpu_task e acc c ~site:gsite ~phase:"I" ~label:"certify"
      ~units:(units_of_work certified.Certify.work + certified.Certify.goid_lookups)
      ~deps:(List.rev !global_deps) ()
  in
  let last =
    match deep_outcome with
    | None -> certify_task
    | Some deep ->
      (* Residual resolution: each database ships the projected data of the
         residual entities' involved classes, then the global site resolves. *)
      let residual = deep.Deep.residual in
      let per_entity_bytes =
        List.fold_left
          (fun bytes gcls ->
            bytes + c.Cost.s_loid
            + (List.length (Involved.attrs_of_class involved gcls) * c.Cost.s_a))
          0 (Involved.classes involved)
      in
      let deep_deps =
        List.map
          (fun (db_name, _) ->
            let site = Federation.site_of fed db_name in
            let bytes = residual * per_entity_bytes in
            let read =
              disk_task e acc c ~site ~phase:"I" ~db:db_name ~label:"deep-read"
                ~bytes ~deps:[ certify_task ] ()
            in
            transfer e acc c ~src:site ~dst:gsite ~phase:"I" ~db:db_name
              ~label:"deep-ship" ~bytes ~deps:[ read ] ())
          (Federation.databases fed)
      in
      cpu_task e acc c ~site:gsite ~phase:"I" ~label:"deep-certify"
        ~units:(units_of_work deep.Deep.work) ~deps:deep_deps ()
  in
  let fence =
    Engine.fence e ~deps:[ last ]
      ~attrs:(fence_attrs acc)
      ~label:"answer" ()
  in
  let answer =
    match deep_outcome with
    | Some deep -> deep.Deep.answer
    | None -> certified.Certify.answer
  in
  let check_requests =
    List.fold_left (fun n ph -> n + List.length ph.built.Checks.requests) 0 phases
  in
  let checks_filtered =
    List.fold_left (fun n ph -> n + ph.built.Checks.filtered) 0 phases
  in
  Metrics.inc
    (Metrics.counter acc.reg
       ~labels:[ ("strategy", acc.sname) ]
       "msdq_check_requests_total")
    check_requests;
  Metrics.inc
    (Metrics.counter acc.reg
       ~labels:[ ("strategy", acc.sname) ]
       "msdq_checks_filtered_total")
    checks_filtered;
  {
    acc;
    fence;
    finish =
      (fun () ->
        {
          f_answer = answer;
          f_check_requests = check_requests;
          f_checks_filtered = checks_filtered;
          f_promoted = certified.Certify.promoted;
          f_eliminated = certified.Certify.eliminated;
          f_conflicts = certified.Certify.conflicts;
          f_availability = no_faults_availability;
        });
  }

(* ------------------------------------------------------------------ *)
(* Fault-aware execution.

   When a fault schedule is installed, transfers can be dropped by the
   engine's judge (destination down at the would-be finish time, or the
   lossy-link draw fired). The builders below model what the strategies do
   about it:

   - Every lost attempt charges the simulated clock: the sender waits out a
     timeout (grown by the retry policy's backoff, capped) and retransmits a
     fresh transfer task carrying the same bytes.
   - Check round trips (request shipping and verdict return) retry at most
     [retry.max_attempts] times, then the batch is abandoned: its verdicts
     never reach the global site and the affected items are demoted to
     uncertified maybe results with degraded provenance — LO semantics for
     exactly those items.
   - Result and extent shipments are critical: without them there is no
     answer at all, so they additionally wait out a destination outage (the
     federation directory knows site status) and only give up when the
     destination never recovers or a safety cap trips. An abandoned critical
     transfer turns the whole run into a partial answer: every row is
     reported as an uncertified maybe result.

   Because drop decisions are a pure hash of the schedule and the transfer's
   (destination, label, start), retransmissions get distinct labels and the
   whole execution stays deterministic. *)

type fault_ctx = {
  sched : Fault.schedule;
  fretry : retry;
  f_timeout_of : int -> Time.t;  (* per-destination effective retry timeout *)
  mutable f_drops : int;
  mutable f_retries : int;
  mutable f_abandoned : int;  (* check requests whose round trip was given up *)
  mutable f_partial : bool;  (* a critical transfer was abandoned *)
  mutable f_failovers : int;  (* failover batches dispatched to replicas *)
  mutable f_hedges : int;  (* hedged duplicate batches dispatched *)
  mutable f_recovered : int;  (* rows a retry-only run would have demoted *)
  mutable f_slow : int;  (* delivered round trips over the adaptive threshold *)
}

let new_fault_ctx options =
  {
    sched = options.fault;
    fretry = options.retry;
    f_timeout_of =
      (fun dst ->
        effective_timeout ?latency_of:options.latency_of options.retry ~dst);
    f_drops = 0;
    f_retries = 0;
    f_abandoned = 0;
    f_partial = false;
    f_failovers = 0;
    f_hedges = 0;
    f_recovered = 0;
    f_slow = 0;
  }

(* A delivered check round trip to [dst] still counts toward tripping the
   breaker when the destination is gray: its (deterministically) inflated
   round-trip model exceeds the adaptive latency threshold. Benign
   per-transfer jitter is deliberately excluded — only the link's persistent
   inflation factor, the gray signal, trips. *)
let round_trip_slow fx c ~dst ~bytes =
  match fx.fretry.adaptive with
  | None -> false
  | Some _ -> (
    match Fault.link_of fx.sched dst with
    | Some lf when lf.Fault.inflate > 1.0 ->
      Time.compare
        (Time.us (Time.to_us (Cost.net c ~bytes) *. lf.Fault.inflate))
        (fx.f_timeout_of dst)
      > 0
    | Some _ | None -> false)

(* Safety cap on critical retry chains: recoverable schedules converge long
   before this, and a permanent outage is detected directly. *)
let fault_attempt_cap = 64

(* A failable transfer with retransmission. Returns a promise that resolves
   when the chain settles; [k] runs exactly once with whether the payload was
   ultimately delivered, just before the promise resolves. Attempt [i > 1]
   gets a distinct label so its drop draw is independent of attempt 1's.

   When a [breaker] is supplied (check request legs under a recovery
   policy), every outcome feeds the breaker's consecutive-failure count for
   the destination. The breaker never *gates* these primary legs — gating
   them could abandon a chain the retry-only policy would have delivered,
   which would break the dominance invariant; only the recovery layer's own
   extra traffic consults the breaker before dispatching. *)
let retrying_transfer e acc c fx ?breaker ~critical ~src ~dst ~phase ?db
    ~label ~bytes ?(deps = []) ~k () =
  let settled = Engine.promise e ~label:(label ^ ":settled") in
  let finish delivered =
    if (not delivered) && critical then fx.f_partial <- true;
    k delivered;
    Engine.resolve e settled
  in
  let cap = if critical then fault_attempt_cap else fx.fretry.max_attempts in
  let base_timeout = fx.f_timeout_of dst in
  (match fx.fretry.adaptive with
  | None -> ()
  | Some _ ->
    Metrics.set
      (Metrics.gauge acc.reg
         ~labels:[ ("strategy", acc.sname); ("site", string_of_int dst) ]
         "msdq_adaptive_timeout_us")
      (Time.to_us base_timeout));
  let backoff_wait i =
    let exp = Float.min (float_of_int (i - 1)) 6.0 in
    Time.us (Time.to_us base_timeout *. (fx.fretry.backoff ** exp))
  in
  let feed outcome =
    match breaker with
    | None -> ()
    | Some b -> (
      match outcome with
      | Engine.Delivered ->
        if round_trip_slow fx c ~dst ~bytes then begin
          fx.f_slow <- fx.f_slow + 1;
          Recovery.Breaker.slow b ~site:dst ~at:(Engine.now e)
        end
        else Recovery.Breaker.success b ~site:dst
      | Engine.Dropped _ ->
        Recovery.Breaker.failure b ~site:dst ~at:(Engine.now e))
  in
  let rec attempt i ~deps =
    let alabel = if i = 1 then label else Printf.sprintf "%s~retry%d" label i in
    ignore
      (transfer e acc c ~src ~dst ~phase ?db ~label:alabel ~bytes ~deps
         ~on_outcome:(fun outcome ->
           feed outcome;
           match outcome with
           | Engine.Delivered -> finish true
           | Engine.Dropped _ ->
             fx.f_drops <- fx.f_drops + 1;
             if i >= cap then finish false
             else begin
               let now = Engine.now e in
               let wait =
                 if critical && Fault.site_down fx.sched ~site:dst ~at:now then
                   (* Wait for the destination to come back rather than
                      hammering a site known to be down. *)
                   match Fault.next_up fx.sched ~site:dst ~at:now with
                   | None -> None  (* it never does *)
                   | Some up -> Some (Time.add (Time.sub up now) base_timeout)
                 else Some (backoff_wait i)
               in
               match wait with
               | None -> finish false
               | Some wait ->
                 fx.f_retries <- fx.f_retries + 1;
                 let d =
                   Engine.delay e ~label:(label ^ ":timeout") ~duration:wait ()
                 in
                 attempt (i + 1) ~deps:[ d ]
             end)
         ())
  in
  attempt 1 ~deps;
  settled

(* A failover/hedge leg. Recovery traffic is modelled as pure latency: each
   leg charges the simulated clock, the lossy link's inflation factor and
   the same deterministic drop draw as a real transfer into [dst] — site
   crashes at the would-be arrival drop it, retries back off under the same
   [retry] policy — but it occupies no link resource. That keeps the
   primary task schedule of a recovery-enabled run bit-identical to its
   retry-only counterpart: recovery can only add answers, never perturb a
   primary leg's start time (and hence its drop draw), which is what makes
   the dominance invariant demoted(recovery) <= demoted(retry-only)
   structural rather than statistical.

   When a [breaker] is supplied (request legs), the attempt is gated at
   submission: an open breaker fails the leg without charging anything, and
   every outcome feeds the destination's consecutive-failure count. *)
let recovery_transfer e acc c fx ?breaker ~src ~dst ~phase ?db ~label ~bytes
    ?(deps = []) ~k () =
  let settled = Engine.promise e ~label:(label ^ ":settled") in
  let finish delivered =
    k delivered;
    Engine.resolve e settled
  in
  let gate_allows () =
    match breaker with
    | None -> true
    | Some b -> Recovery.Breaker.allow b ~site:dst ~at:(Engine.now e)
  in
  let feed delivered =
    match breaker with
    | None -> ()
    | Some b ->
      if delivered then
        if round_trip_slow fx c ~dst ~bytes then begin
          fx.f_slow <- fx.f_slow + 1;
          Recovery.Breaker.slow b ~site:dst ~at:(Engine.now e)
        end
        else Recovery.Breaker.success b ~site:dst
      else Recovery.Breaker.failure b ~site:dst ~at:(Engine.now e)
  in
  let base_timeout = fx.f_timeout_of dst in
  let backoff_wait i =
    let exp = Float.min (float_of_int (i - 1)) 6.0 in
    Time.us (Time.to_us base_timeout *. (fx.fretry.backoff ** exp))
  in
  let rec attempt i ~deps =
    let alabel = if i = 1 then label else Printf.sprintf "%s~retry%d" label i in
    ignore
      (Engine.fence e ~deps ~label:(alabel ^ ":go")
         ~on_complete:(fun () ->
           if not (gate_allows ()) then finish false
           else if src = dst || bytes = 0 then begin
             (* local or empty: free and infallible, like Engine.transfer *)
             feed true;
             finish true
           end
           else begin
             Metrics.inc (ctr acc ~phase "msdq_bytes_shipped_total") bytes;
             Metrics.inc (ctr acc ~phase "msdq_messages_total") 1;
             let start = Engine.now e in
             let base = Cost.net c ~bytes in
             let duration, drop_reason =
               Fault.link_fate fx.sched ~src ~dst ~label:alabel ~start
                 ~duration:base ()
             in
             let dropped = drop_reason <> None in
             ignore
               (Engine.delay e ~label:alabel
                  ~attrs:(task_attrs acc ~phase ?db ())
                  ~duration
                  ~on_complete:(fun () ->
                    feed (not dropped);
                    if not dropped then finish true
                    else begin
                      fx.f_drops <- fx.f_drops + 1;
                      if i >= fx.fretry.max_attempts then finish false
                      else begin
                        fx.f_retries <- fx.f_retries + 1;
                        let d =
                          Engine.delay e ~label:(label ^ ":timeout")
                            ~duration:(backoff_wait i) ()
                        in
                        attempt (i + 1) ~deps:[ d ]
                      end
                    end)
                  ())
           end)
         ())
  in
  attempt 1 ~deps;
  settled

let availability_of fx ?(recovered = 0) ~ref_answer ~final_answer () =
  let refc = Answer.goids ref_answer Answer.Certain in
  let refm = Answer.goids ref_answer Answer.Maybe in
  let demoted =
    Oid.Goid.Set.cardinal
      (Oid.Goid.Set.diff refc (Answer.goids final_answer Answer.Certain))
  in
  let resurrected =
    Oid.Goid.Set.cardinal
      (Oid.Goid.Set.diff
         (Answer.goids final_answer Answer.Maybe)
         (Oid.Goid.Set.union refc refm))
  in
  let n_ref = Oid.Goid.Set.cardinal refc in
  {
    faults_active = true;
    failed_sites = Fault.failed_sites fx.sched;
    drops = fx.f_drops;
    retries = fx.f_retries;
    checks_abandoned = fx.f_abandoned;
    certain_fault_free = n_ref;
    demoted;
    recovered;
    resurrected;
    partial = fx.f_partial;
    degradation_ratio =
      (if n_ref = 0 then 0.0 else float_of_int demoted /. float_of_int n_ref);
  }

(* CA under faults: the extent shipments are all critical. The answer is
   computed over host data exactly as fault-free; if any shipment was
   abandoned the run degrades to a partial answer with every row demoted. *)
let build_ca_faulty e ?after ~acc ~tracer ~fx opts fed analysis =
  let c = opts.cost in
  let start_deps = match after with None -> [] | Some h -> [ h ] in
  let gs = Federation.global_schema fed in
  let involved = Involved.compute (Global_schema.schema gs) analysis in
  let outcome = Ca.run ~multi_valued:opts.multi_valued ~tracer fed analysis in
  let gsite = Federation.global_site fed in
  let xfers =
    List.map
      (fun (db_name, db) ->
        let bytes = Wire.projected_extent_bytes c involved gs ~db_name ~db in
        let site = Federation.site_of fed db_name in
        let read =
          disk_task e acc c ~site ~phase:"O" ~db:db_name ~label:"read-extents"
            ~bytes ~deps:start_deps ()
        in
        retrying_transfer e acc c fx ~critical:true ~src:site ~dst:gsite
          ~phase:"O" ~db:db_name ~label:"ship-objects" ~bytes ~deps:[ read ]
          ~k:(fun _ -> ())
          ())
      (Federation.databases fed)
  in
  let m = outcome.Ca.materialize_stats in
  let integrate_units =
    m.Materialize.source_objects + m.Materialize.fields_merged
    + outcome.Ca.goid_lookups
  in
  bump_goid acc ~phase:"I" outcome.Ca.goid_lookups;
  let integrate =
    cpu_task e acc c ~site:gsite ~phase:"I" ~label:"integrate"
      ~units:integrate_units ~deps:xfers ()
  in
  let eval =
    cpu_task e acc c ~site:gsite ~phase:"P" ~label:"global-eval"
      ~units:(units_of_work outcome.Ca.eval_work)
      ~deps:[ integrate ] ()
  in
  let fence =
    Engine.fence e ~deps:[ eval ]
      ~attrs:(fence_attrs acc)
      ~label:"answer" ()
  in
  {
    acc;
    fence;
    finish =
      (fun () ->
        let ref_answer = outcome.Ca.answer in
        let final =
          if fx.f_partial then
            Answer.demote ref_answer
              ~goids:(Answer.goids ref_answer Answer.Certain)
          else ref_answer
        in
        {
          f_answer = final;
          f_check_requests = 0;
          f_checks_filtered = 0;
          f_promoted = 0;
          f_eliminated = 0;
          f_conflicts = 0;
          f_availability = availability_of fx ~ref_answer ~final_answer:final ();
        });
  }

(* CF under faults: the same two-round graph as fault-free, with every
   transfer critical (a lost GOid list or candidate broadcast is as fatal as
   a lost extent). *)
let build_cf_faulty e ?after ~acc ~tracer ~fx opts fed analysis =
  let c = opts.cost in
  let start_deps = match after with None -> [] | Some h -> [ h ] in
  let gs = Federation.global_schema fed in
  let schema = Global_schema.schema gs in
  let involved = Involved.compute schema analysis in
  let gsite = Federation.global_site fed in
  let root = analysis.Analysis.range_class in
  let plans = Localize.plan fed analysis in
  let results =
    List.map
      (fun (p : Localize.db_plan) ->
        Local_eval.run ~tracer fed analysis ~db:p.Localize.db)
      plans
  in
  let lo =
    Certify.run ~multi_valued:opts.multi_valued ~tracer fed analysis ~results
      ~verdicts:[]
  in
  let candidates = Answer.goids lo.Certify.answer Answer.Certain in
  let candidates =
    Oid.Goid.Set.union candidates (Answer.goids lo.Certify.answer Answer.Maybe)
  in
  let n_candidates = Oid.Goid.Set.cardinal candidates in
  let outcome = Ca.run ~multi_valued:opts.multi_valued ~tracer fed analysis in
  let width_root db_name =
    Involved.local_projection_width involved gs ~db:db_name ~gcls:root
  in
  let round1 =
    List.map2
      (fun (p : Localize.db_plan) (r : Local_result.t) ->
        let db_name = p.Localize.db in
        let site = Federation.site_of fed db_name in
        let touched = Touch.count fed analysis ~db:db_name in
        let read_bytes = Wire.localized_read_bytes c involved gs ~db_name ~touched in
        let read =
          disk_task e acc c ~site ~phase:"P" ~db:db_name ~label:"read-extents"
            ~bytes:read_bytes ~deps:start_deps ()
        in
        let eval =
          cpu_task e acc c ~site ~phase:"P" ~db:db_name ~label:"local-filter"
            ~units:(units_of_work r.Local_result.work + List.length r.Local_result.rows)
            ~deps:[ read ] ()
        in
        let ship =
          retrying_transfer e acc c fx ~critical:true ~src:site ~dst:gsite
            ~phase:"O" ~db:db_name ~label:"ship-goids"
            ~bytes:(List.length r.Local_result.rows * c.Cost.s_goid)
            ~deps:[ eval ]
            ~k:(fun _ -> ())
            ()
        in
        (db_name, r, ship))
      plans results
  in
  bump_goid acc ~phase:"O" lo.Certify.goid_lookups;
  let intersect =
    cpu_task e acc c ~site:gsite ~phase:"O" ~label:"intersect"
      ~units:(units_of_work lo.Certify.work + lo.Certify.goid_lookups)
      ~deps:(List.map (fun (_, _, ship) -> ship) round1) ()
  in
  let xfers =
    List.map
      (fun (db_name, db) ->
        let site = Federation.site_of fed db_name in
        let bcast =
          retrying_transfer e acc c fx ~critical:true ~src:gsite ~dst:site
            ~phase:"O" ~db:db_name ~label:"ship-candidates"
            ~bytes:(n_candidates * c.Cost.s_goid) ~deps:[ intersect ]
            ~k:(fun _ -> ())
            ()
        in
        let mine =
          match List.find_opt (fun (n, _, _) -> String.equal n db_name) round1 with
          | Some (_, r, _) ->
            List.length
              (List.filter
                 (fun (row : Local_result.row) ->
                   Oid.Goid.Set.mem row.Local_result.goid candidates)
                 r.Local_result.rows)
          | None -> 0
        in
        let root_bytes = mine * (c.Cost.s_loid + (width_root db_name * c.Cost.s_a)) in
        let touched =
          match Global_schema.constituent_of gs ~gcls:root ~db:db_name with
          | Some _ -> Touch.count fed analysis ~db:db_name
          | None -> []
        in
        let branch_bytes =
          List.fold_left
            (fun bytes gcls ->
              if String.equal gcls root then bytes
              else
                match Global_schema.constituent_of gs ~gcls ~db:db_name with
                | None -> bytes
                | Some cls ->
                  let width =
                    Involved.local_projection_width involved gs ~db:db_name ~gcls
                  in
                  let count =
                    match List.assoc_opt gcls touched with
                    | Some t -> min t (max mine 1)
                    | None -> Database.extent_size db cls
                  in
                  bytes + (count * (c.Cost.s_loid + (width * c.Cost.s_a))))
            0 (Involved.classes involved)
        in
        let bytes = root_bytes + branch_bytes in
        let read =
          disk_task e acc c ~site ~phase:"O" ~db:db_name
            ~label:"read-candidates" ~bytes ~deps:[ bcast ] ()
        in
        retrying_transfer e acc c fx ~critical:true ~src:site ~dst:gsite
          ~phase:"O" ~db:db_name ~label:"ship-objects" ~bytes ~deps:[ read ]
          ~k:(fun _ -> ())
          ())
      (Federation.databases fed)
  in
  let m = outcome.Ca.materialize_stats in
  let root_entities =
    max 1
      (List.length (Goid_table.goids_of_class (Federation.goids fed) ~gcls:root))
  in
  let scale n = n * n_candidates / root_entities in
  let integrate_units =
    m.Materialize.source_objects + m.Materialize.fields_merged
    + outcome.Ca.goid_lookups
  in
  bump_goid acc ~phase:"I" outcome.Ca.goid_lookups;
  let integrate =
    cpu_task e acc c ~site:gsite ~phase:"I" ~label:"integrate"
      ~units:integrate_units ~deps:xfers ()
  in
  let eval =
    cpu_task e acc c ~site:gsite ~phase:"P" ~label:"global-eval"
      ~units:(scale (units_of_work outcome.Ca.eval_work))
      ~deps:[ integrate ] ()
  in
  let fence =
    Engine.fence e ~deps:[ eval ]
      ~attrs:(fence_attrs acc)
      ~label:"answer" ()
  in
  {
    acc;
    fence;
    finish =
      (fun () ->
        let ref_answer = outcome.Ca.answer in
        let final =
          if fx.f_partial then
            Answer.demote ref_answer
              ~goids:(Answer.goids ref_answer Answer.Certain)
          else ref_answer
        in
        {
          f_answer = final;
          f_check_requests = 0;
          f_checks_filtered = 0;
          f_promoted = 0;
          f_eliminated = lo.Certify.eliminated;
          f_conflicts = lo.Certify.conflicts;
          f_availability = availability_of fx ~ref_answer ~final_answer:final ();
        });
  }

(* Per-check-key recovery state: one entry per (origin_db, item, atom)
   check key, shared by every batch — primary, failover or hedge — that
   carries the key. *)
type key_state = {
  mutable inflight : string list;  (* target dbs with an in-flight batch *)
  mutable answered : bool;  (* some batch delivered this key's verdict *)
  mutable k_failed : bool;  (* some batch carrying it was abandoned *)
  mutable budget : int;  (* remaining failover/hedge dispatches *)
  mutable chain : string list;  (* recovery hops taken, newest first *)
}

(* Localized strategies under faults. The local phases and check serving are
   computed host-side exactly as fault-free, but certification only sees the
   verdicts whose round trip actually survived: requests out and verdicts
   back use the bounded retry policy, result shipments are critical. Since
   which batches survive depends on simulated timing, the certify task is
   submitted dynamically once every chain has settled, and the final answer
   fence is a promise resolved when certification (and deep resolution, if
   enabled) completes.

   With [options.recovery.failover] set, abandonment is no longer terminal:
   see the recovery block below. *)
let build_localized_faulty e ?after ~acc ~tracer ~fx opts ~parallel
    ?(checks = true) ~signatures fed analysis =
  let c = opts.cost in
  let start_deps = match after with None -> [] | Some h -> [ h ] in
  let gs = Federation.global_schema fed in
  let involved = Involved.compute (Global_schema.schema gs) analysis in
  let plans = Localize.plan fed analysis in
  let signatures = if signatures then Some (Sig_catalog.build fed) else None in
  let phases =
    compute_local_phases ~parallel ~checks ~signatures ~tracer fed analysis
      plans
  in
  let batches : (string * string, Checks.request list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let batch_order = ref [] in
  List.iter
    (fun ph ->
      List.iter
        (fun (r : Checks.request) ->
          let key = (r.Checks.origin_db, r.Checks.target_db) in
          match Hashtbl.find_opt batches key with
          | Some l -> l := r :: !l
          | None ->
            Hashtbl.add batches key (ref [ r ]);
            batch_order := key :: !batch_order)
        ph.built.Checks.requests)
    phases;
  let batch_order = List.rev !batch_order in
  let served =
    List.map
      (fun ((_, target) as key) ->
        let reqs = List.rev !(Hashtbl.find batches key) in
        (key, reqs, Checks.serve ~tracer fed ~db:target reqs))
      batch_order
  in
  let local_verdicts =
    List.concat_map (fun ph -> ph.built.Checks.local_verdicts) phases
  in
  let all_verdicts =
    local_verdicts @ List.concat_map (fun (_, _, s) -> s.Checks.verdicts) served
  in
  let results = List.map (fun ph -> ph.result) phases in
  (* The fault-free reference: what full delivery would have certified. The
     availability report and the degradation invariants are stated against
     it. *)
  let certified_ref =
    Certify.run ~multi_valued:opts.multi_valued ~tracer fed analysis ~results
      ~verdicts:all_verdicts
  in
  let ref_answer =
    if opts.deep_certify then
      (Deep.resolve ~multi_valued:opts.multi_valued ~tracer fed analysis
         certified_ref.Certify.answer)
        .Deep.answer
    else certified_ref.Certify.answer
  in
  (* ---- Replay onto the simulator, failure-aware. ---- *)
  let gsite = Federation.global_site fed in
  let n_targets = List.length analysis.Analysis.targets in
  let dispatch_tasks : (string, Engine.handle) Hashtbl.t = Hashtbl.create 8 in
  let settle_deps = ref [] in
  List.iter
    (fun ph ->
      let db_name = ph.plan.Localize.db in
      let site = Federation.site_of fed db_name in
      let touched = Touch.count fed analysis ~db:db_name in
      let read_bytes = Wire.localized_read_bytes c involved gs ~db_name ~touched in
      let read =
        disk_task e acc c ~site ~phase:"P" ~db:db_name ~label:"read-extents"
          ~bytes:read_bytes ~deps:start_deps ()
      in
      bump_goid acc ~phase:"O" ph.built.Checks.goid_lookups;
      let eval_units =
        units_of_work ph.result.Local_result.work
        + List.length ph.result.Local_result.rows
      in
      let dispatch_units =
        ph.built.Checks.goid_lookups + units_of_work ph.built.Checks.work
      in
      let dispatch =
        if parallel then begin
          let probe_units =
            match ph.probe_work with Some w -> units_of_work w | None -> 0
          in
          let probe =
            cpu_task e acc c ~site ~phase:"O" ~db:db_name ~label:"probe"
              ~units:probe_units ~deps:[ read ] ()
          in
          let dispatch =
            cpu_task e acc c ~site ~phase:"O" ~db:db_name
              ~label:"dispatch-checks" ~units:dispatch_units ~deps:[ probe ] ()
          in
          let eval =
            cpu_task e acc c ~site ~phase:"P" ~db:db_name ~label:"local-eval"
              ~units:eval_units ~deps:[ dispatch ] ()
          in
          Hashtbl.replace dispatch_tasks db_name dispatch;
          eval
        end
        else begin
          let eval =
            cpu_task e acc c ~site ~phase:"P" ~db:db_name ~label:"local-eval"
              ~units:eval_units ~deps:[ read ] ()
          in
          let dispatch =
            cpu_task e acc c ~site ~phase:"O" ~db:db_name
              ~label:"dispatch-checks" ~units:dispatch_units ~deps:[ eval ] ()
          in
          Hashtbl.replace dispatch_tasks db_name dispatch;
          dispatch
        end
      in
      let results_bytes =
        Wire.results_bytes c ~n_targets ph.result
        + List.length ph.built.Checks.local_verdicts * Wire.verdict_bytes c
      in
      let settled =
        retrying_transfer e acc c fx ~critical:true ~src:site ~dst:gsite
          ~phase:"I" ~db:db_name ~label:"ship-results" ~bytes:results_bytes
          ~deps:[ dispatch ]
          ~k:(fun _ -> ())
          ()
      in
      settle_deps := settled :: !settle_deps)
    phases;
  (* Check round trips. A batch abandoned at either leg loses its verdicts;
     a delivered request batch is served at the target (reads and evaluation
     are unaffected by link faults) and its verdicts travel back under the
     same bounded policy.

     With a recovery policy ([options.recovery.failover]) abandonment stops
     being the end of the story. Isomeric objects sharing a GOid are natural
     replicas, so the per-target requests built above double as a routing
     table keyed by (origin, item, atom): when the last in-flight batch
     carrying a key fails unanswered, the dispatcher re-issues the key's
     check to the next live candidate site — rotating past the one that just
     failed, skipping destinations whose circuit breaker is open or that are
     down for good — and charges the simulated clock for the extra round
     trip ([recovery_transfer]: latency, inflation and drop draws like any
     transfer, but off the FIFO resources, so the primary schedule stays
     bit-identical to the retry-only run's). Primary request legs feed the
     breaker's per-destination failure counts; only recovery request legs
     are gated by it (verdict legs terminate at the global site, which has
     no alternative route, so gating them could only lose answers — and
     gating primary legs could abandon a chain retry-only would have
     delivered). An optional hedged duplicate races each
     failover batch after [hedge_after]; the first answer wins, and duplicate
     identical verdicts are harmless to certification (qcheck-pinned). Only
     keys no live replica could answer demote their rows. *)
  let n_batches = List.length served in
  let batch_delivered = Array.make (max 1 n_batches) false in
  let recovery_on = opts.recovery.failover in
  let breaker =
    if not recovery_on then None
    else
      Some
        (Recovery.Breaker.create
           ~on_event:(fun ev ->
             Tracer.addf tracer (fun () ->
                 match ev with
                 | Recovery.Breaker.Opened { site; at; probe_at } ->
                   {
                     Tracer.name = "breaker.open";
                     cat = "breaker";
                     pid = site;
                     tid = 2;
                     ts_us = Time.to_us at;
                     dur_us = 0.0;
                     args =
                       [
                         ("strategy", acc.sname);
                         ("site", string_of_int site);
                         ( "probe_at",
                           match probe_at with
                           | None -> "never"
                           | Some p -> Printf.sprintf "%gus" (Time.to_us p) );
                       ];
                   }
                 | Recovery.Breaker.Probing { site; at } ->
                   {
                     Tracer.name = "breaker.probe";
                     cat = "breaker";
                     pid = site;
                     tid = 2;
                     ts_us = Time.to_us at;
                     dur_us = 0.0;
                     args =
                       [ ("strategy", acc.sname); ("site", string_of_int site) ];
                   }))
           ~threshold:opts.recovery.breaker_threshold ~sched:fx.sched ())
  in
  let key_of (r : Checks.request) =
    (r.Checks.origin_db, r.Checks.item, r.Checks.atom)
  in
  (* routing table: candidate requests per key, in fan-out order *)
  let route = Hashtbl.create 64 in
  if recovery_on then
    List.iter
      (fun (_, reqs, _) ->
        List.iter
          (fun (r : Checks.request) ->
            match Hashtbl.find_opt route (key_of r) with
            | Some l -> l := r :: !l
            | None -> Hashtbl.add route (key_of r) (ref [ r ]))
          reqs)
      served;
  let candidates key =
    match Hashtbl.find_opt route key with
    | Some l -> List.rev !l
    | None -> []
  in
  let kstates = Hashtbl.create 64 in
  let korder = ref [] in
  let kstate key =
    match Hashtbl.find_opt kstates key with
    | Some ks -> ks
    | None ->
      let ks =
        {
          inflight = [];
          answered = false;
          k_failed = false;
          budget = List.length (candidates key);
          chain = [];
        }
      in
      Hashtbl.replace kstates key ks;
      korder := key :: !korder;
      ks
  in
  let remove_inflight l tdb =
    List.filter (fun t -> not (String.equal t tdb)) l
  in
  let breaker_live site ~at =
    match breaker with
    | None -> true
    | Some b -> Recovery.Breaker.live b ~site ~at
  in
  (* the next candidate for [key]: routing-table order rotated past the
     target that just failed, skipping targets already in flight for the
     key, open breakers, and sites that never come back *)
  let next_candidate key ~rotate_past ~at =
    let ks = kstate key in
    let rec split acc = function
      | [] -> (List.rev acc, [])
      | (r : Checks.request) :: tl
        when String.equal r.Checks.target_db rotate_past ->
        (List.rev (r :: acc), tl)
      | r :: tl -> split (r :: acc) tl
    in
    let upto, after = split [] (candidates key) in
    List.find_opt
      (fun (r : Checks.request) ->
        let tsite = Federation.site_of fed r.Checks.target_db in
        (not (List.mem r.Checks.target_db ks.inflight))
        && breaker_live tsite ~at
        && not (Fault.permanently_down fx.sched ~site:tsite ~at))
      (after @ upto)
  in
  let extra_verdicts : Checks.verdict list list ref = ref [] in
  let fo_seq = ref 0 in
  (* Serving a recovery batch at the replica site is charged as latency too
     (see [recovery_transfer]): same disk/CPU durations and counters as the
     primary serve path, scaled by the site's speed factor, but off the
     site's FIFO resources so primary serve tasks never queue behind
     recovery work. *)
  let speed_factor site =
    match List.assoc_opt site opts.site_speeds with Some f -> f | None -> 1.0
  in
  let recovery_serve ~site ~db ~label ~disk_bytes ~units ?(deps = []) () =
    Metrics.inc (ctr acc ~phase:"O" "msdq_disk_bytes_total") disk_bytes;
    Metrics.inc (ctr acc ~phase:"O" "msdq_work_units_total") units;
    let duration =
      Time.us
        ((Time.to_us (Cost.disk c ~bytes:disk_bytes)
         +. Time.to_us (Cost.cpu c ~units))
        /. speed_factor site)
    in
    Engine.delay e ~label
      ~attrs:(task_attrs acc ~phase:"O" ~db ())
      ~duration ~deps ()
  in
  (* Dispatch [reqs] (all [origin] -> [tdb]) as a recovery batch; [settle]
     runs exactly once, when the batch and everything it spawned (deeper
     failovers, hedges) has settled. *)
  let rec recovery_dispatch ~origin ~tdb ~reqs ~hedge ~settle =
    incr fo_seq;
    let seq = !fo_seq in
    let tag = if hedge then "hedge" else "failover" in
    if hedge then fx.f_hedges <- fx.f_hedges + 1
    else fx.f_failovers <- fx.f_failovers + 1;
    let osite = Federation.site_of fed origin in
    let tsite = Federation.site_of fed tdb in
    let s = Checks.serve ~tracer fed ~db:tdb reqs in
    let outstanding = ref 1 in
    let done_one () =
      decr outstanding;
      if !outstanding = 0 then settle ()
    in
    List.iter
      (fun (r : Checks.request) ->
        let ks = kstate (key_of r) in
        ks.inflight <- tdb :: ks.inflight;
        ks.budget <- ks.budget - 1;
        ks.chain <- Printf.sprintf "%s to %s" tag tdb :: ks.chain)
      reqs;
    (match opts.recovery.hedge_after with
     | Some after when not hedge ->
       incr outstanding;
       (* Straggler-triggered hedging: under adaptive timeouts the hedge
          delay is the target's telemetry-derived timeout, not the
          hand-picked constant — a destination observed to be slow is
          hedged later, a fast one sooner. *)
       let after =
         match opts.retry.adaptive with
         | Some _ -> fx.f_timeout_of tsite
         | None -> after
       in
       ignore
         (Engine.delay e
            ~label:(Printf.sprintf "hedge-timer#%d" seq)
            ~duration:after
            ~on_complete:(fun () ->
              let unanswered =
                List.filter
                  (fun (r : Checks.request) ->
                    not (kstate (key_of r)).answered)
                  reqs
              in
              spawn_recovery ~origin ~reqs:unanswered ~rotate_past:tdb
                ~hedge:true ~settle:done_one)
            ())
     | _ -> ());
    let abandon () =
      fx.f_abandoned <- fx.f_abandoned + List.length reqs;
      List.iter
        (fun (r : Checks.request) ->
          let ks = kstate (key_of r) in
          ks.inflight <- remove_inflight ks.inflight tdb;
          ks.k_failed <- true)
        reqs;
      let ready =
        List.filter
          (fun (r : Checks.request) ->
            let ks = kstate (key_of r) in
            (not ks.answered) && ks.inflight = [])
          reqs
      in
      spawn_recovery ~origin ~reqs:ready ~rotate_past:tdb ~hedge:false
        ~settle:done_one
    in
    ignore
      (recovery_transfer e acc c fx ?breaker ~src:osite
         ~dst:tsite ~phase:"O" ~db:tdb
         ~label:(Printf.sprintf "ship-requests~%s%d" tag seq)
         ~bytes:(Wire.requests_bytes c reqs)
         ~k:(fun delivered ->
           if not delivered then abandon ()
           else begin
             let serve =
               recovery_serve ~site:tsite ~db:tdb
                 ~label:(Printf.sprintf "check-serve~%s%d" tag seq)
                 ~disk_bytes:(Wire.check_read_bytes c reqs)
                 ~units:(units_of_work s.Checks.work) ()
             in
             ignore
               (recovery_transfer e acc c fx ~src:tsite
                  ~dst:gsite ~phase:"O" ~db:tdb
                  ~label:(Printf.sprintf "ship-verdicts~%s%d" tag seq)
                  ~bytes:(List.length s.Checks.verdicts * Wire.verdict_bytes c)
                  ~deps:[ serve ]
                  ~k:(fun delivered ->
                    if delivered then begin
                      List.iter
                        (fun (r : Checks.request) ->
                          let ks = kstate (key_of r) in
                          ks.inflight <- remove_inflight ks.inflight tdb;
                          ks.answered <- true)
                        reqs;
                      extra_verdicts := s.Checks.verdicts :: !extra_verdicts;
                      done_one ()
                    end
                    else abandon ())
                  ())
           end)
         ())
  (* Re-route [reqs] (unanswered, no batch in flight, budget left) to their
     next candidates, grouped per target; [settle] runs once every spawned
     batch has settled — immediately if nothing can be spawned. *)
  and spawn_recovery ~origin ~reqs ~rotate_past ~hedge ~settle =
    let now = Engine.now e in
    let picked =
      List.filter_map
        (fun (r : Checks.request) ->
          let key = key_of r in
          if (kstate key).budget <= 0 then None
          else next_candidate key ~rotate_past ~at:now)
        reqs
    in
    (* group per target, preserving pick order *)
    let groups = Hashtbl.create 4 in
    let group_order = ref [] in
    List.iter
      (fun (r : Checks.request) ->
        match Hashtbl.find_opt groups r.Checks.target_db with
        | Some l -> l := r :: !l
        | None ->
          Hashtbl.add groups r.Checks.target_db (ref [ r ]);
          group_order := r.Checks.target_db :: !group_order)
      picked;
    match List.rev !group_order with
    | [] -> settle ()
    | order ->
      let n = ref (List.length order) in
      let settle_one () =
        decr n;
        if !n = 0 then settle ()
      in
      List.iter
        (fun tdb ->
          let greqs = List.rev !(Hashtbl.find groups tdb) in
          recovery_dispatch ~origin ~tdb ~reqs:greqs ~hedge ~settle:settle_one)
        order
  in
  List.iteri
    (fun bi ((origin, target), reqs, (s : Checks.served)) ->
      let osite = Federation.site_of fed origin in
      let tsite = Federation.site_of fed target in
      let dispatch = Hashtbl.find dispatch_tasks origin in
      let batch_settled =
        Engine.promise e ~label:(Printf.sprintf "checks:%s->%s" origin target)
      in
      if recovery_on then
        List.iter
          (fun (r : Checks.request) ->
            let ks = kstate (key_of r) in
            ks.inflight <- target :: ks.inflight)
          reqs;
      let abandon () =
        fx.f_abandoned <- fx.f_abandoned + List.length reqs;
        if not recovery_on then Engine.resolve e batch_settled
        else begin
          List.iter
            (fun (r : Checks.request) ->
              let ks = kstate (key_of r) in
              ks.inflight <- remove_inflight ks.inflight target;
              ks.k_failed <- true)
            reqs;
          let ready =
            List.filter
              (fun (r : Checks.request) ->
                let ks = kstate (key_of r) in
                (not ks.answered) && ks.inflight = [])
              reqs
          in
          spawn_recovery ~origin ~reqs:ready ~rotate_past:target ~hedge:false
            ~settle:(fun () -> Engine.resolve e batch_settled)
        end
      in
      ignore
        (retrying_transfer e acc c fx ?breaker ~critical:false ~src:osite
           ~dst:tsite ~phase:"O" ~db:target ~label:"ship-requests"
           ~bytes:(Wire.requests_bytes c reqs) ~deps:[ dispatch ]
           ~k:(fun delivered ->
             if not delivered then abandon ()
             else begin
               let read =
                 disk_task e acc c ~site:tsite ~phase:"O" ~db:target
                   ~label:"check-read" ~bytes:(Wire.check_read_bytes c reqs) ()
               in
               let eval =
                 cpu_task e acc c ~site:tsite ~phase:"O" ~db:target
                   ~label:"check-eval" ~units:(units_of_work s.Checks.work)
                   ~deps:[ read ] ()
               in
               ignore
                 (retrying_transfer e acc c fx ~critical:false ~src:tsite
                    ~dst:gsite ~phase:"O" ~db:target ~label:"ship-verdicts"
                    ~bytes:(List.length s.Checks.verdicts * Wire.verdict_bytes c)
                    ~deps:[ eval ]
                    ~k:(fun delivered ->
                      if delivered then begin
                        batch_delivered.(bi) <- true;
                        if recovery_on then
                          List.iter
                            (fun (r : Checks.request) ->
                              let ks = kstate (key_of r) in
                              ks.inflight <- remove_inflight ks.inflight target;
                              ks.answered <- true)
                            reqs;
                        Engine.resolve e batch_settled
                      end
                      else abandon ())
                    ())
             end)
           ());
      settle_deps := batch_settled :: !settle_deps)
    served;
  (* Certification waits for every chain to settle; only then is the set of
     delivered verdicts known, so the certify task (and the deep-resolution
     round, if enabled) is submitted from the join's completion callback. *)
  let certified_faulty = ref None in
  let deep_faulty = ref None in
  let answer_fence = Engine.promise e ~label:"answer" in
  let finish_after last =
    ignore
      (Engine.fence e ~deps:[ last ]
         ~attrs:(fence_attrs acc)
         ~label:"answer-ready"
         ~on_complete:(fun () -> Engine.resolve e answer_fence)
         ())
  in
  ignore
    (Engine.fence e
       ~deps:(List.rev !settle_deps)
       ~label:"collect"
       ~on_complete:(fun () ->
         let delivered =
           local_verdicts
           @ List.concat
               (List.mapi
                  (fun bi (_, _, (s : Checks.served)) ->
                    if batch_delivered.(bi) then s.Checks.verdicts else [])
                  served)
           (* verdicts recovered by failover/hedge batches; duplicates of
              delivered primaries cannot arise (recovery only targets
              unanswered keys), and a hedge racing its failover twin yields
              independent per-target verdicts, exactly as full delivery
              would have *)
           @ List.concat (List.rev !extra_verdicts)
         in
         let cf =
           Certify.run ~multi_valued:opts.multi_valued ~tracer fed analysis
             ~results ~verdicts:delivered
         in
         certified_faulty := Some cf;
         bump_goid acc ~phase:"I" cf.Certify.goid_lookups;
         let certify_task =
           cpu_task e acc c ~site:gsite ~phase:"I" ~label:"certify"
             ~units:(units_of_work cf.Certify.work + cf.Certify.goid_lookups)
             ()
         in
         if not opts.deep_certify then finish_after certify_task
         else begin
           let deep =
             Deep.resolve ~multi_valued:opts.multi_valued ~tracer fed analysis
               cf.Certify.answer
           in
           deep_faulty := Some deep;
           let residual = deep.Deep.residual in
           let per_entity_bytes =
             List.fold_left
               (fun bytes gcls ->
                 bytes + c.Cost.s_loid
                 + (List.length (Involved.attrs_of_class involved gcls) * c.Cost.s_a))
               0 (Involved.classes involved)
           in
           let deep_deps =
             List.map
               (fun (db_name, _) ->
                 let site = Federation.site_of fed db_name in
                 let bytes = residual * per_entity_bytes in
                 let read =
                   disk_task e acc c ~site ~phase:"I" ~db:db_name
                     ~label:"deep-read" ~bytes ~deps:[ certify_task ] ()
                 in
                 retrying_transfer e acc c fx ~critical:true ~src:site
                   ~dst:gsite ~phase:"I" ~db:db_name ~label:"deep-ship" ~bytes
                   ~deps:[ read ]
                   ~k:(fun _ -> ())
                   ())
               (Federation.databases fed)
           in
           let deep_task =
             cpu_task e acc c ~site:gsite ~phase:"I" ~label:"deep-certify"
               ~units:(units_of_work deep.Deep.work) ~deps:deep_deps ()
           in
           finish_after deep_task
         end)
       ());
  let check_requests =
    List.fold_left (fun n ph -> n + List.length ph.built.Checks.requests) 0 phases
  in
  let checks_filtered =
    List.fold_left (fun n ph -> n + ph.built.Checks.filtered) 0 phases
  in
  Metrics.inc
    (Metrics.counter acc.reg
       ~labels:[ ("strategy", acc.sname) ]
       "msdq_check_requests_total")
    check_requests;
  Metrics.inc
    (Metrics.counter acc.reg
       ~labels:[ ("strategy", acc.sname) ]
       "msdq_checks_filtered_total")
    checks_filtered;
  (* Rows whose unsolved items match a (db, item) in [items]: the executor
     knows it never heard back about them, so it refuses to certify them and
     marks them degraded — this is what keeps certified(faulty) inside
     certified(fault-free) even when a lost verdict was an eliminating
     one. *)
  let rows_with_items items =
    List.fold_left
      (fun acc_set ph ->
        List.fold_left
          (fun acc_set (row : Local_result.row) ->
            if
              List.exists
                (fun (u : Local_result.unsolved) ->
                  Hashtbl.mem items
                    (row.Local_result.db, Dbobject.loid u.Local_result.item))
                row.Local_result.unsolved
            then Oid.Goid.Set.add row.Local_result.goid acc_set
            else acc_set)
          acc_set ph.result.Local_result.rows)
      Oid.Goid.Set.empty phases
  in
  (* Retry-only demotion set: any unsolved item in any abandoned batch. *)
  let affected () =
    let abandoned_keys = Hashtbl.create 16 in
    List.iteri
      (fun bi (_, reqs, _) ->
        if not batch_delivered.(bi) then
          List.iter
            (fun (r : Checks.request) ->
              Hashtbl.replace abandoned_keys (r.Checks.origin_db, r.Checks.item) ())
            reqs)
      served;
    rows_with_items abandoned_keys
  in
  {
    acc;
    fence = answer_fence;
    finish =
      (fun () ->
        let cf =
          match !certified_faulty with Some cf -> cf | None -> certified_ref
        in
        let pre =
          match !deep_faulty with
          | Some d -> d.Deep.answer
          | None -> cf.Certify.answer
        in
        let refc = Answer.goids ref_answer Answer.Certain in
        let refm = Answer.goids ref_answer Answer.Maybe in
        (* Suspect promotions (certain although the reference is not — a
           lost eliminating verdict) and resurrections (eliminated by the
           reference but kept as maybe here) are always demoted/marked. *)
        let base =
          Oid.Goid.Set.union
            (Oid.Goid.Set.diff (Answer.goids pre Answer.Certain) refc)
            (Oid.Goid.Set.diff (Answer.goids pre Answer.Maybe)
               (Oid.Goid.Set.union refc refm))
        in
        let mark, recovered_rows =
          if fx.f_partial then
            (Oid.Goid.Set.union base (Answer.goids pre Answer.Certain),
             Oid.Goid.Set.empty)
          else if not recovery_on then
            (Oid.Goid.Set.union base (affected ()), Oid.Goid.Set.empty)
          else begin
            (* With failover, a key only demotes its rows if it ended the
               run unanswered — no batch, primary or recovery, delivered a
               verdict for it. Rows that were touched by an abandonment but
               whose keys all got answered after all are the recovery win,
               reported as [recovered]. *)
            let failed_items = Hashtbl.create 16 in
            let unanswered_items = Hashtbl.create 16 in
            Hashtbl.iter
              (fun (origin, item, _atom) ks ->
                if ks.k_failed then
                  Hashtbl.replace failed_items (origin, item) ();
                if not ks.answered then
                  Hashtbl.replace unanswered_items (origin, item) ())
              kstates;
            let mark =
              Oid.Goid.Set.union base (rows_with_items unanswered_items)
            in
            (mark, Oid.Goid.Set.diff (rows_with_items failed_items) mark)
          end
        in
        fx.f_recovered <- Oid.Goid.Set.cardinal recovered_rows;
        let final = Answer.demote pre ~goids:mark in
        let final =
          if not recovery_on then final
          else begin
            (* Failover-chain provenance for the rows that still demoted. *)
            let chain_of = Hashtbl.create 16 in
            List.iter
              (fun ((origin, item, _atom) as key) ->
                let ks = kstate key in
                if (not ks.answered) && not (Hashtbl.mem chain_of (origin, item))
                then begin
                  let hops = List.rev ks.chain in
                  let why =
                    match hops with
                    | [] -> "check dropped; no live replica to re-route to"
                    | hops ->
                      "check dropped; " ^ String.concat "; " hops
                      ^ "; no live replica answered"
                  in
                  Hashtbl.add chain_of (origin, item) why
                end)
              (List.rev !korder);
            let reasons =
              List.concat_map
                (fun ph ->
                  List.filter_map
                    (fun (row : Local_result.row) ->
                      if Oid.Goid.Set.mem row.Local_result.goid (Answer.degraded final)
                      then
                        List.find_map
                          (fun (u : Local_result.unsolved) ->
                            Hashtbl.find_opt chain_of
                              (row.Local_result.db,
                               Dbobject.loid u.Local_result.item))
                          row.Local_result.unsolved
                        |> Option.map (fun why ->
                               (row.Local_result.goid, Answer.Fault why))
                      else None)
                    ph.result.Local_result.rows)
                phases
            in
            Answer.annotate_degraded final ~reasons
          end
        in
        if recovery_on then begin
          let bc name v =
            Metrics.inc
              (Metrics.counter acc.reg ~labels:[ ("strategy", acc.sname) ] name)
              v
          in
          (match breaker with
           | Some b ->
             bc "msdq_breaker_opened_total" (Recovery.Breaker.opened_total b);
             bc "msdq_breaker_probes_total" (Recovery.Breaker.probes_total b);
             bc "msdq_gray_slow_trips_total" (Recovery.Breaker.slow_total b)
           | None -> ());
          bc "msdq_recovery_failovers_total" fx.f_failovers;
          bc "msdq_recovery_hedges_total" fx.f_hedges;
          bc "msdq_recovery_recovered_total" fx.f_recovered;
          bc "msdq_gray_slow_legs_total" fx.f_slow
        end;
        {
          f_answer = final;
          f_check_requests = check_requests;
          f_checks_filtered = checks_filtered;
          f_promoted = cf.Certify.promoted;
          f_eliminated = cf.Certify.eliminated;
          f_conflicts = cf.Certify.conflicts;
          f_availability =
            availability_of fx ~recovered:fx.f_recovered ~ref_answer
              ~final_answer:final ();
        });
  }

(* ------------------------------------------------------------------ *)

let build e ?after ?trace_id ~reg ~tracer options strategy fed analysis =
  let acc = new_acc ?trace_id reg strategy in
  Tracer.with_span tracer ~cat:"build"
    ~args:[ ("strategy", acc.sname) ]
    ("build:" ^ acc.sname)
  @@ fun () ->
  if Fault.is_none options.fault then
    match strategy with
    | Ca -> build_ca e ?after ~acc ~tracer options fed analysis
    | Bl ->
      build_localized e ?after ~acc ~tracer options ~parallel:false
        ~signatures:false fed analysis
    | Pl ->
      build_localized e ?after ~acc ~tracer options ~parallel:true
        ~signatures:false fed analysis
    | Bls ->
      build_localized e ?after ~acc ~tracer options ~parallel:false
        ~signatures:true fed analysis
    | Pls ->
      build_localized e ?after ~acc ~tracer options ~parallel:true
        ~signatures:true fed analysis
    | Lo ->
      build_localized e ?after ~acc ~tracer options ~parallel:false
        ~checks:false ~signatures:false fed analysis
    | Cf -> build_cf e ?after ~acc ~tracer options fed analysis
  else
    let fx = new_fault_ctx options in
    match strategy with
    | Ca -> build_ca_faulty e ?after ~acc ~tracer ~fx options fed analysis
    | Bl ->
      build_localized_faulty e ?after ~acc ~tracer ~fx options ~parallel:false
        ~signatures:false fed analysis
    | Pl ->
      build_localized_faulty e ?after ~acc ~tracer ~fx options ~parallel:true
        ~signatures:false fed analysis
    | Bls ->
      build_localized_faulty e ?after ~acc ~tracer ~fx options ~parallel:false
        ~signatures:true fed analysis
    | Pls ->
      build_localized_faulty e ?after ~acc ~tracer ~fx options ~parallel:true
        ~signatures:true fed analysis
    | Lo ->
      build_localized_faulty e ?after ~acc ~tracer ~fx options ~parallel:false
        ~checks:false ~signatures:false fed analysis
    | Cf -> build_cf_faulty e ?after ~acc ~tracer ~fx options fed analysis

let finalize_registry reg strategy ~total ~response =
  let labels = [ ("strategy", to_string strategy) ] in
  Metrics.set (Metrics.gauge reg ~labels "msdq_total_us") (Time.to_us total);
  Metrics.set (Metrics.gauge reg ~labels "msdq_response_us") (Time.to_us response)

(* Telemetry histograms: log-bucketed per-task latency distributions,
   recorded per (strategy, site, resource, phase) from the engine trace.
   Opt-in via [options.telemetry]: when off, nothing is registered, so
   registry dumps stay byte-identical to pre-telemetry ones
   (golden-pinned). [only_trace] scopes the walk to one query's span tree
   when several queries shared the engine. *)
let record_latency_histograms reg ~sname ?only_trace entries =
  List.iter
    (fun (e : Trace.entry) ->
      let in_scope =
        match only_trace with
        | None -> true
        | Some qid -> List.assoc_opt "trace" e.Trace.attrs = Some qid
      in
      match (e.Trace.site, e.Trace.kind) with
      | Some site, Some kind when in_scope ->
        let phase =
          match List.assoc_opt "phase" e.Trace.attrs with
          | Some p -> p
          | None -> "-"
        in
        let h =
          Metrics.histogram reg
            ~labels:
              [
                ("strategy", sname);
                ("site", string_of_int site);
                ("resource", Resource.kind_to_string kind);
                ("phase", phase);
              ]
            "msdq_task_duration_us"
        in
        Metrics.observe h (Time.to_us (Time.sub e.Trace.finish e.Trace.start))
      | _ -> ())
    entries

let observe_query_latency reg ~sname latency =
  Metrics.observe
    (Metrics.histogram reg
       ~labels:[ ("strategy", sname) ]
       "msdq_query_latency_us")
    (Time.to_us latency)

let run ?(options = default_options) strategy fed analysis =
  validate_options options;
  Log.debug (fun m ->
      m "running %s over %d databases, query on %s" (to_string strategy)
        (List.length (Federation.databases fed))
        analysis.Analysis.range_class);
  let reg = Metrics.create () in
  let tracer = Tracer.create () in
  let e = Engine.create ~trace:true () in
  apply_site_speeds e options.site_speeds;
  Fault.install options.fault e;
  let b = build e ~reg ~tracer options strategy fed analysis in
  Engine.run e;
  let f = b.finish () in
  let stats = Engine.stats e in
  let total = Stats.total_busy stats in
  let response = Stats.makespan stats in
  finalize_registry reg strategy ~total ~response;
  if options.telemetry then begin
    record_latency_histograms reg ~sname:(to_string strategy)
      (Trace.entries (Engine.trace e));
    observe_query_latency reg ~sname:(to_string strategy) response
  end;
  if f.f_availability.faults_active then begin
    (* Fault counters only materialize on faulty runs, so fault-free
       registry dumps stay byte-identical to the pre-fault-injection ones. *)
    let fc name v =
      Metrics.inc
        (Metrics.counter reg ~labels:[ ("strategy", to_string strategy) ] name)
        v
    in
    fc "msdq_fault_drops_total" f.f_availability.drops;
    fc "msdq_fault_retries_total" f.f_availability.retries;
    fc "msdq_fault_abandoned_checks_total" f.f_availability.checks_abandoned;
    fc "msdq_fault_demotions_total" f.f_availability.demoted
  end;
  let metrics =
    {
      strategy;
      total;
      response;
      bytes_shipped = Metrics.total reg "msdq_bytes_shipped_total";
      disk_bytes = Metrics.total reg "msdq_disk_bytes_total";
      messages = Metrics.total reg "msdq_messages_total";
      check_requests = f.f_check_requests;
      checks_filtered = f.f_checks_filtered;
      work_units = Metrics.total reg "msdq_work_units_total";
      goid_lookups = Metrics.total reg "msdq_goid_lookups_total";
      promoted = f.f_promoted;
      eliminated_at_global = f.f_eliminated;
      conflicts = f.f_conflicts;
      breakdown = Stats.by_label stats;
      trace = Engine.trace e;
      registry = reg;
      host_spans = Tracer.spans tracer;
      availability = f.f_availability;
    }
  in
  Log.info (fun m ->
      m "%s: %d certain, %d maybe; total %a, response %a, %d checks"
        (to_string strategy)
        (List.length (Answer.certain f.f_answer))
        (List.length (Answer.maybe f.f_answer))
        Time.pp metrics.total Time.pp metrics.response f.f_check_requests);
  (f.f_answer, metrics)

let phase_breakdown m =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (e : Trace.entry) ->
      match e.Trace.site with
      | None -> ()
      | Some _ -> (
        match List.assoc_opt "phase" e.Trace.attrs with
        | None -> ()
        | Some phase ->
          let busy, n =
            match Hashtbl.find_opt tbl phase with
            | Some v -> v
            | None -> (Time.zero, 0)
          in
          Hashtbl.replace tbl phase
            (Time.add busy (Time.sub e.Trace.finish e.Trace.start), n + 1)))
    (Trace.entries m.trace);
  List.map
    (fun phase ->
      match Hashtbl.find_opt tbl phase with
      | Some (busy, n) -> (phase, busy, n)
      | None -> (phase, Time.zero, 0))
    [ "O"; "P"; "I" ]

type concurrent_query = {
  started : Time.t;
  completed : Time.t;
  q_strategy : t;
  q_answer : Answer.t;
  q_registry : Metrics.t;
  q_work_units : int;
  q_bytes_shipped : int;
  q_goid_lookups : int;
}

type concurrent_outcome = {
  queries : concurrent_query list;
  combined_total : Time.t;
  combined_makespan : Time.t;
}

let run_concurrent ?(options = default_options) fed jobs =
  validate_options options;
  let e = Engine.create ~trace:true () in
  apply_site_speeds e options.site_speeds;
  Fault.install options.fault e;
  let built =
    List.mapi
      (fun i (strategy, analysis, arrival) ->
        let after =
          if Time.compare arrival Time.zero > 0 then
            Some (Engine.delay e ~label:"arrival" ~duration:arrival ())
          else None
        in
        (* Each job owns its registry and tracer: one query's counters can
           never bleed into another's, no matter how the engine interleaves
           their tasks. The per-job trace id keeps the causal trees
           separable in the shared engine trace. *)
        let reg = Metrics.create () in
        let tracer = Tracer.create () in
        let trace_id = Printf.sprintf "q%d" i in
        ( strategy,
          arrival,
          reg,
          trace_id,
          build e ?after ~trace_id ~reg ~tracer options strategy fed analysis ))
      jobs
  in
  Engine.run e;
  let stats = Engine.stats e in
  {
    queries =
      List.map
        (fun (strategy, arrival, reg, trace_id, b) ->
          let f = b.finish () in
          let completed = Engine.finish_time e b.fence in
          if options.telemetry then begin
            record_latency_histograms reg ~sname:(to_string strategy)
              ~only_trace:trace_id
              (Trace.entries (Engine.trace e));
            observe_query_latency reg ~sname:(to_string strategy)
              (Time.sub completed arrival)
          end;
          {
            started = arrival;
            completed;
            q_strategy = strategy;
            q_answer = f.f_answer;
            q_registry = reg;
            q_work_units = Metrics.total reg "msdq_work_units_total";
            q_bytes_shipped = Metrics.total reg "msdq_bytes_shipped_total";
            q_goid_lookups = Metrics.total reg "msdq_goid_lookups_total";
          })
        built;
    combined_total = Stats.total_busy stats;
    combined_makespan = Stats.makespan stats;
  }

let run_query ?options strategy fed src =
  match Parser.parse_result src with
  | Error msg -> Error msg
  | Ok ast -> (
    let schema = Global_schema.schema (Federation.global_schema fed) in
    match Analysis.analyze schema ast with
    | exception Analysis.Error msg -> Error msg
    | analysis -> Ok (run ?options strategy fed analysis))

let pp_availability ppf a =
  (* Prints nothing for fault-free runs, so their plain-text output is
     byte-identical to the pre-fault-injection layout. *)
  if a.faults_active then
    Format.fprintf ppf
      "@,availability: sites [%s] faulty; %d drops, %d retries, %d checks \
       abandoned@,degradation: %d/%d certain demoted (%.2f), %d resurrected%s\
       @,reconciliation: %d certain(faulty) + %d demoted = %d \
       certain(fault-free); %d recovered by failover"
      (String.concat "," (List.map string_of_int a.failed_sites))
      a.drops a.retries a.checks_abandoned a.demoted a.certain_fault_free
      a.degradation_ratio a.resurrected
      (if a.partial then "; PARTIAL ANSWER" else "")
      (a.certain_fault_free - a.demoted)
      a.demoted a.certain_fault_free a.recovered

let pp_metrics ppf m =
  let phases = phase_breakdown m in
  let pp_phases ppf () =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " / ")
      (fun ppf (phase, busy, _) -> Format.fprintf ppf "%s %a" phase Time.pp busy)
      ppf phases
  in
  Format.fprintf ppf
    "@[<v>%s: total %a, response %a@,phases %a@,shipped %d bytes in %d \
     messages; disk %d bytes@,work %d units, %d goid lookups, %d checks (%d \
     filtered)@,promoted %d, eliminated at global %d%s%a@]"
    (to_string m.strategy) Time.pp m.total Time.pp m.response pp_phases ()
    m.bytes_shipped m.messages m.disk_bytes m.work_units m.goid_lookups
    m.check_requests m.checks_filtered m.promoted m.eliminated_at_global
    (if m.conflicts > 0 then Printf.sprintf ", %d CONFLICTS" m.conflicts else "")
    pp_availability m.availability
