open Msdq_odb
open Msdq_simkit
open Msdq_fed
open Msdq_query
module Metrics = Msdq_obs.Metrics
module Tracer = Msdq_obs.Tracer

let log_src = Logs.Src.create "msdq.exec" ~doc:"query execution strategies"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = Ca | Bl | Pl | Bls | Pls | Lo | Cf

let all = [ Ca; Bl; Pl; Bls; Pls; Lo; Cf ]

let to_string = function
  | Ca -> "CA"
  | Bl -> "BL"
  | Pl -> "PL"
  | Bls -> "BLS"
  | Pls -> "PLS"
  | Lo -> "LO"
  | Cf -> "CF"

let of_string s =
  match String.uppercase_ascii s with
  | "CA" -> Some Ca
  | "BL" -> Some Bl
  | "PL" -> Some Pl
  | "BLS" -> Some Bls
  | "PLS" -> Some Pls
  | "LO" -> Some Lo
  | "CF" -> Some Cf
  | _ -> None

type options = {
  cost : Cost.t;
  deep_certify : bool;
  multi_valued : bool;
  site_speeds : (int * float) list;
  trace : bool;
}

let default_options =
  {
    cost = Cost.default;
    deep_certify = false;
    multi_valued = false;
    site_speeds = [];
    trace = false;
  }

type metrics = {
  strategy : t;
  total : Time.t;
  response : Time.t;
  bytes_shipped : int;
  disk_bytes : int;
  messages : int;
  check_requests : int;
  checks_filtered : int;
  work_units : int;
  goid_lookups : int;
  promoted : int;
  eliminated_at_global : int;
  conflicts : int;
  breakdown : (string * Time.t * int) list;
  trace : Trace.t;
  registry : Metrics.t;
  host_spans : Tracer.span list;
}

(* Accumulator threaded through graph construction: a per-run metrics
   registry plus the strategy label every series and task carries. *)
type acc = { reg : Metrics.t; sname : string }

let new_acc reg strategy = { reg; sname = to_string strategy }

let ctr acc ~phase name =
  Metrics.counter acc.reg
    ~labels:[ ("phase", phase); ("strategy", acc.sname) ]
    name

let task_attrs acc ~phase ?db () =
  let base = [ ("strategy", acc.sname); ("phase", phase) ] in
  match db with Some d -> ("db", d) :: base | None -> base

let disk_task e acc c ~site ~phase ?db ~label ~bytes ?deps () =
  Metrics.inc (ctr acc ~phase "msdq_disk_bytes_total") bytes;
  Engine.task e ?deps ~site ~kind:Resource.Disk ~label
    ~attrs:(task_attrs acc ~phase ?db ())
    ~duration:(Cost.disk c ~bytes) ()

let cpu_task e acc c ~site ~phase ?db ~label ~units ?deps () =
  Metrics.inc (ctr acc ~phase "msdq_work_units_total") units;
  Engine.task e ?deps ~site ~kind:Resource.Cpu ~label
    ~attrs:(task_attrs acc ~phase ?db ())
    ~duration:(Cost.cpu c ~units) ()

let transfer e acc c ~src ~dst ~phase ?db ~label ~bytes ?deps () =
  if src <> dst && bytes > 0 then begin
    Metrics.inc (ctr acc ~phase "msdq_bytes_shipped_total") bytes;
    Metrics.inc (ctr acc ~phase "msdq_messages_total") 1
  end;
  Engine.transfer e ?deps ~src ~dst ~label
    ~attrs:(task_attrs acc ~phase ?db ())
    ~duration:(Cost.net c ~bytes) ()

let bump_goid acc ~phase n =
  Metrics.inc (ctr acc ~phase "msdq_goid_lookups_total") n

let units_of_work w = Meter.units w

(* Heterogeneous hardware: scale a site's CPU and disk (its machine speed);
   the incoming link stays at network speed. *)
let apply_site_speeds e speeds =
  List.iter
    (fun (site, factor) ->
      Engine.set_speed e ~site ~kind:Resource.Cpu ~factor;
      Engine.set_speed e ~site ~kind:Resource.Disk ~factor)
    speeds

(* A query's graph built into a (possibly shared) engine. *)
type built_query = {
  answer : Answer.t;
  acc : acc;
  fence : Engine.handle;  (* completes when the answer is assembled *)
  check_requests : int;
  checks_filtered : int;
  promoted : int;
  eliminated : int;
  conflicts : int;
}

(* ------------------------------------------------------------------ *)
(* CA — phase order O (ship everything) -> I (integrate) -> P (evaluate). *)

let build_ca e ?after ~acc ~tracer opts fed analysis =
  let c = opts.cost in
  let start_deps = match after with None -> [] | Some h -> [ h ] in
  let gs = Federation.global_schema fed in
  let involved = Involved.compute (Global_schema.schema gs) analysis in
  let outcome = Ca.run ~multi_valued:opts.multi_valued ~tracer fed analysis in
  let gsite = Federation.global_site fed in
  let xfers =
    List.map
      (fun (db_name, db) ->
        let bytes = Wire.projected_extent_bytes c involved gs ~db_name ~db in
        let site = Federation.site_of fed db_name in
        let read =
          disk_task e acc c ~site ~phase:"O" ~db:db_name ~label:"read-extents"
            ~bytes ~deps:start_deps ()
        in
        transfer e acc c ~src:site ~dst:gsite ~phase:"O" ~db:db_name
          ~label:"ship-objects" ~bytes ~deps:[ read ] ())
      (Federation.databases fed)
  in
  let m = outcome.Ca.materialize_stats in
  let integrate_units =
    m.Materialize.source_objects + m.Materialize.fields_merged
    + outcome.Ca.goid_lookups
  in
  bump_goid acc ~phase:"I" outcome.Ca.goid_lookups;
  let integrate =
    cpu_task e acc c ~site:gsite ~phase:"I" ~label:"integrate"
      ~units:integrate_units ~deps:xfers ()
  in
  let eval =
    cpu_task e acc c ~site:gsite ~phase:"P" ~label:"global-eval"
      ~units:(units_of_work outcome.Ca.eval_work)
      ~deps:[ integrate ] ()
  in
  let fence =
    Engine.fence e ~deps:[ eval ]
      ~attrs:[ ("strategy", acc.sname) ]
      ~label:"answer" ()
  in
  {
    answer = outcome.Ca.answer;
    acc;
    fence;
    check_requests = 0;
    checks_filtered = 0;
    promoted = 0;
    eliminated = 0;
    conflicts = 0;
  }

(* ------------------------------------------------------------------ *)
(* CF — semijoin-filtered centralized (extension, in the tradition of the
   paper's reference [20]): round 1, every root-hosting database evaluates
   its local predicates and ships only the surviving GOids; the global site
   intersects the lists (an entity absent from a database that holds one of
   its isomers was eliminated there) and broadcasts the candidate set; round
   2, the databases ship the candidates' root projections plus the branch
   extents, and the global site integrates and evaluates as CA does. The
   answer equals CA's on consistent federations: local elimination only
   drops definitely-false entities.

   Phase attribution: the round-1 local filter is predicate evaluation
   (phase P); everything that acquires or ships objects — GOid exchange,
   candidate broadcast, round-2 reads and ships — is phase O; integration
   is phase I; the final global evaluation is phase P again. *)

let build_cf e ?after ~acc ~tracer opts fed analysis =
  let c = opts.cost in
  let start_deps = match after with None -> [] | Some h -> [ h ] in
  let gs = Federation.global_schema fed in
  let schema = Global_schema.schema gs in
  let involved = Involved.compute schema analysis in
  let gsite = Federation.global_site fed in
  let root = analysis.Analysis.range_class in
  (* Round-1 computation: local filters (the LO machinery) determine the
     candidate set. *)
  let plans = Localize.plan fed analysis in
  let results =
    List.map
      (fun (p : Localize.db_plan) ->
        Local_eval.run ~tracer fed analysis ~db:p.Localize.db)
      plans
  in
  let lo =
    Certify.run ~multi_valued:opts.multi_valued ~tracer fed analysis ~results
      ~verdicts:[]
  in
  let candidates = Answer.goids lo.Certify.answer Answer.Certain in
  let candidates =
    Oid.Goid.Set.union candidates (Answer.goids lo.Certify.answer Answer.Maybe)
  in
  let n_candidates = Oid.Goid.Set.cardinal candidates in
  (* The final answer is CA's, computed over the integrated view. *)
  let outcome = Ca.run ~multi_valued:opts.multi_valued ~tracer fed analysis in
  (* ---- Round 1 tasks. ---- *)
  let width_root db_name =
    Involved.local_projection_width involved gs ~db:db_name ~gcls:root
  in
  let round1 =
    List.map2
      (fun (p : Localize.db_plan) (r : Local_result.t) ->
        let db_name = p.Localize.db in
        let site = Federation.site_of fed db_name in
        let touched = Touch.count fed analysis ~db:db_name in
        let read_bytes = Wire.localized_read_bytes c involved gs ~db_name ~touched in
        let read =
          disk_task e acc c ~site ~phase:"P" ~db:db_name ~label:"read-extents"
            ~bytes:read_bytes ~deps:start_deps ()
        in
        let eval =
          cpu_task e acc c ~site ~phase:"P" ~db:db_name ~label:"local-filter"
            ~units:(units_of_work r.Local_result.work + List.length r.Local_result.rows)
            ~deps:[ read ] ()
        in
        let ship =
          transfer e acc c ~src:site ~dst:gsite ~phase:"O" ~db:db_name
            ~label:"ship-goids"
            ~bytes:(List.length r.Local_result.rows * c.Cost.s_goid)
            ~deps:[ eval ] ()
        in
        (db_name, r, ship))
      plans results
  in
  bump_goid acc ~phase:"O" lo.Certify.goid_lookups;
  let intersect =
    cpu_task e acc c ~site:gsite ~phase:"O" ~label:"intersect"
      ~units:(units_of_work lo.Certify.work + lo.Certify.goid_lookups)
      ~deps:(List.map (fun (_, _, ship) -> ship) round1) ()
  in
  (* ---- Round 2: broadcast candidates, ship their data + branch extents. ---- *)
  let xfers =
    List.map
      (fun (db_name, db) ->
        let site = Federation.site_of fed db_name in
        let bcast =
          transfer e acc c ~src:gsite ~dst:site ~phase:"O" ~db:db_name
            ~label:"ship-candidates" ~bytes:(n_candidates * c.Cost.s_goid)
            ~deps:[ intersect ] ()
        in
        (* candidate root objects this database holds *)
        let mine =
          match List.find_opt (fun (n, _, _) -> String.equal n db_name) round1 with
          | Some (_, r, _) ->
            List.length
              (List.filter
                 (fun (row : Local_result.row) ->
                   Oid.Goid.Set.mem row.Local_result.goid candidates)
                 r.Local_result.rows)
          | None -> 0
        in
        let root_bytes = mine * (c.Cost.s_loid + (width_root db_name * c.Cost.s_a)) in
        (* Branch objects are also filtered: a database only ships the
           branch objects its candidate roots reach (each candidate follows
           at most one reference per chain class, so the touched count
           capped by the candidate count bounds it). Databases without a
           root constituent ship their touched branch objects in full. *)
        let touched =
          match Global_schema.constituent_of gs ~gcls:root ~db:db_name with
          | Some _ -> Touch.count fed analysis ~db:db_name
          | None -> []
        in
        let branch_bytes =
          List.fold_left
            (fun bytes gcls ->
              if String.equal gcls root then bytes
              else
                match Global_schema.constituent_of gs ~gcls ~db:db_name with
                | None -> bytes
                | Some cls ->
                  let width =
                    Involved.local_projection_width involved gs ~db:db_name ~gcls
                  in
                  let count =
                    match List.assoc_opt gcls touched with
                    | Some t -> min t (max mine 1)
                    | None -> Database.extent_size db cls
                  in
                  bytes + (count * (c.Cost.s_loid + (width * c.Cost.s_a))))
            0 (Involved.classes involved)
        in
        let bytes = root_bytes + branch_bytes in
        let read =
          disk_task e acc c ~site ~phase:"O" ~db:db_name
            ~label:"read-candidates" ~bytes ~deps:[ bcast ] ()
        in
        transfer e acc c ~src:site ~dst:gsite ~phase:"O" ~db:db_name
          ~label:"ship-objects" ~bytes ~deps:[ read ] ())
      (Federation.databases fed)
  in
  (* Integration over branch extents plus only the candidate roots; global
     evaluation over the candidates (CA's eval work scaled accordingly). *)
  let m = outcome.Ca.materialize_stats in
  let root_entities =
    max 1
      (List.length (Goid_table.goids_of_class (Federation.goids fed) ~gcls:root))
  in
  let scale n = n * n_candidates / root_entities in
  let integrate_units =
    m.Materialize.source_objects + m.Materialize.fields_merged
    + outcome.Ca.goid_lookups
  in
  bump_goid acc ~phase:"I" outcome.Ca.goid_lookups;
  let integrate =
    cpu_task e acc c ~site:gsite ~phase:"I" ~label:"integrate"
      ~units:integrate_units ~deps:xfers ()
  in
  let eval =
    cpu_task e acc c ~site:gsite ~phase:"P" ~label:"global-eval"
      ~units:(scale (units_of_work outcome.Ca.eval_work))
      ~deps:[ integrate ] ()
  in
  let fence =
    Engine.fence e ~deps:[ eval ]
      ~attrs:[ ("strategy", acc.sname) ]
      ~label:"answer" ()
  in
  {
    answer = outcome.Ca.answer;
    acc;
    fence;
    check_requests = 0;
    checks_filtered = 0;
    promoted = 0;
    eliminated = lo.Certify.eliminated;
    conflicts = lo.Certify.conflicts;
  }

(* ------------------------------------------------------------------ *)
(* Localized strategies *)

type local_phase = {
  plan : Localize.db_plan;
  result : Local_result.t;
  built : Checks.built;
  probe_work : Meter.snapshot option;  (* PL only *)
}

let no_checks =
  {
    Checks.requests = [];
    local_verdicts = [];
    filtered = 0;
    incapable = 0;
    root_level = 0;
    goid_lookups = 0;
    work = Meter.zero;
  }

let compute_local_phases ~parallel ~checks ~signatures ~tracer fed analysis
    plans =
  List.map
    (fun (plan : Localize.db_plan) ->
      let db = plan.Localize.db in
      if parallel then begin
        (* PL: probe all objects first (phase O), then evaluate (phase P). *)
        let probe = Probe.run ~tracer fed analysis ~db in
        let built =
          Checks.build ?signatures ~tracer fed analysis ~db
            ~root_class:plan.Localize.local_class ~items:probe.Probe.items
        in
        let result = Local_eval.run ~tracer fed analysis ~db in
        { plan; result; built; probe_work = Some probe.Probe.work }
      end
      else if not checks then
        (* LO: evaluation only; phases O and I degenerate to the per-entity
           merge of local results at the global site. *)
        let result = Local_eval.run ~tracer fed analysis ~db in
        { plan; result; built = no_checks; probe_work = None }
      else begin
        (* BL: evaluate first, then look up assistants for the maybe rows. *)
        let result = Local_eval.run ~tracer fed analysis ~db in
        let items =
          List.concat_map
            (fun (row : Local_result.row) -> row.Local_result.unsolved)
            result.Local_result.rows
        in
        let built =
          Checks.build ?signatures ~tracer fed analysis ~db
            ~root_class:plan.Localize.local_class ~items
        in
        { plan; result; built; probe_work = None }
      end)
    plans

(* Localized phase attribution (paper, Figure 8): local evaluation is phase
   P; probing, dispatching, shipping and serving assistant checks are phase
   O; shipping local results and certifying at the global site are phase I. *)
let build_localized e ?after ~acc ~tracer opts ~parallel ?(checks = true)
    ~signatures fed analysis =
  let c = opts.cost in
  let start_deps = match after with None -> [] | Some h -> [ h ] in
  let gs = Federation.global_schema fed in
  let involved = Involved.compute (Global_schema.schema gs) analysis in
  let plans = Localize.plan fed analysis in
  let signatures =
    if signatures then Some (Sig_catalog.build fed) else None
  in
  let phases =
    compute_local_phases ~parallel ~checks ~signatures ~tracer fed analysis
      plans
  in
  (* Serve the check requests, batched per (origin, target). *)
  let batches : (string * string, Checks.request list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let batch_order = ref [] in
  List.iter
    (fun ph ->
      List.iter
        (fun (r : Checks.request) ->
          let key = (r.Checks.origin_db, r.Checks.target_db) in
          match Hashtbl.find_opt batches key with
          | Some l -> l := r :: !l
          | None ->
            Hashtbl.add batches key (ref [ r ]);
            batch_order := key :: !batch_order)
        ph.built.Checks.requests)
    phases;
  let batch_order = List.rev !batch_order in
  let served =
    List.map
      (fun ((_, target) as key) ->
        let reqs = List.rev !(Hashtbl.find batches key) in
        (key, reqs, Checks.serve ~tracer fed ~db:target reqs))
      batch_order
  in
  let verdicts =
    List.concat_map (fun ph -> ph.built.Checks.local_verdicts) phases
    @ List.concat_map (fun (_, _, s) -> s.Checks.verdicts) served
  in
  let results = List.map (fun ph -> ph.result) phases in
  let certified =
    Certify.run ~multi_valued:opts.multi_valued ~tracer fed analysis ~results
      ~verdicts
  in
  let deep_outcome =
    if opts.deep_certify then
      Some
        (Deep.resolve ~multi_valued:opts.multi_valued ~tracer fed analysis
           certified.Certify.answer)
    else None
  in
  (* ---- Replay onto the simulator. ---- *)
  let gsite = Federation.global_site fed in
  let n_targets = List.length analysis.Analysis.targets in
  let dispatch_tasks : (string, Engine.handle) Hashtbl.t = Hashtbl.create 8 in
  let global_deps = ref [] in
  List.iter
    (fun ph ->
      let db_name = ph.plan.Localize.db in
      let site = Federation.site_of fed db_name in
      let touched = Touch.count fed analysis ~db:db_name in
      let read_bytes = Wire.localized_read_bytes c involved gs ~db_name ~touched in
      let read =
        disk_task e acc c ~site ~phase:"P" ~db:db_name ~label:"read-extents"
          ~bytes:read_bytes ~deps:start_deps ()
      in
      bump_goid acc ~phase:"O" ph.built.Checks.goid_lookups;
      (* Local goid lookups for row tagging happen during evaluation. *)
      let eval_units =
        units_of_work ph.result.Local_result.work
        + List.length ph.result.Local_result.rows
      in
      let dispatch_units =
        ph.built.Checks.goid_lookups + units_of_work ph.built.Checks.work
      in
      let dispatch =
        if parallel then begin
          (* PL: probe + dispatch before evaluation. *)
          let probe_units =
            match ph.probe_work with Some w -> units_of_work w | None -> 0
          in
          let probe =
            cpu_task e acc c ~site ~phase:"O" ~db:db_name ~label:"probe"
              ~units:probe_units ~deps:[ read ] ()
          in
          let dispatch =
            cpu_task e acc c ~site ~phase:"O" ~db:db_name
              ~label:"dispatch-checks" ~units:dispatch_units ~deps:[ probe ] ()
          in
          let eval =
            cpu_task e acc c ~site ~phase:"P" ~db:db_name ~label:"local-eval"
              ~units:eval_units ~deps:[ dispatch ] ()
          in
          Hashtbl.replace dispatch_tasks db_name dispatch;
          eval
        end
        else begin
          (* BL: evaluate, then dispatch. *)
          let eval =
            cpu_task e acc c ~site ~phase:"P" ~db:db_name ~label:"local-eval"
              ~units:eval_units ~deps:[ read ] ()
          in
          let dispatch =
            cpu_task e acc c ~site ~phase:"O" ~db:db_name
              ~label:"dispatch-checks" ~units:dispatch_units ~deps:[ eval ] ()
          in
          Hashtbl.replace dispatch_tasks db_name dispatch;
          dispatch
        end
      in
      let results_bytes =
        Wire.results_bytes c ~n_targets ph.result
        + List.length ph.built.Checks.local_verdicts * Wire.verdict_bytes c
      in
      let ship =
        transfer e acc c ~src:site ~dst:gsite ~phase:"I" ~db:db_name
          ~label:"ship-results" ~bytes:results_bytes ~deps:[ dispatch ] ()
      in
      global_deps := ship :: !global_deps)
    phases;
  List.iter
    (fun ((origin, target), reqs, (s : Checks.served)) ->
      let osite = Federation.site_of fed origin in
      let tsite = Federation.site_of fed target in
      let dispatch = Hashtbl.find dispatch_tasks origin in
      let req_xfer =
        transfer e acc c ~src:osite ~dst:tsite ~phase:"O" ~db:target
          ~label:"ship-requests" ~bytes:(Wire.requests_bytes c reqs)
          ~deps:[ dispatch ] ()
      in
      let read =
        disk_task e acc c ~site:tsite ~phase:"O" ~db:target ~label:"check-read"
          ~bytes:(Wire.check_read_bytes c reqs) ~deps:[ req_xfer ] ()
      in
      let eval =
        cpu_task e acc c ~site:tsite ~phase:"O" ~db:target ~label:"check-eval"
          ~units:(units_of_work s.Checks.work) ~deps:[ read ] ()
      in
      let verdict_xfer =
        transfer e acc c ~src:tsite ~dst:gsite ~phase:"O" ~db:target
          ~label:"ship-verdicts"
          ~bytes:(List.length s.Checks.verdicts * Wire.verdict_bytes c)
          ~deps:[ eval ] ()
      in
      global_deps := verdict_xfer :: !global_deps)
    served;
  bump_goid acc ~phase:"I" certified.Certify.goid_lookups;
  let certify_task =
    cpu_task e acc c ~site:gsite ~phase:"I" ~label:"certify"
      ~units:(units_of_work certified.Certify.work + certified.Certify.goid_lookups)
      ~deps:(List.rev !global_deps) ()
  in
  let last =
    match deep_outcome with
    | None -> certify_task
    | Some deep ->
      (* Residual resolution: each database ships the projected data of the
         residual entities' involved classes, then the global site resolves. *)
      let residual = deep.Deep.residual in
      let per_entity_bytes =
        List.fold_left
          (fun bytes gcls ->
            bytes + c.Cost.s_loid
            + (List.length (Involved.attrs_of_class involved gcls) * c.Cost.s_a))
          0 (Involved.classes involved)
      in
      let deep_deps =
        List.map
          (fun (db_name, _) ->
            let site = Federation.site_of fed db_name in
            let bytes = residual * per_entity_bytes in
            let read =
              disk_task e acc c ~site ~phase:"I" ~db:db_name ~label:"deep-read"
                ~bytes ~deps:[ certify_task ] ()
            in
            transfer e acc c ~src:site ~dst:gsite ~phase:"I" ~db:db_name
              ~label:"deep-ship" ~bytes ~deps:[ read ] ())
          (Federation.databases fed)
      in
      cpu_task e acc c ~site:gsite ~phase:"I" ~label:"deep-certify"
        ~units:(units_of_work deep.Deep.work) ~deps:deep_deps ()
  in
  let fence =
    Engine.fence e ~deps:[ last ]
      ~attrs:[ ("strategy", acc.sname) ]
      ~label:"answer" ()
  in
  let answer =
    match deep_outcome with
    | Some deep -> deep.Deep.answer
    | None -> certified.Certify.answer
  in
  let check_requests =
    List.fold_left (fun n ph -> n + List.length ph.built.Checks.requests) 0 phases
  in
  let checks_filtered =
    List.fold_left (fun n ph -> n + ph.built.Checks.filtered) 0 phases
  in
  Metrics.inc
    (Metrics.counter acc.reg
       ~labels:[ ("strategy", acc.sname) ]
       "msdq_check_requests_total")
    check_requests;
  Metrics.inc
    (Metrics.counter acc.reg
       ~labels:[ ("strategy", acc.sname) ]
       "msdq_checks_filtered_total")
    checks_filtered;
  {
    answer;
    acc;
    fence;
    check_requests;
    checks_filtered;
    promoted = certified.Certify.promoted;
    eliminated = certified.Certify.eliminated;
    conflicts = certified.Certify.conflicts;
  }

(* ------------------------------------------------------------------ *)

let build e ?after ~reg ~tracer options strategy fed analysis =
  let acc = new_acc reg strategy in
  Tracer.with_span tracer ~cat:"build"
    ~args:[ ("strategy", acc.sname) ]
    ("build:" ^ acc.sname)
  @@ fun () ->
  match strategy with
  | Ca -> build_ca e ?after ~acc ~tracer options fed analysis
  | Bl ->
    build_localized e ?after ~acc ~tracer options ~parallel:false
      ~signatures:false fed analysis
  | Pl ->
    build_localized e ?after ~acc ~tracer options ~parallel:true
      ~signatures:false fed analysis
  | Bls ->
    build_localized e ?after ~acc ~tracer options ~parallel:false
      ~signatures:true fed analysis
  | Pls ->
    build_localized e ?after ~acc ~tracer options ~parallel:true
      ~signatures:true fed analysis
  | Lo ->
    build_localized e ?after ~acc ~tracer options ~parallel:false ~checks:false
      ~signatures:false fed analysis
  | Cf -> build_cf e ?after ~acc ~tracer options fed analysis

let finalize_registry reg strategy ~total ~response =
  let labels = [ ("strategy", to_string strategy) ] in
  Metrics.set (Metrics.gauge reg ~labels "msdq_total_us") (Time.to_us total);
  Metrics.set (Metrics.gauge reg ~labels "msdq_response_us") (Time.to_us response)

let run ?(options = default_options) strategy fed analysis =
  Log.debug (fun m ->
      m "running %s over %d databases, query on %s" (to_string strategy)
        (List.length (Federation.databases fed))
        analysis.Analysis.range_class);
  let reg = Metrics.create () in
  let tracer = Tracer.create () in
  let e = Engine.create ~trace:true () in
  apply_site_speeds e options.site_speeds;
  let b = build e ~reg ~tracer options strategy fed analysis in
  Engine.run e;
  let stats = Engine.stats e in
  let total = Stats.total_busy stats in
  let response = Stats.makespan stats in
  finalize_registry reg strategy ~total ~response;
  let metrics =
    {
      strategy;
      total;
      response;
      bytes_shipped = Metrics.total reg "msdq_bytes_shipped_total";
      disk_bytes = Metrics.total reg "msdq_disk_bytes_total";
      messages = Metrics.total reg "msdq_messages_total";
      check_requests = b.check_requests;
      checks_filtered = b.checks_filtered;
      work_units = Metrics.total reg "msdq_work_units_total";
      goid_lookups = Metrics.total reg "msdq_goid_lookups_total";
      promoted = b.promoted;
      eliminated_at_global = b.eliminated;
      conflicts = b.conflicts;
      breakdown = Stats.by_label stats;
      trace = Engine.trace e;
      registry = reg;
      host_spans = Tracer.spans tracer;
    }
  in
  Log.info (fun m ->
      m "%s: %d certain, %d maybe; total %a, response %a, %d checks"
        (to_string strategy)
        (List.length (Answer.certain b.answer))
        (List.length (Answer.maybe b.answer))
        Time.pp metrics.total Time.pp metrics.response b.check_requests);
  (b.answer, metrics)

let phase_breakdown m =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (e : Trace.entry) ->
      match e.Trace.site with
      | None -> ()
      | Some _ -> (
        match List.assoc_opt "phase" e.Trace.attrs with
        | None -> ()
        | Some phase ->
          let busy, n =
            match Hashtbl.find_opt tbl phase with
            | Some v -> v
            | None -> (Time.zero, 0)
          in
          Hashtbl.replace tbl phase
            (Time.add busy (Time.sub e.Trace.finish e.Trace.start), n + 1)))
    (Trace.entries m.trace);
  List.map
    (fun phase ->
      match Hashtbl.find_opt tbl phase with
      | Some (busy, n) -> (phase, busy, n)
      | None -> (phase, Time.zero, 0))
    [ "O"; "P"; "I" ]

type concurrent_query = {
  started : Time.t;
  completed : Time.t;
  q_strategy : t;
  q_answer : Answer.t;
  q_registry : Metrics.t;
  q_work_units : int;
  q_bytes_shipped : int;
  q_goid_lookups : int;
}

type concurrent_outcome = {
  queries : concurrent_query list;
  combined_total : Time.t;
  combined_makespan : Time.t;
}

let run_concurrent ?(options = default_options) fed jobs =
  let e = Engine.create ~trace:true () in
  apply_site_speeds e options.site_speeds;
  let built =
    List.map
      (fun (strategy, analysis, arrival) ->
        let after =
          if Time.compare arrival Time.zero > 0 then
            Some (Engine.delay e ~label:"arrival" ~duration:arrival ())
          else None
        in
        (* Each job owns its registry and tracer: one query's counters can
           never bleed into another's, no matter how the engine interleaves
           their tasks. *)
        let reg = Metrics.create () in
        let tracer = Tracer.create () in
        (strategy, arrival, reg, build e ?after ~reg ~tracer options strategy fed analysis))
      jobs
  in
  Engine.run e;
  let stats = Engine.stats e in
  {
    queries =
      List.map
        (fun (strategy, arrival, reg, b) ->
          {
            started = arrival;
            completed = Engine.finish_time e b.fence;
            q_strategy = strategy;
            q_answer = b.answer;
            q_registry = reg;
            q_work_units = Metrics.total reg "msdq_work_units_total";
            q_bytes_shipped = Metrics.total reg "msdq_bytes_shipped_total";
            q_goid_lookups = Metrics.total reg "msdq_goid_lookups_total";
          })
        built;
    combined_total = Stats.total_busy stats;
    combined_makespan = Stats.makespan stats;
  }

let run_query ?options strategy fed src =
  match Parser.parse_result src with
  | Error msg -> Error msg
  | Ok ast -> (
    let schema = Global_schema.schema (Federation.global_schema fed) in
    match Analysis.analyze schema ast with
    | exception Analysis.Error msg -> Error msg
    | analysis -> Ok (run ?options strategy fed analysis))

let pp_metrics ppf m =
  let phases = phase_breakdown m in
  let pp_phases ppf () =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " / ")
      (fun ppf (phase, busy, _) -> Format.fprintf ppf "%s %a" phase Time.pp busy)
      ppf phases
  in
  Format.fprintf ppf
    "@[<v>%s: total %a, response %a@,phases %a@,shipped %d bytes in %d \
     messages; disk %d bytes@,work %d units, %d goid lookups, %d checks (%d \
     filtered)@,promoted %d, eliminated at global %d%s@]"
    (to_string m.strategy) Time.pp m.total Time.pp m.response pp_phases ()
    m.bytes_shipped m.messages m.disk_bytes m.work_units m.goid_lookups
    m.check_requests m.checks_filtered m.promoted m.eliminated_at_global
    (if m.conflicts > 0 then Printf.sprintf ", %d CONFLICTS" m.conflicts else "")
