(** Replicated object-signature catalog (future-work extension).

    Indexes the signature of every object of every component database by
    (database, LOid). The paper's signature-assisted strategies assume this
    auxiliary structure is replicated like the GOid mapping tables, so
    consulting a signature is local CPU work.

    Since the columnar re-representation, signatures live packed inside
    each extent ({!Msdq_odb.Extent.signatures}); the catalog stores no
    digests of its own — an entry is a reference into an extent's
    {!Msdq_odb.Sigset.t} plus the object's row, so {!build} allocates one
    small record per object instead of one digest array per object. *)

open Msdq_odb
open Msdq_fed

type t

type entry
(** One object's signature: a row of its extent's columnar store. *)

val build : Federation.t -> t

val find : t -> db:string -> Oid.Loid.t -> entry option

val may_satisfy : entry -> index:int -> op:Relop.t -> operand:Value.t -> bool
(** Whether the object behind this entry could satisfy [attr op operand]
    ([index] is the attribute's field position); exactly
    [Signature.may_satisfy] on the object's signature. *)

val object_count : t -> int

val storage_bytes : t -> s_sig:int -> int
(** Replica size at one site: one signature per object. *)
