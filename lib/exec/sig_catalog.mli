(** Replicated object-signature catalog (future-work extension).

    Holds the signature of every object of every component database, indexed
    by (database, LOid). The paper's signature-assisted strategies assume
    this auxiliary structure is replicated like the GOid mapping tables, so
    consulting a signature is local CPU work. *)

open Msdq_odb
open Msdq_fed

type t

val build : Federation.t -> t

val find : t -> db:string -> Oid.Loid.t -> Signature.t option

val object_count : t -> int

val storage_bytes : t -> s_sig:int -> int
(** Replica size at one site: one signature per object. *)
