open Msdq_odb

type unsolved = {
  atom : int;
  item : Dbobject.t;
  rest : Path.t;
  cause : Predicate.cause;
}

type row = {
  db : string;
  obj : Dbobject.t;
  goid : Oid.Goid.t;
  truths : Truth.t array;
  unsolved : unsolved list;
  values : Value.t option array;
}

type t = {
  db : string;
  rows : row list;
  examined : int;
  eliminated : int;
  work : Meter.snapshot;
}

let is_solved row = row.unsolved = []

let row_is_root_only row =
  List.for_all
    (fun u -> Oid.Loid.equal (Dbobject.loid u.item) (Dbobject.loid row.obj))
    row.unsolved

let pp_row ppf r =
  let pp_unsolved ppf u =
    Format.fprintf ppf "atom %d blocked at %s(%a) on %a" u.atom
      (Dbobject.cls u.item) Oid.Loid.pp (Dbobject.loid u.item) Path.pp u.rest
  in
  Format.fprintf ppf "@[<v 2>%a@%s -> %a%s@,%a@]" Oid.Loid.pp
    (Dbobject.loid r.obj) r.db Oid.Goid.pp r.goid
    (if is_solved r then " (solved)" else "")
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_unsolved)
    r.unsolved

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d rows (%d examined, %d eliminated)@,%a@]" t.db
    (List.length t.rows) t.examined t.eliminated
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_row)
    t.rows
