(** Which attributes of which classes a query touches.

    Used to size projections: strategies only ship the attributes a query
    involves (the paper's optimization in step CA_C1 and the [N_qa]
    parameter of Table 2). *)

open Msdq_odb
open Msdq_fed
open Msdq_query

type t

val compute : Schema.t -> Analysis.t -> t
(** [compute global_schema analysis]: resolves every target and predicate
    path and records, per global class, the set of attribute names used. *)

val attrs_of_class : t -> string -> string list
(** Attribute names the query uses on a global class (sorted). Empty for
    uninvolved classes. *)

val classes : t -> string list
(** Involved global classes, range class first. *)

val local_projection_width : t -> Global_schema.t -> db:string -> gcls:string -> int
(** Number of involved attributes that [db]'s constituent of [gcls] actually
    defines — the width of the projection shipped or read for that local
    class. 0 when [db] has no constituent. *)
