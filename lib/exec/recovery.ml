(* Failover recovery: policy knobs + per-link circuit breakers.
   See recovery.mli for the contract; Strategy wires this into the
   localized strategies' faulty builders. *)

open Msdq_simkit
module Fault = Msdq_fault.Fault

type policy = {
  failover : bool;
  breaker_threshold : int;
  hedge_after : Time.t option;
}

let disabled = { failover = false; breaker_threshold = 3; hedge_after = None }
let default = { disabled with failover = true }
let hedged after = { default with hedge_after = Some after }

let validate p =
  if p.breaker_threshold < 1 then
    invalid_arg
      (Printf.sprintf "Recovery.validate: breaker_threshold %d < 1"
         p.breaker_threshold);
  match p.hedge_after with
  | None -> ()
  | Some d ->
      if (not (Time.is_finite d)) || Time.to_us d < 0.0 then
        invalid_arg "Recovery.validate: hedge_after must be finite and >= 0"

module Breaker = struct
  type state = Closed | Open | Half_open

  type event =
    | Opened of { site : int; at : Time.t; probe_at : Time.t option }
    | Probing of { site : int; at : Time.t }

  type entry = {
    mutable st : state;
    mutable consecutive : int; (* failures since the last success *)
    mutable probe_at : Time.t option; (* Open: earliest probe; None = never *)
  }

  type t = {
    threshold : int;
    sched : Fault.schedule;
    entries : (int, entry) Hashtbl.t;
    on_event : event -> unit;
    mutable opened : int;
    mutable probes : int;
    mutable slow : int;
  }

  let create ?(on_event = fun _ -> ()) ~threshold ~sched () =
    if threshold < 1 then invalid_arg "Breaker.create: threshold < 1";
    { threshold; sched; entries = Hashtbl.create 8; on_event;
      opened = 0; probes = 0; slow = 0 }

  let entry t site =
    match Hashtbl.find_opt t.entries site with
    | Some e -> e
    | None ->
        let e = { st = Closed; consecutive = 0; probe_at = None } in
        Hashtbl.replace t.entries site e;
        e

  let state t ~site = (entry t site).st

  let probe_due e ~at =
    match e.probe_at with
    | None -> false
    | Some p -> Time.compare at p >= 0

  let live t ~site ~at =
    let e = entry t site in
    match e.st with
    | Closed -> true
    | Half_open -> false
    | Open -> probe_due e ~at

  let allow t ~site ~at =
    let e = entry t site in
    match e.st with
    | Closed -> true
    | Half_open -> false
    | Open ->
        if probe_due e ~at then begin
          e.st <- Half_open;
          t.probes <- t.probes + 1;
          t.on_event (Probing { site; at });
          true
        end
        else false

  let success t ~site =
    let e = entry t site in
    e.st <- Closed;
    e.consecutive <- 0;
    e.probe_at <- None

  let open_now t e ~site ~at =
    e.st <- Open;
    (* the probe never makes sense before the schedule says the site is
       back; if the site is up right now [next_up] returns [at] and the
       breaker half-opens on the next allow — drops can come from the lossy
       link alone, not just crash windows *)
    e.probe_at <- Fault.next_up t.sched ~site ~at;
    t.opened <- t.opened + 1;
    t.on_event (Opened { site; at; probe_at = e.probe_at })

  let trip t ~site ~at =
    let e = entry t site in
    e.consecutive <- e.consecutive + 1;
    match e.st with
    | Half_open -> open_now t e ~site ~at (* failed probe: reopen *)
    | Closed -> if e.consecutive >= t.threshold then open_now t e ~site ~at
    | Open -> () (* a transfer already in flight when we opened; ignore *)

  let failure t ~site ~at = trip t ~site ~at

  (* Latency-aware tripping: a round trip that completed but exceeded the
     adaptive threshold counts toward opening exactly like a drop, so a
     slow-but-up (gray) destination gets routed around just like a dead
     one. Unlike [success], it never resets the consecutive count. *)
  let slow t ~site ~at =
    t.slow <- t.slow + 1;
    trip t ~site ~at

  let opened_total t = t.opened
  let probes_total t = t.probes
  let slow_total t = t.slow
end
