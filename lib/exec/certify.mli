(** Certification — phase I at the global processing site (step BL_G2).

    Local results from all root-hosting databases are merged per entity
    (GOid), together with the assistant-check verdicts:

    {ul
    {- An entity {e expected} in some database's local result (per the
       replicated GOid tables) but absent from it was eliminated there by a
       definite predicate violation, so it is eliminated globally — this is
       how the paper's example drops s1 when its isomer s2' fails the city
       predicate in DB2.}
    {- Per atom, the truth values determined by the different databases and
       by the assistant checks are combined: any definite verdict wins over
       Unknown (isomeric objects jointly satisfying the unsolved predicates
       is the paper's certification rule; a violating assistant eliminates).}
    {- The query condition is then re-evaluated over the merged atom truths:
       True yields a certain result, Unknown a maybe result, False
       elimination.}}

    Projected values merge across databases (first local value wins; on
    consistent federations all agree). *)

open Msdq_odb
open Msdq_query

type outcome = {
  answer : Answer.t;
  promoted : int;  (** maybe rows turned certain by merging/checking *)
  eliminated : int;  (** entities dropped at the global site *)
  conflicts : int;  (** contradicting definite verdicts (inconsistent data) *)
  work : Meter.snapshot;
  goid_lookups : int;
}

val run :
  ?multi_valued:bool ->
  ?tracer:Msdq_obs.Tracer.t ->
  Msdq_fed.Federation.t ->
  Analysis.t ->
  results:Local_result.t list ->
  verdicts:Checks.verdict list ->
  outcome
(** With [~multi_valued:true] (extension), an entity's atom satisfied in any
    database is satisfied, even if another copy violates it — matching CA's
    existential evaluation over integrated value sets. *)
