(** Deep certification (extension; the paper's certification stops after one
    round of assistant checks).

    A check that itself hits missing data returns Unknown, leaving a maybe
    result that the centralized approach would have decided by chaining
    values across three or more databases. Deep certification closes that
    gap: for the residual maybe results it evaluates the still-unknown
    condition over the integrated (materialized) view of exactly those
    entities — semantically equivalent to recursive assistant consultation.
    With it, the localized strategies return the same statuses as CA on
    consistent federations (property-tested). *)

open Msdq_odb
open Msdq_query

type outcome = {
  answer : Answer.t;
  resolved : int;  (** residual maybes decided (either way) *)
  eliminated : int;  (** residual maybes that turned out false *)
  residual : int;  (** maybe rows entering deep certification *)
  work : Meter.snapshot;
}

val resolve :
  ?multi_valued:bool -> ?tracer:Msdq_obs.Tracer.t -> Msdq_fed.Federation.t ->
  Analysis.t -> Answer.t -> outcome
