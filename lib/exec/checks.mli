(** Assistant-object checking — phase O's remote part (steps BL_C2/BL_C3,
    PL_C1/PL_C3).

    For each unsolved item, the GOid mapping tables yield its isomeric
    objects in other databases (the {e assistant objects}); a check request
    ships the assistant's LOid together with the unsolved predicate suffix
    to the assistant's database, which evaluates it and returns a verdict.

    Requests are deduplicated per (item, atom): many maybe results can share
    one unsolved item (e.g. students with the same advisor), and the paper
    collects LOids per class before sending. Root-level blocks produce no
    requests — root objects are certified through the other databases' local
    results instead (paper, Section 2.3).

    With a signature catalog, single-attribute equality checks are first
    tested against the assistant's replicated signature: a mismatch is a
    definitive local [False] verdict and the round trip is skipped. *)

open Msdq_odb
open Msdq_fed
open Msdq_query

type request = {
  origin_db : string;
  target_db : string;
  assistant : Oid.Loid.t;  (** object to check, in [target_db] *)
  item : Oid.Loid.t;  (** the unsolved item back in [origin_db] *)
  atom : int;
  pred : Predicate.t;  (** relative predicate: path = the unsolved suffix *)
}

type verdict = {
  origin_db : string;
  item : Oid.Loid.t;
  atom : int;
  truth : Truth.t;
}

type built = {
  requests : request list;
  local_verdicts : verdict list;
      (** verdicts decided at the origin site by signature filtering *)
  filtered : int;  (** requests avoided thanks to signatures *)
  incapable : int;
      (** assistants skipped because their component schema cannot resolve
          the suffix (the paper: "no assistant object can provide the
          data") *)
  root_level : int;  (** blocks at the root object (no requests needed) *)
  goid_lookups : int;
  work : Meter.snapshot;
      (** all dispatch-side work: GOid-table probes and signature
          comparisons, measured on a private per-call meter *)
}

val build :
  ?signatures:Sig_catalog.t -> ?tracer:Msdq_obs.Tracer.t -> Federation.t ->
  Analysis.t -> db:string -> root_class:string ->
  items:Local_result.unsolved list -> built
(** [root_class] is [db]'s constituent of the range class, used to separate
    root-level blocks from item-level ones. When [tracer] is given, the call
    records a ["checks.build"] host span. *)

type served = {
  verdicts : verdict list;
  objects_read : int;
  work : Meter.snapshot;
}

val serve :
  ?tracer:Msdq_obs.Tracer.t -> Federation.t -> db:string -> request list ->
  served
(** Step BL_C3: evaluate each request's predicate on the assistant object in
    [db]. All requests must target [db]. [work] is measured on a private
    meter, so concurrent serves never mix counts. *)

val verdict_key : verdict -> string * int * int
(** [(origin_db, item loid, atom)] — the key certification joins on. *)

val request_signature : request -> string
(** The verdict-cache key used by the workload engine ([Msdq_serve]):
    [target_db], assistant LOid and the full relative predicate (path
    suffix, operator and operand). Deliberately excludes the origin item and
    atom index — a verdict depends only on the assistant object's attribute
    values and the relative predicate, never on the querying context, which
    is exactly why one query's verdict can certify another query's row. *)
