(** Wire and storage sizes of everything the strategies ship or read,
    derived from the size constants of Table 1. Objects are projected on
    their LOid and the attributes the query involves (the optimization the
    paper applies in step CA_C1). *)

open Msdq_odb
open Msdq_fed

val projected_extent_bytes :
  Cost.t -> Involved.t -> Global_schema.t -> db_name:string -> db:Database.t -> int
(** Bytes of the query-relevant projection of all involved local extents of
    one database: per involved global class with a constituent here,
    [extent size x (S_LOid + width x S_a)]. This is both what CA ships and
    what a localized strategy reads from disk. *)

val localized_read_bytes :
  Cost.t -> Involved.t -> Global_schema.t -> db_name:string ->
  touched:(string * int) list -> int
(** Disk bytes a localized evaluation reads: the root extent plus only the
    {e touched} branch objects (see [Touch]), each projected on the involved
    attributes. *)

val local_row_bytes : Cost.t -> n_targets:int -> Local_result.row -> int
(** One local-result row: GOid + LOid + projected targets + one (LOid,
    predicate) annotation per unsolved entry. *)

val results_bytes : Cost.t -> n_targets:int -> Local_result.t -> int

val request_bytes : Cost.t -> Checks.request -> int
(** Assistant LOid + item LOid + the suffix predicate (one attribute-sized
    cell per path step plus the operand). *)

val requests_bytes : Cost.t -> Checks.request list -> int

val verdict_bytes : Cost.t -> int
(** One check verdict: item LOid + atom index + truth. *)

val check_read_bytes : Cost.t -> Checks.request list -> int
(** Disk bytes to fetch the assistant objects of a request batch: one
    random-access page per request at minimum (assistants are fetched by
    LOid, not scanned). *)

val coalesced_requests_bytes :
  Cost.t -> header_bytes:int -> Checks.request list list -> int
(** Bytes of one coalesced check-request message carrying several queries'
    request batches to the same target site: one [header_bytes] framing
    constant plus the packed {!requests_bytes} payloads. The workload
    engine's cross-query batching ([Msdq_serve]) amortizes the header this
    way; with a single group this is exactly the unbatched message size.
    Raises [Invalid_argument] on negative [header_bytes]. *)
