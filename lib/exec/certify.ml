open Msdq_odb
open Msdq_fed
open Msdq_query
module Tracer = Msdq_obs.Tracer

type outcome = {
  answer : Answer.t;
  promoted : int;
  eliminated : int;
  conflicts : int;
  work : Meter.snapshot;
  goid_lookups : int;
}

(* Combines two truth values about the same fact: definite beats Unknown.
   Contradicting definite values resolve to False and count as a conflict on
   single-valued federations (where they indicate inconsistent data); under
   multi-valued integration a real-world entity legitimately carries all its
   copies' values, so an atom satisfied by any copy is satisfied by the
   entity (existential semantics) and True wins. *)
let combine ~multi_valued ~conflicts a b =
  match (a, b) with
  | Truth.Unknown, t | t, Truth.Unknown -> t
  | Truth.True, Truth.True -> Truth.True
  | Truth.False, Truth.False -> Truth.False
  | Truth.False, Truth.True | Truth.True, Truth.False ->
    if multi_valued then Truth.True
    else begin
      incr conflicts;
      Truth.False
    end

let run ?(multi_valued = false) ?(tracer = Tracer.disabled) fed
    (analysis : Analysis.t) ~results ~verdicts =
  Tracer.with_span tracer ~cat:"integrate"
    ~args:[ ("verdicts", string_of_int (List.length verdicts)) ]
    "certify.run"
  @@ fun () ->
  let table = Federation.goids fed in
  let meter = Meter.create () in
  let conflicts = ref 0 in
  let n_atoms = List.length analysis.Analysis.atoms in
  let n_targets = List.length analysis.Analysis.targets in
  let atoms = Array.of_list analysis.Analysis.atoms in
  (* Index the verdicts by (origin db, item, atom); several assistants can
     answer about the same item. *)
  let verdict_index : (string * int * int, Truth.t ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun v ->
      let key = Checks.verdict_key v in
      Meter.add_accesses meter 1;
      match Hashtbl.find_opt verdict_index key with
      | Some r -> r := combine ~multi_valued ~conflicts !r v.Checks.truth
      | None -> Hashtbl.add verdict_index key (ref v.Checks.truth))
    verdicts;
  (* Group the local rows per entity. *)
  let by_goid : Local_result.row list ref Oid.Goid.Table.t =
    Oid.Goid.Table.create 256
  in
  let goid_order = ref [] in
  List.iter
    (fun (res : Local_result.t) ->
      List.iter
        (fun (row : Local_result.row) ->
          Meter.add_accesses meter 1;
          match Oid.Goid.Table.find_opt by_goid row.Local_result.goid with
          | Some r -> r := row :: !r
          | None ->
            Oid.Goid.Table.add by_goid row.Local_result.goid (ref [ row ]);
            goid_order := row.Local_result.goid :: !goid_order)
        res.Local_result.rows)
    results;
  let result_dbs = List.map (fun (r : Local_result.t) -> r.Local_result.db) results in
  let promoted = ref 0 and eliminated = ref 0 in
  let rows = ref [] in
  let assemble goid =
    let group = List.rev !(Oid.Goid.Table.find by_goid goid) in
    (* Elimination through an absent isomer: if a database that hosts the
       root class holds an isomeric object of this entity but did not
       return it, its local predicates definitely failed there. *)
    let isomer_dbs =
      List.filter_map
        (fun (db, _) -> if List.mem db result_dbs then Some db else None)
        (Goid_table.locals_of table ~meter goid)
    in
    let present_dbs = List.map (fun (r : Local_result.row) -> r.Local_result.db) group in
    let missing_somewhere =
      List.exists (fun db -> not (List.mem db present_dbs)) isomer_dbs
    in
    if missing_somewhere then incr eliminated
    else begin
      (* Merge per-atom truths across databases, then apply check verdicts
         to the still-unsolved entries. *)
      let merged = Array.make n_atoms Truth.Unknown in
      List.iter
        (fun (row : Local_result.row) ->
          Array.iteri
            (fun i t ->
              Meter.add_accesses meter 1;
              merged.(i) <- combine ~multi_valued ~conflicts merged.(i) t)
            row.Local_result.truths)
        group;
      List.iter
        (fun (row : Local_result.row) ->
          List.iter
            (fun (u : Local_result.unsolved) ->
              let key =
                ( row.Local_result.db,
                  Oid.Loid.to_int (Dbobject.loid u.Local_result.item),
                  u.Local_result.atom )
              in
              Meter.add_accesses meter 1;
              match Hashtbl.find_opt verdict_index key with
              | Some r ->
                merged.(u.Local_result.atom) <-
                  combine ~multi_valued ~conflicts merged.(u.Local_result.atom) !r
              | None -> ())
            row.Local_result.unsolved)
        group;
      let truth =
        Cond.eval
          (fun pred ->
            let rec find i =
              if i >= n_atoms then Truth.Unknown
              else if Predicate.equal atoms.(i).Analysis.pred pred then merged.(i)
              else find (i + 1)
            in
            find 0)
          analysis.Analysis.query.Ast.where
      in
      match truth with
      | Truth.False -> incr eliminated
      | (Truth.True | Truth.Unknown) as t ->
        let was_locally_solved =
          List.exists Local_result.is_solved group
        in
        if Truth.equal t Truth.True && not was_locally_solved then incr promoted;
        (* Merge target projections: first locally-derived value wins. *)
        let values =
          Array.make n_targets Value.Null
        in
        for i = 0 to n_targets - 1 do
          let v =
            List.find_map
              (fun (row : Local_result.row) ->
                Meter.add_accesses meter 1;
                match row.Local_result.values.(i) with
                | Some v when not (Value.is_null v) -> Some v
                | Some _ | None -> None)
              group
          in
          match v with Some v -> values.(i) <- v | None -> ()
        done;
        let status =
          match t with
          | Truth.True -> Answer.Certain
          | Truth.Unknown -> Answer.Maybe
          | Truth.False -> assert false
        in
        rows := { Answer.goid; values = Array.to_list values; status } :: !rows
    end
  in
  List.iter assemble (List.rev !goid_order);
  let answer =
    Answer.make ~targets:(List.map fst analysis.Analysis.targets) (List.rev !rows)
  in
  {
    answer;
    promoted = !promoted;
    eliminated = !eliminated;
    conflicts = !conflicts;
    work = Meter.read meter;
    goid_lookups = (Meter.read meter).Meter.goid_lookups;
  }
