(** Exportable run reports: JSON metrics, Chrome traces, utilization tables
    and the bench result schema.

    Everything here is deterministic given its inputs (no clock reads), so
    the emitted bytes are stable and golden-testable. JSON goes through
    {!Msdq_obs.Json}; the repo carries no third-party JSON dependency. *)

open Msdq_query
open Msdq_exec
module Json = Msdq_obs.Json

val metrics_to_json : Strategy.metrics -> Json.t
(** One strategy run: totals, per-phase (O/P/I) busy time and task counts,
    shipping/disk/message/check counters, the per-label breakdown, and the
    full metrics registry dump. When the run had a fault schedule installed,
    an extra ["availability"] object carries the fault/degradation report
    (failed sites, drops, retries, abandoned checks, demotions,
    resurrections, the partial flag and the degradation ratio); fault-free
    documents are byte-identical to what earlier versions emitted. *)

val availability_to_json : Strategy.availability -> Json.t
(** The ["availability"] section alone. *)

val run_to_json : Answer.t -> Strategy.metrics -> Json.t
(** {!metrics_to_json} plus an answer summary (certain/maybe counts). *)

val query_to_json :
  query:string -> (Answer.t * Strategy.metrics) list -> Json.t
(** The [msdq query --json] document: the query string and one entry per
    strategy run. *)

val chrome_trace : Strategy.metrics list -> Json.t
(** Chrome [trace_event] document for one or several runs sharing a site
    numbering: one complete event per engine task (pid = site, tid =
    resource, args = strategy/phase/db attribution), fences on a separate
    lane, host spans under {!Msdq_obs.Tracer.host_pid}, plus one flow
    event pair per recorded task dependency — the causal edges that let
    Perfetto draw each query's tree across sites. Opens in
    [chrome://tracing] or Perfetto. *)

val chrome_trace_of_entries : Msdq_simkit.Trace.entry list -> Json.t
(** Same document for a raw engine trace (no host spans) — the serve
    path's [outcome.trace], where the whole workload shares one engine. *)

val pp_utilization : Format.formatter -> Strategy.metrics -> unit
(** Per-site, per-phase busy-time table computed from the task trace. *)

val figure_to_json : Figures.figure -> Json.t
(** One regenerated figure: id, title, axis, xs and every series. *)

val figures_to_json : Figures.figure list -> Json.t
(** The [msdq experiment --json] document. *)

val fault_sweep_to_json : Fault_sweep.sweep -> Json.t
(** The [msdq experiment --fault-sweep --json] document: availability
    levels plus one (responses, recalls) series per strategy and the
    fail-stop baseline. *)

val recovery_sweep_to_json : Fault_sweep.recovery_sweep -> Json.t
(** The [msdq experiment --recovery-sweep --json] document: availability
    levels plus one (responses, recalls, demoted) series per
    (strategy, recovery-mode) cell. *)

val serve_sweep_to_json : Serve_sweep.sweep -> Json.t
(** The [msdq serve --sweep --json] document: cache capacities plus one
    (throughputs, speedups, hits) series per (strategy, window) cell. *)

val auto_sweep_to_json : Auto_sweep.outcome -> Json.t
(** The [msdq experiment --auto-sweep --json] document: fixed-strategy
    makespans, AUTO's makespan, per-strategy decision counts, breaker
    switches and the estimator's rank-match rate. *)

val overload_sweep_to_json : Overload_sweep.outcome -> Json.t
(** The [msdq experiment --overload-sweep --json] document: calibration
    (solo response, deadline budget, queue depth), the load grid and one
    point per (policy, multiplier) cell — admitted/shed counts, goodput,
    deadline-hit rate, p50/p99 of admitted latency, demoted rows and
    abandoned checks — plus the at-capacity p99 the validator's tail
    bound is measured against. *)

val gray_sweep_to_json : Gray_sweep.outcome -> Json.t
(** The [msdq experiment --gray-sweep --json] document: the
    (policy x kind x severity) grid of the gray-failure tolerance sweep —
    demoted rows, abandoned checks, mean/p99 latency and gray-site count
    per cell — plus the shared baseline drop and the static arm's fixed
    timeout. *)

(** {2 Bench results} *)

val bench_schema : string
(** ["msdq-bench/10"] — the schema every new document is written with. *)

val bench_schema_v9 : string
(** ["msdq-bench/9"] — still accepted by {!validate_bench}. *)

val bench_schema_v8 : string
(** ["msdq-bench/8"] — still accepted by {!validate_bench}. *)

val bench_schema_v7 : string
(** ["msdq-bench/7"] — still accepted by {!validate_bench}. *)

val bench_schema_v6 : string
(** ["msdq-bench/6"] — still accepted by {!validate_bench}. *)

val bench_schema_v5 : string
(** ["msdq-bench/5"] — still accepted by {!validate_bench}. *)

val bench_schema_v4 : string
(** ["msdq-bench/4"] — still accepted by {!validate_bench}. *)

val bench_schema_v3 : string
(** ["msdq-bench/3"] — still accepted by {!validate_bench}. *)

val bench_schema_v2 : string
(** ["msdq-bench/2"] — still accepted by {!validate_bench}. *)

val bench_schema_v1 : string
(** ["msdq-bench/1"] — still accepted by {!validate_bench}, so the perf
    trajectory accumulated by CI stays checkable across the bumps. *)

type parallel = {
  jobs : int;  (** worker domains incl. the caller ([--jobs]) *)
  grid_points : int;  (** grid points in the timed calibration sweep *)
  seq_s : float;  (** wall-clock of the calibration sweep at [--jobs 1] *)
  par_s : float;  (** wall-clock of the same sweep on the pool *)
  speedup : float;  (** [seq_s /. par_s] *)
}
(** The [/2] parallel section: how much the domain pool actually bought on
    this machine, measured on a fixed calibration sweep whose output is
    asserted identical between the two timed runs. *)

type microbench = {
  mb_objects : int;  (** extent rows in the evaluation arms *)
  mb_boxed_eval : float;  (** objs/s, per-object [Predicate.eval] *)
  mb_columnar_eval : float;  (** objs/s, [Extent.eval_attr] *)
  mb_eval_speedup : float;  (** columnar / boxed *)
  mb_boxed_sig : float;  (** objs/s, per-object [Signature.may_satisfy] *)
  mb_bitset_sig : float;  (** objs/s, [Sigset.refuted_count] *)
  mb_sig_speedup : float;  (** bitset / boxed *)
  mb_certify_rows : int;  (** local rows fed to one [Certify.run] pass *)
  mb_certify_rows_per_s : float;
}
(** The [/10] microbench section: columnar-engine throughput in objects/sec
    for local predicate evaluation and signature filtering — each measured
    in both representations, so the speedup ratios are same-process and
    safe to gate on — plus end-to-end certification rows/sec.
    docs/PERFORMANCE.md explains how to run and read it. *)

val bench_to_json :
  generated_at:string ->
  seed:int ->
  parallel:parallel ->
  fault_sweep:Fault_sweep.sweep ->
  recovery_sweep:Fault_sweep.recovery_sweep ->
  serve_sweep:Serve_sweep.sweep ->
  latency:(string * Msdq_simkit.Stats.summary) list ->
  auto_sweep:Auto_sweep.outcome ->
  overload_sweep:Overload_sweep.outcome ->
  gray_sweep:Gray_sweep.outcome ->
  microbench:microbench ->
  strategies:(string * float * float) list ->
  wall:(string * float) list ->
  Json.t
(** The [BENCH_<timestamp>.json] document. [strategies] carries one
    [(name, total_s, response_s)] triple per simulated strategy run on the
    demo workload; [wall] carries bechamel wall-clock medians as
    [(benchmark, ns_per_run)]; [seed] is the run's base rng seed;
    [fault_sweep] and [recovery_sweep] are the run's (possibly reduced)
    robustness sweeps, [serve_sweep] its workload-engine sweep and
    [latency] its per-strategy query-latency quantile summaries
    ([(name, summary)], the [/6] histogram section), [auto_sweep] the
    AUTO-vs-fixed comparison (the [/7] section), [overload_sweep] the
    overload-robustness sweep (the [/8] section), [gray_sweep] the
    gray-failure tolerance sweep (the [/9] section) and [microbench] the
    columnar-engine throughput section (the [/10] section).
    [generated_at] is injected (not read from the clock) so tests stay
    deterministic. *)

val validate_bench : Json.t -> (unit, string) result
(** Structural validation of a bench document: used by the test suite and
    the CI smoke step. Accepts {!bench_schema_v1} through {!bench_schema}
    payloads; [seed]/[parallel] are required from [/2] on, the
    [fault_sweep] section from [/3] on (non-empty availability grid,
    equal-length series, recalls inside [0, 1]), the [recovery_sweep]
    section from [/4] on (same shape plus a non-negative mean-demoted
    array per series), the [serve_sweep] section from [/5] on (non-empty
    cache grid, equal-length series, non-negative throughputs and
    speedups), the [latency] section from [/6] on (non-empty, one
    quantile summary per strategy, non-negative and non-decreasing
    p50 <= p90 <= p99 whenever the count is positive) and the
    [auto_sweep] section from [/7] on — which additionally enforces the
    experiment's win condition: AUTO's makespan must not exceed the best
    fixed strategy's, so an optimizer regression fails validation — and
    the [overload_sweep] section from [/8] on, which enforces the
    robustness win condition: the naive baseline's p99 grows
    monotonically and blows past twice the at-capacity p99 while every
    rejecting shed policy keeps admitted p99 within that bound at every
    overloaded point ([degrade] is reported but not bounded) — and the
    [gray_sweep] section from [/9] on, which enforces the gray win
    condition: on every (kind, severity) cell the adaptive arm demotes no
    more rows than the static arm, and on the slowdown cells its mean
    response undercuts the static arm's by at least
    {!Gray_sweep.response_margin} — and the [microbench] section from
    [/10] on (positive throughputs and well-formed counts; the >= 5x
    local-eval speedup bar lives in the bench gate, not here, so a noisy
    machine still produces a structurally valid document). *)

val pp_explain : Format.formatter -> Answer.t -> unit
(** Per-row provenance table ([msdq query --explain]): every row's GOid and
    status plus {e why} — degraded rows print the recorded reason (the
    check round trip that never returned), cache-certified rows say so,
    and the remaining maybe rows are honest missing-data maybes. *)

val record_serve_stats : store:Msdq_telemetry.Store.t -> Msdq_serve.Serve.outcome -> unit
(** Fold one serve outcome into a persistent telemetry store: one entry
    per strategy in the workload (keyed [db="*", site=0, link=0]) carrying
    the strategy's mean query latency and mean demotions plus the
    workload's drop and cache-hit rates, then counts the run. Inputs for
    the AUTO strategy selector (ROADMAP item 2). *)
