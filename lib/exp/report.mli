(** Plain-text and CSV rendering of regenerated figures. *)

val pp_figure : Format.formatter -> Figures.figure -> unit
(** Two aligned tables — (a) total execution time, (b) response time — with
    one column per strategy, values in seconds. *)

val pp_checks : Format.formatter -> (string * bool) list -> unit

val to_csv : Figures.figure -> string
(** Header [x,<S> total s,<S> response s,...], one row per x. *)

val pp_ascii_chart :
  Format.formatter -> Figures.figure -> metric:[ `Total | `Response ] -> unit
(** A rough terminal chart of one panel (rows = strategies x points, bar
    length proportional to the value). *)
