open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload
open Msdq_serve
module Metrics = Msdq_obs.Metrics
module Store = Msdq_telemetry.Store
module Fault = Msdq_fault.Fault

let log_src = Logs.Src.create "msdq.exp.gray" ~doc:"gray-failure tolerance sweep"

module Log = (val Logs.src_log log_src : Logs.LOG)

type point = {
  pt_policy : string;
  pt_kind : string;
  pt_severity : string;
  pt_queries : int;
  pt_demoted_rows : int;
  pt_abandoned_checks : int;
  pt_mean_ms : float;
  pt_p99_ms : float;
  pt_gray_sites : int;
}

type outcome = {
  id : string;
  title : string;
  seed : int;
  queries : int;
  drop : float;
  static_timeout_ms : float;
  kinds : string list;
  severities : string list;
  policies : string list;
  points : point list;
}

let static_policy = "static"
let adaptive_policy = "adaptive"
let policies = [ static_policy; adaptive_policy ]
let kinds = [ "slowdown"; "jitter"; "flap"; "oneway" ]
let severities = [ "mild"; "severe" ]

(* Every cell shares a baseline lossy link (so retransmission waits exist
   for the timeout policy to shrink) on top of its gray fault. *)
let base_drop = 0.3

(* Gap between job arrivals. Wide enough that queries do not queue behind
   each other even when the severe slowdown stretches service times —
   queueing delay is identical under both timeout policies and would only
   dilute the relative response-time difference the sweep measures —
   while the gray windows anchored to the stream's span still catch some
   queries inside them and some outside. *)
let spacing_us = 700_000.0

(* Win condition margin: on the slowdown cells the adaptive arm's mean
   response must undercut the static arm's by at least this fraction. *)
let response_margin = 0.05

(* The static arm's retransmission timeout. An operator picking one fixed
   timeout must size it for the worst round trip the deployment can see —
   here the severe slowdown window — so it sits at the classic
   conservative initial-RTO scale, orders of magnitude above the adaptive
   clamp ceiling [Strategy.default_adaptive.hi]. The adaptive arm tracks
   the observed per-link latency instead and never waits longer than that
   ceiling, which is where the response-time win comes from; the drop
   draws ignore the timeout entirely, so both arms lose (and demote)
   exactly the same legs. *)
let static_timeout_us = 100_000.0

(* Same dense single-case generation as the serve/overload sweeps: every
   database hosts every class and a quarter of the attributes are missing,
   so BL issues real check round trips — the legs gray faults degrade. *)
let rec make_case seed attempt =
  if attempt > 20 then None
  else
    let cfg =
      {
        Synth.default with
        Synth.seed = (seed * 37) + attempt;
        n_entities = 60;
        p_host = 1.0;
        p_attr_present = 0.75;
        p_null = 0.12;
        p_copy = 0.4;
      }
    in
    let fed = Synth.generate cfg in
    let rng = Rng.create ~seed:(seed + (attempt * 1013)) in
    let query = Synth.random_query rng cfg ~disjunctive:false in
    let schema = Global_schema.schema (Federation.global_schema fed) in
    match Analysis.analyze schema query with
    | analysis ->
        (* A case whose BL plan issues no check round trips cannot
           exercise retransmission timeouts at all: probe one fault-free
           serve and skip the case unless real checks go on the wire. *)
        let probe =
          Serve.run
            { Serve.default_config with cache_bytes = 0; window = Time.zero }
            fed
            [
              {
                Serve.strategy = Strategy.Bl;
                analysis;
                arrival = Time.zero;
                deadline = None;
              };
            ]
        in
        if probe.Serve.check_latency <> [] then Some (fed, analysis)
        else make_case seed (attempt + 1)
    | exception Analysis.Error _ -> make_case seed (attempt + 1)

(* The gray schedule of one (kind, severity) cell: explicit windows over
   the database sites, anchored to the job stream's horizon, plus the
   shared lossy link. Deterministic — no draws besides the schedule's own
   per-transfer hash. *)
let schedule ~seed ~kind ~severity ~sites ~horizon_us =
  let links =
    List.map
      (fun s ->
        {
          Fault.dst = s;
          drop = base_drop;
          inflate = 1.0;
          jitter =
            (match kind with
            | "jitter" -> if severity = "severe" then 4.0 else 1.0
            | _ -> 0.0);
        })
      sites
  in
  let span lo hi =
    [
      {
        Fault.down = Time.us (lo *. horizon_us);
        up = Time.us (hi *. horizon_us);
      };
    ]
  in
  let slowdowns =
    match kind with
    | "slowdown" ->
        (* Severity raises the slowdown factor over the same busy window,
           so the severe cell is a strictly grayer version of the mild
           one rather than a longer outage. *)
        let factor, lo, hi =
          if severity = "severe" then (4.0, 0.1, 0.7) else (2.0, 0.1, 0.7)
        in
        List.map
          (fun s -> { Fault.slow_site = s; factor; busy = span lo hi })
          sites
    | _ -> []
  in
  let outages =
    match kind with
    | "flap" ->
        let duty = if severity = "severe" then 0.5 else 0.2 in
        let train =
          Fault.flap_train ~from:Time.zero ~until:(Time.us horizon_us)
            ~period:(Time.us (4.0 *. spacing_us))
            ~duty
        in
        List.map (fun s -> { Fault.site = s; outages = train }) sites
    | _ -> []
  in
  let partitions =
    match kind with
    | "oneway" ->
        let targets, lo, hi =
          if severity = "severe" then (sites, 0.1, 0.7)
          else
            ((match sites with s :: _ -> [ s ] | [] -> []), 0.2, 0.5)
        in
        List.map
          (fun s ->
            {
              Fault.part_site = s;
              direction = Fault.Outbound;
              cut = span lo hi;
            })
          targets
    | _ -> []
  in
  { Fault.seed; sites = outages; links; slowdowns; partitions }

let percentile_ms lats_us p =
  match lats_us with
  | [] -> 0.0
  | l ->
      let s = Stats.summarize l in
      (match p with
      | `Mean -> s.Stats.mean_us
      | `P99 -> s.Stats.p99_us)
      /. 1000.0

let config ~cost ~sched ~static_timeout_us ~retry_adaptive ~latency_of =
  {
    Serve.default_config with
    Serve.options =
      {
        Strategy.default_options with
        Strategy.cost;
        fault = sched;
        retry =
          {
            Strategy.default_retry with
            Strategy.timeout = Time.us static_timeout_us;
            adaptive = retry_adaptive;
          };
        latency_of;
      };
    cache_bytes = 0;
    window = Time.zero;
  }

(* One (policy, kind, severity) cell. The adaptive arm first runs the cell
   once under the static policy (the warmup), records the per-link
   check-leg latencies into a fresh telemetry store, and feeds them back
   through [options.latency_of] — the full telemetry loop, not an oracle.
   Pure in its arguments, so the pool can run cells in any order. *)
let point ~cost ~fed ~analysis ~queries ~seed ~policy ~kind ~severity =
  let jobs =
    List.init queries (fun i ->
        {
          Serve.strategy = Strategy.Bl;
          analysis;
          arrival = Time.us (float_of_int i *. spacing_us);
          deadline = None;
        })
  in
  let horizon_us = float_of_int queries *. spacing_us in
  let sites =
    List.map
      (fun (db, _) -> Federation.site_of fed db)
      (Federation.databases fed)
  in
  let sched = schedule ~seed ~kind ~severity ~sites ~horizon_us in
  let retry_adaptive, latency_of =
    if String.equal policy adaptive_policy then begin
      let store = Store.create () in
      let warm =
        Serve.run
          (config ~cost ~sched ~static_timeout_us ~retry_adaptive:None
             ~latency_of:None)
          fed jobs
      in
      (* The warmup's observed per-link check-leg latencies, recorded under
         the store's per-link marker key (the same entries
         Run_report.record_serve_stats writes) and read back through
         Store.latency_of — the loop the serving path closes across runs. *)
      List.iter
        (fun (site, mean_us, legs) ->
          Store.observe store
            { Store.db = "link"; site; link = site; strategy = "*" }
            {
              Store.weight = float_of_int legs;
              check_latency_us = mean_us;
              drop_rate = 0.0;
              cache_hit_rate = 0.0;
              demotions = 0.0;
            })
        warm.Serve.check_latency;
      Store.record_run store;
      ( Some Strategy.default_adaptive,
        Some (fun site -> Store.latency_of store ~site) )
    end
    else (None, None)
  in
  let out =
    Serve.run
      (config ~cost ~sched ~static_timeout_us ~retry_adaptive ~latency_of)
      fed jobs
  in
  let lats_us =
    List.map (fun r -> Time.to_us r.Serve.latency) out.Serve.reports
  in
  let demoted =
    List.fold_left
      (fun acc (r : Serve.query_report) ->
        acc
        + Msdq_odb.Oid.Goid.Set.cardinal (Answer.degraded r.Serve.answer))
      0 out.Serve.reports
  in
  {
    pt_policy = policy;
    pt_kind = kind;
    pt_severity = severity;
    pt_queries = queries;
    pt_demoted_rows = demoted;
    pt_abandoned_checks =
      Metrics.total out.Serve.registry "msdq_checks_abandoned_total";
    pt_mean_ms = percentile_ms lats_us `Mean;
    pt_p99_ms = percentile_ms lats_us `P99;
    pt_gray_sites = List.length (Fault.gray_sites sched);
  },
  Metrics.total out.Serve.registry "msdq_fault_retries_total"

let run ?pool ?registry ?progress ?(queries = 12) ?(seed = 1996)
    ?(cost = Cost.default) () =
  let id = "gray-sweep" in
  match make_case seed 0 with
  | None -> invalid_arg "Gray_sweep: no analyzable case for this seed"
  | Some (fed, analysis) ->
      let grid =
        Array.of_list
          (List.concat_map
             (fun policy ->
               List.concat_map
                 (fun kind ->
                   List.map (fun sev -> (policy, kind, sev)) severities)
                 kinds)
             policies)
      in
      let total = Array.length grid in
      let completed = Atomic.make 0 in
      let feedback_mutex = Mutex.create () in
      let cell (policy, kind, severity) =
        let r, retries =
          point ~cost ~fed ~analysis ~queries ~seed ~policy ~kind ~severity
        in
        let done_now = 1 + Atomic.fetch_and_add completed 1 in
        Mutex.lock feedback_mutex;
        Log.info (fun m ->
            m "%s: %s/%s/%s done (%d/%d): mean %.2f ms, %d demoted, %d \
               retries"
              id policy kind severity done_now total r.pt_mean_ms
              r.pt_demoted_rows retries);
        (match progress with
        | Some f -> f ~figure:id ~completed:done_now ~total
        | None -> ());
        Mutex.unlock feedback_mutex;
        r
      in
      let points =
        match pool with
        | Some pool when Msdq_par.Pool.jobs pool > 1 ->
            Array.to_list
              (Msdq_par.Pool.map_array pool ~f:(fun _ g -> cell g) grid)
        | Some _ | None -> Array.to_list (Array.map cell grid)
      in
      (match registry with
      | Some reg ->
          Metrics.inc
            (Metrics.counter reg
               ~labels:[ ("figure", id) ]
               "msdq_gray_points_total")
            total
      | None -> ());
      {
        id;
        title = "Static vs adaptive retry timeouts across gray-failure kinds";
        seed;
        queries;
        drop = base_drop;
        static_timeout_ms = static_timeout_us /. 1000.0;
        kinds;
        severities;
        policies;
        points;
      }

let point_of outcome ~policy ~kind ~severity =
  List.find_opt
    (fun p ->
      String.equal p.pt_policy policy
      && String.equal p.pt_kind kind
      && String.equal p.pt_severity severity)
    outcome.points
