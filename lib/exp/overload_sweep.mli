(** The overload experiment: goodput and tail latency vs offered load,
    per shed policy (the robustness win condition of the serve engine's
    overload controls).

    One dense synthetic federation and one BL query shape, served at
    offered loads of 0.5x, 1x, 2x and 3x the calibrated capacity (the
    realized solo response of one served query). Each load point runs
    once {e naive} — unbounded queue, no deadline, the pre-overload
    engine — and once per shed policy with a depth-{!queue_limit}
    admission queue and a deadline budget of 1.8x the solo response.

    The win condition, recorded in the bench JSON's [overload_sweep]
    section ([msdq-bench/8]) and enforced by its validator: the naive
    baseline's p99 grows monotonically with offered load and blows past
    twice the at-capacity p99, while with shedding and deadlines the p99
    of {e admitted} queries stays within 2x the at-capacity p99 at every
    overloaded point (rejecting policies; [degrade] trades latency for
    admitting everything and is reported but not bounded).

    Every cell is a pure function of (seed, policy, multiplier): running
    the grid on a {!Msdq_par.Pool} of any size yields bit-identical
    outcomes (jobs-invariance, pinned by the test suite). *)

type point = {
  pt_policy : string;
      (** ["naive"] or a {!Msdq_serve.Serve.shed_policy} name *)
  pt_multiplier : float;  (** offered load as a multiple of capacity *)
  pt_offered : int;  (** queries submitted *)
  pt_admitted : int;  (** queries served (offered minus shed) *)
  pt_shed : int;
  pt_goodput : float;  (** admitted queries per simulated second *)
  pt_deadline_hits : int;
      (** admitted queries that completed within the budget with no
          deadline demotions *)
  pt_hit_rate : float;  (** [deadline_hits / admitted] *)
  pt_p50_ms : float;  (** median admitted latency *)
  pt_p99_ms : float;  (** p99 admitted latency *)
  pt_demoted_rows : int;  (** rows demoted at the deadline, summed *)
  pt_abandoned_checks : int;
      (** check requests whose round trips the deadline abandoned (rows
          that would have certified anyway lose nothing — the anytime
          floor — so this can be positive while [pt_demoted_rows] is 0) *)
}

type outcome = {
  id : string;
  title : string;
  seed : int;
  queries : int;  (** jobs offered per cell *)
  queue_limit : int;  (** admission depth bound of the controlled rows *)
  solo_response_ms : float;  (** calibrated capacity service time *)
  deadline_ms : float;  (** the budget of the controlled rows *)
  multipliers : float array;  (** the load grid, ascending *)
  policies : string list;  (** row order: naive first, then shed policies *)
  points : point list;  (** policy-major, multiplier-minor *)
  cap_p99_ms : float;
      (** at-capacity p99: the reject-newest row at multiplier 1.0 *)
}

val naive_policy : string
(** ["naive"] — the unbounded, deadline-free baseline row. *)

val multipliers : float array
(** [[| 0.5; 1.0; 2.0; 3.0 |]]. *)

val queue_limit : int
(** Depth bound of the controlled rows (2). *)

val policies : string list
(** [naive] plus every shed policy name, in fixed order. *)

val run :
  ?pool:Msdq_par.Pool.t ->
  ?registry:Msdq_obs.Metrics.t ->
  ?progress:(figure:string -> completed:int -> total:int -> unit) ->
  ?queries:int ->
  ?seed:int ->
  ?cost:Msdq_exec.Cost.t ->
  unit ->
  outcome
(** Defaults: 16 queries per cell, seed 1996, Table-1 costs. [pool]
    parallelizes cells without changing the outcome. Raises
    [Invalid_argument] if the seed yields no analyzable query. *)

val points_of : outcome -> string -> point list
(** The points of one policy row, in multiplier order. *)
