(** The serve sweep (workload-engine extension): throughput of the
    multi-query workload engine against cache capacity and check-batching
    admission window, CA vs BL vs PL.

    Each sample synthesizes a federation and a repeated-query workload and
    runs it through [Msdq_serve] once per (strategy, window, cache size)
    cell — the zero-capacity column is the cold anchor, so each series'
    speedup is its own warm-over-cold makespan ratio. The paper has no
    multi-query evaluation; this sweep quantifies the extension's claim
    that cross-query caching and batching buy simulated-clock throughput
    without ever changing an answer (the cache-soundness property the test
    suite checks separately).

    Determinism matches the other sweeps: every sample draws from
    index-derived rng streams, so results are bit-identical for any
    [?pool] worker count. *)

open Msdq_exec

type series = {
  label : string;  (** ["<STRATEGY> w=<window>us"], e.g. ["BL w=500us"] *)
  strategy : string;
  window_us : float;
  throughputs : float array;
      (** mean queries per simulated second, one entry per cache size *)
  speedups : float array;
      (** mean cold-makespan / makespan per cache size; the zero-capacity
          entry is 1 by construction *)
  hits : float array;
      (** mean cache hits (extent + verdict) per query per cache size *)
}

type sweep = {
  id : string;  (** ["serve-sweep"] *)
  title : string;
  xlabel : string;
  xs : float array;  (** cache capacities in KiB, ascending from 0 *)
  windows_us : float array;  (** admission windows swept, microseconds *)
  queries : int;  (** queries per workload *)
  samples : int;
  seed : int;
  series : series list;  (** strategy-major, window-minor: CA w=0 .. PL w=500 *)
}

val run :
  ?pool:Msdq_par.Pool.t ->
  ?registry:Msdq_obs.Metrics.t ->
  ?progress:(figure:string -> completed:int -> total:int -> unit) ->
  ?samples:int ->
  ?queries:int ->
  ?seed:int ->
  ?cost:Cost.t ->
  unit ->
  sweep
(** Cache capacities 0, 16 KiB, 256 KiB and 4 MiB; windows 0 and 500 us;
    [samples] (default 4) federation/workload draws, each a stream of
    [queries] (default 6) identical analyzed queries spaced 500 us apart —
    the repetition is what cross-query caching exploits. Parallelizes over
    samples when [pool] has more than one worker. *)

val series_of : sweep -> string -> series
(** Raises [Not_found] when the sweep has no series with that label. *)
