(** The AUTO experiment: adaptive selection vs every fixed strategy on a
    mixed workload (ROADMAP item 2's win condition).

    One synthetic federation, a stream of distinct conjunctive queries
    chosen so the cost model predicts different winners with a real
    margin, served four ways: once per fixed candidate strategy (CA, BL,
    PL) and once under {!Msdq_serve.Serve.run_auto}. The win condition —
    AUTO's makespan is no worse than the best fixed strategy's, and the
    model's predicted ranking matches the observed (solo-run) ranking on
    at least 80% of the distinct queries — is recorded in the bench
    JSON's [auto_sweep] section ([msdq-bench/7]) and enforced by its
    validator.

    Caching is disabled in the serve configuration: a homogeneous
    workload re-hits its own extents while a mixed one spreads them over
    strategies, so warm caches would bias the comparison {e against}
    AUTO for reasons unrelated to selection quality. Everything is
    deterministic in [seed]. *)

open Msdq_exec

type fixed_run = { f_strategy : Strategy.t; f_makespan_s : float }

type outcome = {
  id : string;
  title : string;
  queries : int;  (** jobs served per run *)
  distinct : int;  (** distinct query shapes in the mix *)
  seed : int;
  spacing_us : float;  (** arrival spacing *)
  fixed : fixed_run list;  (** one per candidate, in candidate order *)
  auto_makespan_s : float;
  decisions : (string * int) list;
      (** how often AUTO chose each candidate, in candidate order *)
  switches : int;  (** breaker-forced re-plans (0 on this fault-free mix) *)
  rank_matches : int;
  rank_match_rate : float;  (** [rank_matches / distinct] *)
}

val run :
  ?registry:Msdq_obs.Metrics.t ->
  ?progress:(figure:string -> completed:int -> total:int -> unit) ->
  ?queries:int ->
  ?distinct:int ->
  ?seed:int ->
  ?cost:Cost.t ->
  unit ->
  outcome
(** Defaults: 8 queries cycling over 4 distinct shapes, seed 1996, Table-1
    costs. *)

val min_fixed_makespan : outcome -> float
(** The best fixed strategy's makespan — what AUTO has to beat. *)
