open Msdq_simkit
open Msdq_odb
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload
module Metrics = Msdq_obs.Metrics
module Fault = Msdq_fault.Fault

let log_src = Logs.Src.create "msdq.exp.fault" ~doc:"fault-injection sweeps"

module Log = (val Logs.src_log log_src : Logs.LOG)

type series = {
  label : string;
  responses : float array;
  recalls : float array;
}

type sweep = {
  id : string;
  title : string;
  xlabel : string;
  xs : float array;
  samples : int;
  seed : int;
  series : series list;
}

let strategies = [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]
let availabilities = [| 0.7; 0.8; 0.9; 0.95; 1.0 |]

(* A random concrete case: a synthetic federation plus a query that analyzes
   against its global schema. A random path may name an attribute no
   constituent kept; retry with fresh draws, like the equivalence suite. *)
let rec make_case seed attempt =
  if attempt > 20 then None
  else
    (* Denser than [Synth.default]: every database hosts every class and a
       quarter of the attributes are missing, so local evaluation leaves
       real maybe sets and the strategies actually exercise checks,
       shipping and certification — the machinery faults can hurt. *)
    let cfg =
      {
        Synth.default with
        Synth.seed = (seed * 37) + attempt;
        n_entities = 60;
        p_host = 1.0;
        p_attr_present = 0.75;
        p_null = 0.12;
        p_copy = 0.4;
      }
    in
    let fed = Synth.generate cfg in
    let rng = Rng.create ~seed:(seed + (attempt * 1013)) in
    let query = Synth.random_query rng cfg ~disjunctive:false in
    let schema = Global_schema.schema (Federation.global_schema fed) in
    match Analysis.analyze schema query with
    | analysis -> Some (fed, analysis)
    | exception Analysis.Error _ -> make_case seed (attempt + 1)

(* Certain-set recall of a degraded run against its fault-free reference:
   the fraction of fault-free certain results the faulty run still
   certifies. An empty reference certain set recalls trivially. *)
let recall ~reference ~faulty =
  let ref_c = Answer.goids reference Answer.Certain in
  let got_c = Answer.goids faulty Answer.Certain in
  let n_ref = Oid.Goid.Set.cardinal ref_c in
  if n_ref = 0 then 1.0
  else
    float_of_int (Oid.Goid.Set.cardinal (Oid.Goid.Set.inter ref_c got_c))
    /. float_of_int n_ref

type point_result = {
  (* per strategy, in [strategies] order *)
  p_responses : float array;
  p_recalls : float array;
  (* the hard-failing client observing the BL faulty run *)
  p_hard_response : float;
  p_hard_recall : float;
}

let point ~seed ~cost ~idx ~si ~availability ~drop ~inflate =
  match make_case (Rng.int (Rng.split_ix (Rng.create ~seed) ~i:si) ~bound:100_000) 0 with
  | None ->
    (* no analyzable query for this stream: a vacuous, neutral sample *)
    {
      p_responses = Array.make (List.length strategies) 0.0;
      p_recalls = Array.make (List.length strategies) 1.0;
      p_hard_response = 0.0;
      p_hard_recall = 1.0;
    }
  | Some (fed, analysis) ->
    let fault_free =
      List.map
        (fun s ->
          let answer, m = Strategy.run ~options:{ Strategy.default_options with Strategy.cost } s fed analysis in
          (answer, m.Strategy.response))
        strategies
    in
    let horizon =
      let longest =
        List.fold_left (fun acc (_, r) -> Time.max acc r) (Time.ms 1.0) fault_free
      in
      Time.us (2.0 *. Time.to_us longest)
    in
    let n_db = List.length (Federation.databases fed) in
    let component_sites = List.init n_db (fun i -> i + 1) in
    let fault_rng =
      (* keyed by the flat (level, sample) index so every grid point draws
         an independent schedule, order-independently *)
      Rng.split_ix (Rng.create ~seed:(seed + 7919)) ~i:idx
    in
    let fault =
      (* the 1.0 column is the fault-free anchor, whatever the link knobs *)
      if availability >= 1.0 then Fault.none
      else
        let sched =
          Fault.random ~rng:fault_rng ~sites:component_sites ~availability
            ~horizon ~drop ~inflate ()
        in
        (* The global site never crashes (it hosts the client), but its
           incoming link is as lossy as the others — otherwise CA, whose
           transfers all terminate there, would be trivially immune. *)
        {
          sched with
          Fault.links =
            { Fault.dst = 0; drop; inflate; jitter = 0.0 } :: sched.Fault.links;
        }
    in
    let options = { Strategy.default_options with Strategy.cost; Strategy.fault } in
    let faulty =
      List.map (fun s -> Strategy.run ~options s fed analysis) strategies
    in
    let p_responses =
      Array.of_list
        (List.map (fun (_, m) -> Time.to_s m.Strategy.response) faulty)
    in
    let p_recalls =
      Array.of_list
        (List.map2
           (fun (reference, _) (got, _) -> recall ~reference ~faulty:got)
           fault_free faulty)
    in
    (* The hard-failing baseline: a client of the same faulty BL execution
       that has no degraded-answer mode. Any loss aborts the query — recall
       collapses to zero instead of degrading. [strategies] is CA; BL; PL,
       so BL is index 1. *)
    let _, bl_metrics = List.nth faulty 1 in
    let bl_av = bl_metrics.Strategy.availability in
    let p_hard_recall =
      if bl_av.Strategy.drops > 0 || bl_av.Strategy.partial then 0.0
      else p_recalls.(1)
    in
    { p_responses; p_recalls; p_hard_response = p_responses.(1); p_hard_recall }

let run ?pool ?registry ?progress ?(samples = 12) ?(seed = 1996)
    ?(cost = Cost.default) ?(drop = 0.05) ?(inflate = 1.0) () =
  let xs = availabilities in
  let nx = Array.length xs in
  let n_points = nx * samples in
  let completed = Atomic.make 0 in
  let feedback_mutex = Mutex.create () in
  let id = "fault-sweep" in
  let point_at i =
    let li = i / samples and si = i mod samples in
    let r = point ~seed ~cost ~idx:i ~si ~availability:xs.(li) ~drop ~inflate in
    let done_now = 1 + Atomic.fetch_and_add completed 1 in
    Mutex.lock feedback_mutex;
    Log.info (fun m ->
        m "%s: availability=%g sample %d done (%d/%d points)" id xs.(li) si
          done_now n_points);
    (match progress with
    | Some f -> f ~figure:id ~completed:done_now ~total:n_points
    | None -> ());
    Mutex.unlock feedback_mutex;
    r
  in
  let grid = Array.init n_points (fun i -> i) in
  let results =
    match pool with
    | Some pool when Msdq_par.Pool.jobs pool > 1 ->
      Msdq_par.Pool.map_array pool ~f:(fun i _ -> point_at i) grid
    | Some _ | None -> Array.map point_at grid
  in
  (match registry with
  | Some reg ->
    Metrics.inc
      (Metrics.counter reg ~labels:[ ("figure", id) ] "msdq_fault_samples_total")
      n_points
  | None -> ());
  let mean f li =
    let acc = ref 0.0 in
    for si = 0 to samples - 1 do
      acc := !acc +. f results.((li * samples) + si)
    done;
    !acc /. float_of_int samples
  in
  let strategy_series =
    List.mapi
      (fun k s ->
        {
          label = Strategy.to_string s;
          responses = Array.init nx (fun li -> mean (fun r -> r.p_responses.(k)) li);
          recalls = Array.init nx (fun li -> mean (fun r -> r.p_recalls.(k)) li);
        })
      strategies
  in
  let hard =
    {
      label = "fail-stop";
      responses = Array.init nx (fun li -> mean (fun r -> r.p_hard_response) li);
      recalls = Array.init nx (fun li -> mean (fun r -> r.p_hard_recall) li);
    }
  in
  {
    id;
    title =
      "Response time and certain-set recall under site crashes and lossy links";
    xlabel = "site availability";
    xs;
    samples;
    seed;
    series = strategy_series @ [ hard ];
  }

let series_of sweep label =
  match List.find_opt (fun s -> String.equal s.label label) sweep.series with
  | Some s -> s
  | None -> raise Not_found

(* ---- the recovery sweep: retry-only vs failover vs failover+hedging ---- *)

type rmode = Retry_only | Failover | Hedged

let rmodes = [ Retry_only; Failover; Hedged ]

let rmode_label = function
  | Retry_only -> "retry"
  | Failover -> "failover"
  | Hedged -> "hedged"

let rmode_policy = function
  | Retry_only -> Strategy.Recovery.disabled
  | Failover -> Strategy.Recovery.default
  | Hedged -> Strategy.Recovery.hedged (Time.ms 0.5)

type rseries = {
  r_label : string;
  r_responses : float array;
  r_recalls : float array;
  r_demoted : float array;
}

type recovery_sweep = {
  rid : string;
  rtitle : string;
  rxlabel : string;
  rxs : float array;
  rsamples : int;
  rseed : int;
  rseries : rseries list;
}

type rpoint_result = {
  (* per (strategy, mode), flattened strategy-major *)
  rp_responses : float array;
  rp_recalls : float array;
  rp_demoted : float array;
}

let rpoint ~seed ~cost ~idx ~si ~availability ~drop ~inflate =
  let n_cells = List.length strategies * List.length rmodes in
  match
    make_case
      (Rng.int (Rng.split_ix (Rng.create ~seed) ~i:si) ~bound:100_000)
      0
  with
  | None ->
    {
      rp_responses = Array.make n_cells 0.0;
      rp_recalls = Array.make n_cells 1.0;
      rp_demoted = Array.make n_cells 0.0;
    }
  | Some (fed, analysis) ->
    let fault_free =
      List.map
        (fun s ->
          let answer, m =
            Strategy.run
              ~options:{ Strategy.default_options with Strategy.cost }
              s fed analysis
          in
          (answer, m.Strategy.response))
        strategies
    in
    let horizon =
      let longest =
        List.fold_left (fun acc (_, r) -> Time.max acc r) (Time.ms 1.0) fault_free
      in
      Time.us (2.0 *. Time.to_us longest)
    in
    let n_db = List.length (Federation.databases fed) in
    let component_sites = List.init n_db (fun i -> i + 1) in
    let fault_rng = Rng.split_ix (Rng.create ~seed:(seed + 6271)) ~i:idx in
    (* unlike the fault sweep, the 1.0 column is NOT fault-free: sites never
       crash but links stay lossy (Fault.random at availability 1.0), so the
       column isolates what failover buys against pure message loss *)
    let fault =
      let sched =
        Fault.random ~rng:fault_rng ~sites:component_sites ~availability
          ~horizon ~drop ~inflate ()
      in
      {
        sched with
        Fault.links = { Fault.dst = 0; drop; inflate; jitter = 0.0 } :: sched.Fault.links;
      }
    in
    let cells =
      List.concat_map
        (fun (s, (reference, _)) ->
          List.map
            (fun mode ->
              let options =
                {
                  Strategy.default_options with
                  Strategy.cost;
                  Strategy.fault;
                  Strategy.recovery = rmode_policy mode;
                }
              in
              let got, m = Strategy.run ~options s fed analysis in
              ( Time.to_s m.Strategy.response,
                recall ~reference ~faulty:got,
                float_of_int m.Strategy.availability.Strategy.demoted ))
            rmodes)
        (List.combine strategies fault_free)
    in
    {
      rp_responses = Array.of_list (List.map (fun (r, _, _) -> r) cells);
      rp_recalls = Array.of_list (List.map (fun (_, r, _) -> r) cells);
      rp_demoted = Array.of_list (List.map (fun (_, _, d) -> d) cells);
    }

let run_recovery ?pool ?registry ?progress ?(samples = 12) ?(seed = 2024)
    ?(cost = Cost.default) ?(drop = 0.2) ?(inflate = 1.0) () =
  let xs = availabilities in
  let nx = Array.length xs in
  let n_points = nx * samples in
  let completed = Atomic.make 0 in
  let feedback_mutex = Mutex.create () in
  let id = "recovery-sweep" in
  let point_at i =
    let li = i / samples and si = i mod samples in
    let r = rpoint ~seed ~cost ~idx:i ~si ~availability:xs.(li) ~drop ~inflate in
    let done_now = 1 + Atomic.fetch_and_add completed 1 in
    Mutex.lock feedback_mutex;
    Log.info (fun m ->
        m "%s: availability=%g sample %d done (%d/%d points)" id xs.(li) si
          done_now n_points);
    (match progress with
    | Some f -> f ~figure:id ~completed:done_now ~total:n_points
    | None -> ());
    Mutex.unlock feedback_mutex;
    r
  in
  let grid = Array.init n_points (fun i -> i) in
  let results =
    match pool with
    | Some pool when Msdq_par.Pool.jobs pool > 1 ->
      Msdq_par.Pool.map_array pool ~f:(fun i _ -> point_at i) grid
    | Some _ | None -> Array.map point_at grid
  in
  (match registry with
  | Some reg ->
    Metrics.inc
      (Metrics.counter reg
         ~labels:[ ("figure", id) ]
         "msdq_recovery_samples_total")
      n_points
  | None -> ());
  let mean f li =
    let acc = ref 0.0 in
    for si = 0 to samples - 1 do
      acc := !acc +. f results.((li * samples) + si)
    done;
    !acc /. float_of_int samples
  in
  let rseries =
    List.concat
      (List.mapi
         (fun k s ->
           List.mapi
             (fun j mode ->
               let cell = (k * List.length rmodes) + j in
               {
                 r_label =
                   Strategy.to_string s ^ "+" ^ rmode_label mode;
                 r_responses =
                   Array.init nx (fun li -> mean (fun r -> r.rp_responses.(cell)) li);
                 r_recalls =
                   Array.init nx (fun li -> mean (fun r -> r.rp_recalls.(cell)) li);
                 r_demoted =
                   Array.init nx (fun li -> mean (fun r -> r.rp_demoted.(cell)) li);
               })
             rmodes)
         strategies)
  in
  {
    rid = id;
    rtitle =
      "Certain-set recall vs availability: retry-only vs failover vs \
       failover+hedging";
    rxlabel = "site availability";
    rxs = xs;
    rsamples = samples;
    rseed = seed;
    rseries;
  }

let rseries_of sweep label =
  match
    List.find_opt (fun s -> String.equal s.r_label label) sweep.rseries
  with
  | Some s -> s
  | None -> raise Not_found
