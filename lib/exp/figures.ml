open Msdq_simkit
open Msdq_workload
open Msdq_exec

type series = {
  strategy : Strategy.t;
  totals : float array;
  responses : float array;
}

type figure = {
  id : string;
  title : string;
  xlabel : string;
  xs : float array;
  series : series list;
}

let paper_strategies = [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]

let sweep ~samples ~seed ~cost ~strategies ~xs ~config_of =
  let series =
    List.map
      (fun strategy ->
        let totals = Array.make (Array.length xs) 0.0 in
        let responses = Array.make (Array.length xs) 0.0 in
        Array.iteri
          (fun idx x ->
            let ranges, overrides = config_of x in
            let t =
              Param_sim.average ~overrides ~cost ~samples ~seed ~ranges strategy
            in
            totals.(idx) <- Time.to_s t.Param_sim.total;
            responses.(idx) <- Time.to_s t.Param_sim.response)
          xs;
        { strategy; totals; responses })
      strategies
  in
  series

let fig9 ?(samples = 500) ?(seed = 1996) ?(cost = Cost.default) () =
  let xs = [| 1000.; 2000.; 4000.; 6000.; 8000.; 10000. |] in
  let config_of x =
    let n = int_of_float x in
    ( { Params.default with Params.n_o = (n, n + (n / 5)) },
      Param_sim.no_overrides )
  in
  {
    id = "fig9";
    title = "Varying the average number of objects in each constituent class";
    xlabel = "objects per constituent class";
    xs;
    series = sweep ~samples ~seed ~cost ~strategies:paper_strategies ~xs ~config_of;
  }

let fig10 ?(samples = 500) ?(seed = 1996) ?(cost = Cost.default) () =
  let xs = [| 2.; 3.; 4.; 5.; 6.; 7.; 8. |] in
  let config_of x =
    ({ Params.default with Params.n_db = int_of_float x }, Param_sim.no_overrides)
  in
  {
    id = "fig10";
    title = "Varying the number of component databases";
    xlabel = "component databases";
    xs;
    series = sweep ~samples ~seed ~cost ~strategies:paper_strategies ~xs ~config_of;
  }

let fig11 ?(samples = 500) ?(seed = 1996) ?(cost = Cost.default) () =
  let xs = [| 0.1; 0.3; 0.5; 0.7; 0.9 |] in
  let config_of x =
    ( { Params.default with Params.n_o = (1000, 2000) },
      { Param_sim.root_local_selectivity = Some x } )
  in
  {
    id = "fig11";
    title = "Varying the selectivity of one local predicate";
    xlabel = "selectivity of the local predicates on the root class";
    xs;
    series = sweep ~samples ~seed ~cost ~strategies:paper_strategies ~xs ~config_of;
  }

let ablation_signatures ?(samples = 500) ?(seed = 1996) ?(cost = Cost.default) () =
  let xs = [| 2.; 4.; 6.; 8. |] in
  let config_of x =
    ({ Params.default with Params.n_db = int_of_float x }, Param_sim.no_overrides)
  in
  {
    id = "ablation-signatures";
    title = "Signature filtering of assistant checks (extension)";
    xlabel = "component databases";
    xs;
    series =
      sweep ~samples ~seed ~cost
        ~strategies:[ Strategy.Bl; Strategy.Bls; Strategy.Pl; Strategy.Pls ]
        ~xs ~config_of;
  }

let ablation_checks ?(samples = 500) ?(seed = 1996) ?(cost = Cost.default) () =
  let xs = [| 2.; 4.; 6.; 8. |] in
  let config_of x =
    ({ Params.default with Params.n_db = int_of_float x }, Param_sim.no_overrides)
  in
  {
    id = "ablation-checks";
    title = "Cost of assistant checking: localized with and without phase O (extension)";
    xlabel = "component databases";
    xs;
    series =
      sweep ~samples ~seed ~cost
        ~strategies:[ Strategy.Lo; Strategy.Bl; Strategy.Pl ]
        ~xs ~config_of;
  }

let ablation_semijoin ?(samples = 500) ?(seed = 1996) ?(cost = Cost.default) () =
  let xs = [| 0.1; 0.3; 0.5; 0.7; 0.9 |] in
  let config_of x =
    ( { Params.default with Params.n_o = (1000, 2000) },
      { Param_sim.root_local_selectivity = Some x } )
  in
  {
    id = "ablation-semijoin";
    title = "Semijoin-filtered centralized (CF) vs CA and BL (extension)";
    xlabel = "selectivity of the local predicates on the root class";
    xs;
    series =
      sweep ~samples ~seed ~cost
        ~strategies:[ Strategy.Ca; Strategy.Cf; Strategy.Bl ]
        ~xs ~config_of;
  }

let all ?samples ?seed ?cost () =
  [
    fig9 ?samples ?seed ?cost ();
    fig10 ?samples ?seed ?cost ();
    fig11 ?samples ?seed ?cost ();
    ablation_signatures ?samples ?seed ?cost ();
    ablation_checks ?samples ?seed ?cost ();
    ablation_semijoin ?samples ?seed ?cost ();
  ]

let series_of fig strategy =
  match List.find_opt (fun s -> s.strategy = strategy) fig.series with
  | Some s -> s
  | None -> raise Not_found
