open Msdq_simkit
open Msdq_workload
open Msdq_exec
module Metrics = Msdq_obs.Metrics
module Param_sim = Msdq_opt.Param_sim

let log_src = Logs.Src.create "msdq.exp" ~doc:"experiment sweeps"

module Log = (val Logs.src_log log_src : Logs.LOG)

type series = {
  strategy : Strategy.t;
  totals : float array;
  responses : float array;
}

type figure = {
  id : string;
  title : string;
  xlabel : string;
  xs : float array;
  series : series list;
}

let paper_strategies = [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]

(* One sweep = a flat grid of (strategy, x) points, each an independent
   [Param_sim.average] with its own engine, rng streams and (per run) metrics
   instances. The grid evaluates either in index order (no pool) or on the
   pool's domains; either way the merge below walks the grid in index order,
   so series arrays, registry counters and therefore every downstream report
   are bit-identical for any worker count. Only the live progress/log lines
   (serialized but unordered) depend on scheduling. *)
let sweep ?pool ?registry ?progress ~id ~samples ~seed ~cost ~strategies ~xs
    ~config_of () =
  let strategies_a = Array.of_list strategies in
  let nx = Array.length xs in
  let n_points = Array.length strategies_a * nx in
  let completed = Atomic.make 0 in
  let feedback_mutex = Mutex.create () in
  let point i =
    let strategy = strategies_a.(i / nx) and x = xs.(i mod nx) in
    let ranges, overrides = config_of x in
    let t = Param_sim.average ~overrides ~cost ~samples ~seed ~ranges strategy in
    let done_now = 1 + Atomic.fetch_and_add completed 1 in
    Mutex.lock feedback_mutex;
    Log.info (fun m ->
        m "%s: %s x=%g done (%d/%d points)" id (Strategy.to_string strategy) x
          done_now n_points);
    (match progress with
    | Some f -> f ~figure:id ~completed:done_now ~total:n_points
    | None -> ());
    Mutex.unlock feedback_mutex;
    t
  in
  let grid = Array.init n_points (fun i -> i) in
  let results =
    match pool with
    | Some pool when Msdq_par.Pool.jobs pool > 1 ->
      Msdq_par.Pool.map_array pool ~f:(fun i _ -> point i) grid
    | Some _ | None -> Array.map point grid
  in
  List.mapi
    (fun si strategy ->
      let totals = Array.make nx 0.0 in
      let responses = Array.make nx 0.0 in
      for xi = 0 to nx - 1 do
        let t = results.((si * nx) + xi) in
        totals.(xi) <- Time.to_s t.Param_sim.total;
        responses.(xi) <- Time.to_s t.Param_sim.response;
        match registry with
        | Some reg ->
          Metrics.inc
            (Metrics.counter reg
               ~labels:
                 [ ("figure", id); ("strategy", Strategy.to_string strategy) ]
               "msdq_param_samples_total")
            samples
        | None -> ()
      done;
      { strategy; totals; responses })
    strategies

let fig9 ?pool ?registry ?progress ?(samples = 500) ?(seed = 1996) ?(cost = Cost.default) () =
  let xs = [| 1000.; 2000.; 4000.; 6000.; 8000.; 10000. |] in
  let config_of x =
    let n = int_of_float x in
    ( { Params.default with Params.n_o = (n, n + (n / 5)) },
      Param_sim.no_overrides )
  in
  let id = "fig9" in
  {
    id;
    title = "Varying the average number of objects in each constituent class";
    xlabel = "objects per constituent class";
    xs;
    series =
      sweep ?pool ?registry ?progress ~id ~samples ~seed ~cost
        ~strategies:paper_strategies ~xs ~config_of ();
  }

let fig10 ?pool ?registry ?progress ?(samples = 500) ?(seed = 1996) ?(cost = Cost.default) () =
  let xs = [| 2.; 3.; 4.; 5.; 6.; 7.; 8. |] in
  let config_of x =
    ({ Params.default with Params.n_db = int_of_float x }, Param_sim.no_overrides)
  in
  let id = "fig10" in
  {
    id;
    title = "Varying the number of component databases";
    xlabel = "component databases";
    xs;
    series =
      sweep ?pool ?registry ?progress ~id ~samples ~seed ~cost
        ~strategies:paper_strategies ~xs ~config_of ();
  }

let fig11 ?pool ?registry ?progress ?(samples = 500) ?(seed = 1996) ?(cost = Cost.default) () =
  let xs = [| 0.1; 0.3; 0.5; 0.7; 0.9 |] in
  let config_of x =
    ( { Params.default with Params.n_o = (1000, 2000) },
      { Param_sim.root_local_selectivity = Some x } )
  in
  let id = "fig11" in
  {
    id;
    title = "Varying the selectivity of one local predicate";
    xlabel = "selectivity of the local predicates on the root class";
    xs;
    series =
      sweep ?pool ?registry ?progress ~id ~samples ~seed ~cost
        ~strategies:paper_strategies ~xs ~config_of ();
  }

let ablation_signatures ?pool ?registry ?progress ?(samples = 500) ?(seed = 1996) ?(cost = Cost.default) () =
  let xs = [| 2.; 4.; 6.; 8. |] in
  let config_of x =
    ({ Params.default with Params.n_db = int_of_float x }, Param_sim.no_overrides)
  in
  let id = "ablation-signatures" in
  {
    id;
    title = "Signature filtering of assistant checks (extension)";
    xlabel = "component databases";
    xs;
    series =
      sweep ?pool ?registry ?progress ~id ~samples ~seed ~cost
        ~strategies:[ Strategy.Bl; Strategy.Bls; Strategy.Pl; Strategy.Pls ]
        ~xs ~config_of ();
  }

let ablation_checks ?pool ?registry ?progress ?(samples = 500) ?(seed = 1996) ?(cost = Cost.default) () =
  let xs = [| 2.; 4.; 6.; 8. |] in
  let config_of x =
    ({ Params.default with Params.n_db = int_of_float x }, Param_sim.no_overrides)
  in
  let id = "ablation-checks" in
  {
    id;
    title = "Cost of assistant checking: localized with and without phase O (extension)";
    xlabel = "component databases";
    xs;
    series =
      sweep ?pool ?registry ?progress ~id ~samples ~seed ~cost
        ~strategies:[ Strategy.Lo; Strategy.Bl; Strategy.Pl ]
        ~xs ~config_of ();
  }

let ablation_semijoin ?pool ?registry ?progress ?(samples = 500) ?(seed = 1996) ?(cost = Cost.default) () =
  let xs = [| 0.1; 0.3; 0.5; 0.7; 0.9 |] in
  let config_of x =
    ( { Params.default with Params.n_o = (1000, 2000) },
      { Param_sim.root_local_selectivity = Some x } )
  in
  let id = "ablation-semijoin" in
  {
    id;
    title = "Semijoin-filtered centralized (CF) vs CA and BL (extension)";
    xlabel = "selectivity of the local predicates on the root class";
    xs;
    series =
      sweep ?pool ?registry ?progress ~id ~samples ~seed ~cost
        ~strategies:[ Strategy.Ca; Strategy.Cf; Strategy.Bl ]
        ~xs ~config_of ();
  }

let all ?pool ?registry ?progress ?samples ?seed ?cost () =
  [
    fig9 ?pool ?registry ?progress ?samples ?seed ?cost ();
    fig10 ?pool ?registry ?progress ?samples ?seed ?cost ();
    fig11 ?pool ?registry ?progress ?samples ?seed ?cost ();
    ablation_signatures ?pool ?registry ?progress ?samples ?seed ?cost ();
    ablation_checks ?pool ?registry ?progress ?samples ?seed ?cost ();
    ablation_semijoin ?pool ?registry ?progress ?samples ?seed ?cost ();
  ]

let series_of fig strategy =
  match List.find_opt (fun s -> s.strategy = strategy) fig.series with
  | Some s -> s
  | None -> raise Not_found
