open Msdq_simkit
open Msdq_query
open Msdq_exec
module Json = Msdq_obs.Json
module Metrics = Msdq_obs.Metrics
module Tracer = Msdq_obs.Tracer

let phases = [ "O"; "P"; "I" ]

let dur_us (e : Trace.entry) =
  Time.to_us (Time.sub e.Trace.finish e.Trace.start)

let phase_of (e : Trace.entry) = List.assoc_opt "phase" e.Trace.attrs

(* ---- metrics ---- *)

let breakdown_json breakdown =
  Json.Arr
    (List.map
       (fun (label, busy, n) ->
         Json.Obj
           [
             ("label", Json.Str label);
             ("busy_s", Json.Float (Time.to_s busy));
             ("tasks", Json.Int n);
           ])
       breakdown)

(* Emitted only when a fault schedule was installed, so fault-free reports
   keep their exact historical bytes (golden-tested). *)
let availability_to_json (a : Strategy.availability) =
  Json.Obj
    [
      ("failed_sites", Json.Arr (List.map (fun s -> Json.Int s) a.Strategy.failed_sites));
      ("drops", Json.Int a.Strategy.drops);
      ("retries", Json.Int a.Strategy.retries);
      ("checks_abandoned", Json.Int a.Strategy.checks_abandoned);
      ("certain_fault_free", Json.Int a.Strategy.certain_fault_free);
      ("demoted", Json.Int a.Strategy.demoted);
      ("recovered", Json.Int a.Strategy.recovered);
      ("resurrected", Json.Int a.Strategy.resurrected);
      ("partial", Json.Bool a.Strategy.partial);
      ("degradation_ratio", Json.Float a.Strategy.degradation_ratio);
    ]

let metrics_to_json (m : Strategy.metrics) =
  let availability =
    if m.Strategy.availability.Strategy.faults_active then
      [ ("availability", availability_to_json m.Strategy.availability) ]
    else []
  in
  Json.Obj
    ([
      ("strategy", Json.Str (Strategy.to_string m.Strategy.strategy));
      ("total_s", Json.Float (Time.to_s m.Strategy.total));
      ("response_s", Json.Float (Time.to_s m.Strategy.response));
      ( "phases",
        Json.Arr
          (List.map
             (fun (phase, busy, n) ->
               Json.Obj
                 [
                   ("phase", Json.Str phase);
                   ("busy_s", Json.Float (Time.to_s busy));
                   ("tasks", Json.Int n);
                 ])
             (Strategy.phase_breakdown m)) );
      ("bytes_shipped", Json.Int m.Strategy.bytes_shipped);
      ("disk_bytes", Json.Int m.Strategy.disk_bytes);
      ("messages", Json.Int m.Strategy.messages);
      ("check_requests", Json.Int m.Strategy.check_requests);
      ("checks_filtered", Json.Int m.Strategy.checks_filtered);
      ("work_units", Json.Int m.Strategy.work_units);
      ("goid_lookups", Json.Int m.Strategy.goid_lookups);
      ("promoted", Json.Int m.Strategy.promoted);
      ("eliminated_at_global", Json.Int m.Strategy.eliminated_at_global);
      ("conflicts", Json.Int m.Strategy.conflicts);
      ("breakdown", breakdown_json m.Strategy.breakdown);
      ("registry", Metrics.to_json m.Strategy.registry);
    ]
    @ availability)

let run_to_json answer (m : Strategy.metrics) =
  Json.Obj
    [
      ( "answer",
        Json.Obj
          [
            ("certain", Json.Int (List.length (Answer.certain answer)));
            ("maybe", Json.Int (List.length (Answer.maybe answer)));
          ] );
      ("metrics", metrics_to_json m);
    ]

let query_to_json ~query runs =
  Json.Obj
    [
      ("query", Json.Str query);
      ("runs", Json.Arr (List.map (fun (a, m) -> run_to_json a m) runs));
    ]

(* ---- Chrome trace ---- *)

let kind_tid = function
  | Some Resource.Cpu -> 0
  | Some Resource.Disk -> 1
  | Some Resource.Link -> 2
  | None -> 3 (* fences and delays: the synchronization lane *)

let span_of_entry (e : Trace.entry) : Tracer.span =
  let site = match e.Trace.site with Some s -> s | None -> 0 in
  let cat =
    match e.Trace.kind with
    | Some k -> Resource.kind_to_string k
    | None -> "sync"
  in
  {
    Tracer.name = e.Trace.label;
    cat;
    pid = site;
    tid = kind_tid e.Trace.kind;
    ts_us = Time.to_us e.Trace.start;
    dur_us = dur_us e;
    args = e.Trace.attrs;
  }

let site_pid (e : Trace.entry) =
  match e.Trace.site with Some s -> s | None -> 0

(* One Chrome flow edge per recorded dependency: from the end of the
   predecessor's span to the start of the dependent's. Flow ids only need
   to be unique within the document; [id_base] keeps several traces'
   edges apart when their tid spaces overlap. *)
let flow_events_of_entries ~id_base entries =
  let by_tid = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.entry) -> Hashtbl.replace by_tid e.Trace.tid e)
    entries;
  let next = ref id_base in
  List.concat_map
    (fun (e : Trace.entry) ->
      List.concat_map
        (fun d ->
          match Hashtbl.find_opt by_tid d with
          | None -> []
          | Some (src : Trace.entry) ->
              incr next;
              Tracer.flow_pair ~id:!next
                ~src:
                  ( site_pid src,
                    kind_tid src.Trace.kind,
                    Time.to_us src.Trace.finish )
                ~dst:(site_pid e, kind_tid e.Trace.kind, Time.to_us e.Trace.start)
                ())
        e.Trace.deps)
    entries

let chrome_of ~spans ~flows =
  let pids =
    List.sort_uniq compare (List.map (fun (s : Tracer.span) -> s.Tracer.pid) spans)
  in
  let process_names =
    List.map
      (fun pid ->
        if pid = Tracer.host_pid then (pid, "host")
        else if pid = 0 then (pid, "site 0 (global)")
        else (pid, Printf.sprintf "site %d" pid))
      pids
  in
  let thread_names =
    List.concat_map
      (fun pid ->
        if pid = Tracer.host_pid then [ (pid, 0, "host") ]
        else
          [ (pid, 0, "cpu"); (pid, 1, "disk"); (pid, 2, "link"); (pid, 3, "sync") ])
      pids
  in
  Tracer.chrome ~process_names ~thread_names ~extra:flows spans

let chrome_trace ms =
  let sim_spans =
    List.concat_map
      (fun (m : Strategy.metrics) ->
        List.map span_of_entry (Trace.entries m.Strategy.trace))
      ms
  in
  let host_spans = List.concat_map (fun m -> m.Strategy.host_spans) ms in
  let flows =
    List.concat
      (List.mapi
         (fun i (m : Strategy.metrics) ->
           flow_events_of_entries ~id_base:(i * 1_000_000)
             (Trace.entries m.Strategy.trace))
         ms)
  in
  chrome_of ~spans:(sim_spans @ host_spans) ~flows

let chrome_trace_of_entries entries =
  chrome_of
    ~spans:(List.map span_of_entry entries)
    ~flows:(flow_events_of_entries ~id_base:0 entries)

(* ---- utilization ---- *)

let pp_utilization ppf (m : Strategy.metrics) =
  let entries = Trace.entries m.Strategy.trace in
  let sites =
    List.sort_uniq compare
      (List.filter_map (fun (e : Trace.entry) -> e.Trace.site) entries)
  in
  let busy ~site ~phase =
    List.fold_left
      (fun acc (e : Trace.entry) ->
        if e.Trace.site = Some site && phase_of e = Some phase then
          Time.add acc (Time.sub e.Trace.finish e.Trace.start)
        else acc)
      Time.zero entries
  in
  let site_total site =
    List.fold_left
      (fun acc (e : Trace.entry) ->
        if e.Trace.site = Some site then
          Time.add acc (Time.sub e.Trace.finish e.Trace.start)
        else acc)
      Time.zero entries
  in
  Format.fprintf ppf "@[<v>%s utilization (busy seconds per site and phase)@,"
    (Strategy.to_string m.Strategy.strategy);
  Format.fprintf ppf "%-10s %10s %10s %10s %10s@," "site" "O" "P" "I" "total";
  List.iter
    (fun site ->
      let name = if site = 0 then "global" else Printf.sprintf "site %d" site in
      Format.fprintf ppf "%-10s" name;
      List.iter
        (fun phase ->
          Format.fprintf ppf " %10.6f" (Time.to_s (busy ~site ~phase)))
        phases;
      Format.fprintf ppf " %10.6f@," (Time.to_s (site_total site)))
    sites;
  Format.fprintf ppf "@]"

(* ---- figures ---- *)

let figure_to_json (fig : Figures.figure) =
  let floats a = Json.Arr (Array.to_list (Array.map (fun x -> Json.Float x) a)) in
  Json.Obj
    [
      ("id", Json.Str fig.Figures.id);
      ("title", Json.Str fig.Figures.title);
      ("xlabel", Json.Str fig.Figures.xlabel);
      ("xs", floats fig.Figures.xs);
      ( "series",
        Json.Arr
          (List.map
             (fun (s : Figures.series) ->
               Json.Obj
                 [
                   ("strategy", Json.Str (Strategy.to_string s.Figures.strategy));
                   ("totals_s", floats s.Figures.totals);
                   ("responses_s", floats s.Figures.responses);
                 ])
             fig.Figures.series) );
    ]

let figures_to_json figs =
  Json.Obj [ ("figures", Json.Arr (List.map figure_to_json figs)) ]

(* ---- fault sweep ---- *)

let fault_sweep_to_json (s : Fault_sweep.sweep) =
  let floats a = Json.Arr (Array.to_list (Array.map (fun x -> Json.Float x) a)) in
  Json.Obj
    [
      ("id", Json.Str s.Fault_sweep.id);
      ("title", Json.Str s.Fault_sweep.title);
      ("xlabel", Json.Str s.Fault_sweep.xlabel);
      ("availabilities", floats s.Fault_sweep.xs);
      ("samples", Json.Int s.Fault_sweep.samples);
      ("seed", Json.Int s.Fault_sweep.seed);
      ( "series",
        Json.Arr
          (List.map
             (fun (ser : Fault_sweep.series) ->
               Json.Obj
                 [
                   ("label", Json.Str ser.Fault_sweep.label);
                   ("responses_s", floats ser.Fault_sweep.responses);
                   ("recalls", floats ser.Fault_sweep.recalls);
                 ])
             s.Fault_sweep.series) );
    ]

(* ---- recovery sweep ---- *)

let recovery_sweep_to_json (s : Fault_sweep.recovery_sweep) =
  let floats a = Json.Arr (Array.to_list (Array.map (fun x -> Json.Float x) a)) in
  Json.Obj
    [
      ("id", Json.Str s.Fault_sweep.rid);
      ("title", Json.Str s.Fault_sweep.rtitle);
      ("xlabel", Json.Str s.Fault_sweep.rxlabel);
      ("availabilities", floats s.Fault_sweep.rxs);
      ("samples", Json.Int s.Fault_sweep.rsamples);
      ("seed", Json.Int s.Fault_sweep.rseed);
      ( "series",
        Json.Arr
          (List.map
             (fun (ser : Fault_sweep.rseries) ->
               Json.Obj
                 [
                   ("label", Json.Str ser.Fault_sweep.r_label);
                   ("responses_s", floats ser.Fault_sweep.r_responses);
                   ("recalls", floats ser.Fault_sweep.r_recalls);
                   ("demoted", floats ser.Fault_sweep.r_demoted);
                 ])
             s.Fault_sweep.rseries) );
    ]

(* ---- serve sweep ---- *)

let serve_sweep_to_json (s : Serve_sweep.sweep) =
  let floats a = Json.Arr (Array.to_list (Array.map (fun x -> Json.Float x) a)) in
  Json.Obj
    [
      ("id", Json.Str s.Serve_sweep.id);
      ("title", Json.Str s.Serve_sweep.title);
      ("xlabel", Json.Str s.Serve_sweep.xlabel);
      ("cache_kib", floats s.Serve_sweep.xs);
      ("windows_us", floats s.Serve_sweep.windows_us);
      ("queries", Json.Int s.Serve_sweep.queries);
      ("samples", Json.Int s.Serve_sweep.samples);
      ("seed", Json.Int s.Serve_sweep.seed);
      ( "series",
        Json.Arr
          (List.map
             (fun (ser : Serve_sweep.series) ->
               Json.Obj
                 [
                   ("label", Json.Str ser.Serve_sweep.label);
                   ("strategy", Json.Str ser.Serve_sweep.strategy);
                   ("window_us", Json.Float ser.Serve_sweep.window_us);
                   ("throughputs", floats ser.Serve_sweep.throughputs);
                   ("speedups", floats ser.Serve_sweep.speedups);
                   ("hits_per_query", floats ser.Serve_sweep.hits);
                 ])
             s.Serve_sweep.series) );
    ]

(* ---- bench ---- *)

let bench_schema_v1 = "msdq-bench/1"
let bench_schema_v2 = "msdq-bench/2"
let bench_schema_v3 = "msdq-bench/3"
let bench_schema_v4 = "msdq-bench/4"
let bench_schema_v5 = "msdq-bench/5"
let bench_schema_v6 = "msdq-bench/6"
let bench_schema_v7 = "msdq-bench/7"
let bench_schema_v8 = "msdq-bench/8"
let bench_schema_v9 = "msdq-bench/9"
let bench_schema = "msdq-bench/10"

(* The /10 section: columnar-engine throughput. Objects/sec of local
   predicate evaluation and signature filtering in both representations
   (the speedups are same-process ratios, so they are machine-independent
   enough to gate on), plus end-to-end certification rows/sec. *)
type microbench = {
  mb_objects : int;  (** extent rows in the evaluation arms *)
  mb_boxed_eval : float;  (** objs/s, per-object [Predicate.eval] *)
  mb_columnar_eval : float;  (** objs/s, [Extent.eval_attr] *)
  mb_eval_speedup : float;  (** columnar / boxed *)
  mb_boxed_sig : float;  (** objs/s, per-object [Signature.may_satisfy] *)
  mb_bitset_sig : float;  (** objs/s, [Sigset.refuted_count] *)
  mb_sig_speedup : float;  (** bitset / boxed *)
  mb_certify_rows : int;  (** local rows fed to one [Certify.run] pass *)
  mb_certify_rows_per_s : float;
}

let microbench_to_json (m : microbench) =
  Json.Obj
    [
      ("objects", Json.Int m.mb_objects);
      ( "local_eval",
        Json.Obj
          [
            ("boxed_objs_per_s", Json.Float m.mb_boxed_eval);
            ("columnar_objs_per_s", Json.Float m.mb_columnar_eval);
            ("speedup", Json.Float m.mb_eval_speedup);
          ] );
      ( "signature_filter",
        Json.Obj
          [
            ("boxed_objs_per_s", Json.Float m.mb_boxed_sig);
            ("bitset_objs_per_s", Json.Float m.mb_bitset_sig);
            ("speedup", Json.Float m.mb_sig_speedup);
          ] );
      ( "certify",
        Json.Obj
          [
            ("rows", Json.Int m.mb_certify_rows);
            ("rows_per_s", Json.Float m.mb_certify_rows_per_s);
          ] );
    ]

type parallel = {
  jobs : int;
  grid_points : int;
  seq_s : float;
  par_s : float;
  speedup : float;
}

let parallel_to_json p =
  Json.Obj
    [
      ("jobs", Json.Int p.jobs);
      ("grid_points", Json.Int p.grid_points);
      ("seq_s", Json.Float p.seq_s);
      ("par_s", Json.Float p.par_s);
      ("speedup", Json.Float p.speedup);
    ]

(* The /6 addition: per-strategy latency quantiles from a telemetry-enabled
   serve run — the histogram summary CI tracks across commits. *)
let latency_to_json latency =
  Json.Arr
    (List.map
       (fun (name, (s : Stats.summary)) ->
         Json.Obj
           [
             ("name", Json.Str name);
             ("count", Json.Int s.Stats.n);
             ("p50_us", Json.Float s.Stats.p50_us);
             ("p90_us", Json.Float s.Stats.p90_us);
             ("p99_us", Json.Float s.Stats.p99_us);
             ("max_us", Json.Float s.Stats.max_us);
           ])
       latency)

(* The /7 addition: the AUTO-vs-fixed comparison — makespans, decision
   counts and the estimator's rank-match rate from the mixed workload. *)
let auto_sweep_to_json (a : Auto_sweep.outcome) =
  Json.Obj
    [
      ("id", Json.Str a.Auto_sweep.id);
      ("title", Json.Str a.Auto_sweep.title);
      ("queries", Json.Int a.Auto_sweep.queries);
      ("distinct", Json.Int a.Auto_sweep.distinct);
      ("seed", Json.Int a.Auto_sweep.seed);
      ("spacing_us", Json.Float a.Auto_sweep.spacing_us);
      ( "fixed",
        Json.Arr
          (List.map
             (fun (f : Auto_sweep.fixed_run) ->
               Json.Obj
                 [
                   ( "strategy",
                     Json.Str
                       (Msdq_exec.Strategy.to_string f.Auto_sweep.f_strategy)
                   );
                   ("makespan_s", Json.Float f.Auto_sweep.f_makespan_s);
                 ])
             a.Auto_sweep.fixed) );
      ("auto_makespan_s", Json.Float a.Auto_sweep.auto_makespan_s);
      ( "decisions",
        Json.Arr
          (List.map
             (fun (strategy, count) ->
               Json.Obj
                 [ ("strategy", Json.Str strategy); ("count", Json.Int count) ])
             a.Auto_sweep.decisions) );
      ("switches", Json.Int a.Auto_sweep.switches);
      ("rank_matches", Json.Int a.Auto_sweep.rank_matches);
      ("rank_match_rate", Json.Float a.Auto_sweep.rank_match_rate);
    ]

(* The /8 addition: the overload experiment — goodput, deadline-hit rate
   and tail latency vs offered load per shed policy, plus the at-capacity
   p99 the validator's tail bound is measured against. *)
let overload_sweep_to_json (o : Overload_sweep.outcome) =
  Json.Obj
    [
      ("id", Json.Str o.Overload_sweep.id);
      ("title", Json.Str o.Overload_sweep.title);
      ("seed", Json.Int o.Overload_sweep.seed);
      ("queries", Json.Int o.Overload_sweep.queries);
      ("queue_limit", Json.Int o.Overload_sweep.queue_limit);
      ("solo_response_ms", Json.Float o.Overload_sweep.solo_response_ms);
      ("deadline_ms", Json.Float o.Overload_sweep.deadline_ms);
      ("cap_p99_ms", Json.Float o.Overload_sweep.cap_p99_ms);
      ( "multipliers",
        Json.Arr
          (List.map
             (fun m -> Json.Float m)
             (Array.to_list o.Overload_sweep.multipliers)) );
      ( "policies",
        Json.Arr (List.map (fun p -> Json.Str p) o.Overload_sweep.policies) );
      ( "points",
        Json.Arr
          (List.map
             (fun (p : Overload_sweep.point) ->
               Json.Obj
                 [
                   ("policy", Json.Str p.Overload_sweep.pt_policy);
                   ("multiplier", Json.Float p.Overload_sweep.pt_multiplier);
                   ("offered", Json.Int p.Overload_sweep.pt_offered);
                   ("admitted", Json.Int p.Overload_sweep.pt_admitted);
                   ("shed", Json.Int p.Overload_sweep.pt_shed);
                   ("goodput_qps", Json.Float p.Overload_sweep.pt_goodput);
                   ("deadline_hits", Json.Int p.Overload_sweep.pt_deadline_hits);
                   ("hit_rate", Json.Float p.Overload_sweep.pt_hit_rate);
                   ("p50_ms", Json.Float p.Overload_sweep.pt_p50_ms);
                   ("p99_ms", Json.Float p.Overload_sweep.pt_p99_ms);
                   ("demoted_rows", Json.Int p.Overload_sweep.pt_demoted_rows);
                   ( "abandoned_checks",
                     Json.Int p.Overload_sweep.pt_abandoned_checks );
                 ])
             o.Overload_sweep.points) );
    ]

let gray_sweep_to_json (g : Gray_sweep.outcome) =
  Json.Obj
    [
      ("id", Json.Str g.Gray_sweep.id);
      ("title", Json.Str g.Gray_sweep.title);
      ("seed", Json.Int g.Gray_sweep.seed);
      ("queries", Json.Int g.Gray_sweep.queries);
      ("drop", Json.Float g.Gray_sweep.drop);
      ("static_timeout_ms", Json.Float g.Gray_sweep.static_timeout_ms);
      ("kinds", Json.Arr (List.map (fun k -> Json.Str k) g.Gray_sweep.kinds));
      ( "severities",
        Json.Arr (List.map (fun s -> Json.Str s) g.Gray_sweep.severities) );
      ( "policies",
        Json.Arr (List.map (fun p -> Json.Str p) g.Gray_sweep.policies) );
      ( "points",
        Json.Arr
          (List.map
             (fun (p : Gray_sweep.point) ->
               Json.Obj
                 [
                   ("policy", Json.Str p.Gray_sweep.pt_policy);
                   ("kind", Json.Str p.Gray_sweep.pt_kind);
                   ("severity", Json.Str p.Gray_sweep.pt_severity);
                   ("queries", Json.Int p.Gray_sweep.pt_queries);
                   ("demoted_rows", Json.Int p.Gray_sweep.pt_demoted_rows);
                   ( "abandoned_checks",
                     Json.Int p.Gray_sweep.pt_abandoned_checks );
                   ("mean_ms", Json.Float p.Gray_sweep.pt_mean_ms);
                   ("p99_ms", Json.Float p.Gray_sweep.pt_p99_ms);
                   ("gray_sites", Json.Int p.Gray_sweep.pt_gray_sites);
                 ])
             g.Gray_sweep.points) );
    ]

let bench_to_json ~generated_at ~seed ~parallel ~fault_sweep ~recovery_sweep
    ~serve_sweep ~latency ~auto_sweep ~overload_sweep ~gray_sweep ~microbench
    ~strategies ~wall =
  Json.Obj
    [
      ("schema", Json.Str bench_schema);
      ("generated_at", Json.Str generated_at);
      ("seed", Json.Int seed);
      ("parallel", parallel_to_json parallel);
      ("fault_sweep", fault_sweep_to_json fault_sweep);
      ("recovery_sweep", recovery_sweep_to_json recovery_sweep);
      ("serve_sweep", serve_sweep_to_json serve_sweep);
      ("latency", latency_to_json latency);
      ("auto_sweep", auto_sweep_to_json auto_sweep);
      ("overload_sweep", overload_sweep_to_json overload_sweep);
      ("gray_sweep", gray_sweep_to_json gray_sweep);
      ("microbench", microbench_to_json microbench);
      ( "strategies",
        Json.Arr
          (List.map
             (fun (name, total_s, response_s) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ("total_s", Json.Float total_s);
                   ("response_s", Json.Float response_s);
                 ])
             strategies) );
      ( "wall",
        Json.Arr
          (List.map
             (fun (name, ns) ->
               Json.Obj
                 [ ("name", Json.Str name); ("ns_per_run", Json.Float ns) ])
             wall) );
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bench document: missing or ill-typed %s" what)

let nonneg what v =
  if Float.is_nan v || v < 0.0 then
    Error (Printf.sprintf "bench document: %s must be a non-negative number" what)
  else Ok ()

(* The /2 additions: a seed and the parallel-sweep record. *)
let validate_parallel j =
  let* p = require "\"parallel\"" (Json.member "parallel" j) in
  let* jobs =
    require "parallel \"jobs\"" Option.(Json.member "jobs" p |> map Json.to_int |> join)
  in
  let* () =
    if jobs >= 1 then Ok () else Error "bench document: parallel jobs must be >= 1"
  in
  let* points =
    require "parallel \"grid_points\""
      Option.(Json.member "grid_points" p |> map Json.to_int |> join)
  in
  let* () =
    if points >= 0 then Ok ()
    else Error "bench document: parallel grid_points must be >= 0"
  in
  let* () =
    List.fold_left
      (fun acc field ->
        let* () = acc in
        let* v =
          require
            (Printf.sprintf "parallel %S" field)
            Option.(Json.member field p |> map Json.to_float |> join)
        in
        nonneg ("parallel " ^ field) v)
      (Ok ())
      [ "seq_s"; "par_s"; "speedup" ]
  in
  let* _ =
    require "\"seed\"" Option.(Json.member "seed" j |> map Json.to_int |> join)
  in
  Ok ()

(* The /3 addition: the fault-sweep section — availability levels and one
   (responses, recalls) series per strategy plus the fail-stop baseline,
   recalls inside [0, 1]. *)
let validate_fault_sweep j =
  let* fs = require "\"fault_sweep\"" (Json.member "fault_sweep" j) in
  let* xs =
    require "fault_sweep \"availabilities\""
      Option.(Json.member "availabilities" fs |> map Json.to_list |> join)
  in
  let* () =
    if xs = [] then Error "bench document: fault_sweep \"availabilities\" is empty"
    else Ok ()
  in
  let* series =
    require "fault_sweep \"series\""
      Option.(Json.member "series" fs |> map Json.to_list |> join)
  in
  let* () =
    if series = [] then Error "bench document: fault_sweep \"series\" is empty"
    else Ok ()
  in
  List.fold_left
    (fun acc ser ->
      let* () = acc in
      let* label =
        require "fault_sweep series \"label\""
          Option.(Json.member "label" ser |> map Json.to_str |> join)
      in
      let* arrays =
        List.fold_left
          (fun acc field ->
            let* acc = acc in
            let* a =
              require
                (Printf.sprintf "fault_sweep %s %S" label field)
                Option.(Json.member field ser |> map Json.to_list |> join)
            in
            Ok (a :: acc))
          (Ok []) [ "responses_s"; "recalls" ]
      in
      let* () =
        List.fold_left
          (fun acc a ->
            let* () = acc in
            if List.length a <> List.length xs then
              Error
                (Printf.sprintf
                   "bench document: fault_sweep %s series length differs from \
                    availabilities"
                   label)
            else Ok ())
          (Ok ()) arrays
      in
      let recalls = List.filter_map Json.to_float (List.hd arrays) in
      List.fold_left
        (fun acc r ->
          let* () = acc in
          if Float.is_nan r || r < 0.0 || r > 1.0 then
            Error
              (Printf.sprintf
                 "bench document: fault_sweep %s recall outside [0, 1]" label)
          else Ok ())
        (Ok ()) recalls)
    (Ok ()) series

(* The /4 addition: the recovery-sweep section — same shape as the fault
   sweep plus a mean-demoted array per (strategy, recovery-mode) series. *)
let validate_recovery_sweep j =
  let* rs = require "\"recovery_sweep\"" (Json.member "recovery_sweep" j) in
  let* xs =
    require "recovery_sweep \"availabilities\""
      Option.(Json.member "availabilities" rs |> map Json.to_list |> join)
  in
  let* () =
    if xs = [] then
      Error "bench document: recovery_sweep \"availabilities\" is empty"
    else Ok ()
  in
  let* series =
    require "recovery_sweep \"series\""
      Option.(Json.member "series" rs |> map Json.to_list |> join)
  in
  let* () =
    if series = [] then Error "bench document: recovery_sweep \"series\" is empty"
    else Ok ()
  in
  List.fold_left
    (fun acc ser ->
      let* () = acc in
      let* label =
        require "recovery_sweep series \"label\""
          Option.(Json.member "label" ser |> map Json.to_str |> join)
      in
      let* arrays =
        List.fold_left
          (fun acc field ->
            let* acc = acc in
            let* a =
              require
                (Printf.sprintf "recovery_sweep %s %S" label field)
                Option.(Json.member field ser |> map Json.to_list |> join)
            in
            Ok ((field, a) :: acc))
          (Ok [])
          [ "responses_s"; "recalls"; "demoted" ]
      in
      let* () =
        List.fold_left
          (fun acc (field, a) ->
            let* () = acc in
            if List.length a <> List.length xs then
              Error
                (Printf.sprintf
                   "bench document: recovery_sweep %s %s length differs from \
                    availabilities"
                   label field)
            else Ok ())
          (Ok ()) arrays
      in
      let recalls = List.filter_map Json.to_float (List.assoc "recalls" arrays) in
      let* () =
        List.fold_left
          (fun acc r ->
            let* () = acc in
            if Float.is_nan r || r < 0.0 || r > 1.0 then
              Error
                (Printf.sprintf
                   "bench document: recovery_sweep %s recall outside [0, 1]"
                   label)
            else Ok ())
          (Ok ()) recalls
      in
      let demoted = List.filter_map Json.to_float (List.assoc "demoted" arrays) in
      List.fold_left
        (fun acc d ->
          let* () = acc in
          nonneg (Printf.sprintf "recovery_sweep %s demoted" label) d)
        (Ok ()) demoted)
    (Ok ()) series

(* The /5 addition: the serve-sweep section — cache capacities and one
   (throughputs, speedups, hits) series per (strategy, window) cell, all
   non-negative. *)
let validate_serve_sweep j =
  let* ss = require "\"serve_sweep\"" (Json.member "serve_sweep" j) in
  let* xs =
    require "serve_sweep \"cache_kib\""
      Option.(Json.member "cache_kib" ss |> map Json.to_list |> join)
  in
  let* () =
    if xs = [] then Error "bench document: serve_sweep \"cache_kib\" is empty"
    else Ok ()
  in
  let* series =
    require "serve_sweep \"series\""
      Option.(Json.member "series" ss |> map Json.to_list |> join)
  in
  let* () =
    if series = [] then Error "bench document: serve_sweep \"series\" is empty"
    else Ok ()
  in
  List.fold_left
    (fun acc ser ->
      let* () = acc in
      let* label =
        require "serve_sweep series \"label\""
          Option.(Json.member "label" ser |> map Json.to_str |> join)
      in
      List.fold_left
        (fun acc field ->
          let* () = acc in
          let* a =
            require
              (Printf.sprintf "serve_sweep %s %S" label field)
              Option.(Json.member field ser |> map Json.to_list |> join)
          in
          let* () =
            if List.length a <> List.length xs then
              Error
                (Printf.sprintf
                   "bench document: serve_sweep %s %s length differs from \
                    cache_kib"
                   label field)
            else Ok ()
          in
          List.fold_left
            (fun acc v ->
              let* () = acc in
              nonneg (Printf.sprintf "serve_sweep %s %s" label field) v)
            (Ok ())
            (List.filter_map Json.to_float a))
        (Ok ())
        [ "throughputs"; "speedups"; "hits_per_query" ])
    (Ok ()) series

(* The /6 addition: the latency section — one quantile summary per
   strategy from a telemetry-enabled serve run, all values non-negative
   and ordered p50 <= p90 <= p99 <= max whenever any sample was taken. *)
let validate_latency j =
  let* lat =
    require "\"latency\"" Option.(Json.member "latency" j |> map Json.to_list |> join)
  in
  let* () =
    if lat = [] then Error "bench document: \"latency\" is empty" else Ok ()
  in
  List.fold_left
    (fun acc entry ->
      let* () = acc in
      let* name =
        require "latency \"name\""
          Option.(Json.member "name" entry |> map Json.to_str |> join)
      in
      let* count =
        require
          (Printf.sprintf "latency %s \"count\"" name)
          Option.(Json.member "count" entry |> map Json.to_int |> join)
      in
      let* () =
        if count >= 0 then Ok ()
        else Error (Printf.sprintf "bench document: latency %s count must be >= 0" name)
      in
      let* qs =
        List.fold_left
          (fun acc field ->
            let* acc = acc in
            let* v =
              require
                (Printf.sprintf "latency %s %S" name field)
                Option.(Json.member field entry |> map Json.to_float |> join)
            in
            let* () = nonneg (Printf.sprintf "latency %s %s" name field) v in
            Ok (v :: acc))
          (Ok [])
          [ "p50_us"; "p90_us"; "p99_us"; "max_us" ]
      in
      match List.rev qs with
      | [ p50; p90; p99 ] | [ p50; p90; p99; _ ] ->
          if count > 0 && not (p50 <= p90 && p90 <= p99) then
            Error
              (Printf.sprintf
                 "bench document: latency %s quantiles must be non-decreasing"
                 name)
          else Ok ()
      | _ -> Ok ())
    (Ok ()) lat

(* The /7 addition: the auto_sweep section. Beyond shape checks this
   validator enforces the experiment's win condition — AUTO's makespan is
   no worse than the best fixed strategy's (tiny relative epsilon for
   float formatting round trips) and the estimator's rank-match rate is a
   valid fraction — so a regressing optimizer fails [--check], not just a
   human reading the numbers. *)
let validate_auto_sweep j =
  let* a = require "\"auto_sweep\"" (Json.member "auto_sweep" j) in
  let* queries =
    require "auto_sweep \"queries\""
      Option.(Json.member "queries" a |> map Json.to_int |> join)
  in
  let* distinct =
    require "auto_sweep \"distinct\""
      Option.(Json.member "distinct" a |> map Json.to_int |> join)
  in
  let* () =
    if queries > 0 && distinct > 0 then Ok ()
    else Error "bench document: auto_sweep queries and distinct must be positive"
  in
  let* fixed =
    require "auto_sweep \"fixed\""
      Option.(Json.member "fixed" a |> map Json.to_list |> join)
  in
  let* () =
    if fixed = [] then Error "bench document: auto_sweep \"fixed\" is empty"
    else Ok ()
  in
  let* min_fixed =
    List.fold_left
      (fun acc entry ->
        let* acc = acc in
        let* name =
          require "auto_sweep fixed \"strategy\""
            Option.(Json.member "strategy" entry |> map Json.to_str |> join)
        in
        let* m =
          require
            (Printf.sprintf "auto_sweep %s \"makespan_s\"" name)
            Option.(Json.member "makespan_s" entry |> map Json.to_float |> join)
        in
        let* () = nonneg (Printf.sprintf "auto_sweep %s makespan_s" name) m in
        Ok (Float.min acc m))
      (Ok Float.infinity) fixed
  in
  let* auto_makespan =
    require "auto_sweep \"auto_makespan_s\""
      Option.(Json.member "auto_makespan_s" a |> map Json.to_float |> join)
  in
  let* () = nonneg "auto_sweep auto_makespan_s" auto_makespan in
  let* () =
    if auto_makespan <= min_fixed *. (1.0 +. 1e-9) then Ok ()
    else
      Error
        (Printf.sprintf
           "bench document: auto_sweep regression — AUTO makespan %g s \
            exceeds the best fixed strategy's %g s"
           auto_makespan min_fixed)
  in
  let* decisions =
    require "auto_sweep \"decisions\""
      Option.(Json.member "decisions" a |> map Json.to_list |> join)
  in
  let* () =
    List.fold_left
      (fun acc entry ->
        let* () = acc in
        let* name =
          require "auto_sweep decision \"strategy\""
            Option.(Json.member "strategy" entry |> map Json.to_str |> join)
        in
        let* count =
          require
            (Printf.sprintf "auto_sweep decision %s \"count\"" name)
            Option.(Json.member "count" entry |> map Json.to_int |> join)
        in
        if count >= 0 then Ok ()
        else
          Error
            (Printf.sprintf
               "bench document: auto_sweep decision %s count must be >= 0" name))
      (Ok ()) decisions
  in
  let* switches =
    require "auto_sweep \"switches\""
      Option.(Json.member "switches" a |> map Json.to_int |> join)
  in
  let* () =
    if switches >= 0 then Ok ()
    else Error "bench document: auto_sweep switches must be >= 0"
  in
  let* rate =
    require "auto_sweep \"rank_match_rate\""
      Option.(Json.member "rank_match_rate" a |> map Json.to_float |> join)
  in
  if Float.is_nan rate || rate < 0.0 || rate > 1.0 then
    Error "bench document: auto_sweep rank_match_rate must be inside [0, 1]"
  else Ok ()

(* The /8 addition: the overload_sweep section. Beyond shape checks this
   validator enforces the robustness win condition — the naive unbounded
   baseline's p99 grows monotonically with offered load and blows past
   twice the at-capacity p99, while every rejecting shed policy keeps the
   p99 of admitted queries within that 2x bound at every overloaded
   point. [degrade] admits everything and trades latency for it, so its
   rows are reported but not bounded. A serving engine whose admission
   control stops holding the tail fails [--check], not just a human
   reading the table. *)
let validate_overload_sweep j =
  let* o = require "\"overload_sweep\"" (Json.member "overload_sweep" j) in
  let* cap =
    require "overload_sweep \"cap_p99_ms\""
      Option.(Json.member "cap_p99_ms" o |> map Json.to_float |> join)
  in
  let* () =
    if Float.is_nan cap || cap <= 0.0 then
      Error "bench document: overload_sweep cap_p99_ms must be positive"
    else Ok ()
  in
  let* points =
    require "overload_sweep \"points\""
      Option.(Json.member "points" o |> map Json.to_list |> join)
  in
  let* () =
    if points = [] then Error "bench document: overload_sweep \"points\" is empty"
    else Ok ()
  in
  let* parsed =
    List.fold_left
      (fun acc entry ->
        let* acc = acc in
        let* policy =
          require "overload_sweep point \"policy\""
            Option.(Json.member "policy" entry |> map Json.to_str |> join)
        in
        let* multiplier =
          require
            (Printf.sprintf "overload_sweep %s \"multiplier\"" policy)
            Option.(Json.member "multiplier" entry |> map Json.to_float |> join)
        in
        let* p99 =
          require
            (Printf.sprintf "overload_sweep %s \"p99_ms\"" policy)
            Option.(Json.member "p99_ms" entry |> map Json.to_float |> join)
        in
        let* () =
          nonneg
            (Printf.sprintf "overload_sweep %s x%g p99_ms" policy multiplier)
            p99
        in
        let* admitted =
          require
            (Printf.sprintf "overload_sweep %s \"admitted\"" policy)
            Option.(Json.member "admitted" entry |> map Json.to_int |> join)
        in
        let* shed =
          require
            (Printf.sprintf "overload_sweep %s \"shed\"" policy)
            Option.(Json.member "shed" entry |> map Json.to_int |> join)
        in
        let* () =
          if admitted >= 0 && shed >= 0 then Ok ()
          else
            Error
              (Printf.sprintf
                 "bench document: overload_sweep %s x%g admitted and shed must \
                  be >= 0"
                 policy multiplier)
        in
        Ok ((policy, multiplier, p99) :: acc))
      (Ok []) points
  in
  let parsed = List.rev parsed in
  let row policy =
    List.sort
      (fun (_, a, _) (_, b, _) -> Float.compare a b)
      (List.filter (fun (p, _, _) -> String.equal p policy) parsed)
  in
  let naive = row "naive" in
  let* () =
    if naive = [] then
      Error "bench document: overload_sweep has no \"naive\" baseline row"
    else Ok ()
  in
  let* _ =
    List.fold_left
      (fun acc (_, m, p99) ->
        let* prev = acc in
        if p99 +. 1e-9 >= prev then Ok p99
        else
          Error
            (Printf.sprintf
               "bench document: overload_sweep naive p99 must grow with load \
                but drops to %g ms at x%g"
               p99 m))
      (Ok 0.0) naive
  in
  let* () =
    let _, _, worst = List.nth naive (List.length naive - 1) in
    if worst > 2.0 *. cap then Ok ()
    else
      Error
        (Printf.sprintf
           "bench document: overload_sweep naive p99 %g ms never exceeds \
            twice the at-capacity p99 %g ms — the sweep is not overloaded"
           worst cap)
  in
  let bound = 2.0 *. cap *. (1.0 +. 1e-9) in
  List.fold_left
    (fun acc policy ->
      let* () = acc in
      List.fold_left
        (fun acc (_, m, p99) ->
          let* () = acc in
          if m < 2.0 || p99 <= bound then Ok ()
          else
            Error
              (Printf.sprintf
                 "bench document: overload_sweep tail-bound regression — %s \
                  p99 %g ms at x%g exceeds twice the at-capacity p99 %g ms"
                 policy p99 m cap))
        (Ok ()) (row policy))
    (Ok ())
    [ "reject-newest"; "reject-oldest" ]

(* The /9 win condition. Leg fates are timeout-independent by
   construction, so the adaptive arm must never demote more rows than the
   static arm on the same cell; and on the slowdown cells — the gray
   signature the adaptive timeouts are built to exploit — its mean
   response must undercut the static arm's by the pinned margin. *)
let validate_gray_sweep j =
  let* g = require "\"gray_sweep\"" (Json.member "gray_sweep" j) in
  let* points =
    require "gray_sweep \"points\""
      Option.(Json.member "points" g |> map Json.to_list |> join)
  in
  let* () =
    if points = [] then Error "bench document: gray_sweep \"points\" is empty"
    else Ok ()
  in
  let* parsed =
    List.fold_left
      (fun acc entry ->
        let* acc = acc in
        let* policy =
          require "gray_sweep point \"policy\""
            Option.(Json.member "policy" entry |> map Json.to_str |> join)
        in
        let* kind =
          require "gray_sweep point \"kind\""
            Option.(Json.member "kind" entry |> map Json.to_str |> join)
        in
        let* severity =
          require "gray_sweep point \"severity\""
            Option.(Json.member "severity" entry |> map Json.to_str |> join)
        in
        let* demoted =
          require
            (Printf.sprintf "gray_sweep %s/%s/%s \"demoted_rows\"" policy kind
               severity)
            Option.(Json.member "demoted_rows" entry |> map Json.to_int |> join)
        in
        let* mean_ms =
          require
            (Printf.sprintf "gray_sweep %s/%s/%s \"mean_ms\"" policy kind
               severity)
            Option.(Json.member "mean_ms" entry |> map Json.to_float |> join)
        in
        let* () =
          nonneg
            (Printf.sprintf "gray_sweep %s/%s/%s mean_ms" policy kind severity)
            mean_ms
        in
        let* () =
          if demoted >= 0 then Ok ()
          else
            Error
              (Printf.sprintf
                 "bench document: gray_sweep %s/%s/%s demoted_rows must be >= 0"
                 policy kind severity)
        in
        Ok ((policy, kind, severity, demoted, mean_ms) :: acc))
      (Ok []) points
  in
  let cell policy kind severity =
    List.find_opt
      (fun (p, k, s, _, _) ->
        String.equal p policy && String.equal k kind && String.equal s severity)
      parsed
  in
  let kinds = [ "slowdown"; "jitter"; "flap"; "oneway" ] in
  let severities = [ "mild"; "severe" ] in
  List.fold_left
    (fun acc kind ->
      let* () = acc in
      List.fold_left
        (fun acc severity ->
          let* () = acc in
          let* _, _, _, sd, sm =
            require
              (Printf.sprintf "gray_sweep static/%s/%s point" kind severity)
              (cell "static" kind severity)
          in
          let* _, _, _, ad, am =
            require
              (Printf.sprintf "gray_sweep adaptive/%s/%s point" kind severity)
              (cell "adaptive" kind severity)
          in
          let* () =
            if ad <= sd then Ok ()
            else
              Error
                (Printf.sprintf
                   "bench document: gray_sweep soundness regression — \
                    adaptive demotes %d rows on %s/%s where static demotes %d"
                   ad kind severity sd)
          in
          if
            String.equal kind "slowdown"
            && am > sm *. (1.0 -. Gray_sweep.response_margin)
          then
            Error
              (Printf.sprintf
                 "bench document: gray_sweep win-condition regression — \
                  adaptive mean %g ms on slowdown/%s is not %g%% under the \
                  static %g ms"
                 am severity
                 (100.0 *. Gray_sweep.response_margin)
                 sm)
          else Ok ())
        (Ok ()) severities)
    (Ok ()) kinds

(* The /10 addition: the columnar microbench section — positive throughputs
   and internally consistent speedup ratios. The >= 5x acceptance bar on the
   local-eval speedup is the bench gate's job (tools/bench_gate), not the
   validator's: a document from a noisy machine is still well-formed. *)
let validate_microbench j =
  let* m = require "\"microbench\"" (Json.member "microbench" j) in
  let* objects =
    require "microbench \"objects\""
      Option.(Json.member "objects" m |> map Json.to_int |> join)
  in
  let* () =
    if objects >= 1 then Ok ()
    else Error "bench document: microbench objects must be >= 1"
  in
  let positive section field =
    let* sec =
      require (Printf.sprintf "microbench %S" section) (Json.member section m)
    in
    let* v =
      require
        (Printf.sprintf "microbench %s %S" section field)
        Option.(Json.member field sec |> map Json.to_float |> join)
    in
    if Float.is_nan v || v <= 0.0 then
      Error
        (Printf.sprintf "bench document: microbench %s %s must be positive"
           section field)
    else Ok ()
  in
  let* () = positive "local_eval" "boxed_objs_per_s" in
  let* () = positive "local_eval" "columnar_objs_per_s" in
  let* () = positive "local_eval" "speedup" in
  let* () = positive "signature_filter" "boxed_objs_per_s" in
  let* () = positive "signature_filter" "bitset_objs_per_s" in
  let* () = positive "signature_filter" "speedup" in
  let* () = positive "certify" "rows_per_s" in
  let* c = require "microbench \"certify\"" (Json.member "certify" m) in
  let* rows =
    require "microbench certify \"rows\""
      Option.(Json.member "rows" c |> map Json.to_int |> join)
  in
  if rows >= 1 then Ok ()
  else Error "bench document: microbench certify rows must be >= 1"

let validate_bench j =
  let* schema = require "\"schema\"" Option.(Json.member "schema" j |> map Json.to_str |> join) in
  let known =
    [
      bench_schema; bench_schema_v9; bench_schema_v8; bench_schema_v7;
      bench_schema_v6; bench_schema_v5; bench_schema_v4; bench_schema_v3;
      bench_schema_v2; bench_schema_v1;
    ]
  in
  let* () =
    if List.exists (String.equal schema) known then Ok ()
    else
      Error
        (Printf.sprintf "bench document: schema %S, expected one of %s" schema
           (String.concat ", " (List.map (Printf.sprintf "%S") known)))
  in
  (* versions are ordered: everything from the introducing version on
     requires the section *)
  let at_least v =
    let rank s =
      if String.equal s bench_schema_v1 then 1
      else if String.equal s bench_schema_v2 then 2
      else if String.equal s bench_schema_v3 then 3
      else if String.equal s bench_schema_v4 then 4
      else if String.equal s bench_schema_v5 then 5
      else if String.equal s bench_schema_v6 then 6
      else if String.equal s bench_schema_v7 then 7
      else if String.equal s bench_schema_v8 then 8
      else if String.equal s bench_schema_v9 then 9
      else 10
    in
    rank schema >= v
  in
  let* () = if at_least 2 then validate_parallel j else Ok () in
  let* () = if at_least 3 then validate_fault_sweep j else Ok () in
  let* () = if at_least 4 then validate_recovery_sweep j else Ok () in
  let* () = if at_least 5 then validate_serve_sweep j else Ok () in
  let* () = if at_least 6 then validate_latency j else Ok () in
  let* () = if at_least 7 then validate_auto_sweep j else Ok () in
  let* () = if at_least 8 then validate_overload_sweep j else Ok () in
  let* () = if at_least 9 then validate_gray_sweep j else Ok () in
  let* () = if at_least 10 then validate_microbench j else Ok () in
  let* _ =
    require "\"generated_at\""
      Option.(Json.member "generated_at" j |> map Json.to_str |> join)
  in
  let* entries =
    require "\"strategies\"" Option.(Json.member "strategies" j |> map Json.to_list |> join)
  in
  let* () =
    if entries = [] then Error "bench document: \"strategies\" is empty" else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc entry ->
        let* () = acc in
        let* name =
          require "strategy \"name\""
            Option.(Json.member "name" entry |> map Json.to_str |> join)
        in
        let* total =
          require (name ^ " \"total_s\"")
            Option.(Json.member "total_s" entry |> map Json.to_float |> join)
        in
        let* response =
          require (name ^ " \"response_s\"")
            Option.(Json.member "response_s" entry |> map Json.to_float |> join)
        in
        let* () = nonneg (name ^ " total_s") total in
        nonneg (name ^ " response_s") response)
      (Ok ()) entries
  in
  let* wall =
    require "\"wall\"" Option.(Json.member "wall" j |> map Json.to_list |> join)
  in
  List.fold_left
    (fun acc entry ->
      let* () = acc in
      let* name =
        require "wall \"name\""
          Option.(Json.member "name" entry |> map Json.to_str |> join)
      in
      let* ns =
        require (name ^ " \"ns_per_run\"")
          Option.(Json.member "ns_per_run" entry |> map Json.to_float |> join)
      in
      nonneg (name ^ " ns_per_run") ns)
    (Ok ()) wall

(* ---- explain ---- *)

(* Per-row provenance of an answer: what each maybe row is waiting on.
   Degraded rows name the check round trip that never returned; cached
   rows name the verdict cache; the rest of the maybe rows are honest
   missing-data maybes (their predicate is Unknown on the available
   attributes). *)
let pp_explain ppf answer =
  let open Msdq_odb in
  let cached = Answer.cached answer in
  let rows = Answer.rows answer in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%-14s %-8s provenance@," "goid" "status";
  List.iter
    (fun (r : Answer.row) ->
      let goid = r.Answer.goid in
      let provenance =
        match Answer.degraded_reason answer goid with
        | Some why -> Printf.sprintf "degraded: %s" (Answer.reason_to_string why)
        | None -> (
            match r.Answer.status with
            | Answer.Maybe ->
                "missing data: predicate unknown on the available attributes"
            | Answer.Certain ->
                if Oid.Goid.Set.mem goid cached then
                  "certified using cache-served verdicts"
                else "certified")
      in
      Format.fprintf ppf "%-14s %-8s %s@," (Oid.Goid.to_string goid)
        (Answer.status_to_string r.Answer.status)
        provenance)
    rows;
  let d = Oid.Goid.Set.cardinal (Answer.degraded answer) in
  Format.fprintf ppf "%d rows, %d certain, %d maybe (%d degraded, %d cached)@]"
    (List.length rows)
    (List.length (Answer.certain answer))
    (List.length (Answer.maybe answer))
    d
    (Oid.Goid.Set.cardinal cached)

(* ---- telemetry store feed ---- *)

module Store = Msdq_telemetry.Store

(* Fold one serve outcome into a telemetry store: one (db="*", site=0,
   link=0, strategy) entry per strategy in the workload, carrying the
   strategy's mean query latency and demotion count plus the workload's
   drop and cache-hit rates. These are the observed statistics the AUTO
   strategy selector (ROADMAP item 2) will consume. *)
let record_serve_stats ~store (o : Msdq_serve.Serve.outcome) =
  let open Msdq_serve in
  let lookups (s : Lru.stats) = s.Lru.hits + s.Lru.misses in
  let hits = o.Serve.extent_cache.Lru.hits + o.Serve.verdict_cache.Lru.hits in
  let looks = lookups o.Serve.extent_cache + lookups o.Serve.verdict_cache in
  let cache_hit_rate =
    if looks = 0 then 0.0 else float_of_int hits /. float_of_int looks
  in
  let drops = Metrics.total o.Serve.registry "msdq_fault_drops_total" in
  let drop_rate =
    if o.Serve.messages + drops = 0 then 0.0
    else float_of_int drops /. float_of_int (o.Serve.messages + drops)
  in
  let by_strategy = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun (r : Serve.query_report) ->
      let name = Strategy.to_string r.Serve.strategy in
      let lat = Time.to_us r.Serve.latency in
      let dem =
        Msdq_odb.Oid.Goid.Set.cardinal (Answer.degraded r.Serve.answer)
      in
      match Hashtbl.find_opt by_strategy name with
      | Some (n, lat_sum, dem_sum) ->
          Hashtbl.replace by_strategy name (n + 1, lat_sum +. lat, dem_sum + dem)
      | None ->
          Hashtbl.replace by_strategy name (1, lat, dem);
          order := name :: !order)
    o.Serve.reports;
  List.iter
    (fun name ->
      let n, lat_sum, dem_sum = Hashtbl.find by_strategy name in
      let fn = float_of_int n in
      Store.observe store
        { Store.db = "*"; site = 0; link = 0; strategy = name }
        {
          Store.weight = fn;
          check_latency_us = lat_sum /. fn;
          drop_rate;
          cache_hit_rate;
          demotions = float_of_int dem_sum /. fn;
        })
    (List.rev !order);
  (* Per-link gray-health entries: the mean delivered check-leg latency per
     destination site, under the marker key {db="link"; strategy="*"} (see
     Store.link_latency). This is what options.latency_of reads back to
     drive the next run's adaptive timeouts. *)
  List.iter
    (fun (site, mean_us, legs) ->
      Store.observe store
        { Store.db = "link"; site; link = site; strategy = "*" }
        {
          Store.weight = float_of_int legs;
          check_latency_us = mean_us;
          drop_rate;
          cache_hit_rate;
          demotions = 0.0;
        })
    o.Serve.check_latency;
  Store.record_run store
