open Msdq_simkit
open Msdq_query
open Msdq_exec
module Json = Msdq_obs.Json
module Metrics = Msdq_obs.Metrics
module Tracer = Msdq_obs.Tracer

let phases = [ "O"; "P"; "I" ]

let dur_us (e : Trace.entry) =
  Time.to_us (Time.sub e.Trace.finish e.Trace.start)

let phase_of (e : Trace.entry) = List.assoc_opt "phase" e.Trace.attrs

(* ---- metrics ---- *)

let breakdown_json breakdown =
  Json.Arr
    (List.map
       (fun (label, busy, n) ->
         Json.Obj
           [
             ("label", Json.Str label);
             ("busy_s", Json.Float (Time.to_s busy));
             ("tasks", Json.Int n);
           ])
       breakdown)

let metrics_to_json (m : Strategy.metrics) =
  Json.Obj
    [
      ("strategy", Json.Str (Strategy.to_string m.Strategy.strategy));
      ("total_s", Json.Float (Time.to_s m.Strategy.total));
      ("response_s", Json.Float (Time.to_s m.Strategy.response));
      ( "phases",
        Json.Arr
          (List.map
             (fun (phase, busy, n) ->
               Json.Obj
                 [
                   ("phase", Json.Str phase);
                   ("busy_s", Json.Float (Time.to_s busy));
                   ("tasks", Json.Int n);
                 ])
             (Strategy.phase_breakdown m)) );
      ("bytes_shipped", Json.Int m.Strategy.bytes_shipped);
      ("disk_bytes", Json.Int m.Strategy.disk_bytes);
      ("messages", Json.Int m.Strategy.messages);
      ("check_requests", Json.Int m.Strategy.check_requests);
      ("checks_filtered", Json.Int m.Strategy.checks_filtered);
      ("work_units", Json.Int m.Strategy.work_units);
      ("goid_lookups", Json.Int m.Strategy.goid_lookups);
      ("promoted", Json.Int m.Strategy.promoted);
      ("eliminated_at_global", Json.Int m.Strategy.eliminated_at_global);
      ("conflicts", Json.Int m.Strategy.conflicts);
      ("breakdown", breakdown_json m.Strategy.breakdown);
      ("registry", Metrics.to_json m.Strategy.registry);
    ]

let run_to_json answer (m : Strategy.metrics) =
  Json.Obj
    [
      ( "answer",
        Json.Obj
          [
            ("certain", Json.Int (List.length (Answer.certain answer)));
            ("maybe", Json.Int (List.length (Answer.maybe answer)));
          ] );
      ("metrics", metrics_to_json m);
    ]

let query_to_json ~query runs =
  Json.Obj
    [
      ("query", Json.Str query);
      ("runs", Json.Arr (List.map (fun (a, m) -> run_to_json a m) runs));
    ]

(* ---- Chrome trace ---- *)

let kind_tid = function
  | Some Resource.Cpu -> 0
  | Some Resource.Disk -> 1
  | Some Resource.Link -> 2
  | None -> 3 (* fences and delays: the synchronization lane *)

let span_of_entry (e : Trace.entry) : Tracer.span =
  let site = match e.Trace.site with Some s -> s | None -> 0 in
  let cat =
    match e.Trace.kind with
    | Some k -> Resource.kind_to_string k
    | None -> "sync"
  in
  {
    Tracer.name = e.Trace.label;
    cat;
    pid = site;
    tid = kind_tid e.Trace.kind;
    ts_us = Time.to_us e.Trace.start;
    dur_us = dur_us e;
    args = e.Trace.attrs;
  }

let chrome_trace ms =
  let sim_spans =
    List.concat_map
      (fun (m : Strategy.metrics) ->
        List.map span_of_entry (Trace.entries m.Strategy.trace))
      ms
  in
  let host_spans = List.concat_map (fun m -> m.Strategy.host_spans) ms in
  let spans = sim_spans @ host_spans in
  let pids =
    List.sort_uniq compare (List.map (fun (s : Tracer.span) -> s.Tracer.pid) spans)
  in
  let process_names =
    List.map
      (fun pid ->
        if pid = Tracer.host_pid then (pid, "host")
        else if pid = 0 then (pid, "site 0 (global)")
        else (pid, Printf.sprintf "site %d" pid))
      pids
  in
  let thread_names =
    List.concat_map
      (fun pid ->
        if pid = Tracer.host_pid then [ (pid, 0, "host") ]
        else
          [ (pid, 0, "cpu"); (pid, 1, "disk"); (pid, 2, "link"); (pid, 3, "sync") ])
      pids
  in
  Tracer.chrome ~process_names ~thread_names spans

(* ---- utilization ---- *)

let pp_utilization ppf (m : Strategy.metrics) =
  let entries = Trace.entries m.Strategy.trace in
  let sites =
    List.sort_uniq compare
      (List.filter_map (fun (e : Trace.entry) -> e.Trace.site) entries)
  in
  let busy ~site ~phase =
    List.fold_left
      (fun acc (e : Trace.entry) ->
        if e.Trace.site = Some site && phase_of e = Some phase then
          Time.add acc (Time.sub e.Trace.finish e.Trace.start)
        else acc)
      Time.zero entries
  in
  let site_total site =
    List.fold_left
      (fun acc (e : Trace.entry) ->
        if e.Trace.site = Some site then
          Time.add acc (Time.sub e.Trace.finish e.Trace.start)
        else acc)
      Time.zero entries
  in
  Format.fprintf ppf "@[<v>%s utilization (busy seconds per site and phase)@,"
    (Strategy.to_string m.Strategy.strategy);
  Format.fprintf ppf "%-10s %10s %10s %10s %10s@," "site" "O" "P" "I" "total";
  List.iter
    (fun site ->
      let name = if site = 0 then "global" else Printf.sprintf "site %d" site in
      Format.fprintf ppf "%-10s" name;
      List.iter
        (fun phase ->
          Format.fprintf ppf " %10.6f" (Time.to_s (busy ~site ~phase)))
        phases;
      Format.fprintf ppf " %10.6f@," (Time.to_s (site_total site)))
    sites;
  Format.fprintf ppf "@]"

(* ---- figures ---- *)

let figure_to_json (fig : Figures.figure) =
  let floats a = Json.Arr (Array.to_list (Array.map (fun x -> Json.Float x) a)) in
  Json.Obj
    [
      ("id", Json.Str fig.Figures.id);
      ("title", Json.Str fig.Figures.title);
      ("xlabel", Json.Str fig.Figures.xlabel);
      ("xs", floats fig.Figures.xs);
      ( "series",
        Json.Arr
          (List.map
             (fun (s : Figures.series) ->
               Json.Obj
                 [
                   ("strategy", Json.Str (Strategy.to_string s.Figures.strategy));
                   ("totals_s", floats s.Figures.totals);
                   ("responses_s", floats s.Figures.responses);
                 ])
             fig.Figures.series) );
    ]

let figures_to_json figs =
  Json.Obj [ ("figures", Json.Arr (List.map figure_to_json figs)) ]

(* ---- bench ---- *)

let bench_schema_v1 = "msdq-bench/1"
let bench_schema = "msdq-bench/2"

type parallel = {
  jobs : int;
  grid_points : int;
  seq_s : float;
  par_s : float;
  speedup : float;
}

let parallel_to_json p =
  Json.Obj
    [
      ("jobs", Json.Int p.jobs);
      ("grid_points", Json.Int p.grid_points);
      ("seq_s", Json.Float p.seq_s);
      ("par_s", Json.Float p.par_s);
      ("speedup", Json.Float p.speedup);
    ]

let bench_to_json ~generated_at ~seed ~parallel ~strategies ~wall =
  Json.Obj
    [
      ("schema", Json.Str bench_schema);
      ("generated_at", Json.Str generated_at);
      ("seed", Json.Int seed);
      ("parallel", parallel_to_json parallel);
      ( "strategies",
        Json.Arr
          (List.map
             (fun (name, total_s, response_s) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ("total_s", Json.Float total_s);
                   ("response_s", Json.Float response_s);
                 ])
             strategies) );
      ( "wall",
        Json.Arr
          (List.map
             (fun (name, ns) ->
               Json.Obj
                 [ ("name", Json.Str name); ("ns_per_run", Json.Float ns) ])
             wall) );
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bench document: missing or ill-typed %s" what)

let nonneg what v =
  if Float.is_nan v || v < 0.0 then
    Error (Printf.sprintf "bench document: %s must be a non-negative number" what)
  else Ok ()

(* The /2 additions: a seed and the parallel-sweep record. *)
let validate_parallel j =
  let* p = require "\"parallel\"" (Json.member "parallel" j) in
  let* jobs =
    require "parallel \"jobs\"" Option.(Json.member "jobs" p |> map Json.to_int |> join)
  in
  let* () =
    if jobs >= 1 then Ok () else Error "bench document: parallel jobs must be >= 1"
  in
  let* points =
    require "parallel \"grid_points\""
      Option.(Json.member "grid_points" p |> map Json.to_int |> join)
  in
  let* () =
    if points >= 0 then Ok ()
    else Error "bench document: parallel grid_points must be >= 0"
  in
  let* () =
    List.fold_left
      (fun acc field ->
        let* () = acc in
        let* v =
          require
            (Printf.sprintf "parallel %S" field)
            Option.(Json.member field p |> map Json.to_float |> join)
        in
        nonneg ("parallel " ^ field) v)
      (Ok ())
      [ "seq_s"; "par_s"; "speedup" ]
  in
  let* _ =
    require "\"seed\"" Option.(Json.member "seed" j |> map Json.to_int |> join)
  in
  Ok ()

let validate_bench j =
  let* schema = require "\"schema\"" Option.(Json.member "schema" j |> map Json.to_str |> join) in
  let* () =
    if String.equal schema bench_schema || String.equal schema bench_schema_v1
    then Ok ()
    else
      Error
        (Printf.sprintf "bench document: schema %S, expected %S or %S" schema
           bench_schema bench_schema_v1)
  in
  let* () =
    if String.equal schema bench_schema then validate_parallel j else Ok ()
  in
  let* _ =
    require "\"generated_at\""
      Option.(Json.member "generated_at" j |> map Json.to_str |> join)
  in
  let* entries =
    require "\"strategies\"" Option.(Json.member "strategies" j |> map Json.to_list |> join)
  in
  let* () =
    if entries = [] then Error "bench document: \"strategies\" is empty" else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc entry ->
        let* () = acc in
        let* name =
          require "strategy \"name\""
            Option.(Json.member "name" entry |> map Json.to_str |> join)
        in
        let* total =
          require (name ^ " \"total_s\"")
            Option.(Json.member "total_s" entry |> map Json.to_float |> join)
        in
        let* response =
          require (name ^ " \"response_s\"")
            Option.(Json.member "response_s" entry |> map Json.to_float |> join)
        in
        let* () = nonneg (name ^ " total_s") total in
        nonneg (name ^ " response_s") response)
      (Ok ()) entries
  in
  let* wall =
    require "\"wall\"" Option.(Json.member "wall" j |> map Json.to_list |> join)
  in
  List.fold_left
    (fun acc entry ->
      let* () = acc in
      let* name =
        require "wall \"name\""
          Option.(Json.member "name" entry |> map Json.to_str |> join)
      in
      let* ns =
        require (name ^ " \"ns_per_run\"")
          Option.(Json.member "ns_per_run" entry |> map Json.to_float |> join)
      in
      nonneg (name ^ " ns_per_run") ns)
    (Ok ()) wall
