open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload
open Msdq_serve
module Optimizer = Msdq_opt.Optimizer
module Metrics = Msdq_obs.Metrics

let log_src = Logs.Src.create "msdq.exp.auto" ~doc:"AUTO strategy sweep"

module Log = (val Logs.src_log log_src : Logs.LOG)

type fixed_run = { f_strategy : Strategy.t; f_makespan_s : float }

type outcome = {
  id : string;
  title : string;
  queries : int;
  distinct : int;
  seed : int;
  spacing_us : float;
  fixed : fixed_run list;
  auto_makespan_s : float;
  decisions : (string * int) list;
  switches : int;
  rank_matches : int;
  rank_match_rate : float;
}

(* The mixed workload: one dense synthetic federation (every database hosts
   every class, a quarter of the attributes missing schema-level, some
   nulls on top) and a set of distinct conjunctive queries chosen so that
   the model predicts {e different} winners with a real margin — the
   workload an adaptive selector exists for. Candidate queries come from
   the synth generator's per-index rng streams; selection is a pure
   function of the seed. *)
let federation_of seed =
  Synth.generate
    {
      Synth.default with
      Synth.seed = (seed * 131) + 7;
      n_entities = 80;
      p_host = 1.0;
      p_attr_present = 0.75;
      p_null = 0.12;
      p_copy = 0.4;
    }

(* Minimum predicted second-best/best response ratio for a candidate to
   count as a query its predicted winner should genuinely win. *)
let min_margin = 1.05

let candidate_queries ~seed ~distinct ~cost fed cfg =
  let schema = Global_schema.schema (Federation.global_schema fed) in
  let base = Rng.create ~seed:(seed + 211) in
  let margin_of preds =
    match
      List.sort compare
        (List.map (fun (p : Msdq_opt.Planner.prediction) ->
             Time.to_us p.Msdq_opt.Planner.response)
           preds)
    with
    | best :: second :: _ when best > 0.0 -> second /. best
    | _ -> 1.0
  in
  let candidates =
    List.filter_map
      (fun i ->
        let rng = Rng.split_ix base ~i in
        let query = Synth.random_query rng cfg ~disjunctive:false in
        match Analysis.analyze schema query with
        | exception Analysis.Error _ -> None
        | analysis ->
          let winner, preds =
            Msdq_opt.Planner.choose ~cost
              ~strategies:Optimizer.candidates
              ~objective:Msdq_opt.Planner.Response_time fed analysis
          in
          Some (analysis, winner, margin_of preds))
      (List.init 64 Fun.id)
  in
  (* Round-robin across predicted winners, widest margin first, so the mix
     contains queries every candidate strategy should win. A candidate only
     qualifies for its winner's bucket with a real margin — a near-tie
     (margin ~1.0) is model noise, not a prediction, and would poison the
     rank-match measurement. If too few clear the bar the mix fills from
     the widest-margin leftovers regardless of winner. *)
  let strong = List.filter (fun (_, _, m) -> m >= min_margin) candidates in
  let buckets =
    List.map
      (fun s ->
        ( s,
          ref
            (List.sort
               (fun (_, _, m1) (_, _, m2) -> Float.compare m2 m1)
               (List.filter (fun (_, w, _) -> w = s) strong)) ))
      Optimizer.candidates
  in
  let chosen = ref [] and n = ref 0 in
  let progressed = ref true in
  while !n < distinct && !progressed do
    progressed := false;
    List.iter
      (fun (_, bucket) ->
        match !bucket with
        | (analysis, _, _) :: rest when !n < distinct ->
          bucket := rest;
          chosen := analysis :: !chosen;
          incr n;
          progressed := true
        | _ -> ())
      buckets
  done;
  if !n < distinct then
    List.iter
      (fun (analysis, _, _) ->
        if !n < distinct && not (List.memq analysis !chosen) then begin
          chosen := analysis :: !chosen;
          incr n
        end)
      (List.sort
         (fun (_, _, m1) (_, _, m2) -> Float.compare m2 m1)
         candidates);
  List.rev !chosen

let default_spacing_us = 20_000.0

let run ?registry ?progress ?(queries = 8) ?(distinct = 4) ?(seed = 1996)
    ?(cost = Cost.default) () =
  let id = "auto-sweep" in
  let cfg =
    {
      Synth.default with
      Synth.seed = (seed * 131) + 7;
      n_entities = 80;
      p_host = 1.0;
      p_attr_present = 0.75;
      p_null = 0.12;
      p_copy = 0.4;
    }
  in
  let fed = federation_of seed in
  let analyses = candidate_queries ~seed ~distinct ~cost fed cfg in
  let distinct = List.length analyses in
  if distinct = 0 then invalid_arg "Auto_sweep: no analyzable queries";
  let analyses_a = Array.of_list analyses in
  let arrivals =
    List.init queries (fun i ->
        (analyses_a.(i mod distinct), Time.us (float_of_int i *. default_spacing_us)))
  in
  (* Caching off: the sweep isolates strategy selection from cache sharing
     (a homogeneous workload re-hits its own extents; a mixed one spreads
     them over strategies — docs/OPTIMIZER.md discusses the bias). *)
  let serve_cfg =
    {
      Serve.default_config with
      Serve.options = { Strategy.default_options with Strategy.cost };
      cache_bytes = 0;
      window = Time.zero;
    }
  in
  let total_steps = List.length Optimizer.candidates + 1 + distinct in
  let done_steps = ref 0 in
  let step () =
    incr done_steps;
    match progress with
    | Some f -> f ~figure:id ~completed:!done_steps ~total:total_steps
    | None -> ()
  in
  let fixed =
    List.map
      (fun s ->
        let jobs =
          List.map
            (fun (analysis, arrival) -> { Serve.strategy = s; analysis; arrival; deadline = None })
            arrivals
        in
        let out = Serve.run serve_cfg fed jobs in
        Log.info (fun m ->
            m "%s: fixed %s makespan %a" id (Strategy.to_string s) Time.pp
              out.Serve.makespan);
        step ();
        { f_strategy = s; f_makespan_s = Time.to_s out.Serve.makespan })
      Optimizer.candidates
  in
  let auto = Serve.run_auto serve_cfg fed arrivals in
  step ();
  let decisions =
    List.map
      (fun s ->
        ( Strategy.to_string s,
          List.length
            (List.filter
               (fun (d : Serve.auto_decision) -> d.Serve.d_chosen = s)
               auto.Serve.decisions) ))
      Optimizer.candidates
  in
  (* Estimator accuracy: per distinct query, does the model's pick match
     the strategy a solo run actually answers fastest with? *)
  let options = serve_cfg.Serve.options in
  let rank_matches =
    List.fold_left
      (fun acc analysis ->
        let predicted =
          (Optimizer.decide ~cost fed analysis).Optimizer.chosen
        in
        let observed =
          List.map
            (fun s ->
              let _, m = Strategy.run ~options s fed analysis in
              (s, Time.to_us m.Strategy.response))
            Optimizer.candidates
        in
        let best =
          fst
            (List.fold_left
               (fun (bs, bt) (s, t) -> if t < bt then (s, t) else (bs, bt))
               (List.hd observed) (List.tl observed))
        in
        step ();
        if best = predicted then acc + 1 else acc)
      0 analyses
  in
  (match registry with
  | Some reg ->
    Metrics.inc
      (Metrics.counter reg ~labels:[ ("figure", id) ] "msdq_auto_queries_total")
      queries
  | None -> ());
  {
    id;
    title = "AUTO vs fixed strategies on a mixed workload";
    queries;
    distinct;
    seed;
    spacing_us = default_spacing_us;
    fixed;
    auto_makespan_s = Time.to_s auto.Serve.auto.Serve.makespan;
    decisions;
    switches = auto.Serve.switches;
    rank_matches;
    rank_match_rate = float_of_int rank_matches /. float_of_int distinct;
  }

let min_fixed_makespan outcome =
  List.fold_left
    (fun acc f -> Float.min acc f.f_makespan_s)
    Float.infinity outcome.fixed
