open Msdq_exec

let fmt_x x =
  if Float.is_integer x then Printf.sprintf "%g" x else Printf.sprintf "%.2f" x

let panel ppf fig ~metric ~label =
  Format.fprintf ppf "@[<v>%s@," label;
  let names =
    List.map
      (fun s -> Strategy.to_string s.Figures.strategy)
      fig.Figures.series
  in
  Format.fprintf ppf "%-12s" "x";
  List.iter (fun n -> Format.fprintf ppf "%12s" n) names;
  Format.fprintf ppf "@,";
  Array.iteri
    (fun i x ->
      Format.fprintf ppf "%-12s" (fmt_x x);
      List.iter
        (fun s ->
          let v =
            match metric with
            | `Total -> s.Figures.totals.(i)
            | `Response -> s.Figures.responses.(i)
          in
          Format.fprintf ppf "%12.3f" v)
        fig.Figures.series;
      Format.fprintf ppf "@,")
    fig.Figures.xs;
  Format.fprintf ppf "@]"

let pp_figure ppf fig =
  Format.fprintf ppf "@[<v>== %s: %s ==@,x-axis: %s; times in seconds@,@,%a@,%a@]"
    fig.Figures.id fig.Figures.title fig.Figures.xlabel
    (fun ppf () -> panel ppf fig ~metric:`Total ~label:"(a) total execution time")
    ()
    (fun ppf () -> panel ppf fig ~metric:`Response ~label:"(b) response time")
    ()

let pp_checks ppf checks =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, ok) ->
      Format.fprintf ppf "%s %s@," (if ok then "[ok]  " else "[FAIL]") name)
    checks;
  Format.fprintf ppf "@]"

let to_csv fig =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "x";
  List.iter
    (fun s ->
      let n = Strategy.to_string s.Figures.strategy in
      Buffer.add_string buf (Printf.sprintf ",%s total s,%s response s" n n))
    fig.Figures.series;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i x ->
      Buffer.add_string buf (Printf.sprintf "%g" x);
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf ",%.6f,%.6f" s.Figures.totals.(i) s.Figures.responses.(i)))
        fig.Figures.series;
      Buffer.add_char buf '\n')
    fig.Figures.xs;
  Buffer.contents buf

let pp_ascii_chart ppf fig ~metric =
  let value s i =
    match metric with
    | `Total -> s.Figures.totals.(i)
    | `Response -> s.Figures.responses.(i)
  in
  let vmax =
    List.fold_left
      (fun acc s ->
        Array.fold_left Float.max acc
          (match metric with
          | `Total -> s.Figures.totals
          | `Response -> s.Figures.responses))
      0.0 fig.Figures.series
  in
  let width = 48 in
  Format.fprintf ppf "@[<v>%s (%s)@,"
    (match metric with `Total -> "total execution time" | `Response -> "response time")
    fig.Figures.xlabel;
  Array.iteri
    (fun i x ->
      Format.fprintf ppf "x = %s@," (fmt_x x);
      List.iter
        (fun s ->
          let v = value s i in
          let bar =
            if vmax <= 0.0 then 0
            else int_of_float (Float.round (v /. vmax *. float_of_int width))
          in
          Format.fprintf ppf "  %-4s %s %.3fs@,"
            (Strategy.to_string s.Figures.strategy)
            (String.make (max bar 1) '#')
            v)
        fig.Figures.series)
    fig.Figures.xs;
  Format.fprintf ppf "@]"
