(** Shape checks: do the regenerated curves reproduce the paper's findings?

    The reproduction targets the qualitative results of Section 4.2 — who
    wins, by what tendency, where curves cross — not the absolute numbers
    (the authors' simulator internals are unpublished). Each check returns a
    named boolean; EXPERIMENTS.md records them, and the test suite asserts
    them on reduced sample counts. *)

val check_fig9 : Figures.figure -> (string * bool) list
(** BL/PL beat CA on total time; BL beats PL; BL/PL response far below CA's. *)

val check_fig10 : Figures.figure -> (string * bool) list
(** BL/PL total time grows faster than CA's as databases are added; PL's
    total crosses above CA's; BL/PL response stays below CA's. *)

val check_fig11 : Figures.figure -> (string * bool) list
(** CA flat in the local selectivity; BL and PL increase; BL grows faster. *)

val check_ablation : Figures.figure -> (string * bool) list
(** Signature variants never do worse on total time and help at large
    database counts. *)

val check_ablation_checks : Figures.figure -> (string * bool) list
(** LO never exceeds BL/PL; the BL-LO gap (the cost of checking) widens with
    the number of databases. *)

val check_ablation_semijoin : Figures.figure -> (string * bool) list
(** CF beats CA at low selectivity and converges toward it as the filter
    stops helping; BL stays at or below CF. *)

val check : Figures.figure -> (string * bool) list
(** Dispatch on the figure id. *)

val all_hold : (string * bool) list -> bool
