(** The fault sweep (robustness extension): response time and certain-set
    recall of the concrete executors against decreasing site availability.

    Unlike {!Figures} (which drives the parametric simulator), this sweep
    runs the {e concrete} strategies on synthetic federations with a random
    recoverable {!Msdq_fault.Fault.random} schedule per sample: site crash
    windows covering an expected [1 - availability] of the run plus a 5%
    lossy incoming link on every site — including the global one, which
    never crashes but whose link losses make CA wait on retransmissions.
    Each sample's faulty runs are compared against their own fault-free
    reference executions:

    {ul
    {- {e response time} — the degraded run's makespan, including
       retransmission waits and recovery waits;}
    {- {e certain-set recall} — the fraction of the fault-free certain
       results the degraded run still certifies. Degradation soundness
       guarantees the faulty certain set is a subset of the fault-free one,
       so recall is exactly the complement of the demotion ratio.}}

    Four series: CA, BL and PL, plus a ["fail-stop"] baseline — a client of
    the same faulty BL execution with no degraded-answer mode, whose query
    simply aborts (recall 0) whenever any transfer was lost. The gap between
    BL/PL and fail-stop is what sound degraded answers buy.

    Determinism matches {!Figures}: the (availability, sample) grid merges
    in index order and every point draws from index-derived rng streams, so
    results are bit-identical for any [?pool] worker count. *)

open Msdq_exec

type series = {
  label : string;  (** strategy name, or ["fail-stop"] for the baseline *)
  responses : float array;  (** mean response time per availability, seconds *)
  recalls : float array;  (** mean certain-set recall per availability *)
}

type sweep = {
  id : string;  (** ["fault-sweep"] *)
  title : string;
  xlabel : string;
  xs : float array;  (** availability levels, ascending, ending at 1.0 *)
  samples : int;
  seed : int;
  series : series list;  (** CA; BL; PL; fail-stop *)
}

val run :
  ?pool:Msdq_par.Pool.t ->
  ?registry:Msdq_obs.Metrics.t ->
  ?progress:(figure:string -> completed:int -> total:int -> unit) ->
  ?samples:int ->
  ?seed:int ->
  ?cost:Cost.t ->
  ?drop:float ->
  ?inflate:float ->
  unit ->
  sweep
(** Availability levels 0.7, 0.8, 0.9, 0.95 and 1.0; [samples] (default 12)
    federation/query draws per level. [drop] (default 0.05) is the loss
    probability and [inflate] (default 1) the latency inflation factor of
    every site's incoming link on the faulty levels. At availability 1.0
    every schedule is {!Msdq_fault.Fault.none} whatever the link knobs, so
    that column doubles as the fault-free anchor: recall 1 everywhere. *)

val series_of : sweep -> string -> series
(** Raises [Not_found] when the sweep has no series with that label. *)

(** {1 The recovery sweep}

    Same grid and case generation as {!run}, but comparing the recovery
    policies on each faulty execution: retry-only
    ({!Msdq_exec.Recovery.disabled}), failover
    ({!Msdq_exec.Recovery.default}) and failover+hedging
    ({!Msdq_exec.Recovery.hedged} at 0.5 ms). One series per
    (strategy, mode) cell, labelled ["BL+failover"] etc. CA has no check
    round trips to re-route, so its three modes coincide — the flat CA
    triple is the control that recovery is a localized-strategy feature. *)

type rmode = Retry_only | Failover | Hedged

val rmodes : rmode list
(** [Retry_only]; [Failover]; [Hedged] — series order within a strategy. *)

val rmode_label : rmode -> string
(** ["retry"], ["failover"], ["hedged"]. *)

type rseries = {
  r_label : string;  (** ["<STRATEGY>+<mode>"], e.g. ["BL+failover"] *)
  r_responses : float array;  (** mean response per availability, seconds *)
  r_recalls : float array;  (** mean certain-set recall per availability *)
  r_demoted : float array;  (** mean demoted rows per availability *)
}

type recovery_sweep = {
  rid : string;  (** ["recovery-sweep"] *)
  rtitle : string;
  rxlabel : string;
  rxs : float array;  (** availability levels, same grid as {!run} *)
  rsamples : int;
  rseed : int;
  rseries : rseries list;  (** strategy-major: CA+retry .. PL+hedged *)
}

val run_recovery :
  ?pool:Msdq_par.Pool.t ->
  ?registry:Msdq_obs.Metrics.t ->
  ?progress:(figure:string -> completed:int -> total:int -> unit) ->
  ?samples:int ->
  ?seed:int ->
  ?cost:Cost.t ->
  ?drop:float ->
  ?inflate:float ->
  unit ->
  recovery_sweep
(** Unlike {!run}, the availability-1.0 column is {e not} fault-free: the
    schedule is {!Msdq_fault.Fault.random} at availability 1.0, i.e.
    lossy-link-only — sites never crash but messages still drop (default
    [drop] 0.2) — so that column isolates what failover buys against pure
    message loss. Deterministic for any [?pool] worker count, like
    {!run}. *)

val rseries_of : recovery_sweep -> string -> rseries
(** Raises [Not_found] when the sweep has no series with that label. *)
