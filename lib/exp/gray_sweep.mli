(** The gray-failure tolerance experiment: static vs telemetry-driven
    adaptive retry timeouts across the gray fault kinds.

    One dense synthetic federation and one BL query shape, served as a
    stream of [queries] jobs under each cell of a
    (policy x kind x severity) grid:

    {ul
    {- {e policy} — ["static"] (one conservative operator-sized fixed
       timeout, orders of magnitude above the adaptive ceiling) or
       ["adaptive"]
       ({!Msdq_exec.Strategy.default_adaptive} per-destination timeouts fed
       by a warmup run's recorded per-link latencies — the full telemetry
       loop through {!Run_report.record_serve_stats} and
       [Store.latency_of], not an oracle);}
    {- {e kind} — ["slowdown"] (CPU/disk stretch at the database sites),
       ["jitter"] (deterministic per-transfer latency draws), ["flap"]
       (rapid down/up outage trains), ["oneway"] (asymmetric outbound
       partitions: requests arrive, verdicts are lost);}
    {- {e severity} — ["mild"] or ["severe"] window coverage / factors.}}

    Every cell also carries a {!base_drop} lossy link, so retransmission
    waits exist for the timeout policy to act on.

    The win condition, recorded in the bench JSON's [gray_sweep] section
    ([msdq-bench/9]) and enforced by its validator: leg fates are
    timeout-independent by construction, so the adaptive arm must demote
    no more rows than the static arm on {e every} cell, and on the
    slowdown cells its mean response must undercut the static arm's by at
    least {!response_margin}.

    Every cell is a pure function of (seed, policy, kind, severity):
    running the grid on a {!Msdq_par.Pool} of any size yields
    bit-identical outcomes. *)

type point = {
  pt_policy : string;  (** ["static"] or ["adaptive"] *)
  pt_kind : string;  (** ["slowdown"], ["jitter"], ["flap"] or ["oneway"] *)
  pt_severity : string;  (** ["mild"] or ["severe"] *)
  pt_queries : int;
  pt_demoted_rows : int;
      (** rows reported as uncertified maybes because a gray fault ate a
          check leg, summed over the stream *)
  pt_abandoned_checks : int;
  pt_mean_ms : float;  (** mean served latency *)
  pt_p99_ms : float;
  pt_gray_sites : int;  (** [Fault.gray_sites] of the cell's schedule *)
}

type outcome = {
  id : string;
  title : string;
  seed : int;
  queries : int;  (** jobs per cell *)
  drop : float;  (** the shared baseline link loss *)
  static_timeout_ms : float;
      (** the static arm's fixed timeout (100 ms) *)
  kinds : string list;
  severities : string list;
  policies : string list;  (** [static; adaptive] *)
  points : point list;  (** policy-major, kind, then severity *)
}

val static_policy : string
val adaptive_policy : string
val policies : string list
val kinds : string list
val severities : string list

val base_drop : float
(** The lossy-link probability every cell shares (0.3). *)

val response_margin : float
(** The slowdown-cell response-time win margin the validator enforces
    (0.05 = adaptive mean must be at least 5% under static). *)

val run :
  ?pool:Msdq_par.Pool.t ->
  ?registry:Msdq_obs.Metrics.t ->
  ?progress:(figure:string -> completed:int -> total:int -> unit) ->
  ?queries:int ->
  ?seed:int ->
  ?cost:Msdq_exec.Cost.t ->
  unit ->
  outcome
(** Defaults: 12 queries per cell, seed 1996, Table-1 costs. [pool]
    parallelizes cells without changing the outcome. Raises
    [Invalid_argument] if the seed yields no analyzable query. *)

val point_of :
  outcome -> policy:string -> kind:string -> severity:string -> point option
