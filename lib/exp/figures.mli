(** The paper's experiments: Figures 9, 10 and 11 (each with an (a) total
    execution time and (b) response time panel), regenerated with the
    parametric simulator, plus a signature-filtering ablation (extension).

    Defaults follow the paper: 500 parameter draws per point, Table 1 cost
    constants, Table 2 parameter ranges.

    Every sweep reports progress as it goes: a [Logs] line at info level per
    completed point, an optional [progress] callback (the CLI's [--progress]
    renders it), and — when a [registry] is supplied — an
    [msdq_param_samples_total{figure,strategy}] counter so a run's sampling
    effort shows up in its metrics dump.

    With [?pool], the grid points of a sweep evaluate in parallel on the
    pool's domains. The emitted figures, registry counters and reports are
    bit-identical to the sequential path for any worker count — the grid
    merges in deterministic index order and every point draws from
    index-derived rng streams (see docs/PARALLELISM.md). Progress/log lines
    remain live and may interleave across points. *)

open Msdq_exec

type series = {
  strategy : Strategy.t;
  totals : float array;  (** average total execution time per x, seconds *)
  responses : float array;  (** average response time per x, seconds *)
}

type figure = {
  id : string;  (** e.g. "fig9" *)
  title : string;
  xlabel : string;
  xs : float array;
  series : series list;
}

val fig9 : ?pool:Msdq_par.Pool.t -> ?registry:Msdq_obs.Metrics.t ->
  ?progress:(figure:string -> completed:int -> total:int -> unit) ->
  ?samples:int -> ?seed:int -> ?cost:Cost.t -> unit -> figure
(** Varying the average number of objects per constituent class
    (1000..10000). *)

val fig10 : ?pool:Msdq_par.Pool.t -> ?registry:Msdq_obs.Metrics.t ->
  ?progress:(figure:string -> completed:int -> total:int -> unit) ->
  ?samples:int -> ?seed:int -> ?cost:Cost.t -> unit -> figure
(** Varying the number of component databases (2..8). *)

val fig11 : ?pool:Msdq_par.Pool.t -> ?registry:Msdq_obs.Metrics.t ->
  ?progress:(figure:string -> completed:int -> total:int -> unit) ->
  ?samples:int -> ?seed:int -> ?cost:Cost.t -> unit -> figure
(** Varying the selectivity of one local predicate (0.1..0.9), with
    N_o in 1000..2000 as in the paper. *)

val ablation_signatures : ?pool:Msdq_par.Pool.t -> ?registry:Msdq_obs.Metrics.t ->
  ?progress:(figure:string -> completed:int -> total:int -> unit) ->
  ?samples:int -> ?seed:int -> ?cost:Cost.t -> unit -> figure
(** Extension: BL/PL against their signature-filtered variants while varying
    the number of component databases. *)

val ablation_checks : ?pool:Msdq_par.Pool.t -> ?registry:Msdq_obs.Metrics.t ->
  ?progress:(figure:string -> completed:int -> total:int -> unit) ->
  ?samples:int -> ?seed:int -> ?cost:Cost.t -> unit -> figure
(** Extension: LO (localized without assistant checks) against BL and PL —
    the pure cost of phase O — while varying the number of databases. *)

val ablation_semijoin : ?pool:Msdq_par.Pool.t -> ?registry:Msdq_obs.Metrics.t ->
  ?progress:(figure:string -> completed:int -> total:int -> unit) ->
  ?samples:int -> ?seed:int -> ?cost:Cost.t -> unit -> figure
(** Extension: CF (semijoin-filtered centralized) against CA and BL while
    varying the local selectivity — the classic semijoin trade-off. *)

val all : ?pool:Msdq_par.Pool.t -> ?registry:Msdq_obs.Metrics.t ->
  ?progress:(figure:string -> completed:int -> total:int -> unit) ->
  ?samples:int -> ?seed:int -> ?cost:Cost.t -> unit -> figure list
(** [fig9; fig10; fig11; ablation-signatures; ablation-checks; ablation-semijoin]. *)

val series_of : figure -> Strategy.t -> series
(** Raises [Not_found] when the figure has no such series. *)
