open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload
open Msdq_serve
module Metrics = Msdq_obs.Metrics

let log_src = Logs.Src.create "msdq.exp.overload" ~doc:"overload-robustness sweep"

module Log = (val Logs.src_log log_src : Logs.LOG)

type point = {
  pt_policy : string;
  pt_multiplier : float;
  pt_offered : int;
  pt_admitted : int;
  pt_shed : int;
  pt_goodput : float;
  pt_deadline_hits : int;
  pt_hit_rate : float;
  pt_p50_ms : float;
  pt_p99_ms : float;
  pt_demoted_rows : int;
  pt_abandoned_checks : int;
}

type outcome = {
  id : string;
  title : string;
  seed : int;
  queries : int;
  queue_limit : int;
  solo_response_ms : float;
  deadline_ms : float;
  multipliers : float array;
  policies : string list;
  points : point list;
  cap_p99_ms : float;
}

(* The naive baseline row: unbounded queue, no deadline — what serving
   looked like before this PR. *)
let naive_policy = "naive"

let multipliers = [| 0.5; 1.0; 2.0; 3.0 |]

(* Deadline budget and shed threshold, as factors of the calibrated solo
   response. The budget sits below the 2x tail bound the validator
   enforces, so deadline truncation structurally caps admitted latency;
   the depth-2 queue admits at most one queued query behind the one in
   virtual service. *)
let deadline_factor = 1.8
let queue_limit = 2

(* Same dense single-case generation as the serve sweep: every database
   hosts every class, a quarter of the attributes missing, so BL issues
   real check round trips — the work deadlines abandon. *)
let rec make_case seed attempt =
  if attempt > 20 then None
  else
    let cfg =
      {
        Synth.default with
        Synth.seed = (seed * 37) + attempt;
        n_entities = 60;
        p_host = 1.0;
        p_attr_present = 0.75;
        p_null = 0.12;
        p_copy = 0.4;
      }
    in
    let fed = Synth.generate cfg in
    let rng = Rng.create ~seed:(seed + (attempt * 1013)) in
    let query = Synth.random_query rng cfg ~disjunctive:false in
    let schema = Global_schema.schema (Federation.global_schema fed) in
    match Analysis.analyze schema query with
    | analysis -> Some (fed, analysis)
    | exception Analysis.Error _ -> make_case seed (attempt + 1)

let percentile_ms lats_us p =
  match lats_us with
  | [] -> 0.0
  | l ->
      let s = Stats.summarize l in
      (match p with
      | `P50 -> s.Stats.p50_us
      | `P99 -> s.Stats.p99_us)
      /. 1000.0

(* One (policy, multiplier) cell: [queries] identical BL jobs spaced
   [solo / multiplier] apart. Pure in its arguments — the pool can run
   cells in any order on any number of domains without changing a bit of
   the outcome. *)
let point ~cost ~fed ~analysis ~queries ~solo_us ~deadline_us ~policy
    ~multiplier =
  let spacing = solo_us /. multiplier in
  let jobs =
    List.init queries (fun i ->
        {
          Serve.strategy = Strategy.Bl;
          analysis;
          arrival = Time.us (float_of_int i *. spacing);
          deadline = None;
        })
  in
  let base =
    {
      Serve.default_config with
      Serve.options = { Strategy.default_options with Strategy.cost };
      cache_bytes = 0;
      window = Time.zero;
    }
  in
  let cfg =
    if String.equal policy naive_policy then base
    else
      match Serve.shed_policy_of_string policy with
      | Error e -> invalid_arg ("Overload_sweep: " ^ e)
      | Ok p ->
          {
            base with
            Serve.deadline = Some (Time.us deadline_us);
            queue_limit = Some queue_limit;
            shed_policy = p;
          }
  in
  let out = Serve.run cfg fed jobs in
  let admitted = List.length out.Serve.reports in
  let lats_us =
    List.map (fun r -> Time.to_us r.Serve.latency) out.Serve.reports
  in
  let deadline_hits =
    List.length
      (List.filter
         (fun (r : Serve.query_report) ->
           r.Serve.deadline_demoted = 0
           && Time.to_us r.Serve.latency <= deadline_us)
         out.Serve.reports)
  in
  let demoted =
    List.fold_left
      (fun acc (r : Serve.query_report) -> acc + r.Serve.deadline_demoted)
      0 out.Serve.reports
  in
  let makespan_s = Time.to_s out.Serve.makespan in
  {
    pt_policy = policy;
    pt_multiplier = multiplier;
    pt_offered = queries;
    pt_admitted = admitted;
    pt_shed = List.length out.Serve.shed;
    pt_goodput =
      (if makespan_s > 0.0 then float_of_int admitted /. makespan_s else 0.0);
    pt_deadline_hits = deadline_hits;
    pt_hit_rate =
      (if admitted > 0 then
         float_of_int deadline_hits /. float_of_int admitted
       else 0.0);
    pt_p50_ms = percentile_ms lats_us `P50;
    pt_p99_ms = percentile_ms lats_us `P99;
    pt_demoted_rows = demoted;
    pt_abandoned_checks =
      Metrics.total out.Serve.registry "msdq_checks_abandoned_total";
  }

let policies =
  naive_policy :: List.map Serve.shed_policy_to_string Serve.shed_policies

let run ?pool ?registry ?progress ?(queries = 16) ?(seed = 1996)
    ?(cost = Cost.default) () =
  let id = "overload-sweep" in
  match make_case seed 0 with
  | None -> invalid_arg "Overload_sweep: no analyzable case for this seed"
  | Some (fed, analysis) ->
      (* Calibrate capacity: the realized solo response of one served BL
         query is the service time offered load is measured against. *)
      let solo_out =
        Serve.run
          {
            Serve.default_config with
            Serve.options = { Strategy.default_options with Strategy.cost };
            cache_bytes = 0;
            window = Time.zero;
          }
          fed
          [
            {
              Serve.strategy = Strategy.Bl;
              analysis;
              arrival = Time.zero;
              deadline = None;
            };
          ]
      in
      let solo_us =
        match solo_out.Serve.reports with
        | [ r ] -> Time.to_us r.Serve.latency
        | _ -> invalid_arg "Overload_sweep: calibration run lost its query"
      in
      let deadline_us = deadline_factor *. solo_us in
      let grid =
        Array.of_list
          (List.concat_map
             (fun policy ->
               Array.to_list
                 (Array.map (fun m -> (policy, m)) multipliers))
             policies)
      in
      let total = Array.length grid in
      let completed = Atomic.make 0 in
      let feedback_mutex = Mutex.create () in
      let cell (policy, multiplier) =
        let r =
          point ~cost ~fed ~analysis ~queries ~solo_us ~deadline_us ~policy
            ~multiplier
        in
        let done_now = 1 + Atomic.fetch_and_add completed 1 in
        Mutex.lock feedback_mutex;
        Log.info (fun m ->
            m "%s: %s x%.1f done (%d/%d): p99 %.1f ms, %d/%d admitted" id
              policy multiplier done_now total r.pt_p99_ms r.pt_admitted
              queries);
        (match progress with
        | Some f -> f ~figure:id ~completed:done_now ~total
        | None -> ());
        Mutex.unlock feedback_mutex;
        r
      in
      let points =
        match pool with
        | Some pool when Msdq_par.Pool.jobs pool > 1 ->
            Array.to_list
              (Msdq_par.Pool.map_array pool ~f:(fun _ g -> cell g) grid)
        | Some _ | None -> Array.to_list (Array.map cell grid)
      in
      let cap_p99_ms =
        match
          List.find_opt
            (fun p ->
              String.equal p.pt_policy
                (Serve.shed_policy_to_string Serve.Reject_newest)
              && p.pt_multiplier = 1.0)
            points
        with
        | Some p -> p.pt_p99_ms
        | None -> 0.0
      in
      (match registry with
      | Some reg ->
          Metrics.inc
            (Metrics.counter reg
               ~labels:[ ("figure", id) ]
               "msdq_overload_points_total")
            total
      | None -> ());
      {
        id;
        title = "Goodput and tail latency vs offered load and shed policy";
        seed;
        queries;
        queue_limit;
        solo_response_ms = solo_us /. 1000.0;
        deadline_ms = deadline_us /. 1000.0;
        multipliers;
        policies;
        points;
        cap_p99_ms;
      }

let points_of outcome policy =
  List.filter (fun p -> String.equal p.pt_policy policy) outcome.points
