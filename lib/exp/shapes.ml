open Msdq_exec

let get = Figures.series_of

let every2 f a b =
  let ok = ref true in
  Array.iteri (fun i x -> if not (f x b.(i)) then ok := false) a;
  !ok

let slope (s : float array) =
  (* last/first ratio: >1 means growing *)
  if Array.length s = 0 || s.(0) = 0.0 then 1.0
  else s.(Array.length s - 1) /. s.(0)

let check_fig9 fig =
  let ca = get fig Strategy.Ca
  and bl = get fig Strategy.Bl
  and pl = get fig Strategy.Pl in
  [
    ("fig9a: BL total < CA total at every point", every2 ( < ) bl.Figures.totals ca.Figures.totals);
    ("fig9a: PL total < CA total at every point", every2 ( < ) pl.Figures.totals ca.Figures.totals);
    ("fig9a: BL total <= PL total at every point", every2 ( <= ) bl.Figures.totals pl.Figures.totals);
    ( "fig9b: BL response well below CA response (< 2/3)",
      every2 (fun b c -> b < 0.667 *. c) bl.Figures.responses ca.Figures.responses );
    ( "fig9b: PL response well below CA response (< 2/3)",
      every2 (fun p c -> p < 0.667 *. c) pl.Figures.responses ca.Figures.responses );
  ]

let check_fig10 fig =
  let ca = get fig Strategy.Ca
  and bl = get fig Strategy.Bl
  and pl = get fig Strategy.Pl in
  let last = Array.length fig.Figures.xs - 1 in
  [
    ( "fig10a: BL total grows faster than CA total",
      slope bl.Figures.totals > slope ca.Figures.totals );
    ( "fig10a: PL total grows faster than CA total",
      slope pl.Figures.totals > slope ca.Figures.totals );
    ( "fig10a: PL total passes CA total at many databases",
      pl.Figures.totals.(last) > ca.Figures.totals.(last) );
    ( "fig10a: BL total < PL total at every point",
      every2 ( <= ) bl.Figures.totals pl.Figures.totals );
    ( "fig10b: BL response < CA response at every point",
      every2 ( < ) bl.Figures.responses ca.Figures.responses );
    ( "fig10b: PL response < CA response at every point",
      every2 ( < ) pl.Figures.responses ca.Figures.responses );
  ]

let check_fig11 fig =
  let ca = get fig Strategy.Ca
  and bl = get fig Strategy.Bl
  and pl = get fig Strategy.Pl in
  let flat s = slope s < 1.05 && slope s > 0.95 in
  [
    ("fig11a: CA total flat in the selectivity", flat ca.Figures.totals);
    ("fig11b: CA response flat in the selectivity", flat ca.Figures.responses);
    ("fig11a: BL total increases with the selectivity", slope bl.Figures.totals > 1.1);
    ("fig11a: PL total increases with the selectivity", slope pl.Figures.totals > 1.05);
    ( "fig11a: BL grows faster than PL",
      slope bl.Figures.totals > slope pl.Figures.totals );
  ]

let check_ablation fig =
  let bl = get fig Strategy.Bl
  and bls = get fig Strategy.Bls
  and pl = get fig Strategy.Pl
  and pls = get fig Strategy.Pls in
  let last = Array.length fig.Figures.xs - 1 in
  [
    ( "ablation: BLS total <= BL total at every point",
      every2 ( <= ) bls.Figures.totals bl.Figures.totals );
    ( "ablation: PLS total <= PL total at every point",
      every2 ( <= ) pls.Figures.totals pl.Figures.totals );
    ( "ablation: signatures help PL at many databases",
      pls.Figures.totals.(last) < pl.Figures.totals.(last) );
  ]

let check_ablation_checks fig =
  let lo = get fig Strategy.Lo
  and bl = get fig Strategy.Bl
  and pl = get fig Strategy.Pl in
  [
    ( "ablation: LO total <= BL total at every point",
      every2 ( <= ) lo.Figures.totals bl.Figures.totals );
    ( "ablation: LO total <= PL total at every point",
      every2 ( <= ) lo.Figures.totals pl.Figures.totals );
    ( "ablation: checking overhead grows with databases (BL-LO gap widens)",
      let gap i = bl.Figures.totals.(i) -. lo.Figures.totals.(i) in
      gap (Array.length fig.Figures.xs - 1) > gap 0 );
  ]

let check_ablation_semijoin fig =
  let ca = get fig Strategy.Ca
  and cf = get fig Strategy.Cf
  and bl = get fig Strategy.Bl in
  let last = Array.length fig.Figures.xs - 1 in
  [
    ( "semijoin: CF total < CA total at low selectivity",
      cf.Figures.totals.(0) < ca.Figures.totals.(0) );
    ( "semijoin: CF total grows with selectivity",
      cf.Figures.totals.(last) > cf.Figures.totals.(0) );
    ( "semijoin: BL total <= CF total at every point (no second data round)",
      every2 ( <= ) bl.Figures.totals cf.Figures.totals );
  ]

let check fig =
  match fig.Figures.id with
  | "fig9" -> check_fig9 fig
  | "fig10" -> check_fig10 fig
  | "fig11" -> check_fig11 fig
  | "ablation-signatures" -> check_ablation fig
  | "ablation-checks" -> check_ablation_checks fig
  | "ablation-semijoin" -> check_ablation_semijoin fig
  | other -> [ (Printf.sprintf "unknown figure %s" other, false) ]

let all_hold checks = List.for_all snd checks
