open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload
open Msdq_serve
module Metrics = Msdq_obs.Metrics

let log_src = Logs.Src.create "msdq.exp.serve" ~doc:"workload-engine sweep"

module Log = (val Logs.src_log log_src : Logs.LOG)

type series = {
  label : string;
  strategy : string;
  window_us : float;
  throughputs : float array;
  speedups : float array;
  hits : float array;
}

type sweep = {
  id : string;
  title : string;
  xlabel : string;
  xs : float array;
  windows_us : float array;
  queries : int;
  samples : int;
  seed : int;
  series : series list;
}

let strategies = [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]
let cache_bytes_grid = [| 0; 16 * 1024; 256 * 1024; 4 * 1024 * 1024 |]
let windows_us = [| 0.0; 500.0 |]

(* Same dense case generation as the fault sweep: every database hosts
   every class, a quarter of the attributes are missing, so the workloads
   actually read extents and issue checks — the work caching can share. *)
let rec make_case seed attempt =
  if attempt > 20 then None
  else
    let cfg =
      {
        Synth.default with
        Synth.seed = (seed * 37) + attempt;
        n_entities = 60;
        p_host = 1.0;
        p_attr_present = 0.75;
        p_null = 0.12;
        p_copy = 0.4;
      }
    in
    let fed = Synth.generate cfg in
    let rng = Rng.create ~seed:(seed + (attempt * 1013)) in
    let query = Synth.random_query rng cfg ~disjunctive:false in
    let schema = Global_schema.schema (Federation.global_schema fed) in
    match Analysis.analyze schema query with
    | analysis -> Some (fed, analysis)
    | exception Analysis.Error _ -> make_case seed (attempt + 1)

type cell = { throughput : float; makespan_s : float; hits_per_query : float }

(* One sample: every (strategy, window, cache) cell over one workload. The
   returned array is strategy-major, window-minor, cache-innermost. *)
let point ~seed ~cost ~queries ~si =
  let n_cache = Array.length cache_bytes_grid in
  let n_cells = List.length strategies * Array.length windows_us * n_cache in
  let case =
    make_case (Rng.int (Rng.split_ix (Rng.create ~seed) ~i:si) ~bound:100_000) 0
  in
  match case with
  | None ->
      Array.make n_cells { throughput = 0.0; makespan_s = 0.0; hits_per_query = 0.0 }
  | Some (fed, analysis) ->
      let options = { Strategy.default_options with Strategy.cost } in
      let cells = ref [] in
      List.iter
        (fun s ->
          Array.iter
            (fun w ->
              Array.iter
                (fun cache_bytes ->
                  let cfg =
                    {
                      Serve.default_config with
                      Serve.options;
                      cache_bytes;
                      window = Time.us w;
                    }
                  in
                  let jobs =
                    List.init queries (fun i ->
                        {
                          Serve.strategy = s;
                          analysis;
                          arrival = Time.us (float_of_int i *. 500.0);
                          deadline = None;
                        })
                  in
                  let out = Serve.run cfg fed jobs in
                  let hits =
                    List.fold_left
                      (fun acc r ->
                        acc + r.Serve.extent_hits + r.Serve.verdict_hits)
                      0 out.Serve.reports
                  in
                  cells :=
                    {
                      throughput = out.Serve.throughput;
                      makespan_s = Time.to_s out.Serve.makespan;
                      hits_per_query = float_of_int hits /. float_of_int queries;
                    }
                    :: !cells)
                cache_bytes_grid)
            windows_us)
        strategies;
      Array.of_list (List.rev !cells)

let run ?pool ?registry ?progress ?(samples = 4) ?(queries = 6) ?(seed = 1996)
    ?(cost = Cost.default) () =
  let id = "serve-sweep" in
  let completed = Atomic.make 0 in
  let feedback_mutex = Mutex.create () in
  let point_at si =
    let r = point ~seed ~cost ~queries ~si in
    let done_now = 1 + Atomic.fetch_and_add completed 1 in
    Mutex.lock feedback_mutex;
    Log.info (fun m -> m "%s: sample %d done (%d/%d)" id si done_now samples);
    (match progress with
    | Some f -> f ~figure:id ~completed:done_now ~total:samples
    | None -> ());
    Mutex.unlock feedback_mutex;
    r
  in
  let grid = Array.init samples (fun i -> i) in
  let results =
    match pool with
    | Some pool when Msdq_par.Pool.jobs pool > 1 ->
        Msdq_par.Pool.map_array pool ~f:(fun si _ -> point_at si) grid
    | Some _ | None -> Array.map point_at grid
  in
  (match registry with
  | Some reg ->
      Metrics.inc
        (Metrics.counter reg ~labels:[ ("figure", id) ] "msdq_serve_samples_total")
        samples
  | None -> ());
  let n_cache = Array.length cache_bytes_grid in
  let n_win = Array.length windows_us in
  let mean f cell_idx =
    Array.fold_left (fun acc sample -> acc +. f sample.(cell_idx)) 0.0 results
    /. float_of_int samples
  in
  let series =
    List.concat
      (List.mapi
         (fun s_i s ->
           List.init n_win (fun w_i ->
               let base = ((s_i * n_win) + w_i) * n_cache in
               let throughputs =
                 Array.init n_cache (fun c_i ->
                     mean (fun c -> c.throughput) (base + c_i))
               in
               let hits =
                 Array.init n_cache (fun c_i ->
                     mean (fun c -> c.hits_per_query) (base + c_i))
               in
               (* mean per-sample warm-over-cold ratio, not ratio of means:
                  each sample is its own cold anchor *)
               let speedups =
                 Array.init n_cache (fun c_i ->
                     Array.fold_left
                       (fun acc sample ->
                         let cold = sample.(base).makespan_s in
                         let warm = sample.(base + c_i).makespan_s in
                         acc +. (if warm > 0.0 then cold /. warm else 1.0))
                       0.0 results
                     /. float_of_int samples)
               in
               {
                 label =
                   Printf.sprintf "%s w=%.0fus" (Strategy.to_string s)
                     windows_us.(w_i);
                 strategy = Strategy.to_string s;
                 window_us = windows_us.(w_i);
                 throughputs;
                 speedups;
                 hits;
               }))
         strategies)
  in
  {
    id;
    title = "Workload throughput vs cache capacity and admission window";
    xlabel = "cache capacity (KiB)";
    xs = Array.map (fun b -> float_of_int b /. 1024.0) cache_bytes_grid;
    windows_us;
    queries;
    samples;
    seed;
    series;
  }

let series_of sweep label =
  List.find (fun s -> String.equal s.label label) sweep.series
