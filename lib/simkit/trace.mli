(** Optional event trace of a simulation run, for debugging and reports. *)

type entry = {
  tid : int;
  label : string;
  site : int option;  (** [None] for fences/delays, which occupy no resource *)
  kind : Resource.kind option;
  start : Time.t;
  finish : Time.t;
  deps : int list;
      (** tids of the tasks this one waited for (its span parents): the
          causal edges that turn the flat entry list into one tree per
          query, exported as Chrome flow events and consumed by
          [Telemetry.Critical_path] *)
  attrs : (string * string) list;
      (** free-form attribution (strategy, phase, database) carried through
          to exporters; empty unless the submitter tagged the task *)
}

type t

val create : enabled:bool -> t

val enabled : t -> bool

val add : t -> entry -> unit

val addf : t -> (unit -> entry) -> unit
(** Lazy {!add}: the thunk is only invoked — and the entry only allocated —
    when the trace is enabled. Use this on hot paths so disabled-trace runs
    pay nothing. *)

val entries : t -> entry list
(** In completion order. *)

val pp : Format.formatter -> t -> unit
