(** Optional event trace of a simulation run, for debugging and reports. *)

type entry = {
  tid : int;
  label : string;
  site : int option;  (** [None] for fences/delays, which occupy no resource *)
  kind : Resource.kind option;
  start : Time.t;
  finish : Time.t;
}

type t

val create : enabled:bool -> t

val enabled : t -> bool

val add : t -> entry -> unit

val entries : t -> entry list
(** In completion order. *)

val pp : Format.formatter -> t -> unit
