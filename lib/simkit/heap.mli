(** Binary min-heap keyed by a float priority, with FIFO tie-breaking.

    This is the event queue of the discrete-event engine: events with equal
    timestamps are delivered in insertion order, which makes simulations
    deterministic. Priorities, sequence numbers and payloads live in
    parallel flat arrays (the priority array keeps its floats unboxed), so
    a push at capacity allocates nothing. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> priority:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Removes and returns the entry with the smallest priority; among equal
    priorities, the one pushed first. *)

val peek_priority : 'a t -> float option

val clear : 'a t -> unit
