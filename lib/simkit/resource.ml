type kind = Cpu | Disk | Link

let all_kinds = [ Cpu; Disk; Link ]

let kind_to_string = function
  | Cpu -> "cpu"
  | Disk -> "disk"
  | Link -> "link"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let equal_kind (a : kind) (b : kind) = a = b
