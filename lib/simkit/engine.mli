(** Discrete-event engine over dynamic task graphs.

    A simulation is a set of {e tasks}. A task occupies one resource of one
    site for a fixed duration ({!task}), models a network transfer into a
    site ({!transfer} occupies the destination's incoming link), or is a
    zero-width synchronization point ({!fence}) or pure delay ({!delay}).

    Tasks become eligible when all their dependencies have finished, then
    queue FIFO at their resource. Completion callbacks run at the task's
    finish instant and may submit further tasks, so executors can build the
    graph dynamically as data becomes available — this is how the concrete
    CA/BL/PL strategies compute real answers while being charged simulated
    time.

    Runs are deterministic: simultaneous events fire in submission order. *)

type t

type handle
(** Identifies a submitted task. *)

val create : ?trace:bool -> unit -> t
(** A fresh engine with clock at zero. Sites are implicit: any non-negative
    integer used as a site id materializes its resources on first use. *)

val set_speed : t -> site:int -> kind:Resource.kind -> factor:float -> unit
(** Heterogeneous hardware: a resource with factor [f] executes tasks [f]
    times faster (durations divide by [f]; [f < 1] models a straggler).
    Applies to tasks that {e start} after the call. Raises
    [Invalid_argument] on non-positive or non-finite factors. *)

val now : t -> Time.t
(** Current simulated time. Outside [run] this is the time of the last
    processed event. *)

val task :
  t -> ?deps:handle list -> ?on_complete:(unit -> unit) ->
  ?attrs:(string * string) list -> site:int -> kind:Resource.kind ->
  label:string -> duration:Time.t -> unit -> handle
(** Occupies [kind] at [site] for [duration] once all [deps] have finished.
    [attrs] is free-form attribution (strategy, phase, database) copied onto
    the task's trace entry; it costs nothing when tracing is disabled.
    Raises [Invalid_argument] on a negative or non-finite duration. *)

val transfer :
  t -> ?deps:handle list -> ?on_complete:(unit -> unit) ->
  ?attrs:(string * string) list -> src:int -> dst:int -> label:string ->
  duration:Time.t -> unit -> handle
(** A network transfer from [src] to [dst]: occupies [dst]'s incoming link
    for [duration]. A transfer between a site and itself costs nothing (local
    data never crosses the network) and degenerates to a fence. *)

val fence :
  t -> ?deps:handle list -> ?on_complete:(unit -> unit) ->
  ?attrs:(string * string) list -> label:string -> unit -> handle
(** Completes as soon as all [deps] have finished, consuming no resource. *)

val delay :
  t -> ?deps:handle list -> ?on_complete:(unit -> unit) ->
  ?attrs:(string * string) list -> label:string -> duration:Time.t -> unit ->
  handle
(** Like {!fence} but finishes [duration] after becoming eligible, without
    occupying any resource. *)

val finished : t -> handle -> bool

val finish_time : t -> handle -> Time.t
(** Raises [Invalid_argument] if the task has not finished. *)

exception Stuck of string list
(** Raised by {!run} when the event queue drains while tasks remain
    unfinished — i.e. the dependency graph has a cycle or a dependency on a
    task that was never made eligible. Carries the labels of stuck tasks. *)

val run : t -> unit
(** Processes events until quiescence. May be called again after submitting
    more tasks; the clock keeps advancing monotonically. *)

val stats : t -> Stats.t

val trace : t -> Trace.t
