(** Discrete-event engine over dynamic task graphs.

    A simulation is a set of {e tasks}. A task occupies one resource of one
    site for a fixed duration ({!task}), models a network transfer into a
    site ({!transfer} occupies the destination's incoming link), or is a
    zero-width synchronization point ({!fence}) or pure delay ({!delay}).

    Tasks become eligible when all their dependencies have finished, then
    queue FIFO at their resource. Completion callbacks run at the task's
    finish instant and may submit further tasks, so executors can build the
    graph dynamically as data becomes available — this is how the concrete
    CA/BL/PL strategies compute real answers while being charged simulated
    time.

    {b Fault injection.} An installed {!judge} inspects every resource task
    as it starts and may stretch its duration (latency inflation on a lossy
    link) or doom it. A doomed task occupies its resource for the full
    stretched duration and completes {!Dropped} at its would-be finish time
    — the sender only learns of the loss then, exactly like a lost message
    under a timeout. Dropped tasks still unblock their dependents; the
    failure travels through [on_outcome], and retry chains are modelled as
    fresh tasks submitted from those callbacks (see {!Msdq_fault.Fault}).

    Runs are deterministic: simultaneous events fire in submission order. *)

type t

type handle
(** Identifies a submitted task. *)

type outcome =
  | Delivered  (** the task finished normally *)
  | Dropped of string  (** doomed by the fault judge; carries the reason *)

type decision = {
  fault_duration : Time.t;
      (** effective duration, e.g. the original stretched by a lossy link's
          inflation factor *)
  fault_drop : string option;
      (** [Some reason] dooms the task: it completes [Dropped reason] *)
}

type judge =
  site:int ->
  kind:Resource.kind ->
  src:int option ->
  label:string ->
  start:Time.t ->
  duration:Time.t ->
  decision option
(** Consulted when a resource task starts ([duration] is already scaled by
    the site's speed factor). [src] is the sending site for tasks submitted
    through {!transfer} (so a judge can model one-way partitions out of a
    site) and [None] for every other task. [None] leaves the task
    untouched. *)

val create : ?trace:bool -> unit -> t
(** A fresh engine with clock at zero. Sites are implicit: any non-negative
    integer used as a site id materializes its resources on first use. *)

val set_judge : t -> judge -> unit
(** Installs the fault judge. Applies to tasks that {e start} after the
    call. *)

val set_speed : t -> site:int -> kind:Resource.kind -> factor:float -> unit
(** Heterogeneous hardware: a resource with factor [f] executes tasks [f]
    times faster (durations divide by [f]; [f < 1] models a straggler).
    Applies to tasks that {e start} after the call. Raises
    [Invalid_argument] on non-positive or non-finite factors. *)

val now : t -> Time.t
(** Current simulated time. Outside [run] this is the time of the last
    processed event. *)

val task :
  t -> ?deps:handle list -> ?on_complete:(unit -> unit) ->
  ?on_outcome:(outcome -> unit) -> ?attrs:(string * string) list ->
  site:int -> kind:Resource.kind -> label:string -> duration:Time.t -> unit ->
  handle
(** Occupies [kind] at [site] for [duration] once all [deps] have finished.
    [attrs] is free-form attribution (strategy, phase, database) copied onto
    the task's trace entry; it costs nothing when tracing is disabled.
    [on_outcome] runs at completion with the task's {!outcome} — the
    failable-task API. Raises [Invalid_argument] on a negative or
    non-finite duration. *)

val transfer :
  t -> ?deps:handle list -> ?on_complete:(unit -> unit) ->
  ?on_outcome:(outcome -> unit) -> ?attrs:(string * string) list ->
  src:int -> dst:int -> label:string -> duration:Time.t -> unit -> handle
(** A network transfer from [src] to [dst]: occupies [dst]'s incoming link
    for [duration]. A transfer between a site and itself costs nothing (local
    data never crosses the network), degenerates to a fence and can never be
    dropped. *)

val fence :
  t -> ?deps:handle list -> ?on_complete:(unit -> unit) ->
  ?attrs:(string * string) list -> label:string -> unit -> handle
(** Completes as soon as all [deps] have finished, consuming no resource. *)

val delay :
  t -> ?deps:handle list -> ?on_complete:(unit -> unit) ->
  ?attrs:(string * string) list -> label:string -> duration:Time.t -> unit ->
  handle
(** Like {!fence} but finishes [duration] after becoming eligible, without
    occupying any resource. *)

val promise : t -> label:string -> handle
(** A join point with no pre-declared dependencies: stays pending until
    {!resolve} is called, then completes instantly at the current clock.
    Lets a retry chain of unknown length gate downstream tasks — submit the
    dependents against the promise, resolve it from the callback that ends
    the chain. An unresolved promise makes {!run} raise {!Stuck}. *)

val resolve : t -> handle -> unit
(** Completes a {!promise} at the current simulated time. Raises
    [Invalid_argument] if the handle is not a promise or was already
    resolved. *)

val finished : t -> handle -> bool

val finish_time : t -> handle -> Time.t
(** Raises [Invalid_argument] if the task has not finished. *)

val outcome_of : t -> handle -> outcome
(** Raises [Invalid_argument] if the task has not finished. *)

exception Stuck of string list
(** Raised by {!run} when the event queue drains while tasks remain
    unfinished — i.e. the dependency graph has a cycle, a dependency was
    never made eligible, or a {!promise} was never resolved. Each entry
    describes one stuck task: its label and site plus the labels and sites
    of the unmet dependencies it is awaiting (or that it is an unresolved
    promise), so the culprit of a deadlock is named, not just the victim. *)

val run : t -> unit
(** Processes events until quiescence. May be called again after submitting
    more tasks; the clock keeps advancing monotonically. *)

val stats : t -> Stats.t

val trace : t -> Trace.t
