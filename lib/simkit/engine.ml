type where =
  | On of int * Resource.kind  (* occupies a resource of a site *)
  | Nowhere                    (* fence or pure delay *)

type state =
  | Blocked of int  (* number of unfinished dependencies *)
  | Queued
  | Running
  | Finished

type task = {
  tid : int;
  label : string;
  where : where;
  attrs : (string * string) list;
  mutable duration : Time.t;
  mutable state : state;
  mutable dependents : task list;
  mutable callbacks : (unit -> unit) list;  (* reversed registration order *)
  mutable start_time : Time.t;
  mutable finish_time : Time.t;
}

type handle = task

(* One FIFO resource instance: at most one running task, the rest queued. *)
type rsrc = { mutable current : task option; waiting : task Queue.t }

type t = {
  mutable clock : Time.t;
  events : task Heap.t;  (* completion events, keyed by finish time *)
  resources : (int * Resource.kind, rsrc) Hashtbl.t;
  speeds : (int * Resource.kind, float) Hashtbl.t;
  stats : Stats.t;
  trace : Trace.t;
  mutable next_tid : int;
  mutable unfinished : int;
}

exception Stuck of string list

let create ?(trace = false) () =
  {
    clock = Time.zero;
    events = Heap.create ();
    resources = Hashtbl.create 16;
    speeds = Hashtbl.create 8;
    stats = Stats.create ();
    trace = Trace.create ~enabled:trace;
    next_tid = 0;
    unfinished = 0;
  }

let now t = t.clock
let stats t = t.stats
let trace t = t.trace

let set_speed t ~site ~kind ~factor =
  if not (Float.is_finite factor) || factor <= 0.0 then
    invalid_arg "Engine.set_speed: factor must be positive and finite";
  Hashtbl.replace t.speeds (site, kind) factor

let speed_of t task =
  match task.where with
  | Nowhere -> 1.0
  | On (site, kind) -> (
    match Hashtbl.find_opt t.speeds (site, kind) with
    | Some f -> f
    | None -> 1.0)

let resource t site kind =
  match Hashtbl.find_opt t.resources (site, kind) with
  | Some r -> r
  | None ->
    let r = { current = None; waiting = Queue.create () } in
    Hashtbl.add t.resources (site, kind) r;
    r

(* Schedules the completion event of [task], which starts right now. The
   site's speed factor scales the effective duration; the scaled duration is
   what the statistics account (it is the time the resource is busy). *)
let start t task =
  task.state <- Running;
  task.start_time <- t.clock;
  let factor = speed_of t task in
  if factor <> 1.0 then task.duration <- Time.us (Time.to_us task.duration /. factor);
  let finish = Time.add t.clock task.duration in
  task.finish_time <- finish;
  Heap.push t.events ~priority:finish task

(* Called when all dependencies of [task] are finished: either grab the
   resource immediately or join its FIFO queue. *)
let activate t task =
  match task.where with
  | Nowhere -> start t task
  | On (site, kind) ->
    let r = resource t site kind in
    (match r.current with
    | None ->
      r.current <- Some task;
      start t task
    | Some _ ->
      task.state <- Queued;
      Queue.add task r.waiting)

let submit t ?(deps = []) ?on_complete ?(attrs = []) ~where ~label ~duration () =
  if not (Time.is_finite duration) || duration < Time.zero then
    invalid_arg
      (Printf.sprintf "Engine: task %S has invalid duration %g" label duration);
  let task =
    {
      tid = t.next_tid;
      label;
      where;
      attrs;
      duration;
      state = Blocked 0;
      dependents = [];
      callbacks = (match on_complete with None -> [] | Some f -> [ f ]);
      start_time = Time.zero;
      finish_time = Time.zero;
    }
  in
  t.next_tid <- t.next_tid + 1;
  t.unfinished <- t.unfinished + 1;
  let pending =
    List.fold_left
      (fun n dep ->
        match dep.state with
        | Finished -> n
        | Blocked _ | Queued | Running ->
          dep.dependents <- task :: dep.dependents;
          n + 1)
      0 deps
  in
  if pending = 0 then activate t task else task.state <- Blocked pending;
  task

let task t ?deps ?on_complete ?attrs ~site ~kind ~label ~duration () =
  submit t ?deps ?on_complete ?attrs ~where:(On (site, kind)) ~label ~duration ()

let transfer t ?deps ?on_complete ?attrs ~src ~dst ~label ~duration () =
  if src = dst then
    submit t ?deps ?on_complete ?attrs ~where:Nowhere ~label ~duration:Time.zero ()
  else
    submit t ?deps ?on_complete ?attrs ~where:(On (dst, Resource.Link)) ~label
      ~duration ()

let fence t ?deps ?on_complete ?attrs ~label () =
  submit t ?deps ?on_complete ?attrs ~where:Nowhere ~label ~duration:Time.zero ()

let delay t ?deps ?on_complete ?attrs ~label ~duration () =
  submit t ?deps ?on_complete ?attrs ~where:Nowhere ~label ~duration ()

let finished _t task = task.state = Finished

let finish_time _t task =
  match task.state with
  | Finished -> task.finish_time
  | Blocked _ | Queued | Running ->
    invalid_arg (Printf.sprintf "Engine.finish_time: task %S not finished" task.label)

let complete t task =
  task.state <- Finished;
  t.unfinished <- t.unfinished - 1;
  (match task.where with
  | On (site, kind) ->
    Stats.record t.stats ~site ~kind ~label:task.label ~duration:task.duration
      ~finish:task.finish_time;
    Trace.addf t.trace (fun () ->
        {
          Trace.tid = task.tid;
          label = task.label;
          site = Some site;
          kind = Some kind;
          start = task.start_time;
          finish = task.finish_time;
          attrs = task.attrs;
        });
    (* Hand the resource to the next queued task. *)
    let r = resource t site kind in
    r.current <- None;
    (match Queue.take_opt r.waiting with
    | None -> ()
    | Some next ->
      r.current <- Some next;
      start t next)
  | Nowhere ->
    Stats.record_fence t.stats ~finish:task.finish_time;
    Trace.addf t.trace (fun () ->
        {
          Trace.tid = task.tid;
          label = task.label;
          site = None;
          kind = None;
          start = task.start_time;
          finish = task.finish_time;
          attrs = task.attrs;
        }));
  (* Unblock dependents in submission order (they were consed in reverse). *)
  let dependents = List.rev task.dependents in
  task.dependents <- [];
  let unblock dep =
    match dep.state with
    | Blocked 1 -> activate t dep
    | Blocked n -> dep.state <- Blocked (n - 1)
    | Queued | Running | Finished -> assert false
  in
  List.iter unblock dependents;
  List.iter (fun f -> f ()) (List.rev task.callbacks)

let rec drain t =
  match Heap.pop t.events with
  | None -> ()
  | Some (finish, task) ->
    t.clock <- Time.max t.clock finish;
    complete t task;
    drain t

(* Collects the labels of tasks that can never finish, for error reporting.
   We only know them through resource queues and dependents, so walk the
   resources; blocked tasks hanging off finished deps are unreachable here,
   hence the generic message fallback. *)
let stuck_labels t =
  let labels = ref [] in
  Hashtbl.iter
    (fun _ r ->
      (match r.current with Some task -> labels := task.label :: !labels | None -> ());
      Queue.iter (fun task -> labels := task.label :: !labels) r.waiting)
    t.resources;
  if !labels = [] then [ Printf.sprintf "%d task(s) blocked on unfinished dependencies" t.unfinished ]
  else !labels

let run t =
  drain t;
  if t.unfinished > 0 then raise (Stuck (stuck_labels t))
