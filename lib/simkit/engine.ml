type where =
  | On of int * Resource.kind  (* occupies a resource of a site *)
  | Nowhere                    (* fence or pure delay *)

type state =
  | Blocked of int  (* number of unfinished dependencies *)
  | Queued
  | Running
  | Finished

type outcome = Delivered | Dropped of string

type task = {
  tid : int;
  label : string;
  where : where;
  src : int option;  (* sending site, for transfers; judges see it *)
  attrs : (string * string) list;
  mutable duration : Time.t;
  mutable state : state;
  mutable dependents : task list;
  mutable callbacks : (unit -> unit) list;  (* reversed registration order *)
  mutable outcome_callbacks : (outcome -> unit) list;
  mutable start_time : Time.t;
  mutable finish_time : Time.t;
  mutable drop : string option;  (* set by the fault judge at start time *)
  mutable awaiting : task list;  (* unfinished deps, for stuck diagnostics *)
  mutable dep_tids : int list;  (* causal parents, for the trace *)
  is_promise : bool;
}

type handle = task

type decision = { fault_duration : Time.t; fault_drop : string option }

type judge =
  site:int ->
  kind:Resource.kind ->
  src:int option ->
  label:string ->
  start:Time.t ->
  duration:Time.t ->
  decision option

(* One FIFO resource instance: at most one running task, the rest queued. *)
type rsrc = { mutable current : task option; waiting : task Queue.t }

type t = {
  mutable clock : Time.t;
  events : task Heap.t;  (* completion events, keyed by finish time *)
  resources : (int * Resource.kind, rsrc) Hashtbl.t;
  speeds : (int * Resource.kind, float) Hashtbl.t;
  stats : Stats.t;
  trace : Trace.t;
  mutable next_tid : int;
  mutable unfinished : int;
  live : (int, task) Hashtbl.t;  (* every unfinished task, by tid *)
  mutable judge : judge option;
  mutable completing : int option;
      (* tid of the task whose completion callbacks are running: a promise
         resolved from inside one inherits it as its causal parent *)
}

exception Stuck of string list

let create ?(trace = false) () =
  {
    clock = Time.zero;
    events = Heap.create ();
    resources = Hashtbl.create 16;
    speeds = Hashtbl.create 8;
    stats = Stats.create ();
    trace = Trace.create ~enabled:trace;
    next_tid = 0;
    unfinished = 0;
    live = Hashtbl.create 64;
    judge = None;
    completing = None;
  }

let now t = t.clock
let stats t = t.stats
let trace t = t.trace

let set_judge t judge = t.judge <- Some judge

let set_speed t ~site ~kind ~factor =
  if not (Float.is_finite factor) || factor <= 0.0 then
    invalid_arg "Engine.set_speed: factor must be positive and finite";
  Hashtbl.replace t.speeds (site, kind) factor

let speed_of t task =
  match task.where with
  | Nowhere -> 1.0
  | On (site, kind) -> (
    match Hashtbl.find_opt t.speeds (site, kind) with
    | Some f -> f
    | None -> 1.0)

let resource t site kind =
  match Hashtbl.find_opt t.resources (site, kind) with
  | Some r -> r
  | None ->
    let r = { current = None; waiting = Queue.create () } in
    Hashtbl.add t.resources (site, kind) r;
    r

(* Schedules the completion event of [task], which starts right now. The
   site's speed factor scales the effective duration; the scaled duration is
   what the statistics account (it is the time the resource is busy). When a
   fault judge is installed it sees the scaled duration and may stretch it
   (latency inflation) and doom the task: a doomed task still occupies its
   resource for the full (possibly stretched) duration and is reported
   [Dropped] at its would-be finish time — the receiver never learns earlier
   that a message is lost. *)
let start t task =
  task.state <- Running;
  task.start_time <- t.clock;
  let factor = speed_of t task in
  if factor <> 1.0 then task.duration <- Time.us (Time.to_us task.duration /. factor);
  (match (t.judge, task.where) with
  | Some judge, On (site, kind) -> (
    match
      judge ~site ~kind ~src:task.src ~label:task.label ~start:t.clock
        ~duration:task.duration
    with
    | None -> ()
    | Some { fault_duration; fault_drop } ->
      if not (Time.is_finite fault_duration) || fault_duration < Time.zero then
        invalid_arg
          (Printf.sprintf "Engine: judge gave task %S invalid duration %g"
             task.label fault_duration);
      task.duration <- fault_duration;
      task.drop <- fault_drop)
  | _ -> ());
  let finish = Time.add t.clock task.duration in
  task.finish_time <- finish;
  Heap.push t.events ~priority:finish task

(* Called when all dependencies of [task] are finished: either grab the
   resource immediately or join its FIFO queue. *)
let activate t task =
  match task.where with
  | Nowhere -> start t task
  | On (site, kind) ->
    let r = resource t site kind in
    (match r.current with
    | None ->
      r.current <- Some task;
      start t task
    | Some _ ->
      task.state <- Queued;
      Queue.add task r.waiting)

let submit t ?(deps = []) ?on_complete ?on_outcome ?(attrs = []) ?src ~where
    ~label ~duration () =
  if not (Time.is_finite duration) || duration < Time.zero then
    invalid_arg
      (Printf.sprintf "Engine: task %S has invalid duration %g" label duration);
  let task =
    {
      tid = t.next_tid;
      label;
      where;
      src;
      attrs;
      duration;
      state = Blocked 0;
      dependents = [];
      callbacks = (match on_complete with None -> [] | Some f -> [ f ]);
      outcome_callbacks = (match on_outcome with None -> [] | Some f -> [ f ]);
      start_time = Time.zero;
      finish_time = Time.zero;
      drop = None;
      awaiting = [];
      dep_tids = List.map (fun d -> d.tid) deps;
      is_promise = false;
    }
  in
  t.next_tid <- t.next_tid + 1;
  t.unfinished <- t.unfinished + 1;
  Hashtbl.add t.live task.tid task;
  let pending =
    List.fold_left
      (fun n dep ->
        match dep.state with
        | Finished -> n
        | Blocked _ | Queued | Running ->
          dep.dependents <- task :: dep.dependents;
          task.awaiting <- dep :: task.awaiting;
          n + 1)
      0 deps
  in
  if pending = 0 then activate t task else task.state <- Blocked pending;
  task

let task t ?deps ?on_complete ?on_outcome ?attrs ~site ~kind ~label ~duration () =
  submit t ?deps ?on_complete ?on_outcome ?attrs ~where:(On (site, kind)) ~label
    ~duration ()

let transfer t ?deps ?on_complete ?on_outcome ?attrs ~src ~dst ~label ~duration () =
  if src = dst then
    submit t ?deps ?on_complete ?on_outcome ?attrs ~where:Nowhere ~label
      ~duration:Time.zero ()
  else
    submit t ?deps ?on_complete ?on_outcome ?attrs ~src
      ~where:(On (dst, Resource.Link)) ~label ~duration ()

let fence t ?deps ?on_complete ?attrs ~label () =
  submit t ?deps ?on_complete ?attrs ~where:Nowhere ~label ~duration:Time.zero ()

let delay t ?deps ?on_complete ?attrs ~label ~duration () =
  submit t ?deps ?on_complete ?attrs ~where:Nowhere ~label ~duration ()

let promise t ~label =
  let task =
    {
      tid = t.next_tid;
      label;
      where = Nowhere;
      src = None;
      attrs = [];
      duration = Time.zero;
      state = Blocked 1;  (* the one pending "dependency" is [resolve] *)
      dependents = [];
      callbacks = [];
      outcome_callbacks = [];
      start_time = Time.zero;
      finish_time = Time.zero;
      drop = None;
      awaiting = [];
      dep_tids = [];
      is_promise = true;
    }
  in
  t.next_tid <- t.next_tid + 1;
  t.unfinished <- t.unfinished + 1;
  Hashtbl.add t.live task.tid task;
  task

let resolve t task =
  if not task.is_promise then
    invalid_arg
      (Printf.sprintf "Engine.resolve: task %S is not a promise" task.label);
  match task.state with
  | Blocked 1 ->
    (* A promise resolved from inside a completion callback is causally
       downstream of the completing task; record the edge for the trace. *)
    (match t.completing with
    | Some tid -> task.dep_tids <- tid :: task.dep_tids
    | None -> ());
    activate t task
  | Blocked _ | Queued | Running | Finished ->
    invalid_arg
      (Printf.sprintf "Engine.resolve: promise %S already resolved" task.label)

let finished _t task = task.state = Finished

let finish_time _t task =
  match task.state with
  | Finished -> task.finish_time
  | Blocked _ | Queued | Running ->
    invalid_arg (Printf.sprintf "Engine.finish_time: task %S not finished" task.label)

let outcome_of _t task =
  match task.state with
  | Finished -> (
    match task.drop with None -> Delivered | Some reason -> Dropped reason)
  | Blocked _ | Queued | Running ->
    invalid_arg (Printf.sprintf "Engine.outcome_of: task %S not finished" task.label)

let complete t task =
  task.state <- Finished;
  t.unfinished <- t.unfinished - 1;
  t.completing <- Some task.tid;
  Hashtbl.remove t.live task.tid;
  let trace_attrs =
    match task.drop with
    | None -> task.attrs
    | Some reason -> ("dropped", reason) :: task.attrs
  in
  (match task.where with
  | On (site, kind) ->
    Stats.record t.stats ~site ~kind ~label:task.label ~duration:task.duration
      ~finish:task.finish_time;
    Trace.addf t.trace (fun () ->
        {
          Trace.tid = task.tid;
          label = task.label;
          site = Some site;
          kind = Some kind;
          start = task.start_time;
          finish = task.finish_time;
          deps = task.dep_tids;
          attrs = trace_attrs;
        });
    (* Hand the resource to the next queued task. *)
    let r = resource t site kind in
    r.current <- None;
    (match Queue.take_opt r.waiting with
    | None -> ()
    | Some next ->
      r.current <- Some next;
      start t next)
  | Nowhere ->
    Stats.record_fence t.stats ~finish:task.finish_time;
    Trace.addf t.trace (fun () ->
        {
          Trace.tid = task.tid;
          label = task.label;
          site = None;
          kind = None;
          start = task.start_time;
          finish = task.finish_time;
          deps = task.dep_tids;
          attrs = trace_attrs;
        }));
  (* Unblock dependents in submission order (they were consed in reverse).
     A dropped task still unblocks its dependents: the failure is signalled
     through the outcome callbacks, and retry chains are modelled as fresh
     tasks, not as re-runs of this one. *)
  let dependents = List.rev task.dependents in
  task.dependents <- [];
  let unblock dep =
    match dep.state with
    | Blocked 1 -> activate t dep
    | Blocked n -> dep.state <- Blocked (n - 1)
    | Queued | Running | Finished -> assert false
  in
  List.iter unblock dependents;
  List.iter (fun f -> f ()) (List.rev task.callbacks);
  (match task.outcome_callbacks with
  | [] -> ()
  | cbs ->
    let outcome =
      match task.drop with None -> Delivered | Some reason -> Dropped reason
    in
    List.iter (fun f -> f outcome) (List.rev cbs));
  t.completing <- None

let rec drain t =
  match Heap.pop t.events with
  | None -> ()
  | Some (finish, task) ->
    t.clock <- Time.max t.clock finish;
    complete t task;
    drain t

let where_to_string = function
  | Nowhere -> "fence"
  | On (site, kind) ->
    Printf.sprintf "site %d %s" site (Resource.kind_to_string kind)

(* Describes every task that can never finish: its own label and site plus
   the labels (and sites) of the dependencies it is still waiting for, so a
   deadlock introduced by a failed or never-resolved task names the culprit
   instead of just the victim. *)
let stuck_descriptions t =
  let tasks =
    Hashtbl.fold (fun _ task acc -> task :: acc) t.live []
    |> List.sort (fun a b -> compare a.tid b.tid)
  in
  List.map
    (fun task ->
      let self = Printf.sprintf "%s (%s)" task.label (where_to_string task.where) in
      match task.state with
      | Running -> self ^ ": running"
      | Queued -> self ^ ": queued behind the running task"
      | Finished -> assert false
      | Blocked _ when task.is_promise -> self ^ ": promise never resolved"
      | Blocked n ->
        let unmet =
          List.filter (fun dep -> dep.state <> Finished) (List.rev task.awaiting)
        in
        let names =
          List.map
            (fun dep ->
              Printf.sprintf "%s (%s)" dep.label (where_to_string dep.where))
            unmet
        in
        let names =
          (* Dependencies are recorded at submission; a dependency created
             before tracking began (or an inconsistent count) still reports
             honestly. *)
          if names = [] then [ Printf.sprintf "%d untracked dependenc(ies)" n ]
          else names
        in
        Printf.sprintf "%s: awaiting %s" self (String.concat ", " names))
    tasks

let run t =
  drain t;
  if t.unfinished > 0 then raise (Stuck (stuck_descriptions t))
