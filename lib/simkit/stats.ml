type cell = { mutable busy : Time.t; mutable count : int }

type t = {
  by_site_kind : (int * Resource.kind, cell) Hashtbl.t;
  by_label : (string, cell) Hashtbl.t;
  mutable total_busy : Time.t;
  mutable makespan : Time.t;
  mutable task_count : int;
}

let create () =
  {
    by_site_kind = Hashtbl.create 16;
    by_label = Hashtbl.create 16;
    total_busy = Time.zero;
    makespan = Time.zero;
    task_count = 0;
  }

let cell_of tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
    let c = { busy = Time.zero; count = 0 } in
    Hashtbl.add tbl key c;
    c

let record t ~site ~kind ~label ~duration ~finish =
  let sk = cell_of t.by_site_kind (site, kind) in
  sk.busy <- Time.add sk.busy duration;
  sk.count <- sk.count + 1;
  let lb = cell_of t.by_label label in
  lb.busy <- Time.add lb.busy duration;
  lb.count <- lb.count + 1;
  t.total_busy <- Time.add t.total_busy duration;
  t.makespan <- Time.max t.makespan finish;
  t.task_count <- t.task_count + 1

let record_fence t ~finish = t.makespan <- Time.max t.makespan finish
let total_busy t = t.total_busy
let makespan t = t.makespan
let task_count t = t.task_count

let busy_of_site t site =
  Hashtbl.fold
    (fun (s, _) c acc -> if s = site then Time.add acc c.busy else acc)
    t.by_site_kind Time.zero

let busy_of_kind t kind =
  Hashtbl.fold
    (fun (_, k) c acc ->
      if Resource.equal_kind k kind then Time.add acc c.busy else acc)
    t.by_site_kind Time.zero

let busy_of t ~site ~kind =
  match Hashtbl.find_opt t.by_site_kind (site, kind) with
  | Some c -> c.busy
  | None -> Time.zero

let by_label t =
  Hashtbl.fold (fun label c acc -> (label, c.busy, c.count) :: acc) t.by_label []
  |> List.sort (fun (_, a, _) (_, b, _) -> Time.compare b a)

(* ---- Sample summaries ----

   Guarded against the empty case throughout: a summary of zero
   observations is all-zero, never an exception and never a NaN that
   would poison a JSON report. *)

type summary = {
  n : int;
  mean_us : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  max_us : float;
}

let empty_summary =
  { n = 0; mean_us = 0.0; p50_us = 0.0; p90_us = 0.0; p99_us = 0.0; max_us = 0.0 }

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Nearest-rank percentile on a sorted copy; [q] is clamped to [0, 1]. *)
let percentile xs q =
  match xs with
  | [] -> 0.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    a.(Int.max 0 (Int.min (n - 1) rank))

let summarize xs =
  match xs with
  | [] -> empty_summary
  | xs ->
    {
      n = List.length xs;
      mean_us = mean xs;
      p50_us = percentile xs 0.50;
      p90_us = percentile xs 0.90;
      p99_us = percentile xs 0.99;
      max_us = List.fold_left Float.max neg_infinity xs;
    }

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>total execution time: %a@,response time: %a@,tasks: %d@]"
    Time.pp t.total_busy Time.pp t.makespan t.task_count
