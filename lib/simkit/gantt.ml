let lanes trace =
  let entries =
    List.filter
      (fun e -> e.Trace.site <> None && e.Trace.finish > e.Trace.start)
      (Trace.entries trace)
  in
  let key e =
    match (e.Trace.site, e.Trace.kind) with
    | Some s, Some k -> (s, k)
    | _ -> assert false (* filtered above *)
  in
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      let k = key e in
      match Hashtbl.find_opt table k with
      | Some l -> l := e :: !l
      | None ->
        Hashtbl.add table k (ref [ e ]);
        order := k :: !order)
    entries;
  List.sort compare (List.rev !order)
  |> List.map (fun k -> (k, List.rev !(Hashtbl.find table k)))

(* Every distinct label gets a letter, in first-appearance order. *)
let letters trace =
  let assoc = ref [] in
  let next = ref 0 in
  let alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  List.iter
    (fun e ->
      if e.Trace.site <> None && not (List.mem_assoc e.Trace.label !assoc) then begin
        let c =
          if !next < String.length alphabet then alphabet.[!next] else '#'
        in
        assoc := !assoc @ [ (e.Trace.label, c) ];
        incr next
      end)
    (Trace.entries trace);
  !assoc

let makespan trace =
  List.fold_left
    (fun acc e -> Time.max acc e.Trace.finish)
    Time.zero (Trace.entries trace)

let pp ?(width = 72) ppf trace =
  let span = Time.to_us (makespan trace) in
  if span <= 0.0 then Format.fprintf ppf "(empty trace)@."
  else begin
    let letter_of = letters trace in
    let cell t = int_of_float (Time.to_us t /. span *. float_of_int width) in
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun ((site, kind), entries) ->
        let lane = Bytes.make width '.' in
        List.iter
          (fun e ->
            let a = max 0 (min (width - 1) (cell e.Trace.start)) in
            let b = max a (min (width - 1) (cell e.Trace.finish - 1)) in
            let c =
              match List.assoc_opt e.Trace.label letter_of with
              | Some c -> c
              | None -> '#'
            in
            for i = a to b do
              Bytes.set lane i c
            done)
          entries;
        Format.fprintf ppf "site%d %-4s |%s|@," site
          (Resource.kind_to_string kind) (Bytes.to_string lane))
      (lanes trace);
    Format.fprintf ppf "0%s%a@]"
      (String.make (max 1 (width - 6)) ' ')
      Time.pp (makespan trace)
  end

let pp_legend ppf trace =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (label, c) -> Format.fprintf ppf "%c = %s@," c label)
    (letters trace);
  Format.fprintf ppf "@]"
