type t = float

let zero = 0.0
let us x = x
let ms x = x *. 1_000.0
let s x = x *. 1_000_000.0
let add a b = a +. b

let sub a b =
  let d = a -. b in
  if d < 0.0 then invalid_arg "Time.sub: negative duration" else d

let max (a : t) (b : t) = if a >= b then a else b
let compare (a : t) (b : t) = Float.compare a b
let is_finite (t : t) = Float.is_finite t
let to_us t = t
let to_ms t = t /. 1_000.0
let to_s t = t /. 1_000_000.0

let pp ppf t =
  if t < 1_000.0 then Format.fprintf ppf "%.1fus" t
  else if t < 1_000_000.0 then Format.fprintf ppf "%.2fms" (to_ms t)
  else Format.fprintf ppf "%.3fs" (to_s t)
