(** Serially-shared resources of a simulated site.

    Each site owns one resource of each kind; a resource executes one task at
    a time and queues the rest in FIFO order. The [Link] resource models the
    site's incoming network link, so concurrent transfers towards the same
    site serialize — the contention effect the paper observes when several
    component databases ship data to the global processing site at once. *)

type kind =
  | Cpu   (** predicate comparisons, joins, GOid-table lookups *)
  | Disk  (** reading object extents *)
  | Link  (** the site's incoming network link *)

val all_kinds : kind list

val kind_to_string : kind -> string

val pp_kind : Format.formatter -> kind -> unit

val equal_kind : kind -> kind -> bool
