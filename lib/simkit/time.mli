(** Simulated time.

    All simulated durations and instants are expressed in microseconds, the
    unit of the cost constants in Table 1 of the paper (disk 15 us/byte,
    network 8 us/byte, CPU 0.5 us/comparison). *)

type t = float
(** An instant or duration, in microseconds. *)

val zero : t

val us : float -> t
(** [us x] is [x] microseconds. *)

val ms : float -> t
(** [ms x] is [x] milliseconds. *)

val s : float -> t
(** [s x] is [x] seconds. *)

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b]. Raises [Invalid_argument] if the result would be
    negative, which always indicates a simulation bug. *)

val max : t -> t -> t

val compare : t -> t -> int

val is_finite : t -> bool
(** [is_finite t] is false for NaN and infinite values; every duration fed to
    the engine must be finite and non-negative. *)

val to_us : t -> float

val to_ms : t -> float

val to_s : t -> float

val pp : Format.formatter -> t -> unit
(** Pretty-prints with an adaptive unit ([us], [ms] or [s]). *)
