(** Accumulated statistics of a simulation run.

    [total_busy] is the paper's {e total execution time}: the sum of the
    durations of every resource-occupying task in the whole system.
    [makespan] is the paper's {e response time}: the simulated instant at
    which the last task finished. *)

type t

val create : unit -> t

val record :
  t -> site:int -> kind:Resource.kind -> label:string -> duration:Time.t ->
  finish:Time.t -> unit
(** Accounts one finished task. Fence/delay tasks (no resource) are recorded
    with their makespan contribution only, via {!record_fence}. *)

val record_fence : t -> finish:Time.t -> unit

val total_busy : t -> Time.t

val makespan : t -> Time.t

val task_count : t -> int

val busy_of_site : t -> int -> Time.t

val busy_of_kind : t -> Resource.kind -> Time.t

val busy_of : t -> site:int -> kind:Resource.kind -> Time.t

val by_label : t -> (string * Time.t * int) list
(** Busy time and task count aggregated per task label, sorted by decreasing
    busy time. Useful for cost breakdowns in reports. *)

(** {2 Sample summaries}

    Pure helpers over duration samples (microseconds), used by the
    telemetry layer. All of them are total: zero observations yield an
    all-zero result rather than an exception or a NaN, so empty summaries
    can flow into JSON reports safely. *)

type summary = {
  n : int;
  mean_us : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  max_us : float;
}

val empty_summary : summary

val mean : float list -> float
(** Arithmetic mean; [0.0] on the empty list. *)

val percentile : float list -> float -> float
(** [percentile xs q] is the nearest-rank [q]-percentile ([q] clamped to
    [0, 1]); [0.0] on the empty list. *)

val summarize : float list -> summary
(** [n]/mean/p50/p90/p99/max in one pass; {!empty_summary} on []. *)

val pp_summary : Format.formatter -> t -> unit
