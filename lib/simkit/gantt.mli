(** ASCII Gantt rendering of a simulation trace.

    One lane per (site, resource); time flows left to right, each task drawn
    as a bar of [#] (or its label's first letter) scaled to the makespan.
    Useful to see phase overlap — e.g. PL's remote checks running while
    local evaluation is still busy. Requires the engine to have been created
    with [~trace:true]. *)

val pp : ?width:int -> Format.formatter -> Trace.t -> unit
(** [width] is the number of character cells for the full makespan
    (default 72). Lanes are sorted by site then resource; fences are
    omitted. *)

val pp_legend : Format.formatter -> Trace.t -> unit
(** The letter-to-label mapping used by {!pp}. *)
