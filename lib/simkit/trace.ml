type entry = {
  tid : int;
  label : string;
  site : int option;
  kind : Resource.kind option;
  start : Time.t;
  finish : Time.t;
  deps : int list;
  attrs : (string * string) list;
}

type t = { enabled : bool; mutable entries : entry list }

let create ~enabled = { enabled; entries = [] }
let enabled t = t.enabled
let add t e = if t.enabled then t.entries <- e :: t.entries
let addf t f = if t.enabled then t.entries <- f () :: t.entries
let entries t = List.rev t.entries

let pp_entry ppf e =
  let pp_where ppf () =
    match (e.site, e.kind) with
    | Some s, Some k -> Format.fprintf ppf "site%d/%a" s Resource.pp_kind k
    | _, _ -> Format.pp_print_string ppf "fence"
  in
  Format.fprintf ppf "[%a .. %a] #%d %a %s" Time.pp e.start Time.pp e.finish
    e.tid pp_where () e.label

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_entry ppf (entries t)
