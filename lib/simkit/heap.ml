type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let is_empty h = h.size = 0
let size h = h.size

(* [before a b] decides heap order: smaller priority first, then smaller
   insertion sequence so that equal-priority entries pop in FIFO order. *)
let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

(* Grows the backing array, using [entry] to fill the fresh cells; cells
   beyond [size] are never read before being overwritten. *)
let ensure_capacity h entry =
  if h.size = Array.length h.data then begin
    let new_cap = if h.size = 0 then 16 else h.size * 2 in
    let data = Array.make new_cap entry in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let push h ~priority value =
  let entry = { prio = priority; seq = h.next_seq; value } in
  ensure_capacity h entry;
  h.next_seq <- h.next_seq + 1;
  (* Sift up. *)
  let rec up i =
    if i = 0 then h.data.(0) <- entry
    else
      let parent = (i - 1) / 2 in
      if before entry h.data.(parent) then begin
        h.data.(i) <- h.data.(parent);
        up parent
      end
      else h.data.(i) <- entry
  in
  up h.size;
  h.size <- h.size + 1

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      let last = h.data.(h.size) in
      (* Sift down. *)
      let rec down i =
        let left = (2 * i) + 1 in
        if left >= h.size then h.data.(i) <- last
        else
          let right = left + 1 in
          let child =
            if right < h.size && before h.data.(right) h.data.(left) then right
            else left
          in
          if before h.data.(child) last then begin
            h.data.(i) <- h.data.(child);
            down child
          end
          else h.data.(i) <- last
      in
      down 0
    end;
    Some (top.prio, top.value)
  end

let peek_priority h = if h.size = 0 then None else Some h.data.(0).prio

let clear h =
  h.data <- [||];
  h.size <- 0
