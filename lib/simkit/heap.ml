(* Parallel-array layout: priorities live in a flat [float array] (unboxed
   elements), sequence numbers in an [int array], payloads in an
   ['a array]. The previous record-per-entry layout boxed the float inside
   every entry, so each push allocated; here a push at capacity allocates
   nothing. *)

type 'a t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { prios = [||]; seqs = [||]; values = [||]; size = 0; next_seq = 0 }
let is_empty h = h.size = 0
let size h = h.size

(* Grows the backing arrays, using [value] to fill the fresh payload cells;
   cells beyond [size] are never read before being overwritten. *)
let ensure_capacity h value =
  if h.size = Array.length h.prios then begin
    let cap = if h.size = 0 then 16 else h.size * 2 in
    let prios = Array.make cap 0.0 in
    Array.blit h.prios 0 prios 0 h.size;
    let seqs = Array.make cap 0 in
    Array.blit h.seqs 0 seqs 0 h.size;
    let values = Array.make cap value in
    Array.blit h.values 0 values 0 h.size;
    h.prios <- prios;
    h.seqs <- seqs;
    h.values <- values
  end

(* Heap order: smaller priority first, then smaller insertion sequence so
   that equal-priority entries pop in FIFO order. *)

let push h ~priority value =
  ensure_capacity h value;
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  let set i =
    h.prios.(i) <- priority;
    h.seqs.(i) <- seq;
    h.values.(i) <- value
  in
  (* Sift up. *)
  let rec up i =
    if i = 0 then set 0
    else
      let parent = (i - 1) / 2 in
      let pp = h.prios.(parent) in
      if priority < pp || (priority = pp && seq < h.seqs.(parent)) then begin
        h.prios.(i) <- pp;
        h.seqs.(i) <- h.seqs.(parent);
        h.values.(i) <- h.values.(parent);
        up parent
      end
      else set i
  in
  up h.size;
  h.size <- h.size + 1

let pop h =
  if h.size = 0 then None
  else begin
    let top_prio = h.prios.(0) and top_value = h.values.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      let lp = h.prios.(h.size)
      and ls = h.seqs.(h.size)
      and lv = h.values.(h.size) in
      let set i =
        h.prios.(i) <- lp;
        h.seqs.(i) <- ls;
        h.values.(i) <- lv
      in
      (* Sift down. *)
      let rec down i =
        let left = (2 * i) + 1 in
        if left >= h.size then set i
        else begin
          let right = left + 1 in
          let child =
            if
              right < h.size
              && (h.prios.(right) < h.prios.(left)
                 || (h.prios.(right) = h.prios.(left)
                    && h.seqs.(right) < h.seqs.(left)))
            then right
            else left
          in
          let cp = h.prios.(child) in
          if cp < lp || (cp = lp && h.seqs.(child) < ls) then begin
            h.prios.(i) <- cp;
            h.seqs.(i) <- h.seqs.(child);
            h.values.(i) <- h.values.(child);
            down child
          end
          else set i
        end
      in
      down 0
    end;
    Some (top_prio, top_value)
  end

let peek_priority h = if h.size = 0 then None else Some h.prios.(0)

let clear h =
  h.prios <- [||];
  h.seqs <- [||];
  h.values <- [||];
  h.size <- 0
